"""Shared plumbing for the CI snapshot gates.

Both gate scripts (check_bench_regression.py, compare_telemetry.py)
compare a freshly produced JSON snapshot against a committed baseline
and speak the same protocol:

  exit 0  healthy
  exit 1  regression / drift (the findings are printed to stderr,
          prefixed REGRESSION:)
  exit 2  bad invocation or incomparable inputs (unreadable JSON, wrong
          snapshot kind, different --scale/--seed identity)

This module holds the common pieces: JSON loading with exit-2 error
handling, the snapshot-identity check, exact-equality comparison
helpers, and the shared argument-parser scaffolding.
"""

import argparse
import json
import sys


def load_snapshot(path):
    """Reads a JSON snapshot; exits 2 on unreadable/invalid input."""
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def require_kind(snapshot, path, kinds):
    """Exits 2 unless the snapshot's "bench" field is one of *kinds*."""
    kind = snapshot.get("bench")
    if kind not in kinds:
        print(f"error: {path} has unknown bench kind {kind!r} "
              f"(expected one of {sorted(kinds)})", file=sys.stderr)
        sys.exit(2)
    return kind


def require_same_identity(base, fresh, keys=("scale", "seed")):
    """Exits 2 when the two snapshots were produced under different
    sweep identities; deterministic comparison is meaningless then."""
    for key in keys:
        if base.get(key) != fresh.get(key):
            print(f"error: baseline and fresh run used different "
                  f"{key!r} ({base.get(key)!r} vs {fresh.get(key)!r}); "
                  f"deterministic comparison is meaningless",
                  file=sys.stderr)
            sys.exit(2)


def check_exact(failures, label, fresh_value, base_value, why=""):
    """Appends a failure when an exactly-deterministic field drifted."""
    if fresh_value != base_value:
        suffix = f" ({why})" if why else ""
        failures.append(
            f"{label}: {fresh_value!r} != baseline {base_value!r}{suffix}")


def check_floor(failures, label, fresh_value, floor, why=""):
    """Appends a failure when a ratio/percentage fell below its floor."""
    if fresh_value < floor:
        suffix = f" ({why})" if why else ""
        failures.append(
            f"{label}: {fresh_value:.2f} fell below the floor "
            f"{floor:.2f}{suffix}")


def make_parser(description, epilog=None):
    """Argument parser shared by the gates: BASELINE and FRESH
    positionals plus consistent --help formatting."""
    parser = argparse.ArgumentParser(
        description=description,
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "baseline",
        metavar="BASELINE.json",
        help="committed baseline snapshot (bench/BASELINE_*.json)")
    parser.add_argument(
        "fresh",
        metavar="FRESH.json",
        help="freshly produced snapshot to gate")
    return parser


def finish(failures, gate_name):
    """Prints the verdict and exits with the protocol's code."""
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"{gate_name}: OK")
    sys.exit(0)
