#!/usr/bin/env python3
"""Gate CI on the benchmark snapshots staying healthy.

Compares a freshly produced BENCH_*.json against its committed baseline
(bench/BASELINE_*.json). The snapshot's "bench" field selects the gate:

oracle_calls_accel (bench_oracle_calls):
  * Deterministic counters must match the baseline exactly: the corpus is
    seeded, so logical-call totals and suggestion divergences are
    hardware-independent. Any drift means search behavior changed.
  * The within-run acceleration speedup (accelerated vs unaccelerated
    wall-clock, both measured on the same machine in the same process)
    must stay above REGRESSION_FRACTION of the baseline's ratio. Absolute
    wall-clock across CI runners is far noisier than 10%, but the *ratio*
    cancels the hardware out; losing more than 10% of it means the
    acceleration layer (or the tracing-disabled fast path it sits on)
    regressed.

micro_allocs (bench_micro --json):
  * The candidate-wave allocation reduction (legacy vs arena pipeline,
    measured in the same process by the counting operator-new
    interposer) must stay above the hard 10x floor and above
    REGRESSION_FRACTION of the baseline's ratio.
  * The arena scenarios' absolute allocation counts are deterministic
    for a given libstdc++, but not across toolchains, so they are gated
    with a 1.25x tolerance rather than exact equality: enough slack for
    container implementation drift, tight enough to catch reintroduced
    per-candidate clone traffic.

slice_ablation (bench_slice_ablation):
  * slice-guided must have produced byte-identical suggestion lists to
    slice-ranked on every file (pruning soundness).
  * All deterministic call counters (logical / issued / pruned per
    configuration) must match the baseline exactly.
  * The slice-guided oracle-call reduction must stay at or above the
    driver's floor (min_reduction_pct, currently 25%): the slice has to
    keep paying for itself.

server (bench_server):
  * Warm responses must be byte-identical to cold one-shot runs
    (suggestion_mismatches pinned to zero) and every deterministic
    warm-reuse counter (prefix hits, verdict reuses, seed adoptions,
    conv-memo hits, inference runs) must match the baseline exactly.
  * The warm/cold p50 ratio (within-run, hardware-independent) must stay
    above max(10x, 50% of the baseline ratio): 10x is the daemon's
    edit-resubmit contract, the relative bound tracks the trajectory.
    The fraction is looser than the others because warm requests are
    sub-millisecond and jitter accordingly.

obs (bench_obs):
  * The profiler's priced overhead (per-primitive micro-costs times the
    measured spans-per-check of the warm workload, over the
    registry-only CPU per check -- all within-run, so hardware cancels)
    must stay within the DESIGN.md section 16 budget: <=1% with the
    hooks compiled but idle, <=3% sampling at the default 99 Hz with
    exact phase-CPU stamping.

The quality-telemetry snapshot ("bench": "telemetry") has its own gate,
scripts/compare_telemetry.py; both scripts share scripts/gate_common.py
and its exit-code protocol: 0 = healthy, 1 = regression, 2 = bad
invocation/inputs.
"""

import sys

from gate_common import (check_exact, check_floor, finish, load_snapshot,
                         make_parser, require_kind, require_same_identity)

REGRESSION_FRACTION = 0.9  # fail if speedup drops below 90% of baseline


def config_rows(failures, base, fresh):
    """Pairs up the per-configuration rows, flagging set changes."""
    base_rows = {r["name"]: r for r in base["configs"]}
    fresh_rows = {r["name"]: r for r in fresh["configs"]}
    if set(base_rows) != set(fresh_rows):
        failures.append(
            f"configuration set changed: {sorted(base_rows)} vs "
            f"{sorted(fresh_rows)}")
    return [(name, base_rows[name], fresh_rows[name])
            for name in sorted(set(base_rows) & set(fresh_rows))]


def check_oracle_calls(base, fresh):
    failures = []
    for name, b, f in config_rows(failures, base, fresh):
        check_exact(failures, f"[{name}] logical_calls",
                    f["logical_calls"], b["logical_calls"],
                    "search behavior changed")
        if f["suggestion_mismatches"] != 0 or f["call_count_mismatches"] != 0:
            failures.append(
                f"[{name}] diverged from its in-run baseline: "
                f"{f['suggestion_mismatches']} suggestion / "
                f"{f['call_count_mismatches']} call-count mismatches")

    base_speedup = base.get("speedup_wall", 0.0)
    fresh_speedup = fresh.get("speedup_wall", 0.0)
    floor = base_speedup * REGRESSION_FRACTION
    check_floor(failures, "speedup_wall", fresh_speedup, floor,
                "acceleration or the tracing-disabled fast path "
                "regressed >10%")
    print(f"baseline speedup {base_speedup:.2f}x, fresh "
          f"{fresh_speedup:.2f}x (floor {floor:.2f}x)")
    return failures


ALLOC_HARD_FLOOR = 10.0     # absolute floor on the candidate-wave ratio
ALLOC_COUNT_TOLERANCE = 1.25  # per-scenario alloc-count drift allowance


def check_micro_allocs(base, fresh):
    failures = []
    base_rows = {r["name"]: r for r in base["scenarios"]}
    fresh_rows = {r["name"]: r for r in fresh["scenarios"]}
    if set(base_rows) != set(fresh_rows):
        failures.append(
            f"scenario set changed: {sorted(base_rows)} vs "
            f"{sorted(fresh_rows)}")
    check_exact(failures, "waves", fresh.get("waves"), base.get("waves"),
                "scenario shape changed; refresh the baseline deliberately")

    for name in sorted(set(base_rows) & set(fresh_rows)):
        ceiling = base_rows[name]["allocs"] * ALLOC_COUNT_TOLERANCE
        allocs = fresh_rows[name]["allocs"]
        if allocs > ceiling:
            failures.append(
                f"[{name}] allocs {allocs} exceeds {ceiling:.0f} "
                f"({ALLOC_COUNT_TOLERANCE}x baseline "
                f"{base_rows[name]['allocs']})")

    base_ratio = base.get("alloc_reduction", 0.0)
    fresh_ratio = fresh.get("alloc_reduction", 0.0)
    floor = max(ALLOC_HARD_FLOOR, base_ratio * REGRESSION_FRACTION)
    check_floor(failures, "alloc_reduction", fresh_ratio, floor,
                "arena pipeline lost its copy-free property")
    print(f"baseline alloc reduction {base_ratio:.1f}x, fresh "
          f"{fresh_ratio:.1f}x (floor {floor:.1f}x)")
    return failures


def check_slice_ablation(base, fresh):
    failures = []
    for name, b, f in config_rows(failures, base, fresh):
        for key in ("logical_calls", "issued_calls", "pruned_calls",
                    "files_sliced"):
            check_exact(failures, f"[{name}] {key}", f[key], b[key],
                        "slice or search behavior changed")
        if f["suggestion_mismatches"] != 0:
            failures.append(
                f"[{name}] {f['suggestion_mismatches']} suggestion "
                f"mismatches vs slice-ranked -- pruning is unsound")

    floor = fresh.get("min_reduction_pct", base.get("min_reduction_pct",
                                                    25.0))
    reduction = fresh.get("reduction_pct", 0.0)
    check_floor(failures, "slice-guided reduction_pct", reduction, floor)
    print(f"baseline reduction {base.get('reduction_pct', 0.0):.1f}%, fresh "
          f"{reduction:.1f}% (floor {floor:.0f}%)")
    return failures


SERVER_SPEEDUP_HARD_FLOOR = 10.0  # the daemon's warm-resubmit contract
SERVER_SPEEDUP_FRACTION = 0.5     # warm p50 is sub-millisecond, so the
                                  # ratio jitters more than the others;
                                  # the hard floor carries the contract


def check_server(base, fresh):
    failures = []
    # Scenario shape and everything the search actually did are
    # deterministic in (scale, seed): same program, same localization
    # probes, same candidate waves, same warm reuse. Exact equality.
    for key in ("decls", "iterations", "cold_inference_runs",
                "warm_inference_runs", "warm_prefix_hits",
                "warm_verdict_reuses", "warm_seed_adoptions",
                "warm_conv_memo_hits"):
        check_exact(failures, key, fresh.get(key), base.get(key),
                    "server warm-reuse behavior changed")
    check_exact(failures, "suggestion_mismatches",
                fresh.get("suggestion_mismatches"), 0,
                "warm responses diverged from cold one-shot runs")

    base_speedup = base.get("speedup_warm", 0.0)
    fresh_speedup = fresh.get("speedup_warm", 0.0)
    floor = max(SERVER_SPEEDUP_HARD_FLOOR,
                base_speedup * SERVER_SPEEDUP_FRACTION)
    check_floor(failures, "speedup_warm", fresh_speedup, floor,
                "warm edit-resubmits stopped paying for themselves")
    print(f"baseline warm speedup {base_speedup:.1f}x, fresh "
          f"{fresh_speedup:.1f}x (floor {floor:.1f}x)")
    return failures


PROFILER_OFF_MAX_PCT = 1.0   # hooks compiled in, profiler not running
PROFILER_99HZ_MAX_PCT = 3.0  # sampler at the default 99 Hz + CPU stamps


def check_obs(base, fresh):
    """Observability overhead budgets (bench_obs). Gates the *priced*
    profiler overheads -- per-primitive micro-costs times the measured
    spans-per-check, against the registry-only CPU per check -- because
    the DESIGN.md section 16 budgets (1% / 3%) sit below the end-to-end
    noise floor of a ~1ms workload on shared runners. The end-to-end
    config rows are still checked for set drift so a silently dropped
    measurement cannot pass."""
    failures = []
    config_rows(failures, base, fresh)  # flags config-set drift
    for key, ceiling in (("profiler_off_overhead_pct",
                          PROFILER_OFF_MAX_PCT),
                         ("profiler_99hz_overhead_pct",
                          PROFILER_99HZ_MAX_PCT)):
        pct = fresh.get(key)
        if pct is None:
            failures.append(f"snapshot is missing {key}")
            continue
        if pct > ceiling:
            failures.append(
                f"{key} = {pct:.3f}% exceeds the {ceiling:.0f}% budget")
        print(f"{key}: {pct:+.3f}% (budget {ceiling:.0f}%)")
    return failures


GATES = {
    "oracle_calls_accel": check_oracle_calls,
    "micro_allocs": check_micro_allocs,
    "slice_ablation": check_slice_ablation,
    "server": check_server,
    "obs": check_obs,
}


def main():
    parser = make_parser(
        description=__doc__,
        epilog="examples:\n"
               "  check_bench_regression.py bench/BASELINE_oracle_calls.json"
               " BENCH_oracle_calls.json\n"
               "  check_bench_regression.py "
               "bench/BASELINE_slice_ablation.json "
               "BENCH_slice_ablation.json\n")
    args = parser.parse_args()

    base = load_snapshot(args.baseline)
    fresh = load_snapshot(args.fresh)

    kind = require_kind(base, args.baseline, GATES)
    if fresh.get("bench") != kind:
        print(f"error: {args.fresh} is a {fresh.get('bench')!r} snapshot, "
              f"baseline is {kind!r}", file=sys.stderr)
        sys.exit(2)
    require_same_identity(base, fresh)

    finish(GATES[kind](base, fresh), "bench regression gate")


if __name__ == "__main__":
    main()
