#!/usr/bin/env python3
"""Gate CI on the oracle-acceleration benchmark staying healthy.

Compares a freshly produced BENCH_oracle_calls.json against the committed
baseline (bench/BASELINE_oracle_calls.json). Two kinds of checks:

* Deterministic counters must match the baseline exactly: the corpus is
  seeded, so logical-call totals and suggestion divergences are
  hardware-independent. Any drift means search behavior changed.
* The within-run acceleration speedup (accelerated vs unaccelerated
  wall-clock, both measured on the same machine in the same process) must
  stay above REGRESSION_FRACTION of the baseline's ratio. Absolute
  wall-clock across CI runners is far noisier than 10%, but the *ratio*
  cancels the hardware out; losing more than 10% of it means the
  acceleration layer (or the tracing-disabled fast path it sits on)
  regressed.

Exit code 0 = healthy, 1 = regression, 2 = bad invocation/inputs.
"""

import json
import sys

REGRESSION_FRACTION = 0.9  # fail if speedup drops below 90% of baseline


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BASELINE.json FRESH.json",
              file=sys.stderr)
        sys.exit(2)
    base = load(sys.argv[1])
    fresh = load(sys.argv[2])

    for doc, name in ((base, sys.argv[1]), (fresh, sys.argv[2])):
        if doc.get("bench") != "oracle_calls_accel":
            print(f"error: {name} is not an oracle_calls_accel snapshot",
                  file=sys.stderr)
            sys.exit(2)
    if (base.get("scale"), base.get("seed")) != (fresh.get("scale"),
                                                 fresh.get("seed")):
        print("error: baseline and fresh run used different --scale/--seed; "
              "deterministic comparison is meaningless", file=sys.stderr)
        sys.exit(2)

    failures = []

    base_rows = {r["name"]: r for r in base["configs"]}
    fresh_rows = {r["name"]: r for r in fresh["configs"]}
    if set(base_rows) != set(fresh_rows):
        failures.append(
            f"configuration set changed: {sorted(base_rows)} vs "
            f"{sorted(fresh_rows)}")
    for name in sorted(set(base_rows) & set(fresh_rows)):
        b, f = base_rows[name], fresh_rows[name]
        if f["logical_calls"] != b["logical_calls"]:
            failures.append(
                f"[{name}] logical_calls {f['logical_calls']} != baseline "
                f"{b['logical_calls']} (search behavior changed)")
        if f["suggestion_mismatches"] != 0 or f["call_count_mismatches"] != 0:
            failures.append(
                f"[{name}] diverged from its in-run baseline: "
                f"{f['suggestion_mismatches']} suggestion / "
                f"{f['call_count_mismatches']} call-count mismatches")

    base_speedup = base.get("speedup_wall", 0.0)
    fresh_speedup = fresh.get("speedup_wall", 0.0)
    floor = base_speedup * REGRESSION_FRACTION
    if fresh_speedup < floor:
        failures.append(
            f"speedup_wall {fresh_speedup:.2f}x fell below "
            f"{REGRESSION_FRACTION:.0%} of baseline {base_speedup:.2f}x "
            f"(floor {floor:.2f}x) -- acceleration or the tracing-disabled "
            f"fast path regressed >10%")

    print(f"baseline speedup {base_speedup:.2f}x, fresh "
          f"{fresh_speedup:.2f}x (floor {floor:.2f}x)")
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        sys.exit(1)
    print("bench regression gate: OK")


if __name__ == "__main__":
    main()
