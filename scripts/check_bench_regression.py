#!/usr/bin/env python3
"""Gate CI on the benchmark snapshots staying healthy.

Compares a freshly produced BENCH_*.json against its committed baseline
(bench/BASELINE_*.json). The snapshot's "bench" field selects the gate:

oracle_calls_accel (bench_oracle_calls):
  * Deterministic counters must match the baseline exactly: the corpus is
    seeded, so logical-call totals and suggestion divergences are
    hardware-independent. Any drift means search behavior changed.
  * The within-run acceleration speedup (accelerated vs unaccelerated
    wall-clock, both measured on the same machine in the same process)
    must stay above REGRESSION_FRACTION of the baseline's ratio. Absolute
    wall-clock across CI runners is far noisier than 10%, but the *ratio*
    cancels the hardware out; losing more than 10% of it means the
    acceleration layer (or the tracing-disabled fast path it sits on)
    regressed.

slice_ablation (bench_slice_ablation):
  * slice-guided must have produced byte-identical suggestion lists to
    slice-ranked on every file (pruning soundness).
  * All deterministic call counters (logical / issued / pruned per
    configuration) must match the baseline exactly.
  * The slice-guided oracle-call reduction must stay at or above the
    driver's floor (min_reduction_pct, currently 25%): the slice has to
    keep paying for itself.

Exit code 0 = healthy, 1 = regression, 2 = bad invocation/inputs.
"""

import json
import sys

REGRESSION_FRACTION = 0.9  # fail if speedup drops below 90% of baseline


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_oracle_calls(base, fresh):
    failures = []

    base_rows = {r["name"]: r for r in base["configs"]}
    fresh_rows = {r["name"]: r for r in fresh["configs"]}
    if set(base_rows) != set(fresh_rows):
        failures.append(
            f"configuration set changed: {sorted(base_rows)} vs "
            f"{sorted(fresh_rows)}")
    for name in sorted(set(base_rows) & set(fresh_rows)):
        b, f = base_rows[name], fresh_rows[name]
        if f["logical_calls"] != b["logical_calls"]:
            failures.append(
                f"[{name}] logical_calls {f['logical_calls']} != baseline "
                f"{b['logical_calls']} (search behavior changed)")
        if f["suggestion_mismatches"] != 0 or f["call_count_mismatches"] != 0:
            failures.append(
                f"[{name}] diverged from its in-run baseline: "
                f"{f['suggestion_mismatches']} suggestion / "
                f"{f['call_count_mismatches']} call-count mismatches")

    base_speedup = base.get("speedup_wall", 0.0)
    fresh_speedup = fresh.get("speedup_wall", 0.0)
    floor = base_speedup * REGRESSION_FRACTION
    if fresh_speedup < floor:
        failures.append(
            f"speedup_wall {fresh_speedup:.2f}x fell below "
            f"{REGRESSION_FRACTION:.0%} of baseline {base_speedup:.2f}x "
            f"(floor {floor:.2f}x) -- acceleration or the tracing-disabled "
            f"fast path regressed >10%")

    print(f"baseline speedup {base_speedup:.2f}x, fresh "
          f"{fresh_speedup:.2f}x (floor {floor:.2f}x)")
    return failures


def check_slice_ablation(base, fresh):
    failures = []

    base_rows = {r["name"]: r for r in base["configs"]}
    fresh_rows = {r["name"]: r for r in fresh["configs"]}
    if set(base_rows) != set(fresh_rows):
        failures.append(
            f"configuration set changed: {sorted(base_rows)} vs "
            f"{sorted(fresh_rows)}")
    for name in sorted(set(base_rows) & set(fresh_rows)):
        b, f = base_rows[name], fresh_rows[name]
        for key in ("logical_calls", "issued_calls", "pruned_calls",
                    "files_sliced"):
            if f[key] != b[key]:
                failures.append(
                    f"[{name}] {key} {f[key]} != baseline {b[key]} "
                    f"(slice or search behavior changed)")
        if f["suggestion_mismatches"] != 0:
            failures.append(
                f"[{name}] {f['suggestion_mismatches']} suggestion "
                f"mismatches vs slice-ranked -- pruning is unsound")

    floor = fresh.get("min_reduction_pct", base.get("min_reduction_pct", 25.0))
    reduction = fresh.get("reduction_pct", 0.0)
    if reduction < floor:
        failures.append(
            f"slice-guided reduction {reduction:.1f}% fell below the "
            f"{floor:.0f}% floor")

    print(f"baseline reduction {base.get('reduction_pct', 0.0):.1f}%, fresh "
          f"{reduction:.1f}% (floor {floor:.0f}%)")
    return failures


GATES = {
    "oracle_calls_accel": check_oracle_calls,
    "slice_ablation": check_slice_ablation,
}


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BASELINE.json FRESH.json",
              file=sys.stderr)
        sys.exit(2)
    base = load(sys.argv[1])
    fresh = load(sys.argv[2])

    kind = base.get("bench")
    if kind not in GATES:
        print(f"error: {sys.argv[1]} has unknown bench kind {kind!r} "
              f"(expected one of {sorted(GATES)})", file=sys.stderr)
        sys.exit(2)
    if fresh.get("bench") != kind:
        print(f"error: {sys.argv[2]} is a {fresh.get('bench')!r} snapshot, "
              f"baseline is {kind!r}", file=sys.stderr)
        sys.exit(2)
    if (base.get("scale"), base.get("seed")) != (fresh.get("scale"),
                                                 fresh.get("seed")):
        print("error: baseline and fresh run used different --scale/--seed; "
              "deterministic comparison is meaningless", file=sys.stderr)
        sys.exit(2)

    failures = GATES[kind](base, fresh)
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        sys.exit(1)
    print("bench regression gate: OK")


if __name__ == "__main__":
    main()
