#!/usr/bin/env python3
"""Gate the daemon's scrape endpoint against its own stats verb.

Run against a live seminal_serverd started with both --socket and
--metrics-port. Three checks, all on the same daemon at the same time:

  1. /healthz answers {"ok": true}.
  2. /metrics is valid Prometheus text exposition 0.0.4: every
     non-comment line is `name[{labels}] value`, names match
     [a-zA-Z_:][a-zA-Z0-9_:]*, every sample sits under a # TYPE
     declaration for its family, and the required seminal_* families
     are all present.
  3. The exposition reconciles exactly with the `stats` protocol verb:
     both views are fed from the same registry atomics, so
     seminal_checks_total == stats.checks and so on, the per-state
     latency counts sum to the check count, and the per-shard request
     counters sum across the shards array. Drift here means an
     instrumentation site updated one store and not the other.

Exit codes follow the other gate scripts: 0 healthy, 1 violation
(details on stderr prefixed REGRESSION:), 2 bad invocation / daemon
unreachable.
"""

import argparse
import json
import re
import socket
import sys
import urllib.request

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9eE.+-]+|NaN|[+-]Inf)$")

# Families the server engine always registers (src/server/Server.cpp);
# a missing one means the exposition path silently lost instruments.
REQUIRED_FAMILIES = [
    "seminal_requests_total",
    "seminal_checks_total",
    "seminal_resets_total",
    "seminal_pings_total",
    "seminal_malformed_total",
    "seminal_sessions_created_total",
    "seminal_evictions_total",
    "seminal_oracle_calls_total",
    "seminal_inference_runs_total",
    "seminal_warm_hits_total",
    "seminal_slow_traces_total",
    "seminal_sessions",
    "seminal_arena_bytes",
    "seminal_request_latency_us",
    "seminal_oracle_calls_per_request",
    "seminal_shard_requests_total",
    "seminal_shard_busy_us_total",
    "seminal_shard_queue_depth",
    "seminal_shard_queue_wait_us",
    # Cost ledger + SLO layer (this file gates the same registry the
    # ledger reconciliation tests pin; see reconcile_ledger below).
    "seminal_cost_cpu_us_total",
    "seminal_cost_wall_us_total",
    "seminal_cost_oracle_calls_total",
    "seminal_cost_inference_runs_total",
    "seminal_cost_verdict_cache_hits_total",
    "seminal_cost_arena_nodes",
    "seminal_cost_arena_bytes",
    "seminal_request_cpu_us",
    "seminal_shard_cpu_us_total",
    "seminal_slo_burn_rate_milli",
    "seminal_slowest_request_latency_us",
    "seminal_slowest_request_info",
]

failures = []


def fail(msg):
    failures.append(msg)
    print(f"REGRESSION: {msg}", file=sys.stderr)


def fetch(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as r:
            return r.status, r.read().decode("utf-8")
    except OSError as e:
        print(f"error: cannot fetch {url}: {e}", file=sys.stderr)
        sys.exit(2)


def stats_verb(socket_path):
    """One stats request over the daemon's JSONL Unix socket."""
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(10)
        s.connect(socket_path)
        s.sendall(b'{"method":"stats","id":"gate"}\n')
        reply = json.loads(s.makefile().readline())
        s.close()
    except (OSError, ValueError) as e:
        print(f"error: stats verb on {socket_path} failed: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not reply.get("ok"):
        print(f"error: stats verb returned {reply}", file=sys.stderr)
        sys.exit(2)
    return reply


def parse_exposition(text):
    """Validates the text format; returns {name: {labels_str: value}}."""
    samples = {}
    typed = {}
    current_family = None
    if not text.endswith("\n"):
        fail("exposition does not end with a newline")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"line {lineno}: blank line in exposition")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and line.startswith("# TYPE "):
                fail(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            name = parts[2]
            if not METRIC_NAME.match(name):
                fail(f"line {lineno}: bad family name {name!r}")
            if line.startswith("# TYPE "):
                kind = parts[3]
                if kind not in ("counter", "gauge", "summary", "histogram",
                                "untyped"):
                    fail(f"line {lineno}: unknown metric type {kind!r}")
                if name in typed:
                    fail(f"line {lineno}: duplicate TYPE for {name}")
                typed[name] = kind
                current_family = name
            continue
        if line.startswith("#"):
            fail(f"line {lineno}: unknown comment form: {line!r}")
            continue
        m = SAMPLE_LINE.match(line)
        if not m:
            fail(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
        if base not in typed:
            fail(f"line {lineno}: sample {name} has no TYPE declaration")
        elif base != current_family:
            fail(f"line {lineno}: sample {name} outside its TYPE block "
                 f"(current family: {current_family})")
        samples.setdefault(name, {})[m.group("labels") or ""] = \
            float(m.group("value"))
    return samples


def single_value(samples, name):
    series = samples.get(name, {})
    if len(series) != 1:
        fail(f"{name}: expected exactly one unlabeled sample, got {series}")
        return None
    return next(iter(series.values()))


def reconcile(samples, stats):
    """The scrape and the stats verb must agree exactly."""
    pairs = [
        ("seminal_requests_total", "requests"),
        ("seminal_checks_total", "checks"),
        ("seminal_resets_total", "resets"),
        ("seminal_pings_total", "pings"),
        ("seminal_malformed_total", "malformed"),
        ("seminal_sessions_created_total", "sessions_created"),
        ("seminal_evictions_total", "evictions"),
        ("seminal_oracle_calls_total", "oracle_calls"),
        ("seminal_inference_runs_total", "inference_runs"),
    ]
    for metric, key in pairs:
        got = single_value(samples, metric)
        want = stats.get(key)
        # The stats snapshot was taken after the scrape; metrics the
        # stats request itself bumps (requests) may legitimately be one
        # ahead in the later reading.
        slack = 1 if key == "requests" else 0
        if got is None or want is None or not (want - slack <= got <= want):
            fail(f"{metric} = {got} but stats.{key} = {want}")

    warm = stats.get("warm", {})
    warm_total = sum(warm.get(k, 0) for k in
                     ("prefix_hits", "verdict_reuses", "seed_adoptions",
                      "conv_memo_hits"))
    got = single_value(samples, "seminal_warm_hits_total")
    if got != warm_total:
        fail(f"seminal_warm_hits_total = {got} but stats.warm sums to "
             f"{warm_total}")

    # Every check lands in exactly one latency series.
    latency_counts = samples.get("seminal_request_latency_us_count", {})
    latency_total = sum(latency_counts.values())
    if latency_total != stats.get("checks"):
        fail(f"latency counts {latency_counts} sum to {latency_total}, "
             f"expected stats.checks = {stats.get('checks')}")
    for state in ('{state="cold"}', '{state="warm"}'):
        if state not in latency_counts:
            fail(f"seminal_request_latency_us_count missing {state} series")

    # The shards array is read from the same per-shard counters.
    shards = stats.get("shards", [])
    if len(shards) != stats.get("shard_count"):
        fail(f"stats.shards has {len(shards)} entries, shard_count says "
             f"{stats.get('shard_count')}")
    shard_requests = samples.get("seminal_shard_requests_total", {})
    if len(shard_requests) != len(shards):
        fail(f"seminal_shard_requests_total has {len(shard_requests)} "
             f"series for {len(shards)} shards")
    for sh in shards:
        key = '{{shard="{}"}}'.format(sh["shard"])
        got = shard_requests.get(key)
        if got != sh["requests"]:
            fail(f"seminal_shard_requests_total{key} = {got} but stats "
                 f"shard {sh['shard']} reports {sh['requests']}")
    if sum(s["requests"] for s in shards) != \
            stats.get("checks", 0) + stats.get("resets", 0):
        fail(f"shard requests {shards} do not sum to checks + resets")


def reconcile_ledger(samples, stats):
    """The per-request cost ledger must agree across its three views:
    response "cost" objects roll into stats.cost (ns), which the scrape
    re-exposes in microseconds (floored per request, so the ns->us
    comparison carries at most one microsecond of slack per check)."""
    cost = stats.get("cost")
    if not isinstance(cost, dict):
        fail(f"stats verb has no cost object: {cost!r}")
        return
    checks = stats.get("checks", 0)

    for metric, key in [("seminal_cost_cpu_us_total", "cpu_ns"),
                        ("seminal_cost_wall_us_total", "wall_ns")]:
        got = single_value(samples, metric)
        want_us = cost.get(key, 0) // 1000
        if got is None or not (want_us - checks <= got <= want_us):
            fail(f"{metric} = {got} but stats.cost.{key} = {cost.get(key)} "
                 f"ns (floor-per-request slack is {checks})")

    for metric, key in [
        ("seminal_cost_oracle_calls_total", "oracle_calls"),
        ("seminal_cost_inference_runs_total", "inference_runs"),
        ("seminal_cost_verdict_cache_hits_total", "verdict_cache_hits"),
        ("seminal_cost_arena_nodes", "arena_nodes"),
        ("seminal_cost_arena_bytes", "arena_bytes"),
    ]:
        got = single_value(samples, metric)
        if got != cost.get(key):
            fail(f"{metric} = {got} but stats.cost.{key} = {cost.get(key)}")

    # Every check lands one sample in the per-request CPU histogram,
    # and the per-shard CPU split covers the whole scrape total.
    cpu_count = sum(samples.get("seminal_request_cpu_us_count", {}).values())
    if cpu_count != checks:
        fail(f"seminal_request_cpu_us_count sums to {cpu_count}, expected "
             f"stats.checks = {checks}")
    shard_cpu = sum(samples.get("seminal_shard_cpu_us_total", {}).values())
    total_cpu = single_value(samples, "seminal_cost_cpu_us_total")
    if total_cpu is not None and shard_cpu != total_cpu:
        fail(f"seminal_shard_cpu_us_total sums to {shard_cpu} but "
             f"seminal_cost_cpu_us_total = {total_cpu}")

    # Burn-rate gauges exist for both windows and are finite and
    # non-negative; the actual value depends on live traffic.
    burn = samples.get("seminal_slo_burn_rate_milli", {})
    for window in ('{window="fast"}', '{window="slow"}'):
        if window not in burn:
            fail(f"seminal_slo_burn_rate_milli missing {window} series")
        elif not (burn[window] >= 0):
            fail(f"seminal_slo_burn_rate_milli{window} = {burn[window]}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--port", type=int, required=True,
                    help="the daemon's --metrics-port")
    ap.add_argument("--socket", required=True,
                    help="the daemon's --socket path (for the stats verb)")
    ap.add_argument("--expect-checks", type=int, default=None,
                    help="assert the daemon served exactly N checks")
    args = ap.parse_args()

    status, health = fetch(args.port, "/healthz")
    if status != 200 or json.loads(health) != {"ok": True}:
        fail(f"/healthz returned {status}: {health!r}")

    status, text = fetch(args.port, "/metrics")
    if status != 200:
        fail(f"/metrics returned {status}")
    samples = parse_exposition(text)

    for family in REQUIRED_FAMILIES:
        present = any(name == family or name.startswith(family + "_")
                      for name in samples)
        if not present:
            fail(f"required family {family} missing from /metrics")

    stats = stats_verb(args.socket)
    reconcile(samples, stats)
    reconcile_ledger(samples, stats)

    if args.expect_checks is not None and \
            stats.get("checks") != args.expect_checks:
        fail(f"stats.checks = {stats.get('checks')}, expected "
             f"{args.expect_checks}")

    if failures:
        print(f"{len(failures)} metric gate violation(s)", file=sys.stderr)
        return 1
    print(f"metrics gate: OK ({len(samples)} sample series, "
          f"{stats.get('checks')} checks reconciled)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
