#!/usr/bin/env python3
"""Gate CI on the corpus quality-telemetry snapshot staying healthy.

Compares a freshly produced telemetry snapshot (seminal_corpus stdout,
or DIR/telemetry_snapshot.json under --telemetry=DIR) against the
committed bench/BASELINE_telemetry.json.

Every gated field is deterministic in (scale, seed) -- the corpus is
seeded and the search is deterministic -- so the gate is EXACT equality,
not a tolerance band: running the sweep twice on the same commit
produces zero drift, and any difference against the baseline means
message quality, ranking, or search effort actually changed. Gated
fields:

  * the Figure-5 bucket distribution (buckets 1-5 + unknown) and the
    derived headline percentages (ours better / checker better /
    no worse / triage helped);
  * the quality distributions of all three message producers
    (checker, ours, ours-no-triage);
  * rank-of-true-fix: how many files had the true fix ranked, and the
    p50/p95/max of its rank;
  * per-layer win counts (which search layer produced the top-ranked
    suggestion) and the no-suggestion count;
  * search-effort totals: oracle calls, inference runs, slice-pruned
    calls, cache hits, files sliced.

wall_seconds is carried in the snapshot for trend plots but never gated
(it is the one hardware-dependent field). The "config" label is
informational: a snapshot produced under a degraded configuration (e.g.
seminal_corpus --no-triage) is still *compared*, so quality drift is
reported as a regression (exit 1) rather than hidden behind an identity
mismatch -- this is exactly how the gate itself is tested in CI.

Snapshots whose schema_version differs are refused (exit 2): the
RunReport compatibility rule (DESIGN.md section 10) says consumers must
not guess across versions.

Shares scripts/gate_common.py with check_bench_regression.py; same exit
codes: 0 = healthy, 1 = drift/regression, 2 = bad invocation/inputs.
"""

import sys

from gate_common import (check_exact, finish, load_snapshot, make_parser,
                         require_kind, require_same_identity)

#: Scalar top-level fields gated by exact equality.
EXACT_FIELDS = (
    "files",
    "unknown_bucket",
    "ours_better_pct",
    "checker_better_pct",
    "no_worse_pct",
    "triage_helped_pct",
    "no_suggestion",
    "oracle_calls",
    "inference_runs",
    "slice_pruned_calls",
    "cache_hits",
    "files_sliced",
)


def check_dict(failures, label, fresh, base):
    """Exact comparison of a {name: count} object, key-by-key so the
    failure report names the drifted entry."""
    for key in sorted(set(base) | set(fresh)):
        check_exact(failures, f"{label}[{key}]", fresh.get(key),
                    base.get(key))


def check_telemetry(base, fresh):
    failures = []

    check_dict(failures, "buckets", fresh.get("buckets", {}),
               base.get("buckets", {}))
    for producer in sorted(set(base.get("quality", {})) |
                           set(fresh.get("quality", {}))):
        check_dict(failures, f"quality[{producer}]",
                   fresh.get("quality", {}).get(producer, {}),
                   base.get("quality", {}).get(producer, {}))
    check_dict(failures, "layer_wins", fresh.get("layer_wins", {}),
               base.get("layer_wins", {}))
    check_dict(failures, "rank_of_true_fix",
               fresh.get("rank_of_true_fix", {}),
               base.get("rank_of_true_fix", {}))

    for key in EXACT_FIELDS:
        check_exact(failures, key, fresh.get(key), base.get(key))

    return failures


def main():
    parser = make_parser(
        description=__doc__,
        epilog="examples:\n"
               "  build/examples/seminal_corpus --scale=0.5 > fresh.json\n"
               "  compare_telemetry.py bench/BASELINE_telemetry.json "
               "fresh.json\n")
    args = parser.parse_args()

    base = load_snapshot(args.baseline)
    fresh = load_snapshot(args.fresh)

    require_kind(base, args.baseline, ("telemetry",))
    require_kind(fresh, args.fresh, ("telemetry",))
    if base.get("schema_version") != fresh.get("schema_version"):
        print(f"error: schema_version {fresh.get('schema_version')!r} does "
              f"not match baseline {base.get('schema_version')!r}; "
              f"re-generate the baseline for the new schema",
              file=sys.stderr)
        sys.exit(2)
    require_same_identity(base, fresh)
    if base.get("config") != fresh.get("config"):
        # Informational by design: the comparison proceeds so quality
        # drift surfaces as exit 1 (see module docstring).
        print(f"note: comparing config {fresh.get('config')!r} against "
              f"baseline config {base.get('config')!r}", file=sys.stderr)

    print(f"files {fresh.get('files')}, ours better "
          f"{fresh.get('ours_better_pct')}%, no worse "
          f"{fresh.get('no_worse_pct')}% (baseline "
          f"{base.get('ours_better_pct')}% / {base.get('no_worse_pct')}%)")
    finish(check_telemetry(base, fresh), "telemetry gate")


if __name__ == "__main__":
    main()
