#!/usr/bin/env python3
"""Token-level invariant lint for src/ (DESIGN.md section 15).

Three invariants, enforced fail-closed in CI (lint job) and as a ctest:

  1. sync-primitives: no raw std::mutex / std::shared_mutex /
     std::condition_variable (or their lock guards, or pthread mutexes)
     outside support/Sync.h. Everything synchronizes through the
     annotated, ranked seminal::sync wrappers, or the thread-safety
     analysis and the lock-rank checker have holes.
  2. determinism: no rand()/srand()/random_device, no wall-clock
     (time(), gettimeofday, timespec_get, system_clock) in src/.
     Ranked suggestions must be byte-identical across runs and thread
     counts; the only sanctioned randomness is the seeded support/Rng.h
     and the only sanctioned wall-clock is log-line timestamps
     (steady_clock, which never flows into results, stays allowed).
  3. stdout: no std::cout / printf / puts in src/. Library code reports
     through return values, streams handed in by the caller, or the
     logger; stdout belongs to the CLI entry points outside src/.

Matching is token-ish: comments and string/char literals are stripped
first, so prose mentioning std::mutex stays legal. Allowlists are
narrow, per-rule, per-file, and live here so a reviewer sees every
exemption in one place.

Exit 0 when clean; prints one "file:line: [rule] token" per finding and
exits 1 otherwise. Run from anywhere: paths resolve relative to the
repo root (this script's parent's parent).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

RULES = [
    (
        "sync-primitives",
        re.compile(
            r"std\s*::\s*(?:recursive_|timed_|recursive_timed_)?mutex\b"
            r"|std\s*::\s*shared_(?:mutex|timed_mutex)\b"
            r"|std\s*::\s*condition_variable(?:_any)?\b"
            r"|std\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
            r"|\bpthread_(?:mutex|rwlock|cond)_"
        ),
        # The one home for raw primitives: the wrappers themselves.
        {"support/Sync.h"},
    ),
    (
        "determinism",
        re.compile(
            r"\b(?:s?rand|rand_r)\s*\("
            r"|std\s*::\s*random_device\b"
            r"|system_clock\b"
            r"|\btime\s*\("
            r"|\b(?:gettimeofday|timespec_get)\s*\("
            r"|clock_gettime\s*\(\s*CLOCK_REALTIME"
        ),
        # Log lines carry wall-clock timestamps by design; nothing from
        # Log.cpp flows back into search results.
        {"obs/Log.cpp"},
    ),
    (
        "stdout",
        re.compile(
            r"std\s*::\s*cout\b"
            r"|\b(?:printf|puts|putchar)\s*\("
            r"|\bfprintf\s*\(\s*stdout"
            r"|\bf(?:puts|write)\s*\(\s*[^,)]*,\s*stdout\s*\)"
        ),
        set(),
    ),
]

STRIP_RE = re.compile(
    r"""
    //[^\n]*                     # line comment
    | /\*.*?\*/                  # block comment
    | "(?:[^"\\\n]|\\.)*"        # string literal
    | '(?:[^'\\\n]|\\.)*'        # char literal
    """,
    re.DOTALL | re.VERBOSE,
)


def stripped_lines(text):
    """Text with comments and literals blanked (newlines kept, so line
    numbers survive), split into lines."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    return STRIP_RE.sub(blank, text).splitlines()


def main():
    findings = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in {".h", ".cpp", ".inc", ".def"}:
            continue
        rel = path.relative_to(SRC).as_posix()
        lines = stripped_lines(path.read_text(encoding="utf-8"))
        for rule, pattern, allow in RULES:
            if rel in allow:
                continue
            for lineno, line in enumerate(lines, 1):
                for m in pattern.finditer(line):
                    findings.append(
                        f"src/{rel}:{lineno}: [{rule}] {m.group(0).strip()}"
                    )
    if findings:
        print(f"check_invariants: {len(findings)} violation(s):")
        for f in findings:
            print("  " + f)
        print(
            "see DESIGN.md section 15 (concurrency contract) and the "
            "rule docstrings in scripts/check_invariants.py"
        )
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
