#!/usr/bin/env python3
"""Token-level invariant lint for src/ (DESIGN.md section 15).

Three invariants, enforced fail-closed in CI (lint job) and as a ctest:

  1. sync-primitives: no raw std::mutex / std::shared_mutex /
     std::condition_variable (or their lock guards, or pthread mutexes)
     outside support/Sync.h. Everything synchronizes through the
     annotated, ranked seminal::sync wrappers, or the thread-safety
     analysis and the lock-rank checker have holes.
  2. determinism: no rand()/srand()/random_device, no wall-clock
     (time(), gettimeofday, timespec_get, system_clock) in src/.
     Ranked suggestions must be byte-identical across runs and thread
     counts; the only sanctioned randomness is the seeded support/Rng.h
     and the only sanctioned wall-clock is log-line timestamps
     (steady_clock, which never flows into results, stays allowed).
  3. stdout: no std::cout / printf / puts in src/. Library code reports
     through return values, streams handed in by the caller, or the
     logger; stdout belongs to the CLI entry points outside src/.

Matching is token-ish: comments and string/char literals are stripped
first, so prose mentioning std::mutex stays legal. Allowlists are
narrow, per-rule, per-file, each entry carrying its justification, and
live here so a reviewer sees every exemption in one place. The
allowlists are themselves linted for minimality: an entry whose file no
longer triggers its rule is reported as stale and fails the check, so
exemptions cannot outlive the code that needed them.

Exit 0 when clean; prints one "file:line: [rule] token" per finding and
exits 1 otherwise. Run from anywhere: paths resolve relative to the
repo root (this script's parent's parent).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Allowlists map file -> the reason the exemption exists. The reason is
# printed when the entry goes stale, so nobody has to archaeology a
# removal.
RULES = [
    (
        "sync-primitives",
        re.compile(
            r"std\s*::\s*(?:recursive_|timed_|recursive_timed_)?mutex\b"
            r"|std\s*::\s*shared_(?:mutex|timed_mutex)\b"
            r"|std\s*::\s*condition_variable(?:_any)?\b"
            r"|std\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
            r"|\bpthread_(?:mutex|rwlock|cond)_"
        ),
        {
            "support/Sync.h": (
                "the one home for raw primitives: the annotated wrappers "
                "themselves hold the std types"
            ),
        },
    ),
    (
        "determinism",
        re.compile(
            r"\b(?:s?rand|rand_r)\s*\("
            r"|std\s*::\s*random_device\b"
            r"|system_clock\b"
            r"|\btime\s*\("
            r"|\b(?:gettimeofday|timespec_get)\s*\("
            r"|\bclock_gettime\s*\("
        ),
        {
            "obs/Log.cpp": (
                "log lines carry wall-clock timestamps by design; nothing "
                "from Log.cpp flows back into search results"
            ),
            "support/Profiler.cpp": (
                "CPU-time clocks (CLOCK_THREAD_CPUTIME_ID / "
                "CLOCK_PROCESS_CPUTIME_ID) have no std::chrono spelling; "
                "profiling is observational and never feeds search results "
                "(pinned by the ProfilerIdentityTest byte-identity test)"
            ),
        },
    ),
    (
        "stdout",
        re.compile(
            r"std\s*::\s*cout\b"
            r"|\b(?:printf|puts|putchar)\s*\("
            r"|\bfprintf\s*\(\s*stdout"
            r"|\bf(?:puts|write)\s*\(\s*[^,)]*,\s*stdout\s*\)"
        ),
        {},
    ),
]

STRIP_RE = re.compile(
    r"""
    //[^\n]*                     # line comment
    | /\*.*?\*/                  # block comment
    | "(?:[^"\\\n]|\\.)*"        # string literal
    | '(?:[^'\\\n]|\\.)*'        # char literal
    """,
    re.DOTALL | re.VERBOSE,
)


def stripped_lines(text):
    """Text with comments and literals blanked (newlines kept, so line
    numbers survive), split into lines."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    return STRIP_RE.sub(blank, text).splitlines()


def main():
    findings = []
    # rule -> allowlisted files that actually matched; the difference
    # against the allowlist is the set of stale entries.
    used = {rule: set() for rule, _, _ in RULES}
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in {".h", ".cpp", ".inc", ".def"}:
            continue
        rel = path.relative_to(SRC).as_posix()
        lines = stripped_lines(path.read_text(encoding="utf-8"))
        for rule, pattern, allow in RULES:
            for lineno, line in enumerate(lines, 1):
                for m in pattern.finditer(line):
                    if rel in allow:
                        used[rule].add(rel)
                        continue
                    findings.append(
                        f"src/{rel}:{lineno}: [{rule}] {m.group(0).strip()}"
                    )
    # Minimality: every exemption must still be earning its keep.
    for rule, _, allow in RULES:
        for rel, reason in sorted(allow.items()):
            if rel not in used[rule]:
                findings.append(
                    f"src/{rel}: [{rule}] stale allowlist entry -- the file "
                    f"no longer triggers this rule; remove it from "
                    f"scripts/check_invariants.py (was exempted because: "
                    f"{reason})"
                )
    if findings:
        print(f"check_invariants: {len(findings)} violation(s):")
        for f in findings:
            print("  " + f)
        print(
            "see DESIGN.md section 15 (concurrency contract) and the "
            "rule docstrings in scripts/check_invariants.py"
        )
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
