//===- bench_fig5_quality.cpp - Reproduces Figure 5 (a) and (b) -----------==//
//
// Regenerates the paper's quality evaluation: every analyzed corpus file
// is judged under three messages (conventional checker, SEMINAL, SEMINAL
// without triage) and bucketed into the five categories, stacked per
// programmer (Figure 5a) and per assignment (Figure 5b), followed by the
// headline statistics of Section 3.2.
//
// Paper reference points: ours better 19%, checker better 17%, no worse
// 83%; triage increases wins by 44% and ties by 19%, helping 16% of
// files; 9% of files are ties where no approach helps.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Generator.h"
#include "eval/Runner.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::bench;

namespace {

void printCountsRow(const std::string &Label, const CategoryCounts &C) {
  std::printf("%-14s %5u | %5u %5u %5u %5u %5u |  ours-better %5.1f%%  "
              "checker-better %5.1f%%\n",
              Label.c_str(), C.Total, C.Count[1], C.Count[2], C.Count[3],
              C.Count[4], C.Count[5], C.pct(C.oursBetter()),
              C.pct(C.checkerBetter()));
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);

  header("Figure 5: message quality, SEMINAL vs the conventional checker");
  std::printf("corpus scale %.2f, seed %llu\n", Opts.Scale,
              (unsigned long long)Opts.Seed);

  CorpusOptions CO;
  CO.Scale = Opts.Scale;
  CO.Seed = Opts.Seed;
  Corpus C = generateCorpus(CO);
  std::printf("collected %u files; analyzing %zu equivalence-class "
              "representatives\n\n",
              C.TotalCollected, C.Analyzed.size());

  EvalResults R = runEvaluation(C);

  std::printf("categories: (1) tie  (2) tie, triage needed  (3) ours "
              "better  (4) ours better, triage needed  (5) checker "
              "better\n\n");

  std::printf("%-14s %5s | %5s %5s %5s %5s %5s |\n", "group", "files",
              "cat1", "cat2", "cat3", "cat4", "cat5");
  rule();

  std::printf("Figure 5(a): results separated by programmer\n");
  for (const auto &KV : R.byProgrammer())
    printCountsRow("programmer " + std::to_string(KV.first), KV.second);

  std::printf("\nFigure 5(b): results separated by assignment\n");
  for (const auto &KV : R.byAssignment())
    printCountsRow("assignment " + std::to_string(KV.first), KV.second);

  CategoryCounts T = R.totals();
  std::printf("\n");
  printCountsRow("TOTAL", T);

  header("Section 3.2 headline statistics (paper reference in brackets)");
  std::printf("ours better (cat 3+4):        %5.1f%%   [paper: 19%%]\n",
              T.pct(T.oursBetter()));
  std::printf("checker better (cat 5):       %5.1f%%   [paper: 17%%]\n",
              T.pct(T.checkerBetter()));
  std::printf("ours no worse (cat 1-4):      %5.1f%%   [paper: 83%%]\n",
              T.pct(T.noWorse()));
  std::printf("triage helped (cat 2+4):      %5.1f%%   [paper: 16%%]\n",
              T.pct(T.triageHelped()));
  if (T.Count[3] > 0)
    std::printf("triage win boost (cat4/cat3): %5.1f%%   [paper: 44%%]\n",
                100.0 * double(T.Count[4]) / double(T.Count[3]));
  if (T.Count[1] > 0)
    std::printf("triage tie boost (cat2/cat1): %5.1f%%   [paper: 19%%]\n",
                100.0 * double(T.Count[2]) / double(T.Count[1]));
  std::printf("ties where neither helps:     %5.1f%%   [paper: 9%%]\n",
              T.pct(T.BothPoorTies));
  return 0;
}
