//===- bench_ablation_ranking.cpp - Does the ranker matter? ---------------==//
//
// The paper claims its simple ranking heuristics "suffice" (Section 2.2)
// -- constructive > adaptation > removal, small-first (large-first for
// adaptation), right-bias. This ablation quantifies that: judge quality
// over the corpus when the *top-ranked* suggestion is replaced by the
// worst-ranked one, and when kind preferences are ignored (position
// order). If ranking didn't matter, all three rows would be equal.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Ranker.h"
#include "corpus/Generator.h"
#include "eval/Runner.h"
#include "minicaml/Parser.h"

#include <algorithm>
#include <cstdio>

using namespace seminal;
using namespace seminal::caml;

namespace {

enum class Policy { Ranked, Reversed, Unranked };

/// Quality of the suggestion a policy would present first.
Quality judgeWithPolicy(const CorpusFile &File, Policy P) {
  ParseResult PR = parseProgram(File.Source);
  if (!PR.ok())
    return Quality::Poor;
  SeminalReport R = runSeminal(*PR.Prog);
  if (R.Suggestions.empty())
    return Quality::Poor;
  switch (P) {
  case Policy::Ranked:
    break;
  case Policy::Reversed:
    std::reverse(R.Suggestions.begin(), R.Suggestions.end());
    break;
  case Policy::Unranked:
    // Deterministic arbitrary order: sort by description text.
    std::sort(R.Suggestions.begin(), R.Suggestions.end(),
              [](const Suggestion &A, const Suggestion &B) {
                return A.Description < B.Description;
              });
    break;
  }
  return judgeSeminal(R, File.Truths);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::DriverOptions Opts = bench::parseDriverArgs(Argc, Argv);

  bench::header("Ablation: the ranker's contribution to message quality");
  CorpusOptions CO;
  CO.Scale = Opts.Scale;
  CO.Seed = Opts.Seed;
  Corpus C = generateCorpus(CO);
  std::printf("judging the first-presented suggestion on %zu files\n\n",
              C.Analyzed.size());

  const Policy Policies[] = {Policy::Ranked, Policy::Reversed,
                             Policy::Unranked};
  const char *Names[] = {"paper ranking", "reversed ranking",
                         "alphabetical (no ranking)"};

  std::printf("%-28s %10s %15s %8s\n", "policy", "accurate",
              "good-location", "poor");
  bench::rule();
  for (int P = 0; P < 3; ++P) {
    unsigned Acc = 0, Good = 0, Poor = 0;
    for (const CorpusFile &File : C.Analyzed) {
      switch (judgeWithPolicy(File, Policies[P])) {
      case Quality::Accurate:
        ++Acc;
        break;
      case Quality::GoodLocation:
        ++Good;
        break;
      case Quality::Poor:
        ++Poor;
        break;
      }
    }
    unsigned Total = Acc + Good + Poor;
    std::printf("%-28s %7.1f%% %12.1f%% %7.1f%%\n", Names[P],
                100.0 * Acc / Total, 100.0 * Good / Total,
                100.0 * Poor / Total);
  }
  std::printf("\nIf the paper's heuristics were irrelevant the rows would "
              "match; the drop below quantifies their contribution.\n");
  return 0;
}
