//===- bench_server.cpp - Search-as-a-service latency and throughput ------==//
//
// Measures what the daemon exists for (DESIGN.md section 13): the
// editor loop. Three series:
//
//   * cold-request latency: every check against a freshly reset
//     session, the one-shot seminal_cli cost.
//   * warm edit-resubmit latency: the same program resubmitted to a
//     live session after an edit below the failing decl -- the session
//     replays the conventional error from its memo, serves every
//     localization probe from the prefix it already proved, re-adopts
//     the seed checkpoint and answers the search wave from the retained
//     verdict cache, so the request is mostly parsing.
//   * sustained throughput: concurrent sessions sharded across 1/4/8
//     workers, requests/sec of warm resubmits.
//
// Warm answers are compared against cold one-shot runs of the same
// source; any divergence is a bug (suggestion_mismatches in the JSON,
// gated to zero). The speedup ratio is measured within one process on
// one machine, so it is hardware-independent and gated against
// bench/BASELINE_server.json (floor: max(10x, 90% of baseline)).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Message.h"
#include "core/Seminal.h"
#include "server/Server.h"
#include "server/Session.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace seminal;
using namespace seminal::bench;
using namespace seminal::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t Index = size_t(P * double(Samples.size() - 1) + 0.5);
  return Samples[std::min(Index, Samples.size() - 1)];
}

/// The benchmark program: decls whose inference cost dwarfs their parse
/// cost, one ill-typed decl near the end, and a trailing decl the
/// "editor" keeps touching. Edits below the failing decl are the best
/// case for session retention and the common case in practice (the user
/// fixes code after the first error).
///
/// The cost asymmetry comes from let-polymorphism: d<i>'s inferred type
/// is a pair tree that doubles per link, the classic HM worst case, so
/// the chain costs orders of magnitude more to infer than to parse.
/// Depth 4 is calibrated to tens of milliseconds of inference -- depth
/// 5 is minutes on this engine -- and stays fixed while --scale only
/// adds cheap filler decls. That keeps the warm path (which skips all
/// inference) honest: it still pays the full parse + intern cost of
/// every decl.
std::string makeProgram(size_t Decls, int TailValue) {
  const size_t Depth = 4;
  std::string Out;
  size_t Emitted = 0;
  // Independent chains of Depth+1 decls each, so inference cost grows
  // linearly with the decl count while staying exponential per chain.
  for (size_t Chain = 0; Emitted + 3 < Decls; ++Chain) {
    std::string C = "c" + std::to_string(Chain) + "_";
    Out += "let " + C + "0 x = (x, x)\n";
    ++Emitted;
    for (size_t I = 1; I <= Depth && Emitted + 3 < Decls; ++I, ++Emitted) {
      std::string N = std::to_string(I), P = std::to_string(I - 1);
      Out += "let " + C + N + " x = " + C + P + " (" + C + P + " x)\n";
    }
  }
  Out += "let helper n = n + 1\n";
  Out += "let broken = helper true\n"; // bool where int expected
  Out += "let tail = " + std::to_string(TailValue) + "\n";
  return Out;
}

std::vector<std::string> renderedMessages(const CheckOutcome &O) {
  std::vector<std::string> Out;
  for (const auto &S : O.Suggestions)
    Out.push_back(S.Message);
  return Out;
}

/// Cold reference: a one-shot runSeminal of the same source, rendered
/// the way Session renders (same MessageOptions defaults).
std::vector<std::string> oneShotMessages(const std::string &Source) {
  SeminalOptions Opts;
  SeminalReport R = runSeminalOnSource(Source, Opts);
  std::vector<std::string> Out;
  for (const Suggestion &S : R.Suggestions)
    Out.push_back(renderSuggestion(S, Opts.Message));
  return Out;
}

struct ThroughputRow {
  unsigned Threads = 0;
  size_t Requests = 0;
  double Seconds = 0.0;
  double Rps = 0.0;
};

ThroughputRow measureThroughput(unsigned Threads, size_t RequestsPerSession,
                                size_t Decls) {
  ServerOptions SO;
  SO.Threads = Threads;
  ServerEngine Engine(SO);

  auto CheckLine = [&](size_t Session, int Tail) {
    std::string Line = "{\"method\":\"check\",\"id\":1,\"session\":\"s";
    Line += std::to_string(Session);
    Line += "\",\"source\":\"";
    Line += jsonEscape(makeProgram(Decls, Tail));
    Line += "\"}";
    return Line;
  };
  auto Discard = [](const std::string &) {};

  // Prime every session (unmeasured): the steady state of an editor
  // fleet is warm.
  for (unsigned S = 0; S < Threads; ++S)
    Engine.submit(CheckLine(S, 0), Discard);
  Engine.drain();

  ThroughputRow Row;
  Row.Threads = Threads;
  Row.Requests = RequestsPerSession * Threads;
  Clock::time_point Start = Clock::now();
  for (size_t I = 0; I < RequestsPerSession; ++I)
    for (unsigned S = 0; S < Threads; ++S)
      Engine.submit(CheckLine(S, int(I % 2) + 1), Discard);
  Engine.drain();
  Row.Seconds = msSince(Start) / 1000.0;
  Row.Rps = Row.Seconds > 0 ? double(Row.Requests) / Row.Seconds : 0.0;
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);
  const size_t Decls = std::max<size_t>(10, size_t(120 * Opts.Scale));
  const size_t Iterations = std::max<size_t>(6, size_t(20 * Opts.Scale));

  header("Search-as-a-service: cold vs warm edit-resubmit (" +
         std::to_string(Decls) + " decls, " + std::to_string(Iterations) +
         " iterations)");

  // Reference answers from cold one-shot runs, for the identity check.
  std::vector<std::string> Expected[2] = {
      oneShotMessages(makeProgram(Decls, 1)),
      oneShotMessages(makeProgram(Decls, 2)),
  };
  size_t Mismatches = 0;

  // Cold series: reset before every check, so each request pays the
  // full one-shot cost inside the same Session machinery the warm
  // series uses (identical rendering and bookkeeping overhead).
  Session Cold("cold", SessionConfig());
  std::vector<double> ColdMs;
  uint64_t ColdInferenceRuns = 0;
  for (size_t I = 0; I < Iterations; ++I) {
    Cold.reset();
    std::string Source = makeProgram(Decls, int(I % 2) + 1);
    Clock::time_point Start = Clock::now();
    CheckOutcome Out = Cold.check(Source, CheckOptions());
    ColdMs.push_back(msSince(Start));
    ColdInferenceRuns += Out.InferenceRuns;
    if (renderedMessages(Out) != Expected[I % 2])
      ++Mismatches;
  }

  // Warm series: one live session, primed once, then edit-resubmits
  // that only touch the decl after the error.
  Session Warm("warm", SessionConfig());
  Warm.check(makeProgram(Decls, 0), CheckOptions());
  std::vector<double> WarmMs;
  uint64_t WarmInferenceRuns = 0;
  uint64_t WarmPrefixHits = 0, WarmVerdictReuses = 0, WarmSeedAdoptions = 0,
           WarmConvMemoHits = 0;
  for (size_t I = 0; I < Iterations; ++I) {
    std::string Source = makeProgram(Decls, int(I % 2) + 1);
    Clock::time_point Start = Clock::now();
    CheckOutcome Out = Warm.check(Source, CheckOptions());
    WarmMs.push_back(msSince(Start));
    WarmInferenceRuns += Out.InferenceRuns;
    WarmPrefixHits += Out.Accel.SessionPrefixHits;
    WarmVerdictReuses += Out.Accel.SessionVerdictReuses;
    WarmSeedAdoptions += Out.Accel.SessionSeedAdoptions;
    WarmConvMemoHits += Out.Accel.SessionConvMemoHits;
    if (renderedMessages(Out) != Expected[I % 2])
      ++Mismatches;
  }

  double ColdP50 = percentile(ColdMs, 0.50), ColdP95 = percentile(ColdMs, 0.95);
  double WarmP50 = percentile(WarmMs, 0.50), WarmP95 = percentile(WarmMs, 0.95);
  double Speedup = WarmP50 > 0 ? ColdP50 / WarmP50 : 0.0;

  std::printf("%-28s p50 %9.3f ms   p95 %9.3f ms   inference runs %llu\n",
              "cold request", ColdP50, ColdP95,
              (unsigned long long)ColdInferenceRuns);
  std::printf("%-28s p50 %9.3f ms   p95 %9.3f ms   inference runs %llu\n",
              "warm edit-resubmit", WarmP50, WarmP95,
              (unsigned long long)WarmInferenceRuns);
  std::printf("%-28s %9.1fx   (suggestion mismatches: %zu)\n",
              "warm speedup (p50)", Speedup, Mismatches);
  std::printf("%-28s prefix hits %llu, verdict reuses %llu, seed "
              "adoptions %llu, conv memo hits %llu\n",
              "warm reuse totals", (unsigned long long)WarmPrefixHits,
              (unsigned long long)WarmVerdictReuses,
              (unsigned long long)WarmSeedAdoptions,
              (unsigned long long)WarmConvMemoHits);

  header("Sustained warm throughput (sharded sessions)");
  std::vector<ThroughputRow> Throughput;
  for (unsigned Threads : {1u, 4u, 8u}) {
    ThroughputRow Row = measureThroughput(Threads, Iterations, Decls);
    Throughput.push_back(Row);
    std::printf("%u thread(s): %zu requests in %.3f s  =  %8.1f req/s\n",
                Row.Threads, Row.Requests, Row.Seconds, Row.Rps);
  }

  if (Mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu warm responses diverged from cold one-shot "
                 "runs\n",
                 Mismatches);
  }

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return 2;
    }
    Out << "{\n"
        << "  \"bench\": \"server\",\n"
        << "  \"scale\": " << Opts.Scale << ",\n"
        << "  \"seed\": " << Opts.Seed << ",\n"
        << "  \"decls\": " << Decls << ",\n"
        << "  \"iterations\": " << Iterations << ",\n"
        << "  \"cold_p50_ms\": " << ColdP50 << ",\n"
        << "  \"cold_p95_ms\": " << ColdP95 << ",\n"
        << "  \"warm_p50_ms\": " << WarmP50 << ",\n"
        << "  \"warm_p95_ms\": " << WarmP95 << ",\n"
        << "  \"speedup_warm\": " << Speedup << ",\n"
        << "  \"suggestion_mismatches\": " << Mismatches << ",\n"
        << "  \"cold_inference_runs\": " << ColdInferenceRuns << ",\n"
        << "  \"warm_inference_runs\": " << WarmInferenceRuns << ",\n"
        << "  \"warm_prefix_hits\": " << WarmPrefixHits << ",\n"
        << "  \"warm_verdict_reuses\": " << WarmVerdictReuses << ",\n"
        << "  \"warm_seed_adoptions\": " << WarmSeedAdoptions << ",\n"
        << "  \"warm_conv_memo_hits\": " << WarmConvMemoHits << ",\n"
        << "  \"throughput\": [";
    for (size_t I = 0; I < Throughput.size(); ++I) {
      const ThroughputRow &Row = Throughput[I];
      Out << (I ? "," : "") << "\n    {\"threads\": " << Row.Threads
          << ", \"requests\": " << Row.Requests << ", \"rps\": " << Row.Rps
          << "}";
    }
    Out << "\n  ]\n}\n";
  }
  return Mismatches == 0 ? 0 : 1;
}
