//===- bench_fig10_cpp.cpp - Reproduces Figures 10 and 11 -----------------==//
//
// Regenerates the C++ template-function experiment: the STL client of
// Figure 10 (transform + compose1 + bind1st + labs) produces the
// instantiation-chain error wall of Figure 11 from the conventional
// checker, while the search-based approach suggests wrapping labs in
// ptr_fun. Also reports the search effort and a second scenario with the
// inverse mistake.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "minicpp/CcSearch.h"
#include "minicpp/CcStl.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::cpp;
using namespace seminal::bench;

namespace {

CcProgram buildFigure10() {
  CcProgram Prog;
  addMiniStl(Prog);

  auto MyFun = std::make_unique<CcFuncDecl>();
  MyFun->Name = "myFun";
  MyFun->Params = {{"inv", ccVector(ccLong())},
                   {"outv", ccVector(ccLong())}};
  MyFun->RetType = ccVoid();

  std::vector<CcExprPtr> BindArgs;
  BindArgs.push_back(ccConstruct("multiplies", {ccLong()}, {}));
  BindArgs.push_back(ccIntLit(5));
  CcExprPtr Bound = ccCallNamed("bind1st", std::move(BindArgs));

  std::vector<CcExprPtr> ComposeArgs;
  ComposeArgs.push_back(std::move(Bound));
  ComposeArgs.push_back(ccVar("labs")); // the Figure 10 mistake
  CcExprPtr Composed = ccCallNamed("compose1", std::move(ComposeArgs));

  std::vector<CcExprPtr> TransformArgs;
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "begin", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "end", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("outv"), "begin", {}));
  TransformArgs.push_back(std::move(Composed));
  MyFun->Body.push_back(
      ccExprStmt(ccCallNamed("transform", std::move(TransformArgs))));

  Prog.Funcs.push_back(std::move(MyFun));
  return Prog;
}

} // namespace

int main() {
  header("Figure 10: the STL client with a type error");
  std::printf(
      "// compute outv[i] = labs(5 * inv[i])\n"
      "void myFun(vector<long>& inv, vector<long>& outv) {\n"
      "  transform(inv.begin(), inv.end(), outv.begin(),\n"
      "            compose1(bind1st(multiplies<long>(), 5), labs));\n"
      "}\n\n");

  CcProgram Prog = buildFigure10();
  CcReport R = runCppSeminal(Prog);

  header("Figure 11: the conventional (gcc-style) error message");
  std::printf("%s\n\n", R.Baseline.str().c_str());

  header("Our approach");
  std::printf("%s\n", R.bestMessage().c_str());
  std::printf("\n(search used %zu oracle calls; %zu successful "
              "change(s) found)\n",
              R.OracleCalls, R.Suggestions.size());

  header("Control: the fixed client type-checks");
  {
    CcProgram Fixed = buildFigure10();
    CcFuncDecl *F = Fixed.findFunc("myFun");
    CcExpr *Compose = F->Body[0].E->child(4);
    std::vector<CcExprPtr> Wrapped;
    Wrapped.push_back(std::move(Compose->Children[2]));
    Compose->Children[2] = ccCallNamed("ptr_fun", std::move(Wrapped));
    CcCheckResult Check = checkProgram(Fixed);
    std::printf("with ptr_fun(labs): %s\n",
                Check.ok() ? "no type errors" : Check.str().c_str());
  }
  return 0;
}
