//===- bench_fig6_equivclasses.cpp - Reproduces Figure 6 -------------------==//
//
// Regenerates the distribution of time-sequence equivalence-class sizes:
// groups of consecutively collected files exhibiting the same problem,
// of which only one representative is analyzed. The paper's shape: most
// classes are very small, with a heavy tail (log-scale counts); 1075
// analyzed representatives out of 2122 collected files.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Generator.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::bench;

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);

  header("Figure 6: sizes of same-problem file groups (log scale)");
  CorpusOptions CO;
  CO.Scale = Opts.Scale;
  CO.Seed = Opts.Seed;
  Corpus C = generateCorpus(CO);

  std::printf("%s\n",
              C.ClassSizes.renderLogScale("size", "classes").c_str());

  std::printf("analyzed %zu representatives out of %u collected files "
              "[paper: 1075 of 2122]\n",
              C.Analyzed.size(), C.TotalCollected);
  double Mean = C.Analyzed.empty()
                    ? 0.0
                    : double(C.TotalCollected) / double(C.Analyzed.size());
  std::printf("mean class size %.2f [paper: ~1.97]\n", Mean);

  uint64_t Singletons = C.ClassSizes.count(1);
  std::printf("singleton classes: %llu of %llu (%.1f%%)\n",
              (unsigned long long)Singletons,
              (unsigned long long)C.ClassSizes.total(),
              100.0 * double(Singletons) / double(C.ClassSizes.total()));
  return 0;
}
