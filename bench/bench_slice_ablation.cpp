//===- bench_slice_ablation.cpp - Slice-guided search ablation ------------==//
//
// Ablation for the constraint-provenance error slice (DESIGN.md section
// 9): runs the Figure-7 corpus through three configurations --
//
//   plain         no slice at all (the baseline searcher)
//   slice-ranked  slice computed, ranking boosted, no pruning
//   slice-guided  slice additionally prunes provably-futile oracle calls
//
// and enforces the two-sided acceptance contract: the ranked and guided
// configurations must produce byte-identical suggestion lists on every
// file (pruning is sound, not heuristic), and guided must spend at least
// MIN_REDUCTION_PCT fewer logical oracle calls than plain in aggregate
// (pruning is worth shipping). Either violation exits 1, so running the
// driver is itself the CI gate; --json=<path> emits the summary that
// scripts/check_bench_regression.py compares against the committed
// baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "minicaml/Printer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace seminal;
using namespace seminal::bench;

namespace {

/// Minimum aggregate logical-call reduction (guided vs plain) the slice
/// must deliver over the corpus, in percent. The acceptance bar.
constexpr double MIN_REDUCTION_PCT = 25.0;

/// Order-sensitive digest of a report's ranked suggestions; identical
/// strings mean identical suggestion lists in identical order.
std::string fingerprint(const SeminalReport &R) {
  std::string Out;
  for (const Suggestion &S : R.Suggestions) {
    Out += std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/";
    if (S.Original)
      Out += caml::printExpr(*S.Original);
    Out += "=>";
    if (S.Replacement)
      Out += caml::printExpr(*S.Replacement);
    Out += "/" + S.Description + "/" + S.PatternBefore + ";";
  }
  return Out;
}

struct SliceRow {
  const char *Name;
  bool ComputeSlice;
  bool SliceGuided;
  // Measured:
  size_t LogicalCalls = 0;
  size_t PrunedCalls = 0;
  size_t FilesSliced = 0;
  size_t SuggestionMismatches = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Driver = parseDriverArgs(Argc, Argv);

  header("Ablation: slice-guided search (Figure-7 corpus)");
  CorpusOptions CO;
  CO.Scale = Driver.Scale;
  CO.Seed = Driver.Seed;
  Corpus C = generateCorpus(CO);

  std::vector<SliceRow> Rows = {
      {"plain", false, false},
      {"slice-ranked", true, false},
      {"slice-guided", false, true},
  };

  // Identity is checked between slice-ranked and slice-guided: both see
  // the slice (so the ranker's in-slice boost applies to both) and the
  // guided run must reproduce the ranked run's list exactly. The plain
  // row is the effort baseline only -- its ordering may legitimately
  // differ because it never ranks with slice information.
  std::vector<std::string> RankedFps;

  for (SliceRow &Row : Rows) {
    SeminalOptions Opts;
    Opts.Search.ComputeSlice = Row.ComputeSlice;
    Opts.Search.SliceGuided = Row.SliceGuided;
    for (size_t I = 0; I < C.Analyzed.size(); ++I) {
      const CorpusFile &F = C.Analyzed[I];
      SeminalReport R = runSeminalOnSource(F.Source, Opts);
      // Logical effort = calls actually issued plus calls the slice
      // answered statically; plain runs have zero pruned calls, so the
      // comparison currency is uniform across rows.
      Row.LogicalCalls += R.OracleCalls + R.SlicePrunedCalls;
      Row.PrunedCalls += R.SlicePrunedCalls;
      if (R.Slice && R.Slice->Valid)
        ++Row.FilesSliced;
      if (Row.ComputeSlice)
        RankedFps.push_back(fingerprint(R));
      else if (Row.SliceGuided && fingerprint(R) != RankedFps[I])
        ++Row.SuggestionMismatches;
    }
  }

  const SliceRow &Plain = Rows[0];
  const SliceRow &Guided = Rows[2];
  size_t Issued = Guided.LogicalCalls - Guided.PrunedCalls;
  double ReductionPct =
      Plain.LogicalCalls
          ? 100.0 * (1.0 - double(Issued) / double(Plain.LogicalCalls))
          : 0.0;

  std::printf("%zu analyzed files\n\n", C.Analyzed.size());
  std::printf("%-16s %10s %10s %8s %8s %10s\n", "configuration", "logical",
              "issued", "pruned", "sliced", "identical");
  rule();
  for (const SliceRow &Row : Rows)
    std::printf("%-16s %10zu %10zu %8zu %8zu %10s\n", Row.Name,
                Row.LogicalCalls, Row.LogicalCalls - Row.PrunedCalls,
                Row.PrunedCalls, Row.FilesSliced,
                Row.SliceGuided ? (Row.SuggestionMismatches ? "NO" : "yes")
                                : "-");
  rule();
  std::printf("slice-guided oracle-call reduction: %.1f%% "
              "(%zu -> %zu issued calls; floor %.0f%%)\n",
              ReductionPct, Plain.LogicalCalls, Issued, MIN_REDUCTION_PCT);

  if (!Driver.JsonPath.empty()) {
    std::FILE *F = std::fopen(Driver.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Driver.JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"slice_ablation\",\n");
    std::fprintf(F, "  \"files\": %zu,\n  \"scale\": %g,\n  \"seed\": %llu,\n",
                 C.Analyzed.size(), Driver.Scale,
                 (unsigned long long)Driver.Seed);
    std::fprintf(F, "  \"reduction_pct\": %.4f,\n", ReductionPct);
    std::fprintf(F, "  \"min_reduction_pct\": %.1f,\n", MIN_REDUCTION_PCT);
    std::fprintf(F, "  \"configs\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const SliceRow &Row = Rows[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"logical_calls\": %zu, "
                   "\"issued_calls\": %zu, \"pruned_calls\": %zu, "
                   "\"files_sliced\": %zu, \"suggestion_mismatches\": %zu}%s\n",
                   Row.Name, Row.LogicalCalls,
                   Row.LogicalCalls - Row.PrunedCalls, Row.PrunedCalls,
                   Row.FilesSliced, Row.SuggestionMismatches,
                   I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Driver.JsonPath.c_str());
  }

  // The acceptance contract, enforced in-process so the driver doubles
  // as the CI gate.
  bool Failed = false;
  if (Guided.SuggestionMismatches) {
    std::fprintf(stderr,
                 "FAIL: slice-guided diverged from slice-ranked on %zu "
                 "file(s) -- pruning is unsound\n",
                 Guided.SuggestionMismatches);
    Failed = true;
  }
  if (Guided.LogicalCalls != Rows[1].LogicalCalls ||
      Rows[1].LogicalCalls != Plain.LogicalCalls) {
    std::fprintf(stderr,
                 "FAIL: logical call totals differ across configurations "
                 "(%zu / %zu / %zu) -- the pruned+issued accounting leaks\n",
                 Plain.LogicalCalls, Rows[1].LogicalCalls,
                 Guided.LogicalCalls);
    Failed = true;
  }
  if (ReductionPct < MIN_REDUCTION_PCT) {
    std::fprintf(stderr,
                 "FAIL: reduction %.1f%% below the %.0f%% floor\n",
                 ReductionPct, MIN_REDUCTION_PCT);
    Failed = true;
  }
  return Failed ? 1 : 0;
}
