//===- bench_fig7_runtime.cpp - Reproduces Figure 7 ------------------------==//
//
// Regenerates the cumulative distribution of tool runtime over the
// analyzed files under three configurations:
//
//   * full tool (bottom curve in the paper),
//   * the one expensive constructive change -- reparenthesizing nested
//     match expressions, the paper's acknowledged performance bug --
//     disabled (middle curve),
//   * triage disabled (top curve; the paper reports no file over 4 s and
//     95% under 2 s in this configuration).
//
// Absolute times differ from the paper's 2007 hardware + OCaml stack;
// the *ordering* of the three curves and the tail behavior are the
// reproduced shape.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "support/Metrics.h"
#include "support/Stats.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace seminal;
using namespace seminal::bench;

namespace {

double timeOne(const std::string &Source, const SeminalOptions &Opts,
               AccelCounters *Agg = nullptr) {
  // Minimum of two runs: single measurements of millisecond-scale work
  // are at the mercy of the scheduler.
  double Best = 1e30;
  for (int Rep = 0; Rep < 2; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    SeminalReport R = runSeminalOnSource(Source, Opts);
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    if (Sec < Best)
      Best = Sec;
    if (Agg && Rep == 0)
      *Agg += R.Accel;
  }
  return Best;
}

void printCdf(const char *Label, Samples &S) {
  std::printf("%-28s", Label);
  for (double Q : {0.25, 0.50, 0.75, 0.90, 0.95, 1.00})
    std::printf("  %7.2f", S.percentile(Q) * 1000.0);
  std::printf("\n");
}

void jsonCdf(std::ostream &OS, const char *Key, Samples &S) {
  OS << "    \"" << Key << "\": {\"p25_ms\": " << S.percentile(0.25) * 1000.0
     << ", \"p50_ms\": " << S.percentile(0.50) * 1000.0
     << ", \"p75_ms\": " << S.percentile(0.75) * 1000.0
     << ", \"p90_ms\": " << S.percentile(0.90) * 1000.0
     << ", \"p95_ms\": " << S.percentile(0.95) * 1000.0
     << ", \"max_ms\": " << S.max() * 1000.0
     << ", \"mean_ms\": " << S.mean() * 1000.0 << "}";
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);

  header("Figure 7: cumulative distribution of tool runtime");
  CorpusOptions CO;
  CO.Scale = Opts.Scale;
  CO.Seed = Opts.Seed;
  Corpus C = generateCorpus(CO);
  std::printf("timing %zu analyzed files under 4 configurations\n\n",
              C.Analyzed.size());

  SeminalOptions Full; // Oracle acceleration on by default.
  SeminalOptions NoAccel;
  NoAccel.Search.Accel.Checkpoint = false;
  NoAccel.Search.Accel.VerdictCache = false;
  SeminalOptions NoReparen;
  NoReparen.Search.Enum.EnableMatchReparen = false;
  SeminalOptions NoTriage;
  NoTriage.Search.EnableTriage = false;

  Samples FullS, NoAccelS, NoReparenS, NoTriageS;
  AccelCounters FullCounters;
  for (const CorpusFile &F : C.Analyzed) {
    FullS.add(timeOne(F.Source, Full, &FullCounters));
    NoAccelS.add(timeOne(F.Source, NoAccel));
    NoReparenS.add(timeOne(F.Source, NoReparen));
    NoTriageS.add(timeOne(F.Source, NoTriage));
  }

  std::printf("%-28s  %7s  %7s  %7s  %7s  %7s  %7s   (ms)\n", "configuration",
              "p25", "p50", "p75", "p90", "p95", "max");
  rule();
  printCdf("full tool", FullS);
  printCdf("oracle acceleration off", NoAccelS);
  printCdf("perf-bug change disabled", NoReparenS);
  printCdf("triage disabled", NoTriageS);

  rule();
  // The paper's threshold framing, scaled to our (much faster) stack:
  // report the fraction of files under the median-derived thresholds.
  double T1 = FullS.percentile(0.75);
  std::printf("full tool: 75%% of files within %.2f ms; 90%% within %.2f "
              "ms  [paper: 75%% < 4 s, 90%% < 30 s]\n",
              T1 * 1000.0, FullS.percentile(0.90) * 1000.0);
  std::printf("no-triage max %.2f ms vs full max %.2f ms  [paper: "
              "no-triage never exceeded 4 s]\n",
              NoTriageS.max() * 1000.0, FullS.max() * 1000.0);
  std::printf("curve order (mean ms): no-triage %.2f <= no-perf-bug %.2f "
              "<= full %.2f\n",
              NoTriageS.mean() * 1000.0, NoReparenS.mean() * 1000.0,
              FullS.mean() * 1000.0);
  std::printf("oracle acceleration: %.2fx mean speedup (%.2f -> %.2f ms; "
              "identical suggestions by construction, see "
              "bench_oracle_calls)\n",
              FullS.mean() > 0.0 ? NoAccelS.mean() / FullS.mean() : 0.0,
              NoAccelS.mean() * 1000.0, FullS.mean() * 1000.0);
  std::printf("\nfull-tool acceleration counters:\n%s",
              FullCounters.render().c_str());

  // Dedicated metrics pass: attaching a Metrics collector costs two clock
  // reads per oracle call, so it runs outside the timed reps above. It
  // surfaces the per-layer shape (oracle latency distribution, checkpoint
  // reuse depth, candidates per node) behind the aggregate curves.
  Metrics M;
  SeminalOptions Instrumented = Full;
  Instrumented.Search.Metric = &M;
  for (const CorpusFile &F : C.Analyzed)
    runSeminalOnSource(F.Source, Instrumented);
  std::printf("\nfull-tool per-layer metrics (untimed pass):\n%s",
              M.render().c_str());

  if (!Opts.JsonPath.empty()) {
    std::ofstream OS(Opts.JsonPath);
    if (!OS) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return 1;
    }
    OS << "{\n  \"bench\": \"fig7_runtime\",\n  \"scale\": " << Opts.Scale
       << ",\n  \"seed\": " << Opts.Seed
       << ",\n  \"files\": " << C.Analyzed.size() << ",\n  \"configs\": {\n";
    jsonCdf(OS, "full", FullS);
    OS << ",\n";
    jsonCdf(OS, "no_accel", NoAccelS);
    OS << ",\n";
    jsonCdf(OS, "no_reparen", NoReparenS);
    OS << ",\n";
    jsonCdf(OS, "no_triage", NoTriageS);
    OS << "\n  },\n  \"accel_mean_speedup\": "
       << (FullS.mean() > 0.0 ? NoAccelS.mean() / FullS.mean() : 0.0)
       << ",\n  \"counters\": {\"cache_hits\": " << FullCounters.CacheHits
       << ", \"full_inferences\": " << FullCounters.FullInferences
       << ", \"incremental_inferences\": "
       << FullCounters.IncrementalInferences << "},\n  \"metrics\": ";
    M.writeJson(OS);
    OS << "\n}\n";
    std::printf("wrote %s\n", Opts.JsonPath.c_str());
  }
  return 0;
}
