//===- bench_examples.cpp - Reproduces Figures 2, 3, 4, 8 and 9 -----------==//
//
// Runs the paper's worked examples end to end and prints, for each, the
// conventional checker message next to the search-based message, in the
// paper's format. Also demonstrates one instance of every Figure 3
// constructive-change row actually firing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Seminal.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::bench;

namespace {

void showExample(const char *Title, const char *Source) {
  header(Title);
  std::printf("%s\n", Source);
  SeminalReport R = runSeminalOnSource(Source);
  std::printf("Type-checker:\n  %s\n\n", R.conventionalMessage().c_str());
  std::printf("Our approach (%zu oracle calls):\n%s\n", R.OracleCalls,
              R.bestMessage().c_str());
  std::printf("\n");
}

void showFigure3Row(const char *RowDescription, const char *Source) {
  SeminalReport R = runSeminalOnSource(Source);
  std::printf("%-58s -> %s\n", RowDescription,
              R.Suggestions.empty()
                  ? "(no suggestion)"
                  : R.Suggestions.front().Description.c_str());
}

} // namespace

int main() {
  showExample("Figure 2: curried vs tupled function argument",
              "let map2 f aList bList =\n"
              "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
              "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
              "let ans = List.filter (fun x -> x == 0) lst\n");

  showExample("Figure 8: arguments passed in the wrong order",
              "let add str lst = if List.mem str lst then lst\n"
              "                  else str :: lst\n"
              "let vList1 = [\"a\"; \"b\"]\n"
              "let s = \"c\"\n"
              "let out = add vList1 s\n");

  showExample(
      "Figure 9: partial application hides a missing argument",
      "type move = For of int * move list | Stop\n"
      "let rec loop movelist acc =\n"
      "  match movelist with\n"
      "    [] -> acc\n"
      "  | For (moves, lst) :: tl ->\n"
      "      let rec finalLst index searchLst =\n"
      "        if index = moves - 1 then []\n"
      "        else (List.nth searchLst) :: finalLst (index + 1) searchLst\n"
      "      in loop (finalLst 0 lst) acc\n"
      "  | Stop :: tl -> loop tl acc\n");

  showExample("Figure 4: a match with several independent type errors",
              "let f x y =\n"
              "  let n = List.length y in\n"
              "  match (x, y) with\n"
              "    (0, []) -> []\n"
              "  | (m, []) -> m\n"
              "  | (_, 5) -> 5 + \"hi\"\n");

  showExample("Section 2.3: adaptation to context",
              "let e1 x = x ^ \"!\"\n"
              "let e2 = \"s\"\n"
              "let t = if e1 e2 then 1 else 2\n");

  showExample("Section 3.3: misspelled identifier (print for "
              "print_string)",
              "let f x = print x; x + 1\n");

  header("Figure 3: the constructive-change catalog, one firing per row");
  showFigure3Row("remove an argument  (f a1 a2 a3 -> f a1 a3)",
                 "let f a c = a + c\nlet x = f 1 true 2");
  showFigure3Row("add an argument     (f a1 a2 -> f a1 [[...]] a2)",
                 "let f a b c = a + b + c\nlet x = f 1 2 + 1");
  showFigure3Row("reorder arguments   (f a1 a2 -> f a2 a1)",
                 "let f s n = s ^ string_of_int n\nlet x = f 3 \"s\"");
  showFigure3Row("reassociate         (f a1 a2 -> f (a1 a2))",
                 "let f a = string_of_int a\n"
                 "let g s = s ^ \"!\"\n"
                 "let x = g f 3");
  showFigure3Row("tuple the arguments (f a1 a2 -> f (a1, a2))",
                 "let f (p, q) = p + q\nlet x = f 1 2");
  showFigure3Row("curry the tuple     (f (a1, a2) -> f a1 a2)",
                 "let f p q = p + q\nlet x = f (1, 2)");
  showFigure3Row("ref- to field-update (e.fld := e -> e.fld <- e)",
                 "type r = { mutable fld : int }\n"
                 "let v = { fld = 0 }\nlet u = v.fld := 3");
  showFigure3Row("comma list          ([a, b, c] -> [a; b; c])",
                 "let s = List.fold_left (fun a b -> a + b) 0 [1, 2, 3]");
  showFigure3Row("make recursive      (let f = ... -> let rec f = ...)",
                 "let len xs = match xs with [] -> 0 | _ :: t -> 1 + len t");
  return 0;
}
