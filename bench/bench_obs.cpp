//===- bench_obs.cpp - Observability overhead measurements -----------------==//
//
// Prices the live-observability layer (DESIGN.md section 14) so the
// "<1% on the warm path" budget is a measured number, not a hope. Two
// sections:
//
//   * instrument microcosts: ns per LogHistogram::record, per counter
//     inc, per Metrics::observe on a hot (histogram-backed) vs exact
//     (vector-backed) series, per suppressed log event, and per
//     registry scrape while records are flowing.
//   * end-to-end warm p50: the bench_server warm edit-resubmit loop run
//     through a ServerEngine under increasing observability configs --
//     registry only (always on), + info logging, + tail tracing with a
//     threshold nothing crosses, + capture-everything tracing. The
//     overhead_pct numbers compare each config's warm p50 against the
//     registry-only baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Log.h"
#include "obs/OpsRegistry.h"
#include "obs/SlowTraceRing.h"
#include "server/Server.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace seminal;
using namespace seminal::bench;
using namespace seminal::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t Index = size_t(P * double(Samples.size() - 1) + 0.5);
  return Samples[std::min(Index, Samples.size() - 1)];
}

/// Times \p Body over \p Iters calls and returns ns per call. The
/// returned accumulator value keeps the loop observable.
template <typename Fn> double nsPerOp(size_t Iters, Fn &&Body) {
  Clock::time_point Start = Clock::now();
  for (size_t I = 0; I < Iters; ++I)
    Body(I);
  double Ms = msSince(Start);
  return Ms * 1e6 / double(Iters);
}

// Same synthetic editor program as bench_server (see its comment for
// the cost-asymmetry rationale), so warm p50s are comparable across the
// two benches.
std::string makeProgram(size_t Decls, int TailValue) {
  const size_t Depth = 4;
  std::string Out;
  size_t Emitted = 0;
  for (size_t Chain = 0; Emitted + 3 < Decls; ++Chain) {
    std::string C = "c" + std::to_string(Chain) + "_";
    Out += "let " + C + "0 x = (x, x)\n";
    ++Emitted;
    for (size_t I = 1; I <= Depth && Emitted + 3 < Decls; ++I, ++Emitted) {
      std::string N = std::to_string(I), P = std::to_string(I - 1);
      Out += "let " + C + N + " x = " + C + P + " (" + C + P + " x)\n";
    }
  }
  Out += "let helper n = n + 1\n";
  Out += "let broken = helper true\n";
  Out += "let tail = " + std::to_string(TailValue) + "\n";
  return Out;
}

struct ConfigRow {
  std::string Name;
  double WarmP50Ms = 0.0;
  double WarmP95Ms = 0.0;
  double OverheadPct = 0.0;
};

/// Runs the warm edit-resubmit loop under one observability config and
/// returns its latency profile.
ConfigRow measureConfig(const std::string &Name, size_t Decls,
                        size_t Iterations, obs::Logger *Log,
                        obs::SlowTraceRing *Ring, double TraceSlowMs) {
  ServerOptions SO;
  SO.Threads = 1; // One shard: measure the request path, not scheduling.
  SO.Log = Log;
  SO.SlowTraces = Ring;
  SO.TraceSlowMs = TraceSlowMs;
  ServerEngine Engine(SO);

  auto CheckLine = [&](int Tail) {
    std::string Line =
        "{\"method\":\"check\",\"id\":1,\"session\":\"w\",\"source\":\"";
    Line += jsonEscape(makeProgram(Decls, Tail));
    Line += "\"}";
    return Line;
  };

  Engine.handle(CheckLine(0)); // Prime: steady state is warm.
  std::vector<double> WarmMs;
  for (size_t I = 0; I < Iterations; ++I) {
    std::string Line = CheckLine(int(I % 2) + 1);
    Clock::time_point Start = Clock::now();
    Engine.handle(Line);
    WarmMs.push_back(msSince(Start));
  }

  ConfigRow Row;
  Row.Name = Name;
  Row.WarmP50Ms = percentile(WarmMs, 0.50);
  Row.WarmP95Ms = percentile(WarmMs, 0.95);
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);
  const size_t MicroIters = std::max<size_t>(100000, size_t(2e6 * Opts.Scale));
  const size_t Decls = std::max<size_t>(10, size_t(120 * Opts.Scale));
  const size_t Iterations = std::max<size_t>(6, size_t(20 * Opts.Scale));

  header("Instrument microcosts (" + std::to_string(MicroIters) +
         " iterations)");

  LogHistogram Hist;
  double RecordNs =
      nsPerOp(MicroIters, [&](size_t I) { Hist.record(I & 0xffff); });

  obs::OpsRegistry Registry;
  obs::OpsCounter &Counter = Registry.counter("bench_total");
  double CounterNs = nsPerOp(MicroIters, [&](size_t) { Counter.inc(); });

  Metrics M;
  double HotObserveNs = nsPerOp(MicroIters, [&](size_t I) {
    M.observe("bench.latency_us", double(I & 0xffff));
  });
  // The exact series keeps every sample; cap the iterations so the
  // vector does not dominate the bench's own memory.
  size_t ExactIters = std::min<size_t>(MicroIters, 1u << 20);
  double ExactObserveNs = nsPerOp(ExactIters, [&](size_t I) {
    M.observe("bench.samples", double(I & 0xffff));
  });

  std::ostringstream Devnull;
  obs::Logger Quiet(Devnull, obs::LogLevel::Warn);
  double SuppressedLogNs = nsPerOp(MicroIters, [&](size_t I) {
    if (Quiet.enabled(obs::LogLevel::Debug))
      Quiet.debug(obs::LogEvent("bench").num("i", uint64_t(I)));
  });

  // A scrape while the histogram holds samples: the cost a Prometheus
  // poll imposes on the daemon.
  obs::OpsRegistry ScrapeReg;
  LogHistogram &SH = ScrapeReg.histogram("bench_latency_us");
  for (size_t I = 0; I < 100000; ++I)
    SH.record(I & 0xffff);
  ScrapeReg.counter("bench_requests_total").inc(100000);
  size_t ScrapeIters = 1000;
  size_t ScrapeBytes = 0;
  double ScrapeUs = nsPerOp(ScrapeIters, [&](size_t) {
                      ScrapeBytes = ScrapeReg.renderPrometheus().size();
                    }) /
                    1000.0;

  std::printf("%-34s %8.1f ns/op\n", "LogHistogram::record", RecordNs);
  std::printf("%-34s %8.1f ns/op\n", "OpsCounter::inc", CounterNs);
  std::printf("%-34s %8.1f ns/op\n", "Metrics::observe (histogram-backed)",
              HotObserveNs);
  std::printf("%-34s %8.1f ns/op\n", "Metrics::observe (exact samples)",
              ExactObserveNs);
  std::printf("%-34s %8.1f ns/op\n", "suppressed log event", SuppressedLogNs);
  std::printf("%-34s %8.1f us/scrape (%zu bytes)\n", "renderPrometheus",
              ScrapeUs, ScrapeBytes);
  uint64_t KeepAlive = Hist.count() + Counter.value(); // defeat DCE
  if (KeepAlive == 0)
    std::printf("(unreachable)\n");

  header("Warm edit-resubmit p50 by observability config (" +
         std::to_string(Decls) + " decls, " + std::to_string(Iterations) +
         " iterations)");

  std::string TraceDir =
      "/tmp/seminal_bench_obs_" + std::to_string(::getpid());
  std::string Cleanup = "rm -rf '" + TraceDir + "'";
  std::ostringstream LogSink; // Absorbs log output without touching disk.
  obs::Logger InfoLog(LogSink, obs::LogLevel::Info);
  obs::SlowTraceRing Ring(TraceDir, 4);

  std::vector<ConfigRow> Configs;
  Configs.push_back(
      measureConfig("registry_only", Decls, Iterations, nullptr, nullptr,
                    -1.0));
  Configs.push_back(measureConfig("with_logging", Decls, Iterations, &InfoLog,
                                  nullptr, -1.0));
  Configs.push_back(measureConfig("with_tail_tracing", Decls, Iterations,
                                  &InfoLog, &Ring, 1e9));
  Configs.push_back(measureConfig("capture_everything", Decls, Iterations,
                                  &InfoLog, &Ring, 0.0));

  double Baseline = Configs[0].WarmP50Ms;
  for (ConfigRow &Row : Configs) {
    Row.OverheadPct =
        Baseline > 0 ? (Row.WarmP50Ms / Baseline - 1.0) * 100.0 : 0.0;
    std::printf("%-22s p50 %9.3f ms   p95 %9.3f ms   overhead %+6.2f%%\n",
                Row.Name.c_str(), Row.WarmP50Ms, Row.WarmP95Ms,
                Row.OverheadPct);
  }
  (void)std::system(Cleanup.c_str());

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return 2;
    }
    Out << "{\n"
        << "  \"bench\": \"obs\",\n"
        << "  \"scale\": " << Opts.Scale << ",\n"
        << "  \"seed\": " << Opts.Seed << ",\n"
        << "  \"record_ns\": " << RecordNs << ",\n"
        << "  \"counter_inc_ns\": " << CounterNs << ",\n"
        << "  \"observe_hot_ns\": " << HotObserveNs << ",\n"
        << "  \"observe_exact_ns\": " << ExactObserveNs << ",\n"
        << "  \"suppressed_log_ns\": " << SuppressedLogNs << ",\n"
        << "  \"scrape_us\": " << ScrapeUs << ",\n"
        << "  \"scrape_bytes\": " << ScrapeBytes << ",\n"
        << "  \"configs\": [";
    for (size_t I = 0; I < Configs.size(); ++I) {
      const ConfigRow &Row = Configs[I];
      Out << (I ? "," : "") << "\n    {\"name\": \"" << Row.Name
          << "\", \"warm_p50_ms\": " << Row.WarmP50Ms
          << ", \"warm_p95_ms\": " << Row.WarmP95Ms
          << ", \"overhead_pct\": " << Row.OverheadPct << "}";
    }
    Out << "\n  ]\n}\n";
  }
  return 0;
}
