//===- bench_obs.cpp - Observability overhead measurements -----------------==//
//
// Prices the live-observability layer (DESIGN.md section 14) so the
// "<1% on the warm path" budget is a measured number, not a hope. Two
// sections:
//
//   * instrument microcosts: ns per LogHistogram::record, per counter
//     inc, per Metrics::observe on a hot (histogram-backed) vs exact
//     (vector-backed) series, per suppressed log event, and per
//     registry scrape while records are flowing.
//   * end-to-end warm p50: the bench_server warm edit-resubmit loop run
//     through a ServerEngine under increasing observability configs --
//     registry only (always on), + info logging, + tail tracing with a
//     threshold nothing crosses, + capture-everything tracing, + the
//     profiler off/at 99 Hz. The overhead_pct numbers compare each
//     config's CPU per check against the registry-only baseline.
//   * profiler pricing model: per-primitive micro-costs (hook pair off /
//     on / CPU-stamped, sampler tick) times the measured spans-per-check
//     of this workload. This is what CI gates against the section 16
//     budgets, because the budgets sit below the end-to-end noise floor.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Log.h"
#include "obs/OpsRegistry.h"
#include "obs/SlowTraceRing.h"
#include "server/Server.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace seminal;
using namespace seminal::bench;
using namespace seminal::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t Index = size_t(P * double(Samples.size() - 1) + 0.5);
  return Samples[std::min(Index, Samples.size() - 1)];
}

/// Times \p Body over \p Iters calls and returns ns per call. The
/// returned accumulator value keeps the loop observable.
template <typename Fn> double nsPerOp(size_t Iters, Fn &&Body) {
  Clock::time_point Start = Clock::now();
  for (size_t I = 0; I < Iters; ++I)
    Body(I);
  double Ms = msSince(Start);
  return Ms * 1e6 / double(Iters);
}

// Same synthetic editor program as bench_server (see its comment for
// the cost-asymmetry rationale), so warm p50s are comparable across the
// two benches.
std::string makeProgram(size_t Decls, int TailValue) {
  const size_t Depth = 4;
  std::string Out;
  size_t Emitted = 0;
  for (size_t Chain = 0; Emitted + 3 < Decls; ++Chain) {
    std::string C = "c" + std::to_string(Chain) + "_";
    Out += "let " + C + "0 x = (x, x)\n";
    ++Emitted;
    for (size_t I = 1; I <= Depth && Emitted + 3 < Decls; ++I, ++Emitted) {
      std::string N = std::to_string(I), P = std::to_string(I - 1);
      Out += "let " + C + N + " x = " + C + P + " (" + C + P + " x)\n";
    }
  }
  Out += "let helper n = n + 1\n";
  Out += "let broken = helper true\n";
  Out += "let tail = " + std::to_string(TailValue) + "\n";
  return Out;
}

struct ConfigRow {
  std::string Name;
  double WarmP50Ms = 0.0;
  double WarmP95Ms = 0.0;
  double CpuPerCheckUs = 0.0;
  double OverheadPct = 0.0;
};

/// Runs the warm edit-resubmit loop under one observability config and
/// returns its latency profile.
ConfigRow measureConfig(const std::string &Name, size_t Decls,
                        size_t Iterations, obs::Logger *Log,
                        obs::SlowTraceRing *Ring, double TraceSlowMs) {
  ServerOptions SO;
  SO.Threads = 1; // One shard: measure the request path, not scheduling.
  SO.Log = Log;
  SO.SlowTraces = Ring;
  SO.TraceSlowMs = TraceSlowMs;
  ServerEngine Engine(SO);

  auto CheckLine = [&](int Tail) {
    std::string Line =
        "{\"method\":\"check\",\"id\":1,\"session\":\"w\",\"source\":\"";
    Line += jsonEscape(makeProgram(Decls, Tail));
    Line += "\"}";
    return Line;
  };

  Engine.handle(CheckLine(0)); // Prime: steady state is warm.
  std::vector<double> WarmMs;
  // Process CPU brackets the loop: the request runs on a shard worker,
  // not the calling thread, and the process clock also charges a
  // running sampler thread's own work to the config that started it.
  uint64_t CpuStart = prof::processCpuNs();
  for (size_t I = 0; I < Iterations; ++I) {
    std::string Line = CheckLine(int(I % 2) + 1);
    Clock::time_point Start = Clock::now();
    Engine.handle(Line);
    WarmMs.push_back(msSince(Start));
  }
  uint64_t CpuNs = prof::processCpuNs() - CpuStart;

  ConfigRow Row;
  Row.Name = Name;
  Row.WarmP50Ms = percentile(WarmMs, 0.50);
  Row.WarmP95Ms = percentile(WarmMs, 0.95);
  Row.CpuPerCheckUs = double(CpuNs) / 1000.0 / double(Iterations);
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts = parseDriverArgs(Argc, Argv);
  const size_t MicroIters = std::max<size_t>(100000, size_t(2e6 * Opts.Scale));
  const size_t Decls = std::max<size_t>(10, size_t(120 * Opts.Scale));
  const size_t Iterations = std::max<size_t>(10, size_t(60 * Opts.Scale));

  header("Instrument microcosts (" + std::to_string(MicroIters) +
         " iterations)");

  LogHistogram Hist;
  double RecordNs =
      nsPerOp(MicroIters, [&](size_t I) { Hist.record(I & 0xffff); });

  obs::OpsRegistry Registry;
  obs::OpsCounter &Counter = Registry.counter("bench_total");
  double CounterNs = nsPerOp(MicroIters, [&](size_t) { Counter.inc(); });

  Metrics M;
  double HotObserveNs = nsPerOp(MicroIters, [&](size_t I) {
    M.observe("bench.latency_us", double(I & 0xffff));
  });
  // The exact series keeps every sample; cap the iterations so the
  // vector does not dominate the bench's own memory.
  size_t ExactIters = std::min<size_t>(MicroIters, 1u << 20);
  double ExactObserveNs = nsPerOp(ExactIters, [&](size_t I) {
    M.observe("bench.samples", double(I & 0xffff));
  });

  std::ostringstream Devnull;
  obs::Logger Quiet(Devnull, obs::LogLevel::Warn);
  double SuppressedLogNs = nsPerOp(MicroIters, [&](size_t I) {
    if (Quiet.enabled(obs::LogLevel::Debug))
      Quiet.debug(obs::LogEvent("bench").num("i", uint64_t(I)));
  });

  // A scrape while the histogram holds samples: the cost a Prometheus
  // poll imposes on the daemon.
  obs::OpsRegistry ScrapeReg;
  LogHistogram &SH = ScrapeReg.histogram("bench_latency_us");
  for (size_t I = 0; I < 100000; ++I)
    SH.record(I & 0xffff);
  ScrapeReg.counter("bench_requests_total").inc(100000);
  size_t ScrapeIters = 1000;
  size_t ScrapeBytes = 0;
  double ScrapeUs = nsPerOp(ScrapeIters, [&](size_t) {
                      ScrapeBytes = ScrapeReg.renderPrometheus().size();
                    }) /
                    1000.0;

  std::printf("%-34s %8.1f ns/op\n", "LogHistogram::record", RecordNs);
  std::printf("%-34s %8.1f ns/op\n", "OpsCounter::inc", CounterNs);
  std::printf("%-34s %8.1f ns/op\n", "Metrics::observe (histogram-backed)",
              HotObserveNs);
  std::printf("%-34s %8.1f ns/op\n", "Metrics::observe (exact samples)",
              ExactObserveNs);
  std::printf("%-34s %8.1f ns/op\n", "suppressed log event", SuppressedLogNs);
  std::printf("%-34s %8.1f us/scrape (%zu bytes)\n", "renderPrometheus",
              ScrapeUs, ScrapeBytes);
  uint64_t KeepAlive = Hist.count() + Counter.value(); // defeat DCE
  if (KeepAlive == 0)
    std::printf("(unreachable)\n");

  header("Warm edit-resubmit p50 by observability config (" +
         std::to_string(Decls) + " decls, " + std::to_string(Iterations) +
         " iterations)");

  std::string TraceDir =
      "/tmp/seminal_bench_obs_" + std::to_string(::getpid());
  std::string Cleanup = "rm -rf '" + TraceDir + "'";
  std::ostringstream LogSink; // Absorbs log output without touching disk.
  obs::Logger InfoLog(LogSink, obs::LogLevel::Info);
  obs::SlowTraceRing Ring(TraceDir, 4);

  // The profiler rows carry the DESIGN.md section 16 budget (<=1% with
  // the hooks compiled but idle, <=3% sampled at the default 99 Hz with
  // exact phase-CPU stamping) and CI gates on them, so the measurement
  // has to beat run-order drift (thermal, governor, cache): every
  // config is measured in alternating rounds and keeps its best-round
  // p50, which cancels slow machine-state drift a single pass cannot.
  struct ConfigSpec {
    const char *Name;
    obs::Logger *Log;
    obs::SlowTraceRing *Ring;
    double TraceSlowMs;
    unsigned ProfilerHz;
  };
  const ConfigSpec Specs[] = {
      {"registry_only", nullptr, nullptr, -1.0, 0},
      {"with_logging", &InfoLog, nullptr, -1.0, 0},
      {"with_tail_tracing", &InfoLog, &Ring, 1e9, 0},
      {"capture_everything", &InfoLog, &Ring, 0.0, 0},
      {"with_profiler_off", nullptr, nullptr, -1.0, 0},
      {"with_profiler_99hz", nullptr, nullptr, -1.0, 99},
  };
  const int Rounds = 5;
  std::vector<ConfigRow> Configs(std::size(Specs));
  std::vector<std::vector<double>> CpuByRound(std::size(Specs));
  for (int Round = 0; Round < Rounds; ++Round) {
    for (size_t I = 0; I < std::size(Specs); ++I) {
      const ConfigSpec &Spec = Specs[I];
      if (Spec.ProfilerHz) {
        prof::Profiler::Options PO;
        PO.SampleHz = Spec.ProfilerHz;
        prof::profiler().start(PO);
      }
      ConfigRow Row = measureConfig(Spec.Name, Decls, Iterations, Spec.Log,
                                    Spec.Ring, Spec.TraceSlowMs);
      if (Spec.ProfilerHz)
        prof::profiler().stop();
      CpuByRound[I].push_back(Row.CpuPerCheckUs);
      if (Round == 0 || Row.CpuPerCheckUs < Configs[I].CpuPerCheckUs)
        Configs[I] = Row;
    }
  }

  // Overhead is the median across rounds of each round's CPU-per-check
  // ratio against the *same round's* registry_only run. Two layers of
  // noise defense: CPU time instead of wall clock (insensitive to
  // scheduling), and same-round ratios (a round's configs run
  // back-to-back, so slow drift -- allocator state, thermals --
  // cancels in the ratio where it would swamp cross-round absolutes).
  // Even so, these end-to-end rows carry a noise floor of several
  // percent on shared runners; they are context, not the gate. The
  // gated profiler budgets come from the pricing model below.
  for (size_t I = 0; I < Configs.size(); ++I) {
    std::vector<double> Ratios;
    for (int R = 0; R < Rounds; ++R)
      if (CpuByRound[0][R] > 0)
        Ratios.push_back(CpuByRound[I][R] / CpuByRound[0][R]);
    Configs[I].OverheadPct = (percentile(Ratios, 0.50) - 1.0) * 100.0;
    std::printf("%-22s p50 %9.3f ms   p95 %9.3f ms   cpu %8.1f us   "
                "overhead %+6.2f%%\n",
                Configs[I].Name.c_str(), Configs[I].WarmP50Ms,
                Configs[I].WarmP95Ms, Configs[I].CpuPerCheckUs,
                Configs[I].OverheadPct);
  }
  (void)std::system(Cleanup.c_str());

  header("Profiler pricing model");

  // The DESIGN.md section 16 budgets (<=1% with sampling off, <=3% at
  // 99 Hz) sit below the end-to-end noise floor of a ~1ms workload on
  // a shared runner, so they are gated on a priced model instead:
  // tight micro-loops measure each primitive (these reproduce within a
  // few percent where end-to-end p50s swing by ten), and a counting
  // pass measures how many of each primitive one warm check actually
  // uses. Overhead = primitives-per-check x ns-per-primitive, against
  // the registry_only row's best-round CPU.
  auto HookPair = [](SpanKind Kind, const char *Name) {
    // Mirrors the TraceSpan call sites: inline enabled() gate, then
    // the out-of-line hooks.
    if (prof::enabled()) {
      uint32_t T = prof::spanEnter(Kind, Name);
      prof::spanExit(T);
    }
  };
  double HookOffNs = nsPerOp(
      MicroIters, [&](size_t) { HookPair(SpanKind::Candidate, "bench.leaf"); });
  {
    prof::Profiler::Options PO;
    PO.SampleHz = 0;
    prof::profiler().start(PO);
  }
  double HookOnNs = nsPerOp(
      MicroIters, [&](size_t) { HookPair(SpanKind::Candidate, "bench.leaf"); });
  // Stamped kinds pay two CLOCK_THREAD_CPUTIME_ID reads on top of the
  // mirror; fewer iterations, each is a real syscall.
  size_t StampIters = std::max<size_t>(10000, MicroIters / 20);
  double StampOnNs = nsPerOp(
      StampIters, [&](size_t) { HookPair(SpanKind::Search, "bench.phase"); });
  // One sampler tick while this thread holds a representative stack.
  std::vector<uint32_t> Tokens;
  for (const char *Frame : {"bench.s0", "bench.s1", "bench.s2", "bench.s3",
                            "bench.s4", "bench.s5", "bench.s6", "bench.s7"})
    Tokens.push_back(prof::spanEnter(SpanKind::Candidate, Frame));
  double SampleNs =
      nsPerOp(1000, [&](size_t) { prof::profiler().sampleOnce(); });
  for (size_t I = Tokens.size(); I-- > 0;)
    prof::spanExit(Tokens[I]);
  prof::profiler().stop();
  prof::profiler().clear();

  // Spans per warm check, counted by stamping every kind and reading
  // back the enter counters (deterministic in the workload).
  auto spansPerCheck = [&](uint32_t Mask) {
    prof::Profiler::Options PO;
    PO.SampleHz = 0;
    PO.CpuKindMask = Mask;
    prof::profiler().start(PO);
    ServerOptions SO;
    SO.Threads = 1;
    ServerEngine Engine(SO);
    auto CheckLine = [&](int Tail) {
      std::string Line =
          "{\"method\":\"check\",\"id\":1,\"session\":\"w\",\"source\":\"";
      Line += jsonEscape(makeProgram(Decls, Tail));
      Line += "\"}";
      return Line;
    };
    Engine.handle(CheckLine(0));
    prof::profiler().clear();
    const int Count = 10;
    for (int I = 0; I < Count; ++I)
      Engine.handle(CheckLine(I % 2 + 1));
    prof::ProfileSnapshot Snap = prof::profiler().snapshot();
    prof::profiler().stop();
    prof::profiler().clear();
    uint64_t Enters = 0;
    for (const auto &KV : Snap.Cpu)
      Enters += KV.second.Enters;
    return double(Enters) / Count;
  };
  double SpansPerCheck = spansPerCheck(0xFFFFFFFFu);
  double StampedPerCheck =
      spansPerCheck(prof::Profiler::defaultCpuKindMask());

  double CheckCpuNs = Configs[0].CpuPerCheckUs * 1000.0;
  double CheckWallSec = Configs[0].WarmP50Ms / 1000.0;
  double ProfilerOffPct =
      CheckCpuNs > 0 ? SpansPerCheck * HookOffNs / CheckCpuNs * 100.0 : 0.0;
  double ProfilerOnNsPerCheck =
      SpansPerCheck * HookOnNs +
      StampedPerCheck * std::max(0.0, StampOnNs - HookOnNs) +
      99.0 * SampleNs * CheckWallSec;
  double Profiler99Pct =
      CheckCpuNs > 0 ? ProfilerOnNsPerCheck / CheckCpuNs * 100.0 : 0.0;

  std::printf("%-34s %8.2f ns/pair\n", "span hook (profiling off)", HookOffNs);
  std::printf("%-34s %8.2f ns/pair\n", "span hook (on, unstamped)", HookOnNs);
  std::printf("%-34s %8.2f ns/pair\n", "span hook (on, CPU-stamped)",
              StampOnNs);
  std::printf("%-34s %8.2f us/tick\n", "sampler tick", SampleNs / 1000.0);
  std::printf("%-34s %8.1f total, %.1f stamped\n", "spans per warm check",
              SpansPerCheck, StampedPerCheck);
  std::printf("%-34s %+7.3f%% (budget 1%%)\n", "priced overhead, profiler off",
              ProfilerOffPct);
  std::printf("%-34s %+7.3f%% (budget 3%%)\n", "priced overhead, 99 Hz",
              Profiler99Pct);

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return 2;
    }
    Out << "{\n"
        << "  \"bench\": \"obs\",\n"
        << "  \"scale\": " << Opts.Scale << ",\n"
        << "  \"seed\": " << Opts.Seed << ",\n"
        << "  \"record_ns\": " << RecordNs << ",\n"
        << "  \"counter_inc_ns\": " << CounterNs << ",\n"
        << "  \"observe_hot_ns\": " << HotObserveNs << ",\n"
        << "  \"observe_exact_ns\": " << ExactObserveNs << ",\n"
        << "  \"suppressed_log_ns\": " << SuppressedLogNs << ",\n"
        << "  \"scrape_us\": " << ScrapeUs << ",\n"
        << "  \"scrape_bytes\": " << ScrapeBytes << ",\n"
        << "  \"hook_off_ns\": " << HookOffNs << ",\n"
        << "  \"hook_on_ns\": " << HookOnNs << ",\n"
        << "  \"stamp_on_ns\": " << StampOnNs << ",\n"
        << "  \"sample_tick_ns\": " << SampleNs << ",\n"
        << "  \"spans_per_check\": " << SpansPerCheck << ",\n"
        << "  \"stamped_spans_per_check\": " << StampedPerCheck << ",\n"
        << "  \"profiler_off_overhead_pct\": " << ProfilerOffPct << ",\n"
        << "  \"profiler_99hz_overhead_pct\": " << Profiler99Pct << ",\n"
        << "  \"configs\": [";
    for (size_t I = 0; I < Configs.size(); ++I) {
      const ConfigRow &Row = Configs[I];
      Out << (I ? "," : "") << "\n    {\"name\": \"" << Row.Name
          << "\", \"warm_p50_ms\": " << Row.WarmP50Ms
          << ", \"warm_p95_ms\": " << Row.WarmP95Ms
          << ", \"cpu_per_check_us\": " << Row.CpuPerCheckUs
          << ", \"overhead_pct\": " << Row.OverheadPct << "}";
    }
    Out << "\n  ]\n}\n";
  }
  return 0;
}
