//===- bench_oracle_calls.cpp - Search-effort ablation (Section 2.2) ------==//
//
// Measures the oracle-call economy of the paper's "More Efficient
// Search" machinery: gating expensive change families (argument
// permutations) behind cheap all-wildcard probes, computed lazily.
// Compares gated vs exhaustive enumeration, and triage on vs off, on
// programs engineered to stress each mechanism.
//
// Also the home of the oracle-acceleration ablation: every layer of the
// acceleration stack (prefix checkpoint, verdict cache, parallel batch)
// toggled independently over the Figure-7 corpus, verifying that each
// configuration reproduces the unaccelerated searches exactly (same
// ranked suggestions, same logical-call counts) while measuring the
// wall-clock and inference-run savings. --json=<path> emits the summary
// for CI trajectory tracking.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "minicaml/Printer.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace seminal;
using namespace seminal::bench;

namespace {

void compare(const char *Label, const std::string &Source) {
  SeminalOptions Gated;
  SeminalOptions Ungated;
  Ungated.Search.Enum.GateExpensiveChanges = false;

  SeminalReport RG = runSeminalOnSource(Source, Gated);
  SeminalReport RU = runSeminalOnSource(Source, Ungated);
  double Saved = RU.OracleCalls == 0
                     ? 0.0
                     : 100.0 * (1.0 - double(RG.OracleCalls) /
                                          double(RU.OracleCalls));
  std::printf("%-44s gated %6zu   exhaustive %6zu   saved %5.1f%%\n",
              Label, RG.OracleCalls, RU.OracleCalls, Saved);
}

void compareTriage(const char *Label, const std::string &Source) {
  SeminalOptions On;
  SeminalOptions Off;
  Off.Search.EnableTriage = false;
  SeminalReport ROn = runSeminalOnSource(Source, On);
  SeminalReport ROff = runSeminalOnSource(Source, Off);
  std::printf("%-44s triage-on %6zu   triage-off %6zu   suggestions "
              "%zu vs %zu\n",
              Label, ROn.OracleCalls, ROff.OracleCalls,
              ROn.Suggestions.size(), ROff.Suggestions.size());
}

//===----------------------------------------------------------------------===//
// Oracle-acceleration ablation over the Figure-7 corpus
//===----------------------------------------------------------------------===//

/// Order-sensitive digest of a report's ranked suggestions, used to
/// verify that acceleration never changes search results.
std::string fingerprint(const SeminalReport &R) {
  std::string Out;
  for (const Suggestion &S : R.Suggestions) {
    Out += std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/";
    if (S.Original)
      Out += caml::printExpr(*S.Original);
    Out += "=>";
    if (S.Replacement)
      Out += caml::printExpr(*S.Replacement);
    Out += "/" + S.Description + "/" + S.PatternBefore + ";";
  }
  return Out;
}

struct AccelRow {
  const char *Name;
  OracleAccelOptions Accel;
  // Measured:
  double WallSec = 0.0;
  size_t LogicalCalls = 0;
  size_t InferenceRuns = 0;
  AccelCounters Counters;
  size_t SuggestionMismatches = 0;
  size_t CallCountMismatches = 0;
};

void runAccelAblation(const DriverOptions &Driver) {
  header("Ablation: oracle acceleration layers (Figure-7 corpus)");
  CorpusOptions CO;
  CO.Scale = Driver.Scale;
  CO.Seed = Driver.Seed;
  Corpus C = generateCorpus(CO);

  OracleAccelOptions Off;
  Off.Checkpoint = Off.VerdictCache = Off.ParallelBatch = false;
  OracleAccelOptions CheckpointOnly = Off;
  CheckpointOnly.Checkpoint = true;
  OracleAccelOptions CacheOnly = Off;
  CacheOnly.VerdictCache = true;
  OracleAccelOptions Both;
  Both.Checkpoint = Both.VerdictCache = true;
  OracleAccelOptions All = Both;
  All.ParallelBatch = true;

  std::vector<AccelRow> Rows = {
      {"acceleration off", Off},  {"checkpoint only", CheckpointOnly},
      {"cache only", CacheOnly},  {"checkpoint + cache", Both},
      {"all + parallel batch", All},
  };

  // Baseline fingerprints come from the acceleration-off configuration.
  std::vector<std::string> BaseFps;
  std::vector<size_t> BaseCalls;

  for (size_t RowIdx = 0; RowIdx < Rows.size(); ++RowIdx) {
    AccelRow &Row = Rows[RowIdx];
    SeminalOptions Opts;
    Opts.Search.Accel = Row.Accel;
    for (size_t I = 0; I < C.Analyzed.size(); ++I) {
      const CorpusFile &F = C.Analyzed[I];
      // Min-of-2 wall clock: millisecond-scale runs are scheduler noise.
      double Best = 1e30;
      SeminalReport R;
      for (int Rep = 0; Rep < 2; ++Rep) {
        auto Start = std::chrono::steady_clock::now();
        R = runSeminalOnSource(F.Source, Opts);
        double Sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
        if (Sec < Best)
          Best = Sec;
      }
      Row.WallSec += Best;
      Row.LogicalCalls += R.OracleCalls;
      Row.InferenceRuns += R.InferenceRuns;
      Row.Counters += R.Accel;
      if (RowIdx == 0) {
        BaseFps.push_back(fingerprint(R));
        BaseCalls.push_back(R.OracleCalls);
      } else {
        if (fingerprint(R) != BaseFps[I])
          ++Row.SuggestionMismatches;
        if (R.OracleCalls != BaseCalls[I])
          ++Row.CallCountMismatches;
      }
    }
  }

  std::printf("%zu analyzed files, %zu logical oracle calls per "
              "configuration\n\n",
              C.Analyzed.size(), Rows[0].LogicalCalls);
  std::printf("%-24s %9s %9s %10s %10s %7s %10s\n", "configuration",
              "wall ms", "ms/file", "calls", "inf runs", "hit%",
              "identical");
  rule();
  const AccelRow &Base = Rows[0];
  for (const AccelRow &Row : Rows) {
    uint64_t Lookups = Row.Counters.CacheHits + Row.Counters.CacheMisses;
    double HitPct =
        Lookups ? 100.0 * double(Row.Counters.CacheHits) / double(Lookups)
                : 0.0;
    bool Identical =
        Row.SuggestionMismatches == 0 && Row.CallCountMismatches == 0;
    std::printf("%-24s %9.1f %9.3f %10zu %10zu %6.1f%% %10s\n", Row.Name,
                Row.WallSec * 1000.0,
                Row.WallSec * 1000.0 / double(C.Analyzed.size()),
                Row.LogicalCalls, Row.InferenceRuns, HitPct,
                &Row == &Base ? "(base)" : Identical ? "yes" : "NO");
  }
  rule();
  // "Acceleration on" is the shipped default (checkpoint + cache;
  // parallel batching stays opt-in), so the headline compares that row.
  const AccelRow &Full = Rows[3];
  const AccelRow &Par = Rows.back();
  double Speedup = Full.WallSec > 0.0 ? Base.WallSec / Full.WallSec : 0.0;
  std::printf("acceleration speedup: %.2fx wall-clock per search "
              "(%.3f -> %.3f ms/file; all layers incl. parallel batch: "
              "%.2fx)\n",
              Speedup, Base.WallSec * 1000.0 / double(C.Analyzed.size()),
              Full.WallSec * 1000.0 / double(C.Analyzed.size()),
              Par.WallSec > 0.0 ? Base.WallSec / Par.WallSec : 0.0);
  std::printf("checkpoint+cache: %zu of %zu logical calls actually ran "
              "inference (%.1f%%); %llu prefix decl re-checks saved\n",
              Full.InferenceRuns, Full.LogicalCalls,
              100.0 * double(Full.InferenceRuns) /
                  double(Full.LogicalCalls ? Full.LogicalCalls : 1),
              (unsigned long long)Full.Counters.DeclInferencesSaved);
  std::printf("\naccelerated-configuration counters:\n%s",
              Full.Counters.render().c_str());

  if (!Driver.JsonPath.empty()) {
    std::FILE *F = std::fopen(Driver.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Driver.JsonPath.c_str());
      std::exit(1);
    }
    std::fprintf(F, "{\n  \"bench\": \"oracle_calls_accel\",\n");
    std::fprintf(F, "  \"files\": %zu,\n  \"scale\": %g,\n  \"seed\": %llu,\n",
                 C.Analyzed.size(), Driver.Scale,
                 (unsigned long long)Driver.Seed);
    std::fprintf(F, "  \"speedup_wall\": %.4f,\n", Speedup);
    std::fprintf(F, "  \"speedup_wall_parallel\": %.4f,\n",
                 Par.WallSec > 0.0 ? Base.WallSec / Par.WallSec : 0.0);
    std::fprintf(F, "  \"configs\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const AccelRow &Row = Rows[I];
      std::fprintf(
          F,
          "    {\"name\": \"%s\", \"wall_ms\": %.3f, \"logical_calls\": "
          "%zu, \"inference_runs\": %zu, \"cache_hits\": %llu, "
          "\"cache_misses\": %llu, \"incremental\": %llu, \"full\": %llu, "
          "\"decl_rechecks_saved\": %llu, \"batches\": %llu, "
          "\"suggestion_mismatches\": %zu, \"call_count_mismatches\": "
          "%zu}%s\n",
          Row.Name, Row.WallSec * 1000.0, Row.LogicalCalls,
          Row.InferenceRuns, (unsigned long long)Row.Counters.CacheHits,
          (unsigned long long)Row.Counters.CacheMisses,
          (unsigned long long)Row.Counters.IncrementalInferences,
          (unsigned long long)Row.Counters.FullInferences,
          (unsigned long long)Row.Counters.DeclInferencesSaved,
          (unsigned long long)Row.Counters.BatchesDispatched,
          Row.SuggestionMismatches, Row.CallCountMismatches,
          I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Driver.JsonPath.c_str());
  }

  // Make the acceptance contract loud in CI logs.
  for (const AccelRow &Row : Rows)
    if (Row.SuggestionMismatches || Row.CallCountMismatches) {
      std::fprintf(stderr,
                   "FAIL: configuration \"%s\" diverged from baseline\n",
                   Row.Name);
      std::exit(1);
    }
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Driver = parseDriverArgs(Argc, Argv);

  header("Ablation: gated/lazy enumeration vs exhaustive (Section 2.2)");
  compare("4-arg call, no permutation can help",
          "let f a b c = a + b + c\nlet x = f 1 2 \"s\" true");
  compare("4-arg call, permutation fixes it",
          "let f a b s t = (a + b, s ^ t)\n"
          "let x = f 1 \"u\" 2 \"v\"");
  compare("4-tuple where only a 3-tuple fits",
          "let f (p, q, r) = p + q + r\n"
          "let x = f (1, 2, \"a\", true)");
  compare("3-tuple, permutation fixes it",
          "let f (p, q, r) = p + q + String.length r\n"
          "let x = f (1, \"s\", 2)");

  std::printf("\n");
  header("Ablation: triage on vs off (Section 2.4)");
  compareTriage("single error (triage never triggers)",
                "let x = 1 + \"two\"");
  compareTriage("two independent errors",
                "let go y =\n"
                "  let a = 3 + true in\n"
                "  let b = 4 + \"hi\" in\n"
                "  y + 1");
  compareTriage("three independent errors",
                "let go y =\n"
                "  let a = 3 + true in\n"
                "  let b = 4 + \"hi\" in\n"
                "  let c = if 7 then 1 else 2 in\n"
                "  y + 1");

  std::printf("\n");
  runAccelAblation(Driver);
  return 0;
}
