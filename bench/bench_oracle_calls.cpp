//===- bench_oracle_calls.cpp - Search-effort ablation (Section 2.2) ------==//
//
// Measures the oracle-call economy of the paper's "More Efficient
// Search" machinery: gating expensive change families (argument
// permutations) behind cheap all-wildcard probes, computed lazily.
// Compares gated vs exhaustive enumeration, and triage on vs off, on
// programs engineered to stress each mechanism.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Seminal.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::bench;

namespace {

void compare(const char *Label, const std::string &Source) {
  SeminalOptions Gated;
  SeminalOptions Ungated;
  Ungated.Search.Enum.GateExpensiveChanges = false;

  SeminalReport RG = runSeminalOnSource(Source, Gated);
  SeminalReport RU = runSeminalOnSource(Source, Ungated);
  double Saved = RU.OracleCalls == 0
                     ? 0.0
                     : 100.0 * (1.0 - double(RG.OracleCalls) /
                                          double(RU.OracleCalls));
  std::printf("%-44s gated %6zu   exhaustive %6zu   saved %5.1f%%\n",
              Label, RG.OracleCalls, RU.OracleCalls, Saved);
}

void compareTriage(const char *Label, const std::string &Source) {
  SeminalOptions On;
  SeminalOptions Off;
  Off.Search.EnableTriage = false;
  SeminalReport ROn = runSeminalOnSource(Source, On);
  SeminalReport ROff = runSeminalOnSource(Source, Off);
  std::printf("%-44s triage-on %6zu   triage-off %6zu   suggestions "
              "%zu vs %zu\n",
              Label, ROn.OracleCalls, ROff.OracleCalls,
              ROn.Suggestions.size(), ROff.Suggestions.size());
}

} // namespace

int main() {
  header("Ablation: gated/lazy enumeration vs exhaustive (Section 2.2)");
  compare("4-arg call, no permutation can help",
          "let f a b c = a + b + c\nlet x = f 1 2 \"s\" true");
  compare("4-arg call, permutation fixes it",
          "let f a b s t = (a + b, s ^ t)\n"
          "let x = f 1 \"u\" 2 \"v\"");
  compare("4-tuple where only a 3-tuple fits",
          "let f (p, q, r) = p + q + r\n"
          "let x = f (1, 2, \"a\", true)");
  compare("3-tuple, permutation fixes it",
          "let f (p, q, r) = p + q + String.length r\n"
          "let x = f (1, \"s\", 2)");

  std::printf("\n");
  header("Ablation: triage on vs off (Section 2.4)");
  compareTriage("single error (triage never triggers)",
                "let x = 1 + \"two\"");
  compareTriage("two independent errors",
                "let go y =\n"
                "  let a = 3 + true in\n"
                "  let b = 4 + \"hi\" in\n"
                "  y + 1");
  compareTriage("three independent errors",
                "let go y =\n"
                "  let a = 3 + true in\n"
                "  let b = 4 + \"hi\" in\n"
                "  let c = if 7 then 1 else 2 in\n"
                "  y + 1");
  return 0;
}
