//===- bench_micro.cpp - google-benchmark microbenchmarks ------------------==//
//
// Micro-level performance characterization backing Section 3.2's
// efficiency discussion: how fast one oracle call is (parse once,
// type-check many), how search cost scales with program size, and the
// relative cost of the search components. These are the quantities that
// make "the computational cost of searching should be measured against
// the speed of the human" concrete on this implementation.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "corpus/Programs.h"
#include "minicaml/Parser.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// A well-typed program with N chained declarations.
std::string chainProgram(int N) {
  std::ostringstream OS;
  OS << "let v0 = 1\n";
  for (int I = 1; I < N; ++I)
    OS << "let v" << I << " = v" << (I - 1) << " + " << I << "\n";
  return OS.str();
}

void BM_Lex(benchmark::State &State) {
  std::string Source = assignmentTemplates()[1].Source;
  for (auto _ : State) {
    ParseResult R = parseProgram(Source);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Lex);

void BM_TypecheckAssignment(benchmark::State &State) {
  std::string Source =
      assignmentTemplates()[size_t(State.range(0))].Source;
  ParseResult R = parseProgram(Source);
  for (auto _ : State) {
    TypecheckResult T = typecheckProgram(*R.Prog);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TypecheckAssignment)->DenseRange(0, 4);

void BM_TypecheckScaling(benchmark::State &State) {
  std::string Source = chainProgram(int(State.range(0)));
  ParseResult R = parseProgram(Source);
  for (auto _ : State) {
    TypecheckResult T = typecheckProgram(*R.Prog);
    benchmark::DoNotOptimize(T);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_TypecheckScaling)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_SearchFigure2(benchmark::State &State) {
  std::string Source =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  for (auto _ : State) {
    SeminalReport R = runSeminalOnSource(Source);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SearchFigure2);

// The same search with the trace subsystem enabled: the delta against
// BM_SearchFigure2 is the cost of recording every span and attribute.
// With sinks left null the overhead must stay under 2% (the disabled
// path is one pointer test per instrumentation site); this benchmark
// measures the *enabled* price so regressions in either mode show up.
void BM_SearchFigure2Traced(benchmark::State &State) {
  std::string Source =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  for (auto _ : State) {
    TraceSink Sink;
    Metrics M;
    SeminalOptions Opts;
    Opts.Search.Trace = &Sink;
    Opts.Search.Metric = &M;
    SeminalReport R = runSeminalOnSource(Source, Opts);
    benchmark::DoNotOptimize(R);
    benchmark::DoNotOptimize(Sink.eventCount());
  }
}
BENCHMARK(BM_SearchFigure2Traced);

// The disabled path in isolation: spans against a null sink must cost a
// branch and nothing else -- no clock reads, no allocation.
void BM_NullSpanOverhead(benchmark::State &State) {
  for (auto _ : State) {
    TraceSpan Span(nullptr, SpanKind::OracleCall, "oracle.typecheck");
    benchmark::DoNotOptimize(Span.enabled());
  }
}
BENCHMARK(BM_NullSpanOverhead);

void BM_SearchWithVsWithoutTriage(benchmark::State &State) {
  std::string Source = "let go y =\n"
                       "  let a = 3 + true in\n"
                       "  let b = 4 + \"hi\" in\n"
                       "  y + 1";
  SeminalOptions Opts;
  Opts.Search.EnableTriage = State.range(0) != 0;
  for (auto _ : State) {
    SeminalReport R = runSeminalOnSource(Source, Opts);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SearchWithVsWithoutTriage)->Arg(0)->Arg(1);

void BM_CloneAssignment(benchmark::State &State) {
  ParseResult R = parseProgram(assignmentTemplates()[3].Source);
  for (auto _ : State) {
    Program P = R.Prog->clone();
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_CloneAssignment);

void BM_MutateProgram(benchmark::State &State) {
  ParseResult R = parseProgram(assignmentTemplates()[0].Source);
  Rng Rand(1);
  for (auto _ : State) {
    auto M = mutateProgram(*R.Prog, 2, Rand);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_MutateProgram);

} // namespace

BENCHMARK_MAIN();
