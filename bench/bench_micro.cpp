//===- bench_micro.cpp - google-benchmark microbenchmarks ------------------==//
//
// Micro-level performance characterization backing Section 3.2's
// efficiency discussion: how fast one oracle call is (parse once,
// type-check many), how search cost scales with program size, and the
// relative cost of the search components. These are the quantities that
// make "the computational cost of searching should be measured against
// the speed of the human" concrete on this implementation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/CheckpointedOracle.h"
#include "core/Oracle.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "corpus/Programs.h"
#include "minicaml/Parser.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace seminal;
using namespace seminal::bench;
using namespace seminal::caml;

// Heap-allocation accounting for the --json report below. Timing-mode
// numbers from this binary therefore include the interposer's small
// constant overhead; it is uniform across benchmarks, and the absolute
// timings here are characterization, not a CI gate.
SEMINAL_BENCH_COUNT_ALLOCATIONS()

namespace {

/// A well-typed program with N chained declarations.
std::string chainProgram(int N) {
  std::ostringstream OS;
  OS << "let v0 = 1\n";
  for (int I = 1; I < N; ++I)
    OS << "let v" << I << " = v" << (I - 1) << " + " << I << "\n";
  return OS.str();
}

void BM_Lex(benchmark::State &State) {
  std::string Source = assignmentTemplates()[1].Source;
  for (auto _ : State) {
    ParseResult R = parseProgram(Source);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Lex);

void BM_TypecheckAssignment(benchmark::State &State) {
  std::string Source =
      assignmentTemplates()[size_t(State.range(0))].Source;
  ParseResult R = parseProgram(Source);
  for (auto _ : State) {
    TypecheckResult T = typecheckProgram(*R.Prog);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TypecheckAssignment)->DenseRange(0, 4);

void BM_TypecheckScaling(benchmark::State &State) {
  std::string Source = chainProgram(int(State.range(0)));
  ParseResult R = parseProgram(Source);
  for (auto _ : State) {
    TypecheckResult T = typecheckProgram(*R.Prog);
    benchmark::DoNotOptimize(T);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_TypecheckScaling)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_SearchFigure2(benchmark::State &State) {
  std::string Source =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  for (auto _ : State) {
    SeminalReport R = runSeminalOnSource(Source);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SearchFigure2);

// The same search with the trace subsystem enabled: the delta against
// BM_SearchFigure2 is the cost of recording every span and attribute.
// With sinks left null the overhead must stay under 2% (the disabled
// path is one pointer test per instrumentation site); this benchmark
// measures the *enabled* price so regressions in either mode show up.
void BM_SearchFigure2Traced(benchmark::State &State) {
  std::string Source =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  for (auto _ : State) {
    TraceSink Sink;
    Metrics M;
    SeminalOptions Opts;
    Opts.Search.Trace = &Sink;
    Opts.Search.Metric = &M;
    SeminalReport R = runSeminalOnSource(Source, Opts);
    benchmark::DoNotOptimize(R);
    benchmark::DoNotOptimize(Sink.eventCount());
  }
}
BENCHMARK(BM_SearchFigure2Traced);

// The disabled path in isolation: spans against a null sink must cost a
// branch and nothing else -- no clock reads, no allocation.
void BM_NullSpanOverhead(benchmark::State &State) {
  for (auto _ : State) {
    TraceSpan Span(nullptr, SpanKind::OracleCall, "oracle.typecheck");
    benchmark::DoNotOptimize(Span.enabled());
  }
}
BENCHMARK(BM_NullSpanOverhead);

void BM_SearchWithVsWithoutTriage(benchmark::State &State) {
  std::string Source = "let go y =\n"
                       "  let a = 3 + true in\n"
                       "  let b = 4 + \"hi\" in\n"
                       "  y + 1";
  SeminalOptions Opts;
  Opts.Search.EnableTriage = State.range(0) != 0;
  for (auto _ : State) {
    SeminalReport R = runSeminalOnSource(Source, Opts);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SearchWithVsWithoutTriage)->Arg(0)->Arg(1);

void BM_CloneAssignment(benchmark::State &State) {
  ParseResult R = parseProgram(assignmentTemplates()[3].Source);
  for (auto _ : State) {
    Program P = R.Prog->clone();
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_CloneAssignment);

void BM_MutateProgram(benchmark::State &State) {
  ParseResult R = parseProgram(assignmentTemplates()[0].Source);
  Rng Rand(1);
  for (auto _ : State) {
    auto M = mutateProgram(*R.Prog, 2, Rand);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_MutateProgram);

//===----------------------------------------------------------------------===//
// Allocation report (--json mode)
//===----------------------------------------------------------------------===//
//
// Measures the allocator load of the candidate pipeline with the
// hash-consed arena on vs off. The headline scenario drives repeated
// candidate waves at a seeded oracle -- the searcher's steady state,
// where the same edited declarations recur across probes, siblings and
// follow-up families. The legacy path materializes and hashes a decl
// clone per candidate per wave; the arena path interns once and then
// answers every repeat with integer lookups, which is where the >10x
// allocation reduction gated by scripts/check_bench_regression.py
// comes from.

struct AllocScenario {
  const char *Name;
  AllocReport R;
};

/// One candidate-wave workload: \p Waves batches of the same \p
/// Replacements (each candidate appearing twice per wave, so intra-wave
/// dedup is exercised) against a prefix-seeded oracle.
AllocReport runCandidateWaves(bool UseArena, unsigned Waves) {
  ParseResult P = parseProgram("let helper a b = a + b\n"
                               "let target x = helper x 1\n");
  OracleAccelOptions Accel;
  Accel.ParallelBatch = true;
  // Keep the measurement single-threaded and deterministic: batches
  // this small run on the dispatching thread anyway, and a pool would
  // add its own allocations.
  Accel.MinParallelItems = 1u << 30;
  Accel.Arena = UseArena;

  // Candidate replacements for `target`'s initializer; built outside
  // the measured scope, like the enumerator's candidates are built once
  // per node while the oracle sees them wave after wave.
  std::vector<ExprPtr> Owned;
  for (int I = 0; I < 24; ++I)
    Owned.push_back(makeApp(makeVar("helper"),
                            [&] {
                              std::vector<ExprPtr> Args;
                              Args.push_back(makeVar("x"));
                              Args.push_back(makeIntLit(I));
                              return Args;
                            }()));
  std::vector<const Expr *> Reps;
  for (const ExprPtr &E : Owned) {
    Reps.push_back(E.get());
    Reps.push_back(E.get()); // Intra-wave duplicate.
  }

  NodePath Path(1); // Empty Steps: replace the whole initializer.

  CheckpointedOracle O(Accel);
  O.seedPrefix(*P.Prog, 1);

  AllocScope Scope;
  for (unsigned W = 0; W < Waves; ++W) {
    auto Verdicts = O.typecheckBatch(*P.Prog, Path, Reps);
    benchmark::DoNotOptimize(Verdicts);
  }
  return Scope.finish();
}

/// End-to-end search allocation footprint (informational rows: the
/// totals are dominated by inference, which the arena does not touch).
AllocReport runSearchScenario(bool UseArena) {
  std::string Source =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  SeminalOptions Opts;
  Opts.Search.Accel.Arena = UseArena;
  AllocScope Scope;
  SeminalReport R = runSeminalOnSource(Source, Opts);
  benchmark::DoNotOptimize(R);
  return Scope.finish();
}

int runAllocReport(const DriverOptions &Driver) {
  if (!allocCountingActive()) {
    std::fprintf(stderr, "allocation interposer not linked?\n");
    return 1;
  }
  const unsigned Waves = 100;

  std::vector<AllocScenario> Rows;
  Rows.push_back({"candidate-waves legacy",
                  runCandidateWaves(/*UseArena=*/false, Waves)});
  Rows.push_back({"candidate-waves arena",
                  runCandidateWaves(/*UseArena=*/true, Waves)});
  Rows.push_back({"search-figure2 legacy", runSearchScenario(false)});
  Rows.push_back({"search-figure2 arena", runSearchScenario(true)});

  double Reduction =
      Rows[1].R.Allocs
          ? double(Rows[0].R.Allocs) / double(Rows[1].R.Allocs)
          : 0.0;

  header("Allocation report: candidate pipeline, arena off vs on");
  std::printf("%-28s %12s %14s\n", "scenario", "allocs", "peak bytes");
  rule();
  for (const AllocScenario &Row : Rows)
    std::printf("%-28s %12llu %14llu\n", Row.Name,
                (unsigned long long)Row.R.Allocs,
                (unsigned long long)Row.R.PeakBytes);
  rule();
  std::printf("candidate-wave allocation reduction: %.1fx\n", Reduction);

  if (!Driver.JsonPath.empty()) {
    std::FILE *F = std::fopen(Driver.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Driver.JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"micro_allocs\",\n");
    std::fprintf(F, "  \"scale\": %g,\n  \"seed\": %llu,\n", Driver.Scale,
                 (unsigned long long)Driver.Seed);
    std::fprintf(F, "  \"waves\": %u,\n", Waves);
    std::fprintf(F, "  \"alloc_reduction\": %.4f,\n", Reduction);
    std::fprintf(F, "  \"scenarios\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"allocs\": %llu, "
                   "\"peak_bytes\": %llu}%s\n",
                   Rows[I].Name, (unsigned long long)Rows[I].R.Allocs,
                   (unsigned long long)Rows[I].R.PeakBytes,
                   I + 1 < Rows.size() ? "," : "");
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Driver.JsonPath.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Driver-style arguments select the allocation report; anything else
  // goes to google-benchmark (timing mode).
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--json", 6) == 0 ||
        std::strncmp(Argv[I], "--scale", 7) == 0 ||
        std::strncmp(Argv[I], "--seed", 6) == 0)
      return runAllocReport(parseDriverArgs(Argc, Argv));

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
