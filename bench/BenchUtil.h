//===- BenchUtil.h - Shared helpers for benchmark drivers -------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the figure-reproduction drivers: command-line
/// scale/seed parsing and table formatting. (Microbenchmarks use
/// google-benchmark; the figure drivers are plain executables that print
/// the same rows/series the paper reports.)
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_BENCH_BENCHUTIL_H
#define SEMINAL_BENCH_BENCHUTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace seminal {
namespace bench {

/// Options common to the corpus-driven drivers.
struct DriverOptions {
  double Scale = 1.0;
  uint64_t Seed = 20070611;
  /// When non-empty, the driver also writes a machine-readable summary
  /// here (CI uploads these BENCH_*.json files as artifacts).
  std::string JsonPath;
};

/// Parses --scale=<f>, --seed=<n> and --json=<path>; exits with usage on
/// malformed or unknown options so CI scripts fail loudly on typos
/// instead of silently benchmarking the default configuration.
inline DriverOptions parseDriverArgs(int Argc, char **Argv) {
  DriverOptions Opts;
  auto Usage = [&](std::FILE *To) {
    std::fprintf(To, "usage: %s [--scale=<f>] [--seed=<n>] [--json=<path>]\n",
                 Argv[0]);
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0) {
      Opts.Scale = std::atof(Arg + 8);
      if (Opts.Scale <= 0.0) {
        std::fprintf(stderr, "bad --scale value '%s'\n", Arg + 8);
        Usage(stderr);
        std::exit(2);
      }
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      Opts.Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Opts.JsonPath = Arg + 7;
      if (Opts.JsonPath.empty()) {
        std::fprintf(stderr, "--json needs a file path\n");
        Usage(stderr);
        std::exit(2);
      }
    } else if (std::strcmp(Arg, "--help") == 0) {
      Usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      Usage(stderr);
      std::exit(2);
    }
  }
  return Opts;
}

/// Prints a horizontal rule.
inline void rule() {
  std::printf("---------------------------------------------------------"
              "---------------\n");
}

/// Prints a centered-ish section header.
inline void header(const std::string &Title) {
  rule();
  std::printf("%s\n", Title.c_str());
  rule();
}

} // namespace bench
} // namespace seminal

#endif // SEMINAL_BENCH_BENCHUTIL_H
