//===- BenchUtil.h - Shared helpers for benchmark drivers -------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the figure-reproduction drivers: command-line
/// scale/seed parsing and table formatting. (Microbenchmarks use
/// google-benchmark; the figure drivers are plain executables that print
/// the same rows/series the paper reports.)
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_BENCH_BENCHUTIL_H
#define SEMINAL_BENCH_BENCHUTIL_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

namespace seminal {
namespace bench {

/// Options common to the corpus-driven drivers.
struct DriverOptions {
  double Scale = 1.0;
  uint64_t Seed = 20070611;
  /// When non-empty, the driver also writes a machine-readable summary
  /// here (CI uploads these BENCH_*.json files as artifacts).
  std::string JsonPath;
};

/// Parses --scale=<f>, --seed=<n> and --json=<path>; exits with usage on
/// malformed or unknown options so CI scripts fail loudly on typos
/// instead of silently benchmarking the default configuration.
inline DriverOptions parseDriverArgs(int Argc, char **Argv) {
  DriverOptions Opts;
  auto Usage = [&](std::FILE *To) {
    std::fprintf(To, "usage: %s [--scale=<f>] [--seed=<n>] [--json=<path>]\n",
                 Argv[0]);
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0) {
      Opts.Scale = std::atof(Arg + 8);
      if (Opts.Scale <= 0.0) {
        std::fprintf(stderr, "bad --scale value '%s'\n", Arg + 8);
        Usage(stderr);
        std::exit(2);
      }
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      Opts.Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Opts.JsonPath = Arg + 7;
      if (Opts.JsonPath.empty()) {
        std::fprintf(stderr, "--json needs a file path\n");
        Usage(stderr);
        std::exit(2);
      }
    } else if (std::strcmp(Arg, "--help") == 0) {
      Usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      Usage(stderr);
      std::exit(2);
    }
  }
  return Opts;
}

//===----------------------------------------------------------------------===//
// Allocation counting
//===----------------------------------------------------------------------===//
//
// A driver that wants per-scenario heap-allocation counts places
// SEMINAL_BENCH_COUNT_ALLOCATIONS() once at namespace scope in its own
// translation unit; the macro replaces the global operator new/delete
// with a counting interposer. Every allocation pays a 16-byte size
// header (so frees can maintain a live-byte gauge without sized-delete
// being guaranteed) and a few relaxed atomic increments -- fine for
// counting, useless for timing, which is why the figure drivers do NOT
// instantiate it. Headers keep malloc's 16-byte alignment; over-aligned
// (align_val_t) allocations bypass the interposer and go uncounted,
// which is fine: nothing in the measured pipeline over-aligns.

/// Global allocator telemetry maintained by the interposer. Monotonic
/// counters except LiveBytes (a gauge) and PeakBytes (a high-water mark
/// that AllocScope resets to the current live level).
struct AllocCounters {
  std::atomic<uint64_t> Allocs{0};
  std::atomic<uint64_t> Frees{0};
  std::atomic<uint64_t> LiveBytes{0};
  std::atomic<uint64_t> PeakBytes{0};
};

inline AllocCounters &allocCounters() {
  static AllocCounters C;
  return C;
}

constexpr std::size_t AllocHeaderBytes = 16;

inline void *allocCounted(std::size_t Size) {
  void *Raw = std::malloc(Size + AllocHeaderBytes);
  if (!Raw)
    throw std::bad_alloc();
  *static_cast<std::size_t *>(Raw) = Size;
  AllocCounters &C = allocCounters();
  C.Allocs.fetch_add(1, std::memory_order_relaxed);
  uint64_t Live =
      C.LiveBytes.fetch_add(Size, std::memory_order_relaxed) + Size;
  uint64_t Peak = C.PeakBytes.load(std::memory_order_relaxed);
  while (Live > Peak &&
         !C.PeakBytes.compare_exchange_weak(Peak, Live,
                                            std::memory_order_relaxed)) {
  }
  return static_cast<char *>(Raw) + AllocHeaderBytes;
}

inline void freeCounted(void *P) noexcept {
  if (!P)
    return;
  char *Raw = static_cast<char *>(P) - AllocHeaderBytes;
  std::size_t Size;
  std::memcpy(&Size, Raw, sizeof(Size));
  AllocCounters &C = allocCounters();
  C.Frees.fetch_add(1, std::memory_order_relaxed);
  C.LiveBytes.fetch_sub(Size, std::memory_order_relaxed);
  std::free(Raw);
}

/// Snapshot of what happened between an AllocScope's construction and a
/// finish() call.
struct AllocReport {
  uint64_t Allocs = 0;    ///< operator-new calls inside the scope.
  uint64_t PeakBytes = 0; ///< Peak live bytes above the scope's baseline.
};

/// Brackets one measured scenario. Construction snapshots the counters
/// and resets the high-water mark to the current live level, so
/// PeakBytes reports the scenario's own footprint, not the process's.
class AllocScope {
public:
  AllocScope() {
    AllocCounters &C = allocCounters();
    StartAllocs = C.Allocs.load(std::memory_order_relaxed);
    StartLive = C.LiveBytes.load(std::memory_order_relaxed);
    C.PeakBytes.store(StartLive, std::memory_order_relaxed);
  }

  AllocReport finish() const {
    AllocCounters &C = allocCounters();
    AllocReport R;
    R.Allocs = C.Allocs.load(std::memory_order_relaxed) - StartAllocs;
    uint64_t Peak = C.PeakBytes.load(std::memory_order_relaxed);
    R.PeakBytes = Peak > StartLive ? Peak - StartLive : 0;
    return R;
  }

private:
  uint64_t StartAllocs = 0;
  uint64_t StartLive = 0;
};

/// True when the counting interposer is linked into this binary (any
/// allocation has been observed -- the runtime allocates long before
/// main). Drivers use it to refuse to emit all-zero reports.
inline bool allocCountingActive() {
  return allocCounters().Allocs.load(std::memory_order_relaxed) != 0;
}

} // namespace bench
} // namespace seminal

/// Instantiates the counting operator new/delete. Exactly one
/// translation unit per binary may expand this.
#define SEMINAL_BENCH_COUNT_ALLOCATIONS()                                     \
  void *operator new(std::size_t Size) {                                      \
    return seminal::bench::allocCounted(Size);                                \
  }                                                                           \
  void *operator new[](std::size_t Size) {                                    \
    return seminal::bench::allocCounted(Size);                                \
  }                                                                           \
  void operator delete(void *P) noexcept { seminal::bench::freeCounted(P); }  \
  void operator delete[](void *P) noexcept {                                  \
    seminal::bench::freeCounted(P);                                           \
  }                                                                           \
  void operator delete(void *P, std::size_t) noexcept {                       \
    seminal::bench::freeCounted(P);                                           \
  }                                                                           \
  void operator delete[](void *P, std::size_t) noexcept {                     \
    seminal::bench::freeCounted(P);                                           \
  }

namespace seminal {
namespace bench {

/// Prints a horizontal rule.
inline void rule() {
  std::printf("---------------------------------------------------------"
              "---------------\n");
}

/// Prints a centered-ish section header.
inline void header(const std::string &Title) {
  rule();
  std::printf("%s\n", Title.c_str());
  rule();
}

} // namespace bench
} // namespace seminal

#endif // SEMINAL_BENCH_BENCHUTIL_H
