//===- CcTypeck.h - Mini-C++ type checking ----------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-C++ checker reproduces the semantics Section 4 leans on:
///
///   * Ordinary functions are fully checked; template-function bodies are
///     checked only when a call instantiates them, with the instantiation
///     chain recorded ("instantiated from here", Figure 11).
///   * Template-argument deduction is one-way matching; a bare function
///     name keeps its *function type* (no pointer decay through a
///     const-ref-like template parameter) -- the root cause of the
///     Figure 10 error -- while deduction against an explicit
///     pointer-to-function parameter (ptr_fun) does decay.
///   * A struct field whose substituted type is a function type is an
///     error ("invalidly declared function type"), and later uses of the
///     poisoned instantiation cascade into "no match for call" errors.
///   * Checking recovers per statement, so one file yields the several
///     errors the success criterion compares (fixing some, adding none).
///
/// The checker also implements the paper's magicFun device: a builtin
/// `template<class A, class B> B magicFun(A)` whose result type is
/// deducible only where the context supplies an expected type, plus the
/// void variant used for hoisting.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICPP_CCTYPECK_H
#define SEMINAL_MINICPP_CCTYPECK_H

#include "minicpp/CcAst.h"

#include <string>
#include <vector>

namespace seminal {
namespace cpp {

/// One diagnostic, with its template-instantiation context.
struct CcError {
  std::string Message;
  /// Innermost-first instantiation contexts ("unary_compose<...>",
  /// "transform<...>"), mirroring gcc's "instantiated from here" lines.
  std::vector<std::string> Chain;
  /// The ordinary (non-template) function whose statement triggered it.
  std::string InFunction;
  /// Index of that statement within InFunction.
  int StmtIndex = -1;

  /// Renders the full gcc-flavored report.
  std::string str() const;

  /// A location-insensitive signature for the success criterion.
  std::string signature() const { return Message; }
};

/// Result of checking a whole program.
struct CcCheckResult {
  std::vector<CcError> Errors;
  bool ok() const { return Errors.empty(); }

  /// Renders every error, chains included.
  std::string str() const;
};

/// Type-checks every ordinary function of \p Prog (template functions
/// and generic call operators are only checked as instantiated).
CcCheckResult checkProgram(const CcProgram &Prog);

} // namespace cpp
} // namespace seminal

#endif // SEMINAL_MINICPP_CCTYPECK_H
