//===- CcTypeck.cpp - Mini-C++ type checking implementation ---------------==//

#include "minicpp/CcTypeck.h"

#include "support/StrUtil.h"

#include <cassert>
#include <set>
#include <sstream>

using namespace seminal;
using namespace seminal::cpp;

std::string CcError::str() const {
  std::ostringstream OS;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
    OS << "in instantiation of '" << *It << "': instantiated from here\n";
  OS << "error: " << Message;
  if (!InFunction.empty())
    OS << "  [in " << InFunction << ", statement " << StmtIndex << "]";
  return OS.str();
}

std::string CcCheckResult::str() const {
  std::vector<std::string> Parts;
  for (const auto &E : Errors)
    Parts.push_back(E.str());
  return join(Parts, "\n");
}

namespace {

/// Numeric tower: int < long < double.
bool isNumeric(const CcTypePtr &T) {
  return T->isBuiltin("int") || T->isBuiltin("long") ||
         T->isBuiltin("double");
}

int numericRank(const CcTypePtr &T) {
  if (T->isBuiltin("int"))
    return 0;
  if (T->isBuiltin("long"))
    return 1;
  return 2;
}

/// Whether a value of \p From initializes a location of type \p To:
/// exact match, numeric conversion, or function-to-pointer decay.
bool assignable(const CcTypePtr &From, const CcTypePtr &To) {
  if (From->isError() || To->isError())
    return true; // already reported
  if (From->equals(*To))
    return true;
  if (isNumeric(From) && isNumeric(To))
    return true;
  if (From->isFunction() && To->TheKind == CcType::Kind::Pointer &&
      To->Elem->isFunction() && From->equals(*To->Elem))
    return true;
  return false;
}

class Checker {
public:
  explicit Checker(const CcProgram &Prog) : Prog(Prog) {}

  CcCheckResult run() {
    for (const auto &F : Prog.Funcs) {
      if (!F->TParams.empty())
        continue; // templates check at instantiation
      CurrentFunction = F->Name;
      checkFunctionBody(*F, {});
      CurrentFunction.clear();
    }
    CcCheckResult Result;
    Result.Errors = std::move(Errors);
    return Result;
  }

private:
  using Env = std::vector<std::pair<std::string, CcTypePtr>>;

  void report(const std::string &Message) {
    CcError E;
    E.Message = Message;
    E.Chain = Chain;
    E.InFunction = CurrentFunction;
    E.StmtIndex = CurrentStmt;
    Errors.push_back(std::move(E));
  }

  static CcTypePtr lookupLocal(const Env &Locals, const std::string &Name) {
    for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  /// Checks a function body with \p Bindings substituted into parameter
  /// and return types (empty for ordinary functions).
  void checkFunctionBody(const CcFuncDecl &F,
                         const std::map<std::string, CcTypePtr> &Bindings) {
    Env Locals;
    for (const auto &P : F.Params)
      Locals.emplace_back(P.Name, substitute(P.Type, Bindings));
    CcTypePtr Ret = substitute(F.RetType, Bindings);
    int SavedStmt = CurrentStmt;
    for (size_t I = 0; I < F.Body.size(); ++I) {
      if (Chain.empty())
        CurrentStmt = int(I);
      const CcStmt &S = F.Body[I];
      switch (S.TheKind) {
      case CcStmt::Kind::VarDecl: {
        CcTypePtr DeclType = substitute(S.DeclType, Bindings);
        CcTypePtr Init = checkExpr(*S.E, Locals, Bindings, DeclType);
        if (!Init->isError() && !assignable(Init, DeclType))
          report("cannot convert '" + Init->str() + "' to '" +
                 DeclType->str() + "' in initialization");
        Locals.emplace_back(S.Name, DeclType);
        break;
      }
      case CcStmt::Kind::Expr:
        checkExpr(*S.E, Locals, Bindings, nullptr);
        break;
      case CcStmt::Kind::Return: {
        if (!S.E) {
          if (Ret && !Ret->isVoid())
            report("return-statement with no value, in function returning "
                   "'" + Ret->str() + "'");
          break;
        }
        CcTypePtr V = checkExpr(*S.E, Locals, Bindings, Ret);
        if (!V->isError() && Ret && !assignable(V, Ret))
          report("cannot convert '" + V->str() + "' to '" + Ret->str() +
                 "' in return");
        break;
      }
      }
    }
    CurrentStmt = SavedStmt;
  }

  /// Instantiates \p Decl with \p Args: checks every field's substituted
  /// type. Memoized; failed instantiations are poisoned so later calls
  /// through them cascade (Figure 11's second error group).
  bool instantiateStruct(const CcStructDecl *Decl,
                         const std::vector<CcTypePtr> &Args) {
    CcTypePtr Ty = ccStructType(Decl, Args);
    std::string Key = Ty->str();
    auto It = StructInstOk.find(Key);
    if (It != StructInstOk.end())
      return It->second;
    StructInstOk[Key] = true; // break recursion optimistically

    std::map<std::string, CcTypePtr> Bindings;
    for (size_t I = 0; I < Decl->TParams.size() && I < Args.size(); ++I)
      Bindings[Decl->TParams[I]] = Args[I];

    bool Ok = true;
    Chain.push_back(Ty->str());
    for (const auto &Field : Decl->Fields) {
      CcTypePtr FieldTy = substitute(Field.Type, Bindings);
      if (!FieldTy->isFieldable()) {
        report("'" + FieldTy->str() +
               "' is not a class, struct, or union type; field '" +
               Field.Name + "' invalidly declared function type");
        Ok = false;
      }
    }
    Chain.pop_back();
    StructInstOk[Key] = Ok;
    return Ok;
  }

  /// Calls the generic operator() of \p StructTy with \p ArgTypes.
  /// \returns the body's type, or error.
  CcTypePtr callOperator(const CcTypePtr &StructTy,
                         const std::vector<CcTypePtr> &ArgTypes) {
    const CcStructDecl *Decl = StructTy->Struct;
    if (!Decl->HasCallOperator) {
      report("no match for call to '(" + StructTy->str() + ")'");
      return ccError();
    }
    if (ArgTypes.size() != Decl->CallParams.size()) {
      report("no match for call to '(" + StructTy->str() +
             ")': wrong number of arguments");
      return ccError();
    }
    // Memoize per (struct instance, argument types).
    std::string Key = StructTy->str() + "(";
    for (const auto &A : ArgTypes)
      Key += A->str() + ",";
    Key += ")";
    auto Memo = OperatorResult.find(Key);
    if (Memo != OperatorResult.end())
      return Memo->second;
    OperatorResult[Key] = ccError(); // break recursion pessimistically

    std::map<std::string, CcTypePtr> Bindings;
    for (size_t I = 0; I < Decl->TParams.size() && I < StructTy->Args.size();
         ++I)
      Bindings[Decl->TParams[I]] = StructTy->Args[I];

    Env Locals;
    for (const auto &Field : Decl->Fields)
      Locals.emplace_back(Field.Name, substitute(Field.Type, Bindings));
    for (size_t I = 0; I < ArgTypes.size(); ++I)
      Locals.emplace_back(Decl->CallParams[I], ArgTypes[I]);

    Chain.push_back(StructTy->str() + "::operator()");
    size_t ErrorsBefore = Errors.size();
    CcTypePtr Result = checkExpr(*Decl->CallBody, Locals, Bindings, nullptr);
    Chain.pop_back();
    if (Errors.size() != ErrorsBefore)
      Result = ccError();
    OperatorResult[Key] = Result;
    return Result;
  }

  /// Calls a template function: deduction, then body instantiation.
  CcTypePtr callTemplate(const CcFuncDecl *F,
                         const std::vector<CcTypePtr> &ArgTypes) {
    if (ArgTypes.size() != F->Params.size()) {
      report("no matching function for call to '" + F->Name +
             "': wrong number of arguments");
      return ccError();
    }
    std::map<std::string, CcTypePtr> Bindings;
    for (size_t I = 0; I < ArgTypes.size(); ++I) {
      if (ArgTypes[I]->isError())
        return ccError();
      if (!deduce(F->Params[I].Type, ArgTypes[I], Bindings)) {
        std::vector<std::string> Parts;
        for (const auto &A : ArgTypes)
          Parts.push_back(A->str());
        report("no matching function for call to '" + F->Name + "(" +
               join(Parts, ", ") + ")'");
        return ccError();
      }
    }
    // Every template parameter must be bound.
    for (const auto &P : F->TParams)
      if (!Bindings.count(P)) {
        report("couldn't deduce template parameter '" + P + "' in call to '" +
               F->Name + "'");
        return ccError();
      }

    // Instantiate (memoized).
    std::string Key = F->Name + "<";
    for (const auto &P : F->TParams)
      Key += Bindings[P]->str() + ",";
    Key += ">";
    if (!FuncInstDone.count(Key)) {
      FuncInstDone.insert(Key);
      Chain.push_back(Key);
      checkFunctionBody(*F, Bindings);
      Chain.pop_back();
    }
    return substitute(F->RetType, Bindings);
  }

  CcTypePtr checkExpr(const CcExpr &E, Env &Locals,
                      const std::map<std::string, CcTypePtr> &Bindings,
                      CcTypePtr Expected) {
    switch (E.kind()) {
    case CcExpr::Kind::IntLit:
      return ccInt();

    case CcExpr::Kind::Var: {
      if (CcTypePtr T = lookupLocal(Locals, E.Name))
        return T;
      if (const CcFuncDecl *F = Prog.findFunc(E.Name)) {
        if (!F->TParams.empty()) {
          report("cannot use template function '" + E.Name +
                 "' without arguments");
          return ccError();
        }
        // A bare function name has function type (no decay here; see
        // CcTypeck.h).
        std::vector<CcTypePtr> Params;
        for (const auto &P : F->Params)
          Params.push_back(P.Type);
        return ccFunc(F->RetType, std::move(Params));
      }
      report("'" + E.Name + "' was not declared in this scope");
      return ccError();
    }

    case CcExpr::Kind::Call: {
      const CcExpr &Callee = *E.child(0);
      std::vector<CcTypePtr> ArgTypes;

      // The magicFun builtins (Section 4.2's wildcard emulation).
      if (Callee.kind() == CcExpr::Kind::Var &&
          (Callee.Name == "magicFun" || Callee.Name == "magicFunVoid") &&
          !lookupLocal(Locals, Callee.Name)) {
        for (unsigned I = 1; I < E.numChildren(); ++I)
          checkExpr(*E.child(I), Locals, Bindings, nullptr);
        if (Callee.Name == "magicFunVoid")
          return ccVoid();
        if (!Expected) {
          report("couldn't deduce template parameter 'B' in call to "
                 "'magicFun'");
          return ccError();
        }
        return Expected;
      }

      // A named template or ordinary function?
      if (Callee.kind() == CcExpr::Kind::Var &&
          !lookupLocal(Locals, Callee.Name)) {
        if (const CcFuncDecl *F = Prog.findFunc(Callee.Name)) {
          if (!F->TParams.empty()) {
            for (unsigned I = 1; I < E.numChildren(); ++I)
              ArgTypes.push_back(
                  checkExpr(*E.child(I), Locals, Bindings, nullptr));
            return callTemplate(F, ArgTypes);
          }
          // Ordinary function: check arguments against declared types.
          if (E.numChildren() - 1 != F->Params.size()) {
            report("wrong number of arguments to '" + F->Name + "'");
            return ccError();
          }
          for (unsigned I = 1; I < E.numChildren(); ++I) {
            CcTypePtr ParamTy = F->Params[I - 1].Type;
            CcTypePtr ArgTy =
                checkExpr(*E.child(I), Locals, Bindings, ParamTy);
            if (!ArgTy->isError() && !assignable(ArgTy, ParamTy))
              report("cannot convert '" + ArgTy->str() + "' to '" +
                     ParamTy->str() + "' for argument " + std::to_string(I) +
                     " of '" + F->Name + "'");
          }
          return F->RetType;
        }
      }

      // General callee: functor object or function (pointer).
      CcTypePtr CalleeTy = checkExpr(Callee, Locals, Bindings, nullptr);
      for (unsigned I = 1; I < E.numChildren(); ++I)
        ArgTypes.push_back(checkExpr(*E.child(I), Locals, Bindings, nullptr));
      if (CalleeTy->isError())
        return ccError();

      if (CalleeTy->isStruct()) {
        // Cascading behavior: calling through a poisoned instantiation.
        if (!instantiateStruct(CalleeTy->Struct, CalleeTy->Args)) {
          std::vector<std::string> Parts;
          for (const auto &A : ArgTypes)
            Parts.push_back(A->str());
          report("no match for call to '(" + CalleeTy->str() + ") (" +
                 join(Parts, ", ") + ")'");
          return ccError();
        }
        return callOperator(CalleeTy, ArgTypes);
      }

      CcTypePtr FnTy = CalleeTy;
      if (FnTy->TheKind == CcType::Kind::Pointer && FnTy->Elem->isFunction())
        FnTy = FnTy->Elem;
      if (!FnTy->isFunction()) {
        report("'" + CalleeTy->str() + "' cannot be used as a function");
        return ccError();
      }
      if (ArgTypes.size() != FnTy->Params.size()) {
        report("wrong number of arguments in call through '" +
               CalleeTy->str() + "'");
        return ccError();
      }
      for (size_t I = 0; I < ArgTypes.size(); ++I)
        if (!ArgTypes[I]->isError() &&
            !assignable(ArgTypes[I], FnTy->Params[I]))
          report("cannot convert '" + ArgTypes[I]->str() + "' to '" +
                 FnTy->Params[I]->str() + "' in call");
      return FnTy->Ret;
    }

    case CcExpr::Kind::Construct: {
      const CcStructDecl *Decl = Prog.findStruct(E.TypeName);
      if (!Decl) {
        report("'" + E.TypeName + "' does not name a type");
        return ccError();
      }
      std::vector<CcTypePtr> Args;
      for (const auto &A : E.TypeArgs)
        Args.push_back(substitute(A, Bindings));
      if (Args.size() != Decl->TParams.size()) {
        report("wrong number of template arguments for '" + E.TypeName +
               "'");
        return ccError();
      }
      CcTypePtr Ty = ccStructType(Decl, Args);
      bool InstOk = instantiateStruct(Decl, Args);

      // Positional field initialization.
      std::map<std::string, CcTypePtr> StructBindings;
      for (size_t I = 0; I < Decl->TParams.size(); ++I)
        StructBindings[Decl->TParams[I]] = Args[I];
      if (E.numChildren() != 0 && E.numChildren() != Decl->Fields.size()) {
        report("wrong number of constructor arguments for '" + Ty->str() +
               "'");
        return Ty;
      }
      for (unsigned I = 0; I < E.numChildren(); ++I) {
        CcTypePtr FieldTy =
            substitute(Decl->Fields[I].Type, StructBindings);
        CcTypePtr ArgTy = checkExpr(*E.child(I), Locals, Bindings, FieldTy);
        if (InstOk && !ArgTy->isError() && !assignable(ArgTy, FieldTy))
          report("cannot convert '" + ArgTy->str() + "' to '" +
                 FieldTy->str() + "' for field '" + Decl->Fields[I].Name +
                 "'");
      }
      return Ty;
    }

    case CcExpr::Kind::Member: {
      CcTypePtr ObjTy = checkExpr(*E.child(0), Locals, Bindings, nullptr);
      if (ObjTy->isError())
        return ccError();
      if (E.IsArrow) {
        if (ObjTy->TheKind != CcType::Kind::Pointer) {
          report("base operand of '->' has non-pointer type '" +
                 ObjTy->str() + "'");
          return ccError();
        }
        ObjTy = ObjTy->Elem;
      }
      if (!ObjTy->isStruct()) {
        report("request for member '" + E.Name + "' in something not a "
               "structure ('" + ObjTy->str() + "')");
        return ccError();
      }
      std::map<std::string, CcTypePtr> StructBindings;
      for (size_t I = 0; I < ObjTy->Struct->TParams.size(); ++I)
        StructBindings[ObjTy->Struct->TParams[I]] = ObjTy->Args[I];
      for (const auto &Field : ObjTy->Struct->Fields)
        if (Field.Name == E.Name)
          return substitute(Field.Type, StructBindings);
      report("'" + ObjTy->str() + "' has no member named '" + E.Name + "'");
      return ccError();
    }

    case CcExpr::Kind::Unary: {
      CcTypePtr T = checkExpr(*E.child(0), Locals, Bindings, nullptr);
      if (T->isError())
        return ccError();
      if (E.Name == "*") {
        if (T->TheKind != CcType::Kind::Pointer) {
          report("invalid type argument of unary '*' (have '" + T->str() +
                 "')");
          return ccError();
        }
        return T->Elem;
      }
      if (E.Name == "-") {
        if (!isNumeric(T)) {
          report("wrong type argument to unary minus ('" + T->str() + "')");
          return ccError();
        }
        return T;
      }
      if (E.Name == "&")
        return ccPtr(T);
      report("unknown unary operator '" + E.Name + "'");
      return ccError();
    }

    case CcExpr::Kind::Binary: {
      CcTypePtr L = checkExpr(*E.child(0), Locals, Bindings, nullptr);
      CcTypePtr R = checkExpr(*E.child(1), Locals, Bindings, nullptr);
      if (L->isError() || R->isError())
        return ccError();
      bool Cmp = E.Name == "<" || E.Name == "==";
      if (!isNumeric(L) || !isNumeric(R)) {
        report("invalid operands of types '" + L->str() + "' and '" +
               R->str() + "' to binary 'operator" + E.Name + "'");
        return ccError();
      }
      if (Cmp)
        return ccBool();
      return numericRank(L) >= numericRank(R) ? L : R;
    }

    case CcExpr::Kind::MethodCall: {
      CcTypePtr ObjTy = checkExpr(*E.child(0), Locals, Bindings, nullptr);
      if (ObjTy->isError())
        return ccError();
      if (ObjTy->TheKind == CcType::Kind::Vector) {
        if (E.Name == "begin" || E.Name == "end")
          return ccPtr(ObjTy->Elem);
        if (E.Name == "size")
          return ccInt();
        if (E.Name == "push_back") {
          if (E.numChildren() == 2) {
            CcTypePtr A =
                checkExpr(*E.child(1), Locals, Bindings, ObjTy->Elem);
            if (!A->isError() && !assignable(A, ObjTy->Elem))
              report("cannot convert '" + A->str() + "' to '" +
                     ObjTy->Elem->str() + "' in push_back");
          }
          return ccVoid();
        }
      }
      report("'" + ObjTy->str() + "' has no member function named '" +
             E.Name + "'");
      return ccError();
    }
    }
    return ccError();
  }

  const CcProgram &Prog;
  std::vector<CcError> Errors;
  std::vector<std::string> Chain;
  std::string CurrentFunction;
  int CurrentStmt = -1;
  std::map<std::string, bool> StructInstOk;
  std::map<std::string, CcTypePtr> OperatorResult;
  std::set<std::string> FuncInstDone;
};

} // namespace

CcCheckResult cpp::checkProgram(const CcProgram &Prog) {
  Checker C(Prog);
  return C.run();
}
