//===- CcStl.h - The mini-STL for the C++ prototype -------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slice of the STL (and the __gnu_cxx extension) that the paper's
/// Figure 10 client exercises, expressed in mini-C++: multiplies,
/// binder1st / bind1st, unary_compose / compose1 (the gcc extension),
/// pointer_to_unary_function / ptr_fun, transform, plus labs from
/// <cmath>. Installing these into a program reproduces the library-side
/// conditions for the Figure 11 error wall: compose1's parameters do not
/// decay functions to pointers, and unary_compose declares fields of its
/// template-parameter types.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICPP_CCSTL_H
#define SEMINAL_MINICPP_CCSTL_H

#include "minicpp/CcAst.h"

namespace seminal {
namespace cpp {

/// Appends the mini-STL declarations to \p Prog. Must be called before
/// user functions referencing them are added (order is irrelevant to the
/// checker, but the structs must exist for user code to name them).
void addMiniStl(CcProgram &Prog);

} // namespace cpp
} // namespace seminal

#endif // SEMINAL_MINICPP_CCSTL_H
