//===- CcTypes.h - Types for the mini-C++ substrate -------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic types for the mini-C++ language of Section 4. Unlike the
/// mini-Caml types these are immutable and structurally compared -- C++
/// has no unification; template deduction is one-way matching of a
/// parameterized pattern against a concrete argument type.
///
/// The kinds cover exactly what the paper's template-function scenario
/// exercises: builtins, pointers (also serving as iterators), function
/// types (the problematic non-class types of Figure 11), a builtin
/// vector<T>, instantiated struct types, and template parameters.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICPP_CCTYPES_H
#define SEMINAL_MINICPP_CCTYPES_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace seminal {
namespace cpp {

class CcStructDecl;

/// An immutable mini-C++ type. Shared freely via shared_ptr.
class CcType {
public:
  enum class Kind {
    Builtin,  ///< int / long / double / bool / void / string
    Pointer,  ///< T* (also the iterator type of vector<T>)
    Function, ///< R(A1, ..., An) -- a function (pointer) type
    Vector,   ///< vector<T>, the one builtin container
    Struct,   ///< a (possibly template-instantiated) struct type
    TParam,   ///< a template parameter inside an uninstantiated body
    Error,    ///< the type of expressions whose checking failed
  };

  Kind TheKind;
  std::string Name; ///< Builtin name / TParam name.
  std::shared_ptr<const CcType> Elem;                ///< Pointer/Vector.
  std::shared_ptr<const CcType> Ret;                 ///< Function.
  std::vector<std::shared_ptr<const CcType>> Params; ///< Function.
  const CcStructDecl *Struct = nullptr;              ///< Struct decl.
  std::vector<std::shared_ptr<const CcType>> Args;   ///< Struct targs.

  bool isBuiltin(const std::string &N) const {
    return TheKind == Kind::Builtin && Name == N;
  }
  bool isVoid() const { return isBuiltin("void"); }
  bool isError() const { return TheKind == Kind::Error; }
  bool isFunction() const { return TheKind == Kind::Function; }
  bool isStruct() const { return TheKind == Kind::Struct; }
  /// \returns true for types a struct field may legally have (function
  /// types may not be fields -- the Figure 11 error).
  bool isFieldable() const { return TheKind != Kind::Function; }

  /// Structural equality.
  bool equals(const CcType &Other) const;

  /// Renders in C++-like syntax ("long (*)(long)", "vector<long>",
  /// "unary_compose<binder1st<multiplies<long> >, long (*)(long)>").
  std::string str() const;
};

using CcTypePtr = std::shared_ptr<const CcType>;

// Constructors.
CcTypePtr ccBuiltin(const std::string &Name);
CcTypePtr ccInt();
CcTypePtr ccLong();
CcTypePtr ccDouble();
CcTypePtr ccBool();
CcTypePtr ccVoid();
CcTypePtr ccString();
CcTypePtr ccPtr(CcTypePtr Elem);
CcTypePtr ccFunc(CcTypePtr Ret, std::vector<CcTypePtr> Params);
CcTypePtr ccVector(CcTypePtr Elem);
CcTypePtr ccStructType(const CcStructDecl *Decl, std::vector<CcTypePtr> Args);
CcTypePtr ccTParam(const std::string &Name);
CcTypePtr ccError();

/// Substitutes template parameters by \p Bindings throughout \p T.
CcTypePtr substitute(const CcTypePtr &T,
                     const std::map<std::string, CcTypePtr> &Bindings);

/// One-way template-argument deduction: matches the parameterized
/// \p Pattern against the concrete \p Actual, extending \p Bindings.
/// \returns false on conflict or shape mismatch. Mirrors (a simplified
/// form of) C++ deduction: exact matching on structure; a TParam matches
/// anything consistently.
bool deduce(const CcTypePtr &Pattern, const CcTypePtr &Actual,
            std::map<std::string, CcTypePtr> &Bindings);

} // namespace cpp
} // namespace seminal

#endif // SEMINAL_MINICPP_CCTYPES_H
