//===- CcStl.cpp - The mini-STL implementation -----------------------------==//

#include "minicpp/CcStl.h"

using namespace seminal;
using namespace seminal::cpp;

namespace {

std::unique_ptr<CcStructDecl> makeStruct(const std::string &Name,
                                         std::vector<std::string> TParams) {
  auto S = std::make_unique<CcStructDecl>();
  S->Name = Name;
  S->TParams = std::move(TParams);
  return S;
}

std::unique_ptr<CcFuncDecl>
makeTemplateFunc(const std::string &Name, std::vector<std::string> TParams,
                 std::vector<CcFuncDecl::Param> Params, CcTypePtr Ret,
                 std::vector<CcStmt> Body) {
  auto F = std::make_unique<CcFuncDecl>();
  F->Name = Name;
  F->TParams = std::move(TParams);
  F->Params = std::move(Params);
  F->RetType = std::move(Ret);
  F->Body = std::move(Body);
  return F;
}

} // namespace

void cpp::addMiniStl(CcProgram &Prog) {
  // template<class T> struct multiplies { T operator()(T a, T b); };
  // (modelled with a generic call operator: body checked per call).
  {
    auto S = makeStruct("multiplies", {"T"});
    S->HasCallOperator = true;
    S->CallParams = {"a", "b"};
    S->CallBody = ccBinary("*", ccVar("a"), ccVar("b"));
    Prog.Structs.push_back(std::move(S));
  }

  // template<class Op, class T> struct binder1st {
  //   Op op; T value;  auto operator()(x) { return op(value, x); } };
  {
    auto S = makeStruct("binder1st", {"Op", "T"});
    S->Fields.push_back({"op", ccTParam("Op")});
    S->Fields.push_back({"value", ccTParam("T")});
    S->HasCallOperator = true;
    S->CallParams = {"x"};
    S->CallBody = ccCall(ccVar("op"), [] {
      std::vector<CcExprPtr> Args;
      Args.push_back(ccVar("value"));
      Args.push_back(ccVar("x"));
      return Args;
    }());
    Prog.Structs.push_back(std::move(S));
  }

  // template<class Op1, class Op2> struct unary_compose {
  //   Op1 _M_fn1; Op2 _M_fn2;
  //   auto operator()(x) { return _M_fn1(_M_fn2(x)); } };
  // The fields of template-parameter type are the Figure 11 trap.
  {
    auto S = makeStruct("unary_compose", {"Op1", "Op2"});
    S->Fields.push_back({"_M_fn1", ccTParam("Op1")});
    S->Fields.push_back({"_M_fn2", ccTParam("Op2")});
    S->HasCallOperator = true;
    S->CallParams = {"x"};
    std::vector<CcExprPtr> Inner;
    Inner.push_back(ccVar("x"));
    std::vector<CcExprPtr> Outer;
    Outer.push_back(ccCall(ccVar("_M_fn2"), std::move(Inner)));
    S->CallBody = ccCall(ccVar("_M_fn1"), std::move(Outer));
    Prog.Structs.push_back(std::move(S));
  }

  // template<class A, class R> struct pointer_to_unary_function {
  //   R (*_M_ptr)(A);  auto operator()(x) { return _M_ptr(x); } };
  {
    auto S = makeStruct("pointer_to_unary_function", {"A", "R"});
    S->Fields.push_back(
        {"_M_ptr", ccPtr(ccFunc(ccTParam("R"), {ccTParam("A")}))});
    S->HasCallOperator = true;
    S->CallParams = {"x"};
    std::vector<CcExprPtr> Args;
    Args.push_back(ccVar("x"));
    S->CallBody = ccCall(ccVar("_M_ptr"), std::move(Args));
    Prog.Structs.push_back(std::move(S));
  }

  const CcStructDecl *Binder1st = Prog.findStruct("binder1st");
  const CcStructDecl *UnaryCompose = Prog.findStruct("unary_compose");
  const CcStructDecl *PtrFunctor =
      Prog.findStruct("pointer_to_unary_function");

  // template<class Op, class T>
  // binder1st<Op, T> bind1st(Op op, T v) { return binder1st<Op,T>(op,v); }
  {
    std::vector<CcExprPtr> Args;
    Args.push_back(ccVar("op"));
    Args.push_back(ccVar("v"));
    std::vector<CcStmt> Body;
    Body.push_back(ccReturn(ccConstruct(
        "binder1st", {ccTParam("Op"), ccTParam("T")}, std::move(Args))));
    Prog.Funcs.push_back(makeTemplateFunc(
        "bind1st", {"Op", "T"},
        {{"op", ccTParam("Op")}, {"v", ccTParam("T")}},
        ccStructType(Binder1st, {ccTParam("Op"), ccTParam("T")}),
        std::move(Body)));
  }

  // template<class Op1, class Op2> unary_compose<Op1, Op2>
  // compose1(const Op1& f1, const Op2& f2)   (const& = no decay).
  {
    std::vector<CcExprPtr> Args;
    Args.push_back(ccVar("f1"));
    Args.push_back(ccVar("f2"));
    std::vector<CcStmt> Body;
    Body.push_back(ccReturn(ccConstruct(
        "unary_compose", {ccTParam("Op1"), ccTParam("Op2")},
        std::move(Args))));
    Prog.Funcs.push_back(makeTemplateFunc(
        "compose1", {"Op1", "Op2"},
        {{"f1", ccTParam("Op1")}, {"f2", ccTParam("Op2")}},
        ccStructType(UnaryCompose, {ccTParam("Op1"), ccTParam("Op2")}),
        std::move(Body)));
  }

  // template<class A, class R>
  // pointer_to_unary_function<A, R> ptr_fun(R (*f)(A)) { ... }
  // The pointer-typed parameter is what makes deduction decay here.
  {
    std::vector<CcExprPtr> Args;
    Args.push_back(ccVar("f"));
    std::vector<CcStmt> Body;
    Body.push_back(ccReturn(
        ccConstruct("pointer_to_unary_function",
                    {ccTParam("A"), ccTParam("R")}, std::move(Args))));
    Prog.Funcs.push_back(makeTemplateFunc(
        "ptr_fun", {"A", "R"},
        {{"f", ccPtr(ccFunc(ccTParam("R"), {ccTParam("A")}))}},
        ccStructType(PtrFunctor, {ccTParam("A"), ccTParam("R")}),
        std::move(Body)));
  }

  // template<class In, class Out, class Op>
  // Out transform(In first, In last, Out result, Op op)
  //   { op(*first); return result; }
  {
    std::vector<CcExprPtr> CallArgs;
    CallArgs.push_back(ccUnary("*", ccVar("first")));
    std::vector<CcStmt> Body;
    Body.push_back(ccExprStmt(ccCall(ccVar("op"), std::move(CallArgs))));
    Body.push_back(ccReturn(ccVar("result")));
    Prog.Funcs.push_back(makeTemplateFunc(
        "transform", {"In", "Out", "Op"},
        {{"first", ccTParam("In")},
         {"last", ccTParam("In")},
         {"result", ccTParam("Out")},
         {"op", ccTParam("Op")}},
        ccTParam("Out"), std::move(Body)));
  }

  // long labs(long) -- the <cmath> function of Figure 10.
  {
    auto F = std::make_unique<CcFuncDecl>();
    F->Name = "labs";
    F->Params = {{"x", ccLong()}};
    F->RetType = ccLong();
    Prog.Funcs.push_back(std::move(F));
  }

  // int abs(int) -- handy for extra scenarios.
  {
    auto F = std::make_unique<CcFuncDecl>();
    F->Name = "abs";
    F->Params = {{"x", ccInt()}};
    F->RetType = ccInt();
    Prog.Funcs.push_back(std::move(F));
  }
}
