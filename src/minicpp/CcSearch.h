//===- CcSearch.h - Search-based messages for mini-C++ ----------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ prototype's search procedure (Section 4.2). It differs from
/// the Caml searcher exactly where the paper says it must:
///
///   * No whole-program descent: the search focuses on the ordinary
///     function containing the first error (identified from the
///     diagnostic, as the paper does by parsing gcc output).
///   * No universal wildcard: removal and adaptation are emulated with
///     magicFun(0) / magicFun(e), which fail to deduce in contexts that
///     provide no expected type -- so the searcher falls back to hoisting
///     (f(e1, e2); becomes magicFunVoid(e1); magicFunVoid(e2);).
///   * Success means eliminating some of the baseline errors while
///     introducing no new ones (cascading errors make exact emptiness
///     too strict), which doubles as built-in triage.
///   * Constructive changes include STL-specific idioms: wrapping an
///     argument in ptr_fun (the Figure 10 fix), unwrapping a spurious
///     ptr_fun, flipping `.` and `->`, and rearranging call arguments.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICPP_CCSEARCH_H
#define SEMINAL_MINICPP_CCSEARCH_H

#include "minicpp/CcAst.h"
#include "minicpp/CcTypeck.h"
#include "support/Trace.h"

#include <string>
#include <vector>

namespace seminal {
namespace cpp {

/// One confirmed suggestion.
struct CcSuggestion {
  enum class Kind { Constructive, Adaptation, Hoist, Removal };
  Kind TheKind = Kind::Constructive;
  std::string Description;
  int StmtIndex = -1;
  std::string Before; ///< The replaced expression/statement, printed.
  std::string After;  ///< The replacement, printed.
  unsigned OriginalSize = 0;
  /// How many of the baseline errors this change eliminates.
  unsigned ErrorsFixed = 0;

  std::string str() const;
};

/// Everything a run produces.
struct CcReport {
  CcCheckResult Baseline;
  std::string TargetFunction;
  std::vector<CcSuggestion> Suggestions; ///< Ranked, best first.
  size_t OracleCalls = 0;

  bool inputTypechecks() const { return Baseline.ok(); }
  std::string bestMessage() const;
};

/// Runs search-based message generation for mini-C++. \p Prog is
/// temporarily modified during the search and restored before returning.
/// When \p Trace is non-null every checker invocation is recorded as an
/// OracleCall span under a CcSearch root, mirroring the Caml pipeline's
/// trace schema (layer / verdict / cache_hit attributes).
CcReport runCppSeminal(CcProgram &Prog, TraceSink *Trace = nullptr);

} // namespace cpp
} // namespace seminal

#endif // SEMINAL_MINICPP_CCSEARCH_H
