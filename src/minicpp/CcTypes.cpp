//===- CcTypes.cpp - Mini-C++ types implementation -------------------------==//

#include "minicpp/CcTypes.h"

#include "minicpp/CcAst.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace seminal;
using namespace seminal::cpp;

namespace {

CcTypePtr make(CcType::Kind K) {
  auto T = std::make_shared<CcType>();
  T->TheKind = K;
  return T;
}

} // namespace

bool CcType::equals(const CcType &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Builtin:
  case Kind::TParam:
    return Name == Other.Name;
  case Kind::Error:
    return true;
  case Kind::Pointer:
  case Kind::Vector:
    return Elem->equals(*Other.Elem);
  case Kind::Function: {
    if (!Ret->equals(*Other.Ret) || Params.size() != Other.Params.size())
      return false;
    for (size_t I = 0; I < Params.size(); ++I)
      if (!Params[I]->equals(*Other.Params[I]))
        return false;
    return true;
  }
  case Kind::Struct: {
    if (Struct != Other.Struct || Args.size() != Other.Args.size())
      return false;
    for (size_t I = 0; I < Args.size(); ++I)
      if (!Args[I]->equals(*Other.Args[I]))
        return false;
    return true;
  }
  }
  return false;
}

std::string CcType::str() const {
  switch (TheKind) {
  case Kind::Builtin:
  case Kind::TParam:
    return Name;
  case Kind::Error:
    return "<error-type>";
  case Kind::Pointer: {
    if (Elem->isFunction()) {
      std::vector<std::string> Parts;
      for (const auto &P : Elem->Params)
        Parts.push_back(P->str());
      return Elem->Ret->str() + " (*)(" + join(Parts, ", ") + ")";
    }
    return Elem->str() + "*";
  }
  case Kind::Vector:
    return "vector<" + Elem->str() + ">";
  case Kind::Function: {
    // gcc renders a bare function type as "long int ()(long int)".
    std::vector<std::string> Parts;
    for (const auto &P : Params)
      Parts.push_back(P->str());
    return Ret->str() + " ()(" + join(Parts, ", ") + ")";
  }
  case Kind::Struct: {
    std::string Text = structName(Struct);
    if (!Args.empty()) {
      std::vector<std::string> Parts;
      for (const auto &A : Args)
        Parts.push_back(A->str());
      Text += "<" + join(Parts, ", ") + (Text.back() == '>' ? " >" : ">");
    }
    return Text;
  }
  }
  return "?";
}

CcTypePtr cpp::ccBuiltin(const std::string &Name) {
  auto T = make(CcType::Kind::Builtin);
  const_cast<CcType *>(T.get())->Name = Name;
  return T;
}

CcTypePtr cpp::ccInt() { return ccBuiltin("int"); }
CcTypePtr cpp::ccLong() { return ccBuiltin("long"); }
CcTypePtr cpp::ccDouble() { return ccBuiltin("double"); }
CcTypePtr cpp::ccBool() { return ccBuiltin("bool"); }
CcTypePtr cpp::ccVoid() { return ccBuiltin("void"); }
CcTypePtr cpp::ccString() { return ccBuiltin("string"); }

CcTypePtr cpp::ccPtr(CcTypePtr Elem) {
  auto T = make(CcType::Kind::Pointer);
  const_cast<CcType *>(T.get())->Elem = std::move(Elem);
  return T;
}

CcTypePtr cpp::ccFunc(CcTypePtr Ret, std::vector<CcTypePtr> Params) {
  auto T = make(CcType::Kind::Function);
  auto *M = const_cast<CcType *>(T.get());
  M->Ret = std::move(Ret);
  M->Params = std::move(Params);
  return T;
}

CcTypePtr cpp::ccVector(CcTypePtr Elem) {
  auto T = make(CcType::Kind::Vector);
  const_cast<CcType *>(T.get())->Elem = std::move(Elem);
  return T;
}

CcTypePtr cpp::ccStructType(const CcStructDecl *Decl,
                            std::vector<CcTypePtr> Args) {
  assert(Decl && "struct type needs a declaration");
  auto T = make(CcType::Kind::Struct);
  auto *M = const_cast<CcType *>(T.get());
  M->Struct = Decl;
  M->Args = std::move(Args);
  return T;
}

CcTypePtr cpp::ccTParam(const std::string &Name) {
  auto T = make(CcType::Kind::TParam);
  const_cast<CcType *>(T.get())->Name = Name;
  return T;
}

CcTypePtr cpp::ccError() { return make(CcType::Kind::Error); }

CcTypePtr cpp::substitute(const CcTypePtr &T,
                          const std::map<std::string, CcTypePtr> &Bindings) {
  switch (T->TheKind) {
  case CcType::Kind::Builtin:
  case CcType::Kind::Error:
    return T;
  case CcType::Kind::TParam: {
    auto It = Bindings.find(T->Name);
    return It == Bindings.end() ? T : It->second;
  }
  case CcType::Kind::Pointer:
    return ccPtr(substitute(T->Elem, Bindings));
  case CcType::Kind::Vector:
    return ccVector(substitute(T->Elem, Bindings));
  case CcType::Kind::Function: {
    std::vector<CcTypePtr> Params;
    for (const auto &P : T->Params)
      Params.push_back(substitute(P, Bindings));
    return ccFunc(substitute(T->Ret, Bindings), std::move(Params));
  }
  case CcType::Kind::Struct: {
    std::vector<CcTypePtr> Args;
    for (const auto &A : T->Args)
      Args.push_back(substitute(A, Bindings));
    return ccStructType(T->Struct, std::move(Args));
  }
  }
  return T;
}

bool cpp::deduce(const CcTypePtr &Pattern, const CcTypePtr &Actual,
                 std::map<std::string, CcTypePtr> &Bindings) {
  if (Pattern->TheKind == CcType::Kind::TParam) {
    auto It = Bindings.find(Pattern->Name);
    if (It != Bindings.end())
      return It->second->equals(*Actual);
    Bindings.emplace(Pattern->Name, Actual);
    return true;
  }
  if (Actual->isError())
    return false;
  // Function-to-pointer decay: deduction against an explicit
  // pointer-to-function parameter (ptr_fun's signature) accepts a bare
  // function; a bare template parameter does not decay (compose1's
  // const-ref parameters), per Section 4.1's root cause.
  if (Pattern->TheKind == CcType::Kind::Pointer && Actual->isFunction())
    return deduce(Pattern->Elem, Actual, Bindings);
  if (Pattern->TheKind != Actual->TheKind)
    return false;
  switch (Pattern->TheKind) {
  case CcType::Kind::Builtin:
    return Pattern->Name == Actual->Name;
  case CcType::Kind::Pointer:
  case CcType::Kind::Vector:
    return deduce(Pattern->Elem, Actual->Elem, Bindings);
  case CcType::Kind::Function: {
    if (Pattern->Params.size() != Actual->Params.size())
      return false;
    if (!deduce(Pattern->Ret, Actual->Ret, Bindings))
      return false;
    for (size_t I = 0; I < Pattern->Params.size(); ++I)
      if (!deduce(Pattern->Params[I], Actual->Params[I], Bindings))
        return false;
    return true;
  }
  case CcType::Kind::Struct: {
    if (Pattern->Struct != Actual->Struct ||
        Pattern->Args.size() != Actual->Args.size())
      return false;
    for (size_t I = 0; I < Pattern->Args.size(); ++I)
      if (!deduce(Pattern->Args[I], Actual->Args[I], Bindings))
        return false;
    return true;
  }
  default:
    return false;
  }
}
