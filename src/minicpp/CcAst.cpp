//===- CcAst.cpp - Mini-C++ abstract syntax implementation ----------------==//

#include "minicpp/CcAst.h"

#include "support/StrUtil.h"

#include <cassert>
#include <sstream>

using namespace seminal;
using namespace seminal::cpp;

CcExprPtr CcExpr::clone() const {
  auto Copy = std::make_unique<CcExpr>(TheKind);
  Copy->IntValue = IntValue;
  Copy->Name = Name;
  Copy->IsArrow = IsArrow;
  for (const auto &Child : Children)
    Copy->Children.push_back(Child->clone());
  Copy->TypeName = TypeName;
  Copy->TypeArgs = TypeArgs;
  return Copy;
}

unsigned CcExpr::size() const {
  unsigned N = 1;
  for (const auto &Child : Children)
    N += Child->size();
  return N;
}

std::string CcExpr::str() const {
  switch (TheKind) {
  case Kind::IntLit:
    return std::to_string(IntValue);
  case Kind::Var:
    return Name;
  case Kind::Call: {
    std::vector<std::string> Args;
    for (unsigned I = 1; I < numChildren(); ++I)
      Args.push_back(child(I)->str());
    return child(0)->str() + "(" + join(Args, ", ") + ")";
  }
  case Kind::Construct: {
    std::string Text = TypeName;
    if (!TypeArgs.empty()) {
      std::vector<std::string> Parts;
      for (const auto &T : TypeArgs)
        Parts.push_back(T->str());
      Text += "<" + join(Parts, ", ") + ">";
    }
    std::vector<std::string> Args;
    for (const auto &Child : Children)
      Args.push_back(Child->str());
    return Text + "(" + join(Args, ", ") + ")";
  }
  case Kind::Member:
    return child(0)->str() + (IsArrow ? "->" : ".") + Name;
  case Kind::Unary:
    return Name + child(0)->str();
  case Kind::Binary:
    return child(0)->str() + " " + Name + " " + child(1)->str();
  case Kind::MethodCall: {
    std::vector<std::string> Args;
    for (unsigned I = 1; I < numChildren(); ++I)
      Args.push_back(child(I)->str());
    return child(0)->str() + "." + Name + "(" + join(Args, ", ") + ")";
  }
  }
  return "?";
}

CcExprPtr cpp::ccIntLit(long Value) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::IntLit);
  E->IntValue = Value;
  return E;
}

CcExprPtr cpp::ccVar(const std::string &Name) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Var);
  E->Name = Name;
  return E;
}

CcExprPtr cpp::ccCall(CcExprPtr Callee, std::vector<CcExprPtr> Args) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Call);
  E->Children.push_back(std::move(Callee));
  for (auto &Arg : Args)
    E->Children.push_back(std::move(Arg));
  return E;
}

CcExprPtr cpp::ccCallNamed(const std::string &Fn,
                           std::vector<CcExprPtr> Args) {
  return ccCall(ccVar(Fn), std::move(Args));
}

CcExprPtr cpp::ccConstruct(const std::string &TypeName,
                           std::vector<CcTypePtr> TypeArgs,
                           std::vector<CcExprPtr> Args) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Construct);
  E->TypeName = TypeName;
  E->TypeArgs = std::move(TypeArgs);
  E->Children = std::move(Args);
  return E;
}

CcExprPtr cpp::ccMember(CcExprPtr Obj, const std::string &Field,
                        bool Arrow) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Member);
  E->Name = Field;
  E->IsArrow = Arrow;
  E->Children.push_back(std::move(Obj));
  return E;
}

CcExprPtr cpp::ccUnary(const std::string &Op, CcExprPtr Operand) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Unary);
  E->Name = Op;
  E->Children.push_back(std::move(Operand));
  return E;
}

CcExprPtr cpp::ccBinary(const std::string &Op, CcExprPtr Lhs, CcExprPtr Rhs) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::Binary);
  E->Name = Op;
  E->Children.push_back(std::move(Lhs));
  E->Children.push_back(std::move(Rhs));
  return E;
}

CcExprPtr cpp::ccMethodCall(CcExprPtr Obj, const std::string &Method,
                            std::vector<CcExprPtr> Args) {
  auto E = std::make_unique<CcExpr>(CcExpr::Kind::MethodCall);
  E->Name = Method;
  E->Children.push_back(std::move(Obj));
  for (auto &Arg : Args)
    E->Children.push_back(std::move(Arg));
  return E;
}

CcStmt CcStmt::clone() const {
  CcStmt Copy;
  Copy.TheKind = TheKind;
  Copy.DeclType = DeclType;
  Copy.Name = Name;
  Copy.Line = Line;
  if (E)
    Copy.E = E->clone();
  return Copy;
}

std::string CcStmt::str() const {
  switch (TheKind) {
  case Kind::VarDecl:
    return DeclType->str() + " " + Name + " = " + (E ? E->str() : "?") + ";";
  case Kind::Expr:
    return (E ? E->str() : "?") + ";";
  case Kind::Return:
    return E ? "return " + E->str() + ";" : "return;";
  }
  return "?;";
}

CcStmt cpp::ccVarDecl(CcTypePtr Type, const std::string &Name,
                      CcExprPtr Init) {
  CcStmt S;
  S.TheKind = CcStmt::Kind::VarDecl;
  S.DeclType = std::move(Type);
  S.Name = Name;
  S.E = std::move(Init);
  return S;
}

CcStmt cpp::ccExprStmt(CcExprPtr E) {
  CcStmt S;
  S.TheKind = CcStmt::Kind::Expr;
  S.E = std::move(E);
  return S;
}

CcStmt cpp::ccReturn(CcExprPtr E) {
  CcStmt S;
  S.TheKind = CcStmt::Kind::Return;
  S.E = std::move(E);
  return S;
}

std::string cpp::structName(const CcStructDecl *Decl) {
  return Decl ? Decl->Name : "<struct>";
}

CcFuncDecl CcFuncDecl::clone() const {
  CcFuncDecl Copy;
  Copy.Name = Name;
  Copy.TParams = TParams;
  Copy.Params = Params;
  Copy.RetType = RetType;
  for (const auto &S : Body)
    Copy.Body.push_back(S.clone());
  return Copy;
}

CcStructDecl *CcProgram::findStruct(const std::string &Name) const {
  for (const auto &S : Structs)
    if (S->Name == Name)
      return S.get();
  return nullptr;
}

CcFuncDecl *CcProgram::findFunc(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

std::string cpp::printFunc(const CcFuncDecl &F) {
  std::ostringstream OS;
  if (!F.TParams.empty()) {
    std::vector<std::string> Parts;
    for (const auto &P : F.TParams)
      Parts.push_back("class " + P);
    OS << "template<" << join(Parts, ", ") << ">\n";
  }
  OS << (F.RetType ? F.RetType->str() : "auto") << " " << F.Name << "(";
  std::vector<std::string> Parts;
  for (const auto &P : F.Params)
    Parts.push_back(P.Type->str() + " " + P.Name);
  OS << join(Parts, ", ") << ") {\n";
  for (const auto &S : F.Body)
    OS << "  " << S.str() << "\n";
  OS << "}";
  return OS.str();
}
