//===- CcSearch.cpp - Search-based messages for mini-C++ -------------------==//

#include "minicpp/CcSearch.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace seminal;
using namespace seminal::cpp;

std::string CcSuggestion::str() const {
  std::ostringstream OS;
  OS << "Try replacing\n    " << Before << "\nwith\n    " << After;
  OS << "\n(" << Description << "; fixes " << ErrorsFixed
     << " of the reported errors)";
  return OS.str();
}

std::string CcReport::bestMessage() const {
  if (Baseline.ok())
    return "No type errors.";
  if (Suggestions.empty())
    return "No suggestion found; the compiler output is:\n" +
           Baseline.str();
  return "In function '" + TargetFunction + "': " +
         Suggestions.front().str();
}

namespace {

/// Multiset of error signatures.
std::map<std::string, int> signatureSet(const CcCheckResult &R) {
  std::map<std::string, int> S;
  for (const auto &E : R.Errors)
    ++S[E.signature()];
  return S;
}

/// Success per Section 4.2: eliminates some errors, introduces none.
/// \returns the number of eliminated errors (0 = not a success).
unsigned improvement(const std::map<std::string, int> &Base,
                     const CcCheckResult &New) {
  std::map<std::string, int> NewSet = signatureSet(New);
  unsigned Eliminated = 0;
  for (const auto &KV : NewSet) {
    auto It = Base.find(KV.first);
    if (It == Base.end() || KV.second > It->second)
      return 0; // a new error appeared
  }
  for (const auto &KV : Base) {
    auto It = NewSet.find(KV.first);
    int Remaining = It == NewSet.end() ? 0 : It->second;
    Eliminated += unsigned(KV.second - Remaining);
  }
  return Eliminated;
}

/// Identifies a subexpression inside a statement's expression tree.
using ExprPath = std::vector<unsigned>;

CcExpr *resolveExpr(CcExpr *Root, const ExprPath &Path) {
  CcExpr *Node = Root;
  for (unsigned Step : Path) {
    if (Step >= Node->numChildren())
      return nullptr;
    Node = Node->child(Step);
  }
  return Node;
}

/// Swaps the node at \p Path for \p New, returning the old subtree.
/// Empty paths swap through \p RootSlot.
CcExprPtr swapAt(CcExprPtr &RootSlot, const ExprPath &Path, CcExprPtr New) {
  if (Path.empty()) {
    CcExprPtr Old = std::move(RootSlot);
    RootSlot = std::move(New);
    return Old;
  }
  CcExpr *Parent = RootSlot.get();
  for (size_t I = 0; I + 1 < Path.size(); ++I)
    Parent = Parent->child(Path[I]);
  CcExprPtr Old = std::move(Parent->Children[Path.back()]);
  Parent->Children[Path.back()] = std::move(New);
  return Old;
}

void collectPaths(const CcExpr *Node, ExprPath &Prefix,
                  std::vector<ExprPath> &Out) {
  Out.push_back(Prefix);
  for (unsigned I = 0; I < Node->numChildren(); ++I) {
    Prefix.push_back(I);
    collectPaths(Node->child(I), Prefix, Out);
    Prefix.pop_back();
  }
}

/// One candidate expression-level edit.
struct ExprEdit {
  ExprPath Path;
  CcExprPtr Replacement;
  std::string Description;
  CcSuggestion::Kind Kind = CcSuggestion::Kind::Constructive;
};

/// The C++ enumerator: candidate edits for the subtree at \p Path.
void enumerateExprEdits(const CcExpr &Node, const ExprPath &Path,
                        std::vector<ExprEdit> &Out) {
  auto Add = [&](CcExprPtr Replacement, const std::string &Description,
                 CcSuggestion::Kind Kind) {
    ExprEdit E;
    E.Path = Path;
    E.Replacement = std::move(Replacement);
    E.Description = Description;
    E.Kind = Kind;
    Out.push_back(std::move(E));
  };

  // ptr_fun wrapping/unwrapping: the STL-specific change of Section 4.1.
  if (Node.kind() == CcExpr::Kind::Var ||
      Node.kind() == CcExpr::Kind::Member) {
    std::vector<CcExprPtr> Args;
    Args.push_back(Node.clone());
    Add(ccCallNamed("ptr_fun", std::move(Args)),
        "wrap the function pointer in ptr_fun",
        CcSuggestion::Kind::Constructive);
  }
  if (Node.kind() == CcExpr::Kind::Call && Node.numChildren() == 2 &&
      Node.child(0)->kind() == CcExpr::Kind::Var &&
      Node.child(0)->Name == "ptr_fun")
    Add(Node.child(1)->clone(), "remove the ptr_fun wrapper",
        CcSuggestion::Kind::Constructive);

  // e.f <-> e->f.
  if (Node.kind() == CcExpr::Kind::Member) {
    CcExprPtr Flipped = Node.clone();
    Flipped->IsArrow = !Node.IsArrow;
    Add(std::move(Flipped),
        Node.IsArrow ? "use '.' instead of '->'" : "use '->' instead of '.'",
        CcSuggestion::Kind::Constructive);
  }

  // Call-argument rearrangement, like the Caml catalog.
  if (Node.kind() == CcExpr::Kind::Call && Node.numChildren() >= 3) {
    unsigned NumArgs = Node.numChildren() - 1;
    for (unsigned I = 0; I + 1 < NumArgs; ++I) {
      CcExprPtr Swapped = Node.clone();
      std::swap(Swapped->Children[I + 1], Swapped->Children[I + 2]);
      Add(std::move(Swapped),
          "swap arguments " + std::to_string(I + 1) + " and " +
              std::to_string(I + 2),
          CcSuggestion::Kind::Constructive);
    }
    for (unsigned I = 0; I < NumArgs; ++I) {
      CcExprPtr Fewer = Node.clone();
      Fewer->Children.erase(Fewer->Children.begin() + 1 + I);
      Add(std::move(Fewer),
          "remove argument " + std::to_string(I + 1),
          CcSuggestion::Kind::Constructive);
    }
  }

  // Adaptation and removal via magicFun (Section 4.2). These often fail
  // to deduce -- exactly the paper's point -- and then hoisting below is
  // the fallback.
  {
    std::vector<CcExprPtr> Args;
    Args.push_back(Node.clone());
    Add(ccCallNamed("magicFun", std::move(Args)),
        "the expression type-checks but its context rejects it",
        CcSuggestion::Kind::Adaptation);
  }
  {
    std::vector<CcExprPtr> Args;
    Args.push_back(ccIntLit(0));
    Add(ccCallNamed("magicFun", std::move(Args)), "remove this expression",
        CcSuggestion::Kind::Removal);
  }
}

} // namespace

CcReport cpp::runCppSeminal(CcProgram &Prog, TraceSink *Trace) {
  CcReport Report;
  TraceSpan RunSpan(Trace, SpanKind::CcSearch, "ccsearch.run");

  {
    TraceLayerScope Layer("initial-check");
    TraceSpan Span(Trace, SpanKind::OracleCall, "cc.oracle");
    Report.Baseline = checkProgram(Prog);
    if (Span.enabled()) {
      Span.attr("layer", traceCurrentLayer());
      Span.attr("verdict", Report.Baseline.ok());
      Span.attr("cache_hit", false);
      Span.attr("served_by", "cc-typecheck");
      Span.attr("errors", int64_t(Report.Baseline.Errors.size()));
    }
  }
  size_t Oracle = 1;
  if (Report.Baseline.ok()) {
    Report.OracleCalls = Oracle;
    return Report;
  }

  // Focus on the ordinary function containing the first error.
  Report.TargetFunction = Report.Baseline.Errors.front().InFunction;
  if (RunSpan.enabled())
    RunSpan.attr("target_function", Report.TargetFunction);
  CcFuncDecl *Target = Prog.findFunc(Report.TargetFunction);
  if (!Target) {
    Report.OracleCalls = Oracle;
    return Report;
  }

  std::map<std::string, int> Base = signatureSet(Report.Baseline);

  auto Test = [&]() -> unsigned {
    ++Oracle;
    TraceSpan Span(Trace, SpanKind::OracleCall, "cc.oracle");
    unsigned Fixed = improvement(Base, checkProgram(Prog));
    if (Span.enabled()) {
      Span.attr("layer", traceCurrentLayer());
      Span.attr("verdict", Fixed > 0);
      Span.attr("cache_hit", false);
      Span.attr("served_by", "cc-typecheck");
      Span.attr("errors_fixed", int64_t(Fixed));
    }
    return Fixed;
  };

  // Statement-level changes: removal and hoisting.
  for (size_t I = 0; I < Target->Body.size(); ++I) {
    // Removal: neutralize the statement.
    {
      TraceLayerScope Layer("removal");
      CcStmt Saved = Target->Body[I].clone();
      std::vector<CcExprPtr> Args;
      Args.push_back(ccIntLit(0));
      Target->Body[I] = ccExprStmt(ccCallNamed("magicFunVoid",
                                               std::move(Args)));
      unsigned Fixed = Test();
      if (Fixed > 0) {
        CcSuggestion S;
        S.TheKind = CcSuggestion::Kind::Removal;
        S.Description = "remove this statement";
        S.StmtIndex = int(I);
        S.Before = Saved.str();
        S.After = "(statement removed)";
        S.OriginalSize = Saved.E ? Saved.E->size() : 1;
        S.ErrorsFixed = Fixed;
        Report.Suggestions.push_back(std::move(S));
      }
      Target->Body[I] = std::move(Saved);
    }

    // Hoisting: f(e1, ..., en); => magicFunVoid(e1); ... magicFunVoid(en);
    if (Target->Body[I].TheKind == CcStmt::Kind::Expr &&
        Target->Body[I].E->kind() == CcExpr::Kind::Call &&
        Target->Body[I].E->numChildren() >= 2) {
      TraceLayerScope Layer("hoist");
      std::vector<CcStmt> SavedBody;
      for (const auto &S : Target->Body)
        SavedBody.push_back(S.clone());
      const CcExpr *CallNode = Target->Body[I].E.get();
      std::vector<CcStmt> Hoisted;
      for (unsigned A = 1; A < CallNode->numChildren(); ++A) {
        std::vector<CcExprPtr> Args;
        Args.push_back(CallNode->child(A)->clone());
        Hoisted.push_back(
            ccExprStmt(ccCallNamed("magicFunVoid", std::move(Args))));
      }
      std::string Before = Target->Body[I].str();
      Target->Body.erase(Target->Body.begin() + long(I));
      Target->Body.insert(Target->Body.begin() + long(I),
                          std::make_move_iterator(Hoisted.begin()),
                          std::make_move_iterator(Hoisted.end()));
      unsigned Fixed = Test();
      if (Fixed > 0) {
        CcSuggestion S;
        S.TheKind = CcSuggestion::Kind::Hoist;
        S.Description =
            "the call itself is the problem; its arguments are fine "
            "individually";
        S.StmtIndex = int(I);
        S.Before = Before;
        S.After = "(arguments hoisted to separate statements)";
        S.OriginalSize = 1000; // hoisting is the coarsest change
        S.ErrorsFixed = Fixed;
        Report.Suggestions.push_back(std::move(S));
      }
      Target->Body = std::move(SavedBody);
    }

    // Expression-level edits inside the statement.
    if (!Target->Body[I].E)
      continue;
    std::vector<ExprPath> Paths;
    ExprPath Prefix;
    collectPaths(Target->Body[I].E.get(), Prefix, Paths);
    for (const ExprPath &Path : Paths) {
      CcExpr *Node = resolveExpr(Target->Body[I].E.get(), Path);
      std::vector<ExprEdit> Edits;
      enumerateExprEdits(*Node, Path, Edits);
      for (ExprEdit &Edit : Edits) {
        TraceLayerScope Layer(
            Edit.Kind == CcSuggestion::Kind::Adaptation ? "adaptation"
            : Edit.Kind == CcSuggestion::Kind::Removal  ? "removal"
                                                        : "constructive");
        std::string Before = Node->str();
        std::string After = Edit.Replacement->str();
        unsigned OriginalSize = Node->size();
        CcExprPtr Old = swapAt(Target->Body[I].E, Edit.Path,
                               std::move(Edit.Replacement));
        unsigned Fixed = Test();
        if (Fixed > 0) {
          CcSuggestion S;
          S.TheKind = Edit.Kind;
          S.Description = Edit.Description;
          S.StmtIndex = int(I);
          S.Before = Before;
          S.After = Edit.Kind == CcSuggestion::Kind::Removal
                        ? "[[...]]"
                        : After;
          S.OriginalSize = OriginalSize;
          S.ErrorsFixed = Fixed;
          Report.Suggestions.push_back(std::move(S));
        }
        swapAt(Target->Body[I].E, Edit.Path, std::move(Old));
      }
    }
  }

  // Rank: more errors fixed first; then constructive < adaptation <
  // removal < hoist; then smaller expressions.
  std::stable_sort(Report.Suggestions.begin(), Report.Suggestions.end(),
                   [](const CcSuggestion &A, const CcSuggestion &B) {
                     if (A.ErrorsFixed != B.ErrorsFixed)
                       return A.ErrorsFixed > B.ErrorsFixed;
                     if (A.TheKind != B.TheKind)
                       return int(A.TheKind) < int(B.TheKind);
                     return A.OriginalSize < B.OriginalSize;
                   });
  Report.OracleCalls = Oracle;
  return Report;
}
