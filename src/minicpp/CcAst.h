//===- CcAst.h - Mini-C++ abstract syntax -----------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the mini-C++ language of Section 4. The paper's
/// C++ prototype consumed Eclipse CDT's AST rather than parsing itself;
/// analogously, this reproduction provides a builder API (plus a printer
/// for messages) and concentrates on the type-checker/search interplay,
/// which is where all of Section 4's technical content lives.
///
/// Functions carry explicit types except template functions, whose
/// type parameters are deduced at each call. Structs may declare fields
/// and one generic call operator (an `operator()` whose parameters are
/// untyped and checked per call, exactly template-instantiation
/// semantics) -- enough to express the paper's mini-STL: multiplies,
/// binder1st/bind1st, unary_compose/compose1, pointer_to_unary_function/
/// ptr_fun, and transform.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICPP_CCAST_H
#define SEMINAL_MINICPP_CCAST_H

#include "minicpp/CcTypes.h"

#include <memory>
#include <string>
#include <vector>

namespace seminal {
namespace cpp {

class CcExpr;
using CcExprPtr = std::unique_ptr<CcExpr>;

/// A mini-C++ expression.
class CcExpr {
public:
  enum class Kind {
    IntLit,
    Var,       ///< A variable or function name used as a value.
    Call,      ///< callee(args) -- function, functor, or pointer call.
    Construct, ///< TypeName<targs>(args): build a struct value.
    Member,    ///< obj.name or ptr->name
    Unary,     ///< *e (deref), -e
    Binary,    ///< + - * / < ==
    MethodCall, ///< obj.name(args) -- begin()/end() on vectors.
  };

  explicit CcExpr(Kind K) : TheKind(K) {}
  CcExpr(const CcExpr &) = delete;
  CcExpr &operator=(const CcExpr &) = delete;

  Kind kind() const { return TheKind; }

  long IntValue = 0;
  std::string Name;    ///< Var / Member / MethodCall / Binary op / Unary op.
  bool IsArrow = false; ///< Member: -> vs .
  std::vector<CcExprPtr> Children; ///< Call: [callee, args...];
                                   ///< Construct: args; Member: [obj];
                                   ///< MethodCall: [obj, args...].
  std::string TypeName;            ///< Construct: the struct name.
  std::vector<CcTypePtr> TypeArgs; ///< Construct: explicit <targs>.

  unsigned numChildren() const { return unsigned(Children.size()); }
  CcExpr *child(unsigned I) const { return Children[I].get(); }

  CcExprPtr clone() const;
  std::string str() const;
  unsigned size() const;

private:
  Kind TheKind;
};

CcExprPtr ccIntLit(long Value);
CcExprPtr ccVar(const std::string &Name);
CcExprPtr ccCall(CcExprPtr Callee, std::vector<CcExprPtr> Args);
CcExprPtr ccCallNamed(const std::string &Fn, std::vector<CcExprPtr> Args);
CcExprPtr ccConstruct(const std::string &TypeName,
                      std::vector<CcTypePtr> TypeArgs,
                      std::vector<CcExprPtr> Args);
CcExprPtr ccMember(CcExprPtr Obj, const std::string &Field, bool Arrow);
CcExprPtr ccUnary(const std::string &Op, CcExprPtr Operand);
CcExprPtr ccBinary(const std::string &Op, CcExprPtr Lhs, CcExprPtr Rhs);
CcExprPtr ccMethodCall(CcExprPtr Obj, const std::string &Method,
                       std::vector<CcExprPtr> Args);

/// A statement in a function body.
struct CcStmt {
  enum class Kind {
    VarDecl, ///< Type Name = Init;
    Expr,    ///< Expr;
    Return,  ///< return [Expr];
  };
  Kind TheKind = Kind::Expr;
  CcTypePtr DeclType; ///< VarDecl.
  std::string Name;   ///< VarDecl.
  CcExprPtr E;        ///< Initializer / expression / return value.
  int Line = 0;       ///< Pseudo-line for diagnostics.

  CcStmt clone() const;
  std::string str() const;
};

CcStmt ccVarDecl(CcTypePtr Type, const std::string &Name, CcExprPtr Init);
CcStmt ccExprStmt(CcExprPtr E);
CcStmt ccReturn(CcExprPtr E);

/// A struct declaration: fields plus at most one generic operator().
class CcStructDecl {
public:
  std::string Name;
  std::vector<std::string> TParams; ///< Template parameters; empty for
                                    ///< ordinary structs.
  struct Field {
    std::string Name;
    CcTypePtr Type; ///< May reference TParams.
  };
  std::vector<Field> Fields;

  /// The generic call operator: parameter names (untyped; bound per
  /// call) and a body expression whose type becomes the result.
  bool HasCallOperator = false;
  std::vector<std::string> CallParams;
  CcExprPtr CallBody;
};

/// Renders the struct's declared name ("unary_compose").
std::string structName(const CcStructDecl *Decl);

/// A function declaration. TParams empty means an ordinary function with
/// fully explicit types; otherwise a template function whose parameter
/// types may mention TParams and are deduced per call (Section 4.1).
class CcFuncDecl {
public:
  std::string Name;
  std::vector<std::string> TParams;
  struct Param {
    std::string Name;
    CcTypePtr Type;
  };
  std::vector<Param> Params;
  CcTypePtr RetType;
  std::vector<CcStmt> Body;

  CcFuncDecl clone() const;
};

/// A whole translation unit.
struct CcProgram {
  std::vector<std::unique_ptr<CcStructDecl>> Structs;
  std::vector<std::unique_ptr<CcFuncDecl>> Funcs;

  CcStructDecl *findStruct(const std::string &Name) const;
  CcFuncDecl *findFunc(const std::string &Name) const;
};

/// Renders a function body for messages.
std::string printFunc(const CcFuncDecl &F);

} // namespace cpp
} // namespace seminal

#endif // SEMINAL_MINICPP_CCAST_H
