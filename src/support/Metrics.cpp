//===- Metrics.cpp - Named histogram metrics -------------------------------==//

#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace seminal;

bool Metrics::isHotSeries(const std::string &Name) {
  static constexpr const char Suffix[] = ".latency_us";
  static constexpr size_t SuffixLen = sizeof(Suffix) - 1;
  return Name.size() >= SuffixLen &&
         Name.compare(Name.size() - SuffixLen, SuffixLen, Suffix) == 0;
}

void Metrics::observe(const char *Name, double Value) {
  if (isHotSeries(Name)) {
    LogHistogram *H;
    {
      sync::MutexLock Lock(Mutex);
      auto &Slot = HotSeries[Name];
      if (!Slot)
        Slot = std::make_unique<LogHistogram>();
      H = Slot.get();
    }
    // Latencies are non-negative microseconds; round to the nearest
    // integer and record outside the registry lock (record is lock-free).
    H->record(Value <= 0.0 ? 0 : uint64_t(Value + 0.5));
    return;
  }
  sync::MutexLock Lock(Mutex);
  Series[Name].add(Value);
}

std::vector<std::string> Metrics::names() const {
  sync::MutexLock Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Series.size() + HotSeries.size());
  for (const auto &KV : Series)
    Out.push_back(KV.first);
  for (const auto &KV : HotSeries)
    Out.push_back(KV.first);
  std::sort(Out.begin(), Out.end());
  return Out;
}

MetricSummary Metrics::summary(const std::string &Name) const {
  Samples Copy;
  {
    sync::MutexLock Lock(Mutex);
    auto Hot = HotSeries.find(Name);
    if (Hot != HotSeries.end()) {
      HistogramSummary H = Hot->second->summarize();
      MetricSummary S;
      S.Count = size_t(H.Count);
      S.Min = double(H.Min);
      S.Mean = H.Mean;
      S.P50 = double(H.P50);
      S.P95 = double(H.P95);
      S.Max = double(H.Max);
      return S;
    }
    auto It = Series.find(Name);
    if (It == Series.end())
      return MetricSummary();
    Copy = It->second;
  }
  MetricSummary S;
  S.Count = Copy.size();
  if (S.Count == 0)
    return S;
  S.Min = Copy.min();
  S.Mean = Copy.mean();
  S.P50 = Copy.percentile(0.50);
  S.P95 = Copy.percentile(0.95);
  S.Max = Copy.max();
  return S;
}

std::string Metrics::render() const {
  std::ostringstream OS;
  char Row[160];
  std::snprintf(Row, sizeof(Row), "  %-32s %8s %10s %10s %10s %10s\n",
                "metric", "count", "p50", "p95", "max", "mean");
  OS << Row;
  for (const std::string &Name : names()) {
    MetricSummary S = summary(Name);
    std::snprintf(Row, sizeof(Row),
                  "  %-32s %8zu %10.3f %10.3f %10.3f %10.3f\n", Name.c_str(),
                  S.Count, S.P50, S.P95, S.Max, S.Mean);
    OS << Row;
  }
  return OS.str();
}

void Metrics::writeJson(std::ostream &OS) const {
  OS << "{";
  bool First = true;
  for (const std::string &Name : names()) {
    MetricSummary S = summary(Name);
    if (!First)
      OS << ",";
    First = false;
    char Buf[224];
    std::snprintf(Buf, sizeof(Buf),
                  "\n  \"%s\": {\"count\": %zu, \"min\": %.6g, \"mean\": "
                  "%.6g, \"p50\": %.6g, \"p95\": %.6g, \"max\": %.6g}",
                  Name.c_str(), S.Count, S.Min, S.Mean, S.P50, S.P95, S.Max);
    OS << Buf;
  }
  OS << "\n}";
}

bool Metrics::empty() const {
  sync::MutexLock Lock(Mutex);
  return Series.empty() && HotSeries.empty();
}

void Metrics::clear() {
  sync::MutexLock Lock(Mutex);
  Series.clear();
  HotSeries.clear();
}
