//===- StrUtil.cpp --------------------------------------------------------==//

#include "support/StrUtil.h"

#include <cctype>
#include <sstream>

using namespace seminal;

std::string seminal::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> seminal::split(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Current;
  for (char C : Text) {
    if (C == Sep) {
      Parts.push_back(Current);
      Current.clear();
      continue;
    }
    Current += C;
  }
  Parts.push_back(Current);
  return Parts;
}

std::string seminal::indent(const std::string &Text, unsigned Pad) {
  std::string Prefix(Pad, ' ');
  std::string Result;
  bool AtLineStart = true;
  for (char C : Text) {
    if (AtLineStart && C != '\n')
      Result += Prefix;
    AtLineStart = C == '\n';
    Result += C;
  }
  return Result;
}

std::string seminal::escapeStringLiteral(const std::string &Raw) {
  std::string Result;
  for (char C : Raw) {
    switch (C) {
    case '\\':
      Result += "\\\\";
      break;
    case '"':
      Result += "\\\"";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      Result += C;
    }
  }
  return Result;
}

bool seminal::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string seminal::ellipsize(const std::string &Text, size_t MaxLen) {
  if (Text.size() <= MaxLen)
    return Text;
  if (MaxLen <= 3)
    return Text.substr(0, MaxLen);
  return Text.substr(0, MaxLen - 3) + "...";
}
