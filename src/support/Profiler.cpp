//===- Profiler.cpp - Sampling profiler over trace-span stacks -------------==//

#include "support/Profiler.h"

#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <ctime>

using namespace seminal;
using namespace seminal::prof;

//===----------------------------------------------------------------------===//
// Clocks
//===----------------------------------------------------------------------===//
// The one sanctioned home for raw clock_gettime in src/ (the
// determinism lint allowlists this file): CPU-time clocks have no
// std::chrono spelling, and nothing read here ever flows into search
// results -- profiling is observational by construction.

static uint64_t readClockNs(clockid_t Clock) {
  struct timespec TS;
  if (clock_gettime(Clock, &TS) != 0)
    return 0;
  return uint64_t(TS.tv_sec) * 1000000000ull + uint64_t(TS.tv_nsec);
}

uint64_t prof::threadCpuNs() { return readClockNs(CLOCK_THREAD_CPUTIME_ID); }
uint64_t prof::processCpuNs() { return readClockNs(CLOCK_PROCESS_CPUTIME_ID); }

//===----------------------------------------------------------------------===//
// Per-thread state
//===----------------------------------------------------------------------===//

namespace seminal {
namespace prof {

/// Written by its owning thread on span enter/exit; read by the sampler
/// thread. The contract is single-writer: every non-atomic member is
/// owner-only, and the atomics are safe to read torn-across-counters
/// (one stale sample, never garbage -- frame slots only ever hold null
/// or a string literal that lives forever).
struct ThreadState {
  // Sampled stack mirror. Depth counts *logical* depth and may exceed
  // MaxDepth; only the first MaxDepth frames are stored. Push order is
  // frame store (relaxed) then depth store (release), so a sampler that
  // acquires Depth==d sees every frame below d.
  std::atomic<const char *> Frames[Profiler::MaxDepth] = {};
  std::atomic<uint32_t> Depth{0};
  std::atomic<bool> Live{false};

  // Exact-CPU table: open-addressed, fixed, allocation-free. Keys are
  // claimed once by the owner (release store) and never removed;
  // clear() zeroes only the counters.
  std::atomic<const char *> CpuKey[Profiler::CpuSlots] = {};
  std::atomic<uint64_t> CpuSelfNs[Profiler::CpuSlots] = {};
  std::atomic<uint64_t> CpuEnters[Profiler::CpuSlots] = {};
  std::atomic<uint64_t> OtherSelfNs{0}; ///< Table-overflow catch-all.
  std::atomic<uint64_t> OtherEnters{0};

  // Owner-only CPU stamp stack (the sampler never reads these).
  static constexpr unsigned CpuStackMax = 64;
  static constexpr uint16_t OverflowSlot = 0xFFFF;
  uint16_t CpuStack[CpuStackMax] = {};
  uint32_t CpuDepth = 0;
  uint64_t LastStampNs = 0;
};

} // namespace prof
} // namespace seminal

namespace {

/// Hands the thread's state back to the registry at thread exit.
struct TlsHandle {
  ThreadState *S = nullptr;
  ~TlsHandle() {
    if (S)
      profiler().releaseThreadState(S);
  }
};

thread_local TlsHandle Tls;

unsigned cpuSlotFor(ThreadState &S, const char *Name) {
  size_t H = (reinterpret_cast<uintptr_t>(Name) >> 3) * 0x9E3779B97F4A7C15ull;
  for (unsigned P = 0; P < 16; ++P) {
    unsigned I = unsigned((H + P) % Profiler::CpuSlots);
    const char *K = S.CpuKey[I].load(std::memory_order_relaxed);
    if (K == Name)
      return I;
    if (!K) {
      // Single writer per state: a plain claim is race-free; release
      // publishes the key before any counter the reader pairs with it.
      S.CpuKey[I].store(Name, std::memory_order_release);
      return I;
    }
  }
  return UINT_MAX;
}

void chargeCpu(ThreadState &S, uint16_t Slot, uint64_t Ns) {
  if (Slot == ThreadState::OverflowSlot)
    S.OtherSelfNs.fetch_add(Ns, std::memory_order_relaxed);
  else
    S.CpuSelfNs[Slot].fetch_add(Ns, std::memory_order_relaxed);
}

} // namespace

//===----------------------------------------------------------------------===//
// Span hooks
//===----------------------------------------------------------------------===//
// Token layout (nonzero iff anything was recorded):
//   bit 0      frame pushed
//   bit 1      CPU stamp pushed
//   bits 2-13  frame position (logical depth before the push)
//   bits 14-20 CPU-stack position

std::atomic<bool> prof::detail::Enabled{false};
std::atomic<uint32_t> prof::detail::CpuKindMask{0};

uint32_t Profiler::enterSpan(SpanKind Kind, const char *Name) {
  ThreadState *S = acquireThreadState();
  uint32_t D = S->Depth.load(std::memory_order_relaxed);
  if (D >= 0xFFE)
    return 0; // Beyond token range; skip rather than mis-account.
  if (D < MaxDepth)
    S->Frames[D].store(Name, std::memory_order_relaxed);
  S->Depth.store(D + 1, std::memory_order_release);
  uint32_t Token = 1u | (D << 2);

  uint32_t Mask = detail::CpuKindMask.load(std::memory_order_relaxed);
  if (((Mask >> unsigned(Kind)) & 1u) &&
      S->CpuDepth < ThreadState::CpuStackMax) {
    uint64_t Now = threadCpuNs();
    // Self-time accounting: time since the last stamp belongs to the
    // innermost stamped span that was running until now.
    if (S->CpuDepth > 0)
      chargeCpu(*S, S->CpuStack[S->CpuDepth - 1], Now - S->LastStampNs);
    unsigned Slot = cpuSlotFor(*S, Name);
    uint16_t Enc =
        Slot == UINT_MAX ? ThreadState::OverflowSlot : uint16_t(Slot);
    if (Enc == ThreadState::OverflowSlot)
      S->OtherEnters.fetch_add(1, std::memory_order_relaxed);
    else
      S->CpuEnters[Slot].fetch_add(1, std::memory_order_relaxed);
    Token |= 2u | (S->CpuDepth << 14);
    S->CpuStack[S->CpuDepth++] = Enc;
    S->LastStampNs = Now;
  }
  return Token;
}

void Profiler::exitSpan(uint32_t Token) {
  if (!Token)
    return;
  ThreadState *S = acquireThreadState();
  if (Token & 2u) {
    uint32_t CPos = (Token >> 14) & 0x7Fu;
    // Matched-pop guard: an out-of-order finish() (parent finished
    // before a child) leaves the child to pop itself later instead of
    // corrupting the stack -- mirrors the CurrentSpan rule in Trace.cpp.
    if (S->CpuDepth == CPos + 1) {
      uint64_t Now = threadCpuNs();
      chargeCpu(*S, S->CpuStack[CPos], Now - S->LastStampNs);
      S->CpuDepth = CPos;
      S->LastStampNs = Now;
    }
  }
  if (Token & 1u) {
    uint32_t Pos = (Token >> 2) & 0xFFFu;
    if (S->Depth.load(std::memory_order_relaxed) == Pos + 1)
      S->Depth.store(Pos, std::memory_order_release);
  }
}

uint32_t prof::spanEnter(SpanKind Kind, const char *Name) {
  return profiler().enterSpan(Kind, Name);
}

void prof::spanExit(uint32_t Token) { profiler().exitSpan(Token); }

//===----------------------------------------------------------------------===//
// Registry and sampler
//===----------------------------------------------------------------------===//

Profiler &prof::profiler() {
  // Leaked on purpose: thread_local TlsHandle destructors may run after
  // static destructors, and a destroyed registry under a late-exiting
  // thread would be a use-after-free. The allocation stays reachable
  // through this pointer, so leak checkers stay quiet.
  static Profiler *P = new Profiler();
  return *P;
}

Profiler::Options::Options() : CpuKindMask(defaultCpuKindMask()) {}

uint32_t Profiler::defaultCpuKindMask() {
  auto Bit = [](SpanKind K) { return 1u << unsigned(K); };
  // Phase-level kinds only: these fire a bounded number of times per
  // request. The per-candidate / per-oracle-call leaves fire thousands
  // of times and would pay ~240ns of thread-CPU-clock syscall per
  // stamp; their CPU folds into the enclosing phase instead, and the
  // sampled stacks still resolve them statistically.
  return Bit(SpanKind::Search) | Bit(SpanKind::Localize) |
         Bit(SpanKind::DeclChanges) | Bit(SpanKind::Triage) |
         Bit(SpanKind::TriagePhase) | Bit(SpanKind::PatternFix) |
         Bit(SpanKind::Slice) | Bit(SpanKind::Rank) |
         Bit(SpanKind::CcSearch) | Bit(SpanKind::Other);
}

ThreadState *Profiler::acquireThreadState() {
  if (Tls.S)
    return Tls.S;
  sync::MutexLock Lock(Mutex);
  ThreadState *S;
  if (!FreeStates.empty()) {
    S = FreeStates.back();
    FreeStates.pop_back();
    // The previous owner exited with its stack unwound; counters are
    // cumulative and stay. Reset only the owner-side stack state.
    S->Depth.store(0, std::memory_order_relaxed);
    S->CpuDepth = 0;
    S->LastStampNs = 0;
  } else {
    S = new ThreadState();
    Threads.push_back(S);
  }
  S->Live.store(true, std::memory_order_relaxed);
  Tls.S = S;
  return S;
}

void Profiler::releaseThreadState(ThreadState *State) {
  sync::MutexLock Lock(Mutex);
  State->Live.store(false, std::memory_order_relaxed);
  FreeStates.push_back(State);
}

void Profiler::start(const Options &Opts) {
  sync::MutexLock Lock(Mutex);
  if (detail::Enabled.load(std::memory_order_relaxed))
    return;
  detail::CpuKindMask.store(Opts.CpuKindMask, std::memory_order_relaxed);
  detail::Enabled.store(true, std::memory_order_relaxed);
  Hz = Opts.SampleHz;
  StopRequested = false;
  if (Opts.SampleHz > 0) {
    Sampler = std::thread([this] { samplerMain(); });
    SamplerRunning = true;
  }
}

void Profiler::stop() {
  std::thread ToJoin;
  {
    sync::MutexLock Lock(Mutex);
    detail::Enabled.store(false, std::memory_order_relaxed);
    detail::CpuKindMask.store(0, std::memory_order_relaxed);
    Hz = 0;
    if (!SamplerRunning)
      return;
    StopRequested = true;
    WakeCV.notify_all();
    ToJoin = std::move(Sampler);
    SamplerRunning = false;
  }
  ToJoin.join();
}

bool Profiler::running() const {
  return detail::Enabled.load(std::memory_order_relaxed);
}

unsigned Profiler::sampleHz() const {
  sync::MutexLock Lock(Mutex);
  return Hz;
}

void Profiler::samplerMain() {
  sync::MutexLock Lock(Mutex);
  while (!StopRequested) {
    unsigned LocalHz = std::max(1u, Hz);
    auto Period = std::chrono::nanoseconds(1000000000ull / LocalHz);
    // Timeout = one tick. Re-arming after each sample gives period +
    // sampling time between ticks; sampling cares about statistical
    // coverage, not metronome cadence, so the drift is fine.
    if (WakeCV.wait_for(Mutex, Period) == std::cv_status::timeout &&
        !StopRequested)
      sampleLocked();
  }
}

void Profiler::sampleLocked() {
  std::string Key;
  for (ThreadState *S : Threads) {
    if (!S->Live.load(std::memory_order_relaxed))
      continue;
    uint32_t D = S->Depth.load(std::memory_order_acquire);
    if (D == 0)
      continue; // Idle thread: no sample.
    uint32_t N = std::min(D, MaxDepth);
    Key.clear();
    for (uint32_t I = 0; I < N; ++I) {
      const char *Name = S->Frames[I].load(std::memory_order_relaxed);
      if (!Name)
        continue; // Torn mid-push read; drop the frame, keep the stack.
      if (!Key.empty())
        Key += ';';
      Key += Name;
    }
    if (Key.empty())
      continue;
    if (D > MaxDepth)
      ++Truncated;
    ++Stacks[Key];
    ++Samples;
  }
}

void Profiler::sampleOnce() {
  sync::MutexLock Lock(Mutex);
  sampleLocked();
}

ProfileSnapshot Profiler::snapshot() const {
  sync::MutexLock Lock(Mutex);
  ProfileSnapshot Snap;
  Snap.Stacks = Stacks;
  Snap.Samples = Samples;
  Snap.Truncated = Truncated;
  Snap.Threads = Threads.size();
  for (const ThreadState *S : Threads) {
    for (unsigned I = 0; I < CpuSlots; ++I) {
      const char *K = S->CpuKey[I].load(std::memory_order_acquire);
      if (!K)
        continue;
      CpuEntry &E = Snap.Cpu[K];
      E.SelfNs += S->CpuSelfNs[I].load(std::memory_order_relaxed);
      E.Enters += S->CpuEnters[I].load(std::memory_order_relaxed);
    }
    uint64_t ONs = S->OtherSelfNs.load(std::memory_order_relaxed);
    uint64_t OEn = S->OtherEnters.load(std::memory_order_relaxed);
    if (ONs || OEn) {
      CpuEntry &E = Snap.Cpu["(other)"];
      E.SelfNs += ONs;
      E.Enters += OEn;
    }
  }
  return Snap;
}

ProfileSnapshot Profiler::captureDelta(unsigned Ms,
                                       const std::atomic<bool> *Abort) const {
  ProfileSnapshot Before = snapshot();
  auto End = std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  while (std::chrono::steady_clock::now() < End) {
    if (Abort && Abort->load(std::memory_order_relaxed))
      break;
    auto Left = End - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            Left, std::chrono::milliseconds(50)));
  }
  return snapshot().deltaFrom(Before);
}

void Profiler::clear() {
  sync::MutexLock Lock(Mutex);
  Stacks.clear();
  Samples = 0;
  Truncated = 0;
  for (ThreadState *S : Threads) {
    // Counters only: keys may be mid-probe on their owner thread, and
    // the owner-only stack fields are not ours to touch.
    for (unsigned I = 0; I < CpuSlots; ++I) {
      S->CpuSelfNs[I].store(0, std::memory_order_relaxed);
      S->CpuEnters[I].store(0, std::memory_order_relaxed);
    }
    S->OtherSelfNs.store(0, std::memory_order_relaxed);
    S->OtherEnters.store(0, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Snapshots and exporters
//===----------------------------------------------------------------------===//

static uint64_t satSub(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

ProfileSnapshot ProfileSnapshot::deltaFrom(const ProfileSnapshot &Prev) const {
  ProfileSnapshot D;
  for (const auto &[K, V] : Stacks) {
    auto It = Prev.Stacks.find(K);
    uint64_t Base = It == Prev.Stacks.end() ? 0 : It->second;
    if (uint64_t N = satSub(V, Base))
      D.Stacks[K] = N;
  }
  for (const auto &[K, E] : Cpu) {
    CpuEntry Base;
    auto It = Prev.Cpu.find(K);
    if (It != Prev.Cpu.end())
      Base = It->second;
    CpuEntry Out{satSub(E.SelfNs, Base.SelfNs), satSub(E.Enters, Base.Enters)};
    if (Out.SelfNs || Out.Enters)
      D.Cpu[K] = Out;
  }
  D.Samples = satSub(Samples, Prev.Samples);
  D.Truncated = satSub(Truncated, Prev.Truncated);
  D.Threads = Threads;
  return D;
}

void ProfileSnapshot::writeCollapsed(std::ostream &OS) const {
  for (const auto &[K, V] : Stacks)
    OS << K << ' ' << V << '\n';
}

void ProfileSnapshot::writeJson(std::ostream &OS) const {
  OS << "{\"samples\":" << Samples << ",\"truncated\":" << Truncated
     << ",\"threads\":" << Threads << ",\"stacks\":[";
  bool First = true;
  for (const auto &[K, V] : Stacks) {
    OS << (First ? "" : ",") << "{\"stack\":\"" << jsonEscape(K)
       << "\",\"count\":" << V << '}';
    First = false;
  }
  OS << "],\"cpu_self\":[";
  First = true;
  for (const auto &[K, E] : Cpu) {
    OS << (First ? "" : ",") << "{\"name\":\"" << jsonEscape(K)
       << "\",\"self_ns\":" << E.SelfNs << ",\"enters\":" << E.Enters << '}';
    First = false;
  }
  OS << "]}";
}
