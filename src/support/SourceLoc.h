//===- SourceLoc.h - Source locations and spans -----------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source positions used by every front end in this project.
/// A SourceLoc is a (line, column, byte offset) triple; a SourceSpan is a
/// half-open byte range with the location of its first character retained
/// for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_SOURCELOC_H
#define SEMINAL_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace seminal {

/// A position in a source buffer. Lines and columns are 1-based; Offset is
/// the 0-based byte offset. A default-constructed SourceLoc is "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;
  uint32_t Offset = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col, uint32_t Offset)
      : Line(Line), Col(Col), Offset(Offset) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const {
    return Line == Other.Line && Col == Other.Col && Offset == Other.Offset;
  }
  bool operator!=(const SourceLoc &Other) const { return !(*this == Other); }
  bool operator<(const SourceLoc &Other) const {
    return Offset < Other.Offset;
  }

  /// Renders as "line L, column C" (or "<unknown>" when invalid).
  std::string str() const;
};

/// A half-open byte range [Begin.Offset, EndOffset) in a source buffer.
struct SourceSpan {
  SourceLoc Begin;
  uint32_t EndOffset = 0;

  SourceSpan() = default;
  SourceSpan(SourceLoc Begin, uint32_t EndOffset)
      : Begin(Begin), EndOffset(EndOffset) {}

  bool isValid() const { return Begin.isValid(); }
  uint32_t size() const {
    return EndOffset >= Begin.Offset ? EndOffset - Begin.Offset : 0;
  }

  /// \returns true if \p Offset falls inside this span.
  bool contains(uint32_t Offset) const {
    return Offset >= Begin.Offset && Offset < EndOffset;
  }

  /// \returns true if the two spans share at least one byte.
  bool overlaps(const SourceSpan &Other) const {
    return Begin.Offset < Other.EndOffset && Other.Begin.Offset < EndOffset;
  }

  /// \returns true if \p Other lies entirely within this span.
  bool encloses(const SourceSpan &Other) const {
    return Begin.Offset <= Other.Begin.Offset && Other.EndOffset <= EndOffset;
  }

  /// Smallest span covering both inputs.
  static SourceSpan merge(const SourceSpan &A, const SourceSpan &B);

  std::string str() const;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_SOURCELOC_H
