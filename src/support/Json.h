//===- Json.h - Minimal JSON document parser --------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader for the server protocol
/// (src/server). The tree writes JSON in several places (Trace exporters,
/// RunReport, the bench snapshots) but until the daemon nothing needed to
/// *read* it. This is a strict RFC 8259 parser into a tiny DOM; numbers
/// are kept as doubles (the protocol's integers are small), object keys
/// preserve last-wins semantics on duplicates, and errors carry a byte
/// offset so the server can echo a useful diagnostic for a malformed
/// request line without killing the connection.
///
/// Writing stays with the existing helpers (seminal::jsonEscape in
/// support/Trace.h); this header adds only what reading needs.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_JSON_H
#define SEMINAL_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace seminal {
namespace json {

/// One parsed JSON value. A tagged union kept deliberately simple:
/// vectors/maps of whole Values, no allocator tricks -- protocol
/// requests are a few hundred bytes plus one program source string.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : TheKind(Kind::Null) {}
  static Value makeBool(bool B);
  static Value makeNumber(double N);
  static Value makeString(std::string S);
  static Value makeArray(std::vector<Value> Elems);
  static Value makeObject(std::map<std::string, Value> Members);

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool boolValue() const { return Bool; }
  double numberValue() const { return Number; }
  const std::string &stringValue() const { return Str; }
  const std::vector<Value> &arrayValue() const { return Elems; }
  const std::map<std::string, Value> &objectValue() const { return Members; }

  /// Object member lookup; null when absent or not an object.
  const Value *member(const std::string &Key) const;

  // Typed accessors with defaults, for protocol fields ------------------
  /// The member's string value, or \p Default when absent / wrong type.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  /// The member's numeric value truncated to int64, or \p Default.
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

private:
  Kind TheKind;
  bool Bool = false;
  double Number = 0.0;
  std::string Str;
  std::vector<Value> Elems;
  std::map<std::string, Value> Members;
};

/// Outcome of a parse: a value, or an error message with the byte
/// offset it was detected at.
struct ParseResult {
  std::optional<Value> Doc;
  std::string Error;
  size_t ErrorOffset = 0;

  bool ok() const { return Doc.has_value(); }
};

/// Parses exactly one JSON document from \p Text (leading/trailing
/// whitespace allowed, anything else after the document is an error).
ParseResult parse(const std::string &Text);

} // namespace json
} // namespace seminal

#endif // SEMINAL_SUPPORT_JSON_H
