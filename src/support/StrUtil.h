//===- StrUtil.h - Small string helpers -------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the pretty-printers and the diagnostics
/// renderers: join, split, indent, and escaping of string literals.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_STRUTIL_H
#define SEMINAL_SUPPORT_STRUTIL_H

#include <string>
#include <vector>

namespace seminal {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Splits \p Text at every occurrence of \p Sep (no empty-trailing removal).
std::vector<std::string> split(const std::string &Text, char Sep);

/// Prefixes every line of \p Text with \p Pad spaces.
std::string indent(const std::string &Text, unsigned Pad);

/// Escapes backslashes, quotes, and control characters for a string literal.
std::string escapeStringLiteral(const std::string &Raw);

/// \returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Truncates \p Text to at most \p MaxLen characters, appending "..." when
/// truncation happens. Used to keep error-message contexts readable.
std::string ellipsize(const std::string &Text, size_t MaxLen);

} // namespace seminal

#endif // SEMINAL_SUPPORT_STRUTIL_H
