//===- Sync.h - Annotated synchronization primitives ------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree's one home for synchronization primitives (DESIGN.md section
/// 15). Every mutex and condition variable in src/ is a seminal::sync
/// type; raw std::mutex/std::condition_variable outside this header is a
/// lint error (scripts/check_invariants.py). The wrappers buy two
/// machine-checked guarantees on top of bare std types:
///
///   * **Compile-time lock discipline.** Mutex/SharedMutex are Clang
///     Thread Safety Analysis capabilities; members annotated
///     SEMINAL_GUARDED_BY(M) can only be touched while M is held, and
///     functions can publish REQUIRES/ACQUIRE/RELEASE/EXCLUDES
///     contracts. A clang build with -Wthread-safety -Wthread-safety-beta
///     (CMake: -DSEMINAL_THREAD_SAFETY=ON) proves the discipline over
///     the whole tree; under gcc the attributes compile away and the
///     wrappers are exactly as cheap as the std types they hold.
///
///   * **Runtime deadlock prevention by lock ranking.** Every Mutex
///     carries a LockRank; in checked builds (SEMINAL_SYNC_RANK_CHECKS,
///     on by default outside Release) each thread tracks its held-lock
///     stack and aborts the moment any acquisition is not
///     strictly-rank-increasing -- i.e. on any *potential* deadlock
///     cycle, not just an interleaving that actually deadlocked the way
///     TSan requires. The report names the offending pair and the full
///     held set (see sync_detail::checkRank).
///
/// Escape-hatch policy: SEMINAL_NO_THREAD_SAFETY_ANALYSIS is reserved
/// for functions whose locking is deliberately conditional or external
/// (none in the tree today); every use must cite the invariant it hides
/// in a comment and be listed in DESIGN.md section 15. Prefer
/// restructuring (explicit wait loops, REQUIRES'd helpers) first.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_SYNC_H
#define SEMINAL_SUPPORT_SYNC_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

//===----------------------------------------------------------------------===//
// Clang Thread Safety Analysis attribute set
//===----------------------------------------------------------------------===//
// Standard TSA macro spellings (one name per clang attribute). Under any
// compiler without the attributes they expand to nothing, so headers
// using them stay portable.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SEMINAL_TSA(x) __attribute__((x))
#endif
#endif
#ifndef SEMINAL_TSA
#define SEMINAL_TSA(x)
#endif

/// Marks a class as a TSA capability ("mutex", "shared_mutex", "role").
#define SEMINAL_CAPABILITY(x) SEMINAL_TSA(capability(x))
/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SEMINAL_SCOPED_CAPABILITY SEMINAL_TSA(scoped_lockable)
/// Member may only be read or written while holding the capability.
#define SEMINAL_GUARDED_BY(x) SEMINAL_TSA(guarded_by(x))
/// Pointee (not the pointer) is protected by the capability.
#define SEMINAL_PT_GUARDED_BY(x) SEMINAL_TSA(pt_guarded_by(x))
/// Caller must hold the capability (exclusively) on entry and exit.
#define SEMINAL_REQUIRES(...) SEMINAL_TSA(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared.
#define SEMINAL_REQUIRES_SHARED(...)                                         \
  SEMINAL_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability; caller must not already hold it.
#define SEMINAL_ACQUIRE(...) SEMINAL_TSA(acquire_capability(__VA_ARGS__))
#define SEMINAL_ACQUIRE_SHARED(...)                                          \
  SEMINAL_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability; caller must hold it on entry.
#define SEMINAL_RELEASE(...) SEMINAL_TSA(release_capability(__VA_ARGS__))
#define SEMINAL_RELEASE_SHARED(...)                                          \
  SEMINAL_TSA(release_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (anti-aliasing / deadlock guard).
#define SEMINAL_EXCLUDES(...) SEMINAL_TSA(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define SEMINAL_RETURN_CAPABILITY(x) SEMINAL_TSA(lock_returned(x))
/// Documented escape hatch -- see the policy in the file comment.
#define SEMINAL_NO_THREAD_SAFETY_ANALYSIS                                    \
  SEMINAL_TSA(no_thread_safety_analysis)

//===----------------------------------------------------------------------===//
// Lock-rank runtime checker
//===----------------------------------------------------------------------===//
// Compiled in unless the build defines SEMINAL_SYNC_RANK_CHECKS=0
// (CMake does for Release builds: sync types then compile to bare std
// types plus two inert const members). When compiled in, checking is on
// by default and can be toggled at runtime (tests exercising the
// checker's own behavior use the setter).

#ifndef SEMINAL_SYNC_RANK_CHECKS
#define SEMINAL_SYNC_RANK_CHECKS 1
#endif

namespace seminal {
namespace sync {

/// The global acquisition order (DESIGN.md section 15 holds the full
/// table with every mutex instance in the tree). A thread may only
/// acquire a mutex whose rank is *strictly greater* than every rank it
/// already holds; two mutexes that must nest therefore need distinct
/// ranks, and two mutexes sharing a rank may never be held together.
/// Low rank = outermost. Gaps are deliberate room for future layers.
enum class LockRank : uint16_t {
  ServerConn = 10,    ///< UnixSocketServer connection registry.
  ServerEngine = 20,  ///< ServerEngine session table + stats rollup.
  ServerWrite = 30,   ///< Per-connection / per-stream reply writers.
  ThreadPool = 40,    ///< support/ThreadPool queues and job state.
  Telemetry = 50,     ///< obs/TelemetrySink outcome records.
  SlowTraceRing = 55, ///< obs/SlowTraceRing file ring (holds its lock
                      ///< while exporting through a TraceSink: must
                      ///< stay below Trace).
  Metrics = 60,       ///< support/Metrics series registry.
  Profiler = 65,      ///< support/Profiler thread registry + aggregates
                      ///< (sampler thread holds it while folding; span
                      ///< hooks take it only on first-use registration).
  Trace = 70,         ///< support/TraceSink event stream.
  OpsRegistry = 80,   ///< obs/OpsRegistry instrument families.
  Log = 90,           ///< obs/Logger output stream (loggable from under
                      ///< almost anything).
  Leaf = 100,         ///< Ad-hoc leaf locks (tests, one-shot waiters);
                      ///< nothing may be acquired under one.
};

namespace sync_detail {

#if SEMINAL_SYNC_RANK_CHECKS
/// Aborts (after printing both lock sets to stderr) if acquiring a lock
/// of rank \p Rank would violate the strict-increase discipline on this
/// thread, including re-acquiring \p Addr itself in any mode.
void checkRank(const void *Addr, uint16_t Rank, const char *Name);
/// Pushes the lock onto the calling thread's held stack.
void pushHeld(const void *Addr, uint16_t Rank, const char *Name);
/// Removes the lock from the calling thread's held stack (tolerates a
/// lock acquired while checking was disabled).
void popHeld(const void *Addr);
#else
inline void checkRank(const void *, uint16_t, const char *) {}
inline void pushHeld(const void *, uint16_t, const char *) {}
inline void popHeld(const void *) {}
#endif

} // namespace sync_detail

/// Runtime toggle for the rank checker (no-op when compiled out).
/// Returns the previous setting. Checking defaults to on; the daemon
/// and tests may flip it, e.g. to prove the checker itself fires.
bool setRankChecksEnabled(bool Enabled);
bool rankChecksEnabled();

//===----------------------------------------------------------------------===//
// Mutex / SharedMutex / CondVar
//===----------------------------------------------------------------------===//

/// An annotated, ranked std::mutex. Prefer the MutexLock RAII guard;
/// the raw lock()/unlock() surface exists for the guard and for
/// CondVar's BasicLockable requirement.
class SEMINAL_CAPABILITY("mutex") Mutex {
public:
  explicit Mutex(LockRank Rank = LockRank::Leaf, const char *Name = "mutex")
      : Rank(uint16_t(Rank)), Name(Name) {}
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() SEMINAL_ACQUIRE() {
    sync_detail::checkRank(this, Rank, Name);
    M.lock();
    sync_detail::pushHeld(this, Rank, Name);
  }
  void unlock() SEMINAL_RELEASE() {
    sync_detail::popHeld(this);
    M.unlock();
  }

  const char *name() const { return Name; }
  uint16_t rank() const { return Rank; }

private:
  std::mutex M;
  const uint16_t Rank;
  const char *const Name;
};

/// An annotated, ranked std::shared_mutex. Shared (reader) acquisitions
/// obey the same rank discipline as exclusive ones, and upgrading --
/// acquiring exclusively while already holding shared -- is reported as
/// the self-deadlock it is.
class SEMINAL_CAPABILITY("shared_mutex") SharedMutex {
public:
  explicit SharedMutex(LockRank Rank = LockRank::Leaf,
                       const char *Name = "shared_mutex")
      : Rank(uint16_t(Rank)), Name(Name) {}
  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() SEMINAL_ACQUIRE() {
    sync_detail::checkRank(this, Rank, Name);
    M.lock();
    sync_detail::pushHeld(this, Rank, Name);
  }
  void unlock() SEMINAL_RELEASE() {
    sync_detail::popHeld(this);
    M.unlock();
  }
  void lock_shared() SEMINAL_ACQUIRE_SHARED() {
    sync_detail::checkRank(this, Rank, Name);
    M.lock_shared();
    sync_detail::pushHeld(this, Rank, Name);
  }
  void unlock_shared() SEMINAL_RELEASE_SHARED() {
    sync_detail::popHeld(this);
    M.unlock_shared();
  }

  const char *name() const { return Name; }
  uint16_t rank() const { return Rank; }

private:
  std::shared_mutex M;
  const uint16_t Rank;
  const char *const Name;
};

/// RAII exclusive lock. Relockable: unlock()/lock() support the
/// drop-the-lock-around-work pattern (ThreadPool::workerMain) with the
/// scoped state still tracked by TSA.
class SEMINAL_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) SEMINAL_ACQUIRE(M) : M(M), Held(true) {
    M.lock();
  }
  ~MutexLock() SEMINAL_RELEASE() {
    if (Held)
      M.unlock();
  }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  void unlock() SEMINAL_RELEASE() {
    M.unlock();
    Held = false;
  }
  void lock() SEMINAL_ACQUIRE() {
    M.lock();
    Held = true;
  }

private:
  Mutex &M;
  bool Held;
};

/// RAII shared (reader) lock on a SharedMutex.
class SEMINAL_SCOPED_CAPABILITY ReaderLock {
public:
  explicit ReaderLock(SharedMutex &M) SEMINAL_ACQUIRE_SHARED(M)
      : M(M), Held(true) {
    M.lock_shared();
  }
  ~ReaderLock() SEMINAL_RELEASE() {
    if (Held)
      M.unlock_shared();
  }
  ReaderLock(const ReaderLock &) = delete;
  ReaderLock &operator=(const ReaderLock &) = delete;

  void unlock() SEMINAL_RELEASE() {
    M.unlock_shared();
    Held = false;
  }

private:
  SharedMutex &M;
  bool Held;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SEMINAL_SCOPED_CAPABILITY WriterLock {
public:
  explicit WriterLock(SharedMutex &M) SEMINAL_ACQUIRE(M) : M(M), Held(true) {
    M.lock();
  }
  ~WriterLock() SEMINAL_RELEASE() {
    if (Held)
      M.unlock();
  }
  WriterLock(const WriterLock &) = delete;
  WriterLock &operator=(const WriterLock &) = delete;

  void unlock() SEMINAL_RELEASE() {
    M.unlock();
    Held = false;
  }

private:
  SharedMutex &M;
  bool Held;
};

/// Condition variable bound to sync::Mutex. wait() releases and
/// re-acquires through the Mutex wrapper, so the rank checker sees the
/// re-acquisition (waiting while holding a higher-ranked lock aborts,
/// exactly like any other inversion). No predicate overload on purpose:
/// TSA cannot see that a predicate lambda runs under the lock, so
/// callers write explicit `while (!cond) CV.wait(M);` loops, which the
/// analysis proves access guarded state correctly.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases \p M and blocks; re-acquires before returning.
  /// Spurious wakeups happen: always wait in a predicate loop.
  void wait(Mutex &M) SEMINAL_REQUIRES(M) { CV.wait(M); }

  /// Timed wait (same contract; periodic threads like the profiler's
  /// sampler wake on the earlier of notify and deadline). Returns
  /// std::cv_status::timeout when the duration elapsed.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex &M,
                          const std::chrono::duration<Rep, Period> &D)
      SEMINAL_REQUIRES(M) {
    return CV.wait_for(M, D);
  }

  void notify_one() { CV.notify_one(); }
  void notify_all() { CV.notify_all(); }

private:
  /// _any: waits on the annotated wrapper (a BasicLockable), keeping
  /// rank bookkeeping and TSA state consistent across the wait.
  std::condition_variable_any CV;
};

} // namespace sync
} // namespace seminal

#endif // SEMINAL_SUPPORT_SYNC_H
