//===- Rng.h - Deterministic random-number helper ---------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded pseudo-random source used by the synthetic corpus generator.
/// Everything in the evaluation pipeline is deterministic given the seed, so
/// every figure in EXPERIMENTS.md is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_RNG_H
#define SEMINAL_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace seminal {

/// Thin deterministic wrapper around std::mt19937_64.
class Rng {
public:
  explicit Rng(uint64_t Seed) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Engine);
  }

  /// Uniform real in [0, 1).
  double unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(Engine);
  }

  /// Bernoulli trial with probability \p P of returning true.
  bool chance(double P) { return unit() < P; }

  /// Geometric count >= 1 with continuation probability \p P (P in [0,1)).
  /// Used for heavy-tailed retry-run lengths (Figure 6).
  int geometric(double P) {
    int N = 1;
    while (chance(P) && N < 1 << 12)
      ++N;
    return N;
  }

  /// Uniformly chosen element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[static_cast<size_t>(range(0, int64_t(Items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[size_t(range(0, int64_t(I) - 1))]);
  }

  /// Derives an independent child generator; lets corpus components draw
  /// without perturbing each other's streams.
  Rng fork() { return Rng(Engine()); }

private:
  std::mt19937_64 Engine;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_RNG_H
