//===- Stats.cpp ----------------------------------------------------------==//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

using namespace seminal;

AccelCounters &AccelCounters::operator+=(const AccelCounters &Other) {
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  FullInferences += Other.FullInferences;
  IncrementalInferences += Other.IncrementalInferences;
  DeclInferencesSaved += Other.DeclInferencesSaved;
  CheckpointSeeds += Other.CheckpointSeeds;
  CheckpointFallbacks += Other.CheckpointFallbacks;
  BatchesDispatched += Other.BatchesDispatched;
  BatchItems += Other.BatchItems;
  TypesAllocated += Other.TypesAllocated;
  WaveCollapsed += Other.WaveCollapsed;
  SessionPrefixHits += Other.SessionPrefixHits;
  SessionVerdictReuses += Other.SessionVerdictReuses;
  SessionSeedAdoptions += Other.SessionSeedAdoptions;
  SessionConvMemoHits += Other.SessionConvMemoHits;
  // Arena occupancy is a gauge, not a counter: the arena is shared across
  // everything that accumulates into this object, so take the max rather
  // than double-counting the same nodes.
  ArenaNodes = std::max(ArenaNodes, Other.ArenaNodes);
  ArenaHits = std::max(ArenaHits, Other.ArenaHits);
  ArenaBytes = std::max(ArenaBytes, Other.ArenaBytes);
  return *this;
}

std::string AccelCounters::render() const {
  std::ostringstream OS;
  uint64_t Lookups = CacheHits + CacheMisses;
  OS << "  verdict cache: " << CacheHits << " hits / " << CacheMisses
     << " misses";
  if (Lookups)
    OS << " (" << (100 * CacheHits / Lookups) << "% hit rate)";
  OS << "\n  inference: " << FullInferences << " full + "
     << IncrementalInferences << " incremental runs, "
     << DeclInferencesSaved << " prefix decl re-checks saved\n"
     << "  checkpoints: " << CheckpointSeeds << " seeded, "
     << CheckpointFallbacks << " fallbacks to full inference\n"
     << "  batches: " << BatchesDispatched << " dispatched carrying "
     << BatchItems << " candidates, " << WaveCollapsed
     << " wave-collapsed overlays\n"
     << "  arena: " << ArenaNodes << " nodes, " << ArenaHits << " hits, "
     << ArenaBytes << " bytes\n"
     << "  type allocations: " << TypesAllocated << "\n";
  if (SessionPrefixHits || SessionVerdictReuses || SessionSeedAdoptions ||
      SessionConvMemoHits)
    OS << "  session reuse: " << SessionPrefixHits << " prefix probes, "
       << SessionVerdictReuses << " retained verdicts, "
       << SessionSeedAdoptions << " seed adoptions, " << SessionConvMemoHits
       << " conventional-error memos\n";
  return OS.str();
}

void Samples::ensureSorted() {
  if (Sorted)
    return;
  std::sort(Values.begin(), Values.end());
  Sorted = true;
}

double Samples::min() {
  assert(!Values.empty() && "min of empty sample set");
  ensureSorted();
  return Values.front();
}

double Samples::max() {
  assert(!Values.empty() && "max of empty sample set");
  ensureSorted();
  return Values.back();
}

double Samples::mean() const {
  assert(!Values.empty() && "mean of empty sample set");
  return std::accumulate(Values.begin(), Values.end(), 0.0) /
         double(Values.size());
}

double Samples::percentile(double Q) {
  assert(!Values.empty() && "percentile of empty sample set");
  assert(Q >= 0.0 && Q <= 1.0 && "percentile out of range");
  ensureSorted();
  if (Values.size() == 1)
    return Values.front();
  double Rank = Q * double(Values.size() - 1);
  size_t Lo = size_t(Rank);
  size_t Hi = Lo + 1 < Values.size() ? Lo + 1 : Lo;
  double Frac = Rank - double(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double Samples::fractionBelow(double Threshold) {
  if (Values.empty())
    return 0.0;
  ensureSorted();
  auto It = std::upper_bound(Values.begin(), Values.end(), Threshold);
  return double(It - Values.begin()) / double(Values.size());
}

std::vector<std::pair<double, double>> Samples::cdf(size_t Points) {
  std::vector<std::pair<double, double>> Result;
  if (Values.empty() || Points == 0)
    return Result;
  ensureSorted();
  for (size_t I = 0; I < Points; ++I) {
    double Q = Points == 1 ? 1.0 : double(I) / double(Points - 1);
    Result.emplace_back(percentile(Q), Q);
  }
  return Result;
}

uint64_t Histogram::count(int64_t Key) const {
  auto It = Counts.find(Key);
  return It == Counts.end() ? 0 : It->second;
}

uint64_t Histogram::total() const {
  uint64_t Sum = 0;
  for (const auto &KV : Counts)
    Sum += KV.second;
  return Sum;
}

std::string Histogram::renderLogScale(const std::string &KeyHeader,
                                      const std::string &CountHeader) const {
  std::ostringstream OS;
  OS << KeyHeader << "  " << CountHeader << "  (bar ~ log10 count)\n";
  for (const auto &KV : Counts) {
    OS << "  ";
    std::string Key = std::to_string(KV.first);
    OS << Key;
    for (size_t I = Key.size(); I < 8; ++I)
      OS << ' ';
    std::string Count = std::to_string(KV.second);
    OS << Count;
    for (size_t I = Count.size(); I < 8; ++I)
      OS << ' ';
    int Bar = KV.second == 0
                  ? 0
                  : 1 + int(std::floor(std::log10(double(KV.second)) * 10));
    for (int I = 0; I < Bar; ++I)
      OS << '#';
    OS << '\n';
  }
  return OS.str();
}
