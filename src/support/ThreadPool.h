//===- ThreadPool.h - Minimal fixed-size worker pool ------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a single entry point: parallelFor
/// over an index range. The batched oracle (core/CheckpointedOracle.h)
/// uses it to evaluate independent candidate programs concurrently; each
/// callback receives its worker index so callers can keep per-worker
/// state (one inference checkpoint per worker) without locking.
///
/// Determinism note: items are claimed dynamically, so *completion* order
/// varies between runs, but results are written to per-index slots and
/// consumed in index order -- scheduling never leaks into output order.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_THREADPOOL_H
#define SEMINAL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seminal {

/// Fixed-size pool of worker threads, created once and reused across
/// parallelFor calls (spawning threads per oracle batch would dominate
/// the millisecond-scale batches the searcher issues).
class ThreadPool {
public:
  /// \p Threads workers; 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return unsigned(Workers.size()); }

  /// Invokes Fn(WorkerIndex, ItemIndex) for every ItemIndex in
  /// [0, NumItems), distributing items over the workers; blocks until all
  /// items complete. WorkerIndex is in [0, numThreads()). Not reentrant
  /// and not thread-safe: one parallelFor at a time.
  void parallelFor(size_t NumItems,
                   const std::function<void(unsigned, size_t)> &Fn);

private:
  void workerMain(unsigned WorkerIndex);

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  const std::function<void(unsigned, size_t)> *Job = nullptr;
  size_t JobSize = 0;
  size_t NextItem = 0;
  size_t ItemsLeft = 0;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_THREADPOOL_H
