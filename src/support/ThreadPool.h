//===- ThreadPool.h - Minimal fixed-size worker pool ------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with two entry points:
///
///   * parallelFor over an index range -- the batched oracle
///     (core/CheckpointedOracle.h) uses it to evaluate independent
///     candidate programs concurrently; each callback receives its worker
///     index so callers can keep per-worker state (one inference
///     checkpoint per worker) without locking.
///   * post(Shard, Task) -- a per-worker FIFO task queue. The search
///     daemon (src/server) pins every session to one shard, so all
///     requests touching a session's warm caches execute on the same
///     worker in submission order: session state needs no locks, and
///     concurrent clients on different shards never contend on each
///     other's caches.
///
/// Determinism note: parallelFor items are claimed dynamically, so
/// *completion* order varies between runs, but results are written to
/// per-index slots and consumed in index order -- scheduling never leaks
/// into output order. Posted tasks are FIFO per shard; ordering across
/// shards is unspecified (by design -- shards are independent).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_THREADPOOL_H
#define SEMINAL_SUPPORT_THREADPOOL_H

#include "support/Sync.h"

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

namespace seminal {

/// Fixed-size pool of worker threads, created once and reused across
/// parallelFor calls (spawning threads per oracle batch would dominate
/// the millisecond-scale batches the searcher issues).
class ThreadPool {
public:
  /// \p Threads workers; 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return unsigned(Workers.size()); }

  /// Invokes Fn(WorkerIndex, ItemIndex) for every ItemIndex in
  /// [0, NumItems), distributing items over the workers; blocks until all
  /// items complete. WorkerIndex is in [0, numThreads()). Not reentrant
  /// and not thread-safe: one parallelFor at a time.
  void parallelFor(size_t NumItems,
                   const std::function<void(unsigned, size_t)> &Fn);

  /// Enqueues \p Task on the FIFO queue of worker Shard % numThreads()
  /// and returns immediately. Tasks posted to the same shard run on the
  /// same worker thread in submission order; tasks on different shards
  /// run concurrently. Thread-safe (any thread may post, including a
  /// worker posting to another shard -- posting to its *own* shard from
  /// inside a task is allowed too, the task just runs later). Posted
  /// tasks and parallelFor items share the workers; a long-running
  /// posted task delays parallelFor progress on that worker.
  void post(size_t Shard, std::function<void()> Task);

  /// Blocks until every task posted so far has finished executing.
  /// Tasks posted concurrently with the drain may or may not be waited
  /// for. Must not be called from inside a posted task (it would wait
  /// for itself).
  void drainPosted();

private:
  void workerMain(unsigned WorkerIndex);

  /// Immutable after construction (joined in the destructor only).
  std::vector<std::thread> Workers;

  sync::Mutex Mutex{sync::LockRank::ThreadPool, "threadpool"};
  sync::CondVar WorkReady;
  sync::CondVar WorkDone;
  const std::function<void(unsigned, size_t)> *Job
      SEMINAL_GUARDED_BY(Mutex) = nullptr;
  size_t JobSize SEMINAL_GUARDED_BY(Mutex) = 0;
  size_t NextItem SEMINAL_GUARDED_BY(Mutex) = 0;
  size_t ItemsLeft SEMINAL_GUARDED_BY(Mutex) = 0;
  uint64_t Generation SEMINAL_GUARDED_BY(Mutex) = 0;
  bool ShuttingDown SEMINAL_GUARDED_BY(Mutex) = false;

  /// One FIFO per worker. PostedPending counts tasks accepted but not
  /// yet finished (queued + running), so drainPosted waits for
  /// completion, not merely dequeueing.
  std::vector<std::deque<std::function<void()>>> Queues
      SEMINAL_GUARDED_BY(Mutex);
  size_t PostedPending SEMINAL_GUARDED_BY(Mutex) = 0;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_THREADPOOL_H
