//===- Json.cpp - Minimal JSON document parser ------------------------------==//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace seminal;
using namespace seminal::json;

Value Value::makeBool(bool B) {
  Value V;
  V.TheKind = Kind::Bool;
  V.Bool = B;
  return V;
}

Value Value::makeNumber(double N) {
  Value V;
  V.TheKind = Kind::Number;
  V.Number = N;
  return V;
}

Value Value::makeString(std::string S) {
  Value V;
  V.TheKind = Kind::String;
  V.Str = std::move(S);
  return V;
}

Value Value::makeArray(std::vector<Value> Elems) {
  Value V;
  V.TheKind = Kind::Array;
  V.Elems = std::move(Elems);
  return V;
}

Value Value::makeObject(std::map<std::string, Value> Members) {
  Value V;
  V.TheKind = Kind::Object;
  V.Members = std::move(Members);
  return V;
}

const Value *Value::member(const std::string &Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  auto It = Members.find(Key);
  return It == Members.end() ? nullptr : &It->second;
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value *V = member(Key);
  return V && V->isString() ? V->Str : Default;
}

int64_t Value::getInt(const std::string &Key, int64_t Default) const {
  const Value *V = member(Key);
  return V && V->isNumber() ? int64_t(V->Number) : Default;
}

bool Value::getBool(const std::string &Key, bool Default) const {
  const Value *V = member(Key);
  return V && V->isBool() ? V->Bool : Default;
}

namespace {

/// Recursive-descent parser; depth-limited so a pathological request
/// line cannot blow the stack.
class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  ParseResult run() {
    ParseResult R;
    skipWs();
    Value V;
    if (!value(V, 0)) {
      R.Error = Err;
      R.ErrorOffset = ErrAt;
      return R;
    }
    skipWs();
    if (Pos != S.size()) {
      R.Error = "trailing content after JSON document";
      R.ErrorOffset = Pos;
      return R;
    }
    R.Doc = std::move(V);
    return R;
  }

private:
  static constexpr int MaxDepth = 64;

  const std::string &S;
  size_t Pos = 0;
  std::string Err;
  size_t ErrAt = 0;

  bool fail(const char *Message) {
    if (Err.empty()) {
      Err = Message;
      ErrAt = Pos;
    }
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (S.compare(Pos, N, Lit) != 0)
      return fail("invalid literal");
    Pos += N;
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out.push_back(char(Code));
    } else if (Code < 0x800) {
      Out.push_back(char(0xC0 | (Code >> 6)));
      Out.push_back(char(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      Out.push_back(char(0xE0 | (Code >> 12)));
      Out.push_back(char(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(char(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(char(0xF0 | (Code >> 18)));
      Out.push_back(char(0x80 | ((Code >> 12) & 0x3F)));
      Out.push_back(char(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(char(0x80 | (Code & 0x3F)));
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > S.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= unsigned(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= unsigned(C - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    return true;
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < S.size()) {
      unsigned char C = (unsigned char)S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(char(C));
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= S.size())
        return fail("truncated escape");
      char E = S[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        unsigned Code;
        if (!hex4(Code))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 <= S.size() && S[Pos] == '\\' && S[Pos + 1] == 'u') {
            Pos += 2;
            unsigned Low;
            if (!hex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("invalid low surrogate");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else {
            return fail("unpaired surrogate");
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= S.size() || !std::isdigit((unsigned char)S[Pos]))
      return fail("invalid number");
    if (S[Pos] == '0')
      ++Pos;
    else
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      if (Pos >= S.size() || !std::isdigit((unsigned char)S[Pos]))
        return fail("digit expected after decimal point");
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      if (Pos >= S.size() || !std::isdigit((unsigned char)S[Pos]))
        return fail("digit expected in exponent");
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    double D = std::strtod(S.c_str() + Start, nullptr);
    if (!std::isfinite(D))
      return fail("number out of range");
    Out = Value::makeNumber(D);
    return true;
  }

  bool value(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '{')
      return object(Out, Depth);
    if (C == '[')
      return array(Out, Depth);
    if (C == '"') {
      std::string Str;
      if (!string(Str))
        return false;
      Out = Value::makeString(std::move(Str));
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = Value::makeBool(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = Value::makeBool(false);
      return true;
    }
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = Value();
      return true;
    }
    if (C == '-' || std::isdigit((unsigned char)C))
      return number(Out);
    return fail("unexpected character");
  }

  bool object(Value &Out, int Depth) {
    consume('{');
    std::map<std::string, Value> Members;
    skipWs();
    if (consume('}')) {
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' in object");
      Value V;
      if (!value(V, Depth + 1))
        return false;
      Members[Key] = std::move(V); // Duplicate keys: last one wins.
      skipWs();
      if (consume('}'))
        break;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
    Out = Value::makeObject(std::move(Members));
    return true;
  }

  bool array(Value &Out, int Depth) {
    consume('[');
    std::vector<Value> Elems;
    skipWs();
    if (consume(']')) {
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
    for (;;) {
      Value V;
      if (!value(V, Depth + 1))
        return false;
      Elems.push_back(std::move(V));
      skipWs();
      if (consume(']'))
        break;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
    Out = Value::makeArray(std::move(Elems));
    return true;
  }
};

} // namespace

ParseResult json::parse(const std::string &Text) {
  return Parser(Text).run();
}
