//===- SourceLoc.cpp ------------------------------------------------------==//

#include "support/SourceLoc.h"

#include <sstream>

using namespace seminal;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << "line " << Line << ", column " << Col;
  return OS.str();
}

SourceSpan SourceSpan::merge(const SourceSpan &A, const SourceSpan &B) {
  if (!A.isValid())
    return B;
  if (!B.isValid())
    return A;
  SourceSpan Result;
  Result.Begin = A.Begin.Offset <= B.Begin.Offset ? A.Begin : B.Begin;
  Result.EndOffset = A.EndOffset >= B.EndOffset ? A.EndOffset : B.EndOffset;
  return Result;
}

std::string SourceSpan::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << Begin.str() << " (bytes " << Begin.Offset << "-" << EndOffset << ")";
  return OS.str();
}
