//===- Histogram.h - Lock-free log-bucketed latency histogram ---*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, HDR-style latency histogram for the server's live
/// observability layer (DESIGN.md section 14). support/Metrics keeps
/// every sample in a vector and sorts on query, which is fine for
/// one-shot bench runs but wrong for a daemon: memory grows without
/// bound and a scrape pays O(n log n) while requests are in flight.
/// LogHistogram instead buckets values logarithmically into a fixed
/// array of atomic counters:
///
///   * record() is lock-free and wait-free on x86: one bit-scan to find
///     the bucket, then relaxed fetch_adds (plus CAS loops for min/max).
///     No allocation, ever -- safe to call from any shard worker.
///   * Values 0..63 land in exact width-1 buckets; beyond that each
///     power of two is split into 32 sub-buckets, so any recorded value
///     is off by at most 1/32 (~3.1%) of itself. Values at or above
///     2^40 (about 12.7 days when recording microseconds) clamp into a
///     single overflow bucket; min/max still track the raw values.
///   * Histograms merge by bucket-wise addition, so per-shard recording
///     with a merge at scrape time is bit-identical to recording the
///     interleaved stream into one histogram (pinned by tests).
///
/// Quantiles walk the bucket array (1153 entries) and return the lower
/// bound of the bucket holding the requested rank: exact for values
/// below 64, never more than one sub-bucket below the true value
/// otherwise. Concurrent record() during a query can skew a quantile by
/// the in-flight samples; counts are never lost.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_HISTOGRAM_H
#define SEMINAL_SUPPORT_HISTOGRAM_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace seminal {

/// One consistent view of a LogHistogram, extracted in a single bucket
/// walk so the quantiles agree with the count.
struct HistogramSummary {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< Raw (unbucketed) minimum; 0 when empty.
  uint64_t Max = 0; ///< Raw (unbucketed) maximum; 0 when empty.
  double Mean = 0.0;
  uint64_t P50 = 0;
  uint64_t P90 = 0;
  uint64_t P95 = 0;
  uint64_t P99 = 0;
};

/// A plain (non-atomic) copy of a LogHistogram's bucket array, taken in
/// one walk. Snapshots subtract bucket-wise, which is what makes
/// windowed views possible without ever resetting a live histogram:
/// `Cur.deltaFrom(Prev)` is exactly the histogram of the samples
/// recorded between the two snapshots (per-counter monotonicity -- see
/// the ordering note in Histogram.cpp -- guarantees Cur >= Prev in
/// every bucket while no reset intervenes). Min/Max/Sum are cumulative
/// statistics and do not subtract exactly: a delta keeps the saturating
/// Sum difference (exact once writers quiesce) and zeroes Min/Max,
/// which have no interval meaning.
struct HistogramSnapshot {
  static constexpr size_t NumBuckets =
      2 * (1u << 5) + (39 - 5) * (1u << 5) + 1; // Mirrors LogHistogram.
  uint64_t Buckets[NumBuckets] = {};
  /// Derived from the bucket walk, so quantiles always agree with it.
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< Raw minimum (0 in deltas and when empty).
  uint64_t Max = 0; ///< Raw maximum (0 in deltas and when empty).

  /// Nearest-rank quantile over the snapshot (same contract as
  /// LogHistogram::quantile).
  uint64_t quantile(double Q) const;

  /// Count/sum/min/max plus p50/p90/p95/p99 over the snapshot.
  HistogramSummary summarize() const;

  /// Samples strictly above \p Value, up to bucket quantization: whole
  /// buckets whose lower bound exceeds \p Value. A bucket straddling
  /// \p Value counts as "not above", so the answer can be low by at
  /// most one sub-bucket's population (values below 64 are exact).
  uint64_t countAbove(uint64_t Value) const;

  /// Bucket-wise `this - Prev`, saturating at zero per bucket (slack
  /// only appears if a reset slipped between the snapshots).
  HistogramSnapshot deltaFrom(const HistogramSnapshot &Prev) const;

  /// Bucket-wise addition; delta(A,C) == delta(A,B) + delta(B,C).
  void merge(const HistogramSnapshot &Other);
};

class LogHistogram {
public:
  /// Sub-bucket resolution: each power of two splits into 2^SubBits
  /// buckets, bounding relative error at 2^-SubBits.
  static constexpr unsigned SubBits = 5;
  static constexpr unsigned SubBucketCount = 1u << SubBits;
  /// Largest exponent with its own sub-buckets; values >= 2^(MaxExp+1)
  /// clamp into the overflow bucket.
  static constexpr unsigned MaxExp = 39;
  static constexpr size_t NumBuckets =
      2 * SubBucketCount + (MaxExp - SubBits) * SubBucketCount + 1;

  LogHistogram() = default;
  LogHistogram(const LogHistogram &) = delete;
  LogHistogram &operator=(const LogHistogram &) = delete;

  /// Records one sample. Lock-free; callable from any thread.
  void record(uint64_t Value);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Raw minimum/maximum recorded value (not bucket-quantized); 0 when
  /// no samples were recorded.
  uint64_t min() const;
  uint64_t max() const { return MaxSeen.load(std::memory_order_relaxed); }

  /// \p Q in [0, 1]; nearest-rank quantile over the bucket array. 0 when
  /// empty. Returns the lower bound of the selected bucket (exact below
  /// 64, at most one sub-bucket low otherwise).
  uint64_t quantile(double Q) const;

  /// Count/sum/min/max plus p50/p90/p95/p99 from one bucket walk.
  HistogramSummary summarize() const;

  /// One-walk plain copy of the buckets (see HistogramSnapshot).
  HistogramSnapshot snapshot() const;

  /// The interval histogram since \p Prev: snapshot().deltaFrom(Prev).
  /// Never resets or perturbs the live histogram, so any number of
  /// independent windows can be carved out of one instrument.
  HistogramSnapshot snapshotDelta(const HistogramSnapshot &Prev) const;

  /// Adds \p Other's samples bucket-wise. Merging per-shard histograms
  /// equals recording the union stream into one histogram.
  void merge(const LogHistogram &Other);

  /// Drops all samples. Not atomic with respect to concurrent record();
  /// meant for bench loops and tests.
  void reset();

  // Bucket introspection (tests and exposition) ------------------------
  static size_t bucketIndex(uint64_t Value);
  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLowerBound(size_t Index);
  uint64_t bucketLoad(size_t Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  /// UINT64_MAX = "nothing recorded yet" sentinel.
  std::atomic<uint64_t> MinSeen{UINT64_MAX};
  std::atomic<uint64_t> MaxSeen{0};
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_HISTOGRAM_H
