//===- Metrics.h - Named histogram metrics with p50/p95/max -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-layer histogram metrics for the search pipeline: a thread-safe
/// registry of named sample series (oracle latency, candidates per node,
/// checkpoint reuse depth, ...) with percentile summaries and a JSON
/// snapshot for the BENCH_*.json trajectory files. Like the trace sink,
/// a Metrics collector is attached by pointer and null means disabled:
/// instrumentation sites pay one branch when no collector is attached.
///
/// Hot series -- names ending in ".latency_us", observed once per oracle
/// call -- are backed by a fixed-size LogHistogram (support/Histogram.h)
/// instead of a sample vector: bounded memory in a long-lived daemon and
/// O(buckets) summaries instead of a sort per query, at the price of
/// <= 3.1% quantile quantization. All other series keep exact samples.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_METRICS_H
#define SEMINAL_SUPPORT_METRICS_H

#include "support/Histogram.h"
#include "support/Stats.h"
#include "support/Sync.h"

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace seminal {

/// Summary statistics for one metric series.
struct MetricSummary {
  size_t Count = 0;
  double Min = 0.0;
  double Mean = 0.0;
  double P50 = 0.0;
  double P95 = 0.0;
  double Max = 0.0;
};

/// Well-known metric names, kept in one place so producers and
/// consumers (benches, the CLI `--metrics` report) agree.
namespace metric {
inline constexpr const char *OracleLatencyUs = "oracle.latency_us";
inline constexpr const char *CandidatesPerNode = "search.candidates_per_node";
inline constexpr const char *CheckpointReuseDepth =
    "oracle.checkpoint_reuse_depth";
inline constexpr const char *BatchItems = "oracle.batch_items";
inline constexpr const char *TriageRemovals = "triage.sibling_removals";
inline constexpr const char *SliceSize = "slice.size";
inline constexpr const char *SlicePruneRatio = "slice.prune_ratio";
/// Overlays per batch that collapsed to another candidate's interned tree.
inline constexpr const char *WaveCollapsed = "dedup.wave_collapsed";
/// Hash-consing arena occupancy gauges, observed once per batch.
inline constexpr const char *ArenaNodes = "arena.nodes";
inline constexpr const char *ArenaHits = "arena.hits";
inline constexpr const char *ArenaBytes = "arena.bytes";
} // namespace metric

/// Thread-safe registry of named sample series.
class Metrics {
public:
  /// Appends \p Value to the series \p Name (creating it on first use).
  void observe(const char *Name, double Value);

  /// Series names in lexicographic order.
  std::vector<std::string> names() const;

  /// Summary of one series (all zeros for an unknown name).
  MetricSummary summary(const std::string &Name) const;

  /// Count/p50/p95/max table, one row per series.
  std::string render() const;

  /// JSON object {"name": {"count": n, "p50": ..., ...}, ...}.
  void writeJson(std::ostream &OS) const;

  bool empty() const;
  void clear();

  /// True when \p Name is routed to a LogHistogram (see file comment).
  static bool isHotSeries(const std::string &Name);

private:
  mutable sync::Mutex Mutex{sync::LockRank::Metrics, "metrics"};
  std::map<std::string, Samples> Series SEMINAL_GUARDED_BY(Mutex);
  /// unique_ptr: a LogHistogram is ~9 KiB of atomics and non-copyable.
  /// The map is guarded; the histograms themselves are lock-free and
  /// recorded into outside the registry lock (see observe()).
  std::map<std::string, std::unique_ptr<LogHistogram>> HotSeries
      SEMINAL_GUARDED_BY(Mutex);
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_METRICS_H
