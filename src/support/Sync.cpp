//===- Sync.cpp - Lock-rank runtime checker --------------------------------==//
//
// The debug-build half of support/Sync.h: a per-thread held-lock stack
// and the strict-rank-increase check run on every acquisition attempt.
// The check happens *before* blocking on the underlying mutex, so a
// potential deadlock cycle is reported even on the interleaving that
// would have won the race -- unlike TSan, which needs the losing
// schedule to actually occur.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace seminal;
using namespace seminal::sync;

namespace {

std::atomic<bool> ChecksEnabled{SEMINAL_SYNC_RANK_CHECKS != 0};

#if SEMINAL_SYNC_RANK_CHECKS

struct HeldLock {
  const void *Addr;
  uint16_t Rank;
  const char *Name;
};

/// Acquisition-ordered stack of locks the calling thread holds. A plain
/// vector: depth is O(nesting), in practice <= 3.
thread_local std::vector<HeldLock> HeldLocks;

[[noreturn]] void reportViolation(const char *What, const void *Addr,
                                  uint16_t Rank, const char *Name,
                                  const HeldLock &Conflict) {
  // One stderr blob, assembled first so concurrent aborts do not shred
  // each other's reports.
  std::string Msg = "seminal: lock-rank violation: ";
  Msg += What;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                ": acquiring \"%s\" (rank %u, %p) while holding \"%s\" "
                "(rank %u, %p)\n  held locks, acquisition order:\n",
                Name, unsigned(Rank), Addr, Conflict.Name,
                unsigned(Conflict.Rank), Conflict.Addr);
  Msg += Buf;
  for (const HeldLock &H : HeldLocks) {
    std::snprintf(Buf, sizeof(Buf), "    \"%s\" (rank %u, %p)\n", H.Name,
                  unsigned(H.Rank), H.Addr);
    Msg += Buf;
  }
  Msg += "  fix: acquire in strictly increasing LockRank order "
         "(support/Sync.h; rank table in DESIGN.md section 15)\n";
  std::fputs(Msg.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

#endif // SEMINAL_SYNC_RANK_CHECKS

} // namespace

bool sync::setRankChecksEnabled(bool Enabled) {
  return ChecksEnabled.exchange(Enabled, std::memory_order_relaxed);
}

bool sync::rankChecksEnabled() {
  return ChecksEnabled.load(std::memory_order_relaxed);
}

#if SEMINAL_SYNC_RANK_CHECKS

void sync::sync_detail::checkRank(const void *Addr, uint16_t Rank,
                                  const char *Name) {
  if (!ChecksEnabled.load(std::memory_order_relaxed) || HeldLocks.empty())
    return;
  for (const HeldLock &H : HeldLocks) {
    if (H.Addr == Addr)
      reportViolation("recursive acquisition (self-deadlock; includes "
                      "shared->exclusive upgrade)",
                      Addr, Rank, Name, H);
    if (H.Rank >= Rank)
      reportViolation("rank not strictly increasing", Addr, Rank, Name, H);
  }
}

void sync::sync_detail::pushHeld(const void *Addr, uint16_t Rank,
                                 const char *Name) {
  if (!ChecksEnabled.load(std::memory_order_relaxed))
    return;
  HeldLocks.push_back({Addr, Rank, Name});
}

void sync::sync_detail::popHeld(const void *Addr) {
  // Scan from the top: releases are almost always LIFO. Tolerates a
  // lock acquired while checking was disabled (not found -> no-op).
  for (size_t I = HeldLocks.size(); I-- > 0;) {
    if (HeldLocks[I].Addr == Addr) {
      HeldLocks.erase(HeldLocks.begin() + long(I));
      return;
    }
  }
}

#endif // SEMINAL_SYNC_RANK_CHECKS
