//===- Sync.cpp - Lock-rank runtime checker --------------------------------==//
//
// The debug-build half of support/Sync.h: a per-thread held-lock stack
// and the strict-rank-increase check run on every acquisition attempt.
// The check happens *before* blocking on the underlying mutex, so a
// potential deadlock cycle is reported even on the interleaving that
// would have won the race -- unlike TSan, which needs the losing
// schedule to actually occur.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

using namespace seminal;
using namespace seminal::sync;

namespace {

std::atomic<bool> ChecksEnabled{SEMINAL_SYNC_RANK_CHECKS != 0};

#if SEMINAL_SYNC_RANK_CHECKS

struct HeldLock {
  const void *Addr;
  uint16_t Rank;
  const char *Name;
};

/// Acquisition-ordered stack of locks the calling thread holds.
///
/// Deliberately a fixed array, not a vector: a trivially-destructible
/// thread_local is never registered with __cxa_thread_atexit, so it
/// stays valid for TLS destructors that run after it would otherwise
/// have been torn down. That matters in practice -- the profiler's
/// per-thread handle releases its state from a TLS destructor, and
/// that release takes a ranked mutex; with a vector here the order
/// "handle constructed before first lock" made thread exit a
/// use-after-free. Depth is O(lock nesting), in practice <= 3; the
/// rank table has ~12 ranks, so 32 slots can never legitimately fill.
struct HeldStack {
  static constexpr size_t Max = 32;
  HeldLock Locks[Max];
  size_t Count = 0;
};
static_assert(std::is_trivially_destructible<HeldStack>::value,
              "held-lock stack must not register a TLS destructor");

thread_local HeldStack HeldLocks;

[[noreturn]] void reportViolation(const char *What, const void *Addr,
                                  uint16_t Rank, const char *Name,
                                  const HeldLock &Conflict) {
  // One stderr blob, assembled first so concurrent aborts do not shred
  // each other's reports.
  std::string Msg = "seminal: lock-rank violation: ";
  Msg += What;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                ": acquiring \"%s\" (rank %u, %p) while holding \"%s\" "
                "(rank %u, %p)\n  held locks, acquisition order:\n",
                Name, unsigned(Rank), Addr, Conflict.Name,
                unsigned(Conflict.Rank), Conflict.Addr);
  Msg += Buf;
  for (size_t I = 0; I < HeldLocks.Count; ++I) {
    const HeldLock &H = HeldLocks.Locks[I];
    std::snprintf(Buf, sizeof(Buf), "    \"%s\" (rank %u, %p)\n", H.Name,
                  unsigned(H.Rank), H.Addr);
    Msg += Buf;
  }
  Msg += "  fix: acquire in strictly increasing LockRank order "
         "(support/Sync.h; rank table in DESIGN.md section 15)\n";
  std::fputs(Msg.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

#endif // SEMINAL_SYNC_RANK_CHECKS

} // namespace

bool sync::setRankChecksEnabled(bool Enabled) {
  return ChecksEnabled.exchange(Enabled, std::memory_order_relaxed);
}

bool sync::rankChecksEnabled() {
  return ChecksEnabled.load(std::memory_order_relaxed);
}

#if SEMINAL_SYNC_RANK_CHECKS

void sync::sync_detail::checkRank(const void *Addr, uint16_t Rank,
                                  const char *Name) {
  if (!ChecksEnabled.load(std::memory_order_relaxed) || HeldLocks.Count == 0)
    return;
  for (size_t I = 0; I < HeldLocks.Count; ++I) {
    const HeldLock &H = HeldLocks.Locks[I];
    if (H.Addr == Addr)
      reportViolation("recursive acquisition (self-deadlock; includes "
                      "shared->exclusive upgrade)",
                      Addr, Rank, Name, H);
    if (H.Rank >= Rank)
      reportViolation("rank not strictly increasing", Addr, Rank, Name, H);
  }
}

void sync::sync_detail::pushHeld(const void *Addr, uint16_t Rank,
                                 const char *Name) {
  if (!ChecksEnabled.load(std::memory_order_relaxed))
    return;
  // Overflow cannot happen under the rank discipline (checkRank caps
  // nesting at the number of distinct ranks); if it somehow does, drop
  // the entry rather than write out of bounds -- popHeld tolerates
  // not-found.
  if (HeldLocks.Count < HeldStack::Max)
    HeldLocks.Locks[HeldLocks.Count++] = {Addr, Rank, Name};
}

void sync::sync_detail::popHeld(const void *Addr) {
  // Scan from the top: releases are almost always LIFO. Tolerates a
  // lock acquired while checking was disabled (not found -> no-op).
  for (size_t I = HeldLocks.Count; I-- > 0;) {
    if (HeldLocks.Locks[I].Addr == Addr) {
      for (size_t J = I + 1; J < HeldLocks.Count; ++J)
        HeldLocks.Locks[J - 1] = HeldLocks.Locks[J];
      --HeldLocks.Count;
      return;
    }
  }
}

#endif // SEMINAL_SYNC_RANK_CHECKS
