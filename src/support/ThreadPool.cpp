//===- ThreadPool.cpp - Minimal fixed-size worker pool ---------------------==//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace seminal;
using sync::MutexLock;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Queues.resize(Threads);
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::parallelFor(size_t NumItems,
                             const std::function<void(unsigned, size_t)> &Fn) {
  if (NumItems == 0)
    return;
  MutexLock Lock(Mutex);
  Job = &Fn;
  JobSize = NumItems;
  NextItem = 0;
  ItemsLeft = NumItems;
  ++Generation;
  WorkReady.notify_all();
  while (ItemsLeft != 0)
    WorkDone.wait(Mutex);
  Job = nullptr;
}

void ThreadPool::post(size_t Shard, std::function<void()> Task) {
  {
    MutexLock Lock(Mutex);
    Queues[Shard % Queues.size()].push_back(std::move(Task));
    ++PostedPending;
  }
  // All workers share one condition variable; waking them all is cheap at
  // request-queue rates and keeps the wait predicate simple.
  WorkReady.notify_all();
}

void ThreadPool::drainPosted() {
  MutexLock Lock(Mutex);
  while (PostedPending != 0)
    WorkDone.wait(Mutex);
}

void ThreadPool::workerMain(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  MutexLock Lock(Mutex);
  for (;;) {
    while (!(ShuttingDown || !Queues[WorkerIndex].empty() ||
             (Job && Generation != SeenGeneration)))
      WorkReady.wait(Mutex);
    // Shard queue first: posted tasks are interactive request handlers,
    // parallelFor items are batch work. On shutdown the queue is still
    // drained -- a posted task is a promise to the poster.
    while (!Queues[WorkerIndex].empty()) {
      std::function<void()> Task = std::move(Queues[WorkerIndex].front());
      Queues[WorkerIndex].pop_front();
      Lock.unlock();
      Task();
      Lock.lock();
      if (--PostedPending == 0)
        WorkDone.notify_all();
    }
    if (Job && Generation != SeenGeneration) {
      SeenGeneration = Generation;
      while (NextItem < JobSize) {
        size_t Item = NextItem++;
        const auto *Fn = Job;
        Lock.unlock();
        (*Fn)(WorkerIndex, Item);
        Lock.lock();
        if (--ItemsLeft == 0)
          WorkDone.notify_one();
      }
    }
    if (ShuttingDown && Queues[WorkerIndex].empty())
      return;
  }
}
