//===- ThreadPool.cpp - Minimal fixed-size worker pool ---------------------==//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace seminal;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::parallelFor(size_t NumItems,
                             const std::function<void(unsigned, size_t)> &Fn) {
  if (NumItems == 0)
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  Job = &Fn;
  JobSize = NumItems;
  NextItem = 0;
  ItemsLeft = NumItems;
  ++Generation;
  WorkReady.notify_all();
  WorkDone.wait(Lock, [this] { return ItemsLeft == 0; });
  Job = nullptr;
}

void ThreadPool::workerMain(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] {
      return ShuttingDown || (Job && Generation != SeenGeneration);
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    while (NextItem < JobSize) {
      size_t Item = NextItem++;
      const auto *Fn = Job;
      Lock.unlock();
      (*Fn)(WorkerIndex, Item);
      Lock.lock();
      if (--ItemsLeft == 0)
        WorkDone.notify_one();
    }
  }
}
