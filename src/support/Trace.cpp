//===- Trace.cpp - Structured search-trace spans and exporters -------------==//

#include "support/Trace.h"

#include "support/Profiler.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace seminal;

//===----------------------------------------------------------------------===//
// Span kinds and thread-local state
//===----------------------------------------------------------------------===//

const char *seminal::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Search:
    return "search";
  case SpanKind::Localize:
    return "localize";
  case SpanKind::DeclChanges:
    return "decl-changes";
  case SpanKind::NodeVisit:
    return "node-visit";
  case SpanKind::Candidate:
    return "candidate";
  case SpanKind::OracleCall:
    return "oracle-call";
  case SpanKind::OracleBatch:
    return "oracle-batch";
  case SpanKind::Triage:
    return "triage";
  case SpanKind::TriagePhase:
    return "triage-phase";
  case SpanKind::PatternFix:
    return "pattern-fix";
  case SpanKind::Slice:
    return "slice";
  case SpanKind::Rank:
    return "rank";
  case SpanKind::CcSearch:
    return "cc-search";
  case SpanKind::Other:
    return "other";
  }
  return "other";
}

namespace {

thread_local TraceSpan *CurrentSpan = nullptr;
thread_local const char *CurrentLayer = "unattributed";

} // namespace

const char *seminal::traceCurrentLayer() { return CurrentLayer; }

TraceLayerScope::TraceLayerScope(const char *Layer) : Prev(CurrentLayer) {
  CurrentLayer = Layer;
}

TraceLayerScope::~TraceLayerScope() { CurrentLayer = Prev; }

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

TraceSink::TraceSink() : Epoch(std::chrono::steady_clock::now()) {}

uint64_t TraceSink::nowNs() const {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - Epoch)
                      .count());
}

uint64_t TraceSink::nextId() {
  sync::MutexLock Lock(Mutex);
  return NextSpanId++;
}

uint32_t TraceSink::threadId() {
  sync::MutexLock Lock(Mutex);
  auto It = ThreadIds.find(std::this_thread::get_id());
  if (It != ThreadIds.end())
    return It->second;
  uint32_t Id = uint32_t(ThreadIds.size());
  ThreadIds.emplace(std::this_thread::get_id(), Id);
  return Id;
}

void TraceSink::record(TraceEvent E) {
  sync::MutexLock Lock(Mutex);
  E.Seq = NextSeq++;
  Events.push_back(std::move(E));
}

size_t TraceSink::eventCount() const {
  sync::MutexLock Lock(Mutex);
  return Events.size();
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  sync::MutexLock Lock(Mutex);
  return Events;
}

void TraceSink::clear() {
  sync::MutexLock Lock(Mutex);
  Events.clear();
}

//===----------------------------------------------------------------------===//
// TraceSpan
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(TraceSink *Sink, SpanKind Kind, const char *Name)
    : Sink(Sink) {
  // Profiler mirror first: it works with or without a sink, and with
  // profiling off this is one relaxed load and branch.
  if (prof::enabled())
    ProfToken = prof::spanEnter(Kind, Name);
  if (!Sink)
    return;
  Event.Id = Sink->nextId();
  Event.Kind = Kind;
  Event.Name = Name;
  Event.StartNs = Sink->nowNs();
  Event.ThreadId = Sink->threadId();
  PrevTop = CurrentSpan;
  if (PrevTop)
    Event.Parent = PrevTop->Event.Id;
  CurrentSpan = this;
}

void TraceSpan::setParent(uint64_t ParentId) {
  if (Sink)
    Event.Parent = ParentId;
}

void TraceSpan::attr(const char *Key, const std::string &Value) {
  if (!Sink)
    return;
  TraceAttr A;
  A.Key = Key;
  A.T = TraceAttr::Type::String;
  A.Str = Value;
  Event.Attrs.push_back(std::move(A));
}

void TraceSpan::attr(const char *Key, const char *Value) {
  if (!Sink)
    return;
  attr(Key, std::string(Value));
}

void TraceSpan::attr(const char *Key, int64_t Value) {
  if (!Sink)
    return;
  TraceAttr A;
  A.Key = Key;
  A.T = TraceAttr::Type::Int;
  A.Int = Value;
  Event.Attrs.push_back(std::move(A));
}

void TraceSpan::attr(const char *Key, bool Value) {
  if (!Sink)
    return;
  TraceAttr A;
  A.Key = Key;
  A.T = TraceAttr::Type::Bool;
  A.Flag = Value;
  Event.Attrs.push_back(std::move(A));
}

void TraceSpan::attr(const char *Key, double Value) {
  if (!Sink)
    return;
  TraceAttr A;
  A.Key = Key;
  A.T = TraceAttr::Type::Double;
  A.Dbl = Value;
  Event.Attrs.push_back(std::move(A));
}

void TraceSpan::finish() {
  if (ProfToken) {
    prof::spanExit(ProfToken);
    ProfToken = 0;
  }
  if (!Sink)
    return;
  Event.DurNs = Sink->nowNs() - Event.StartNs;
  // Pop the thread-local stack only if this span is still the top: a
  // cross-thread span (setParent) constructed on a worker is its own top
  // there, and finishing out of order must not corrupt the stack.
  if (CurrentSpan == this)
    CurrentSpan = PrevTop;
  Sink->record(std::move(Event));
  Sink = nullptr;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string seminal::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  return Out;
}

namespace {

void writeAttrValue(std::ostream &OS, const TraceAttr &A) {
  switch (A.T) {
  case TraceAttr::Type::String:
    OS << '"' << jsonEscape(A.Str) << '"';
    break;
  case TraceAttr::Type::Int:
    OS << A.Int;
    break;
  case TraceAttr::Type::Bool:
    OS << (A.Flag ? "true" : "false");
    break;
  case TraceAttr::Type::Double: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", A.Dbl);
    OS << Buf;
    break;
  }
  }
}

void writeAttrs(std::ostream &OS, const TraceEvent &E) {
  bool First = true;
  for (const TraceAttr &A : E.Attrs) {
    if (!First)
      OS << ',';
    First = false;
    OS << '"' << jsonEscape(A.Key) << "\":";
    writeAttrValue(OS, A);
  }
}

} // namespace

void TraceSink::writeChromeTrace(std::ostream &OS) const {
  std::vector<TraceEvent> Copy = snapshot();
  OS << "{\"traceEvents\":[\n";
  bool First = true;
  for (const TraceEvent &E : Copy) {
    if (!First)
      OS << ",\n";
    First = false;
    char Head[192];
    // Chrome/Perfetto expect microsecond timestamps; fractional us keep
    // the nanosecond resolution.
    std::snprintf(Head, sizeof(Head),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{",
                  jsonEscape(E.Name).c_str(), spanKindName(E.Kind),
                  double(E.StartNs) / 1000.0, double(E.DurNs) / 1000.0,
                  E.ThreadId);
    OS << Head;
    OS << "\"span_id\":" << E.Id << ",\"parent_id\":" << E.Parent;
    if (!E.Attrs.empty()) {
      OS << ',';
      writeAttrs(OS, E);
    }
    OS << "}}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceSink::writeJsonl(std::ostream &OS) const {
  std::vector<TraceEvent> Copy = snapshot();
  for (const TraceEvent &E : Copy) {
    OS << "{\"seq\":" << E.Seq << ",\"id\":" << E.Id << ",\"parent\":"
       << E.Parent << ",\"kind\":\"" << spanKindName(E.Kind) << "\",\"name\":\""
       << jsonEscape(E.Name) << "\",\"start_ns\":" << E.StartNs
       << ",\"dur_ns\":" << E.DurNs << ",\"tid\":" << E.ThreadId
       << ",\"attrs\":{";
    writeAttrs(OS, E);
    OS << "}}\n";
  }
}

//===----------------------------------------------------------------------===//
// Summary
//===----------------------------------------------------------------------===//

TraceSummary TraceSink::summarize() const {
  std::vector<TraceEvent> Copy = snapshot();
  TraceSummary S;
  S.Spans = Copy.size();
  for (const TraceEvent &E : Copy) {
    ++S.SpansByKind[spanKindName(E.Kind)];
    if (E.Parent == 0)
      S.RootDurMs += double(E.DurNs) / 1e6;
    if (E.Kind == SpanKind::OracleBatch)
      ++S.BatchSpans;
    if (E.Kind != SpanKind::OracleCall)
      continue;
    ++S.OracleCallSpans;
    for (const TraceAttr &A : E.Attrs) {
      if (A.Key == "layer" && A.T == TraceAttr::Type::String)
        ++S.CallsByLayer[A.Str];
      else if (A.Key == "cache_hit" && A.T == TraceAttr::Type::Bool && A.Flag)
        ++S.CacheHits;
    }
  }
  return S;
}

std::string TraceSummary::render() const {
  std::ostringstream OS;
  OS << "  spans: " << Spans << " (" << OracleCallSpans << " oracle calls, "
     << CacheHits << " served from cache, " << BatchSpans << " batches); "
     << "root wall " << RootDurMs << " ms\n";
  if (!CallsByLayer.empty()) {
    OS << "  oracle calls by search layer:\n";
    for (const auto &KV : CallsByLayer)
      OS << "    " << KV.first << ": " << KV.second << "\n";
  }
  if (!SpansByKind.empty()) {
    OS << "  spans by kind:";
    for (const auto &KV : SpansByKind)
      OS << " " << KV.first << "=" << KV.second;
    OS << "\n";
  }
  return OS.str();
}
