//===- Trace.h - Structured search-trace spans and exporters ----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search-trace subsystem: hierarchical spans recording where the
/// search spends its effort (search -> triage phase -> node visit ->
/// candidate -> oracle call), each carrying structured attributes (AST
/// span, change kind, enumerator layer, verdict, cache-hit flag,
/// wall-time). Two exporters read the recorded stream:
///
///   * writeChromeTrace() -- Chrome `trace_event` JSON, loadable in
///     about:tracing and Perfetto;
///   * writeJsonl() -- one JSON object per event, for machine diffing.
///
/// Design constraints (DESIGN.md section 8):
///
///   * Always compiled, near-zero overhead when disabled. Every
///     instrumentation site is a TraceSpan constructed with a possibly
///     null sink; with a null sink the constructor is a pointer test --
///     no clock read, no allocation, no locking -- and every attr() call
///     is a single branch.
///   * Tracing is observational only: suggestions, logical-call counts,
///     and ranking are byte-identical with tracing on or off (enforced
///     by tests/TraceTest.cpp).
///   * Thread-safe recording: the parallel-batch oracle emits item spans
///     from pool workers; the sink serializes them under a mutex and
///     stamps a global sequence number, so exports are totally ordered
///     no matter which worker finished first.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_TRACE_H
#define SEMINAL_SUPPORT_TRACE_H

#include "support/Sync.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace seminal {

/// Span taxonomy, mirroring the layers of the search procedure.
enum class SpanKind : uint8_t {
  Search,      ///< One full search run (root).
  Localize,    ///< Prefix-localization loop (Section 2.1).
  DeclChanges, ///< Declaration-header change family.
  NodeVisit,   ///< searchExpr at one AST node.
  Candidate,   ///< One enumerator candidate tested at a node.
  OracleCall,  ///< One logical oracle question.
  OracleBatch, ///< One batched candidate wave.
  Triage,      ///< Triage entered at a node (Section 2.4).
  TriagePhase, ///< One phase of match triage / one focus iteration.
  PatternFix,  ///< Subpattern wildcard search.
  Slice,       ///< Provenance slice computation (analysis layer).
  Rank,        ///< Ranking the suggestion list.
  CcSearch,    ///< Mini-C++ secondary-oracle search (Section 4).
  Other,
};

/// Stable lowercase name for a span kind ("oracle-call", ...).
const char *spanKindName(SpanKind K);

/// One typed key/value attribute attached to a span.
struct TraceAttr {
  enum class Type : uint8_t { String, Int, Bool, Double };
  std::string Key;
  Type T = Type::String;
  std::string Str;
  int64_t Int = 0;
  bool Flag = false;
  double Dbl = 0.0;
};

/// One completed span. Events are recorded at span *end* (Chrome
/// "complete" events), which keeps recording to a single sink call.
struct TraceEvent {
  uint64_t Id = 0;     ///< Unique span id (never 0 for recorded spans).
  uint64_t Parent = 0; ///< Enclosing span id, 0 for roots.
  uint64_t Seq = 0;    ///< Global record order (assigned by the sink).
  SpanKind Kind = SpanKind::Other;
  std::string Name;
  uint64_t StartNs = 0; ///< Nanoseconds since the sink was created.
  uint64_t DurNs = 0;
  uint32_t ThreadId = 0; ///< Dense per-sink thread index (0 = first seen).
  std::vector<TraceAttr> Attrs;
};

/// Aggregate view of one recorded trace, cheap enough to surface in a
/// SeminalReport without shipping the event stream.
struct TraceSummary {
  uint64_t Spans = 0;
  uint64_t OracleCallSpans = 0;
  uint64_t CacheHits = 0;
  uint64_t BatchSpans = 0;
  /// Oracle-call spans bucketed by the search layer that issued them.
  std::map<std::string, uint64_t> CallsByLayer;
  /// All spans bucketed by kind name.
  std::map<std::string, uint64_t> SpansByKind;
  /// Wall-time of root spans (no recorded parent), milliseconds.
  double RootDurMs = 0.0;

  /// Multi-line human-readable rendering.
  std::string render() const;
};

/// Collects TraceEvents from any thread and exports them. One sink per
/// run (or per bench sweep); not owned by the components it observes.
class TraceSink {
public:
  TraceSink();

  /// Records one completed span. Thread-safe; assigns Seq.
  void record(TraceEvent E);

  /// Number of events recorded so far. Thread-safe.
  size_t eventCount() const;

  /// Copy of the event stream in record order. Thread-safe.
  std::vector<TraceEvent> snapshot() const;

  /// Drops all recorded events (ids keep growing; reuse between files).
  void clear();

  /// Monotonic timestamp in nanoseconds since construction.
  uint64_t nowNs() const;

  /// Allocates a fresh span id (thread-safe, never 0).
  uint64_t nextId();

  /// Dense id for the calling thread (0 = first thread seen).
  uint32_t threadId();

  /// Chrome trace_event JSON: {"traceEvents": [...]} with "X" (complete)
  /// phase events; timestamps in microseconds as Perfetto expects.
  void writeChromeTrace(std::ostream &OS) const;

  /// One JSON object per line, in record order.
  void writeJsonl(std::ostream &OS) const;

  /// Aggregates the recorded stream (see TraceSummary).
  TraceSummary summarize() const;

private:
  mutable sync::Mutex Mutex{sync::LockRank::Trace, "trace.sink"};
  std::vector<TraceEvent> Events SEMINAL_GUARDED_BY(Mutex);
  uint64_t NextSeq SEMINAL_GUARDED_BY(Mutex) = 1;
  uint64_t NextSpanId SEMINAL_GUARDED_BY(Mutex) = 1;
  std::map<std::thread::id, uint32_t> ThreadIds SEMINAL_GUARDED_BY(Mutex);
  /// Immutable after construction.
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span handle. With a null sink every member is an inert branch;
/// with a sink, the constructor stamps the start time and pushes the
/// span onto a thread-local stack so children pick up their parent
/// automatically. Pool workers, which start on a fresh stack, parent
/// their spans explicitly via setParent().
class TraceSpan {
public:
  /// \p Name must outlive the span (string literals only).
  TraceSpan(TraceSink *Sink, SpanKind Kind, const char *Name);
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// True when attached to a sink; guard expensive attribute rendering.
  bool enabled() const { return Sink != nullptr; }

  /// This span's id (0 when disabled), for explicit parenting.
  uint64_t id() const { return Event.Id; }

  /// Overrides the thread-local parent (cross-thread spans).
  void setParent(uint64_t ParentId);

  void attr(const char *Key, const std::string &Value);
  void attr(const char *Key, const char *Value);
  void attr(const char *Key, int64_t Value);
  void attr(const char *Key, uint64_t Value) { attr(Key, int64_t(Value)); }
  void attr(const char *Key, unsigned Value) { attr(Key, int64_t(Value)); }
  void attr(const char *Key, int Value) { attr(Key, int64_t(Value)); }
  void attr(const char *Key, bool Value);
  void attr(const char *Key, double Value);

  /// Stamps the duration and records the event; idempotent (the
  /// destructor calls it too).
  void finish();

private:
  TraceSink *Sink;
  TraceEvent Event;
  TraceSpan *PrevTop = nullptr;
  /// Profiler registration (support/Profiler.h); 0 when profiling was
  /// off at construction. Present even with a null sink: the profiler
  /// samples span stacks whether or not a trace is being recorded.
  uint32_t ProfToken = 0;
};

/// Scoped thread-local label naming which search layer is issuing
/// oracle calls ("localize", "removal", "adaptation", "constructive",
/// "triage", ...). The oracle stamps the current label onto every
/// oracle-call span, so each call is attributable even when the caller
/// is generic code. Setting a thread_local pointer is cheap enough to
/// run unconditionally (no sink test).
class TraceLayerScope {
public:
  explicit TraceLayerScope(const char *Layer);
  ~TraceLayerScope();

  TraceLayerScope(const TraceLayerScope &) = delete;
  TraceLayerScope &operator=(const TraceLayerScope &) = delete;

private:
  const char *Prev;
};

/// The calling thread's current layer label ("unattributed" when no
/// TraceLayerScope is live).
const char *traceCurrentLayer();

/// Escapes \p S for embedding in a JSON string literal (quotes,
/// backslashes, and control characters).
std::string jsonEscape(const std::string &S);

} // namespace seminal

#endif // SEMINAL_SUPPORT_TRACE_H
