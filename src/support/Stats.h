//===- Stats.h - Histograms, CDFs and summary statistics --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the benchmark harnesses: percentile
/// queries over samples (Figure 7's CDF), log-scale histograms (Figure 6),
/// and fraction-below-threshold queries ("completed in less than 4 seconds
/// on over 75% of files").
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_STATS_H
#define SEMINAL_SUPPORT_STATS_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace seminal {

/// An accumulating sample set with percentile/CDF queries.
class Samples {
public:
  void add(double Value) { Values.push_back(Value); Sorted = false; }
  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }

  double min();
  double max();
  double mean() const;

  /// \p Q in [0, 1]; nearest-rank percentile.
  double percentile(double Q);

  /// Fraction of samples <= \p Threshold.
  double fractionBelow(double Threshold);

  /// Evenly spaced (value, cumulative-fraction) points for plotting a CDF.
  std::vector<std::pair<double, double>> cdf(size_t Points = 20);

  const std::vector<double> &values() const { return Values; }

private:
  void ensureSorted();

  std::vector<double> Values;
  bool Sorted = false;
};

/// Integer-keyed frequency counter with an ASCII renderer; used for the
/// equivalence-class-size distribution of Figure 6.
class Histogram {
public:
  void add(int64_t Key) { ++Counts[Key]; }
  void add(int64_t Key, uint64_t N) { Counts[Key] += N; }

  uint64_t count(int64_t Key) const;
  uint64_t total() const;
  bool empty() const { return Counts.empty(); }

  const std::map<int64_t, uint64_t> &buckets() const { return Counts; }

  /// Renders one row per bucket with a bar whose length is proportional to
  /// log(count), matching the log-scale presentation in the paper.
  std::string renderLogScale(const std::string &KeyHeader,
                             const std::string &CountHeader) const;

private:
  std::map<int64_t, uint64_t> Counts;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_STATS_H
