//===- Stats.h - Histograms, CDFs and summary statistics --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the benchmark harnesses: percentile
/// queries over samples (Figure 7's CDF), log-scale histograms (Figure 6),
/// and fraction-below-threshold queries ("completed in less than 4 seconds
/// on over 75% of files").
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_STATS_H
#define SEMINAL_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seminal {

/// Hit/miss/saved-work counters for the oracle acceleration layer
/// (prefix-environment checkpointing, structural verdict cache, batched
/// parallel evaluation -- see core/CheckpointedOracle.h). Kept in support
/// so both the oracle and the bench harnesses can consume them without a
/// dependency cycle.
struct AccelCounters {
  /// Type-check verdicts served straight from the structural cache.
  uint64_t CacheHits = 0;
  /// Lookups that missed and had to run inference.
  uint64_t CacheMisses = 0;
  /// Whole-program inference runs (checkpoint unavailable or bypassed).
  uint64_t FullInferences = 0;
  /// Single-declaration runs against a prefix checkpoint.
  uint64_t IncrementalInferences = 0;
  /// Declarations whose re-inference a checkpoint skipped: for each
  /// incremental run, the prefix length it did not have to re-check.
  uint64_t DeclInferencesSaved = 0;
  /// Checkpoint seeds installed / queries that fell back to full
  /// inference because the program shape did not match the seed.
  uint64_t CheckpointSeeds = 0;
  uint64_t CheckpointFallbacks = 0;
  /// Batches dispatched to the pool and items they carried.
  uint64_t BatchesDispatched = 0;
  uint64_t BatchItems = 0;
  /// Unification-variable allocations across all inference performed; a
  /// hardware-independent work proxy (TypecheckResult::TypesAllocated).
  uint64_t TypesAllocated = 0;
  /// Batch items whose overlay collapsed to another candidate's interned
  /// tree in the same wave (still billed as logical calls + cache hits;
  /// this counts the collapses separately).
  uint64_t WaveCollapsed = 0;
  /// Hash-consing arena occupancy at last sync (minicaml/Arena.h):
  /// distinct nodes stored, intern requests answered by an existing node,
  /// and approximate retained bytes.
  uint64_t ArenaNodes = 0;
  uint64_t ArenaHits = 0;
  uint64_t ArenaBytes = 0;
  /// Session warm-state reuse (server mode; all zero for one-shot runs).
  /// Localization probes answered from a prefix the session already
  /// proved (no inference), verdicts served from a verdict cache retained
  /// from an earlier request with an id-identical prefix, prefix
  /// checkpoints re-adopted wholesale at seedPrefix, and conventional
  /// errors served from the session's source-prefix memo.
  uint64_t SessionPrefixHits = 0;
  uint64_t SessionVerdictReuses = 0;
  uint64_t SessionSeedAdoptions = 0;
  uint64_t SessionConvMemoHits = 0;

  /// Inference actually performed, as opposed to logical search effort.
  uint64_t inferenceRuns() const {
    return FullInferences + IncrementalInferences;
  }

  void reset() { *this = AccelCounters(); }
  AccelCounters &operator+=(const AccelCounters &Other);

  /// Multi-line human-readable rendering for bench output.
  std::string render() const;
};

/// The per-request cost ledger (DESIGN.md section 16): what one check
/// actually consumed, stamped by the session that ran it and threaded
/// unchanged through ServerEngine rollups and the RunReport. The
/// logical-effort fields mirror AccelCounters / the search report by
/// construction (pinned by the ledger reconciliation tests), so the
/// scrape, the stats verb and the RunReport can never disagree about
/// what a request cost.
struct RequestCost {
  /// Thread CPU consumed by the request (CLOCK_THREAD_CPUTIME_ID delta;
  /// exact, because a session runs confined to one shard worker).
  uint64_t CpuNs = 0;
  uint64_t WallNs = 0;
  /// Logical oracle questions (SeminalReport::OracleCalls).
  uint64_t OracleCalls = 0;
  /// Inference actually performed (AccelCounters::inferenceRuns()).
  uint64_t InferenceRuns = 0;
  /// Arena occupancy after the request (AccelCounters::Arena*).
  uint64_t ArenaNodes = 0;
  uint64_t ArenaBytes = 0;
  /// Verdicts served from the structural cache (AccelCounters::CacheHits).
  uint64_t VerdictCacheHits = 0;

  RequestCost &operator+=(const RequestCost &Other) {
    CpuNs += Other.CpuNs;
    WallNs += Other.WallNs;
    OracleCalls += Other.OracleCalls;
    InferenceRuns += Other.InferenceRuns;
    // Arena occupancy is a level, not a flow: accumulation keeps the
    // latest observation rather than a meaningless sum.
    ArenaNodes = Other.ArenaNodes;
    ArenaBytes = Other.ArenaBytes;
    VerdictCacheHits += Other.VerdictCacheHits;
    return *this;
  }
};

/// An accumulating sample set with percentile/CDF queries.
class Samples {
public:
  void add(double Value) { Values.push_back(Value); Sorted = false; }
  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }

  double min();
  double max();
  double mean() const;

  /// \p Q in [0, 1]; nearest-rank percentile.
  double percentile(double Q);

  /// Fraction of samples <= \p Threshold.
  double fractionBelow(double Threshold);

  /// Evenly spaced (value, cumulative-fraction) points for plotting a CDF.
  std::vector<std::pair<double, double>> cdf(size_t Points = 20);

  const std::vector<double> &values() const { return Values; }

private:
  void ensureSorted();

  std::vector<double> Values;
  bool Sorted = false;
};

/// Integer-keyed frequency counter with an ASCII renderer; used for the
/// equivalence-class-size distribution of Figure 6.
class Histogram {
public:
  void add(int64_t Key) { ++Counts[Key]; }
  void add(int64_t Key, uint64_t N) { Counts[Key] += N; }

  uint64_t count(int64_t Key) const;
  uint64_t total() const;
  bool empty() const { return Counts.empty(); }

  const std::map<int64_t, uint64_t> &buckets() const { return Counts; }

  /// Renders one row per bucket with a bar whose length is proportional to
  /// log(count), matching the log-scale presentation in the paper.
  std::string renderLogScale(const std::string &KeyHeader,
                             const std::string &CountHeader) const;

private:
  std::map<int64_t, uint64_t> Counts;
};

} // namespace seminal

#endif // SEMINAL_SUPPORT_STATS_H
