//===- Histogram.cpp - Lock-free log-bucketed latency histogram ------------==//

#include "support/Histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace seminal;

static_assert(HistogramSnapshot::NumBuckets == LogHistogram::NumBuckets,
              "snapshot bucket geometry must mirror the live histogram");

size_t LogHistogram::bucketIndex(uint64_t Value) {
  if (Value < 2 * SubBucketCount)
    return size_t(Value); // Exact width-1 buckets for 0..63.
  unsigned Exp = 63u - unsigned(std::countl_zero(Value));
  if (Exp > MaxExp)
    return NumBuckets - 1; // Overflow bucket.
  unsigned Sub = unsigned((Value >> (Exp - SubBits)) & (SubBucketCount - 1));
  return 2 * SubBucketCount + size_t(Exp - SubBits - 1) * SubBucketCount +
         Sub;
}

uint64_t LogHistogram::bucketLowerBound(size_t Index) {
  if (Index < 2 * SubBucketCount)
    return uint64_t(Index);
  if (Index >= NumBuckets - 1)
    return uint64_t(1) << (MaxExp + 1); // Overflow bucket.
  size_t Rel = Index - 2 * SubBucketCount;
  unsigned Exp = unsigned(Rel / SubBucketCount) + SubBits + 1;
  unsigned Sub = unsigned(Rel % SubBucketCount);
  return (uint64_t(SubBucketCount) + Sub) << (Exp - SubBits);
}

void LogHistogram::record(uint64_t Value) {
  // Memory ordering: every atomic access in this file is relaxed, and
  // that is deliberate. Each counter is an independent statistic -- no
  // non-atomic payload is ever published "under" one of them, so there
  // is nothing an acquire/release edge would order. What relaxed still
  // guarantees is (a) per-counter atomicity: no increment is ever lost
  // or torn, even with all shards recording at once (pinned by
  // LogHistogramTest.ConcurrentRecordLosesNothing and
  // MergeUnderConcurrentRecordStress, run under TSan in CI), and (b)
  // per-counter coherence: repeated reads of one counter are monotone.
  // What it does NOT give is a consistent *cross*-counter snapshot: a
  // mid-record reader may see Count ahead of the bucket array or
  // behind it, in either order. Readers own that slack by contract --
  // quantile() degrades to the last populated bucket, summarize()
  // snapshots the buckets once and derives Count from that snapshot --
  // and the slack closes the moment writers quiesce, because whatever
  // synchronizes the quiesce (thread join, ThreadPool drain) carries
  // the release/acquire edge that publishes every counter exactly.
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  // Relaxed CAS loops: on failure the loop re-reads the fresh value the
  // CAS wrote back into Seen; only the final extremum matters, and the
  // loop exits as soon as the current extremum beats Value. No ABA
  // hazard -- min only descends and max only ascends.
  uint64_t Seen = MinSeen.load(std::memory_order_relaxed);
  while (Value < Seen && !MinSeen.compare_exchange_weak(
                             Seen, Value, std::memory_order_relaxed))
    ;
  Seen = MaxSeen.load(std::memory_order_relaxed);
  while (Value > Seen && !MaxSeen.compare_exchange_weak(
                             Seen, Value, std::memory_order_relaxed))
    ;
}

uint64_t LogHistogram::min() const {
  uint64_t V = MinSeen.load(std::memory_order_relaxed);
  return V == UINT64_MAX ? 0 : V;
}

uint64_t LogHistogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  uint64_t Rank = std::max<uint64_t>(1, uint64_t(std::ceil(Q * double(Total))));
  uint64_t Cum = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Cum += bucketLoad(I);
    if (Cum >= Rank)
      return bucketLowerBound(I);
  }
  // Concurrent records made Count run ahead of the buckets; the last
  // populated bucket is the best consistent answer.
  for (size_t I = NumBuckets; I-- > 0;)
    if (bucketLoad(I))
      return bucketLowerBound(I);
  return 0;
}

/// Shared quantile walk over a plain bucket array (live summarize() and
/// HistogramSnapshot::summarize() must agree bucket for bucket).
static HistogramSummary
summarizeBuckets(const uint64_t (&Local)[LogHistogram::NumBuckets],
                 uint64_t Sum, uint64_t Min, uint64_t Max) {
  HistogramSummary S;
  uint64_t Total = 0;
  for (uint64_t B : Local)
    Total += B;
  S.Count = Total;
  S.Sum = Sum;
  S.Min = Min;
  S.Max = Max;
  if (Total == 0)
    return S;
  S.Mean = double(S.Sum) / double(Total);
  const double Qs[4] = {0.50, 0.90, 0.95, 0.99};
  uint64_t *Out[4] = {&S.P50, &S.P90, &S.P95, &S.P99};
  size_t Bucket = 0;
  uint64_t Cum = 0;
  for (int QI = 0; QI < 4; ++QI) {
    uint64_t Rank =
        std::max<uint64_t>(1, uint64_t(std::ceil(Qs[QI] * double(Total))));
    while (Bucket < LogHistogram::NumBuckets && Cum + Local[Bucket] < Rank)
      Cum += Local[Bucket++];
    *Out[QI] = LogHistogram::bucketLowerBound(
        std::min(Bucket, LogHistogram::NumBuckets - 1));
  }
  return S;
}

HistogramSummary LogHistogram::summarize() const {
  // Copy the buckets once so every quantile answers against the same
  // snapshot even while shards keep recording.
  uint64_t Local[NumBuckets];
  for (size_t I = 0; I < NumBuckets; ++I)
    Local[I] = bucketLoad(I);
  return summarizeBuckets(Local, sum(), min(), max());
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot S;
  // Same consistency contract as summarize(): one bucket walk, Count
  // derived from the walked buckets (never the live Count, which can
  // lead or lag mid-record).
  for (size_t I = 0; I < NumBuckets; ++I) {
    S.Buckets[I] = bucketLoad(I);
    S.Count += S.Buckets[I];
  }
  S.Sum = sum();
  S.Min = min();
  S.Max = max();
  return S;
}

HistogramSnapshot
LogHistogram::snapshotDelta(const HistogramSnapshot &Prev) const {
  return snapshot().deltaFrom(Prev);
}

uint64_t HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  uint64_t Rank = std::max<uint64_t>(1, uint64_t(std::ceil(Q * double(Count))));
  uint64_t Cum = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Cum += Buckets[I];
    if (Cum >= Rank)
      return LogHistogram::bucketLowerBound(I);
  }
  return 0; // Unreachable: Count is the bucket sum by construction.
}

HistogramSummary HistogramSnapshot::summarize() const {
  return summarizeBuckets(Buckets, Sum, Min, Max);
}

uint64_t HistogramSnapshot::countAbove(uint64_t Value) const {
  uint64_t Bad = 0;
  // First bucket entirely above Value: the one after Value's own.
  for (size_t I = LogHistogram::bucketIndex(Value) + 1; I < NumBuckets; ++I)
    Bad += Buckets[I];
  return Bad;
}

HistogramSnapshot
HistogramSnapshot::deltaFrom(const HistogramSnapshot &Prev) const {
  HistogramSnapshot D;
  for (size_t I = 0; I < NumBuckets; ++I) {
    D.Buckets[I] = Buckets[I] >= Prev.Buckets[I]
                       ? Buckets[I] - Prev.Buckets[I]
                       : 0; // Saturate: a reset slipped between snapshots.
    D.Count += D.Buckets[I];
  }
  D.Sum = Sum >= Prev.Sum ? Sum - Prev.Sum : 0;
  // Min/Max are cumulative extremes with no interval meaning.
  D.Min = 0;
  D.Max = 0;
  return D;
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  for (size_t I = 0; I < NumBuckets; ++I) {
    Buckets[I] += Other.Buckets[I];
    Count += Other.Buckets[I];
  }
  Sum += Other.Sum;
  if (Other.Min != 0 && (Min == 0 || Other.Min < Min))
    Min = Other.Min; // Best effort: 0 doubles as "empty" (as in min()).
  Max = std::max(Max, Other.Max);
}

void LogHistogram::merge(const LogHistogram &Other) {
  // Safe while Other is still being recorded into: each bucket is read
  // atomically (relaxed suffices -- see record() for the rationale), so
  // a mid-load merge folds in some prefix of each counter's history,
  // never a torn value. The merged cross-counter view has the same
  // slack as any concurrent read (Count may lag or lead the bucket
  // sum); once Other's writers quiesce, merge is exact and bucket-wise
  // identical to having recorded the union stream here (pinned by
  // LogHistogramTest.MergedShardsEqualSingleStream).
  for (size_t I = 0; I < NumBuckets; ++I)
    if (uint64_t N = Other.bucketLoad(I))
      Buckets[I].fetch_add(N, std::memory_order_relaxed);
  Count.fetch_add(Other.count(), std::memory_order_relaxed);
  Sum.fetch_add(Other.sum(), std::memory_order_relaxed);
  if (Other.count()) {
    uint64_t V = Other.MinSeen.load(std::memory_order_relaxed);
    uint64_t Seen = MinSeen.load(std::memory_order_relaxed);
    while (V < Seen && !MinSeen.compare_exchange_weak(
                           Seen, V, std::memory_order_relaxed))
      ;
    V = Other.max();
    Seen = MaxSeen.load(std::memory_order_relaxed);
    while (V > Seen && !MaxSeen.compare_exchange_weak(
                           Seen, V, std::memory_order_relaxed))
      ;
  }
}

void LogHistogram::reset() {
  for (size_t I = 0; I < NumBuckets; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  MinSeen.store(UINT64_MAX, std::memory_order_relaxed);
  MaxSeen.store(0, std::memory_order_relaxed);
}
