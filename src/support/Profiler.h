//===- Profiler.h - Sampling profiler over trace-span stacks ----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-compiled, low-overhead profiling layer (DESIGN.md section
/// 16). Two independent signals, both derived from the TraceSpan
/// instrumentation that already names every phase of the search -- no
/// frame-pointer walking, no unwinder, no symbolization:
///
///   * **Sampled stacks.** Every TraceSpan construction mirrors its name
///     onto a per-thread lock-free frame array; a dedicated sampler
///     thread wakes `hz` times per second and folds each live thread's
///     current stack into `a;b;c -> count` sample counts (the
///     flamegraph.pl collapsed format). Sampling is wait-free for the
///     sampled threads: the sampler only reads atomics, and a torn
///     mid-push read costs one slightly-stale sample, never a crash.
///
///   * **Exact phase CPU.** Spans whose kind is in the CPU mask (by
///     default the bounded "phase" kinds: search, localize, triage
///     phases, slice, rank -- not the per-candidate / per-oracle-call
///     leaves, which fire thousands of times per request) stamp
///     CLOCK_THREAD_CPUTIME_ID on enter and exit and charge the delta
///     to the innermost stamped span, yielding exact per-phase CPU
///     self-time. Leaf CPU folds into the enclosing phase. The mask is
///     a knob: widening it buys leaf-level exactness at ~240ns per
///     stamp (measured; the thread CPU clock is a real syscall).
///
/// With profiling disabled (the default) the per-span cost is one
/// relaxed atomic load and branch; nothing else runs. With it enabled,
/// suggestions stay byte-identical: the profiler observes the span
/// stream and touches no search state (pinned by ProfilerTest).
///
/// Exports: collapsed stacks (`writeCollapsed`) and JSON
/// (`writeJson`); consumers take ProfileSnapshots and subtract them
/// (`deltaFrom`) to carve capture windows out of the cumulative state,
/// exactly like HistogramSnapshot.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SUPPORT_PROFILER_H
#define SEMINAL_SUPPORT_PROFILER_H

#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace seminal {

enum class SpanKind : uint8_t; // support/Trace.h

namespace prof {

/// Opaque per-thread profiler state (defined in Profiler.cpp).
struct ThreadState;

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID),
/// nanoseconds. The ledger stamps this around each request; with
/// sessions pinned to one shard worker the delta is exactly the
/// request's CPU.
uint64_t threadCpuNs();

/// CPU time consumed by the whole process (CLOCK_PROCESS_CPUTIME_ID),
/// nanoseconds. Upper bound for any sum of per-thread deltas (pinned by
/// the ledger reconciliation test).
uint64_t processCpuNs();

/// Exact CPU self-time attributed to one span name.
struct CpuEntry {
  uint64_t SelfNs = 0;
  uint64_t Enters = 0;
};

/// One consistent copy of the profiler's cumulative state. Subtract two
/// of them (deltaFrom) to get the activity of a window without ever
/// resetting the live profiler.
struct ProfileSnapshot {
  /// Folded stack ("root;child;leaf") -> samples observed there.
  std::map<std::string, uint64_t> Stacks;
  /// Span name -> exact CPU self-time (stamped kinds only).
  std::map<std::string, CpuEntry> Cpu;
  uint64_t Samples = 0;   ///< Total samples (== sum of Stacks values).
  uint64_t Truncated = 0; ///< Samples clipped at MaxDepth frames.
  uint64_t Threads = 0;   ///< Thread slots registered at snapshot time.

  /// Window view: this snapshot minus \p Prev, entry-wise and
  /// saturating; empty entries are dropped.
  ProfileSnapshot deltaFrom(const ProfileSnapshot &Prev) const;

  /// flamegraph.pl collapsed format: one `stack count` line per entry,
  /// lexicographic stack order (deterministic output for a fixed
  /// snapshot).
  void writeCollapsed(std::ostream &OS) const;

  /// Machine-readable rendering: samples/truncated/threads totals, the
  /// stack table, and the exact-CPU table.
  void writeJson(std::ostream &OS) const;
};

/// Process-wide sampling profiler. One instance (profiler()) serves the
/// whole tree because the TraceSpan hooks are global; tests drive it
/// through the same singleton and clear() between cases.
class Profiler {
public:
  /// Frames kept per thread; deeper stacks keep correct depth
  /// accounting but fold their tail into the last kept frame.
  static constexpr unsigned MaxDepth = 64;
  /// Fixed slots in each thread's exact-CPU table (span names are
  /// string literals from a small closed set; overflow lands in a
  /// catch-all "(other)" entry rather than allocating).
  static constexpr unsigned CpuSlots = 128;

  struct Options {
    /// Sampler frequency; 0 = no sampler thread (hooks and exact CPU
    /// still run; tests tick manually via sampleOnce()).
    unsigned SampleHz = 99;
    /// Bitmask over SpanKind selecting which spans stamp exact CPU
    /// (bit = 1u << unsigned(Kind)). Defaults to defaultCpuKindMask().
    uint32_t CpuKindMask;
    Options();
  };

  Profiler() = default;
  Profiler(const Profiler &) = delete;
  Profiler &operator=(const Profiler &) = delete;
  ~Profiler() { stop(); }

  /// Enables the span hooks and (SampleHz > 0) starts the sampler
  /// thread. Idempotent while running.
  void start(const Options &Opts);

  /// Stops the sampler and disables the hooks. Spans still open keep
  /// their tokens and unwind safely; accumulated data stays readable.
  void stop();

  bool running() const;
  unsigned sampleHz() const;

  /// Takes one sample of every registered thread's stack right now.
  /// The sampler thread calls this on its timer; tests call it
  /// directly for deterministic tick injection.
  void sampleOnce();

  /// Copies the cumulative state (registry lock; safe any time).
  ProfileSnapshot snapshot() const;

  /// Sleeps ~\p Ms milliseconds (50ms slices, honoring \p Abort) and
  /// returns the profile delta over that window.
  ProfileSnapshot captureDelta(unsigned Ms,
                               const std::atomic<bool> *Abort = nullptr) const;

  /// Drops accumulated samples and CPU tables (thread registrations
  /// survive; open spans keep valid positions). Tests only.
  void clear();

  // Span hooks -- called from TraceSpan via prof::spanEnter/spanExit;
  // public so tests can drive a synthetic span tree directly.

  /// Registers the span on the calling thread's stack (and CPU stack if
  /// \p Kind is stamped). Returns an opaque token for exitSpan; 0 means
  /// "nothing recorded" and is safe to pass back.
  uint32_t enterSpan(SpanKind Kind, const char *Name);
  void exitSpan(uint32_t Token);

  /// Default CPU mask: the bounded per-request "phase" kinds. See the
  /// file comment for the cost rationale.
  static uint32_t defaultCpuKindMask();

  // Internal (thread_local lifecycle; not for direct use) -------------

  /// Returns the calling thread's state, registering (or reusing a
  /// parked state) on first use.
  ThreadState *acquireThreadState();
  /// Parks \p State for reuse when its owning thread exits.
  void releaseThreadState(ThreadState *State);

private:
  void samplerMain();
  void sampleLocked() SEMINAL_REQUIRES(Mutex);

  mutable sync::Mutex Mutex{sync::LockRank::Profiler, "prof.registry"};
  sync::CondVar WakeCV; ///< Signals the sampler to stop early.
  /// All states ever created; freed only at process exit. Exited
  /// threads park their state on FreeStates for reuse, so the vector is
  /// bounded by the peak concurrent thread count.
  std::vector<ThreadState *> Threads SEMINAL_GUARDED_BY(Mutex);
  std::vector<ThreadState *> FreeStates SEMINAL_GUARDED_BY(Mutex);
  /// Folded sample counts, owned by whoever holds the registry lock.
  std::map<std::string, uint64_t> Stacks SEMINAL_GUARDED_BY(Mutex);
  uint64_t Samples SEMINAL_GUARDED_BY(Mutex) = 0;
  uint64_t Truncated SEMINAL_GUARDED_BY(Mutex) = 0;
  std::thread Sampler SEMINAL_GUARDED_BY(Mutex);
  bool SamplerRunning SEMINAL_GUARDED_BY(Mutex) = false;
  bool StopRequested SEMINAL_GUARDED_BY(Mutex) = false;
  unsigned Hz SEMINAL_GUARDED_BY(Mutex) = 0;
};

/// The process-wide profiler the TraceSpan hooks feed.
Profiler &profiler();

namespace detail {
/// Hot-path gate: one relaxed load per span when profiling is off.
extern std::atomic<bool> Enabled;
extern std::atomic<uint32_t> CpuKindMask;
} // namespace detail

inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// TraceSpan-side hooks (out of line; only reached when enabled()).
uint32_t spanEnter(SpanKind Kind, const char *Name);
void spanExit(uint32_t Token);

} // namespace prof
} // namespace seminal

#endif // SEMINAL_SUPPORT_PROFILER_H
