//===- Categories.h - The paper's five result buckets -----------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.2 places every analyzed file in one of five categories by
/// comparing three messages (checker, ours-with-triage, ours-without):
///
///   1. tie, triage unnecessary        3. ours better, triage unnecessary
///   2. tie, triage necessary          4. ours better, triage necessary
///   5. checker better
///
/// Figure 5 stacks these per programmer and per assignment; the headline
/// statistics (ours better 19%, checker better 17%, no worse 83%, triage
/// helps 16%) are arithmetic over the same buckets.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_EVAL_CATEGORIES_H
#define SEMINAL_EVAL_CATEGORIES_H

#include "eval/Judge.h"

#include <array>
#include <string>

namespace seminal {

/// The paper's five buckets (1-based, matching the prose).
enum class Category {
  TieNoTriage = 1,
  TieNeedsTriage = 2,
  OursBetterNoTriage = 3,
  OursBetterNeedsTriage = 4,
  CheckerBetter = 5,
};

std::string categoryName(Category C);

/// Buckets one file from its three judged qualities.
Category categorize(Quality Checker, Quality Ours, Quality OursNoTriage);

/// Per-group category counts plus the tie-but-both-poor refinement the
/// paper reports separately (its 9%).
struct CategoryCounts {
  std::array<unsigned, 6> Count = {}; ///< Index by int(Category); [0] unused.
  unsigned BothPoorTies = 0;
  unsigned Total = 0;

  void add(Category C, bool BothPoor) {
    ++Count[size_t(C)];
    ++Total;
    if (BothPoor &&
        (C == Category::TieNoTriage || C == Category::TieNeedsTriage))
      ++BothPoorTies;
  }

  unsigned oursBetter() const { return Count[3] + Count[4]; }
  unsigned checkerBetter() const { return Count[5]; }
  unsigned noWorse() const {
    return Count[1] + Count[2] + Count[3] + Count[4];
  }
  unsigned triageHelped() const { return Count[2] + Count[4]; }

  double pct(unsigned N) const {
    return Total == 0 ? 0.0 : 100.0 * double(N) / double(Total);
  }
};

} // namespace seminal

#endif // SEMINAL_EVAL_CATEGORIES_H
