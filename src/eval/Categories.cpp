//===- Categories.cpp - The paper's five result buckets --------------------==//

#include "eval/Categories.h"

using namespace seminal;

std::string seminal::categoryName(Category C) {
  switch (C) {
  case Category::TieNoTriage:
    return "tie (no triage needed)";
  case Category::TieNeedsTriage:
    return "tie (triage needed)";
  case Category::OursBetterNoTriage:
    return "ours better (no triage needed)";
  case Category::OursBetterNeedsTriage:
    return "ours better (triage needed)";
  case Category::CheckerBetter:
    return "checker better";
  }
  return "?";
}

Category seminal::categorize(Quality Checker, Quality Ours,
                             Quality OursNoTriage) {
  if (Checker > Ours)
    return Category::CheckerBetter;
  if (Ours > Checker)
    return OursNoTriage > Checker ? Category::OursBetterNoTriage
                                  : Category::OursBetterNeedsTriage;
  // Tie: did we need triage to reach it?
  return OursNoTriage >= Checker ? Category::TieNoTriage
                                 : Category::TieNeedsTriage;
}
