//===- Runner.h - Corpus evaluation driver ----------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the three message producers over every analyzed corpus file --
/// conventional checker, SEMINAL, SEMINAL with triage disabled -- judges
/// each, buckets the file (Figure 5), and optionally times the tool under
/// the three configurations of Figure 7 (full; the expensive nested-match
/// reparenthesizing change disabled; triage disabled).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_EVAL_RUNNER_H
#define SEMINAL_EVAL_RUNNER_H

#include "corpus/Generator.h"
#include "eval/Categories.h"

#include <map>
#include <vector>

namespace seminal {

/// One evaluated file. The effort counters (oracle calls, inference
/// runs, acceleration counters, per-configuration wall-clock) are always
/// recorded -- they are free byproducts of runs the evaluation performs
/// anyway -- so telemetry consumers never see zero-filled fields;
/// MeasureTimes only adds the extra no-reparen timing run of Figure 7.
struct FileOutcome {
  int Programmer = 0;
  int Assignment = 0;
  Quality Checker = Quality::Poor;
  Quality Ours = Quality::Poor;
  Quality OursNoTriage = Quality::Poor;
  Category Bucket = Category::TieNoTriage;

  size_t OracleCallsFull = 0;
  size_t OracleCallsNoTriage = 0;
  size_t InferenceRunsFull = 0;
  /// Acceleration-layer counters of the full-configuration run.
  AccelCounters Accel;
  double FullSeconds = 0;
  double NoReparenSeconds = 0; ///< Perf-bug change disabled.
  double NoTriageSeconds = 0;

  /// Per-run telemetry record for the full-configuration run, populated
  /// when EvalOptions::BuildReports is set (identity, quality and effort
  /// sections all filled; see obs/RunReport.h).
  obs::RunReport Report;
};

/// Evaluation-wide knobs.
struct EvalOptions {
  /// Also measure wall-clock for the three Figure 7 configurations.
  bool MeasureTimes = false;

  /// Build a full obs::RunReport per file (attaches a TelemetrySink to
  /// the main run; observational only).
  bool BuildReports = false;

  /// Run the main configuration with triage disabled -- the synthetic
  /// quality-regression knob the telemetry CI gate is tested against.
  /// The "ours" judgment and the bucket then reflect the degraded
  /// configuration.
  bool DisableTriage = false;
};

struct EvalResults {
  std::vector<FileOutcome> Files;

  CategoryCounts totals() const;
  std::map<int, CategoryCounts> byProgrammer() const;
  std::map<int, CategoryCounts> byAssignment() const;
};

/// Evaluates every analyzed file of \p TheCorpus.
EvalResults runEvaluation(const Corpus &TheCorpus,
                          const EvalOptions &Opts = {});

/// Evaluates a single file (exposed for tests).
FileOutcome evaluateFile(const CorpusFile &File, const EvalOptions &Opts);

} // namespace seminal

#endif // SEMINAL_EVAL_RUNNER_H
