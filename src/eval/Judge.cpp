//===- Judge.cpp - Automated message-quality judgment ----------------------==//

#include "eval/Judge.h"

#include "core/Oracle.h"

#include <functional>

using namespace seminal;
using namespace seminal::caml;

std::string seminal::qualityName(Quality Q) {
  switch (Q) {
  case Quality::Poor:
    return "poor";
  case Quality::GoodLocation:
    return "good-location";
  case Quality::Accurate:
    return "accurate";
  }
  return "?";
}

std::optional<unsigned> seminal::pathDistance(const NodePath &A,
                                              const NodePath &B) {
  if (A.DeclIndex != B.DeclIndex)
    return std::nullopt;
  const auto &Short = A.Steps.size() <= B.Steps.size() ? A.Steps : B.Steps;
  const auto &Long = A.Steps.size() <= B.Steps.size() ? B.Steps : A.Steps;
  for (size_t I = 0; I < Short.size(); ++I)
    if (Short[I] != Long[I])
      return std::nullopt;
  return unsigned(Long.size() - Short.size());
}

std::optional<NodePath> seminal::pathAtOffset(Program &Prog,
                                              uint32_t Offset) {
  std::optional<NodePath> Best;
  unsigned BestDepth = 0;
  for (unsigned D = 0; D < Prog.Decls.size(); ++D) {
    Decl *TheDecl = Prog.Decls[D].get();
    if (TheDecl->kind() != Decl::Kind::Let || !TheDecl->Rhs)
      continue;
    std::function<void(const NodePath &, Expr *, unsigned)> Rec =
        [&](const NodePath &Path, Expr *Node, unsigned Depth) {
          if (Node->Span.isValid() && Node->Span.contains(Offset)) {
            if (!Best || Depth >= BestDepth) {
              Best = Path;
              BestDepth = Depth;
            }
          }
          for (unsigned I = 0; I < Node->numChildren(); ++I)
            Rec(Path.descend(I), Node->child(I), Depth + 1);
        };
    Rec(NodePath(D), TheDecl->Rhs.get(), 0);
  }
  return Best;
}

namespace {

/// Best (smallest) distance from \p Path to any ground-truth node.
std::optional<unsigned> bestDistance(const NodePath &Path,
                                     const std::vector<GroundTruth> &Truths) {
  std::optional<unsigned> Best;
  for (const auto &T : Truths) {
    auto D = pathDistance(Path, T.Path);
    if (D && (!Best || *D < *Best))
      Best = D;
  }
  return Best;
}

} // namespace

Quality seminal::judgeSuggestion(const Suggestion &S,
                                 const std::vector<GroundTruth> &Truths) {
  // "Suggesting this entire code fragment be replaced does not help the
  // programmer" (Section 2.4): a removal or adaptation of a large
  // subtree is not a useful message no matter where it points.
  if ((S.Kind == ChangeKind::Removal || S.Kind == ChangeKind::Adaptation) &&
      S.OriginalSize > 6)
    return Quality::Poor;

  auto D = bestDistance(S.Path, Truths);
  if (!D)
    return Quality::Poor;

  // Note: a removal that merely *hints* at an unbound variable is graded
  // GoodLocation, not Accurate -- the checker's "Unbound value x" names
  // the problem outright, and the paper's evaluated prototype did not yet
  // draw the unbound conclusion at all (Section 3.3 lists it as a
  // straightforward improvement). This keeps the judge faithful to the
  // system the paper measured.
  bool ProposesEdit = S.Kind == ChangeKind::Constructive ||
                      S.Kind == ChangeKind::PatternFix;
  // An adaptation pinned on exactly the mutated node names the expected
  // type at the right place -- as informative as an edit (Section 2.3).
  if (S.Kind == ChangeKind::Adaptation && *D == 0)
    ProposesEdit = true;
  if (*D <= 1 && ProposesEdit)
    return Quality::Accurate;
  if (*D <= 3)
    return Quality::GoodLocation;
  return Quality::Poor;
}

Quality seminal::judgeSeminal(const SeminalReport &Report,
                              const std::vector<GroundTruth> &Truths) {
  if (Report.Suggestions.empty())
    return Quality::Poor;
  return judgeSuggestion(Report.Suggestions.front(), Truths);
}

int seminal::rankOfTrueFix(const SeminalReport &Report,
                           const std::vector<GroundTruth> &Truths) {
  for (size_t I = 0; I < Report.Suggestions.size(); ++I)
    if (judgeSuggestion(Report.Suggestions[I], Truths) == Quality::Accurate)
      return int(I) + 1;
  return 0;
}

Quality seminal::judgeChecker(Program &Prog,
                              const std::optional<TypeError> &Error,
                              const std::vector<GroundTruth> &Truths) {
  if (!Error || !Error->Span.isValid())
    return Quality::Poor;

  auto Path = pathAtOffset(Prog, Error->Span.Begin.Offset);
  if (!Path)
    return Quality::Poor;

  // "Unbound value f" against a missing-rec mutation in f's own
  // declaration names the exact problem: as accurate as a message gets
  // (the paper concedes the checker wins the unbound-identifier cases).
  if (Error->TheKind == caml::TypeError::Kind::Unbound)
    for (const auto &T : Truths)
      if (T.Kind == MutationKind::MissingRec &&
          T.Path.DeclIndex == Path->DeclIndex &&
          T.Before.find(Error->Name) != std::string::npos)
        return Quality::Accurate;

  auto D = bestDistance(*Path, Truths);
  if (!D || *D > 3)
    return Quality::Poor;

  // The paper's misleading-ness test: a location is useful only if some
  // change there can make the program type-check. A reader naturally
  // considers the immediately enclosing expression too (blaming one
  // operand of a wrong operator points a human at the operator), so the
  // blamed node's parent is also probed. Two oracle calls.
  // Identify the matched truth: the other injected errors get masked
  // (wildcarded) during the usefulness probes, so a location is judged
  // against *its* error alone -- with several independent mistakes, no
  // single change can make the whole file check.
  const GroundTruth *Matched = nullptr;
  {
    unsigned BestD = ~0u;
    for (const auto &T : Truths) {
      auto DT = pathDistance(*Path, T.Path);
      if (DT && *DT < BestD) {
        BestD = *DT;
        Matched = &T;
      }
    }
  }

  // Temporarily wildcard every unmatched truth site.
  std::vector<std::pair<caml::NodePath, ExprPtr>> Masked;
  std::vector<unsigned> RecFlipped;
  for (const auto &T : Truths) {
    if (&T == Matched)
      continue;
    if (T.Path.Steps.empty()) {
      // Declaration-level truth (missing rec): restore the flag.
      Decl *D = Prog.Decls[T.Path.DeclIndex].get();
      if (D->kind() == Decl::Kind::Let && !D->IsRec) {
        D->IsRec = true;
        RecFlipped.push_back(T.Path.DeclIndex);
      }
      continue;
    }
    if (resolvePath(Prog, T.Path))
      Masked.emplace_back(T.Path,
                          replaceAtPath(Prog, T.Path, makeWildcard()));
  }

  Expr *Blamed = resolvePath(Prog, *Path);
  bool Useful = false;
  if (Blamed) {
    CamlOracle O;
    ExprPtr Old = replaceAtPath(Prog, *Path, makeWildcard());
    Useful = O.typechecks(Prog);
    replaceAtPath(Prog, *Path, std::move(Old));
    // The parent probe only extends to small enclosing expressions (an
    // operator application around the blamed operand); pointing inside a
    // large subtree whose wholesale replacement is the only fix is the
    // canonical misleading message (Figure 2).
    if (!Useful && !Path->Steps.empty()) {
      NodePath Parent = *Path;
      Parent.Steps.pop_back();
      Expr *ParentNode = resolvePath(Prog, Parent);
      if (ParentNode && ParentNode->size() <= 6) {
        ExprPtr OldParent = replaceAtPath(Prog, Parent, makeWildcard());
        Useful = O.typechecks(Prog);
        replaceAtPath(Prog, Parent, std::move(OldParent));
      }
    }
  } else if (Path->Steps.empty()) {
    Useful = true; // declaration-level blame
  }

  // Undo the masking.
  for (auto It = Masked.rbegin(); It != Masked.rend(); ++It)
    replaceAtPath(Prog, It->first, std::move(It->second));
  for (unsigned DeclIndex : RecFlipped)
    Prog.Decls[DeclIndex]->IsRec = false;

  if (!Useful)
    return Quality::Poor;

  // Blaming the mutated node or one of its immediate constituents (the
  // offending argument of a swapped call, say) identifies the problem.
  if (*D <= 1)
    return Quality::Accurate;
  return Quality::GoodLocation;
}
