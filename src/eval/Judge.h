//===- Judge.h - Automated message-quality judgment -------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanizes the paper's manual analysis (Section 3.1). The authors
/// separated two measurements per message: did it identify a good
/// *location*, and did it *describe the problem* at that location
/// correctly. With ground-truth mutations we can decide both
/// automatically:
///
///   * A SEMINAL suggestion is ACCURATE when its location is (within one
///     tree edge of) the mutated node and it proposes an actual edit
///     (constructive/pattern fix, or the unbound-variable conclusion);
///     GOOD-LOCATION when its path is prefix-related to the truth within
///     three edges; POOR otherwise.
///   * A checker diagnostic is judged by the paper's own misleading-ness
///     criterion: a location is *useful* only if some change there can
///     make the program type-check -- tested with one oracle call by
///     wildcarding the blamed node (Section 1's point (3)). A useful
///     location is ACCURATE when it is exactly the mutated node and
///     GOOD-LOCATION when prefix-related within three edges.
///
/// Files with several mutations are judged against their best-matching
/// mutation.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_EVAL_JUDGE_H
#define SEMINAL_EVAL_JUDGE_H

#include "core/Seminal.h"
#include "corpus/Mutation.h"
#include "minicaml/Ast.h"

#include <optional>

namespace seminal {

/// Ordered message quality (higher is better).
enum class Quality { Poor = 0, GoodLocation = 1, Accurate = 2 };

/// Renders for reports.
std::string qualityName(Quality Q);

/// Tree distance between prefix-related paths: number of edges between
/// them when one is an ancestor of the other (0 = same node); nullopt
/// when the paths lie in different subtrees or declarations.
std::optional<unsigned> pathDistance(const caml::NodePath &A,
                                     const caml::NodePath &B);

/// Deepest expression whose span contains \p Offset, as a path.
std::optional<caml::NodePath> pathAtOffset(caml::Program &Prog,
                                           uint32_t Offset);

/// Judges one SEMINAL suggestion against the ground truth (the per-item
/// criterion judgeSeminal applies to the top-ranked one).
Quality judgeSuggestion(const Suggestion &S,
                        const std::vector<GroundTruth> &Truths);

/// Judges the top-ranked SEMINAL suggestion against the ground truth.
Quality judgeSeminal(const SeminalReport &Report,
                     const std::vector<GroundTruth> &Truths);

/// 1-based rank of the first suggestion judged Accurate against the
/// ground truth -- the telemetry "rank of the true fix". 0 when no
/// ranked suggestion is Accurate.
int rankOfTrueFix(const SeminalReport &Report,
                  const std::vector<GroundTruth> &Truths);

/// Judges the conventional checker message against the ground truth.
/// \p Prog must be parsed from the same source the error refers to.
Quality judgeChecker(caml::Program &Prog,
                     const std::optional<caml::TypeError> &Error,
                     const std::vector<GroundTruth> &Truths);

} // namespace seminal

#endif // SEMINAL_EVAL_JUDGE_H
