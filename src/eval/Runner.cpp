//===- Runner.cpp - Corpus evaluation driver -------------------------------==//

#include "eval/Runner.h"

#include "core/Oracle.h"
#include "minicaml/Parser.h"

#include <cassert>
#include <chrono>

using namespace seminal;
using namespace seminal::caml;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Runs SEMINAL under \p Opts and reports wall-clock seconds.
double timeRun(const std::string &Source, const SeminalOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  SeminalReport R = runSeminalOnSource(Source, Opts);
  (void)R;
  return secondsSince(Start);
}

} // namespace

FileOutcome seminal::evaluateFile(const CorpusFile &File,
                                  const EvalOptions &Opts) {
  FileOutcome Out;
  Out.Programmer = File.Programmer;
  Out.Assignment = File.Assignment;

  ParseResult PR = parseProgram(File.Source);
  assert(PR.ok() && "corpus files are printed ASTs; they must parse");
  Program Prog = std::move(*PR.Prog);

  // Conventional checker.
  CamlOracle O;
  auto CheckerError = O.conventionalError(Prog);
  Out.Checker = judgeChecker(Prog, CheckerError, File.Truths);

  // SEMINAL, full configuration.
  SeminalOptions Full;
  auto Start = std::chrono::steady_clock::now();
  SeminalReport RFull = runSeminal(Prog, Full);
  Out.FullSeconds = secondsSince(Start);
  Out.OracleCallsFull = RFull.OracleCalls;
  Out.Ours = judgeSeminal(RFull, File.Truths);

  // SEMINAL without triage.
  SeminalOptions NoTriage;
  NoTriage.Search.EnableTriage = false;
  Start = std::chrono::steady_clock::now();
  SeminalReport RNoTriage = runSeminal(Prog, NoTriage);
  Out.NoTriageSeconds = secondsSince(Start);
  Out.OursNoTriage = judgeSeminal(RNoTriage, File.Truths);

  Out.Bucket = categorize(Out.Checker, Out.Ours, Out.OursNoTriage);

  if (Opts.MeasureTimes) {
    SeminalOptions NoReparen;
    NoReparen.Search.Enum.EnableMatchReparen = false;
    Out.NoReparenSeconds = timeRun(File.Source, NoReparen);
  }
  return Out;
}

EvalResults seminal::runEvaluation(const Corpus &TheCorpus,
                                   const EvalOptions &Opts) {
  EvalResults Results;
  for (const CorpusFile &File : TheCorpus.Analyzed)
    Results.Files.push_back(evaluateFile(File, Opts));
  return Results;
}

CategoryCounts EvalResults::totals() const {
  CategoryCounts C;
  for (const auto &F : Files)
    C.add(F.Bucket, F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return C;
}

std::map<int, CategoryCounts> EvalResults::byProgrammer() const {
  std::map<int, CategoryCounts> M;
  for (const auto &F : Files)
    M[F.Programmer].add(F.Bucket,
                        F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return M;
}

std::map<int, CategoryCounts> EvalResults::byAssignment() const {
  std::map<int, CategoryCounts> M;
  for (const auto &F : Files)
    M[F.Assignment].add(F.Bucket,
                        F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return M;
}
