//===- Runner.cpp - Corpus evaluation driver -------------------------------==//

#include "eval/Runner.h"

#include "core/Oracle.h"
#include "minicaml/Hash.h"
#include "minicaml/Parser.h"

#include <cassert>
#include <chrono>

using namespace seminal;
using namespace seminal::caml;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Runs SEMINAL under \p Opts and reports wall-clock seconds.
double timeRun(const std::string &Source, const SeminalOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  SeminalReport R = runSeminalOnSource(Source, Opts);
  (void)R;
  return secondsSince(Start);
}

} // namespace

FileOutcome seminal::evaluateFile(const CorpusFile &File,
                                  const EvalOptions &Opts) {
  FileOutcome Out;
  Out.Programmer = File.Programmer;
  Out.Assignment = File.Assignment;

  ParseResult PR = parseProgram(File.Source);
  assert(PR.ok() && "corpus files are printed ASTs; they must parse");
  Program Prog = std::move(*PR.Prog);

  // Conventional checker.
  CamlOracle O;
  auto CheckerError = O.conventionalError(Prog);
  Out.Checker = judgeChecker(Prog, CheckerError, File.Truths);

  // SEMINAL, main configuration (full, unless the synthetic-regression
  // knob degrades it by disabling triage).
  SeminalOptions Full;
  Full.Search.EnableTriage = !Opts.DisableTriage;
  obs::TelemetrySink Telemetry;
  if (Opts.BuildReports)
    Full.Search.Telemetry = &Telemetry;
  auto Start = std::chrono::steady_clock::now();
  SeminalReport RFull = runSeminal(Prog, Full);
  Out.FullSeconds = secondsSince(Start);
  Out.OracleCallsFull = RFull.OracleCalls;
  Out.InferenceRunsFull = RFull.InferenceRuns;
  Out.Accel = RFull.Accel;
  Out.Ours = judgeSeminal(RFull, File.Truths);

  // SEMINAL without triage.
  SeminalOptions NoTriage;
  NoTriage.Search.EnableTriage = false;
  Start = std::chrono::steady_clock::now();
  SeminalReport RNoTriage = runSeminal(Prog, NoTriage);
  Out.NoTriageSeconds = secondsSince(Start);
  Out.OracleCallsNoTriage = RNoTriage.OracleCalls;
  Out.OursNoTriage = judgeSeminal(RNoTriage, File.Truths);

  Out.Bucket = categorize(Out.Checker, Out.Ours, Out.OursNoTriage);

  if (Opts.MeasureTimes) {
    SeminalOptions NoReparen;
    NoReparen.Search.Enum.EnableMatchReparen = false;
    Out.NoReparenSeconds = timeRun(File.Source, NoReparen);
  }

  if (Opts.BuildReports) {
    obs::RunReport &R = Out.Report;
    R.ProgramId = "p" + std::to_string(File.Programmer) + "/a" +
                  std::to_string(File.Assignment) + "/c" +
                  std::to_string(File.ClassId);
    R.Programmer = File.Programmer;
    R.Assignment = File.Assignment;
    R.ClassId = File.ClassId;
    R.SourceHash = hashProgram(Prog);
    for (const GroundTruth &T : File.Truths)
      R.MutationKinds.push_back(mutationKindName(T.Kind));
    fillRunReport(R, RFull, &Telemetry, Out.FullSeconds);
    R.QualityChecker = qualityName(Out.Checker);
    R.QualityOurs = qualityName(Out.Ours);
    R.QualityNoTriage = qualityName(Out.OursNoTriage);
    R.Bucket = int(Out.Bucket);
    R.RankOfTrueFix = rankOfTrueFix(RFull, File.Truths);
  }
  return Out;
}

EvalResults seminal::runEvaluation(const Corpus &TheCorpus,
                                   const EvalOptions &Opts) {
  EvalResults Results;
  for (const CorpusFile &File : TheCorpus.Analyzed)
    Results.Files.push_back(evaluateFile(File, Opts));
  return Results;
}

CategoryCounts EvalResults::totals() const {
  CategoryCounts C;
  for (const auto &F : Files)
    C.add(F.Bucket, F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return C;
}

std::map<int, CategoryCounts> EvalResults::byProgrammer() const {
  std::map<int, CategoryCounts> M;
  for (const auto &F : Files)
    M[F.Programmer].add(F.Bucket,
                        F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return M;
}

std::map<int, CategoryCounts> EvalResults::byAssignment() const {
  std::map<int, CategoryCounts> M;
  for (const auto &F : Files)
    M[F.Assignment].add(F.Bucket,
                        F.Checker == Quality::Poor && F.Ours == Quality::Poor);
  return M;
}
