//===- Slice.h - Constraint-provenance error slicing ------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error slicing over recorded constraint provenance (DESIGN.md section
/// 9). One provenance-instrumented inference run reconstructs the
/// connected component of the constraint graph that contains the clash;
/// mapping that component back to AST nodes yields
///
///   * Influence -- every focus-declaration node whose constraints can
///     reach the clash. The conservative set: a subtree disjoint from it
///     provably cannot contain the fix, which is what lets the searcher
///     skip oracle calls without changing any verdict.
///   * Core -- Influence greedily minimized by wildcard re-checks to the
///     antichain of nodes whose constraints are jointly unsatisfiable;
///     the presentation set ("these program points disagree") and the
///     ranker's boost set.
///
/// The split matters: pruning must stay conservative to keep suggestion
/// lists bit-identical, while presentation wants the smallest honest set.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_ANALYSIS_SLICE_H
#define SEMINAL_ANALYSIS_SLICE_H

#include "minicaml/Ast.h"

#include <string>
#include <vector>

namespace seminal {
namespace analysis {

/// Tuning knobs for computeErrorSlice.
struct SliceOptions {
  /// Run the greedy wildcard minimization that shrinks Influence to Core.
  /// Off leaves Core == Influence (cheaper; pruning power is identical).
  bool Minimize = true;

  /// Upper bound on internal re-inference runs spent minimizing. These
  /// are private typecheckProgram calls, never oracle calls.
  unsigned MaxMinimizeChecks = 48;
};

/// The result of slicing one ill-typed program.
struct ErrorSlice {
  /// False when no slice could be computed: the program type-checks, the
  /// failure is not a unification clash (unbound name, arity, record
  /// shape), or the failing declaration has no expression body. Consumers
  /// must fall back to unguided behavior.
  bool Valid = false;

  /// Declaration the clash was reported in.
  unsigned DeclIndex = 0;

  /// The clashing constraint, rendered ("int" vs "string"); Cyclic marks
  /// an occurs-check failure instead of a constructor clash.
  std::string ClashLeft, ClashRight;
  bool Cyclic = false;

  /// Span of the node whose constraint clashed.
  SourceSpan ClashSpan;

  /// Conservative set: paths (within DeclIndex) of every node whose
  /// constraints connect to the clash component, in preorder. Parallel
  /// to InfluenceSpans.
  std::vector<caml::NodePath> Influence;
  std::vector<SourceSpan> InfluenceSpans;

  /// Minimized set: the jointly-unsatisfiable antichain, a subset of
  /// Influence. Parallel to CoreSpans.
  std::vector<caml::NodePath> Core;
  std::vector<SourceSpan> CoreSpans;

  /// Rendered named types involved in the clash component (deduplicated,
  /// sorted; arrows/tuples/vars omitted).
  std::vector<std::string> InvolvedTypes;

  /// Constraints attributed to prefix declarations or the focus
  /// declaration's header (binding/params) connect to the clash. When set,
  /// whole-subtree adaptation pruning is disabled (see SliceGuide).
  bool PrefixInfluence = false;
  bool DeclHeaderInfluence = false;

  /// True for a span-anchored fallback slice: the failure was not a
  /// unification clash (unbound name, arity, record shape, ...), so no
  /// constraint component exists; instead the core is the deepest node
  /// enclosing the checker's error span, its subtree plus ancestors form
  /// the influence set, and validity REQUIRES the carved witness to
  /// verify -- the witness check is the sole soundness argument here.
  bool SpanAnchored = false;

  /// True when the carved witness -- the focus declaration with every
  /// maximal subtree disjoint from the core replaced by a wildcard -- was
  /// re-checked internally and still fails. Since a wildcard is maximally
  /// permissive (a syntactic value that imposes no constraints), any
  /// removal probe at a core-disjoint node keeps a superset of the
  /// witness's constraints and therefore must also fail; the guide's
  /// stronger core-disjoint pruning rule is valid exactly when this holds.
  bool CoreWitnessOk = false;

  /// Total expression nodes in the focus declaration (prune-ratio
  /// denominator) and bookkeeping for the stats report.
  size_t DeclNodes = 0;
  size_t MinimizeChecks = 0;

  /// Human-readable one-screen rendering (the CLI `--slice` block).
  std::string render(const std::string &SourceName = "") const;
};

/// Computes the error slice of \p Prog, whose first \p FocusDecl + 1
/// declarations must form an ill-typed prefix (declarations past
/// FocusDecl are ignored). Runs provenance-instrumented inference
/// internally; never touches the search oracle.
ErrorSlice computeErrorSlice(const caml::Program &Prog, unsigned FocusDecl,
                             const SliceOptions &Opts = SliceOptions());

} // namespace analysis
} // namespace seminal

#endif // SEMINAL_ANALYSIS_SLICE_H
