//===- Slice.cpp - Constraint-provenance error slicing ---------------------==//

#include "analysis/Slice.h"

#include "analysis/Provenance.h"
#include "minicaml/Infer.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace seminal;
using namespace seminal::analysis;
using namespace seminal::caml;

namespace {

/// AST nodes attributed to the clash component, by node kind.
struct Members {
  std::unordered_set<const void *> Exprs;
  std::unordered_set<const void *> Patterns;
  std::unordered_set<const void *> Decls;

  void add(const ProvenanceTag &Tag) {
    switch (Tag.Kind) {
    case ProvenanceNodeKind::None:
      break;
    case ProvenanceNodeKind::Expr:
      Exprs.insert(Tag.Node);
      break;
    case ProvenanceNodeKind::Pattern:
      Patterns.insert(Tag.Node);
      break;
    case ProvenanceNodeKind::Decl:
      Decls.insert(Tag.Node);
      break;
    }
  }
};

/// Worklist closure: starting from the clash seed, pull in every event
/// that transitively shares a type variable with the component, then
/// attribute every touched term to its allocating node. \p InvolvedOut
/// receives the named constructors seen in the component.
Members closeOverClash(const ProvenanceSink &Sink,
                       std::vector<std::string> &InvolvedOut) {
  Members M;

  // Variable object -> indices of events touching it.
  std::unordered_map<const Type *, std::vector<size_t>> Index;
  // Constructor object -> indices of events touching it. Used for the
  // clash seed only: by clash time prune() may have resolved the original
  // variables away entirely (e.g. instantiate() returns the pruned type),
  // so the clashing constructor OBJECTS are the remaining witnesses of
  // the flow -- the binding events that produced them flattened both
  // sides and therefore recorded the same objects. General con-sharing is
  // deliberately NOT a connector (instantiation shares nullary cons
  // across every use of a scheme, which would merge unrelated uses).
  std::unordered_map<const Type *, std::vector<size_t>> ConIndex;
  for (size_t I = 0; I < Sink.Events.size(); ++I) {
    for (const Type *V : Sink.Events[I].Vars)
      Index[V].push_back(I);
    for (const Type *C : Sink.Events[I].Cons)
      ConIndex[C].push_back(I);
  }

  std::unordered_set<const Type *> RelVars; // component variables
  std::unordered_set<const Type *> RelAll;  // every component term
  std::vector<const Type *> Worklist;
  std::vector<char> Relevant(Sink.Events.size(), 0);

  auto addEvent = [&](const ProvenanceSink::Event &E) {
    M.add(E.Tag);
    for (const Type *V : E.Vars) {
      RelAll.insert(V);
      if (RelVars.insert(V).second)
        Worklist.push_back(V);
    }
    for (const Type *C : E.Cons)
      RelAll.insert(C);
  };

  auto pullEvents = [&](const std::vector<size_t> &Indices) {
    for (size_t I : Indices) {
      if (Relevant[I])
        continue;
      Relevant[I] = 1;
      addEvent(Sink.Events[I]);
    }
  };

  addEvent(Sink.TheClash.Seed);
  for (const Type *C : Sink.TheClash.Seed.Cons) {
    auto It = ConIndex.find(C);
    if (It != ConIndex.end())
      pullEvents(It->second);
  }
  while (!Worklist.empty()) {
    const Type *V = Worklist.back();
    Worklist.pop_back();
    auto It = Index.find(V);
    if (It != Index.end())
      pullEvents(It->second);
  }

  for (const Type *T : RelAll) {
    auto It = Sink.Allocs.find(T);
    if (It != Sink.Allocs.end())
      M.add(It->second);
  }

  std::unordered_set<std::string> Names;
  for (const Type *T : RelAll) {
    auto It = Sink.ConNames.find(T);
    if (It != Sink.ConNames.end())
      Names.insert(It->second);
  }
  InvolvedOut.assign(Names.begin(), Names.end());
  std::sort(InvolvedOut.begin(), InvolvedOut.end());
  return M;
}

/// Collects every node of a pattern tree into \p Out.
void collectPatternNodes(const Pattern &P,
                         std::unordered_set<const void *> &Out) {
  Out.insert(&P);
  for (const auto &E : P.Elems)
    collectPatternNodes(*E, Out);
  if (P.Head)
    collectPatternNodes(*P.Head, Out);
  if (P.Tail)
    collectPatternNodes(*P.Tail, Out);
  if (P.Arg)
    collectPatternNodes(*P.Arg, Out);
}

bool patternTreeHits(const Pattern &P,
                     const std::unordered_set<const void *> &Hit) {
  if (Hit.count(&P))
    return true;
  for (const auto &E : P.Elems)
    if (patternTreeHits(*E, Hit))
      return true;
  if (P.Head && patternTreeHits(*P.Head, Hit))
    return true;
  if (P.Tail && patternTreeHits(*P.Tail, Hit))
    return true;
  return P.Arg && patternTreeHits(*P.Arg, Hit);
}

/// Preorder walk of the focus declaration's expression tree, mapping
/// member identities back to node paths. A pattern member marks the
/// expression that owns the pattern (match arm, fun parameter, let
/// binding); constraints of a pattern are discharged exactly when its
/// owner is.
struct FocusWalk {
  const Members &M;
  std::vector<std::pair<NodePath, SourceSpan>> Influence;
  std::unordered_set<const void *> ExprsSeen;
  std::unordered_set<const void *> PatternsSeen;
  size_t DeclNodes = 0;

  explicit FocusWalk(const Members &M) : M(M) {}

  void walk(const Expr &E, const NodePath &Path) {
    ++DeclNodes;
    ExprsSeen.insert(&E);
    bool Hit = M.Exprs.count(&E) != 0;
    auto checkPatterns = [&](const Pattern &P) {
      collectPatternNodes(P, PatternsSeen);
      if (!Hit && patternTreeHits(P, M.Patterns))
        Hit = true;
    };
    if (E.Binding)
      checkPatterns(*E.Binding);
    for (const auto &P : E.Params)
      checkPatterns(*P);
    for (const auto &P : E.ArmPats)
      checkPatterns(*P);
    if (Hit)
      Influence.emplace_back(Path, E.Span);
    for (unsigned I = 0; I < E.numChildren(); ++I)
      walk(*E.child(I), Path.descend(I));
  }
};

bool isStrictAncestor(const NodePath &A, const NodePath &B) {
  return A.Steps.size() < B.Steps.size() &&
         std::equal(A.Steps.begin(), A.Steps.end(), B.Steps.begin());
}

/// Greedy minimal-unsat-core pass: visit influence nodes deepest-first;
/// wildcard each candidate and keep the wildcard installed whenever the
/// program still fails (the candidate's constraints are not needed for
/// the clash). What survives is a jointly-unsatisfiable set even in the
/// presence of redundant constraints, because each keep decision is made
/// against the program with all previous drops applied.
void minimizeCore(ErrorSlice &S, const Program &Prog, unsigned FocusDecl,
                  const SliceOptions &Opts) {
  auto CP = InferenceCheckpoint::create(Prog, FocusDecl);
  if (!CP)
    return; // Prefix refuses to check; leave Core == Influence.

  Program Work;
  for (unsigned I = 0; I <= FocusDecl; ++I)
    Work.Decls.push_back(Prog.Decls[I]->clone());

  // Deepest-first, preorder-stable within a depth.
  std::vector<size_t> Order(S.Influence.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return S.Influence[A].Steps.size() > S.Influence[B].Steps.size();
  });

  std::vector<char> Dropped(S.Influence.size(), 0);
  std::vector<char> Decided(S.Influence.size(), 0);
  for (size_t Idx : Order) {
    if (S.MinimizeChecks >= Opts.MaxMinimizeChecks)
      break; // Undecided candidates stay in the core (conservative).
    const NodePath &P = S.Influence[Idx];
    // An ancestor of a node already kept is redundant by construction
    // (the antichain filter below removes it); skip the check.
    bool CoversKept = false;
    for (size_t J = 0; J < S.Influence.size() && !CoversKept; ++J)
      CoversKept = Decided[J] && !Dropped[J] &&
                   isStrictAncestor(P, S.Influence[J]);
    if (CoversKept) {
      Decided[Idx] = 1;
      continue;
    }
    ExprPtr Old = replaceAtPath(Work, P, caml::makeWildcard());
    ++S.MinimizeChecks;
    TypecheckResult R = CP->checkDecl(*Work.Decls[FocusDecl]);
    if (!R.ok()) {
      Dropped[Idx] = 1; // Clash survives without it: leave the wildcard.
    } else {
      replaceAtPath(Work, P, std::move(Old));
    }
    Decided[Idx] = 1;
  }

  // Core = kept nodes, reduced to an antichain (keep the deepest).
  for (size_t I = 0; I < S.Influence.size(); ++I) {
    if (Dropped[I])
      continue;
    bool HasKeptDescendant = false;
    for (size_t J = 0; J < S.Influence.size() && !HasKeptDescendant; ++J)
      HasKeptDescendant =
          !Dropped[J] && isStrictAncestor(S.Influence[I], S.Influence[J]);
    if (!HasKeptDescendant) {
      S.Core.push_back(S.Influence[I]);
      S.CoreSpans.push_back(S.InfluenceSpans[I]);
    }
  }
}

/// True when one path is a (non-strict) prefix of the other: the nodes
/// lie on one root-to-leaf line, i.e. their subtrees are not disjoint.
bool pathsRelated(const NodePath &A, const NodePath &B) {
  const NodePath &Short = A.Steps.size() <= B.Steps.size() ? A : B;
  const NodePath &Long = A.Steps.size() <= B.Steps.size() ? B : A;
  return std::equal(Short.Steps.begin(), Short.Steps.end(),
                    Long.Steps.begin());
}

/// Collects the maximal subtrees of \p E disjoint from every core path:
/// preorder descent that stops (and records the path) at the first node
/// unrelated to all of them.
void collectCarvePoints(const Expr &E, const NodePath &Path,
                        const std::vector<NodePath> &Core,
                        std::vector<NodePath> &Out) {
  bool Related = false;
  for (const NodePath &Q : Core)
    if (pathsRelated(Path, Q)) {
      Related = true;
      break;
    }
  if (!Related) {
    Out.push_back(Path);
    return;
  }
  for (unsigned I = 0; I < E.numChildren(); ++I)
    collectCarvePoints(*E.child(I), Path.descend(I), Core, Out);
}

/// Verifies the carved witness: the focus declaration with every maximal
/// core-disjoint subtree wildcarded must still fail to type-check. One
/// internal inference; grants ErrorSlice::CoreWitnessOk.
void verifyCoreWitness(ErrorSlice &S, const Program &Prog,
                       unsigned FocusDecl) {
  std::vector<NodePath> CarvePoints;
  collectCarvePoints(*Prog.Decls[FocusDecl]->Rhs, NodePath(FocusDecl),
                     S.Core, CarvePoints);
  if (CarvePoints.empty()) {
    // Nothing to carve: the witness is the original declaration, whose
    // failure is already established.
    S.CoreWitnessOk = true;
    return;
  }

  auto CP = InferenceCheckpoint::create(Prog, FocusDecl);
  if (!CP)
    return;
  Program Work;
  for (unsigned I = 0; I <= FocusDecl; ++I)
    Work.Decls.push_back(Prog.Decls[I]->clone());
  // Carve points are pairwise disjoint, so installing one never shifts
  // the path of another.
  for (const NodePath &P : CarvePoints)
    replaceAtPath(Work, P, caml::makeWildcard());
  ++S.MinimizeChecks;
  S.CoreWitnessOk = !CP->checkDecl(*Work.Decls[FocusDecl]).ok();
}

/// Finds the deepest expression whose span encloses \p Target; ties are
/// broken toward the descendant (visited later on the path down).
void findAnchor(const Expr &E, const NodePath &Path, const SourceSpan &Target,
                std::optional<NodePath> &Best, SourceSpan &BestSpan) {
  if (E.Span.isValid() && E.Span.encloses(Target)) {
    Best = Path;
    BestSpan = E.Span;
  }
  for (unsigned I = 0; I < E.numChildren(); ++I)
    findAnchor(*E.child(I), Path.descend(I), Target, Best, BestSpan);
}

/// Span-anchored fallback for non-unification failures: no constraint
/// component exists, so anchor the core on the deepest node enclosing the
/// checker's error span. The influence set is the anchor's subtree plus
/// its ancestors -- exactly the core closure -- so the guide's influence
/// rule coincides with the witness rule, and the carved witness
/// verification is the single soundness argument: the slice is only
/// valid when the witness (everything else wildcarded) still fails.
void anchorSlice(ErrorSlice &S, const Program &Prog, unsigned FocusDecl,
                 const TypecheckResult &R) {
  if (!R.Error || !R.Error->Span.isValid())
    return;
  const Expr &Rhs = *Prog.Decls[FocusDecl]->Rhs;

  std::optional<NodePath> Anchor;
  SourceSpan AnchorSpan;
  findAnchor(Rhs, NodePath(FocusDecl), R.Error->Span, Anchor, AnchorSpan);
  if (!Anchor)
    return;

  S.SpanAnchored = true;
  S.ClashLeft = R.Error->ActualType;
  S.ClashRight = R.Error->ExpectedType;
  S.ClashSpan = R.Error->Span;
  S.Core.push_back(*Anchor);
  S.CoreSpans.push_back(AnchorSpan);
  // Adaptation pruning reasons about the clash component, which does not
  // exist here; mark the header as involved to disable it.
  S.DeclHeaderInfluence = true;

  // Influence := ancestors of the anchor + the anchor's subtree.
  struct InfluenceWalk {
    const NodePath &Anchor;
    ErrorSlice &S;
    size_t Nodes = 0;
    void walk(const Expr &E, const NodePath &Path) {
      ++Nodes;
      bool Related = pathsRelated(Path, Anchor);
      if (Related) {
        S.Influence.push_back(Path);
        S.InfluenceSpans.push_back(E.Span);
      }
      // Subtrees unrelated to the anchor contribute nothing; descend only
      // for the node count.
      for (unsigned I = 0; I < E.numChildren(); ++I)
        walk(*E.child(I), Path.descend(I));
    }
  } W{*Anchor, S};
  W.walk(Rhs, NodePath(FocusDecl));
  S.DeclNodes = W.Nodes;

  verifyCoreWitness(S, Prog, FocusDecl);
  S.Valid = S.CoreWitnessOk;
  if (!S.Valid) {
    // Witness refused: the guessed anchor does not explain the failure.
    // Report nothing rather than an unsound slice.
    S = ErrorSlice();
    S.DeclIndex = FocusDecl;
  }
}

} // namespace

ErrorSlice analysis::computeErrorSlice(const Program &Prog,
                                       unsigned FocusDecl,
                                       const SliceOptions &Opts) {
  ErrorSlice S;
  S.DeclIndex = FocusDecl;
  if (FocusDecl >= Prog.Decls.size())
    return S;
  const Decl &Focus = *Prog.Decls[FocusDecl];
  if (Focus.kind() != Decl::Kind::Let || !Focus.Rhs)
    return S;

  // One provenance-instrumented inference of prefix + focus declaration.
  ProvenanceSink Sink;
  TypecheckResult R;
  {
    ProvenanceScope Scope(Sink);
    auto CP = InferenceCheckpoint::create(Prog, FocusDecl);
    if (!CP)
      return S; // Prefix itself fails; nothing to slice.
    R = CP->checkDecl(Focus);
  }
  if (R.ok())
    return S;
  if (!Sink.hasClash()) {
    // Non-unification failure (unbound, arity, record shape): fall back
    // to the span-anchored slice, whose validity rests entirely on the
    // carved-witness verification.
    anchorSlice(S, Prog, FocusDecl, R);
    return S;
  }

  // Rendered clash: prefer the checker's post-rollback rendering; the
  // sink's was taken mid-unification and may show partial bindings.
  S.Cyclic = Sink.TheClash.Cyclic;
  if (R.Error && !R.Error->ActualType.empty()) {
    S.ClashLeft = R.Error->ActualType;
    S.ClashRight = R.Error->ExpectedType;
  } else {
    S.ClashLeft = Sink.TheClash.Left;
    S.ClashRight = Sink.TheClash.Right;
  }

  Members M = closeOverClash(Sink, S.InvolvedTypes);

  // Clash span, from the node in scope when the clash fired.
  const ProvenanceTag &CT = Sink.TheClash.Seed.Tag;
  switch (CT.Kind) {
  case ProvenanceNodeKind::Expr:
    S.ClashSpan = static_cast<const Expr *>(CT.Node)->Span;
    break;
  case ProvenanceNodeKind::Pattern:
    S.ClashSpan = static_cast<const Pattern *>(CT.Node)->Span;
    break;
  case ProvenanceNodeKind::Decl:
    S.ClashSpan = static_cast<const Decl *>(CT.Node)->Span;
    break;
  case ProvenanceNodeKind::None:
    break;
  }

  // Map members to paths within the focus declaration.
  FocusWalk Walk(M);
  Walk.walk(*Focus.Rhs, NodePath(FocusDecl));
  S.DeclNodes = Walk.DeclNodes;
  S.Influence.reserve(Walk.Influence.size());
  for (auto &[Path, Span] : Walk.Influence) {
    S.Influence.push_back(Path);
    S.InfluenceSpans.push_back(Span);
  }

  // Members the focus walk never saw live in the prefix or in the focus
  // declaration's header (binding/parameter patterns).
  std::unordered_set<const void *> HeaderPatterns;
  if (Focus.Binding)
    collectPatternNodes(*Focus.Binding, HeaderPatterns);
  for (const auto &P : Focus.Params)
    collectPatternNodes(*P, HeaderPatterns);
  for (const void *E : M.Exprs)
    if (!Walk.ExprsSeen.count(E))
      S.PrefixInfluence = true;
  for (const void *P : M.Patterns) {
    if (Walk.PatternsSeen.count(P))
      continue;
    if (HeaderPatterns.count(P))
      S.DeclHeaderInfluence = true;
    else
      S.PrefixInfluence = true;
  }
  for (const void *D : M.Decls) {
    if (D == &Focus)
      S.DeclHeaderInfluence = true;
    else
      S.PrefixInfluence = true;
  }

  S.Valid = true;

  if (Opts.Minimize && !S.Influence.empty())
    minimizeCore(S, Prog, FocusDecl, Opts);
  if (S.Core.empty()) {
    S.Core = S.Influence;
    S.CoreSpans = S.InfluenceSpans;
  }
  if (!S.Core.empty())
    verifyCoreWitness(S, Prog, FocusDecl);
  return S;
}

std::string ErrorSlice::render(const std::string &SourceName) const {
  std::ostringstream OS;
  if (!Valid) {
    OS << "no error slice (not a unification failure)\n";
    return OS.str();
  }
  OS << "error slice";
  if (!SourceName.empty())
    OS << " of " << SourceName;
  OS << " (declaration " << DeclIndex << ")\n";
  if (SpanAnchored)
    OS << "  anchor: non-unification failure at " << ClashSpan.str()
       << " (witness-verified)\n";
  else
    OS << "  clash: " << ClashLeft << (Cyclic ? " occurs in " : " vs ")
       << ClashRight << " at " << ClashSpan.str() << "\n";
  OS << "  core (" << Core.size() << " node" << (Core.size() == 1 ? "" : "s")
     << "):\n";
  for (size_t I = 0; I < Core.size(); ++I)
    OS << "    " << CoreSpans[I].str() << "  path " << Core[I].str() << "\n";
  if (!InvolvedTypes.empty()) {
    OS << "  involved types:";
    for (const auto &N : InvolvedTypes)
      OS << " " << N;
    OS << "\n";
  }
  OS << "  influence: " << Influence.size() << " of " << DeclNodes
     << " declaration nodes";
  if (PrefixInfluence)
    OS << ", reaches the prefix";
  if (DeclHeaderInfluence)
    OS << ", reaches the declaration header";
  OS << "\n";
  return OS.str();
}
