//===- SliceGuide.cpp - Slice-driven search pruning ------------------------==//

#include "analysis/SliceGuide.h"

using namespace seminal;
using namespace seminal::analysis;
using namespace seminal::caml;

namespace {

void collectSubtree(const Expr &Root,
                    std::unordered_set<const Expr *> &Out) {
  Out.insert(&Root);
  for (unsigned I = 0; I < Root.numChildren(); ++I)
    collectSubtree(*Root.child(I), Out);
}

/// Node equality minus the child subtrees: kind, scalar payloads, and
/// every pattern (patterns bind names and carry constraints, so they are
/// part of the head). Equal heads guarantee equal child counts.
bool headEquals(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind())
    return false;
  if (A.IntValue != B.IntValue || A.BoolValue != B.BoolValue ||
      A.StringValue != B.StringValue || A.Name != B.Name ||
      A.IsRec != B.IsRec || A.FieldNames != B.FieldNames)
    return false;
  if ((A.Binding == nullptr) != (B.Binding == nullptr))
    return false;
  if (A.Binding && !A.Binding->equals(*B.Binding))
    return false;
  if (A.Params.size() != B.Params.size() ||
      A.numChildren() != B.numChildren() ||
      A.ArmPats.size() != B.ArmPats.size())
    return false;
  for (size_t I = 0; I < A.Params.size(); ++I)
    if (!A.Params[I]->equals(*B.Params[I]))
      return false;
  for (size_t I = 0; I < A.ArmPats.size(); ++I)
    if (!A.ArmPats[I]->equals(*B.ArmPats[I]))
      return false;
  return true;
}

} // namespace

SliceGuide::SliceGuide(Program &Prog, const ErrorSlice &Slice) {
  for (const NodePath &P : Slice.Influence)
    if (Expr *E = resolvePath(Prog, P))
      InfluenceExprs.insert(E);
  for (const NodePath &P : Slice.Core) {
    Expr *E = resolvePath(Prog, P);
    if (!E)
      continue;
    CoreExprs.insert(E);
    collectSubtree(*E, CoreClosureExprs);
    // Ancestors: resolve every proper prefix of the core path.
    NodePath Prefix(P.DeclIndex);
    for (size_t I = 0; I < P.Steps.size(); ++I) {
      if (Expr *A = resolvePath(Prog, Prefix))
        CoreClosureExprs.insert(A);
      Prefix = Prefix.descend(P.Steps[I]);
    }
  }
  ComponentEscapes = Slice.PrefixInfluence || Slice.DeclHeaderInfluence;
  WitnessOk = Slice.CoreWitnessOk && !CoreExprs.empty();
}

size_t SliceGuide::influenceInside(const Expr &Root) const {
  size_t N = InfluenceExprs.count(&Root);
  for (unsigned I = 0; I < Root.numChildren(); ++I)
    N += influenceInside(*Root.child(I));
  return N;
}

// Every query degrades to "not doomed" when the influence set is empty:
// an attribution gap must disable pruning, never widen it.

bool SliceGuide::subtreeDoomed(const Expr &Root) const {
  if (InfluenceExprs.empty())
    return false;
  if (influenceInside(Root) == 0)
    return true;
  // Witness rule: Root outside the core closure means its subtree is
  // disjoint from every core subtree, so the removal probe at Root keeps
  // all of the verified witness's constraints -- and the witness fails.
  return WitnessOk && CoreClosureExprs.count(&Root) == 0;
}

bool SliceGuide::adaptationDoomed(const Expr &Root) const {
  if (ComponentEscapes || InfluenceExprs.empty())
    return false;
  return influenceInside(Root) == InfluenceExprs.size();
}

bool SliceGuide::diffConfined(const Expr &Orig, const Expr &Repl) const {
  if (headEquals(Orig, Repl)) {
    for (unsigned I = 0; I < Orig.numChildren(); ++I)
      if (!diffConfined(*Orig.child(I), *Repl.child(I)))
        return false;
    return true;
  }
  // Maximal differing position: the whole original subtree here is being
  // rewritten. Safe exactly when it is disjoint from every core subtree
  // (outside the closure, so the witness's kept material is untouched).
  return CoreClosureExprs.count(&Orig) == 0;
}

bool SliceGuide::candidateDoomed(const Expr &Orig, const Expr &Repl) const {
  if (!WitnessOk || InfluenceExprs.empty())
    return false;
  return diffConfined(Orig, Repl);
}

bool SliceGuide::diffConfinedIds(const Expr &Orig, AstArena::ExprId OrigId,
                                 const Expr &Repl, AstArena::ExprId ReplId,
                                 const AstArena &Arena) const {
  // Identical interned subtrees: diffConfined would find equal heads all
  // the way down and return true; one integer comparison settles it.
  if (OrigId == ReplId)
    return true;
  if (headEquals(Orig, Repl)) {
    // Equal heads with different ids: some child differs; recurse with
    // the interned children so shared subtrees short-circuit again.
    const std::vector<AstArena::ExprId> &OC = Arena.exprChildren(OrigId);
    const std::vector<AstArena::ExprId> &RC = Arena.exprChildren(ReplId);
    for (unsigned I = 0; I < Orig.numChildren(); ++I)
      if (!diffConfinedIds(*Orig.child(I), OC[I], *Repl.child(I), RC[I],
                           Arena))
        return false;
    return true;
  }
  return CoreClosureExprs.count(&Orig) == 0;
}

bool SliceGuide::candidateDoomed(const Expr &Orig, AstArena::ExprId OrigId,
                                 const Expr &Repl, AstArena::ExprId ReplId,
                                 const AstArena &Arena) const {
  if (!WitnessOk || InfluenceExprs.empty())
    return false;
  return diffConfinedIds(Orig, OrigId, Repl, ReplId, Arena);
}

bool SliceGuide::argumentsDoomed(const Expr &App) const {
  if (InfluenceExprs.empty())
    return false;
  // App layout: [callee, a1, ..., an]; only the arguments are wildcarded
  // by the permutation probe, so only they need to be influence-free --
  // or, under the verified witness, merely outside the core closure
  // (wildcarding them keeps every witness constraint intact).
  for (unsigned I = 1; I < App.numChildren(); ++I) {
    const Expr &Arg = *App.child(I);
    if (influenceInside(Arg) == 0)
      continue;
    if (WitnessOk && CoreClosureExprs.count(&Arg) == 0)
      continue;
    return false;
  }
  return true;
}
