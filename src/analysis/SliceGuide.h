//===- SliceGuide.h - Slice-driven search pruning ---------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between an ErrorSlice and the searcher: answers, for a
/// candidate site, whether a probe's verdict is already known to be
/// negative so the oracle call can be skipped. Every query is backed by
/// the monotonicity argument in DESIGN.md section 9: a wildcard only
/// removes typing constraints, so if a subtree contributes nothing to
/// the clash component, wildcarding it leaves the component -- and the
/// failure -- intact. The guide therefore never changes a verdict, only
/// avoids asking for ones that are forced; suggestion lists stay
/// bit-identical (asserted by bench_slice_ablation and FuzzTest).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_ANALYSIS_SLICEGUIDE_H
#define SEMINAL_ANALYSIS_SLICEGUIDE_H

#include "analysis/Slice.h"
#include "minicaml/Arena.h"
#include "minicaml/Ast.h"

#include <cstddef>
#include <unordered_set>

namespace seminal {
namespace analysis {

class SliceGuide {
public:
  /// Resolves the slice's paths against \p Prog (the program the searcher
  /// edits -- it must be the program the slice was computed on; pointer
  /// identity is used for membership). The guide holds no ownership; both
  /// arguments must outlive it.
  SliceGuide(caml::Program &Prog, const ErrorSlice &Slice);

  /// True when the removal probe `[[...]]` at \p Root is guaranteed to
  /// fail, and with it every change rooted in the subtree (Section 2.1's
  /// pruning, decided statically). Two sufficient conditions:
  ///   * no influence node lies inside the subtree (the clash component
  ///     is untouched by wildcarding it), or
  ///   * the slice's carved witness verified and Root's subtree is
  ///     disjoint from the core closure (every core subtree and its
  ///     ancestors): the probe program keeps a superset of the witness's
  ///     constraints, and the witness fails.
  /// Counts one saved oracle call when true.
  bool subtreeDoomed(const caml::Expr &Root) const;

  /// True when the entire clash component lives inside \p Root's subtree
  /// (no prefix or declaration-header constraints involved): `adapt Root`
  /// replays the clash internally, so the adaptation probe is guaranteed
  /// to fail.
  bool adaptationDoomed(const caml::Expr &Root) const;

  /// True when every argument subtree of application \p App is disjoint
  /// from the influence set: the enumerator's all-wildcard-arguments
  /// probe (`f [[...]] ... [[...]]`) is guaranteed to fail, so the
  /// argument-permutation family can be gated off without the probe call.
  bool argumentsDoomed(const caml::Expr &App) const;

  /// True when candidate replacement \p Repl differs from the original
  /// node \p Orig only inside subtrees that lie outside the core closure
  /// (requires the verified witness). Such a candidate leaves every core
  /// subtree and every ancestor on its spine untouched at its original
  /// position, so the candidate program keeps a superset of the witness's
  /// constraints -- and the witness fails. Its oracle verdict is
  /// therefore a guaranteed "no"; the searcher treats it as a failed
  /// probe without the call.
  bool candidateDoomed(const caml::Expr &Orig, const caml::Expr &Repl) const;

  /// Overlay-spine variant of candidateDoomed: \p OrigId / \p ReplId are
  /// the two trees' interned ids in \p Arena. Identical subtrees compare
  /// as one integer, so the walk visits only the edit spine where the
  /// trees actually differ instead of re-diffing shared structure.
  /// Result-identical to candidateDoomed (asserted by ArenaTest).
  bool candidateDoomed(const caml::Expr &Orig, caml::AstArena::ExprId OrigId,
                       const caml::Expr &Repl, caml::AstArena::ExprId ReplId,
                       const caml::AstArena &Arena) const;

  /// True when \p Node is in the minimized core (the ranker's boost set).
  bool inCore(const caml::Expr &Node) const {
    return CoreExprs.count(&Node) != 0;
  }

  /// True when \p Node is in the conservative influence set.
  bool inInfluence(const caml::Expr &Node) const {
    return InfluenceExprs.count(&Node) != 0;
  }

  size_t influenceSize() const { return InfluenceExprs.size(); }

  /// Statically-skipped oracle calls, by probe kind. Mutable counters:
  /// the searcher and enumerator bump them from const context while
  /// enumerating (single-threaded by construction).
  mutable size_t PrunedSubtrees = 0;
  mutable size_t PrunedAdaptations = 0;
  mutable size_t PrunedPermutationProbes = 0;
  mutable size_t PrunedCandidates = 0;

  size_t prunedCalls() const {
    return PrunedSubtrees + PrunedAdaptations + PrunedPermutationProbes +
           PrunedCandidates;
  }

private:
  size_t influenceInside(const caml::Expr &Root) const;
  bool diffConfined(const caml::Expr &Orig, const caml::Expr &Repl) const;
  bool diffConfinedIds(const caml::Expr &Orig, caml::AstArena::ExprId OrigId,
                       const caml::Expr &Repl, caml::AstArena::ExprId ReplId,
                       const caml::AstArena &Arena) const;

  std::unordered_set<const caml::Expr *> InfluenceExprs;
  std::unordered_set<const caml::Expr *> CoreExprs;
  /// Every node inside a core subtree plus every ancestor of a core node:
  /// exactly the nodes whose subtree overlaps some core subtree. A node
  /// outside this closure may be pruned under the witness rule.
  std::unordered_set<const caml::Expr *> CoreClosureExprs;
  /// Component constraints outside any focus subtree (prefix decls or the
  /// focus declaration's header); disables adaptation pruning.
  bool ComponentEscapes = false;
  /// ErrorSlice::CoreWitnessOk: enables the core-closure pruning rule.
  bool WitnessOk = false;
};

} // namespace analysis
} // namespace seminal

#endif // SEMINAL_ANALYSIS_SLICEGUIDE_H
