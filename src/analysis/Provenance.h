//===- Provenance.h - Constraint provenance recording -----------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint provenance for error slicing (DESIGN.md section 9). While a
/// ProvenanceSink is installed, the inference hooks in minicaml record
///
///   * which AST node induced each variable binding performed by unify(),
///   * which AST node allocated each type term,
///   * the generic-to-fresh variable substitutions made by instantiate()
///     (the one place pointer identity is broken between a generalized
///     type and its per-use copy), and
///   * the first constructor clash / occurs failure,
///
/// enough for analysis::computeErrorSlice to reconstruct the connected
/// component of the constraint graph that is jointly unsatisfiable, and
/// map it back to program points.
///
/// Null-sink discipline (the support/Trace pattern): the hooks are always
/// compiled into Unify.cpp / Types.cpp / Infer.cpp, but with no sink
/// installed -- the default everywhere outside computeErrorSlice -- each
/// hook costs one thread-local pointer test. Inference behavior is never
/// altered; recording is strictly observational.
///
/// This header is include-only (no analysis library symbols) so the
/// minicaml library can host the hooks without a dependency cycle:
/// analysis links against minicaml, never the reverse.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_ANALYSIS_PROVENANCE_H
#define SEMINAL_ANALYSIS_PROVENANCE_H

#include "minicaml/Types.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace seminal {
namespace analysis {

/// What kind of AST node a provenance tag points at. The tag is a void
/// pointer because minicaml's Expr/Pattern/Decl are not needed here; the
/// slicer knows which tree it walked and casts back.
enum class ProvenanceNodeKind : uint8_t {
  None,    ///< No node in scope (e.g. stdlib setup).
  Expr,    ///< caml::Expr
  Pattern, ///< caml::Pattern
  Decl,    ///< caml::Decl (decl-header constraints: bindings, params)
};

/// The AST node whose constraints are currently being generated.
struct ProvenanceTag {
  const void *Node = nullptr;
  ProvenanceNodeKind Kind = ProvenanceNodeKind::None;
};

/// Recorded constraint events, replayed by the slicer's closure pass.
///
/// Lifetime discipline: type-graph structure is flattened into each event
/// AT RECORD TIME, when the pointers are live. The slicer runs after
/// inference has rolled back (and the arena has rewound), so recorded
/// Type pointers are used strictly as opaque identities -- never
/// dereferenced again. Flattening-at-event-time loses nothing: every
/// later binding of a variable seen here is its own event, and the
/// closure composes connectivity through the shared variable object.
class ProvenanceSink {
public:
  /// One constraint event, pre-flattened. Two events belong to the same
  /// constraint-graph component iff they (transitively) share a variable
  /// object in Vars.
  struct Event {
    std::vector<const caml::Type *> Vars; ///< Variable nodes touched.
    std::vector<const caml::Type *> Cons; ///< Constructor nodes touched.
    ProvenanceTag Tag; ///< Node in scope when the event happened.
  };

  /// First failure observed (inference aborts at the first error, so
  /// there is at most one). The clash is seeded into the closure as an
  /// extra event (index ~0u).
  struct Clash {
    bool Present = false;
    bool Cyclic = false;
    Event Seed;
    /// Rendered at clash time. May show partial bindings of the failed
    /// attempt; prefer the TypecheckResult's post-rollback rendering.
    std::string Left, Right;
  };

  void recordBinding(caml::Type *Var, caml::Type *Target,
                     const ProvenanceTag &Tag) {
    Event E;
    E.Tag = Tag;
    Scratch.clear();
    flattenRec(Var, E);
    flattenRec(Target, E);
    Events.push_back(std::move(E));
  }

  void recordCopy(caml::Type *Generic, caml::Type *Fresh,
                  const ProvenanceTag &Tag) {
    Event E;
    E.Tag = Tag;
    Scratch.clear();
    flattenRec(Generic, E);
    flattenRec(Fresh, E);
    Events.push_back(std::move(E));
  }

  void recordAlloc(const caml::Type *T, const ProvenanceTag &Tag) {
    if (Tag.Node)
      Allocs.emplace(T, Tag);
  }

  void recordClash(caml::Type *A, caml::Type *B, bool Cyclic,
                   const ProvenanceTag &Tag) {
    if (TheClash.Present)
      return; // Keep the first failure only.
    TheClash.Present = true;
    TheClash.Cyclic = Cyclic;
    TheClash.Seed.Tag = Tag;
    Scratch.clear();
    flattenRec(A, TheClash.Seed);
    flattenRec(B, TheClash.Seed);
    auto [L, R] = caml::typesToStrings(A, B);
    TheClash.Left = L;
    TheClash.Right = R;
  }

  /// Folds the ORIGINAL (pre-resolution) operands of the failed top-level
  /// unification into the clash seed. The nested clash fires after prune()
  /// has resolved past the variable links, so the seed alone may contain
  /// no variables at all -- and the closure connects through variables
  /// only. The unpruned operands recover the links.
  void recordClashContext(caml::Type *A, caml::Type *B) {
    if (!TheClash.Present || ClashContextDone)
      return;
    ClashContextDone = true;
    Scratch.clear();
    for (const caml::Type *T : TheClash.Seed.Vars)
      Scratch.insert(T);
    for (const caml::Type *T : TheClash.Seed.Cons)
      Scratch.insert(T);
    flattenRec(A, TheClash.Seed);
    flattenRec(B, TheClash.Seed);
  }

  bool hasClash() const { return TheClash.Present; }

  std::vector<Event> Events;
  /// Type term -> AST node that allocated it (tagged allocations only).
  std::unordered_map<const caml::Type *, ProvenanceTag> Allocs;
  /// Named constructor -> name, for the slice's involved-types report
  /// (structural "->"/"*" constructors are skipped).
  std::unordered_map<const caml::Type *, std::string> ConNames;
  Clash TheClash;

private:
  /// Collects every node reachable from \p T through links and arguments
  /// into \p E. Scratch (cleared per event) guards against re-visiting
  /// shared subterms (type graphs are DAGs under the occurs check).
  void flattenRec(caml::Type *T, Event &E) {
    if (!T || !Scratch.insert(T).second)
      return;
    if (T->isVar()) {
      E.Vars.push_back(T);
      if (T->Link)
        flattenRec(T->Link, E);
      return;
    }
    E.Cons.push_back(T);
    if (T->Name != "->" && T->Name != "*")
      ConNames.emplace(T, T->Name);
    for (caml::Type *Arg : T->Args)
      flattenRec(Arg, E);
  }

  std::unordered_set<const caml::Type *> Scratch;
  bool ClashContextDone = false;
};

namespace detail {
/// The sink recording this thread's inference, or null (the default).
inline thread_local ProvenanceSink *Sink = nullptr;
/// The AST node whose constraints are currently being generated.
inline thread_local ProvenanceTag CurrentTag{};
} // namespace detail

inline ProvenanceSink *activeProvenanceSink() { return detail::Sink; }
inline const ProvenanceTag &currentProvenanceTag() {
  return detail::CurrentTag;
}

/// RAII: installs \p S as this thread's active sink. Nesting restores the
/// previous sink (and tag) on destruction.
class ProvenanceScope {
public:
  explicit ProvenanceScope(ProvenanceSink &S)
      : PrevSink(detail::Sink), PrevTag(detail::CurrentTag) {
    detail::Sink = &S;
    detail::CurrentTag = ProvenanceTag{};
  }
  ~ProvenanceScope() {
    detail::Sink = PrevSink;
    detail::CurrentTag = PrevTag;
  }
  ProvenanceScope(const ProvenanceScope &) = delete;
  ProvenanceScope &operator=(const ProvenanceScope &) = delete;

private:
  ProvenanceSink *PrevSink;
  ProvenanceTag PrevTag;
};

/// RAII: marks \p Node as the constraint source for the dynamic extent.
/// With no sink installed the constructor is a single thread-local read.
class ProvenanceNodeScope {
public:
  ProvenanceNodeScope(const void *Node, ProvenanceNodeKind Kind) {
    if (!detail::Sink)
      return;
    Installed = true;
    Prev = detail::CurrentTag;
    detail::CurrentTag = {Node, Kind};
  }
  ~ProvenanceNodeScope() {
    if (Installed)
      detail::CurrentTag = Prev;
  }
  ProvenanceNodeScope(const ProvenanceNodeScope &) = delete;
  ProvenanceNodeScope &operator=(const ProvenanceNodeScope &) = delete;

private:
  bool Installed = false;
  ProvenanceTag Prev;
};

// Hook bodies, called from minicaml with the sink already tested.
inline void hookBinding(caml::Type *Var, caml::Type *Target) {
  if (ProvenanceSink *S = detail::Sink)
    S->recordBinding(Var, Target, detail::CurrentTag);
}
inline void hookCopy(caml::Type *Generic, caml::Type *Fresh) {
  if (ProvenanceSink *S = detail::Sink)
    S->recordCopy(Generic, Fresh, detail::CurrentTag);
}
inline void hookAlloc(caml::Type *T) {
  if (ProvenanceSink *S = detail::Sink)
    S->recordAlloc(T, detail::CurrentTag);
}
inline void hookClash(caml::Type *A, caml::Type *B, bool Cyclic) {
  if (ProvenanceSink *S = detail::Sink)
    S->recordClash(A, B, Cyclic, detail::CurrentTag);
}
inline void hookClashContext(caml::Type *A, caml::Type *B) {
  if (ProvenanceSink *S = detail::Sink)
    S->recordClashContext(A, B);
}

} // namespace analysis
} // namespace seminal

#endif // SEMINAL_ANALYSIS_PROVENANCE_H
