//===- Hash.h - Structural hashing for mini-Caml ASTs -----------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural (content-based) 64-bit hashes over expressions, patterns,
/// declarations, and programs. Two trees that compare equal under the AST
/// equals() methods hash identically -- in particular a clone hashes the
/// same as its original -- while source spans are ignored. The searcher's
/// verdict cache (core/CheckpointedOracle.h) keys type-check outcomes on
/// these hashes: triage and the enumerator's lazily-expanded change
/// collections regenerate identical candidate programs many times over,
/// and a hash plus one deep-equality check turns each repeat into a table
/// lookup instead of an inference run.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_HASH_H
#define SEMINAL_MINICAML_HASH_H

#include "minicaml/Ast.h"

#include <cstdint>

namespace seminal {
namespace caml {

/// The combine primitives behind the structural hashes, exposed so other
/// layers can reproduce a node's hash from already-hashed parts. The
/// hash-consing arena (minicaml/Arena.h) builds each interned node's hash
/// from its children's cached hashes with exactly these functions, which
/// is what guarantees arena hashes equal hashExpr/hashDecl of the
/// materialized tree without walking it.
namespace hashing {

/// Initial accumulator for every node hash (the FNV-1a offset basis).
inline constexpr uint64_t Seed = 1469598103934665603ull;

/// Folds \p V into accumulator \p H (FNV-1a step with a splitmix-style
/// finisher so shallow trees still diffuse well).
uint64_t mix(uint64_t H, uint64_t V);

/// Folds string \p S (content and length) into accumulator \p H.
uint64_t mixString(uint64_t H, const std::string &S);

} // namespace hashing

/// Structural hash of an expression subtree (spans ignored).
uint64_t hashExpr(const Expr &E);

/// Structural hash of a pattern subtree (spans ignored).
uint64_t hashPattern(const Pattern &P);

/// Structural hash of a syntactic type expression.
uint64_t hashTypeExpr(const TypeExpr &TE);

/// Structural hash of a whole declaration.
uint64_t hashDecl(const Decl &D);

/// Structural hash of a whole program (order-sensitive over declarations).
uint64_t hashProgram(const Program &Prog);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_HASH_H
