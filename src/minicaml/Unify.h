//===- Unify.h - Unification for mini-Caml types ----------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Destructive first-order unification with occurs check and Remy-style
/// level adjustment. Unification failures carry the two clashing types so
/// the checker can render OCaml-style "has type X but is used with type Y"
/// messages.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_UNIFY_H
#define SEMINAL_MINICAML_UNIFY_H

#include "minicaml/Types.h"

namespace seminal {
namespace caml {

/// Outcome of a unification attempt. On failure, Left/Right are the
/// *innermost* clashing constructors (e.g. unifying `int list` with
/// `string list` reports int vs string); callers that want the full types
/// re-read the arguments they passed in, which usually read better in
/// messages -- but see the rollback caveat on unify() below.
struct UnifyResult {
  bool Ok = true;
  Type *Left = nullptr;
  Type *Right = nullptr;
  bool OccursCheckFailure = false;

  static UnifyResult success() { return UnifyResult(); }
  static UnifyResult clash(Type *L, Type *R) {
    UnifyResult Result;
    Result.Ok = false;
    Result.Left = L;
    Result.Right = R;
    return Result;
  }
  static UnifyResult cyclic(Type *L, Type *R) {
    UnifyResult Result = clash(L, R);
    Result.OccursCheckFailure = true;
    return Result;
  }
};

/// Unifies \p A with \p B in place. Destructive even on failure (partial
/// bindings are not rolled back), which is fine for the oracle verdict
/// because the arena is thrown away after a failed check -- exactly the
/// freedom the paper's architecture buys by keeping the checker a black
/// box. It is NOT fine for a caller that re-reads the argument types
/// after a failure to render a diagnostic: sibling arguments unified
/// before the clash stay bound (unifying `'a * string` with `int * bool`
/// leaves `'a := int` behind), so the message would describe a type the
/// program never had. Such callers must bracket the attempt with a
/// TypeTrail mark and undoTo() on failure; Infer.cpp's unifyOrMismatch
/// and the constructor-pattern check do exactly that.
UnifyResult unify(Type *A, Type *B);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_UNIFY_H
