//===- Printer.h - Mini-Caml pretty printer ---------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders mini-Caml ASTs back to concrete syntax. The paper's messages
/// quote expressions ("Try replacing fun (x, y) -> x + y with fun x y ->
/// x + y"), so the printer must produce code a programmer recognizes:
/// minimal parenthesization driven by the same precedence table the parser
/// uses, `[[...]]` for wildcard holes, and `adapt e` for adaptations.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_PRINTER_H
#define SEMINAL_MINICAML_PRINTER_H

#include "minicaml/Ast.h"

#include <string>

namespace seminal {
namespace caml {

/// Renders \p E with minimal parentheses.
std::string printExpr(const Expr &E);

/// Renders \p D as a structure item ("let f x = ...", "type t = ...").
std::string printDecl(const Decl &D);

/// Renders a whole program, one declaration per line group.
std::string printProgram(const Program &Prog);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_PRINTER_H
