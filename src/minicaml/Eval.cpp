//===- Eval.cpp - Mini-Caml evaluator implementation -----------------------==//

#include "minicaml/Eval.h"

#include "support/StrUtil.h"

#include <cassert>
#include <sstream>

using namespace seminal;
using namespace seminal::caml;

namespace {

ValuePtr makeValue(Value::Kind K) {
  auto V = std::make_shared<Value>();
  V->TheKind = K;
  return V;
}

} // namespace

ValuePtr caml::vInt(long N) {
  ValuePtr V = makeValue(Value::Kind::Int);
  V->IntValue = N;
  return V;
}

ValuePtr caml::vBool(bool B) {
  ValuePtr V = makeValue(Value::Kind::Bool);
  V->BoolValue = B;
  return V;
}

ValuePtr caml::vString(const std::string &S) {
  ValuePtr V = makeValue(Value::Kind::String);
  V->StringValue = S;
  return V;
}

ValuePtr caml::vUnit() { return makeValue(Value::Kind::Unit); }

ValuePtr caml::vList(std::vector<ValuePtr> Items) {
  ValuePtr V = makeValue(Value::Kind::List);
  V->Items = std::move(Items);
  return V;
}

std::string Value::str() const {
  switch (TheKind) {
  case Kind::Int:
    return std::to_string(IntValue);
  case Kind::Bool:
    return BoolValue ? "true" : "false";
  case Kind::String:
    return "\"" + escapeStringLiteral(StringValue) + "\"";
  case Kind::Unit:
    return "()";
  case Kind::Tuple: {
    std::vector<std::string> Parts;
    for (const auto &Item : Items)
      Parts.push_back(Item->str());
    return "(" + join(Parts, ", ") + ")";
  }
  case Kind::List: {
    std::vector<std::string> Parts;
    for (const auto &Item : Items)
      Parts.push_back(Item->str());
    return "[" + join(Parts, "; ") + "]";
  }
  case Kind::Closure:
  case Kind::Builtin:
    return "<fun>";
  case Kind::Constr: {
    if (Items.empty())
      return Name;
    return Name + " " + Items[0]->str();
  }
  case Kind::Record: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < Items.size(); ++I)
      Parts.push_back(FieldNames[I] + " = " + Items[I]->str());
    return "{ " + join(Parts, "; ") + " }";
  }
  case Kind::Ref:
    return "ref (" + RefCell->str() + ")";
  }
  return "?";
}

bool Value::equals(const Value &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Int:
    return IntValue == Other.IntValue;
  case Kind::Bool:
    return BoolValue == Other.BoolValue;
  case Kind::String:
    return StringValue == Other.StringValue;
  case Kind::Unit:
    return true;
  case Kind::Tuple:
  case Kind::List: {
    if (Items.size() != Other.Items.size())
      return false;
    for (size_t I = 0; I < Items.size(); ++I)
      if (!Items[I]->equals(*Other.Items[I]))
        return false;
    return true;
  }
  case Kind::Constr: {
    if (Name != Other.Name || Items.size() != Other.Items.size())
      return false;
    for (size_t I = 0; I < Items.size(); ++I)
      if (!Items[I]->equals(*Other.Items[I]))
        return false;
    return true;
  }
  case Kind::Record: {
    if (FieldNames != Other.FieldNames)
      return false;
    for (size_t I = 0; I < Items.size(); ++I)
      if (!Items[I]->equals(*Other.Items[I]))
        return false;
    return true;
  }
  case Kind::Ref:
    return RefCell->equals(*Other.RefCell);
  case Kind::Closure:
  case Kind::Builtin:
    return false; // functions are incomparable
  }
  return false;
}

ValuePtr EvalResult::find(const std::string &Name) const {
  for (auto It = Bindings.rbegin(); It != Bindings.rend(); ++It)
    if (It->first == Name)
      return It->second;
  return nullptr;
}

namespace {

using Env = std::vector<std::pair<std::string, ValuePtr>>;

/// The evaluator. Missteps set ErrorOut and make every operation bail.
class Evaluator {
public:
  Evaluator(size_t Fuel) : Fuel(Fuel) {}

  EvalResult run(const Program &Prog) {
    Env Environment;
    for (const auto &D : Prog.Decls) {
      if (ErrorOut)
        break;
      if (D->kind() != Decl::Kind::Let)
        continue;
      ValuePtr V = evalBinding(D->IsRec, *D->Binding, D->Params, *D->Rhs,
                               Environment);
      if (ErrorOut)
        break;
      if (!bindPattern(*D->Binding, V, Environment))
        fail("match failure in top-level binding");
    }
    EvalResult Result;
    Result.Error = ErrorOut;
    Result.Output = Output;
    if (!ErrorOut)
      Result.Bindings = std::move(Environment);
    return Result;
  }

private:
  void fail(const std::string &Message) {
    if (!ErrorOut)
      ErrorOut = Message;
  }

  bool spend() {
    if (Fuel == 0) {
      fail("out of fuel (likely an infinite loop)");
      return false;
    }
    --Fuel;
    return true;
  }

  static ValuePtr lookup(const Env &Environment, const std::string &Name) {
    for (auto It = Environment.rbegin(); It != Environment.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  /// Evaluates a let right-hand side, desugaring function parameters
  /// into a closure; handles recursion by back-patching the closure's
  /// environment.
  ValuePtr evalBinding(bool IsRec, const Pattern &Binding,
                       const std::vector<PatternPtr> &Params,
                       const Expr &Rhs, Env &Environment) {
    if (Params.empty()) {
      // `let rec x = fun ... -> ...` is handled below only for sugar
      // form; plain recursive values are evaluated non-recursively.
      return eval(Rhs, Environment);
    }
    ValuePtr Fn = makeValue(Value::Kind::Closure);
    Fn->FnBody = &Rhs;
    auto Cloned = std::make_shared<std::vector<PatternPtr>>();
    for (const auto &P : Params)
      Cloned->push_back(P->clone());
    Fn->FnParams = std::move(Cloned);
    Fn->FnEnv = std::make_shared<Env>(Environment);
    if (IsRec && Binding.kind() == Pattern::Kind::Var)
      Fn->FnSelfName = Binding.Name;
    return Fn;
  }

  ValuePtr apply(ValuePtr Fn, ValuePtr Arg) {
    if (ErrorOut || !spend())
      return vUnit();
    if (Fn->TheKind == Value::Kind::Builtin)
      return applyBuiltin(*Fn, std::move(Arg));
    if (Fn->TheKind != Value::Kind::Closure) {
      fail("attempt to call a non-function value");
      return vUnit();
    }
    // Accumulate arguments until the arity is reached.
    auto Next = std::make_shared<Value>(*Fn);
    if (!Next->FnSelfName.empty() && !Next->FnOrigin)
      Next->FnOrigin = Fn; // Fn is the defining closure itself.
    Next->Applied.push_back(std::move(Arg));
    if (Next->Applied.size() < Next->FnParams->size())
      return Next;
    Env Local = *Next->FnEnv;
    // Re-materialize the recursive self-binding (kept out of FnEnv to
    // avoid a shared_ptr cycle); parameters bound below may shadow it,
    // exactly as the in-environment binding used to be shadowed.
    if (Next->FnOrigin)
      Local.emplace_back(Next->FnSelfName, Next->FnOrigin);
    for (size_t I = 0; I < Next->FnParams->size(); ++I)
      if (!bindPattern(*(*Next->FnParams)[I], Next->Applied[I], Local)) {
        fail("match failure binding a function parameter");
        return vUnit();
      }
    return eval(*Next->FnBody, Local);
  }

  ValuePtr applyBuiltin(const Value &Fn, ValuePtr Arg);

  bool bindPattern(const Pattern &P, const ValuePtr &V, Env &Environment) {
    switch (P.kind()) {
    case Pattern::Kind::Wild:
      return true;
    case Pattern::Kind::Var:
      Environment.emplace_back(P.Name, V);
      return true;
    case Pattern::Kind::Int:
      return V->TheKind == Value::Kind::Int && V->IntValue == P.IntValue;
    case Pattern::Kind::Bool:
      return V->TheKind == Value::Kind::Bool && V->BoolValue == P.BoolValue;
    case Pattern::Kind::String:
      return V->TheKind == Value::Kind::String &&
             V->StringValue == P.StringValue;
    case Pattern::Kind::Unit:
      return V->TheKind == Value::Kind::Unit;
    case Pattern::Kind::Tuple: {
      if (V->TheKind != Value::Kind::Tuple ||
          V->Items.size() != P.Elems.size())
        return false;
      for (size_t I = 0; I < P.Elems.size(); ++I)
        if (!bindPattern(*P.Elems[I], V->Items[I], Environment))
          return false;
      return true;
    }
    case Pattern::Kind::List: {
      if (V->TheKind != Value::Kind::List ||
          V->Items.size() != P.Elems.size())
        return false;
      for (size_t I = 0; I < P.Elems.size(); ++I)
        if (!bindPattern(*P.Elems[I], V->Items[I], Environment))
          return false;
      return true;
    }
    case Pattern::Kind::Cons: {
      if (V->TheKind != Value::Kind::List || V->Items.empty())
        return false;
      if (!bindPattern(*P.Head, V->Items.front(), Environment))
        return false;
      ValuePtr Tail = vList(std::vector<ValuePtr>(V->Items.begin() + 1,
                                                  V->Items.end()));
      return bindPattern(*P.Tail, Tail, Environment);
    }
    case Pattern::Kind::Constr: {
      if (V->TheKind != Value::Kind::Constr || V->Name != P.Name)
        return false;
      if (!P.Arg)
        return V->Items.empty();
      return !V->Items.empty() &&
             bindPattern(*P.Arg, V->Items[0], Environment);
    }
    }
    return false;
  }

  ValuePtr eval(const Expr &E, Env &Environment) {
    if (ErrorOut || !spend())
      return vUnit();
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return vInt(E.IntValue);
    case Expr::Kind::BoolLit:
      return vBool(E.BoolValue);
    case Expr::Kind::StringLit:
      return vString(E.StringValue);
    case Expr::Kind::UnitLit:
    case Expr::Kind::Wildcard:
      return vUnit();
    case Expr::Kind::Adapt:
      return eval(*E.child(0), Environment);

    case Expr::Kind::Var: {
      if (ValuePtr V = lookup(Environment, E.Name))
        return V;
      if (ValuePtr B = builtinValue(E.Name))
        return B;
      fail("unbound value at runtime: " + E.Name);
      return vUnit();
    }

    case Expr::Kind::Fun: {
      ValuePtr Fn = makeValue(Value::Kind::Closure);
      Fn->FnBody = E.child(0);
      auto Cloned = std::make_shared<std::vector<PatternPtr>>();
      for (const auto &P : E.Params)
        Cloned->push_back(P->clone());
      Fn->FnParams = std::move(Cloned);
      Fn->FnEnv = std::make_shared<Env>(Environment);
      return Fn;
    }

    case Expr::Kind::App: {
      ValuePtr Fn = eval(*E.child(0), Environment);
      for (unsigned I = 1; I < E.numChildren() && !ErrorOut; ++I)
        Fn = apply(std::move(Fn), eval(*E.child(I), Environment));
      return Fn;
    }

    case Expr::Kind::Let: {
      size_t Mark = Environment.size();
      ValuePtr V = evalBinding(E.IsRec, *E.Binding, E.Params, *E.child(0),
                               Environment);
      if (ErrorOut)
        return vUnit();
      if (!bindPattern(*E.Binding, V, Environment)) {
        fail("match failure in let binding");
        return vUnit();
      }
      ValuePtr Result = eval(*E.child(1), Environment);
      Environment.resize(Mark);
      return Result;
    }

    case Expr::Kind::If: {
      ValuePtr C = eval(*E.child(0), Environment);
      if (ErrorOut)
        return vUnit();
      bool Taken = C->TheKind == Value::Kind::Bool && C->BoolValue;
      if (Taken)
        return eval(*E.child(1), Environment);
      if (E.numChildren() == 3)
        return eval(*E.child(2), Environment);
      return vUnit();
    }

    case Expr::Kind::Tuple: {
      ValuePtr V = makeValue(Value::Kind::Tuple);
      for (const auto &Child : E.Children)
        V->Items.push_back(eval(*Child, Environment));
      return V;
    }

    case Expr::Kind::List: {
      ValuePtr V = makeValue(Value::Kind::List);
      for (const auto &Child : E.Children)
        V->Items.push_back(eval(*Child, Environment));
      return V;
    }

    case Expr::Kind::Cons: {
      ValuePtr Head = eval(*E.child(0), Environment);
      ValuePtr Tail = eval(*E.child(1), Environment);
      if (ErrorOut)
        return vUnit();
      if (Tail->TheKind != Value::Kind::List) {
        fail("cons onto a non-list value");
        return vUnit();
      }
      ValuePtr V = makeValue(Value::Kind::List);
      V->Items.push_back(std::move(Head));
      for (const auto &Item : Tail->Items)
        V->Items.push_back(Item);
      return V;
    }

    case Expr::Kind::BinOp:
      return evalBinOp(E, Environment);

    case Expr::Kind::UnaryOp: {
      ValuePtr V = eval(*E.child(0), Environment);
      if (ErrorOut)
        return vUnit();
      if (E.Name == "not")
        return vBool(!(V->TheKind == Value::Kind::Bool && V->BoolValue));
      if (E.Name == "-")
        return vInt(-V->IntValue);
      if (E.Name == "!") {
        if (V->TheKind != Value::Kind::Ref) {
          fail("dereference of a non-ref value");
          return vUnit();
        }
        return V->RefCell;
      }
      fail("unknown unary operator " + E.Name);
      return vUnit();
    }

    case Expr::Kind::Match: {
      ValuePtr S = eval(*E.child(0), Environment);
      for (unsigned I = 1; I < E.numChildren() && !ErrorOut; ++I) {
        size_t Mark = Environment.size();
        if (bindPattern(*E.ArmPats[I - 1], S, Environment)) {
          ValuePtr Result = eval(*E.child(I), Environment);
          Environment.resize(Mark);
          return Result;
        }
        Environment.resize(Mark);
      }
      fail("match failure");
      return vUnit();
    }

    case Expr::Kind::Constr: {
      ValuePtr V = makeValue(Value::Kind::Constr);
      V->Name = E.Name;
      if (!E.Children.empty())
        V->Items.push_back(eval(*E.child(0), Environment));
      return V;
    }

    case Expr::Kind::Seq: {
      eval(*E.child(0), Environment);
      return eval(*E.child(1), Environment);
    }

    case Expr::Kind::Raise: {
      ValuePtr V = eval(*E.child(0), Environment);
      fail("uncaught exception: " + V->str());
      return vUnit();
    }

    case Expr::Kind::Field: {
      ValuePtr R = eval(*E.child(0), Environment);
      if (ErrorOut)
        return vUnit();
      if (R->TheKind == Value::Kind::Record)
        for (size_t I = 0; I < R->FieldNames.size(); ++I)
          if (R->FieldNames[I] == E.Name)
            return R->Items[I];
      fail("field access failed: " + E.Name);
      return vUnit();
    }

    case Expr::Kind::SetField: {
      ValuePtr R = eval(*E.child(0), Environment);
      ValuePtr V = eval(*E.child(1), Environment);
      if (ErrorOut)
        return vUnit();
      if (R->TheKind == Value::Kind::Record)
        for (size_t I = 0; I < R->FieldNames.size(); ++I)
          if (R->FieldNames[I] == E.Name) {
            R->Items[I] = V;
            return vUnit();
          }
      fail("field update failed: " + E.Name);
      return vUnit();
    }

    case Expr::Kind::Record: {
      ValuePtr V = makeValue(Value::Kind::Record);
      V->FieldNames = E.FieldNames;
      for (const auto &Child : E.Children)
        V->Items.push_back(eval(*Child, Environment));
      return V;
    }
    }
    fail("unevaluable expression");
    return vUnit();
  }

  ValuePtr evalBinOp(const Expr &E, Env &Environment) {
    const std::string &Op = E.Name;
    // Short-circuit forms first.
    if (Op == "&&") {
      ValuePtr L = eval(*E.child(0), Environment);
      if (ErrorOut || !(L->TheKind == Value::Kind::Bool && L->BoolValue))
        return vBool(false);
      ValuePtr R = eval(*E.child(1), Environment);
      return vBool(R->TheKind == Value::Kind::Bool && R->BoolValue);
    }
    if (Op == "||") {
      ValuePtr L = eval(*E.child(0), Environment);
      if (!ErrorOut && L->TheKind == Value::Kind::Bool && L->BoolValue)
        return vBool(true);
      ValuePtr R = eval(*E.child(1), Environment);
      return vBool(R->TheKind == Value::Kind::Bool && R->BoolValue);
    }

    ValuePtr L = eval(*E.child(0), Environment);
    ValuePtr R = eval(*E.child(1), Environment);
    if (ErrorOut)
      return vUnit();
    if (Op == "+")
      return vInt(L->IntValue + R->IntValue);
    if (Op == "-")
      return vInt(L->IntValue - R->IntValue);
    if (Op == "*")
      return vInt(L->IntValue * R->IntValue);
    if (Op == "/") {
      if (R->IntValue == 0) {
        fail("uncaught exception: Division_by_zero");
        return vUnit();
      }
      return vInt(L->IntValue / R->IntValue);
    }
    if (Op == "^")
      return vString(L->StringValue + R->StringValue);
    if (Op == "@") {
      ValuePtr V = vList({});
      for (const auto &Item : L->Items)
        V->Items.push_back(Item);
      for (const auto &Item : R->Items)
        V->Items.push_back(Item);
      return V;
    }
    if (Op == "=" || Op == "==")
      return vBool(L->equals(*R));
    if (Op == "<>")
      return vBool(!L->equals(*R));
    if (Op == "<")
      return vBool(L->IntValue < R->IntValue);
    if (Op == ">")
      return vBool(L->IntValue > R->IntValue);
    if (Op == "<=")
      return vBool(L->IntValue <= R->IntValue);
    if (Op == ">=")
      return vBool(L->IntValue >= R->IntValue);
    if (Op == ":=") {
      if (L->TheKind != Value::Kind::Ref) {
        fail("assignment to a non-ref value");
        return vUnit();
      }
      L->RefCell = R;
      return vUnit();
    }
    fail("unknown binary operator " + Op);
    return vUnit();
  }

  /// Builtin (stdlib) values; curried builtins carry their name and the
  /// arguments applied so far.
  ValuePtr builtinValue(const std::string &Name);

  size_t Fuel;
  std::optional<std::string> ErrorOut;
  std::string Output;
};

/// Names and arities of the executable standard library subset.
struct BuiltinInfo {
  const char *Name;
  unsigned Arity;
};

const BuiltinInfo Builtins[] = {
    {"List.map", 2},       {"List.filter", 2},  {"List.length", 1},
    {"List.rev", 1},       {"List.append", 2},  {"List.combine", 2},
    {"List.mem", 2},       {"List.nth", 2},     {"List.hd", 1},
    {"List.tl", 1},        {"List.fold_left", 3},
    {"string_of_int", 1},  {"String.length", 1},
    {"print_string", 1},   {"print_int", 1},    {"print_endline", 1},
    {"ref", 1},            {"fst", 1},          {"snd", 1},
    {"ignore", 1},         {"failwith", 1},     {"abs", 1},
    {"max", 2},            {"min", 2},          {"succ", 1},
    {"compare", 2},        {"String.concat", 2},
};

ValuePtr Evaluator::builtinValue(const std::string &Name) {
  for (const BuiltinInfo &B : Builtins)
    if (Name == B.Name) {
      ValuePtr V = makeValue(Value::Kind::Builtin);
      V->Name = Name;
      V->IntValue = long(B.Arity);
      return V;
    }
  return nullptr;
}

ValuePtr Evaluator::applyBuiltin(const Value &Fn, ValuePtr Arg) {
  auto Next = std::make_shared<Value>(Fn);
  Next->Applied.push_back(std::move(Arg));
  if (long(Next->Applied.size()) < Next->IntValue)
    return Next;

  const std::string &Name = Next->Name;
  auto &A = Next->Applied;

  if (Name == "List.map") {
    ValuePtr Out = vList({});
    for (const auto &Item : A[1]->Items)
      Out->Items.push_back(apply(A[0], Item));
    return Out;
  }
  if (Name == "List.filter") {
    ValuePtr Out = vList({});
    for (const auto &Item : A[1]->Items) {
      ValuePtr Keep = apply(A[0], Item);
      if (Keep->TheKind == Value::Kind::Bool && Keep->BoolValue)
        Out->Items.push_back(Item);
    }
    return Out;
  }
  if (Name == "List.length")
    return vInt(long(A[0]->Items.size()));
  if (Name == "List.rev") {
    ValuePtr Out = vList({});
    for (auto It = A[0]->Items.rbegin(); It != A[0]->Items.rend(); ++It)
      Out->Items.push_back(*It);
    return Out;
  }
  if (Name == "List.append") {
    ValuePtr Out = vList({});
    for (const auto &Item : A[0]->Items)
      Out->Items.push_back(Item);
    for (const auto &Item : A[1]->Items)
      Out->Items.push_back(Item);
    return Out;
  }
  if (Name == "List.combine") {
    if (A[0]->Items.size() != A[1]->Items.size()) {
      fail("uncaught exception: Invalid_argument \"List.combine\"");
      return vUnit();
    }
    ValuePtr Out = vList({});
    for (size_t I = 0; I < A[0]->Items.size(); ++I) {
      ValuePtr Pair = makeValue(Value::Kind::Tuple);
      Pair->Items = {A[0]->Items[I], A[1]->Items[I]};
      Out->Items.push_back(Pair);
    }
    return Out;
  }
  if (Name == "List.mem") {
    for (const auto &Item : A[1]->Items)
      if (Item->equals(*A[0]))
        return vBool(true);
    return vBool(false);
  }
  if (Name == "List.nth") {
    long N = A[1]->IntValue;
    if (N < 0 || size_t(N) >= A[0]->Items.size()) {
      fail("uncaught exception: Failure \"nth\"");
      return vUnit();
    }
    return A[0]->Items[size_t(N)];
  }
  if (Name == "List.hd") {
    if (A[0]->Items.empty()) {
      fail("uncaught exception: Failure \"hd\"");
      return vUnit();
    }
    return A[0]->Items.front();
  }
  if (Name == "List.tl") {
    if (A[0]->Items.empty()) {
      fail("uncaught exception: Failure \"tl\"");
      return vUnit();
    }
    return vList(std::vector<ValuePtr>(A[0]->Items.begin() + 1,
                                       A[0]->Items.end()));
  }
  if (Name == "List.fold_left") {
    ValuePtr Acc = A[1];
    for (const auto &Item : A[2]->Items)
      Acc = apply(apply(A[0], Acc), Item);
    return Acc;
  }
  if (Name == "string_of_int")
    return vString(std::to_string(A[0]->IntValue));
  if (Name == "String.length")
    return vInt(long(A[0]->StringValue.size()));
  if (Name == "String.concat") {
    std::vector<std::string> Parts;
    for (const auto &Item : A[1]->Items)
      Parts.push_back(Item->StringValue);
    return vString(join(Parts, A[0]->StringValue));
  }
  if (Name == "print_string" || Name == "print_endline") {
    Output += A[0]->StringValue;
    if (Name == "print_endline")
      Output += "\n";
    return vUnit();
  }
  if (Name == "print_int") {
    Output += std::to_string(A[0]->IntValue);
    return vUnit();
  }
  if (Name == "ref") {
    ValuePtr V = makeValue(Value::Kind::Ref);
    V->RefCell = A[0];
    return V;
  }
  if (Name == "fst")
    return A[0]->Items.empty() ? vUnit() : A[0]->Items[0];
  if (Name == "snd")
    return A[0]->Items.size() < 2 ? vUnit() : A[0]->Items[1];
  if (Name == "ignore")
    return vUnit();
  if (Name == "failwith") {
    fail("uncaught exception: Failure " + A[0]->str());
    return vUnit();
  }
  if (Name == "abs")
    return vInt(A[0]->IntValue < 0 ? -A[0]->IntValue : A[0]->IntValue);
  if (Name == "succ")
    return vInt(A[0]->IntValue + 1);
  if (Name == "max")
    return A[0]->IntValue >= A[1]->IntValue ? A[0] : A[1];
  if (Name == "min")
    return A[0]->IntValue <= A[1]->IntValue ? A[0] : A[1];
  if (Name == "compare")
    return vInt(A[0]->equals(*A[1]) ? 0
                                    : (A[0]->IntValue < A[1]->IntValue ? -1
                                                                       : 1));
  fail("unimplemented builtin: " + Name);
  return vUnit();
}

} // namespace

EvalResult caml::evalProgram(const Program &Prog, size_t Fuel) {
  Evaluator E(Fuel);
  return E.run(Prog);
}
