//===- Types.h - Mini-Caml semantic types -----------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic types for Hindley-Milner inference. A type is either a
/// unification variable (with a mutable link and a level for efficient
/// let-generalization, following Remy) or a constructor application. All
/// structural types are constructor applications with reserved names:
/// "->" (arity 2), "*" (tuples, arity >= 2), plus "int", "bool", "string",
/// "unit", "exn", "list", "ref", and user-declared names.
///
/// Types are arena-allocated; each oracle call runs inference in a fresh
/// arena, so there is no sharing across type-check invocations.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_TYPES_H
#define SEMINAL_MINICAML_TYPES_H

#include <cassert>
#include <deque>
#include <limits>
#include <string>
#include <vector>

namespace seminal {
namespace caml {

/// Level marking a variable as generalized (quantified).
constexpr int GenericLevel = std::numeric_limits<int>::max();

/// A semantic type node. Mutable on purpose: unification links variables
/// in place (union-find with path compression in prune()).
struct Type {
  enum class Kind { Var, Con };

  Kind TheKind;

  // Var payload.
  int VarId = 0;
  int Level = 0;
  Type *Link = nullptr; ///< Non-null once the variable is bound.

  // Con payload.
  std::string Name;
  std::vector<Type *> Args;

  bool isVar() const { return TheKind == Kind::Var; }
  bool isCon(const std::string &N) const {
    return TheKind == Kind::Con && Name == N;
  }
  bool isArrow() const { return isCon("->"); }
};

/// Undo log for in-place type mutations. While a trail is installed (see
/// TypeTrailScope) every Link and Level write performed by unification,
/// path compression, level adjustment, and generalization is recorded, so
/// undoAll() restores the type graph to its state at scope entry. This is
/// what lets a checkpointed inference environment (Infer.h) be reused
/// across thousands of oracle calls: each call's unifications against the
/// shared prefix environment are rolled back instead of rebuilding the
/// environment from scratch.
class TypeTrail {
public:
  void recordLink(Type *V, Type *Old) { Links.emplace_back(V, Old); }
  void recordLevel(Type *V, int Old) { Levels.emplace_back(V, Old); }

  /// A position in the trail, for partial rollback (undoTo).
  struct Mark {
    size_t Links = 0;
    size_t Levels = 0;
  };
  Mark mark() const { return {Links.size(), Levels.size()}; }

  /// Restores every recorded write, newest first, and clears the trail.
  void undoAll();

  /// Restores writes recorded after \p M, newest first, and truncates the
  /// trail back to \p M. Lets a caller undo one failed unification without
  /// disturbing the enclosing checkpoint's rollback log.
  void undoTo(const Mark &M);

  bool empty() const { return Links.empty() && Levels.empty(); }

private:
  std::vector<std::pair<Type *, Type *>> Links;
  std::vector<std::pair<Type *, int>> Levels;
};

/// RAII: installs a trail as the active one for the current thread.
/// Nesting restores the previous trail on destruction.
class TypeTrailScope {
public:
  explicit TypeTrailScope(TypeTrail &Trail);
  ~TypeTrailScope();
  TypeTrailScope(const TypeTrailScope &) = delete;
  TypeTrailScope &operator=(const TypeTrailScope &) = delete;

private:
  TypeTrail *Prev;
};

/// The trail currently recording this thread's type mutations, or null.
TypeTrail *activeTypeTrail();

/// Bump allocator for Type nodes; owns everything it creates.
class TypeArena {
public:
  TypeArena() = default;
  TypeArena(const TypeArena &) = delete;
  TypeArena &operator=(const TypeArena &) = delete;

  /// A position in the arena's allocation sequence.
  struct Mark {
    size_t Nodes = 0;
    int NextVarId = 0;
  };

  Mark mark() const { return {Nodes.size(), NextVarId}; }

  /// Frees every node allocated after \p M. The caller must guarantee no
  /// surviving type references the freed nodes (a TypeTrail rollback of
  /// everything unified since the mark establishes exactly that).
  void rewindTo(const Mark &M);

  /// Fresh unification variable at \p Level.
  Type *freshVar(int Level);

  /// Constructor application.
  Type *con(const std::string &Name, std::vector<Type *> Args = {});

  // Shorthands for the pervasive builtins.
  Type *intType() { return con("int"); }
  Type *boolType() { return con("bool"); }
  Type *stringType() { return con("string"); }
  Type *unitType() { return con("unit"); }
  Type *exnType() { return con("exn"); }
  Type *listOf(Type *Elem) { return con("list", {Elem}); }
  Type *refOf(Type *Elem) { return con("ref", {Elem}); }
  Type *arrow(Type *From, Type *To) { return con("->", {From, To}); }
  Type *tuple(std::vector<Type *> Elems) {
    assert(Elems.size() >= 2 && "tuple type needs at least two components");
    return con("*", std::move(Elems));
  }
  /// Builds From1 -> ... -> FromN -> To.
  Type *arrowChain(const std::vector<Type *> &Froms, Type *To);

  size_t numAllocated() const { return Nodes.size(); }

private:
  std::deque<Type> Nodes;
  int NextVarId = 0;
};

/// Follows variable links to the representative, compressing paths.
Type *prune(Type *T);

/// \returns true if variable \p Var occurs in \p T (after pruning).
/// Also lowers the levels of variables in \p T to \p Var's level, the
/// side-effect Remy's algorithm needs during binding.
bool occursAndAdjust(Type *Var, Type *T);

/// Renders \p T with canonical 'a, 'b, ... names assigned in first-visit
/// order, mimicking OCaml's printer ("int -> int -> int",
/// "('a -> 'b) -> 'a list -> 'b list").
std::string typeToString(Type *T);

/// Renders two types with a shared variable-naming context, so an error
/// message's actual/expected pair uses consistent names.
std::pair<std::string, std::string> typesToStrings(Type *A, Type *B);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_TYPES_H
