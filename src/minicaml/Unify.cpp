//===- Unify.cpp - Unification implementation -----------------------------==//

#include "minicaml/Unify.h"

#include "analysis/Provenance.h"

using namespace seminal;
using namespace seminal::caml;

static UnifyResult unifyRec(Type *A, Type *B) {
  A = prune(A);
  B = prune(B);
  if (A == B)
    return UnifyResult::success();

  if (A->isVar()) {
    if (occursAndAdjust(A, B)) {
      analysis::hookClash(A, B, /*Cyclic=*/true);
      return UnifyResult::cyclic(A, B);
    }
    if (TypeTrail *Trail = activeTypeTrail())
      Trail->recordLink(A, A->Link);
    analysis::hookBinding(A, B);
    A->Link = B;
    return UnifyResult::success();
  }
  if (B->isVar())
    return unifyRec(B, A);

  // Both constructors.
  if (A->Name != B->Name || A->Args.size() != B->Args.size()) {
    analysis::hookClash(A, B, /*Cyclic=*/false);
    return UnifyResult::clash(A, B);
  }
  for (size_t I = 0; I < A->Args.size(); ++I) {
    UnifyResult Result = unifyRec(A->Args[I], B->Args[I]);
    if (!Result.Ok)
      return Result;
  }
  return UnifyResult::success();
}

UnifyResult caml::unify(Type *A, Type *B) {
  UnifyResult Result = unifyRec(A, B);
  // The clash hook fires deep in the recursion, after prune() has resolved
  // past variable links; fold the original operands into the clash seed so
  // the slicer's variable-connectivity closure can reach the bindings that
  // produced the clashing constructors.
  if (!Result.Ok)
    analysis::hookClashContext(A, B);
  return Result;
}
