//===- Unify.cpp - Unification implementation -----------------------------==//

#include "minicaml/Unify.h"

using namespace seminal;
using namespace seminal::caml;

UnifyResult caml::unify(Type *A, Type *B) {
  A = prune(A);
  B = prune(B);
  if (A == B)
    return UnifyResult::success();

  if (A->isVar()) {
    if (occursAndAdjust(A, B))
      return UnifyResult::cyclic(A, B);
    if (TypeTrail *Trail = activeTypeTrail())
      Trail->recordLink(A, A->Link);
    A->Link = B;
    return UnifyResult::success();
  }
  if (B->isVar())
    return unify(B, A);

  // Both constructors.
  if (A->Name != B->Name || A->Args.size() != B->Args.size())
    return UnifyResult::clash(A, B);
  for (size_t I = 0; I < A->Args.size(); ++I) {
    UnifyResult Result = unify(A->Args[I], B->Args[I]);
    if (!Result.Ok)
      return Result;
  }
  return UnifyResult::success();
}
