//===- Parser.h - Mini-Caml parser ------------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-Caml with OCaml-compatible operator
/// precedence. Notably it shares OCaml's parse of `[1, 2, 3]` as a
/// one-element list containing a triple -- the error class the paper's
/// list-comma constructive change targets -- and lets a nested `match`
/// swallow the outer match's remaining arms, motivating the
/// reparenthesizing change of Section 3.2.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_PARSER_H
#define SEMINAL_MINICAML_PARSER_H

#include "minicaml/Ast.h"
#include "minicaml/Token.h"

#include <optional>
#include <string>
#include <vector>

namespace seminal {
namespace caml {

/// A fatal syntax error. The search procedure only runs on files that
/// parse (it sits between parsing and type-checking, Section 2).
struct ParseError {
  SourceLoc Loc;
  std::string Message;

  std::string str() const { return Loc.str() + ": " + Message; }
};

/// Outcome of a parse: a program, or the first syntax error.
struct ParseResult {
  std::optional<Program> Prog;
  std::optional<ParseError> Error;

  bool ok() const { return Prog.has_value(); }
};

/// Parses a complete source file (a sequence of structure items).
ParseResult parseProgram(const std::string &Source);

/// Parses a single expression (testing convenience).
struct ParseExprResult {
  ExprPtr E;
  std::optional<ParseError> Error;
  bool ok() const { return E != nullptr; }
};
ParseExprResult parseExpression(const std::string &Source);

/// Parses a type signature written in concrete syntax (used to load the
/// standard-library environment). \returns null and sets \p Error on
/// malformed input.
TypeExprPtr parseTypeSignature(const std::string &Source,
                               std::optional<ParseError> &Error);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_PARSER_H
