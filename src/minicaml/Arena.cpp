//===- Arena.cpp - Hash-consed AST arena implementation --------------------==//

#include "minicaml/Arena.h"

#include "minicaml/Hash.h"

#include <algorithm>
#include <cassert>

using namespace seminal;
using namespace seminal::caml;

//===----------------------------------------------------------------------===//
// Hash computation (must replicate minicaml/Hash field order exactly)
//===----------------------------------------------------------------------===//

uint64_t AstArena::exprHashOf(Expr::Kind Kind, long IntValue, bool BoolValue,
                              const std::string &StringValue,
                              const std::string &Name, bool IsRec,
                              const std::vector<std::string> &FieldNames,
                              PatternId Binding, const PatternId *Params,
                              size_t NumParams, const PatternId *ArmPats,
                              size_t NumArmPats, const ExprId *Children,
                              size_t NumChildren) const {
  using hashing::mix;
  using hashing::mixString;
  uint64_t H = mix(hashing::Seed, 0xE0 + uint64_t(Kind));
  H = mix(H, uint64_t(IntValue));
  H = mix(H, BoolValue ? 2 : 1);
  H = mixString(H, StringValue);
  H = mixString(H, Name);
  H = mix(H, IsRec ? 2 : 1);
  for (const std::string &F : FieldNames)
    H = mixString(H, F);
  if (Binding != InvalidId)
    H = mix(H, PatternNodes[Binding].Hash);
  H = mix(H, NumParams);
  for (size_t I = 0; I < NumParams; ++I)
    H = mix(H, PatternNodes[Params[I]].Hash);
  H = mix(H, NumArmPats);
  for (size_t I = 0; I < NumArmPats; ++I)
    H = mix(H, PatternNodes[ArmPats[I]].Hash);
  H = mix(H, NumChildren);
  for (size_t I = 0; I < NumChildren; ++I)
    H = mix(H, ExprNodes[Children[I]].Hash);
  return H;
}

namespace {

bool typeExprEquals(const TypeExpr &A, const TypeExpr &B) {
  if (A.TheKind != B.TheKind || A.Name != B.Name ||
      A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I < A.Args.size(); ++I)
    if (!typeExprEquals(*A.Args[I], *B.Args[I]))
      return false;
  return true;
}

bool optTypeExprEquals(const TypeExprPtr &A, const TypeExprPtr &B) {
  if ((A == nullptr) != (B == nullptr))
    return false;
  return !A || typeExprEquals(*A, *B);
}

/// Full structural equality for type/exception declarations. Decl::equals
/// only compares names for these; the arena needs the real thing so the
/// canonical node it materializes from is structurally the tree that was
/// interned.
bool otherDeclEquals(const Decl &A, const Decl &B) {
  if (A.kind() != B.kind())
    return false;
  if (A.kind() == Decl::Kind::Exception)
    return A.ExcName == B.ExcName && optTypeExprEquals(A.ExcArgType,
                                                       B.ExcArgType);
  if (A.TypeName != B.TypeName || A.TypeParams != B.TypeParams ||
      A.IsRecord != B.IsRecord || A.Cases.size() != B.Cases.size() ||
      A.Fields.size() != B.Fields.size())
    return false;
  for (size_t I = 0; I < A.Cases.size(); ++I)
    if (A.Cases[I].Name != B.Cases[I].Name ||
        !optTypeExprEquals(A.Cases[I].ArgType, B.Cases[I].ArgType))
      return false;
  for (size_t I = 0; I < A.Fields.size(); ++I)
    if (A.Fields[I].Name != B.Fields[I].Name ||
        A.Fields[I].IsMutable != B.Fields[I].IsMutable ||
        !optTypeExprEquals(A.Fields[I].Type, B.Fields[I].Type))
      return false;
  return true;
}

size_t stringsBytes(const std::vector<std::string> &V) {
  size_t N = 0;
  for (const std::string &S : V)
    N += S.size();
  return N;
}

} // namespace

bool AstArena::sameDecl(const DeclNode &A, const DeclNode &B) const {
  if (A.Kind != B.Kind)
    return false;
  if (A.Kind == Decl::Kind::Let)
    return A.IsRec == B.IsRec && A.Binding == B.Binding &&
           A.Params == B.Params && A.Rhs == B.Rhs;
  return otherDeclEquals(*A.Other, *B.Other);
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

AstArena::DeclId AstArena::internDeclNode(DeclNode &&N) {
  std::vector<DeclId> &Bucket = DeclTable[N.Hash];
  for (DeclId Id : Bucket)
    if (sameDecl(DeclNodes[Id], N)) {
      ++TheStats.Hits;
      return Id;
    }
  DeclId Id = DeclId(DeclNodes.size());
  ++TheStats.Nodes;
  TheStats.Bytes += sizeof(DeclNode) + N.Params.size() * sizeof(PatternId) +
                    (N.Other ? size_t(N.Other->size()) * sizeof(Expr) : 0);
  DeclNodes.push_back(std::move(N));
  Bucket.push_back(Id);
  return Id;
}

AstArena::PatternId AstArena::internPatternKeyed(const Pattern &P,
                                                 const PatternId *Elems,
                                                 size_t NumElems,
                                                 PatternId Head,
                                                 PatternId Tail,
                                                 PatternId Arg) {
  using hashing::mix;
  using hashing::mixString;
  uint64_t H = mix(hashing::Seed, 0x50 + uint64_t(P.kind()));
  switch (P.kind()) {
  case Pattern::Kind::Wild:
  case Pattern::Kind::Unit:
    break;
  case Pattern::Kind::Var:
  case Pattern::Kind::Constr:
    H = mixString(H, P.Name);
    if (Arg != InvalidId)
      H = mix(H, PatternNodes[Arg].Hash);
    break;
  case Pattern::Kind::Int:
    H = mix(H, uint64_t(P.IntValue));
    break;
  case Pattern::Kind::Bool:
    H = mix(H, P.BoolValue ? 2 : 1);
    break;
  case Pattern::Kind::String:
    H = mixString(H, P.StringValue);
    break;
  case Pattern::Kind::Tuple:
  case Pattern::Kind::List:
    for (size_t I = 0; I < NumElems; ++I)
      H = mix(H, PatternNodes[Elems[I]].Hash);
    H = mix(H, NumElems);
    break;
  case Pattern::Kind::Cons:
    H = mix(H, PatternNodes[Head].Hash);
    H = mix(H, PatternNodes[Tail].Hash);
    break;
  }

  auto SameAsKey = [&](const PatternNode &C) {
    if (C.Kind != P.kind())
      return false;
    switch (C.Kind) {
    case Pattern::Kind::Wild:
    case Pattern::Kind::Unit:
      return true;
    case Pattern::Kind::Var:
    case Pattern::Kind::Constr:
      return C.Name == P.Name && C.Arg == Arg;
    case Pattern::Kind::Int:
      return C.IntValue == P.IntValue;
    case Pattern::Kind::Bool:
      return C.BoolValue == P.BoolValue;
    case Pattern::Kind::String:
      return C.StringValue == P.StringValue;
    case Pattern::Kind::Tuple:
    case Pattern::Kind::List:
      return C.Elems.size() == NumElems &&
             std::equal(C.Elems.begin(), C.Elems.end(), Elems);
    case Pattern::Kind::Cons:
      return C.Head == Head && C.Tail == Tail;
    }
    return false;
  };
  std::vector<PatternId> &Bucket = PatternTable[H];
  for (PatternId Id : Bucket)
    if (SameAsKey(PatternNodes[Id])) {
      ++TheStats.Hits;
      return Id;
    }

  PatternNode N;
  N.Kind = P.kind();
  N.BoolValue = P.BoolValue;
  N.IntValue = P.IntValue;
  N.Name = P.Name;
  N.StringValue = P.StringValue;
  N.Elems.assign(Elems, Elems + NumElems);
  N.Head = Head;
  N.Tail = Tail;
  N.Arg = Arg;
  N.Hash = H;
  PatternId Id = PatternId(PatternNodes.size());
  ++TheStats.Nodes;
  TheStats.Bytes += sizeof(PatternNode) + N.Name.size() +
                    N.StringValue.size() + N.Elems.size() * sizeof(PatternId);
  PatternNodes.push_back(std::move(N));
  Bucket.push_back(Id);
  return Id;
}

AstArena::PatternId AstArena::internPattern(const Pattern &P) {
  size_t ElemStart = PatStack.size();
  for (const PatternPtr &Elem : P.Elems)
    PatStack.push_back(internPattern(*Elem));
  PatternId Head = P.Head ? internPattern(*P.Head) : InvalidId;
  PatternId Tail = P.Tail ? internPattern(*P.Tail) : InvalidId;
  PatternId Arg = P.Arg ? internPattern(*P.Arg) : InvalidId;
  PatternId Id = internPatternKeyed(P, PatStack.data() + ElemStart,
                                    PatStack.size() - ElemStart, Head, Tail,
                                    Arg);
  PatStack.resize(ElemStart);
  return Id;
}

AstArena::ExprId AstArena::internExprKeyed(const Expr &E, PatternId Binding,
                                           const PatternId *Params,
                                           size_t NumParams,
                                           const PatternId *ArmPats,
                                           size_t NumArmPats,
                                           const ExprId *Children,
                                           size_t NumChildren) {
  uint64_t H = exprHashOf(E.kind(), E.IntValue, E.BoolValue, E.StringValue,
                          E.Name, E.IsRec, E.FieldNames, Binding, Params,
                          NumParams, ArmPats, NumArmPats, Children,
                          NumChildren);
  auto SameAsKey = [&](const ExprNode &C) {
    return C.Kind == E.kind() && C.IntValue == E.IntValue &&
           C.BoolValue == E.BoolValue && C.IsRec == E.IsRec &&
           C.StringValue == E.StringValue && C.Name == E.Name &&
           C.FieldNames == E.FieldNames && C.Binding == Binding &&
           C.Params.size() == NumParams &&
           std::equal(C.Params.begin(), C.Params.end(), Params) &&
           C.ArmPats.size() == NumArmPats &&
           std::equal(C.ArmPats.begin(), C.ArmPats.end(), ArmPats) &&
           C.Children.size() == NumChildren &&
           std::equal(C.Children.begin(), C.Children.end(), Children);
  };
  std::vector<ExprId> &Bucket = ExprTable[H];
  for (ExprId Id : Bucket)
    if (SameAsKey(ExprNodes[Id])) {
      ++TheStats.Hits;
      return Id;
    }

  ExprNode N;
  N.Kind = E.kind();
  N.BoolValue = E.BoolValue;
  N.IsRec = E.IsRec;
  N.IntValue = E.IntValue;
  N.StringValue = E.StringValue;
  N.Name = E.Name;
  N.FieldNames = E.FieldNames;
  N.Binding = Binding;
  N.Params.assign(Params, Params + NumParams);
  N.ArmPats.assign(ArmPats, ArmPats + NumArmPats);
  N.Children.assign(Children, Children + NumChildren);
  N.Hash = H;
  ExprId Id = ExprId(ExprNodes.size());
  ++TheStats.Nodes;
  TheStats.Bytes += sizeof(ExprNode) + N.StringValue.size() + N.Name.size() +
                    stringsBytes(N.FieldNames) +
                    N.FieldNames.size() * sizeof(std::string) +
                    (N.Params.size() + N.ArmPats.size()) * sizeof(PatternId) +
                    N.Children.size() * sizeof(ExprId);
  ExprNodes.push_back(std::move(N));
  Bucket.push_back(Id);
  return Id;
}

AstArena::ExprId AstArena::internExpr(const Expr &E) {
  PatternId Binding = E.Binding ? internPattern(*E.Binding) : InvalidId;
  size_t ParamStart = PatStack.size();
  for (const PatternPtr &Param : E.Params)
    PatStack.push_back(internPattern(*Param));
  size_t ArmStart = PatStack.size();
  for (const PatternPtr &Pat : E.ArmPats)
    PatStack.push_back(internPattern(*Pat));
  size_t ChildStart = ExprStack.size();
  for (const ExprPtr &Child : E.Children)
    ExprStack.push_back(internExpr(*Child));
  ExprId Id = internExprKeyed(
      E, Binding, PatStack.data() + ParamStart, ArmStart - ParamStart,
      PatStack.data() + ArmStart, PatStack.size() - ArmStart,
      ExprStack.data() + ChildStart, ExprStack.size() - ChildStart);
  PatStack.resize(ParamStart);
  ExprStack.resize(ChildStart);
  return Id;
}

AstArena::DeclId AstArena::internDecl(const Decl &D) {
  if (D.kind() != Decl::Kind::Let) {
    DeclNode N;
    N.Kind = D.kind();
    N.Other = D.clone();
    N.Hash = hashDecl(D);
    return internDeclNode(std::move(N));
  }

  PatternId Binding = internPattern(*D.Binding);
  size_t ParamStart = PatStack.size();
  for (const PatternPtr &Param : D.Params)
    PatStack.push_back(internPattern(*Param));
  size_t NumParams = PatStack.size() - ParamStart;
  ExprId Rhs = internExpr(*D.Rhs);
  // After the Rhs walk: its stack frames are popped, but pushes may have
  // reallocated the stack, so take the pointer only now.
  const PatternId *Params = PatStack.data() + ParamStart;

  using hashing::mix;
  uint64_t H = mix(hashing::Seed, 0xD0 + uint64_t(Decl::Kind::Let));
  H = mix(H, D.IsRec ? 2 : 1);
  H = mix(H, PatternNodes[Binding].Hash);
  H = mix(H, NumParams);
  for (size_t I = 0; I < NumParams; ++I)
    H = mix(H, PatternNodes[Params[I]].Hash);
  H = mix(H, ExprNodes[Rhs].Hash);

  DeclId Found = InvalidId;
  std::vector<DeclId> &Bucket = DeclTable[H];
  for (DeclId Id : Bucket) {
    const DeclNode &C = DeclNodes[Id];
    if (C.Kind == Decl::Kind::Let && C.IsRec == D.IsRec &&
        C.Binding == Binding && C.Rhs == Rhs &&
        C.Params.size() == NumParams &&
        std::equal(C.Params.begin(), C.Params.end(), Params)) {
      ++TheStats.Hits;
      Found = Id;
      break;
    }
  }
  if (Found == InvalidId) {
    DeclNode N;
    N.Kind = Decl::Kind::Let;
    N.IsRec = D.IsRec;
    N.Binding = Binding;
    N.Params.assign(Params, Params + NumParams);
    N.Rhs = Rhs;
    N.Hash = H;
    Found = DeclId(DeclNodes.size());
    ++TheStats.Nodes;
    TheStats.Bytes += sizeof(DeclNode) + N.Params.size() * sizeof(PatternId);
    DeclNodes.push_back(std::move(N));
    Bucket.push_back(Found);
  }
  PatStack.resize(ParamStart);
  return Found;
}

//===----------------------------------------------------------------------===//
// Overlays
//===----------------------------------------------------------------------===//

AstArena::ExprId AstArena::internWithChild(ExprId Orig, unsigned Slot,
                                           ExprId NewChild) {
  if (ExprNodes[Orig].Children[Slot] == NewChild)
    return Orig; // No-op replacement: the overlay is the base itself.

  uint64_t H;
  {
    const ExprNode &O = ExprNodes[Orig];
    using hashing::mix;
    using hashing::mixString;
    H = mix(hashing::Seed, 0xE0 + uint64_t(O.Kind));
    H = mix(H, uint64_t(O.IntValue));
    H = mix(H, O.BoolValue ? 2 : 1);
    H = mixString(H, O.StringValue);
    H = mixString(H, O.Name);
    H = mix(H, O.IsRec ? 2 : 1);
    for (const std::string &F : O.FieldNames)
      H = mixString(H, F);
    if (O.Binding != InvalidId)
      H = mix(H, PatternNodes[O.Binding].Hash);
    H = mix(H, O.Params.size());
    for (PatternId Param : O.Params)
      H = mix(H, PatternNodes[Param].Hash);
    H = mix(H, O.ArmPats.size());
    for (PatternId Pat : O.ArmPats)
      H = mix(H, PatternNodes[Pat].Hash);
    H = mix(H, O.Children.size());
    for (size_t I = 0; I < O.Children.size(); ++I)
      H = mix(H, ExprNodes[I == Slot ? NewChild : O.Children[I]].Hash);
  }

  std::vector<ExprId> &Bucket = ExprTable[H];
  for (ExprId Id : Bucket) {
    const ExprNode &C = ExprNodes[Id];
    const ExprNode &O = ExprNodes[Orig];
    if (C.Kind != O.Kind || C.IntValue != O.IntValue ||
        C.BoolValue != O.BoolValue || C.IsRec != O.IsRec ||
        C.StringValue != O.StringValue || C.Name != O.Name ||
        C.FieldNames != O.FieldNames || C.Binding != O.Binding ||
        C.Params != O.Params || C.ArmPats != O.ArmPats ||
        C.Children.size() != O.Children.size())
      continue;
    bool Same = true;
    for (size_t I = 0; I < C.Children.size(); ++I)
      if (C.Children[I] != (I == Slot ? NewChild : O.Children[I])) {
        Same = false;
        break;
      }
    if (Same) {
      ++TheStats.Hits;
      return Id;
    }
  }

  // Genuinely new spine node: copy the record (the only allocation the
  // overlay pays, and only the first time this particular edit is seen).
  ExprNode N = ExprNodes[Orig];
  N.Children[Slot] = NewChild;
  N.Hash = H;
  ExprId Id = ExprId(ExprNodes.size());
  ++TheStats.Nodes;
  TheStats.Bytes += sizeof(ExprNode) + N.StringValue.size() + N.Name.size() +
                    stringsBytes(N.FieldNames) +
                    N.FieldNames.size() * sizeof(std::string) +
                    (N.Params.size() + N.ArmPats.size()) * sizeof(PatternId) +
                    N.Children.size() * sizeof(ExprId);
  ExprNodes.push_back(std::move(N));
  Bucket.push_back(Id);
  return Id;
}

AstArena::ExprId AstArena::overlayExpr(ExprId Base,
                                       const std::vector<unsigned> &Steps,
                                       ExprId Repl) {
  if (Steps.empty())
    return Repl;
  // Collect the spine into the shared scratch stack (balanced frame), then
  // rebuild bottom-up through the one-slot probe.
  size_t SpineStart = ExprStack.size();
  ExprId Cur = Base;
  for (unsigned Step : Steps) {
    assert(Step < ExprNodes[Cur].Children.size() && "overlay step range");
    ExprStack.push_back(Cur);
    Cur = ExprNodes[Cur].Children[Step];
  }
  ExprId New = Repl;
  for (size_t I = Steps.size(); I-- > 0;)
    New = internWithChild(ExprStack[SpineStart + I], Steps[I], New);
  ExprStack.resize(SpineStart);
  return New;
}

AstArena::DeclId AstArena::internLetWithRhs(DeclId Base, ExprId NewRhs) {
  if (DeclNodes[Base].Rhs == NewRhs)
    return Base;

  uint64_t H;
  {
    const DeclNode &O = DeclNodes[Base];
    using hashing::mix;
    H = mix(hashing::Seed, 0xD0 + uint64_t(Decl::Kind::Let));
    H = mix(H, O.IsRec ? 2 : 1);
    H = mix(H, PatternNodes[O.Binding].Hash);
    H = mix(H, O.Params.size());
    for (PatternId Param : O.Params)
      H = mix(H, PatternNodes[Param].Hash);
    H = mix(H, ExprNodes[NewRhs].Hash);
  }

  std::vector<DeclId> &Bucket = DeclTable[H];
  for (DeclId Id : Bucket) {
    const DeclNode &C = DeclNodes[Id];
    const DeclNode &O = DeclNodes[Base];
    if (C.Kind == Decl::Kind::Let && C.IsRec == O.IsRec &&
        C.Binding == O.Binding && C.Rhs == NewRhs && C.Params == O.Params) {
      ++TheStats.Hits;
      return Id;
    }
  }

  DeclNode N;
  N.Kind = Decl::Kind::Let;
  N.IsRec = DeclNodes[Base].IsRec;
  N.Binding = DeclNodes[Base].Binding;
  N.Params = DeclNodes[Base].Params;
  N.Rhs = NewRhs;
  N.Hash = H;
  DeclId Id = DeclId(DeclNodes.size());
  ++TheStats.Nodes;
  TheStats.Bytes += sizeof(DeclNode) + N.Params.size() * sizeof(PatternId);
  DeclNodes.push_back(std::move(N));
  Bucket.push_back(Id);
  return Id;
}

AstArena::DeclId AstArena::overlayDecl(DeclId Base,
                                       const std::vector<unsigned> &Steps,
                                       ExprId Repl) {
  assert(DeclNodes[Base].Kind == Decl::Kind::Let && "overlay on non-let");
  return internLetWithRhs(Base, overlayExpr(DeclNodes[Base].Rhs, Steps, Repl));
}

//===----------------------------------------------------------------------===//
// Materialization
//===----------------------------------------------------------------------===//

PatternPtr AstArena::materializePattern(PatternId Id) const {
  const PatternNode &N = PatternNodes[Id];
  auto P = std::make_unique<Pattern>(N.Kind);
  P->BoolValue = N.BoolValue;
  P->IntValue = N.IntValue;
  P->Name = N.Name;
  P->StringValue = N.StringValue;
  P->Elems.reserve(N.Elems.size());
  for (PatternId Elem : N.Elems)
    P->Elems.push_back(materializePattern(Elem));
  if (N.Head != InvalidId)
    P->Head = materializePattern(N.Head);
  if (N.Tail != InvalidId)
    P->Tail = materializePattern(N.Tail);
  if (N.Arg != InvalidId)
    P->Arg = materializePattern(N.Arg);
  return P;
}

ExprPtr AstArena::materializeExpr(ExprId Id) const {
  const ExprNode &N = ExprNodes[Id];
  auto E = std::make_unique<Expr>(N.Kind);
  E->BoolValue = N.BoolValue;
  E->IsRec = N.IsRec;
  E->IntValue = N.IntValue;
  E->StringValue = N.StringValue;
  E->Name = N.Name;
  E->FieldNames = N.FieldNames;
  if (N.Binding != InvalidId)
    E->Binding = materializePattern(N.Binding);
  E->Params.reserve(N.Params.size());
  for (PatternId Param : N.Params)
    E->Params.push_back(materializePattern(Param));
  E->ArmPats.reserve(N.ArmPats.size());
  for (PatternId Pat : N.ArmPats)
    E->ArmPats.push_back(materializePattern(Pat));
  E->Children.reserve(N.Children.size());
  for (ExprId Child : N.Children)
    E->Children.push_back(materializeExpr(Child));
  return E;
}

DeclPtr AstArena::materializeDecl(DeclId Id) const {
  const DeclNode &N = DeclNodes[Id];
  if (N.Kind != Decl::Kind::Let)
    return N.Other->clone();
  auto D = std::make_unique<Decl>(Decl::Kind::Let);
  D->IsRec = N.IsRec;
  D->Binding = materializePattern(N.Binding);
  D->Params.reserve(N.Params.size());
  for (PatternId Param : N.Params)
    D->Params.push_back(materializePattern(Param));
  D->Rhs = materializeExpr(N.Rhs);
  return D;
}

void AstArena::clear() {
  ExprNodes.clear();
  PatternNodes.clear();
  DeclNodes.clear();
  ExprTable.clear();
  PatternTable.clear();
  DeclTable.clear();
  TheStats = Stats();
  PatStack.clear();
  ExprStack.clear();
}
