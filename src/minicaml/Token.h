//===- Token.h - Mini-Caml tokens -------------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the mini-Caml lexer.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_TOKEN_H
#define SEMINAL_MINICAML_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace seminal {
namespace caml {

/// A lexical token. LowerIdent and UpperIdent are distinguished because
/// capitalized names are variant constructors in Caml.
struct Token {
  enum class Kind {
    Eof,
    Error,
    IntLit,
    StringLit,
    LowerIdent,
    UpperIdent,
    // Keywords.
    KwLet,
    KwRec,
    KwIn,
    KwFun,
    KwIf,
    KwThen,
    KwElse,
    KwMatch,
    KwWith,
    KwType,
    KwOf,
    KwException,
    KwRaise,
    KwTrue,
    KwFalse,
    KwMutable,
    KwNot,
    KwBegin,
    KwEnd,
    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    SemiSemi,
    Bar,
    Arrow,      // ->
    ColonColon, // ::
    Colon,
    Eq,        // =
    EqEq,      // ==
    NotEq,     // <>
    Lt,
    Gt,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,  // ^
    At,     // @
    Assign, // :=
    Bang,   // !
    AndAnd, // &&
    OrOr,   // ||
    Dot,
    LArrow,     // <-
    Underscore, // _
    Quote,      // ' (type variables)
  };

  Kind TheKind = Kind::Eof;
  SourceLoc Loc;
  uint32_t EndOffset = 0;
  std::string Text;  ///< Identifier spelling / string literal contents.
  long IntValue = 0; ///< IntLit payload.

  bool is(Kind K) const { return TheKind == K; }

  SourceSpan span() const { return SourceSpan(Loc, EndOffset); }

  /// Human-readable token description for parse diagnostics.
  std::string describe() const;
};

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_TOKEN_H
