//===- Lexer.cpp - Mini-Caml lexer implementation -------------------------==//

#include "minicaml/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace seminal;
using namespace seminal::caml;

std::string Token::describe() const {
  switch (TheKind) {
  case Kind::Eof:
    return "end of input";
  case Kind::Error:
    return "lexical error: " + Text;
  case Kind::IntLit:
    return "integer literal " + std::to_string(IntValue);
  case Kind::StringLit:
    return "string literal";
  case Kind::LowerIdent:
  case Kind::UpperIdent:
    return "identifier '" + Text + "'";
  default:
    return Text.empty() ? "token" : "'" + Text + "'";
  }
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (atEnd() || Source[Pos] != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia(bool &Ok, std::string &Error) {
  Ok = true;
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Nested (* ... *) comments.
    if (C == '(' && peekAt(1) == '*') {
      advance();
      advance();
      int Depth = 1;
      while (Depth > 0) {
        if (atEnd()) {
          Ok = false;
          Error = "unterminated comment";
          return;
        }
        char D = advance();
        if (D == '(' && peek() == '*') {
          advance();
          ++Depth;
        } else if (D == '*' && peek() == ')') {
          advance();
          --Depth;
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(Token::Kind K, SourceLoc Start) {
  Token T;
  T.TheKind = K;
  T.Loc = Start;
  T.EndOffset = static_cast<uint32_t>(Pos);
  T.Text = Source.substr(Start.Offset, Pos - Start.Offset);
  return T;
}

Token Lexer::errorToken(SourceLoc Start, const std::string &Message) {
  Token T;
  T.TheKind = Token::Kind::Error;
  T.Loc = Start;
  T.EndOffset = static_cast<uint32_t>(Pos);
  T.Text = Message;
  return T;
}

Token Lexer::next() {
  bool Ok = true;
  std::string TriviaError;
  skipTrivia(Ok, TriviaError);
  SourceLoc Start = here();
  if (!Ok)
    return errorToken(Start, TriviaError);
  if (atEnd())
    return makeToken(Token::Kind::Eof, Start);

  char C = advance();

  if (std::isdigit(static_cast<unsigned char>(C))) {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T = makeToken(Token::Kind::IntLit, Start);
    T.IntValue = std::stol(T.Text);
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
           peek() == '\'')
      advance();
    Token T = makeToken(Token::Kind::LowerIdent, Start);
    static const std::unordered_map<std::string, Token::Kind> Keywords = {
        {"let", Token::Kind::KwLet},         {"rec", Token::Kind::KwRec},
        {"in", Token::Kind::KwIn},           {"fun", Token::Kind::KwFun},
        {"if", Token::Kind::KwIf},           {"then", Token::Kind::KwThen},
        {"else", Token::Kind::KwElse},       {"match", Token::Kind::KwMatch},
        {"with", Token::Kind::KwWith},       {"type", Token::Kind::KwType},
        {"of", Token::Kind::KwOf},           {"raise", Token::Kind::KwRaise},
        {"true", Token::Kind::KwTrue},       {"false", Token::Kind::KwFalse},
        {"mutable", Token::Kind::KwMutable}, {"not", Token::Kind::KwNot},
        {"begin", Token::Kind::KwBegin},     {"end", Token::Kind::KwEnd},
        {"exception", Token::Kind::KwException},
    };
    auto It = Keywords.find(T.Text);
    if (It != Keywords.end()) {
      T.TheKind = It->second;
      return T;
    }
    if (T.Text == "_") {
      T.TheKind = Token::Kind::Underscore;
      return T;
    }
    if (std::isupper(static_cast<unsigned char>(T.Text[0])))
      T.TheKind = Token::Kind::UpperIdent;
    return T;
  }

  if (C == '"') {
    std::string Value;
    while (true) {
      if (atEnd())
        return errorToken(Start, "unterminated string literal");
      char D = advance();
      if (D == '"')
        break;
      if (D == '\\') {
        if (atEnd())
          return errorToken(Start, "unterminated string literal");
        char E = advance();
        switch (E) {
        case 'n':
          Value += '\n';
          break;
        case 't':
          Value += '\t';
          break;
        case '\\':
          Value += '\\';
          break;
        case '"':
          Value += '"';
          break;
        default:
          return errorToken(Start, "unknown escape sequence");
        }
        continue;
      }
      Value += D;
    }
    Token T = makeToken(Token::Kind::StringLit, Start);
    T.Text = Value;
    return T;
  }

  switch (C) {
  case '(':
    return makeToken(Token::Kind::LParen, Start);
  case ')':
    return makeToken(Token::Kind::RParen, Start);
  case '[':
    return makeToken(Token::Kind::LBracket, Start);
  case ']':
    return makeToken(Token::Kind::RBracket, Start);
  case '{':
    return makeToken(Token::Kind::LBrace, Start);
  case '}':
    return makeToken(Token::Kind::RBrace, Start);
  case ',':
    return makeToken(Token::Kind::Comma, Start);
  case ';':
    if (match(';'))
      return makeToken(Token::Kind::SemiSemi, Start);
    return makeToken(Token::Kind::Semi, Start);
  case '|':
    if (match('|'))
      return makeToken(Token::Kind::OrOr, Start);
    return makeToken(Token::Kind::Bar, Start);
  case '-':
    if (match('>'))
      return makeToken(Token::Kind::Arrow, Start);
    return makeToken(Token::Kind::Minus, Start);
  case ':':
    if (match(':'))
      return makeToken(Token::Kind::ColonColon, Start);
    if (match('='))
      return makeToken(Token::Kind::Assign, Start);
    return makeToken(Token::Kind::Colon, Start);
  case '=':
    if (match('='))
      return makeToken(Token::Kind::EqEq, Start);
    return makeToken(Token::Kind::Eq, Start);
  case '<':
    if (match('>'))
      return makeToken(Token::Kind::NotEq, Start);
    if (match('='))
      return makeToken(Token::Kind::Le, Start);
    if (match('-'))
      return makeToken(Token::Kind::LArrow, Start);
    return makeToken(Token::Kind::Lt, Start);
  case '>':
    if (match('='))
      return makeToken(Token::Kind::Ge, Start);
    return makeToken(Token::Kind::Gt, Start);
  case '+':
    return makeToken(Token::Kind::Plus, Start);
  case '*':
    return makeToken(Token::Kind::Star, Start);
  case '/':
    return makeToken(Token::Kind::Slash, Start);
  case '^':
    return makeToken(Token::Kind::Caret, Start);
  case '@':
    return makeToken(Token::Kind::At, Start);
  case '!':
    return makeToken(Token::Kind::Bang, Start);
  case '&':
    if (match('&'))
      return makeToken(Token::Kind::AndAnd, Start);
    return errorToken(Start, "expected '&&'");
  case '.':
    return makeToken(Token::Kind::Dot, Start);
  case '\'':
    return makeToken(Token::Kind::Quote, Start);
  default:
    return errorToken(Start, std::string("unexpected character '") + C + "'");
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool Done = T.is(Token::Kind::Eof) || T.is(Token::Kind::Error);
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  if (Tokens.back().is(Token::Kind::Error)) {
    Token Eof;
    Eof.TheKind = Token::Kind::Eof;
    Eof.Loc = here();
    Eof.EndOffset = static_cast<uint32_t>(Pos);
    Tokens.push_back(Eof);
  }
  return Tokens;
}
