//===- Types.cpp - Mini-Caml semantic types implementation ----------------==//

#include "minicaml/Types.h"

#include "analysis/Provenance.h"
#include "support/StrUtil.h"

#include <map>
#include <sstream>

using namespace seminal;
using namespace seminal::caml;

namespace {
thread_local TypeTrail *ActiveTrail = nullptr;
} // namespace

TypeTrail *caml::activeTypeTrail() { return ActiveTrail; }

TypeTrailScope::TypeTrailScope(TypeTrail &Trail) : Prev(ActiveTrail) {
  ActiveTrail = &Trail;
}

TypeTrailScope::~TypeTrailScope() { ActiveTrail = Prev; }

void TypeTrail::undoAll() { undoTo(Mark{}); }

void TypeTrail::undoTo(const Mark &M) {
  assert(M.Links <= Links.size() && M.Levels <= Levels.size() &&
         "trail mark is ahead of the trail");
  while (Links.size() > M.Links) {
    Links.back().first->Link = Links.back().second;
    Links.pop_back();
  }
  while (Levels.size() > M.Levels) {
    Levels.back().first->Level = Levels.back().second;
    Levels.pop_back();
  }
}

void TypeArena::rewindTo(const Mark &M) {
  assert(M.Nodes <= Nodes.size() && "rewind past the end of the arena");
  while (Nodes.size() > M.Nodes)
    Nodes.pop_back();
  NextVarId = M.NextVarId;
}

Type *TypeArena::freshVar(int Level) {
  Nodes.emplace_back();
  Type &T = Nodes.back();
  T.TheKind = Type::Kind::Var;
  T.VarId = NextVarId++;
  T.Level = Level;
  analysis::hookAlloc(&T);
  return &T;
}

Type *TypeArena::con(const std::string &Name, std::vector<Type *> Args) {
  Nodes.emplace_back();
  Type &T = Nodes.back();
  T.TheKind = Type::Kind::Con;
  T.Name = Name;
  T.Args = std::move(Args);
  analysis::hookAlloc(&T);
  return &T;
}

Type *TypeArena::arrowChain(const std::vector<Type *> &Froms, Type *To) {
  Type *Result = To;
  for (auto It = Froms.rbegin(); It != Froms.rend(); ++It)
    Result = arrow(*It, Result);
  return Result;
}

Type *caml::prune(Type *T) {
  assert(T && "prune of null type");
  if (T->TheKind != Type::Kind::Var || !T->Link)
    return T;
  Type *Rep = prune(T->Link);
  if (T->Link != Rep) {
    // Path compression rewrites an already-bound link; a rollback must
    // restore the original chain, because the old target may itself be
    // un-bound by the same rollback.
    if (TypeTrail *Trail = ActiveTrail)
      Trail->recordLink(T, T->Link);
    T->Link = Rep;
  }
  return Rep;
}

bool caml::occursAndAdjust(Type *Var, Type *T) {
  T = prune(T);
  if (T == Var)
    return true;
  if (T->isVar()) {
    if (T->Level > Var->Level && Var->Level != GenericLevel) {
      if (TypeTrail *Trail = ActiveTrail)
        Trail->recordLevel(T, T->Level);
      T->Level = Var->Level;
    }
    return false;
  }
  for (Type *Arg : T->Args)
    if (occursAndAdjust(Var, Arg))
      return true;
  return false;
}

namespace {

/// Shared naming context so related types print consistent variables.
class TypePrinter {
public:
  std::string print(Type *T) { return printPrec(T, 0); }

private:
  // Precedence: 0 = arrow (lowest), 1 = tuple, 2 = application/atom.
  std::string printPrec(Type *T, int MinPrec) {
    T = prune(T);
    if (T->isVar()) {
      auto It = Names.find(T->VarId);
      if (It == Names.end()) {
        std::string Name = makeName(Names.size());
        It = Names.emplace(T->VarId, Name).first;
      }
      return "'" + It->second;
    }
    if (T->isArrow()) {
      std::string Text =
          printPrec(T->Args[0], 1) + " -> " + printPrec(T->Args[1], 0);
      return MinPrec > 0 ? "(" + Text + ")" : Text;
    }
    if (T->isCon("*")) {
      std::vector<std::string> Parts;
      for (Type *Arg : T->Args)
        Parts.push_back(printPrec(Arg, 2));
      std::string Text = join(Parts, " * ");
      return MinPrec > 1 ? "(" + Text + ")" : Text;
    }
    if (T->Args.empty())
      return T->Name;
    if (T->Args.size() == 1)
      return printPrec(T->Args[0], 2) + " " + T->Name;
    std::vector<std::string> Parts;
    for (Type *Arg : T->Args)
      Parts.push_back(printPrec(Arg, 0));
    return "(" + join(Parts, ", ") + ") " + T->Name;
  }

  static std::string makeName(size_t Index) {
    std::string Name(1, char('a' + Index % 26));
    if (Index >= 26)
      Name += std::to_string(Index / 26);
    return Name;
  }

  std::map<int, std::string> Names;
};

} // namespace

std::string caml::typeToString(Type *T) {
  TypePrinter Printer;
  return Printer.print(T);
}

std::pair<std::string, std::string> caml::typesToStrings(Type *A, Type *B) {
  TypePrinter Printer;
  std::string SA = Printer.print(A);
  std::string SB = Printer.print(B);
  return {SA, SB};
}
