//===- Lexer.h - Mini-Caml lexer --------------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for mini-Caml. Supports nested (* ... *) comments,
/// decimal integers, string literals with the usual escapes, and the
/// operator set listed in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_LEXER_H
#define SEMINAL_MINICAML_LEXER_H

#include "minicaml/Token.h"

#include <string>
#include <vector>

namespace seminal {
namespace caml {

/// Tokenizes a complete source buffer up front (mini-Caml files are small,
/// and the searcher re-parses nothing -- it works on ASTs).
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the whole buffer. The result always ends with an Eof token; a
  /// lexical error yields a single Error token at the offending position
  /// followed by Eof.
  std::vector<Token> tokenize();

private:
  Token next();
  Token makeToken(Token::Kind K, SourceLoc Start);
  Token errorToken(SourceLoc Start, const std::string &Message);

  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }
  char peekAt(size_t Ahead) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipTrivia(bool &Ok, std::string &Error);
  SourceLoc here() const {
    return SourceLoc(Line, Col, static_cast<uint32_t>(Pos));
  }

  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_LEXER_H
