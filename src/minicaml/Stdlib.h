//===- Stdlib.h - Initial environment for mini-Caml -------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard-library values, constructors, and exceptions that every
/// program is checked against. Signatures are written in concrete type
/// syntax and parsed on first use; type variables are implicitly
/// generalized. The set covers everything the paper's examples touch
/// (List.map, List.combine, List.filter, List.mem, List.nth, refs, I/O).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_STDLIB_H
#define SEMINAL_MINICAML_STDLIB_H

#include <string>
#include <vector>

namespace seminal {
namespace caml {

/// One standard-library value binding.
struct StdlibValue {
  std::string Name;
  std::string TypeSig; ///< Concrete syntax, e.g. "('a -> 'b) -> 'a list ->
                       ///< 'b list".
};

/// One predefined exception constructor.
struct StdlibException {
  std::string Name;
  std::string ArgTypeSig; ///< Empty for nullary exceptions.
};

/// All predefined value bindings.
const std::vector<StdlibValue> &stdlibValues();

/// All predefined exceptions (constructors of exn).
const std::vector<StdlibException> &stdlibExceptions();

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_STDLIB_H
