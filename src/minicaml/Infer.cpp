//===- Infer.cpp - Hindley-Milner type inference implementation -----------==//

#include "minicaml/Infer.h"

#include "analysis/Provenance.h"
#include "minicaml/Parser.h"
#include "minicaml/Stdlib.h"
#include "minicaml/Types.h"
#include "minicaml/Unify.h"

#include <cassert>
#include <map>
#include <unordered_map>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// Information about one variant/exception constructor. Result and Arg
/// share generic variables and are instantiated together.
struct ConstrInfo {
  std::string TypeName;
  Type *Result = nullptr;
  Type *Arg = nullptr; ///< Null for nullary constructors.
};

/// Information about one record type. All field types share the record's
/// generic parameter variables.
struct RecordInfo {
  Type *RecordType = nullptr;
  struct Field {
    std::string Name;
    Type *Ty = nullptr;
    bool IsMutable = false;
  };
  std::vector<Field> Fields;

  const Field *findField(const std::string &Name) const {
    for (const auto &F : Fields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// The whole-program inference context. One instance per oracle call for
/// one-shot checks; kept alive across calls by InferenceCheckpoint, which
/// pairs each incremental query with a TypeTrail rollback.
class Inferencer {
public:
  Inferencer() { loadStdlib(); }

  TypecheckResult run(const Program &Prog, const TypecheckOptions &RunOpts);

  /// Infers the first \p Count declarations. \returns false if the prefix
  /// fails (the instance must then be discarded).
  bool runPrefix(const Program &Prog, unsigned Count);

  /// Type-checks \p D on top of the current environment, then rolls back
  /// every side effect (environment entries, arena allocations,
  /// unification links, level adjustments).
  TypecheckResult checkAdditionalDecl(const Decl &D,
                                      const TypecheckOptions &RunOpts);

  /// Commit-or-rollback: processes \p D permanently if it type-checks,
  /// restores the environment if it does not. \returns success; \p
  /// TypesAllocated, when non-null, receives this call's allocations.
  bool extendDecl(const Decl &D, size_t *TypesAllocated);

private:
  // Environment -----------------------------------------------------------
  size_t envMark() const { return Env.size(); }
  void envRestore(size_t Mark) { Env.resize(Mark); }
  void bind(const std::string &Name, Type *T) { Env.emplace_back(Name, T); }
  Type *lookup(const std::string &Name) const {
    for (auto It = Env.rbegin(); It != Env.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  // Levels and schemes -----------------------------------------------------
  void enterLevel() { ++CurrentLevel; }
  void exitLevel() { --CurrentLevel; }

  /// Marks every variable above the current level generic.
  void generalize(Type *T) {
    T = prune(T);
    if (T->isVar()) {
      if (T->Level > CurrentLevel) {
        if (TypeTrail *Trail = activeTypeTrail())
          Trail->recordLevel(T, T->Level);
        T->Level = GenericLevel;
      }
      return;
    }
    for (Type *Arg : T->Args)
      generalize(Arg);
  }

  /// Copies \p T replacing generic variables with fresh ones (shared
  /// through \p Subst so one instantiation is consistent across parts).
  Type *instantiate(Type *T, std::map<Type *, Type *> &Subst) {
    T = prune(T);
    if (T->isVar()) {
      if (T->Level != GenericLevel)
        return T;
      auto It = Subst.find(T);
      if (It != Subst.end())
        return It->second;
      Type *Fresh = Arena.freshVar(CurrentLevel);
      Subst.emplace(T, Fresh);
      // The generic variable and its per-use copy are distinct objects;
      // without this edge the slicer could not connect a use site's clash
      // back to the constraints of the definition it instantiates.
      analysis::hookCopy(T, Fresh);
      return Fresh;
    }
    if (T->Args.empty())
      return T;
    std::vector<Type *> Args;
    Args.reserve(T->Args.size());
    for (Type *Arg : T->Args)
      Args.push_back(instantiate(Arg, Subst));
    return Arena.con(T->Name, std::move(Args));
  }
  Type *instantiate(Type *T) {
    std::map<Type *, Type *> Subst;
    return instantiate(T, Subst);
  }

  // Error reporting ---------------------------------------------------------
  bool hasError() const { return ErrorOut.has_value(); }

  void reportMismatch(const SourceSpan &Span, Type *Actual, Type *Expected) {
    if (hasError())
      return;
    TypeError E;
    E.TheKind = TypeError::Kind::Mismatch;
    E.Span = Span;
    auto [A, B] = typesToStrings(Actual, Expected);
    E.ActualType = A;
    E.ExpectedType = B;
    E.Message = "This expression has type " + A +
                " but is here used with type " + B;
    ErrorOut = std::move(E);
  }

  void reportPatternMismatch(const SourceSpan &Span, Type *Actual,
                             Type *Expected) {
    if (hasError())
      return;
    TypeError E;
    E.TheKind = TypeError::Kind::PatternMismatch;
    E.Span = Span;
    auto [A, B] = typesToStrings(Actual, Expected);
    E.ActualType = A;
    E.ExpectedType = B;
    E.Message = "This pattern matches values of type " + A +
                " but a pattern was expected which matches values of type " +
                B;
    ErrorOut = std::move(E);
  }

  void report(TypeError::Kind K, const SourceSpan &Span,
              const std::string &Message, const std::string &Name = "") {
    if (hasError())
      return;
    TypeError E;
    E.TheKind = K;
    E.Span = Span;
    E.Message = Message;
    E.Name = Name;
    ErrorOut = std::move(E);
  }

  /// Runs unify() but rolls back the partial bindings of a failed attempt
  /// before returning, so a diagnostic rendered afterwards shows the types
  /// as they were before the doomed constraint (the "destructive even on
  /// failure" sharp edge documented in Unify.h: unifying `'a * string`
  /// with `int * bool` must not leave `'a := int` behind in the message).
  /// With an enclosing trail the failed entries are popped off it; without
  /// one a local trail captures just this attempt. Successful bindings are
  /// kept either way.
  UnifyResult unifyRollbackOnFailure(Type *Actual, Type *Expected) {
    if (TypeTrail *Outer = activeTypeTrail()) {
      const TypeTrail::Mark M = Outer->mark();
      UnifyResult R = unify(Actual, Expected);
      if (!R.Ok)
        Outer->undoTo(M);
      return R;
    }
    TypeTrail Local;
    UnifyResult R;
    {
      TypeTrailScope Scope(Local);
      R = unify(Actual, Expected);
    }
    if (!R.Ok)
      Local.undoAll();
    return R;
  }

  /// Unifies and converts a failure into a Mismatch at \p Span.
  bool unifyOrMismatch(const SourceSpan &Span, Type *Actual, Type *Expected) {
    if (hasError())
      return false;
    UnifyResult R = unifyRollbackOnFailure(Actual, Expected);
    if (R.Ok)
      return true;
    if (R.OccursCheckFailure) {
      report(TypeError::Kind::Cyclic, Span,
             "This expression has a cyclic type");
      return false;
    }
    reportMismatch(Span, Actual, Expected);
    return false;
  }

  // Type-expression conversion ---------------------------------------------
  Type *convertTypeExpr(const TypeExpr &TE,
                        std::map<std::string, Type *> &VarMap,
                        bool AutoBindVars, const SourceSpan &Span);

  // Declarations -------------------------------------------------------------
  void loadStdlib();
  void processDecl(const Decl &D);
  void processTypeDecl(const Decl &D);
  void processExceptionDecl(const Decl &D);
  void processLetDecl(bool IsRec, const Pattern &Binding,
                      const std::vector<PatternPtr> &Params, const Expr &Rhs,
                      const SourceSpan &Span, Type **OutType);

  // Expressions and patterns -------------------------------------------------
  void checkExpr(const Expr &E, Type *Expected);
  void checkPattern(const Pattern &P, Type *Expected);
  Type *binOpType(const std::string &Op);
  Type *unaryOpType(const std::string &Op);

  // State ---------------------------------------------------------------------
  const TypecheckOptions *Opts = nullptr; ///< Options of the current run.
  TypeArena Arena;
  std::vector<std::pair<std::string, Type *>> Env;
  std::unordered_map<std::string, int> TypeArity;
  std::unordered_map<std::string, ConstrInfo> Constructors;
  std::unordered_map<std::string, std::string> FieldOwner;
  std::unordered_map<std::string, RecordInfo> Records;
  int CurrentLevel = 0;
  std::optional<TypeError> ErrorOut;
  Type *QueriedTy = nullptr;
  std::vector<std::pair<std::string, Type *>> TopLevel;
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

void Inferencer::loadStdlib() {
  TypeArity = {{"int", 0},  {"bool", 0}, {"string", 0}, {"unit", 0},
               {"exn", 0},  {"list", 1}, {"ref", 1},    {"option", 1},
  };

  // The option type and its constructors.
  Type *OptParam = Arena.freshVar(GenericLevel);
  Type *OptType = Arena.con("option", {OptParam});
  Constructors["None"] = ConstrInfo{"option", OptType, nullptr};
  Constructors["Some"] = ConstrInfo{"option", OptType, OptParam};

  for (const StdlibValue &V : stdlibValues()) {
    std::optional<ParseError> PE;
    TypeExprPtr TE = parseTypeSignature(V.TypeSig, PE);
    assert(TE && "malformed stdlib signature");
    std::map<std::string, Type *> VarMap;
    Type *T = convertTypeExpr(*TE, VarMap, /*AutoBindVars=*/true,
                              SourceSpan());
    assert(T && !hasError() && "stdlib signature failed to convert");
    // Signature variables are generic by construction (see convert).
    bind(V.Name, T);
  }

  for (const StdlibException &E : stdlibExceptions()) {
    ConstrInfo Info;
    Info.TypeName = "exn";
    Info.Result = Arena.exnType();
    if (!E.ArgTypeSig.empty()) {
      std::optional<ParseError> PE;
      TypeExprPtr TE = parseTypeSignature(E.ArgTypeSig, PE);
      assert(TE && "malformed stdlib exception signature");
      std::map<std::string, Type *> VarMap;
      Info.Arg = convertTypeExpr(*TE, VarMap, true, SourceSpan());
    }
    Constructors[E.Name] = std::move(Info);
  }
}

Type *Inferencer::convertTypeExpr(const TypeExpr &TE,
                                  std::map<std::string, Type *> &VarMap,
                                  bool AutoBindVars, const SourceSpan &Span) {
  if (hasError())
    return Arena.freshVar(CurrentLevel);
  switch (TE.TheKind) {
  case TypeExpr::Kind::Var: {
    auto It = VarMap.find(TE.Name);
    if (It != VarMap.end())
      return It->second;
    if (!AutoBindVars) {
      report(TypeError::Kind::Unbound, Span,
             "Unbound type parameter '" + TE.Name, TE.Name);
      return Arena.freshVar(CurrentLevel);
    }
    Type *Fresh = Arena.freshVar(GenericLevel);
    VarMap.emplace(TE.Name, Fresh);
    return Fresh;
  }
  case TypeExpr::Kind::Name: {
    auto It = TypeArity.find(TE.Name);
    if (It == TypeArity.end()) {
      report(TypeError::Kind::Unbound, Span,
             "Unbound type constructor " + TE.Name, TE.Name);
      return Arena.freshVar(CurrentLevel);
    }
    if (int(TE.Args.size()) != It->second) {
      report(TypeError::Kind::ConstructorArity, Span,
             "The type constructor " + TE.Name + " expects " +
                 std::to_string(It->second) + " argument(s)",
             TE.Name);
      return Arena.freshVar(CurrentLevel);
    }
    std::vector<Type *> Args;
    for (const auto &Arg : TE.Args)
      Args.push_back(convertTypeExpr(*Arg, VarMap, AutoBindVars, Span));
    return Arena.con(TE.Name, std::move(Args));
  }
  case TypeExpr::Kind::Arrow: {
    Type *From = convertTypeExpr(*TE.Args[0], VarMap, AutoBindVars, Span);
    Type *To = convertTypeExpr(*TE.Args[1], VarMap, AutoBindVars, Span);
    return Arena.arrow(From, To);
  }
  case TypeExpr::Kind::Tuple: {
    std::vector<Type *> Elems;
    for (const auto &Arg : TE.Args)
      Elems.push_back(convertTypeExpr(*Arg, VarMap, AutoBindVars, Span));
    return Arena.tuple(std::move(Elems));
  }
  }
  return Arena.freshVar(CurrentLevel);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Inferencer::processTypeDecl(const Decl &D) {
  // Register the constructor first so recursive types work.
  TypeArity[D.TypeName] = int(D.TypeParams.size());

  std::map<std::string, Type *> VarMap;
  std::vector<Type *> ParamVars;
  for (const std::string &Param : D.TypeParams) {
    Type *V = Arena.freshVar(GenericLevel);
    VarMap.emplace(Param, V);
    ParamVars.push_back(V);
  }
  Type *Self = Arena.con(D.TypeName, ParamVars);

  if (D.IsRecord) {
    RecordInfo Info;
    Info.RecordType = Self;
    for (const RecordFieldDecl &Field : D.Fields) {
      RecordInfo::Field F;
      F.Name = Field.Name;
      F.IsMutable = Field.IsMutable;
      F.Ty = convertTypeExpr(*Field.Type, VarMap, /*AutoBindVars=*/false,
                             D.Span);
      Info.Fields.push_back(F);
      FieldOwner[Field.Name] = D.TypeName;
    }
    Records[D.TypeName] = std::move(Info);
    return;
  }

  for (const VariantCase &Case : D.Cases) {
    ConstrInfo Info;
    Info.TypeName = D.TypeName;
    Info.Result = Self;
    if (Case.ArgType)
      Info.Arg = convertTypeExpr(*Case.ArgType, VarMap, false, D.Span);
    Constructors[Case.Name] = std::move(Info);
  }
}

void Inferencer::processExceptionDecl(const Decl &D) {
  ConstrInfo Info;
  Info.TypeName = "exn";
  Info.Result = Arena.exnType();
  if (D.ExcArgType) {
    std::map<std::string, Type *> VarMap;
    Info.Arg = convertTypeExpr(*D.ExcArgType, VarMap, false, D.Span);
  }
  Constructors[D.ExcName] = std::move(Info);
}

void Inferencer::processLetDecl(bool IsRec, const Pattern &Binding,
                                const std::vector<PatternPtr> &Params,
                                const Expr &Rhs, const SourceSpan &Span,
                                Type **OutType) {
  enterLevel();
  Type *RhsType = nullptr;

  if (!Params.empty()) {
    // Function sugar: let [rec] f p1 ... pn = rhs.
    assert(Binding.kind() == Pattern::Kind::Var &&
           "function sugar requires a variable binding");
    size_t Mark = envMark();
    Type *FnVar = nullptr;
    if (IsRec) {
      FnVar = Arena.freshVar(CurrentLevel);
      bind(Binding.Name, FnVar);
    }
    std::vector<Type *> ParamTypes;
    for (const auto &Param : Params) {
      Type *A = Arena.freshVar(CurrentLevel);
      checkPattern(*Param, A);
      ParamTypes.push_back(A);
    }
    Type *BodyType = Arena.freshVar(CurrentLevel);
    Type *FnType = Arena.arrowChain(ParamTypes, BodyType);
    if (FnVar)
      unifyOrMismatch(Span, FnVar, FnType);
    checkExpr(Rhs, BodyType);
    envRestore(Mark);
    RhsType = FnType;
  } else {
    Type *T = Arena.freshVar(CurrentLevel);
    size_t Mark = envMark();
    if (IsRec && Binding.kind() == Pattern::Kind::Var)
      bind(Binding.Name, T);
    checkExpr(Rhs, T);
    envRestore(Mark);
    RhsType = T;
  }

  exitLevel();
  if (hasError()) {
    *OutType = RhsType;
    return;
  }

  // Value restriction: generalize only syntactic values (function sugar
  // always yields a value).
  if (!Params.empty() || Rhs.isSyntacticValue())
    generalize(RhsType);
  checkPattern(Binding, RhsType);
  *OutType = RhsType;
}

void Inferencer::processDecl(const Decl &D) {
  analysis::ProvenanceNodeScope PNode(&D, analysis::ProvenanceNodeKind::Decl);
  switch (D.kind()) {
  case Decl::Kind::Type:
    processTypeDecl(D);
    return;
  case Decl::Kind::Exception:
    processExceptionDecl(D);
    return;
  case Decl::Kind::Let: {
    Type *T = nullptr;
    processLetDecl(D.IsRec, *D.Binding, D.Params, *D.Rhs, D.Span, &T);
    if (D.Binding->kind() == Pattern::Kind::Var && T)
      TopLevel.emplace_back(D.Binding->Name, T);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

void Inferencer::checkPattern(const Pattern &P, Type *Expected) {
  if (hasError())
    return;
  analysis::ProvenanceNodeScope PNode(&P, analysis::ProvenanceNodeKind::Pattern);
  switch (P.kind()) {
  case Pattern::Kind::Wild:
    return;
  case Pattern::Kind::Var:
    bind(P.Name, Expected);
    return;
  case Pattern::Kind::Int: {
    UnifyResult R = unify(Arena.intType(), Expected);
    if (!R.Ok)
      reportPatternMismatch(P.Span, Arena.intType(), Expected);
    return;
  }
  case Pattern::Kind::Bool: {
    UnifyResult R = unify(Arena.boolType(), Expected);
    if (!R.Ok)
      reportPatternMismatch(P.Span, Arena.boolType(), Expected);
    return;
  }
  case Pattern::Kind::String: {
    UnifyResult R = unify(Arena.stringType(), Expected);
    if (!R.Ok)
      reportPatternMismatch(P.Span, Arena.stringType(), Expected);
    return;
  }
  case Pattern::Kind::Unit: {
    UnifyResult R = unify(Arena.unitType(), Expected);
    if (!R.Ok)
      reportPatternMismatch(P.Span, Arena.unitType(), Expected);
    return;
  }
  case Pattern::Kind::Tuple: {
    std::vector<Type *> Elems;
    for (size_t I = 0; I < P.Elems.size(); ++I)
      Elems.push_back(Arena.freshVar(CurrentLevel));
    Type *TupleTy = Arena.tuple(Elems);
    UnifyResult R = unify(TupleTy, Expected);
    if (!R.Ok) {
      reportPatternMismatch(P.Span, TupleTy, Expected);
      return;
    }
    for (size_t I = 0; I < P.Elems.size(); ++I)
      checkPattern(*P.Elems[I], Elems[I]);
    return;
  }
  case Pattern::Kind::List: {
    Type *Elem = Arena.freshVar(CurrentLevel);
    Type *ListTy = Arena.listOf(Elem);
    UnifyResult R = unify(ListTy, Expected);
    if (!R.Ok) {
      reportPatternMismatch(P.Span, ListTy, Expected);
      return;
    }
    for (const auto &E : P.Elems)
      checkPattern(*E, Elem);
    return;
  }
  case Pattern::Kind::Cons: {
    Type *Elem = Arena.freshVar(CurrentLevel);
    Type *ListTy = Arena.listOf(Elem);
    UnifyResult R = unify(ListTy, Expected);
    if (!R.Ok) {
      reportPatternMismatch(P.Span, ListTy, Expected);
      return;
    }
    checkPattern(*P.Head, Elem);
    checkPattern(*P.Tail, ListTy);
    return;
  }
  case Pattern::Kind::Constr: {
    auto It = Constructors.find(P.Name);
    if (It == Constructors.end()) {
      report(TypeError::Kind::Unbound, P.Span,
             "Unbound constructor " + P.Name, P.Name);
      return;
    }
    std::map<Type *, Type *> Subst;
    Type *Result = instantiate(It->second.Result, Subst);
    Type *Arg =
        It->second.Arg ? instantiate(It->second.Arg, Subst) : nullptr;
    if ((P.Arg != nullptr) != (Arg != nullptr)) {
      report(TypeError::Kind::ConstructorArity, P.Span,
             "The constructor " + P.Name + " expects " +
                 (Arg ? "1 argument" : "0 arguments") +
                 ", but is applied here to " + (P.Arg ? "1" : "0"),
             P.Name);
      return;
    }
    // Rollback-on-failure: an instantiated constructor type can mix
    // generic and concrete parts, so a failed unify may leave sibling
    // bindings behind that would corrupt the rendered pattern type.
    UnifyResult R = unifyRollbackOnFailure(Result, Expected);
    if (!R.Ok) {
      reportPatternMismatch(P.Span, Result, Expected);
      return;
    }
    if (P.Arg)
      checkPattern(*P.Arg, Arg);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Type *Inferencer::binOpType(const std::string &Op) {
  if (Op == "+" || Op == "-" || Op == "*" || Op == "/")
    return Arena.arrowChain({Arena.intType(), Arena.intType()},
                            Arena.intType());
  if (Op == "=" || Op == "==" || Op == "<>" || Op == "<" || Op == ">" ||
      Op == "<=" || Op == ">=") {
    Type *A = Arena.freshVar(CurrentLevel);
    return Arena.arrowChain({A, A}, Arena.boolType());
  }
  if (Op == "^")
    return Arena.arrowChain({Arena.stringType(), Arena.stringType()},
                            Arena.stringType());
  if (Op == "@") {
    Type *L = Arena.listOf(Arena.freshVar(CurrentLevel));
    return Arena.arrowChain({L, L}, L);
  }
  if (Op == "&&" || Op == "||")
    return Arena.arrowChain({Arena.boolType(), Arena.boolType()},
                            Arena.boolType());
  if (Op == ":=") {
    Type *A = Arena.freshVar(CurrentLevel);
    return Arena.arrowChain({Arena.refOf(A), A}, Arena.unitType());
  }
  assert(false && "unknown binary operator");
  return Arena.freshVar(CurrentLevel);
}

Type *Inferencer::unaryOpType(const std::string &Op) {
  if (Op == "not")
    return Arena.arrow(Arena.boolType(), Arena.boolType());
  if (Op == "-")
    return Arena.arrow(Arena.intType(), Arena.intType());
  if (Op == "!") {
    Type *A = Arena.freshVar(CurrentLevel);
    return Arena.arrow(Arena.refOf(A), A);
  }
  assert(false && "unknown unary operator");
  return Arena.freshVar(CurrentLevel);
}

void Inferencer::checkExpr(const Expr &E, Type *Expected) {
  if (hasError())
    return;
  analysis::ProvenanceNodeScope PNode(&E, analysis::ProvenanceNodeKind::Expr);
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    unifyOrMismatch(E.Span, Arena.intType(), Expected);
    break;
  case Expr::Kind::BoolLit:
    unifyOrMismatch(E.Span, Arena.boolType(), Expected);
    break;
  case Expr::Kind::StringLit:
    unifyOrMismatch(E.Span, Arena.stringType(), Expected);
    break;
  case Expr::Kind::UnitLit:
    unifyOrMismatch(E.Span, Arena.unitType(), Expected);
    break;
  case Expr::Kind::Var: {
    Type *T = lookup(E.Name);
    if (!T) {
      report(TypeError::Kind::Unbound, E.Span, "Unbound value " + E.Name,
             E.Name);
      break;
    }
    unifyOrMismatch(E.Span, instantiate(T), Expected);
    break;
  }
  case Expr::Kind::Wildcard:
    // [[...]] has every type; nothing to do.
    break;
  case Expr::Kind::Adapt: {
    // adapt e: e must be well-typed on its own, result unconstrained.
    Type *Inner = Arena.freshVar(CurrentLevel);
    checkExpr(*E.child(0), Inner);
    break;
  }
  case Expr::Kind::Fun: {
    size_t Mark = envMark();
    Type *Cur = Expected;
    bool Bad = false;
    std::vector<Type *> ParamTypes;
    for (const auto &Param : E.Params) {
      Type *A = Arena.freshVar(CurrentLevel);
      Type *B = Arena.freshVar(CurrentLevel);
      UnifyResult R = unify(Cur, Arena.arrow(A, B));
      if (!R.Ok) {
        // The function offers more arguments than its context accepts.
        Type *Offered = Arena.arrow(A, B);
        reportMismatch(E.Span, Offered, Cur);
        Bad = true;
        break;
      }
      checkPattern(*Param, A);
      ParamTypes.push_back(A);
      Cur = B;
    }
    if (!Bad)
      checkExpr(*E.child(0), Cur);
    envRestore(Mark);
    break;
  }
  case Expr::Kind::App: {
    const Expr &Callee = *E.child(0);
    Type *FT = Arena.freshVar(CurrentLevel);
    checkExpr(Callee, FT);
    for (unsigned I = 1; I < E.numChildren() && !hasError(); ++I) {
      Type *A = Arena.freshVar(CurrentLevel);
      Type *B = Arena.freshVar(CurrentLevel);
      UnifyResult R = unify(FT, Arena.arrow(A, B));
      if (!R.Ok) {
        if (I == 1) {
          auto [FS, _] = typesToStrings(FT, FT);
          report(TypeError::Kind::NotFunction, Callee.Span,
                 "This expression has type " + FS +
                     "; it is not a function and cannot be applied");
        } else {
          auto [FS, _] = typesToStrings(FT, FT);
          report(TypeError::Kind::TooManyArgs, E.Span,
                 "This function is applied to too many arguments; its type "
                 "is " +
                     FS);
        }
        return;
      }
      checkExpr(*E.child(I), A);
      FT = B;
    }
    if (!hasError())
      unifyOrMismatch(E.Span, FT, Expected);
    break;
  }
  case Expr::Kind::Let: {
    size_t Mark = envMark();
    Type *T = nullptr;
    processLetDecl(E.IsRec, *E.Binding, E.Params, *E.child(0), E.Span, &T);
    if (!hasError())
      checkExpr(*E.child(1), Expected);
    envRestore(Mark);
    break;
  }
  case Expr::Kind::If: {
    checkExpr(*E.child(0), Arena.boolType());
    if (E.numChildren() == 2) {
      // if-without-else requires a unit branch and yields unit.
      checkExpr(*E.child(1), Arena.unitType());
      if (!hasError())
        unifyOrMismatch(E.Span, Arena.unitType(), Expected);
      break;
    }
    checkExpr(*E.child(1), Expected);
    checkExpr(*E.child(2), Expected);
    break;
  }
  case Expr::Kind::Tuple: {
    Type *P = prune(Expected);
    if (P->isCon("*") && P->Args.size() == E.Children.size()) {
      for (unsigned I = 0; I < E.numChildren(); ++I)
        checkExpr(*E.child(I), P->Args[I]);
      break;
    }
    std::vector<Type *> Elems;
    for (unsigned I = 0; I < E.numChildren(); ++I) {
      Type *T = Arena.freshVar(CurrentLevel);
      checkExpr(*E.child(I), T);
      Elems.push_back(T);
    }
    if (!hasError())
      unifyOrMismatch(E.Span, Arena.tuple(std::move(Elems)), Expected);
    break;
  }
  case Expr::Kind::List: {
    Type *P = prune(Expected);
    Type *Elem = nullptr;
    if (P->isCon("list"))
      Elem = P->Args[0];
    else {
      Elem = Arena.freshVar(CurrentLevel);
      if (!unifyOrMismatch(E.Span, Arena.listOf(Elem), Expected))
        break;
    }
    for (const auto &Child : E.Children)
      checkExpr(*Child, Elem);
    break;
  }
  case Expr::Kind::Cons: {
    Type *Elem = Arena.freshVar(CurrentLevel);
    Type *ListTy = Arena.listOf(Elem);
    if (!unifyOrMismatch(E.Span, ListTy, Expected))
      break;
    checkExpr(*E.child(0), Elem);
    checkExpr(*E.child(1), ListTy);
    break;
  }
  case Expr::Kind::BinOp: {
    Type *FT = binOpType(E.Name);
    // Shape: a -> b -> result. Check both operands against the domains.
    Type *ArgA = prune(FT)->Args[0];
    Type *Rest = prune(FT)->Args[1];
    checkExpr(*E.child(0), ArgA);
    if (hasError())
      break;
    Type *ArgB = prune(Rest)->Args[0];
    Type *Result = prune(Rest)->Args[1];
    checkExpr(*E.child(1), ArgB);
    if (hasError())
      break;
    unifyOrMismatch(E.Span, Result, Expected);
    break;
  }
  case Expr::Kind::UnaryOp: {
    Type *FT = unaryOpType(E.Name);
    checkExpr(*E.child(0), prune(FT)->Args[0]);
    if (hasError())
      break;
    unifyOrMismatch(E.Span, prune(FT)->Args[1], Expected);
    break;
  }
  case Expr::Kind::Match: {
    Type *S = Arena.freshVar(CurrentLevel);
    checkExpr(*E.child(0), S);
    for (unsigned I = 1; I < E.numChildren() && !hasError(); ++I) {
      size_t Mark = envMark();
      checkPattern(*E.ArmPats[I - 1], S);
      if (!hasError())
        checkExpr(*E.child(I), Expected);
      envRestore(Mark);
    }
    break;
  }
  case Expr::Kind::Constr: {
    auto It = Constructors.find(E.Name);
    if (It == Constructors.end()) {
      report(TypeError::Kind::Unbound, E.Span,
             "Unbound constructor " + E.Name, E.Name);
      break;
    }
    std::map<Type *, Type *> Subst;
    Type *Result = instantiate(It->second.Result, Subst);
    Type *Arg =
        It->second.Arg ? instantiate(It->second.Arg, Subst) : nullptr;
    bool HasArg = !E.Children.empty();
    if (HasArg != (Arg != nullptr)) {
      report(TypeError::Kind::ConstructorArity, E.Span,
             "The constructor " + E.Name + " expects " +
                 (Arg ? "1 argument" : "0 arguments") +
                 ", but is applied here to " + (HasArg ? "1" : "0"),
             E.Name);
      break;
    }
    if (HasArg)
      checkExpr(*E.child(0), Arg);
    if (!hasError())
      unifyOrMismatch(E.Span, Result, Expected);
    break;
  }
  case Expr::Kind::Seq: {
    // OCaml only warns when the left operand is not unit; no constraint.
    Type *T = Arena.freshVar(CurrentLevel);
    checkExpr(*E.child(0), T);
    checkExpr(*E.child(1), Expected);
    break;
  }
  case Expr::Kind::Raise:
    checkExpr(*E.child(0), Arena.exnType());
    // `raise e` has type 'a: compatible with any expectation.
    break;
  case Expr::Kind::Field: {
    auto It = FieldOwner.find(E.Name);
    if (It == FieldOwner.end()) {
      report(TypeError::Kind::Unbound, E.Span,
             "Unbound record field " + E.Name, E.Name);
      break;
    }
    const RecordInfo &Info = Records[It->second];
    std::map<Type *, Type *> Subst;
    Type *RecTy = instantiate(Info.RecordType, Subst);
    Type *FieldTy = instantiate(Info.findField(E.Name)->Ty, Subst);
    checkExpr(*E.child(0), RecTy);
    if (!hasError())
      unifyOrMismatch(E.Span, FieldTy, Expected);
    break;
  }
  case Expr::Kind::SetField: {
    auto It = FieldOwner.find(E.Name);
    if (It == FieldOwner.end()) {
      report(TypeError::Kind::Unbound, E.Span,
             "Unbound record field " + E.Name, E.Name);
      break;
    }
    const RecordInfo &Info = Records[It->second];
    const RecordInfo::Field *Field = Info.findField(E.Name);
    if (!Field->IsMutable) {
      report(TypeError::Kind::NotMutable, E.Span,
             "The record field " + E.Name + " is not mutable", E.Name);
      break;
    }
    std::map<Type *, Type *> Subst;
    Type *RecTy = instantiate(Info.RecordType, Subst);
    Type *FieldTy = instantiate(Field->Ty, Subst);
    checkExpr(*E.child(0), RecTy);
    checkExpr(*E.child(1), FieldTy);
    if (!hasError())
      unifyOrMismatch(E.Span, Arena.unitType(), Expected);
    break;
  }
  case Expr::Kind::Record: {
    assert(!E.FieldNames.empty() && "empty record literal");
    auto OwnerIt = FieldOwner.find(E.FieldNames[0]);
    if (OwnerIt == FieldOwner.end()) {
      report(TypeError::Kind::Unbound, E.Span,
             "Unbound record field " + E.FieldNames[0], E.FieldNames[0]);
      break;
    }
    const RecordInfo &Info = Records[OwnerIt->second];
    std::map<Type *, Type *> Subst;
    Type *RecTy = instantiate(Info.RecordType, Subst);
    // Every given field must belong; every declared field must be given.
    for (unsigned I = 0; I < E.numChildren() && !hasError(); ++I) {
      const RecordInfo::Field *Field = Info.findField(E.FieldNames[I]);
      if (!Field) {
        report(TypeError::Kind::RecordShape, E.Span,
               "The record field " + E.FieldNames[I] +
                   " does not belong to type " + OwnerIt->second,
               E.FieldNames[I]);
        break;
      }
      checkExpr(*E.child(I), instantiate(Field->Ty, Subst));
    }
    if (hasError())
      break;
    for (const auto &Field : Info.Fields) {
      bool Given = false;
      for (const std::string &Name : E.FieldNames)
        if (Name == Field.Name)
          Given = true;
      if (!Given) {
        report(TypeError::Kind::RecordShape, E.Span,
               "Some record fields are undefined: " + Field.Name,
               Field.Name);
        return;
      }
    }
    unifyOrMismatch(E.Span, RecTy, Expected);
    break;
  }
  }

  if (Opts && &E == Opts->QueryNode && !hasError())
    QueriedTy = Expected;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

TypecheckResult Inferencer::run(const Program &Prog,
                                const TypecheckOptions &RunOpts) {
  Opts = &RunOpts;
  std::optional<unsigned> FailedAt;
  for (unsigned I = 0; I < Prog.Decls.size() && I < RunOpts.DeclLimit; ++I) {
    processDecl(*Prog.Decls[I]);
    if (hasError()) {
      FailedAt = I;
      break;
    }
  }
  TypecheckResult Result;
  Result.Error = std::move(ErrorOut);
  Result.ErrorDeclIndex = FailedAt;
  if (Result.ok()) {
    for (const auto &[Name, T] : TopLevel)
      Result.TopLevelTypes.emplace_back(Name, typeToString(T));
    if (QueriedTy)
      Result.QueriedType = typeToString(QueriedTy);
  }
  Result.TypesAllocated = Arena.numAllocated();
  Opts = nullptr;
  return Result;
}

bool Inferencer::runPrefix(const Program &Prog, unsigned Count) {
  assert(Count <= Prog.Decls.size() && "prefix longer than the program");
  TypecheckOptions None;
  Opts = &None;
  for (unsigned I = 0; I < Count && !hasError(); ++I)
    processDecl(*Prog.Decls[I]);
  Opts = nullptr;
  return !hasError();
}

TypecheckResult Inferencer::checkAdditionalDecl(const Decl &D,
                                                const TypecheckOptions &RunOpts) {
  assert(D.kind() == Decl::Kind::Let &&
         "only let declarations can be checked incrementally");
  assert(!hasError() && "checkpointed environment must be error-free");

  const size_t EnvMark = Env.size();
  const size_t TopMark = TopLevel.size();
  const TypeArena::Mark AMark = Arena.mark();
  const int LevelMark = CurrentLevel;

  TypecheckResult Result;
  TypeTrail Trail;
  {
    // Every link/level write inside this scope lands on the trail, so the
    // rollback below restores the shared environment exactly -- including
    // monomorphic top-level types (e.g. `let r = ref []`) that this
    // query's unifications may have specialized.
    TypeTrailScope Scope(Trail);
    Opts = &RunOpts;
    QueriedTy = nullptr;
    processDecl(D);
    Result.Error = std::move(ErrorOut);
    // Render any queried type before the rollback unbinds it.
    if (Result.ok() && QueriedTy)
      Result.QueriedType = typeToString(QueriedTy);
    Result.TypesAllocated = Arena.numAllocated() - AMark.Nodes;
    Opts = nullptr;
    QueriedTy = nullptr;
    ErrorOut.reset();
  }

  Trail.undoAll();
  Env.resize(EnvMark);
  TopLevel.resize(TopMark);
  Arena.rewindTo(AMark);
  CurrentLevel = LevelMark;
  return Result;
}

bool Inferencer::extendDecl(const Decl &D, size_t *TypesAllocated) {
  const size_t EnvMark = Env.size();
  const size_t TopMark = TopLevel.size();
  const TypeArena::Mark AMark = Arena.mark();
  const int LevelMark = CurrentLevel;

  TypecheckOptions None;
  TypeTrail Trail;
  bool Succeeded;
  {
    TypeTrailScope Scope(Trail);
    Opts = &None;
    QueriedTy = nullptr;
    processDecl(D);
    Succeeded = !hasError();
    if (TypesAllocated)
      *TypesAllocated = Arena.numAllocated() - AMark.Nodes;
    Opts = nullptr;
    QueriedTy = nullptr;
    ErrorOut.reset();
  }
  if (Succeeded)
    // Commit: keep the bindings and links; the trail records are dropped.
    return true;
  Trail.undoAll();
  Env.resize(EnvMark);
  TopLevel.resize(TopMark);
  Arena.rewindTo(AMark);
  CurrentLevel = LevelMark;
  return false;
}

} // namespace

TypecheckResult caml::typecheckProgram(const Program &Prog,
                                       const TypecheckOptions &Opts) {
  Inferencer Inf;
  return Inf.run(Prog, Opts);
}

//===----------------------------------------------------------------------===//
// InferenceCheckpoint
//===----------------------------------------------------------------------===//

struct InferenceCheckpoint::Impl {
  Inferencer Inf;
};

InferenceCheckpoint::InferenceCheckpoint() = default;
InferenceCheckpoint::~InferenceCheckpoint() = default;

std::unique_ptr<InferenceCheckpoint>
InferenceCheckpoint::create(const Program &Prog, unsigned PrefixLen) {
  if (PrefixLen > Prog.Decls.size())
    return nullptr;
  // Incremental queries are Let-only; a prefix is fine with any kinds.
  auto CP = std::unique_ptr<InferenceCheckpoint>(new InferenceCheckpoint());
  CP->TheImpl = std::make_unique<Impl>();
  CP->PrefixLen = PrefixLen;
  if (!CP->TheImpl->Inf.runPrefix(Prog, PrefixLen))
    return nullptr;
  return CP;
}

TypecheckResult InferenceCheckpoint::checkDecl(const Decl &D,
                                               const TypecheckOptions &Opts) {
  return TheImpl->Inf.checkAdditionalDecl(D, Opts);
}

bool InferenceCheckpoint::extendWith(const Decl &D, size_t *TypesAllocated) {
  if (!TheImpl->Inf.extendDecl(D, TypesAllocated))
    return false;
  ++PrefixLen;
  return true;
}
