//===- Printer.cpp - Mini-Caml pretty printer implementation --------------==//

#include "minicaml/Printer.h"

#include "support/StrUtil.h"

#include <cassert>
#include <sstream>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// Precedence levels, mirroring Parser.cpp. Higher binds tighter.
enum Prec : int {
  PrecSeq = 0,
  PrecKeyword = 1, // fun/if/match/let-in/raise bodies extend right
  PrecTuple = 2,
  PrecAssign = 3,
  PrecOr = 4,
  PrecAnd = 5,
  PrecCmp = 6,
  PrecConcat = 7,
  PrecCons = 8,
  PrecAdd = 9,
  PrecMul = 10,
  PrecUnary = 11,
  PrecApp = 12,
  PrecField = 13,
  PrecAtom = 14,
};

int binOpPrec(const std::string &Op) {
  if (Op == ":=")
    return PrecAssign;
  if (Op == "||")
    return PrecOr;
  if (Op == "&&")
    return PrecAnd;
  if (Op == "=" || Op == "==" || Op == "<>" || Op == "<" || Op == ">" ||
      Op == "<=" || Op == ">=")
    return PrecCmp;
  if (Op == "^" || Op == "@")
    return PrecConcat;
  if (Op == "+" || Op == "-")
    return PrecAdd;
  if (Op == "*" || Op == "/")
    return PrecMul;
  return PrecCmp;
}

/// Prints \p E; wraps in parentheses if its natural precedence is lower
/// than \p MinPrec.
std::string print(const Expr &E, int MinPrec);

std::string maybeParen(const std::string &Text, int Prec, int MinPrec) {
  if (Prec < MinPrec)
    return "(" + Text + ")";
  return Text;
}

std::string printParams(const std::vector<PatternPtr> &Params) {
  std::vector<std::string> Parts;
  for (const auto &Param : Params) {
    std::string Text = Param->str();
    // Non-atomic parameter patterns need parens: fun (x, y) -> ...
    bool Atomic = Param->kind() == Pattern::Kind::Wild ||
                  Param->kind() == Pattern::Kind::Var ||
                  Param->kind() == Pattern::Kind::Unit ||
                  Param->kind() == Pattern::Kind::Int ||
                  Param->kind() == Pattern::Kind::Bool ||
                  Param->kind() == Pattern::Kind::String ||
                  Param->kind() == Pattern::Kind::List ||
                  Param->kind() == Pattern::Kind::Tuple; // str() adds parens
  if (!Atomic)
      Text = "(" + Text + ")";
    Parts.push_back(Text);
  }
  return join(Parts, " ");
}

std::string print(const Expr &E, int MinPrec) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    if (E.IntValue < 0)
      return maybeParen(std::to_string(E.IntValue), PrecUnary, MinPrec);
    return std::to_string(E.IntValue);
  case Expr::Kind::BoolLit:
    return E.BoolValue ? "true" : "false";
  case Expr::Kind::StringLit:
    return "\"" + escapeStringLiteral(E.StringValue) + "\"";
  case Expr::Kind::UnitLit:
    return "()";
  case Expr::Kind::Var:
    return E.Name;
  case Expr::Kind::Wildcard:
    return "[[...]]";
  case Expr::Kind::Adapt:
    return maybeParen("adapt " + print(*E.child(0), PrecField), PrecApp,
                      MinPrec);
  case Expr::Kind::Fun: {
    std::string Text = "fun " + printParams(E.Params) + " -> " +
                       print(*E.child(0), PrecKeyword);
    return maybeParen(Text, PrecKeyword, MinPrec);
  }
  case Expr::Kind::App: {
    std::vector<std::string> Parts;
    Parts.push_back(print(*E.child(0), PrecField));
    for (unsigned I = 1; I < E.numChildren(); ++I)
      Parts.push_back(print(*E.child(I), PrecField));
    return maybeParen(join(Parts, " "), PrecApp, MinPrec);
  }
  case Expr::Kind::Let: {
    std::string Text = "let ";
    if (E.IsRec)
      Text += "rec ";
    Text += E.Binding->str();
    if (!E.Params.empty())
      Text += " " + printParams(E.Params);
    Text += " = " + print(*E.child(0), PrecKeyword);
    Text += " in " + print(*E.child(1), PrecSeq);
    return maybeParen(Text, PrecKeyword, MinPrec);
  }
  case Expr::Kind::If: {
    std::string Text = "if " + print(*E.child(0), PrecKeyword) + " then " +
                       print(*E.child(1), PrecTuple + 1);
    if (E.numChildren() == 3)
      Text += " else " + print(*E.child(2), PrecTuple + 1);
    return maybeParen(Text, PrecKeyword, MinPrec);
  }
  case Expr::Kind::Tuple: {
    std::vector<std::string> Parts;
    for (const auto &Child : E.Children)
      Parts.push_back(print(*Child, PrecAssign));
    // Tuples are always printed with parentheses for readability; OCaml
    // programmers overwhelmingly write them that way.
    return "(" + join(Parts, ", ") + ")";
  }
  case Expr::Kind::List: {
    std::vector<std::string> Parts;
    for (const auto &Child : E.Children)
      Parts.push_back(print(*Child, PrecTuple));
    return "[" + join(Parts, "; ") + "]";
  }
  case Expr::Kind::Cons: {
    std::string Text = print(*E.child(0), PrecCons + 1) + " :: " +
                       print(*E.child(1), PrecCons);
    return maybeParen(Text, PrecCons, MinPrec);
  }
  case Expr::Kind::BinOp: {
    int Prec = binOpPrec(E.Name);
    bool RightAssoc = E.Name == ":=" || E.Name == "^" || E.Name == "@";
    int LhsMin = RightAssoc ? Prec + 1 : Prec;
    int RhsMin = RightAssoc ? Prec : Prec + 1;
    std::string Text = print(*E.child(0), LhsMin) + " " + E.Name + " " +
                       print(*E.child(1), RhsMin);
    return maybeParen(Text, Prec, MinPrec);
  }
  case Expr::Kind::UnaryOp: {
    std::string Text;
    if (E.Name == "not")
      Text = "not " + print(*E.child(0), PrecUnary);
    else
      Text = E.Name + print(*E.child(0), PrecUnary);
    return maybeParen(Text, PrecUnary, MinPrec);
  }
  case Expr::Kind::Match: {
    std::ostringstream OS;
    OS << "match " << print(*E.child(0), PrecKeyword) << " with ";
    for (unsigned I = 1; I < E.numChildren(); ++I) {
      if (I > 1)
        OS << " | ";
      // A keyword form (match/fun/let/if) in a non-final arm body would
      // swallow the remaining arms when re-parsed; parenthesize it.
      bool LastArm = I + 1 == E.numChildren();
      OS << E.ArmPats[I - 1]->str() << " -> "
         << print(*E.child(I), LastArm ? PrecKeyword : PrecKeyword + 1);
    }
    return maybeParen(OS.str(), PrecKeyword, MinPrec);
  }
  case Expr::Kind::Constr: {
    if (E.Children.empty())
      return E.Name;
    std::string Text = E.Name + " " + print(*E.child(0), PrecField);
    return maybeParen(Text, PrecApp, MinPrec);
  }
  case Expr::Kind::Seq: {
    std::string Text =
        print(*E.child(0), PrecTuple) + "; " + print(*E.child(1), PrecSeq);
    return maybeParen(Text, PrecSeq, MinPrec);
  }
  case Expr::Kind::Raise: {
    std::string Text = "raise " + print(*E.child(0), PrecField);
    return maybeParen(Text, PrecApp, MinPrec);
  }
  case Expr::Kind::Field:
    return print(*E.child(0), PrecField) + "." + E.Name;
  case Expr::Kind::SetField: {
    std::string Text = print(*E.child(0), PrecField) + "." + E.Name + " <- " +
                       print(*E.child(1), PrecAssign);
    return maybeParen(Text, PrecAssign, MinPrec);
  }
  case Expr::Kind::Record: {
    std::vector<std::string> Parts;
    for (unsigned I = 0; I < E.numChildren(); ++I)
      Parts.push_back(E.FieldNames[I] + " = " + print(*E.child(I), PrecTuple));
    return "{ " + join(Parts, "; ") + " }";
  }
  }
  return "<expr>";
}

} // namespace

std::string caml::printExpr(const Expr &E) { return print(E, PrecSeq); }

std::string caml::printDecl(const Decl &D) {
  switch (D.kind()) {
  case Decl::Kind::Let: {
    std::string Text = "let ";
    if (D.IsRec)
      Text += "rec ";
    Text += D.Binding->str();
    if (!D.Params.empty())
      Text += " " + printParams(D.Params);
    Text += " = " + printExpr(*D.Rhs);
    return Text;
  }
  case Decl::Kind::Type: {
    std::string Text = "type ";
    if (D.TypeParams.size() == 1) {
      Text += "'" + D.TypeParams[0] + " ";
    } else if (D.TypeParams.size() > 1) {
      std::vector<std::string> Parts;
      for (const auto &Param : D.TypeParams)
        Parts.push_back("'" + Param);
      Text += "(" + join(Parts, ", ") + ") ";
    }
    Text += D.TypeName + " = ";
    if (D.IsRecord) {
      std::vector<std::string> Parts;
      for (const auto &Field : D.Fields) {
        std::string FieldText;
        if (Field.IsMutable)
          FieldText += "mutable ";
        FieldText += Field.Name + " : " + Field.Type->str();
        Parts.push_back(FieldText);
      }
      Text += "{ " + join(Parts, "; ") + " }";
    } else {
      std::vector<std::string> Parts;
      for (const auto &Case : D.Cases) {
        std::string CaseText = Case.Name;
        if (Case.ArgType)
          CaseText += " of " + Case.ArgType->str();
        Parts.push_back(CaseText);
      }
      Text += join(Parts, " | ");
    }
    return Text;
  }
  case Decl::Kind::Exception: {
    std::string Text = "exception " + D.ExcName;
    if (D.ExcArgType)
      Text += " of " + D.ExcArgType->str();
    return Text;
  }
  }
  return "<decl>";
}

std::string caml::printProgram(const Program &Prog) {
  std::string Result;
  for (const auto &D : Prog.Decls) {
    Result += printDecl(*D);
    Result += "\n";
  }
  return Result;
}
