//===- Hash.cpp - Structural hashing implementation ------------------------==//

#include "minicaml/Hash.h"

using namespace seminal;
using namespace seminal::caml;

namespace {

// 64-bit FNV-1a over typed fields, with a splitmix-style finisher mixed in
// at every combine so shallow trees still diffuse well.
constexpr uint64_t FnvOffset = hashing::Seed;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t mix(uint64_t H, uint64_t V) { return hashing::mix(H, V); }

uint64_t hashString(uint64_t H, const std::string &S) {
  return hashing::mixString(H, S);
}

} // namespace

uint64_t hashing::mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  V *= 0xbf58476d1ce4e5b9ull;
  V ^= V >> 27;
  return (H ^ V) * FnvPrime;
}

uint64_t hashing::mixString(uint64_t H, const std::string &S) {
  uint64_t SH = Seed;
  for (unsigned char C : S) {
    SH ^= C;
    SH *= FnvPrime;
  }
  return mix(H, mix(SH, S.size()));
}

uint64_t caml::hashPattern(const Pattern &P) {
  uint64_t H = mix(FnvOffset, 0x50 + uint64_t(P.kind()));
  switch (P.kind()) {
  case Pattern::Kind::Wild:
  case Pattern::Kind::Unit:
    break;
  case Pattern::Kind::Var:
  case Pattern::Kind::Constr:
    H = hashString(H, P.Name);
    if (P.Arg)
      H = mix(H, hashPattern(*P.Arg));
    break;
  case Pattern::Kind::Int:
    H = mix(H, uint64_t(P.IntValue));
    break;
  case Pattern::Kind::Bool:
    H = mix(H, P.BoolValue ? 2 : 1);
    break;
  case Pattern::Kind::String:
    H = hashString(H, P.StringValue);
    break;
  case Pattern::Kind::Tuple:
  case Pattern::Kind::List:
    for (const auto &Elem : P.Elems)
      H = mix(H, hashPattern(*Elem));
    H = mix(H, P.Elems.size());
    break;
  case Pattern::Kind::Cons:
    H = mix(H, hashPattern(*P.Head));
    H = mix(H, hashPattern(*P.Tail));
    break;
  }
  return H;
}

uint64_t caml::hashExpr(const Expr &E) {
  // Mirrors Expr::equals: kind, scalar payloads, binding, params, arm
  // patterns, then children, each domain-tagged so an empty vector in one
  // slot cannot cancel out an entry in another.
  uint64_t H = mix(FnvOffset, 0xE0 + uint64_t(E.kind()));
  H = mix(H, uint64_t(E.IntValue));
  H = mix(H, E.BoolValue ? 2 : 1);
  H = hashString(H, E.StringValue);
  H = hashString(H, E.Name);
  H = mix(H, E.IsRec ? 2 : 1);
  for (const std::string &F : E.FieldNames)
    H = hashString(H, F);
  if (E.Binding)
    H = mix(H, hashPattern(*E.Binding));
  H = mix(H, E.Params.size());
  for (const auto &Param : E.Params)
    H = mix(H, hashPattern(*Param));
  H = mix(H, E.ArmPats.size());
  for (const auto &Pat : E.ArmPats)
    H = mix(H, hashPattern(*Pat));
  H = mix(H, E.Children.size());
  for (const auto &Child : E.Children)
    H = mix(H, hashExpr(*Child));
  return H;
}

uint64_t caml::hashTypeExpr(const TypeExpr &TE) {
  uint64_t H = mix(FnvOffset, 0x70 + uint64_t(TE.TheKind));
  H = hashString(H, TE.Name);
  H = mix(H, TE.Args.size());
  for (const auto &Arg : TE.Args)
    H = mix(H, hashTypeExpr(*Arg));
  return H;
}

uint64_t caml::hashDecl(const Decl &D) {
  uint64_t H = mix(FnvOffset, 0xD0 + uint64_t(D.kind()));
  switch (D.kind()) {
  case Decl::Kind::Let:
    H = mix(H, D.IsRec ? 2 : 1);
    H = mix(H, hashPattern(*D.Binding));
    H = mix(H, D.Params.size());
    for (const auto &Param : D.Params)
      H = mix(H, hashPattern(*Param));
    H = mix(H, hashExpr(*D.Rhs));
    break;
  case Decl::Kind::Type:
    // Type declarations hash their full structure even though
    // Decl::equals only compares names: a finer hash never produces a
    // false cache hit, because hits are confirmed with equals().
    H = hashString(H, D.TypeName);
    H = mix(H, D.IsRecord ? 2 : 1);
    for (const std::string &Param : D.TypeParams)
      H = hashString(H, Param);
    for (const VariantCase &Case : D.Cases) {
      H = hashString(H, Case.Name);
      if (Case.ArgType)
        H = mix(H, hashTypeExpr(*Case.ArgType));
    }
    for (const RecordFieldDecl &Field : D.Fields) {
      H = hashString(H, Field.Name);
      H = mix(H, Field.IsMutable ? 2 : 1);
      H = mix(H, hashTypeExpr(*Field.Type));
    }
    break;
  case Decl::Kind::Exception:
    H = hashString(H, D.ExcName);
    if (D.ExcArgType)
      H = mix(H, hashTypeExpr(*D.ExcArgType));
    break;
  }
  return H;
}

uint64_t caml::hashProgram(const Program &Prog) {
  uint64_t H = mix(FnvOffset, Prog.Decls.size());
  for (const auto &D : Prog.Decls)
    H = mix(H, hashDecl(*D));
  return H;
}
