//===- Parser.cpp - Mini-Caml parser implementation -----------------------==//

#include "minicaml/Parser.h"

#include "minicaml/Lexer.h"

#include <cassert>

using namespace seminal;
using namespace seminal::caml;

namespace {

using TK = Token::Kind;

/// The parser proper. Error handling uses a sticky failure flag: once a
/// syntax error is recorded every parse function bails out immediately, so
/// only the first error is reported (library code avoids exceptions).
class ParserImpl {
public:
  explicit ParserImpl(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult parseProgram();
  ParseExprResult parseSingleExpression();
  TypeExprPtr parseSingleTypeExpr(std::optional<ParseError> &OutError);

private:
  // Token stream helpers -------------------------------------------------
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Index + Ahead;
    if (I >= Tokens.size())
      I = Tokens.size() - 1;
    return Tokens[I];
  }
  bool check(TK K) const { return peek().is(K); }
  bool accept(TK K) {
    if (!check(K))
      return false;
    ++Index;
    return true;
  }
  const Token &advance() {
    const Token &T = Tokens[Index];
    if (Index + 1 < Tokens.size())
      ++Index;
    return T;
  }
  void expect(TK K, const std::string &What) {
    if (accept(K))
      return;
    fail("expected " + What + " but found " + peek().describe());
  }
  void fail(const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    Error = ParseError{peek().Loc, Message};
  }

  void setSpan(Expr *E, SourceLoc Start) {
    E->Span = SourceSpan(Start, prevEnd());
  }
  void setSpan(Pattern *P, SourceLoc Start) {
    P->Span = SourceSpan(Start, prevEnd());
  }
  uint32_t prevEnd() const {
    return Index == 0 ? 0 : Tokens[Index - 1].EndOffset;
  }

  // Grammar productions ---------------------------------------------------
  DeclPtr parseDecl();
  DeclPtr parseTypeDecl();
  DeclPtr parseExceptionDecl();
  DeclPtr parseLetDecl();

  ExprPtr parseExpr();       // seq level: e1; e2
  ExprPtr parseTupleExpr();  // e1, e2, ...
  ExprPtr parseAssignExpr(); // := and <- (right associative)
  ExprPtr parseOrExpr();
  ExprPtr parseAndExpr();
  ExprPtr parseCmpExpr();
  ExprPtr parseConcatExpr(); // ^ and @ (right associative)
  ExprPtr parseConsExpr();   // :: (right associative)
  ExprPtr parseAddExpr();
  ExprPtr parseMulExpr();
  ExprPtr parseUnaryExpr();
  ExprPtr parseAppExpr();
  ExprPtr parsePostfixExpr(); // field access
  ExprPtr parseAtomExpr();
  ExprPtr parseKeywordForm(); // fun / if / match / let-in / raise
  bool startsKeywordForm() const;
  bool startsAtom() const;

  PatternPtr parsePattern();       // tuple level
  PatternPtr parseConsPattern();   // p :: p
  PatternPtr parseSimplePattern(); // atoms and constructor application
  PatternPtr parseAtomPattern();

  TypeExprPtr parseTypeExpr();      // arrow level
  TypeExprPtr parseTupleTypeExpr(); // star level
  TypeExprPtr parsePostfixTypeExpr();
  TypeExprPtr parseAtomTypeExpr();

  std::vector<Token> Tokens;
  size_t Index = 0;
  bool Failed = false;
  ParseError Error{SourceLoc(), ""};
};

bool isAtomStart(const Token &T) {
  switch (T.TheKind) {
  case TK::IntLit:
  case TK::StringLit:
  case TK::LowerIdent:
  case TK::UpperIdent:
  case TK::KwTrue:
  case TK::KwFalse:
  case TK::LParen:
  case TK::LBracket:
  case TK::LBrace:
  case TK::KwBegin:
    return true;
  default:
    return false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

ParseResult ParserImpl::parseProgram() {
  Program Prog;
  while (!check(TK::Eof) && !Failed) {
    if (check(TK::Error)) {
      fail(peek().Text);
      break;
    }
    if (accept(TK::SemiSemi))
      continue;
    DeclPtr D = parseDecl();
    if (Failed)
      break;
    Prog.Decls.push_back(std::move(D));
  }
  ParseResult Result;
  if (Failed)
    Result.Error = Error;
  else
    Result.Prog = std::move(Prog);
  return Result;
}

DeclPtr ParserImpl::parseDecl() {
  if (check(TK::KwType))
    return parseTypeDecl();
  if (check(TK::KwException))
    return parseExceptionDecl();
  if (check(TK::KwLet))
    return parseLetDecl();
  fail("expected a declaration (let/type/exception) but found " +
       peek().describe());
  return nullptr;
}

DeclPtr ParserImpl::parseTypeDecl() {
  SourceLoc Start = peek().Loc;
  expect(TK::KwType, "'type'");
  auto D = std::make_unique<Decl>(Decl::Kind::Type);

  // Optional type parameters: 'a or ('a, 'b).
  if (accept(TK::Quote)) {
    if (!check(TK::LowerIdent)) {
      fail("expected a type variable name after '");
      return nullptr;
    }
    D->TypeParams.push_back(advance().Text);
  } else if (check(TK::LParen) && peek(1).is(TK::Quote)) {
    advance(); // (
    while (true) {
      expect(TK::Quote, "'");
      if (Failed)
        return nullptr;
      if (!check(TK::LowerIdent)) {
        fail("expected a type variable name after '");
        return nullptr;
      }
      D->TypeParams.push_back(advance().Text);
      if (!accept(TK::Comma))
        break;
    }
    expect(TK::RParen, "')'");
  }
  if (Failed)
    return nullptr;

  if (!check(TK::LowerIdent)) {
    fail("expected a type name");
    return nullptr;
  }
  D->TypeName = advance().Text;
  expect(TK::Eq, "'=' in type declaration");
  if (Failed)
    return nullptr;

  if (accept(TK::LBrace)) {
    // Record type.
    D->IsRecord = true;
    while (true) {
      RecordFieldDecl Field;
      Field.IsMutable = accept(TK::KwMutable);
      if (!check(TK::LowerIdent)) {
        fail("expected a field name");
        return nullptr;
      }
      Field.Name = advance().Text;
      expect(TK::Colon, "':' after field name");
      Field.Type = parseTypeExpr();
      if (Failed)
        return nullptr;
      D->Fields.push_back(std::move(Field));
      if (accept(TK::Semi)) {
        if (accept(TK::RBrace))
          break;
        continue;
      }
      expect(TK::RBrace, "'}' at end of record type");
      break;
    }
  } else {
    // Variant type: [|] C1 [of t] | C2 ...
    accept(TK::Bar);
    while (true) {
      if (!check(TK::UpperIdent)) {
        fail("expected a constructor name");
        return nullptr;
      }
      VariantCase Case;
      Case.Name = advance().Text;
      if (accept(TK::KwOf)) {
        Case.ArgType = parseTypeExpr();
        if (Failed)
          return nullptr;
      }
      D->Cases.push_back(std::move(Case));
      if (!accept(TK::Bar))
        break;
    }
  }
  if (Failed)
    return nullptr;
  D->Span = SourceSpan(Start, prevEnd());
  return D;
}

DeclPtr ParserImpl::parseExceptionDecl() {
  SourceLoc Start = peek().Loc;
  expect(TK::KwException, "'exception'");
  auto D = std::make_unique<Decl>(Decl::Kind::Exception);
  if (!check(TK::UpperIdent)) {
    fail("expected an exception name");
    return nullptr;
  }
  D->ExcName = advance().Text;
  if (accept(TK::KwOf)) {
    D->ExcArgType = parseTypeExpr();
    if (Failed)
      return nullptr;
  }
  D->Span = SourceSpan(Start, prevEnd());
  return D;
}

DeclPtr ParserImpl::parseLetDecl() {
  SourceLoc Start = peek().Loc;
  expect(TK::KwLet, "'let'");
  auto D = std::make_unique<Decl>(Decl::Kind::Let);
  D->IsRec = accept(TK::KwRec);
  D->Binding = parseSimplePattern();
  if (Failed)
    return nullptr;
  // Function sugar: let f p1 ... pn = rhs.
  if (D->Binding->kind() == Pattern::Kind::Var) {
    while (!check(TK::Eq) && !Failed) {
      D->Params.push_back(parseAtomPattern());
      if (Failed)
        return nullptr;
    }
  }
  expect(TK::Eq, "'=' in let binding");
  D->Rhs = parseExpr();
  if (Failed)
    return nullptr;
  D->Span = SourceSpan(Start, prevEnd());
  return D;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

bool ParserImpl::startsKeywordForm() const {
  switch (peek().TheKind) {
  case TK::KwFun:
  case TK::KwIf:
  case TK::KwMatch:
  case TK::KwLet:
  case TK::KwRaise:
    return true;
  default:
    return false;
  }
}

bool ParserImpl::startsAtom() const { return isAtomStart(peek()); }

ExprPtr ParserImpl::parseExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr First = parseTupleExpr();
  if (Failed)
    return nullptr;
  if (!check(TK::Semi))
    return First;
  advance();
  ExprPtr Rest = parseExpr();
  if (Failed)
    return nullptr;
  ExprPtr E = makeSeq(std::move(First), std::move(Rest));
  setSpan(E.get(), Start);
  return E;
}

ExprPtr ParserImpl::parseTupleExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr First = parseAssignExpr();
  if (Failed || !check(TK::Comma))
    return First;
  std::vector<ExprPtr> Elems;
  Elems.push_back(std::move(First));
  while (accept(TK::Comma)) {
    Elems.push_back(parseAssignExpr());
    if (Failed)
      return nullptr;
  }
  ExprPtr E = makeTuple(std::move(Elems));
  setSpan(E.get(), Start);
  return E;
}

ExprPtr ParserImpl::parseAssignExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseOrExpr();
  if (Failed)
    return nullptr;
  if (accept(TK::Assign)) {
    ExprPtr Rhs = parseAssignExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeBinOp(":=", std::move(Lhs), std::move(Rhs));
    setSpan(E.get(), Start);
    return E;
  }
  if (check(TK::LArrow)) {
    if (Lhs->kind() != Expr::Kind::Field) {
      fail("'<-' requires a field access on its left-hand side");
      return nullptr;
    }
    advance();
    ExprPtr Rhs = parseAssignExpr();
    if (Failed)
      return nullptr;
    // Rebuild the field access as a SetField node.
    std::string Field = Lhs->Name;
    ExprPtr Rec = Lhs->swapChild(0, makeWildcard());
    ExprPtr E = makeSetField(std::move(Rec), Field, std::move(Rhs));
    setSpan(E.get(), Start);
    return E;
  }
  return Lhs;
}

ExprPtr ParserImpl::parseOrExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseAndExpr();
  while (!Failed && accept(TK::OrOr)) {
    ExprPtr Rhs = parseAndExpr();
    if (Failed)
      return nullptr;
    Lhs = makeBinOp("||", std::move(Lhs), std::move(Rhs));
    setSpan(Lhs.get(), Start);
  }
  return Lhs;
}

ExprPtr ParserImpl::parseAndExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseCmpExpr();
  while (!Failed && accept(TK::AndAnd)) {
    ExprPtr Rhs = parseCmpExpr();
    if (Failed)
      return nullptr;
    Lhs = makeBinOp("&&", std::move(Lhs), std::move(Rhs));
    setSpan(Lhs.get(), Start);
  }
  return Lhs;
}

ExprPtr ParserImpl::parseCmpExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseConcatExpr();
  while (!Failed) {
    std::string Op;
    if (check(TK::Eq))
      Op = "=";
    else if (check(TK::EqEq))
      Op = "==";
    else if (check(TK::NotEq))
      Op = "<>";
    else if (check(TK::Lt))
      Op = "<";
    else if (check(TK::Gt))
      Op = ">";
    else if (check(TK::Le))
      Op = "<=";
    else if (check(TK::Ge))
      Op = ">=";
    else
      break;
    advance();
    ExprPtr Rhs = parseConcatExpr();
    if (Failed)
      return nullptr;
    Lhs = makeBinOp(Op, std::move(Lhs), std::move(Rhs));
    setSpan(Lhs.get(), Start);
  }
  return Lhs;
}

ExprPtr ParserImpl::parseConcatExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseConsExpr();
  if (Failed)
    return nullptr;
  std::string Op;
  if (check(TK::Caret))
    Op = "^";
  else if (check(TK::At))
    Op = "@";
  else
    return Lhs;
  advance();
  ExprPtr Rhs = parseConcatExpr(); // right associative
  if (Failed)
    return nullptr;
  ExprPtr E = makeBinOp(Op, std::move(Lhs), std::move(Rhs));
  setSpan(E.get(), Start);
  return E;
}

ExprPtr ParserImpl::parseConsExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Head = parseAddExpr();
  if (Failed || !check(TK::ColonColon))
    return Head;
  advance();
  ExprPtr Tail = parseConsExpr(); // right associative
  if (Failed)
    return nullptr;
  ExprPtr E = makeCons(std::move(Head), std::move(Tail));
  setSpan(E.get(), Start);
  return E;
}

ExprPtr ParserImpl::parseAddExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseMulExpr();
  while (!Failed) {
    std::string Op;
    if (check(TK::Plus))
      Op = "+";
    else if (check(TK::Minus))
      Op = "-";
    else
      break;
    advance();
    ExprPtr Rhs = parseMulExpr();
    if (Failed)
      return nullptr;
    Lhs = makeBinOp(Op, std::move(Lhs), std::move(Rhs));
    setSpan(Lhs.get(), Start);
  }
  return Lhs;
}

ExprPtr ParserImpl::parseMulExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr Lhs = parseUnaryExpr();
  while (!Failed) {
    std::string Op;
    if (check(TK::Star))
      Op = "*";
    else if (check(TK::Slash))
      Op = "/";
    else
      break;
    advance();
    ExprPtr Rhs = parseUnaryExpr();
    if (Failed)
      return nullptr;
    Lhs = makeBinOp(Op, std::move(Lhs), std::move(Rhs));
    setSpan(Lhs.get(), Start);
  }
  return Lhs;
}

ExprPtr ParserImpl::parseUnaryExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  if (accept(TK::Minus)) {
    ExprPtr Operand = parseUnaryExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeUnaryOp("-", std::move(Operand));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::KwNot)) {
    ExprPtr Operand = parseUnaryExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeUnaryOp("not", std::move(Operand));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::Bang)) {
    ExprPtr Operand = parseUnaryExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeUnaryOp("!", std::move(Operand));
    setSpan(E.get(), Start);
    return E;
  }
  return parseAppExpr();
}

ExprPtr ParserImpl::parseAppExpr() {
  if (Failed)
    return nullptr;
  if (startsKeywordForm())
    return parseKeywordForm();
  SourceLoc Start = peek().Loc;
  ExprPtr Callee = parsePostfixExpr();
  if (Failed)
    return nullptr;
  if (!startsAtom())
    return Callee;
  // Constructor application: C e applies a variant constructor to one
  // argument; anything else is curried function application.
  if (Callee->kind() == Expr::Kind::Constr && Callee->Children.empty()) {
    ExprPtr Arg = parsePostfixExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeConstr(Callee->Name, std::move(Arg));
    setSpan(E.get(), Start);
    return E;
  }
  std::vector<ExprPtr> Args;
  while (startsAtom() && !Failed) {
    Args.push_back(parsePostfixExpr());
    if (Failed)
      return nullptr;
  }
  ExprPtr E = makeApp(std::move(Callee), std::move(Args));
  setSpan(E.get(), Start);
  return E;
}

ExprPtr ParserImpl::parsePostfixExpr() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  ExprPtr E = parseAtomExpr();
  while (!Failed && check(TK::Dot)) {
    advance();
    if (!check(TK::LowerIdent)) {
      fail("expected a field name after '.'");
      return nullptr;
    }
    std::string Field = advance().Text;
    E = makeFieldAccess(std::move(E), Field);
    setSpan(E.get(), Start);
  }
  return E;
}

ExprPtr ParserImpl::parseKeywordForm() {
  SourceLoc Start = peek().Loc;
  if (accept(TK::KwFun)) {
    std::vector<PatternPtr> Params;
    while (!check(TK::Arrow) && !Failed)
      Params.push_back(parseAtomPattern());
    if (Params.empty())
      fail("'fun' requires at least one parameter");
    expect(TK::Arrow, "'->' after fun parameters");
    ExprPtr Body = parseExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeFun(std::move(Params), std::move(Body));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::KwIf)) {
    ExprPtr Cond = parseExpr();
    expect(TK::KwThen, "'then'");
    ExprPtr Then = parseTupleExpr();
    ExprPtr Else;
    if (accept(TK::KwElse))
      Else = parseTupleExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeIf(std::move(Cond), std::move(Then), std::move(Else));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::KwMatch)) {
    ExprPtr Scrutinee = parseExpr();
    expect(TK::KwWith, "'with'");
    accept(TK::Bar);
    std::vector<MatchArm> Arms;
    while (!Failed) {
      MatchArm Arm;
      Arm.Pat = parsePattern();
      expect(TK::Arrow, "'->' after match pattern");
      Arm.Body = parseExpr();
      if (Failed)
        return nullptr;
      Arms.push_back(std::move(Arm));
      if (!accept(TK::Bar))
        break;
    }
    if (Failed)
      return nullptr;
    ExprPtr E = makeMatch(std::move(Scrutinee), std::move(Arms));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::KwLet)) {
    bool IsRec = accept(TK::KwRec);
    PatternPtr Binding = parseSimplePattern();
    if (Failed)
      return nullptr;
    std::vector<PatternPtr> Params;
    if (Binding->kind() == Pattern::Kind::Var) {
      while (!check(TK::Eq) && !Failed)
        Params.push_back(parseAtomPattern());
    }
    expect(TK::Eq, "'=' in let binding");
    ExprPtr Rhs = parseExpr();
    expect(TK::KwIn, "'in' after let binding");
    ExprPtr Body = parseExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeLet(IsRec, std::move(Binding), std::move(Params),
                        std::move(Rhs), std::move(Body));
    setSpan(E.get(), Start);
    return E;
  }
  if (accept(TK::KwRaise)) {
    ExprPtr Operand = parsePostfixExpr();
    if (Failed)
      return nullptr;
    ExprPtr E = makeRaise(std::move(Operand));
    setSpan(E.get(), Start);
    return E;
  }
  fail("expected an expression but found " + peek().describe());
  return nullptr;
}

ExprPtr ParserImpl::parseAtomExpr() {
  if (Failed)
    return nullptr;
  if (startsKeywordForm())
    return parseKeywordForm();
  SourceLoc Start = peek().Loc;
  switch (peek().TheKind) {
  case TK::IntLit: {
    ExprPtr E = makeIntLit(advance().IntValue);
    setSpan(E.get(), Start);
    return E;
  }
  case TK::StringLit: {
    ExprPtr E = makeStringLit(advance().Text);
    setSpan(E.get(), Start);
    return E;
  }
  case TK::KwTrue:
  case TK::KwFalse: {
    ExprPtr E = makeBoolLit(advance().is(TK::KwTrue));
    setSpan(E.get(), Start);
    return E;
  }
  case TK::LowerIdent: {
    std::string Name = advance().Text;
    // Module paths: List.map lexes as ident-dot-ident but Name should be
    // the qualified form -- except our LowerIdent can't start a path in
    // mini-Caml (modules are capitalized), so plain variable.
    ExprPtr E = makeVar(Name);
    setSpan(E.get(), Start);
    return E;
  }
  case TK::UpperIdent: {
    std::string Name = advance().Text;
    // Qualified name (module access): List.map, String.length.
    if (check(TK::Dot) && peek(1).is(TK::LowerIdent)) {
      advance(); // .
      Name += "." + advance().Text;
      ExprPtr E = makeVar(Name);
      setSpan(E.get(), Start);
      return E;
    }
    ExprPtr E = makeConstr(Name, nullptr);
    setSpan(E.get(), Start);
    return E;
  }
  case TK::LParen: {
    advance();
    if (accept(TK::RParen)) {
      ExprPtr E = makeUnitLit();
      setSpan(E.get(), Start);
      return E;
    }
    ExprPtr E = parseExpr();
    expect(TK::RParen, "')'");
    if (Failed)
      return nullptr;
    // Keep the parenthesized extent so messages quote what the user wrote.
    E->Span = SourceSpan(Start, prevEnd());
    return E;
  }
  case TK::KwBegin: {
    advance();
    ExprPtr E = parseExpr();
    expect(TK::KwEnd, "'end'");
    if (Failed)
      return nullptr;
    E->Span = SourceSpan(Start, prevEnd());
    return E;
  }
  case TK::LBracket: {
    advance();
    std::vector<ExprPtr> Elems;
    if (!check(TK::RBracket)) {
      while (!Failed) {
        Elems.push_back(parseTupleExpr());
        if (!accept(TK::Semi))
          break;
        if (check(TK::RBracket))
          break; // allow trailing ';'
      }
    }
    expect(TK::RBracket, "']'");
    if (Failed)
      return nullptr;
    ExprPtr E = makeList(std::move(Elems));
    setSpan(E.get(), Start);
    return E;
  }
  case TK::LBrace: {
    advance();
    std::vector<RecordField> Fields;
    while (!Failed) {
      if (!check(TK::LowerIdent)) {
        fail("expected a field name in record literal");
        return nullptr;
      }
      RecordField Field;
      Field.Name = advance().Text;
      expect(TK::Eq, "'=' in record field");
      Field.Value = parseTupleExpr();
      if (Failed)
        return nullptr;
      Fields.push_back(std::move(Field));
      if (accept(TK::Semi)) {
        if (check(TK::RBrace))
          break;
        continue;
      }
      break;
    }
    expect(TK::RBrace, "'}'");
    if (Failed)
      return nullptr;
    ExprPtr E = makeRecord(std::move(Fields));
    setSpan(E.get(), Start);
    return E;
  }
  default:
    fail("expected an expression but found " + peek().describe());
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

PatternPtr ParserImpl::parsePattern() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  PatternPtr First = parseConsPattern();
  if (Failed || !check(TK::Comma))
    return First;
  std::vector<PatternPtr> Elems;
  Elems.push_back(std::move(First));
  while (accept(TK::Comma)) {
    Elems.push_back(parseConsPattern());
    if (Failed)
      return nullptr;
  }
  PatternPtr P = makeTuplePattern(std::move(Elems));
  setSpan(P.get(), Start);
  return P;
}

PatternPtr ParserImpl::parseConsPattern() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  PatternPtr Head = parseSimplePattern();
  if (Failed || !check(TK::ColonColon))
    return Head;
  advance();
  PatternPtr Tail = parseConsPattern(); // right associative
  if (Failed)
    return nullptr;
  PatternPtr P = makeConsPattern(std::move(Head), std::move(Tail));
  setSpan(P.get(), Start);
  return P;
}

PatternPtr ParserImpl::parseSimplePattern() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  if (check(TK::UpperIdent)) {
    std::string Name = advance().Text;
    PatternPtr Arg;
    if (isAtomStart(peek()) || check(TK::Underscore))
      Arg = parseAtomPattern();
    if (Failed)
      return nullptr;
    PatternPtr P = makeConstrPattern(Name, std::move(Arg));
    setSpan(P.get(), Start);
    return P;
  }
  return parseAtomPattern();
}

PatternPtr ParserImpl::parseAtomPattern() {
  if (Failed)
    return nullptr;
  SourceLoc Start = peek().Loc;
  switch (peek().TheKind) {
  case TK::Underscore: {
    advance();
    PatternPtr P = makeWildPattern();
    setSpan(P.get(), Start);
    return P;
  }
  case TK::LowerIdent: {
    PatternPtr P = makeVarPattern(advance().Text);
    setSpan(P.get(), Start);
    return P;
  }
  case TK::UpperIdent: {
    PatternPtr P = makeConstrPattern(advance().Text, nullptr);
    setSpan(P.get(), Start);
    return P;
  }
  case TK::IntLit: {
    PatternPtr P = makeIntPattern(advance().IntValue);
    setSpan(P.get(), Start);
    return P;
  }
  case TK::Minus: {
    advance();
    if (!check(TK::IntLit)) {
      fail("expected an integer literal after '-' in pattern");
      return nullptr;
    }
    PatternPtr P = makeIntPattern(-advance().IntValue);
    setSpan(P.get(), Start);
    return P;
  }
  case TK::StringLit: {
    PatternPtr P = makeStringPattern(advance().Text);
    setSpan(P.get(), Start);
    return P;
  }
  case TK::KwTrue:
  case TK::KwFalse: {
    PatternPtr P = makeBoolPattern(advance().is(TK::KwTrue));
    setSpan(P.get(), Start);
    return P;
  }
  case TK::LParen: {
    advance();
    if (accept(TK::RParen)) {
      PatternPtr P = makeUnitPattern();
      setSpan(P.get(), Start);
      return P;
    }
    PatternPtr P = parsePattern();
    expect(TK::RParen, "')' in pattern");
    if (Failed)
      return nullptr;
    P->Span = SourceSpan(Start, prevEnd());
    return P;
  }
  case TK::LBracket: {
    advance();
    std::vector<PatternPtr> Elems;
    if (!check(TK::RBracket)) {
      while (!Failed) {
        Elems.push_back(parseConsPattern());
        if (!accept(TK::Semi))
          break;
      }
    }
    expect(TK::RBracket, "']' in pattern");
    if (Failed)
      return nullptr;
    PatternPtr P = makeListPattern(std::move(Elems));
    setSpan(P.get(), Start);
    return P;
  }
  default:
    fail("expected a pattern but found " + peek().describe());
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

TypeExprPtr ParserImpl::parseTypeExpr() {
  if (Failed)
    return nullptr;
  TypeExprPtr From = parseTupleTypeExpr();
  if (Failed || !check(TK::Arrow))
    return From;
  advance();
  TypeExprPtr To = parseTypeExpr(); // right associative
  if (Failed)
    return nullptr;
  return makeArrowTypeExpr(std::move(From), std::move(To));
}

TypeExprPtr ParserImpl::parseTupleTypeExpr() {
  if (Failed)
    return nullptr;
  TypeExprPtr First = parsePostfixTypeExpr();
  if (Failed || !check(TK::Star))
    return First;
  std::vector<TypeExprPtr> Elems;
  Elems.push_back(std::move(First));
  while (accept(TK::Star)) {
    Elems.push_back(parsePostfixTypeExpr());
    if (Failed)
      return nullptr;
  }
  return makeTupleTypeExpr(std::move(Elems));
}

TypeExprPtr ParserImpl::parsePostfixTypeExpr() {
  if (Failed)
    return nullptr;
  TypeExprPtr T = parseAtomTypeExpr();
  // Postfix constructor application: int list, 'a list ref.
  while (!Failed && check(TK::LowerIdent)) {
    std::string Name = advance().Text;
    std::vector<TypeExprPtr> Args;
    Args.push_back(std::move(T));
    T = makeTypeNameExpr(Name, std::move(Args));
  }
  return T;
}

TypeExprPtr ParserImpl::parseAtomTypeExpr() {
  if (Failed)
    return nullptr;
  if (accept(TK::Quote)) {
    if (!check(TK::LowerIdent)) {
      fail("expected a type variable name after '");
      return nullptr;
    }
    return makeTypeVarExpr(advance().Text);
  }
  if (check(TK::LowerIdent))
    return makeTypeNameExpr(advance().Text, {});
  if (accept(TK::LParen)) {
    TypeExprPtr First = parseTypeExpr();
    if (Failed)
      return nullptr;
    if (accept(TK::Comma)) {
      // Multi-argument constructor application: ('a, 'b) pair.
      std::vector<TypeExprPtr> Args;
      Args.push_back(std::move(First));
      while (true) {
        Args.push_back(parseTypeExpr());
        if (Failed)
          return nullptr;
        if (!accept(TK::Comma))
          break;
      }
      expect(TK::RParen, "')' in type");
      if (!check(TK::LowerIdent)) {
        fail("expected a type constructor after ')'");
        return nullptr;
      }
      return makeTypeNameExpr(advance().Text, std::move(Args));
    }
    expect(TK::RParen, "')' in type");
    if (Failed)
      return nullptr;
    return First;
  }
  fail("expected a type but found " + peek().describe());
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

ParseExprResult ParserImpl::parseSingleExpression() {
  ParseExprResult Result;
  ExprPtr E = parseExpr();
  if (!Failed && !check(TK::Eof))
    fail("unexpected " + peek().describe() + " after expression");
  if (Failed) {
    Result.Error = Error;
    return Result;
  }
  Result.E = std::move(E);
  return Result;
}

TypeExprPtr ParserImpl::parseSingleTypeExpr(std::optional<ParseError> &OutError) {
  TypeExprPtr T = parseTypeExpr();
  if (!Failed && !check(TK::Eof))
    fail("unexpected " + peek().describe() + " after type");
  if (Failed) {
    OutError = Error;
    return nullptr;
  }
  return T;
}

ParseResult caml::parseProgram(const std::string &Source) {
  Lexer Lex(Source);
  ParserImpl P(Lex.tokenize());
  return P.parseProgram();
}

ParseExprResult caml::parseExpression(const std::string &Source) {
  Lexer Lex(Source);
  ParserImpl P(Lex.tokenize());
  return P.parseSingleExpression();
}

TypeExprPtr caml::parseTypeSignature(const std::string &Source,
                                     std::optional<ParseError> &Error) {
  Lexer Lex(Source);
  ParserImpl P(Lex.tokenize());
  return P.parseSingleTypeExpr(Error);
}
