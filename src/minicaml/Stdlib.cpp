//===- Stdlib.cpp - Initial environment for mini-Caml ---------------------==//

#include "minicaml/Stdlib.h"

using namespace seminal;
using namespace seminal::caml;

const std::vector<StdlibValue> &caml::stdlibValues() {
  static const std::vector<StdlibValue> Values = {
      // List module.
      {"List.map", "('a -> 'b) -> 'a list -> 'b list"},
      {"List.map2", "('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list"},
      {"List.combine", "'a list -> 'b list -> ('a * 'b) list"},
      {"List.filter", "('a -> bool) -> 'a list -> 'a list"},
      {"List.mem", "'a -> 'a list -> bool"},
      {"List.nth", "'a list -> int -> 'a"},
      {"List.length", "'a list -> int"},
      {"List.rev", "'a list -> 'a list"},
      {"List.append", "'a list -> 'a list -> 'a list"},
      {"List.concat", "'a list list -> 'a list"},
      {"List.hd", "'a list -> 'a"},
      {"List.tl", "'a list -> 'a list"},
      {"List.fold_left", "('a -> 'b -> 'a) -> 'a -> 'b list -> 'a"},
      {"List.fold_right", "('a -> 'b -> 'b) -> 'a list -> 'b -> 'b"},
      {"List.assoc", "'a -> ('a * 'b) list -> 'b"},
      {"List.iter", "('a -> unit) -> 'a list -> unit"},
      {"List.exists", "('a -> bool) -> 'a list -> bool"},
      {"List.for_all", "('a -> bool) -> 'a list -> bool"},
      {"List.split", "('a * 'b) list -> 'a list * 'b list"},
      // String module.
      {"String.length", "string -> int"},
      {"String.sub", "string -> int -> int -> string"},
      {"String.concat", "string -> string list -> string"},
      {"String.uppercase", "string -> string"},
      {"String.lowercase", "string -> string"},
      // Pervasives.
      {"string_of_int", "int -> string"},
      {"int_of_string", "string -> int"},
      {"string_of_bool", "bool -> string"},
      {"print_string", "string -> unit"},
      {"print_int", "int -> unit"},
      {"print_newline", "unit -> unit"},
      {"print_endline", "string -> unit"},
      {"ref", "'a -> 'a ref"},
      {"fst", "'a * 'b -> 'a"},
      {"snd", "'a * 'b -> 'b"},
      {"ignore", "'a -> unit"},
      {"failwith", "string -> 'a"},
      {"invalid_arg", "string -> 'a"},
      {"compare", "'a -> 'a -> int"},
      {"max", "'a -> 'a -> 'a"},
      {"min", "'a -> 'a -> 'a"},
      {"abs", "int -> int"},
      {"succ", "int -> int"},
      {"pred", "int -> int"},
      {"mod_int", "int -> int -> int"},
      {"incr", "int ref -> unit"},
      {"decr", "int ref -> unit"},
      {"not_fn", "bool -> bool"},
  };
  return Values;
}

const std::vector<StdlibException> &caml::stdlibExceptions() {
  static const std::vector<StdlibException> Exceptions = {
      {"Not_found", ""},
      {"Failure", "string"},
      {"Invalid_argument", "string"},
      {"Exit", ""},
      // The paper's wildcard exception; keeping it predefined means the
      // rendered `raise Foo` form of [[...]] is itself well-typed source.
      {"Foo", ""},
  };
  return Exceptions;
}
