//===- Arena.h - Hash-consed AST arena with persistent overlays -*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-consing arena for mini-Caml ASTs (DESIGN.md section 11). Every
/// expression/pattern/declaration subtree interns to a canonical node id:
/// identical subtrees are stored exactly once, so id equality *is* tree
/// equality, and each node's structural hash (bit-identical to
/// minicaml/Hash's hashExpr/hashPattern/hashDecl of the materialized
/// tree) is computed once from its children's cached hashes, never by
/// walking a tree.
///
/// The arena is what makes the candidate pipeline copy-free: a candidate
/// edit is represented as a path-copied *overlay* -- overlayDecl() builds
/// the id of "base declaration with the subtree at this path replaced" by
/// re-interning only the O(spine) nodes along the path, sharing every
/// off-spine subtree with the base. The accelerated oracle keys its
/// verdict cache on these ids (a lookup is one integer probe; no rehash,
/// no deep equality, no stored clones), and two candidates whose overlays
/// collapse to the same interned tree are detected by comparing two
/// integers. Real trees are materialized only on a verdict-cache miss
/// (for inference) and when a Suggestion is rendered.
///
/// Interned nodes are immutable and never freed, so ids remain valid for
/// the arena's lifetime -- across seedPrefix/clearPrefix cycles and, for
/// the future search daemon, across requests: programs sharing subtrees
/// (the common stdlib-prelude case) share storage and verdict-cache
/// history automatically. Materialized trees carry default (unknown)
/// source spans; hashes, equality, printing, inference and evaluation are
/// all span-independent, which is what makes sharing sound.
///
/// Thread-safety: interning mutates the arena and must stay on one thread
/// (the search thread). The batched oracle materializes candidate trees
/// *before* fanning out, so ThreadPool workers only ever read immutable
/// plain-AST clones and never touch the arena.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_ARENA_H
#define SEMINAL_MINICAML_ARENA_H

#include "minicaml/Ast.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace seminal {
namespace caml {

class AstArena {
public:
  /// Node ids are dense indices into per-sort node tables. The invalid id
  /// doubles as "no node" for optional slots (a pattern's missing Arg).
  using ExprId = uint32_t;
  using PatternId = uint32_t;
  using DeclId = uint32_t;
  static constexpr uint32_t InvalidId = 0xFFFFFFFFu;

  // Interning -----------------------------------------------------------
  // Bottom-up, deduplicating: returns the canonical id for the subtree's
  // structure. Two trees receive the same id iff they are structurally
  // equal (same semantics as the AST equals() methods; spans ignored).
  ExprId internExpr(const Expr &E);
  PatternId internPattern(const Pattern &P);
  DeclId internDecl(const Decl &D);

  // Overlays ------------------------------------------------------------
  /// Id of expression \p Base with the subtree reached by \p Steps
  /// replaced by \p Repl. Only the spine is re-interned (O(path length)
  /// table probes); every off-spine child is shared with \p Base.
  ExprId overlayExpr(ExprId Base, const std::vector<unsigned> &Steps,
                     ExprId Repl);

  /// Id of let-declaration \p Base with the subtree at \p Steps (inside
  /// its right-hand side) replaced by \p Repl. Steps follow
  /// NodePath::Steps semantics: empty replaces the whole Rhs.
  DeclId overlayDecl(DeclId Base, const std::vector<unsigned> &Steps,
                     ExprId Repl);

  // Materialization -----------------------------------------------------
  // Fresh trees, structurally equal to what was interned (spans default).
  ExprPtr materializeExpr(ExprId Id) const;
  PatternPtr materializePattern(PatternId Id) const;
  DeclPtr materializeDecl(DeclId Id) const;

  // Node access ---------------------------------------------------------
  /// Cached structural hash; equals hashExpr/hashDecl of the
  /// materialized tree.
  uint64_t exprHash(ExprId Id) const { return ExprNodes[Id].Hash; }
  uint64_t declHash(DeclId Id) const { return DeclNodes[Id].Hash; }
  Expr::Kind exprKind(ExprId Id) const { return ExprNodes[Id].Kind; }
  /// Child ids in canonical child order (Ast.h's layout table).
  const std::vector<ExprId> &exprChildren(ExprId Id) const {
    return ExprNodes[Id].Children;
  }

  // Occupancy -----------------------------------------------------------
  struct Stats {
    uint64_t Nodes = 0; ///< Distinct nodes stored (all three sorts).
    uint64_t Hits = 0;  ///< Intern requests answered by an existing node.
    uint64_t Bytes = 0; ///< Approximate retained bytes of node storage.
  };
  const Stats &stats() const { return TheStats; }

  /// Drops every interned node and resets the occupancy stats, returning
  /// the arena to its freshly-constructed state. Every previously issued
  /// id becomes invalid -- the caller must guarantee nothing holds one
  /// (no live LazyPrograms, no id-keyed verdict caches). This is the
  /// eviction path for long-lived arenas: the search daemon clears a
  /// session's arena when retained bytes cross the session watermark
  /// (DESIGN.md section 13), after dropping the caches keyed on it.
  void clear();

private:
  /// One interned expression. Children/patterns are ids, not owned
  /// subtrees: the node is O(fanout) regardless of subtree size.
  struct ExprNode {
    Expr::Kind Kind = Expr::Kind::UnitLit;
    bool BoolValue = false;
    bool IsRec = false;
    long IntValue = 0;
    std::string StringValue;
    std::string Name;
    std::vector<std::string> FieldNames;
    PatternId Binding = InvalidId;
    std::vector<PatternId> Params;
    std::vector<PatternId> ArmPats;
    std::vector<ExprId> Children;
    uint64_t Hash = 0;
  };

  struct PatternNode {
    Pattern::Kind Kind = Pattern::Kind::Wild;
    bool BoolValue = false;
    long IntValue = 0;
    std::string Name;
    std::string StringValue;
    std::vector<PatternId> Elems;
    PatternId Head = InvalidId;
    PatternId Tail = InvalidId;
    PatternId Arg = InvalidId;
    uint64_t Hash = 0;
  };

  /// Let declarations decompose into ids; type/exception declarations
  /// (never edited by the search) keep an owned canonical clone.
  struct DeclNode {
    Decl::Kind Kind = Decl::Kind::Let;
    bool IsRec = false;
    PatternId Binding = InvalidId;
    std::vector<PatternId> Params;
    ExprId Rhs = InvalidId;
    DeclPtr Other;
    uint64_t Hash = 0;
  };

  // Shared hash routine (field-wise, so the intern walk can hash a
  // source tree plus child ids without first building a node record).
  uint64_t exprHashOf(Expr::Kind Kind, long IntValue, bool BoolValue,
                      const std::string &StringValue, const std::string &Name,
                      bool IsRec, const std::vector<std::string> &FieldNames,
                      PatternId Binding, const PatternId *Params,
                      size_t NumParams, const PatternId *ArmPats,
                      size_t NumArmPats, const ExprId *Children,
                      size_t NumChildren) const;
  bool sameDecl(const DeclNode &A, const DeclNode &B) const;

  /// Dedup-or-store for a non-Let declaration record (hash pre-set from
  /// hashDecl; the canonical clone carries the structure).
  DeclId internDeclNode(DeclNode &&N);

  // Allocation-free lookups for the hot paths. The keyed variants probe
  // the table against a source tree plus already-interned child ids; a
  // node record (with its string/vector copies) is built only on a miss,
  // i.e. only for subtrees the arena has never seen. The *WithChild/
  // *WithRhs variants are the overlay spine's probe: "existing node with
  // one slot replaced", again copying only on a miss.
  PatternId internPatternKeyed(const Pattern &P, const PatternId *Elems,
                               size_t NumElems, PatternId Head,
                               PatternId Tail, PatternId Arg);
  ExprId internExprKeyed(const Expr &E, PatternId Binding,
                         const PatternId *Params, size_t NumParams,
                         const PatternId *ArmPats, size_t NumArmPats,
                         const ExprId *Children, size_t NumChildren);
  ExprId internWithChild(ExprId Orig, unsigned Slot, ExprId NewChild);
  DeclId internLetWithRhs(DeclId Base, ExprId NewRhs);

  std::vector<ExprNode> ExprNodes;
  std::vector<PatternNode> PatternNodes;
  std::vector<DeclNode> DeclNodes;
  std::unordered_map<uint64_t, std::vector<ExprId>> ExprTable;
  std::unordered_map<uint64_t, std::vector<PatternId>> PatternTable;
  std::unordered_map<uint64_t, std::vector<DeclId>> DeclTable;
  Stats TheStats;

  // Scratch stacks for the intern walk: child ids accumulate here (one
  // balanced frame per recursion level), so re-interning an already-known
  // tree allocates nothing once the stacks are warm. Part of the
  // single-writer contract like the tables themselves.
  std::vector<PatternId> PatStack;
  std::vector<ExprId> ExprStack;
};

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_ARENA_H
