//===- Ast.h - Mini-Caml abstract syntax ------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Untyped abstract syntax for the mini-Caml language that serves as the
/// paper's primary evaluation vehicle. The searcher manipulates these trees
/// generically, so every expression provides: a Kind enum for LLVM-style
/// isa/dyn_cast dispatch, deep cloning, uniform access to *expression*
/// children (patterns are visited through dedicated accessors because the
/// triage phases of Section 2.4 treat them separately), structural equality,
/// and node counting for the ranker's size metric.
///
/// Two node kinds exist purely for the search procedure (Section 2):
/// EWildcard is the `[[...]]` hole that type-checks at any type (the paper
/// uses `raise Foo`), and EAdapt wraps a subexpression whose own type is
/// checked but whose result is unconstrained (the paper's `adapt e`).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_AST_H
#define SEMINAL_MINICAML_AST_H

#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace seminal {
namespace caml {

class Expr;
class Pattern;
using ExprPtr = std::unique_ptr<Expr>;
using PatternPtr = std::unique_ptr<Pattern>;

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

/// A match/binding pattern.
class Pattern {
public:
  enum class Kind {
    Wild,   ///< _
    Var,    ///< x
    Int,    ///< 3
    Bool,   ///< true
    String, ///< "s"
    Unit,   ///< ()
    Tuple,  ///< (p1, ..., pn)
    List,   ///< [] or [p1; ...; pn]
    Cons,   ///< p1 :: p2
    Constr, ///< C or C p
  };

  explicit Pattern(Kind K) : TheKind(K) {}
  Pattern(const Pattern &) = delete;
  Pattern &operator=(const Pattern &) = delete;

  Kind kind() const { return TheKind; }
  SourceSpan Span;

  /// Payloads (only the fields relevant to kind() are meaningful).
  std::string Name;                ///< Var name / constructor name.
  long IntValue = 0;               ///< Int literal.
  bool BoolValue = false;          ///< Bool literal.
  std::string StringValue;         ///< String literal.
  std::vector<PatternPtr> Elems;   ///< Tuple/List elements.
  PatternPtr Head;                 ///< Cons head.
  PatternPtr Tail;                 ///< Cons tail.
  PatternPtr Arg;                  ///< Constructor argument (may be null).

  PatternPtr clone() const;
  bool equals(const Pattern &Other) const;
  unsigned size() const;

  /// Collects all variable names bound by this pattern, in source order.
  void boundVars(std::vector<std::string> &Out) const;

  /// Renders the pattern in concrete syntax (used by messages and tests).
  std::string str() const;

private:
  Kind TheKind;
};

/// Convenience constructors.
PatternPtr makeWildPattern();
PatternPtr makeVarPattern(const std::string &Name);
PatternPtr makeIntPattern(long Value);
PatternPtr makeBoolPattern(bool Value);
PatternPtr makeStringPattern(const std::string &Value);
PatternPtr makeUnitPattern();
PatternPtr makeTuplePattern(std::vector<PatternPtr> Elems);
PatternPtr makeListPattern(std::vector<PatternPtr> Elems);
PatternPtr makeConsPattern(PatternPtr Head, PatternPtr Tail);
PatternPtr makeConstrPattern(const std::string &Name, PatternPtr Arg);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// One arm of a match expression.
struct MatchArm {
  PatternPtr Pat;
  ExprPtr Body;
};

/// One field initializer of a record literal.
struct RecordField {
  std::string Name;
  ExprPtr Value;
};

/// An expression node. Children are owned; trees form strict hierarchies.
class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    StringLit,
    UnitLit,
    Var,
    Fun,      ///< fun p1 ... pn -> body
    App,      ///< callee a1 ... an (curried application, flattened)
    Let,      ///< let [rec] pat [p1 ... pn] = rhs in body
    If,       ///< if c then t [else e]
    Tuple,    ///< (e1, ..., en)
    List,     ///< [e1; ...; en]
    Cons,     ///< e1 :: e2
    BinOp,    ///< e1 OP e2 (arithmetic, comparison, ^, @, :=, &&, ||)
    UnaryOp,  ///< not e, -e, !e
    Match,    ///< match scrutinee with arms
    Constr,   ///< C or C e
    Seq,      ///< e1; e2
    Raise,    ///< raise e
    Field,    ///< e.fld
    SetField, ///< e.fld <- v
    Record,   ///< { f1 = e1; ...; fn = en }
    Wildcard, ///< [[...]] -- always type-checks (Section 2.1)
    Adapt,    ///< adapt e -- e checks, result unconstrained (Section 2.3)
  };

  explicit Expr(Kind K) : TheKind(K) {}
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  Kind kind() const { return TheKind; }
  SourceSpan Span;

  // Payloads (only the fields relevant to kind() are meaningful).
  long IntValue = 0;
  bool BoolValue = false;
  std::string StringValue;
  std::string Name;              ///< Var / BinOp / UnaryOp / Constr / Field.
  bool IsRec = false;            ///< Let.
  PatternPtr Binding;            ///< Let bound pattern.
  std::vector<PatternPtr> Params; ///< Fun / Let function parameters.
  std::vector<ExprPtr> Children;  ///< All expression children, canonical
                                  ///< order (see childLayout() below).
  std::vector<PatternPtr> ArmPats; ///< Match arm patterns, parallel to the
                                   ///< arm bodies stored in Children[1..].
  std::vector<std::string> FieldNames; ///< Record literal field names.

  // Canonical child layout by kind:
  //   Fun:      [body]
  //   App:      [callee, a1, ..., an]
  //   Let:      [rhs, body]
  //   If:       [cond, then] or [cond, then, else]
  //   Tuple:    elems          List: elems
  //   Cons:     [head, tail]   BinOp: [lhs, rhs]   UnaryOp: [operand]
  //   Match:    [scrutinee, armBody1, ..., armBodyN]
  //   Constr:   [] or [arg]    Seq: [first, second]
  //   Raise:    [operand]      Field: [record]   SetField: [record, value]
  //   Record:   field values   Adapt: [inner]
  //   literals / Var / Wildcard: []

  unsigned numChildren() const { return unsigned(Children.size()); }
  Expr *child(unsigned I) const {
    assert(I < Children.size() && "child index out of range");
    return Children[I].get();
  }
  /// Replaces child \p I, returning the previous subtree.
  ExprPtr swapChild(unsigned I, ExprPtr New);

  ExprPtr clone() const;
  bool equals(const Expr &Other) const;

  /// Number of AST nodes in this subtree (patterns included); the ranker's
  /// size metric (Section 2.1 "prefers changes closer to the leaves").
  unsigned size() const;

  bool isWildcard() const { return TheKind == Kind::Wildcard; }

  /// \returns true for syntactic values (eligible for let-generalization
  /// under the value restriction).
  bool isSyntacticValue() const;

private:
  Kind TheKind;
};

/// Convenience constructors (spans default to invalid; the parser fills
/// them in, synthesized nodes keep unknown spans).
ExprPtr makeIntLit(long Value);
ExprPtr makeBoolLit(bool Value);
ExprPtr makeStringLit(const std::string &Value);
ExprPtr makeUnitLit();
ExprPtr makeVar(const std::string &Name);
ExprPtr makeFun(std::vector<PatternPtr> Params, ExprPtr Body);
ExprPtr makeApp(ExprPtr Callee, std::vector<ExprPtr> Args);
ExprPtr makeLet(bool IsRec, PatternPtr Binding, std::vector<PatternPtr> Params,
                ExprPtr Rhs, ExprPtr Body);
ExprPtr makeIf(ExprPtr Cond, ExprPtr Then, ExprPtr Else);
ExprPtr makeTuple(std::vector<ExprPtr> Elems);
ExprPtr makeList(std::vector<ExprPtr> Elems);
ExprPtr makeCons(ExprPtr Head, ExprPtr Tail);
ExprPtr makeBinOp(const std::string &Op, ExprPtr Lhs, ExprPtr Rhs);
ExprPtr makeUnaryOp(const std::string &Op, ExprPtr Operand);
ExprPtr makeMatch(ExprPtr Scrutinee, std::vector<MatchArm> Arms);
ExprPtr makeConstr(const std::string &Name, ExprPtr Arg);
ExprPtr makeSeq(ExprPtr First, ExprPtr Second);
ExprPtr makeRaise(ExprPtr Operand);
ExprPtr makeFieldAccess(ExprPtr Rec, const std::string &Field);
ExprPtr makeSetField(ExprPtr Rec, const std::string &Field, ExprPtr Value);
ExprPtr makeRecord(std::vector<RecordField> Fields);
ExprPtr makeWildcard();
ExprPtr makeAdapt(ExprPtr Inner);

//===----------------------------------------------------------------------===//
// Type expressions (syntax only; semantic types live in Types.h)
//===----------------------------------------------------------------------===//

/// A syntactic type as written in type/exception declarations.
struct TypeExpr {
  enum class Kind {
    Var,    ///< 'a
    Name,   ///< int / string / user-defined, possibly applied: int list
    Arrow,  ///< t1 -> t2
    Tuple,  ///< t1 * ... * tn
  };
  Kind TheKind = Kind::Name;
  std::string Name; ///< Var name (without quote) or constructor name.
  std::vector<std::unique_ptr<TypeExpr>> Args;

  std::unique_ptr<TypeExpr> clone() const;
  std::string str() const;
};
using TypeExprPtr = std::unique_ptr<TypeExpr>;

TypeExprPtr makeTypeVarExpr(const std::string &Name);
TypeExprPtr makeTypeNameExpr(const std::string &Name,
                             std::vector<TypeExprPtr> Args);
TypeExprPtr makeArrowTypeExpr(TypeExprPtr From, TypeExprPtr To);
TypeExprPtr makeTupleTypeExpr(std::vector<TypeExprPtr> Elems);

//===----------------------------------------------------------------------===//
// Declarations and programs
//===----------------------------------------------------------------------===//

/// One constructor of a variant type declaration.
struct VariantCase {
  std::string Name;
  TypeExprPtr ArgType; ///< Null for nullary constructors.
};

/// One field of a record type declaration.
struct RecordFieldDecl {
  std::string Name;
  bool IsMutable = false;
  TypeExprPtr Type;
};

/// A top-level structure item.
class Decl {
public:
  enum class Kind {
    Let,       ///< let [rec] pat [params] = rhs
    Type,      ///< type ['a] t = ...
    Exception, ///< exception E [of t]
  };

  explicit Decl(Kind K) : TheKind(K) {}
  Decl(const Decl &) = delete;
  Decl &operator=(const Decl &) = delete;

  Kind kind() const { return TheKind; }
  SourceSpan Span;

  // Let payload.
  bool IsRec = false;
  PatternPtr Binding;
  std::vector<PatternPtr> Params;
  ExprPtr Rhs;

  // Type payload.
  std::string TypeName;
  std::vector<std::string> TypeParams;
  bool IsRecord = false;
  std::vector<VariantCase> Cases;
  std::vector<RecordFieldDecl> Fields;

  // Exception payload.
  std::string ExcName;
  TypeExprPtr ExcArgType;

  std::unique_ptr<Decl> clone() const;
  bool equals(const Decl &Other) const;
  unsigned size() const;

private:
  Kind TheKind;
};
using DeclPtr = std::unique_ptr<Decl>;

DeclPtr makeLetDecl(bool IsRec, PatternPtr Binding,
                    std::vector<PatternPtr> Params, ExprPtr Rhs);

/// A whole source file: an ordered list of structure items.
struct Program {
  std::vector<DeclPtr> Decls;

  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  Program clone() const;
  bool equals(const Program &Other) const;
  unsigned size() const;
};

//===----------------------------------------------------------------------===//
// Node paths
//===----------------------------------------------------------------------===//

/// Identifies an expression node inside a Program by structure: the index
/// of its declaration and the sequence of child indices from the
/// declaration's root expression. Paths survive cloning, which is how the
/// changer applies an edit to a fresh copy of the input (Section 2.2).
struct NodePath {
  unsigned DeclIndex = 0;
  std::vector<unsigned> Steps;

  NodePath() = default;
  explicit NodePath(unsigned DeclIndex) : DeclIndex(DeclIndex) {}

  NodePath descend(unsigned Step) const {
    NodePath Child = *this;
    Child.Steps.push_back(Step);
    return Child;
  }

  bool operator==(const NodePath &Other) const {
    return DeclIndex == Other.DeclIndex && Steps == Other.Steps;
  }

  std::string str() const;
};

/// Resolves \p Path inside \p Prog. \returns nullptr if the path does not
/// exist (e.g. it was created against a differently-shaped tree).
Expr *resolvePath(Program &Prog, const NodePath &Path);

/// Replaces the node at \p Path with \p Replacement, returning the previous
/// subtree. \p Path must resolve.
ExprPtr replaceAtPath(Program &Prog, const NodePath &Path,
                      ExprPtr Replacement);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_AST_H
