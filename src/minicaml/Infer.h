//===- Infer.h - Hindley-Milner type inference for mini-Caml ----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm W with Remy-style levels, the value restriction, user variant
/// and record types, and OCaml-compatible *blame*: expected types propagate
/// downward (function arguments are checked against the callee's domain,
/// match arms against the first arm's type, ...), so the first unification
/// failure is reported at the same place OCaml 3.x reports it. That makes
/// this checker a faithful stand-in for the paper's oracle *and* for the
/// conventional error messages the evaluation compares against:
///
///   - Figure 2 blames `x + y` ("has type int but is here used with type
///     'a -> 'b") even though the real bug is the tupled parameter;
///   - Figure 8 blames `s` with the bewildering `string list list`;
///   - Figure 9 reports nothing inside `finalLst` and blames the call site.
///
/// The checker aborts at the first error (like OCaml) and reports it with
/// a source span; the search procedure only needs the boolean.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_INFER_H
#define SEMINAL_MINICAML_INFER_H

#include "minicaml/Ast.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace seminal {
namespace caml {

/// A conventional type-checker diagnostic.
struct TypeError {
  enum class Kind {
    Mismatch,        ///< has type X but is here used with type Y
    PatternMismatch, ///< pattern matches values of type X, expected Y
    Unbound,         ///< unbound value / constructor / field / type
    NotFunction,     ///< expression is not a function, cannot be applied
    TooManyArgs,     ///< function applied to too many arguments
    ConstructorArity,
    NotMutable,
    RecordShape, ///< missing/foreign fields in a record literal
    Cyclic,      ///< occurs-check failure
  };

  Kind TheKind = Kind::Mismatch;
  SourceSpan Span;
  std::string Message; ///< Fully rendered, OCaml style.
  std::string ActualType;
  std::string ExpectedType;
  std::string Name; ///< Offending identifier for Unbound and friends.
};

/// Options for one type-check run.
struct TypecheckOptions {
  /// If set, the run records the inferred type of this node (used when a
  /// message prints "of type int -> int -> int" for a replacement).
  const Expr *QueryNode = nullptr;
};

/// Result of type-checking a whole program.
struct TypecheckResult {
  std::optional<TypeError> Error;
  /// Name -> rendered type of every top-level let binding (in order).
  std::vector<std::pair<std::string, std::string>> TopLevelTypes;
  /// Rendered type of Options::QueryNode, if requested and reached.
  std::optional<std::string> QueriedType;
  /// Number of unification-variable allocations; a cheap effort metric.
  size_t TypesAllocated = 0;

  bool ok() const { return !Error.has_value(); }
};

/// Type-checks \p Prog against the standard library environment.
TypecheckResult typecheckProgram(const Program &Prog,
                                 const TypecheckOptions &Opts = {});

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_INFER_H
