//===- Infer.h - Hindley-Milner type inference for mini-Caml ----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm W with Remy-style levels, the value restriction, user variant
/// and record types, and OCaml-compatible *blame*: expected types propagate
/// downward (function arguments are checked against the callee's domain,
/// match arms against the first arm's type, ...), so the first unification
/// failure is reported at the same place OCaml 3.x reports it. That makes
/// this checker a faithful stand-in for the paper's oracle *and* for the
/// conventional error messages the evaluation compares against:
///
///   - Figure 2 blames `x + y` ("has type int but is here used with type
///     'a -> 'b") even though the real bug is the tupled parameter;
///   - Figure 8 blames `s` with the bewildering `string list list`;
///   - Figure 9 reports nothing inside `finalLst` and blames the call site.
///
/// The checker aborts at the first error (like OCaml) and reports it with
/// a source span; the search procedure only needs the boolean.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_INFER_H
#define SEMINAL_MINICAML_INFER_H

#include "minicaml/Ast.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace seminal {
namespace caml {

/// A conventional type-checker diagnostic.
struct TypeError {
  enum class Kind {
    Mismatch,        ///< has type X but is here used with type Y
    PatternMismatch, ///< pattern matches values of type X, expected Y
    Unbound,         ///< unbound value / constructor / field / type
    NotFunction,     ///< expression is not a function, cannot be applied
    TooManyArgs,     ///< function applied to too many arguments
    ConstructorArity,
    NotMutable,
    RecordShape, ///< missing/foreign fields in a record literal
    Cyclic,      ///< occurs-check failure
  };

  Kind TheKind = Kind::Mismatch;
  SourceSpan Span;
  std::string Message; ///< Fully rendered, OCaml style.
  std::string ActualType;
  std::string ExpectedType;
  std::string Name; ///< Offending identifier for Unbound and friends.
};

/// Options for one type-check run.
struct TypecheckOptions {
  /// If set, the run records the inferred type of this node (used when a
  /// message prints "of type int -> int -> int" for a replacement).
  const Expr *QueryNode = nullptr;

  /// Check only the first DeclLimit declarations (the default checks the
  /// whole program). The error slicer uses this to re-infer exactly the
  /// prefix plus the failing declaration under a provenance sink.
  unsigned DeclLimit = ~0u;
};

/// Result of type-checking a whole program.
struct TypecheckResult {
  std::optional<TypeError> Error;
  /// Index of the declaration the error was reported in (set iff Error
  /// and the run processed whole-program declarations). Because
  /// declarations are checked in order and the checker aborts at the
  /// first error, every prefix of length <= ErrorDeclIndex type-checks
  /// and the prefix of length ErrorDeclIndex + 1 does not.
  std::optional<unsigned> ErrorDeclIndex;
  /// Name -> rendered type of every top-level let binding (in order).
  std::vector<std::pair<std::string, std::string>> TopLevelTypes;
  /// Rendered type of Options::QueryNode, if requested and reached.
  std::optional<std::string> QueriedType;
  /// Number of unification-variable allocations; a cheap effort metric.
  size_t TypesAllocated = 0;

  bool ok() const { return !Error.has_value(); }
};

/// Type-checks \p Prog against the standard library environment.
TypecheckResult typecheckProgram(const Program &Prog,
                                 const TypecheckOptions &Opts = {});

/// A reusable typing-environment snapshot taken after inferring the first
/// k declarations of a program (plus the standard library). Once built, it
/// answers "does declaration D type-check as declaration k+1?" without
/// re-inferring the prefix or re-loading the standard library: the
/// declaration is checked against the cached environment and every
/// unification side effect is rolled back through a TypeTrail, so the
/// snapshot can serve an unbounded number of queries.
///
/// Validity rules (see DESIGN.md "Oracle acceleration"):
///   * the prefix declarations must not be mutated while the checkpoint is
///     alive -- the snapshot aliases nothing from them, but a caller that
///     edits the prefix is asking questions about a different program;
///   * only Let declarations may be queried (type/exception declarations
///     mutate the global constructor tables, which are not trailed);
///   * a checkpoint is single-threaded -- concurrent queries need one
///     checkpoint per thread.
class InferenceCheckpoint {
public:
  /// Infers the first \p PrefixLen declarations of \p Prog and snapshots
  /// the resulting environment. \returns null if the prefix itself fails
  /// to type-check (no snapshot can be trusted past the first error).
  static std::unique_ptr<InferenceCheckpoint> create(const Program &Prog,
                                                     unsigned PrefixLen);

  ~InferenceCheckpoint();

  unsigned prefixLength() const { return PrefixLen; }

  /// Type-checks \p D as the declaration following the snapshot's prefix.
  /// \p D must be a Let declaration. All side effects are rolled back
  /// before returning, so the checkpoint stays valid. The result's
  /// TypesAllocated reports only this query's allocations.
  TypecheckResult checkDecl(const Decl &D, const TypecheckOptions &Opts = {});

  /// Permanently extends the prefix with \p D (any declaration kind).
  /// On success the declaration's bindings are committed and
  /// prefixLength() grows by one; on failure every unification side
  /// effect is rolled back and the prefix is unchanged. \p TypesAllocated,
  /// when non-null, receives this call's allocation count.
  ///
  /// Caveat: a *failed* type/exception declaration may leave partial
  /// entries in the constructor/record tables (those are not trailed), so
  /// after extendWith returns false for a non-Let declaration the
  /// checkpoint must be discarded. A failed Let rolls back completely.
  bool extendWith(const Decl &D, size_t *TypesAllocated = nullptr);

private:
  InferenceCheckpoint();

  struct Impl;
  std::unique_ptr<Impl> TheImpl;
  unsigned PrefixLen = 0;
};

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_INFER_H
