//===- Ast.cpp - Mini-Caml abstract syntax implementation -----------------==//

#include "minicaml/Ast.h"

#include "support/StrUtil.h"

#include <sstream>

using namespace seminal;
using namespace seminal::caml;

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

PatternPtr Pattern::clone() const {
  auto Copy = std::make_unique<Pattern>(TheKind);
  Copy->Span = Span;
  Copy->Name = Name;
  Copy->IntValue = IntValue;
  Copy->BoolValue = BoolValue;
  Copy->StringValue = StringValue;
  for (const auto &Elem : Elems)
    Copy->Elems.push_back(Elem->clone());
  if (Head)
    Copy->Head = Head->clone();
  if (Tail)
    Copy->Tail = Tail->clone();
  if (Arg)
    Copy->Arg = Arg->clone();
  return Copy;
}

bool Pattern::equals(const Pattern &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Wild:
  case Kind::Unit:
    return true;
  case Kind::Var:
  case Kind::Constr:
    if (Name != Other.Name)
      return false;
    if ((Arg == nullptr) != (Other.Arg == nullptr))
      return false;
    return !Arg || Arg->equals(*Other.Arg);
  case Kind::Int:
    return IntValue == Other.IntValue;
  case Kind::Bool:
    return BoolValue == Other.BoolValue;
  case Kind::String:
    return StringValue == Other.StringValue;
  case Kind::Tuple:
  case Kind::List: {
    if (Elems.size() != Other.Elems.size())
      return false;
    for (size_t I = 0; I < Elems.size(); ++I)
      if (!Elems[I]->equals(*Other.Elems[I]))
        return false;
    return true;
  }
  case Kind::Cons:
    return Head->equals(*Other.Head) && Tail->equals(*Other.Tail);
  }
  return false;
}

unsigned Pattern::size() const {
  unsigned N = 1;
  for (const auto &Elem : Elems)
    N += Elem->size();
  if (Head)
    N += Head->size();
  if (Tail)
    N += Tail->size();
  if (Arg)
    N += Arg->size();
  return N;
}

void Pattern::boundVars(std::vector<std::string> &Out) const {
  switch (TheKind) {
  case Kind::Var:
    Out.push_back(Name);
    return;
  case Kind::Tuple:
  case Kind::List:
    for (const auto &Elem : Elems)
      Elem->boundVars(Out);
    return;
  case Kind::Cons:
    Head->boundVars(Out);
    Tail->boundVars(Out);
    return;
  case Kind::Constr:
    if (Arg)
      Arg->boundVars(Out);
    return;
  default:
    return;
  }
}

std::string Pattern::str() const {
  switch (TheKind) {
  case Kind::Wild:
    return "_";
  case Kind::Var:
    return Name;
  case Kind::Int:
    return std::to_string(IntValue);
  case Kind::Bool:
    return BoolValue ? "true" : "false";
  case Kind::String:
    return "\"" + escapeStringLiteral(StringValue) + "\"";
  case Kind::Unit:
    return "()";
  case Kind::Tuple: {
    std::vector<std::string> Parts;
    for (const auto &Elem : Elems)
      Parts.push_back(Elem->str());
    return "(" + join(Parts, ", ") + ")";
  }
  case Kind::List: {
    std::vector<std::string> Parts;
    for (const auto &Elem : Elems)
      Parts.push_back(Elem->str());
    return "[" + join(Parts, "; ") + "]";
  }
  case Kind::Cons: {
    std::string HeadStr = Head->str();
    if (Head->kind() == Kind::Cons)
      HeadStr = "(" + HeadStr + ")";
    return HeadStr + " :: " + Tail->str();
  }
  case Kind::Constr: {
    if (!Arg)
      return Name;
    std::string ArgStr = Arg->str();
    bool NeedParens = Arg->kind() == Kind::Cons || Arg->kind() == Kind::Constr;
    if (NeedParens)
      ArgStr = "(" + ArgStr + ")";
    return Name + " " + ArgStr;
  }
  }
  return "<pattern>";
}

PatternPtr caml::makeWildPattern() {
  return std::make_unique<Pattern>(Pattern::Kind::Wild);
}

PatternPtr caml::makeVarPattern(const std::string &Name) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Var);
  P->Name = Name;
  return P;
}

PatternPtr caml::makeIntPattern(long Value) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Int);
  P->IntValue = Value;
  return P;
}

PatternPtr caml::makeBoolPattern(bool Value) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Bool);
  P->BoolValue = Value;
  return P;
}

PatternPtr caml::makeStringPattern(const std::string &Value) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::String);
  P->StringValue = Value;
  return P;
}

PatternPtr caml::makeUnitPattern() {
  return std::make_unique<Pattern>(Pattern::Kind::Unit);
}

PatternPtr caml::makeTuplePattern(std::vector<PatternPtr> Elems) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Tuple);
  P->Elems = std::move(Elems);
  return P;
}

PatternPtr caml::makeListPattern(std::vector<PatternPtr> Elems) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::List);
  P->Elems = std::move(Elems);
  return P;
}

PatternPtr caml::makeConsPattern(PatternPtr Head, PatternPtr Tail) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Cons);
  P->Head = std::move(Head);
  P->Tail = std::move(Tail);
  return P;
}

PatternPtr caml::makeConstrPattern(const std::string &Name, PatternPtr Arg) {
  auto P = std::make_unique<Pattern>(Pattern::Kind::Constr);
  P->Name = Name;
  P->Arg = std::move(Arg);
  return P;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Expr::swapChild(unsigned I, ExprPtr New) {
  assert(I < Children.size() && "swapChild index out of range");
  assert(New && "cannot install a null child");
  ExprPtr Old = std::move(Children[I]);
  Children[I] = std::move(New);
  return Old;
}

ExprPtr Expr::clone() const {
  auto Copy = std::make_unique<Expr>(TheKind);
  Copy->Span = Span;
  Copy->IntValue = IntValue;
  Copy->BoolValue = BoolValue;
  Copy->StringValue = StringValue;
  Copy->Name = Name;
  Copy->IsRec = IsRec;
  if (Binding)
    Copy->Binding = Binding->clone();
  for (const auto &Param : Params)
    Copy->Params.push_back(Param->clone());
  for (const auto &Child : Children)
    Copy->Children.push_back(Child->clone());
  for (const auto &Pat : ArmPats)
    Copy->ArmPats.push_back(Pat->clone());
  Copy->FieldNames = FieldNames;
  return Copy;
}

bool Expr::equals(const Expr &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  if (IntValue != Other.IntValue || BoolValue != Other.BoolValue ||
      StringValue != Other.StringValue || Name != Other.Name ||
      IsRec != Other.IsRec || FieldNames != Other.FieldNames)
    return false;
  if ((Binding == nullptr) != (Other.Binding == nullptr))
    return false;
  if (Binding && !Binding->equals(*Other.Binding))
    return false;
  if (Params.size() != Other.Params.size() ||
      Children.size() != Other.Children.size() ||
      ArmPats.size() != Other.ArmPats.size())
    return false;
  for (size_t I = 0; I < Params.size(); ++I)
    if (!Params[I]->equals(*Other.Params[I]))
      return false;
  for (size_t I = 0; I < ArmPats.size(); ++I)
    if (!ArmPats[I]->equals(*Other.ArmPats[I]))
      return false;
  for (size_t I = 0; I < Children.size(); ++I)
    if (!Children[I]->equals(*Other.Children[I]))
      return false;
  return true;
}

unsigned Expr::size() const {
  unsigned N = 1;
  if (Binding)
    N += Binding->size();
  for (const auto &Param : Params)
    N += Param->size();
  for (const auto &Pat : ArmPats)
    N += Pat->size();
  for (const auto &Child : Children)
    N += Child->size();
  return N;
}

bool Expr::isSyntacticValue() const {
  switch (TheKind) {
  case Kind::IntLit:
  case Kind::BoolLit:
  case Kind::StringLit:
  case Kind::UnitLit:
  case Kind::Var:
  case Kind::Fun:
  case Kind::Wildcard:
    return true;
  case Kind::Tuple:
  case Kind::List: {
    for (const auto &Child : Children)
      if (!Child->isSyntacticValue())
        return false;
    return true;
  }
  case Kind::Cons:
    return Children[0]->isSyntacticValue() && Children[1]->isSyntacticValue();
  case Kind::Constr: {
    for (const auto &Child : Children)
      if (!Child->isSyntacticValue())
        return false;
    return true;
  }
  default:
    return false;
  }
}

ExprPtr caml::makeIntLit(long Value) {
  auto E = std::make_unique<Expr>(Expr::Kind::IntLit);
  E->IntValue = Value;
  return E;
}

ExprPtr caml::makeBoolLit(bool Value) {
  auto E = std::make_unique<Expr>(Expr::Kind::BoolLit);
  E->BoolValue = Value;
  return E;
}

ExprPtr caml::makeStringLit(const std::string &Value) {
  auto E = std::make_unique<Expr>(Expr::Kind::StringLit);
  E->StringValue = Value;
  return E;
}

ExprPtr caml::makeUnitLit() {
  return std::make_unique<Expr>(Expr::Kind::UnitLit);
}

ExprPtr caml::makeVar(const std::string &Name) {
  auto E = std::make_unique<Expr>(Expr::Kind::Var);
  E->Name = Name;
  return E;
}

ExprPtr caml::makeFun(std::vector<PatternPtr> Params, ExprPtr Body) {
  assert(!Params.empty() && "function with no parameters");
  auto E = std::make_unique<Expr>(Expr::Kind::Fun);
  E->Params = std::move(Params);
  E->Children.push_back(std::move(Body));
  return E;
}

ExprPtr caml::makeApp(ExprPtr Callee, std::vector<ExprPtr> Args) {
  assert(!Args.empty() && "application with no arguments");
  auto E = std::make_unique<Expr>(Expr::Kind::App);
  E->Children.push_back(std::move(Callee));
  for (auto &Arg : Args)
    E->Children.push_back(std::move(Arg));
  return E;
}

ExprPtr caml::makeLet(bool IsRec, PatternPtr Binding,
                      std::vector<PatternPtr> Params, ExprPtr Rhs,
                      ExprPtr Body) {
  auto E = std::make_unique<Expr>(Expr::Kind::Let);
  E->IsRec = IsRec;
  E->Binding = std::move(Binding);
  E->Params = std::move(Params);
  E->Children.push_back(std::move(Rhs));
  E->Children.push_back(std::move(Body));
  return E;
}

ExprPtr caml::makeIf(ExprPtr Cond, ExprPtr Then, ExprPtr Else) {
  auto E = std::make_unique<Expr>(Expr::Kind::If);
  E->Children.push_back(std::move(Cond));
  E->Children.push_back(std::move(Then));
  if (Else)
    E->Children.push_back(std::move(Else));
  return E;
}

ExprPtr caml::makeTuple(std::vector<ExprPtr> Elems) {
  assert(Elems.size() >= 2 && "tuple needs at least two elements");
  auto E = std::make_unique<Expr>(Expr::Kind::Tuple);
  E->Children = std::move(Elems);
  return E;
}

ExprPtr caml::makeList(std::vector<ExprPtr> Elems) {
  auto E = std::make_unique<Expr>(Expr::Kind::List);
  E->Children = std::move(Elems);
  return E;
}

ExprPtr caml::makeCons(ExprPtr Head, ExprPtr Tail) {
  auto E = std::make_unique<Expr>(Expr::Kind::Cons);
  E->Children.push_back(std::move(Head));
  E->Children.push_back(std::move(Tail));
  return E;
}

ExprPtr caml::makeBinOp(const std::string &Op, ExprPtr Lhs, ExprPtr Rhs) {
  auto E = std::make_unique<Expr>(Expr::Kind::BinOp);
  E->Name = Op;
  E->Children.push_back(std::move(Lhs));
  E->Children.push_back(std::move(Rhs));
  return E;
}

ExprPtr caml::makeUnaryOp(const std::string &Op, ExprPtr Operand) {
  auto E = std::make_unique<Expr>(Expr::Kind::UnaryOp);
  E->Name = Op;
  E->Children.push_back(std::move(Operand));
  return E;
}

ExprPtr caml::makeMatch(ExprPtr Scrutinee, std::vector<MatchArm> Arms) {
  assert(!Arms.empty() && "match with no arms");
  auto E = std::make_unique<Expr>(Expr::Kind::Match);
  E->Children.push_back(std::move(Scrutinee));
  for (auto &Arm : Arms) {
    E->ArmPats.push_back(std::move(Arm.Pat));
    E->Children.push_back(std::move(Arm.Body));
  }
  return E;
}

ExprPtr caml::makeConstr(const std::string &Name, ExprPtr Arg) {
  auto E = std::make_unique<Expr>(Expr::Kind::Constr);
  E->Name = Name;
  if (Arg)
    E->Children.push_back(std::move(Arg));
  return E;
}

ExprPtr caml::makeSeq(ExprPtr First, ExprPtr Second) {
  auto E = std::make_unique<Expr>(Expr::Kind::Seq);
  E->Children.push_back(std::move(First));
  E->Children.push_back(std::move(Second));
  return E;
}

ExprPtr caml::makeRaise(ExprPtr Operand) {
  auto E = std::make_unique<Expr>(Expr::Kind::Raise);
  E->Children.push_back(std::move(Operand));
  return E;
}

ExprPtr caml::makeFieldAccess(ExprPtr Rec, const std::string &Field) {
  auto E = std::make_unique<Expr>(Expr::Kind::Field);
  E->Name = Field;
  E->Children.push_back(std::move(Rec));
  return E;
}

ExprPtr caml::makeSetField(ExprPtr Rec, const std::string &Field,
                           ExprPtr Value) {
  auto E = std::make_unique<Expr>(Expr::Kind::SetField);
  E->Name = Field;
  E->Children.push_back(std::move(Rec));
  E->Children.push_back(std::move(Value));
  return E;
}

ExprPtr caml::makeRecord(std::vector<RecordField> Fields) {
  assert(!Fields.empty() && "record literal with no fields");
  auto E = std::make_unique<Expr>(Expr::Kind::Record);
  for (auto &Field : Fields) {
    E->FieldNames.push_back(Field.Name);
    E->Children.push_back(std::move(Field.Value));
  }
  return E;
}

ExprPtr caml::makeWildcard() {
  return std::make_unique<Expr>(Expr::Kind::Wildcard);
}

ExprPtr caml::makeAdapt(ExprPtr Inner) {
  auto E = std::make_unique<Expr>(Expr::Kind::Adapt);
  E->Children.push_back(std::move(Inner));
  return E;
}

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

TypeExprPtr TypeExpr::clone() const {
  auto Copy = std::make_unique<TypeExpr>();
  Copy->TheKind = TheKind;
  Copy->Name = Name;
  for (const auto &Arg : Args)
    Copy->Args.push_back(Arg->clone());
  return Copy;
}

std::string TypeExpr::str() const {
  switch (TheKind) {
  case Kind::Var:
    return "'" + Name;
  case Kind::Name: {
    if (Args.empty())
      return Name;
    if (Args.size() == 1) {
      std::string Arg = Args[0]->str();
      if (Args[0]->TheKind == Kind::Arrow || Args[0]->TheKind == Kind::Tuple)
        Arg = "(" + Arg + ")";
      return Arg + " " + Name;
    }
    std::vector<std::string> Parts;
    for (const auto &Arg : Args)
      Parts.push_back(Arg->str());
    return "(" + join(Parts, ", ") + ") " + Name;
  }
  case Kind::Arrow: {
    std::string From = Args[0]->str();
    if (Args[0]->TheKind == Kind::Arrow)
      From = "(" + From + ")";
    return From + " -> " + Args[1]->str();
  }
  case Kind::Tuple: {
    std::vector<std::string> Parts;
    for (const auto &Arg : Args) {
      std::string Part = Arg->str();
      if (Arg->TheKind == Kind::Arrow || Arg->TheKind == Kind::Tuple)
        Part = "(" + Part + ")";
      Parts.push_back(Part);
    }
    return join(Parts, " * ");
  }
  }
  return "<type>";
}

TypeExprPtr caml::makeTypeVarExpr(const std::string &Name) {
  auto T = std::make_unique<TypeExpr>();
  T->TheKind = TypeExpr::Kind::Var;
  T->Name = Name;
  return T;
}

TypeExprPtr caml::makeTypeNameExpr(const std::string &Name,
                                   std::vector<TypeExprPtr> Args) {
  auto T = std::make_unique<TypeExpr>();
  T->TheKind = TypeExpr::Kind::Name;
  T->Name = Name;
  T->Args = std::move(Args);
  return T;
}

TypeExprPtr caml::makeArrowTypeExpr(TypeExprPtr From, TypeExprPtr To) {
  auto T = std::make_unique<TypeExpr>();
  T->TheKind = TypeExpr::Kind::Arrow;
  T->Args.push_back(std::move(From));
  T->Args.push_back(std::move(To));
  return T;
}

TypeExprPtr caml::makeTupleTypeExpr(std::vector<TypeExprPtr> Elems) {
  auto T = std::make_unique<TypeExpr>();
  T->TheKind = TypeExpr::Kind::Tuple;
  T->Args = std::move(Elems);
  return T;
}

//===----------------------------------------------------------------------===//
// Declarations and programs
//===----------------------------------------------------------------------===//

DeclPtr Decl::clone() const {
  auto Copy = std::make_unique<Decl>(TheKind);
  Copy->Span = Span;
  Copy->IsRec = IsRec;
  if (Binding)
    Copy->Binding = Binding->clone();
  for (const auto &Param : Params)
    Copy->Params.push_back(Param->clone());
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  Copy->TypeName = TypeName;
  Copy->TypeParams = TypeParams;
  Copy->IsRecord = IsRecord;
  for (const auto &Case : Cases) {
    VariantCase C;
    C.Name = Case.Name;
    if (Case.ArgType)
      C.ArgType = Case.ArgType->clone();
    Copy->Cases.push_back(std::move(C));
  }
  for (const auto &Field : Fields) {
    RecordFieldDecl F;
    F.Name = Field.Name;
    F.IsMutable = Field.IsMutable;
    if (Field.Type)
      F.Type = Field.Type->clone();
    Copy->Fields.push_back(std::move(F));
  }
  Copy->ExcName = ExcName;
  if (ExcArgType)
    Copy->ExcArgType = ExcArgType->clone();
  return Copy;
}

bool Decl::equals(const Decl &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Let: {
    if (IsRec != Other.IsRec || Params.size() != Other.Params.size())
      return false;
    if (!Binding->equals(*Other.Binding))
      return false;
    for (size_t I = 0; I < Params.size(); ++I)
      if (!Params[I]->equals(*Other.Params[I]))
        return false;
    return Rhs->equals(*Other.Rhs);
  }
  case Kind::Type:
    // Structural comparison of type declarations is only used by tests on
    // let-mutations, so name equality suffices.
    return TypeName == Other.TypeName;
  case Kind::Exception:
    return ExcName == Other.ExcName;
  }
  return false;
}

unsigned Decl::size() const {
  unsigned N = 1;
  if (Binding)
    N += Binding->size();
  for (const auto &Param : Params)
    N += Param->size();
  if (Rhs)
    N += Rhs->size();
  return N;
}

DeclPtr caml::makeLetDecl(bool IsRec, PatternPtr Binding,
                          std::vector<PatternPtr> Params, ExprPtr Rhs) {
  auto D = std::make_unique<Decl>(Decl::Kind::Let);
  D->IsRec = IsRec;
  D->Binding = std::move(Binding);
  D->Params = std::move(Params);
  D->Rhs = std::move(Rhs);
  return D;
}

Program Program::clone() const {
  Program Copy;
  for (const auto &D : Decls)
    Copy.Decls.push_back(D->clone());
  return Copy;
}

bool Program::equals(const Program &Other) const {
  if (Decls.size() != Other.Decls.size())
    return false;
  for (size_t I = 0; I < Decls.size(); ++I)
    if (!Decls[I]->equals(*Other.Decls[I]))
      return false;
  return true;
}

unsigned Program::size() const {
  unsigned N = 0;
  for (const auto &D : Decls)
    N += D->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Node paths
//===----------------------------------------------------------------------===//

std::string NodePath::str() const {
  std::ostringstream OS;
  OS << "decl " << DeclIndex;
  for (unsigned Step : Steps)
    OS << "." << Step;
  return OS.str();
}

Expr *caml::resolvePath(Program &Prog, const NodePath &Path) {
  if (Path.DeclIndex >= Prog.Decls.size())
    return nullptr;
  Decl *D = Prog.Decls[Path.DeclIndex].get();
  if (D->kind() != Decl::Kind::Let || !D->Rhs)
    return nullptr;
  Expr *Node = D->Rhs.get();
  for (unsigned Step : Path.Steps) {
    if (Step >= Node->numChildren())
      return nullptr;
    Node = Node->child(Step);
  }
  return Node;
}

ExprPtr caml::replaceAtPath(Program &Prog, const NodePath &Path,
                            ExprPtr Replacement) {
  assert(Path.DeclIndex < Prog.Decls.size() && "path decl out of range");
  Decl *D = Prog.Decls[Path.DeclIndex].get();
  assert(D->kind() == Decl::Kind::Let && D->Rhs && "path into non-let decl");
  if (Path.Steps.empty()) {
    ExprPtr Old = std::move(D->Rhs);
    D->Rhs = std::move(Replacement);
    return Old;
  }
  Expr *Parent = D->Rhs.get();
  for (size_t I = 0; I + 1 < Path.Steps.size(); ++I) {
    assert(Path.Steps[I] < Parent->numChildren() && "path step out of range");
    Parent = Parent->child(Path.Steps[I]);
  }
  return Parent->swapChild(Path.Steps.back(), std::move(Replacement));
}
