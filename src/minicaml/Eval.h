//===- Eval.h - Mini-Caml evaluator ------------------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fuel-limited tree-walking evaluator for mini-Caml. The search
/// system never runs programs, but a language substrate a downstream
/// user would adopt needs one -- and it lets the tests demonstrate the
/// strongest property a suggestion can have: applying the fix yields a
/// program that type-checks *and computes the intended result*.
///
/// Evaluation is strict, left-to-right, with closures capturing their
/// environment. Errors (unbound names at runtime, match failure,
/// uncaught exceptions, fuel exhaustion) are reported, never thrown.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_MINICAML_EVAL_H
#define SEMINAL_MINICAML_EVAL_H

#include "minicaml/Ast.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace seminal {
namespace caml {

/// A runtime value.
struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind {
    Int,
    Bool,
    String,
    Unit,
    Tuple,
    List,
    Closure,
    Builtin,
    Constr,
    Record,
    Ref,
  };

  Kind TheKind = Kind::Unit;
  long IntValue = 0;
  bool BoolValue = false;
  std::string StringValue;
  std::vector<ValuePtr> Items;   ///< Tuple/List elements, Constr payload.
  std::string Name;              ///< Constructor / builtin name.
  std::vector<std::string> FieldNames; ///< Record (parallel to Items).
  ValuePtr RefCell;              ///< Ref contents (mutable).

  // Closure payload. The parameter list is shared between the partial
  // applications of one closure (Value must stay copyable).
  const Expr *FnBody = nullptr;
  std::shared_ptr<const std::vector<PatternPtr>> FnParams;
  std::shared_ptr<std::vector<std::pair<std::string, ValuePtr>>> FnEnv;
  /// Already-supplied arguments (partial application).
  std::vector<ValuePtr> Applied;
  /// Recursive closures (`let rec f ... =`): the defining name, re-bound
  /// into the local environment at application time. Storing the closure
  /// strongly inside its own captured environment would be a shared_ptr
  /// cycle -- every recursive function would leak -- so the self-binding
  /// is materialized lazily instead.
  std::string FnSelfName;
  /// Set on the copies apply() makes: the closure the self-binding
  /// resolves to. A copy pointing at its origin is acyclic, so this edge
  /// is safe to keep strong (it also keeps recursion working when a
  /// partial application outlives the defining scope).
  ValuePtr FnOrigin;

  /// Renders the value OCaml-style ("[1; 2]", "(1, \"a\")", "<fun>").
  std::string str() const;

  /// Structural equality (OCaml's =); functions compare false.
  bool equals(const Value &Other) const;
};

ValuePtr vInt(long N);
ValuePtr vBool(bool B);
ValuePtr vString(const std::string &S);
ValuePtr vUnit();
ValuePtr vList(std::vector<ValuePtr> Items);

/// Result of running a program.
struct EvalResult {
  /// Runtime error (match failure, uncaught exception, out of fuel...),
  /// empty on success.
  std::optional<std::string> Error;
  /// Final value of each top-level let binding, by name (later bindings
  /// shadow earlier ones).
  std::vector<std::pair<std::string, ValuePtr>> Bindings;
  /// Everything print_* wrote.
  std::string Output;

  bool ok() const { return !Error.has_value(); }

  /// The last binding with the given name, or null.
  ValuePtr find(const std::string &Name) const;
};

/// Evaluates \p Prog (which should already type-check; the evaluator is
/// defensive about ill-typed input but reports runtime errors for it).
/// \p Fuel bounds the number of evaluation steps.
EvalResult evalProgram(const Program &Prog, size_t Fuel = 1000000);

} // namespace caml
} // namespace seminal

#endif // SEMINAL_MINICAML_EVAL_H
