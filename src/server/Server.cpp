//===- Server.cpp - Search-as-a-service engine and transports ---------------==//

#include "server/Server.h"

#include "obs/SlowTraceRing.h" // sanitizeRequestId
#include "server/Protocol.h"
#include "support/Profiler.h"
#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace seminal;
using namespace seminal::server;

std::string ServerStats::renderJsonMembers() const {
  std::ostringstream OS;
  OS << ",\"requests\":" << Requests << ",\"checks\":" << Checks
     << ",\"resets\":" << Resets << ",\"pings\":" << Pings
     << ",\"malformed\":" << Malformed
     << ",\"sessions_created\":" << SessionsCreated
     << ",\"evictions\":" << Evictions << ",\"oracle_calls\":" << OracleCalls
     << ",\"inference_runs\":" << InferenceRuns
     << ",\"cache_hits\":" << Accel.CacheHits
     << ",\"cache_misses\":" << Accel.CacheMisses
     << ",\"warm\":{\"prefix_hits\":" << Accel.SessionPrefixHits
     << ",\"verdict_reuses\":" << Accel.SessionVerdictReuses
     << ",\"seed_adoptions\":" << Accel.SessionSeedAdoptions
     << ",\"conv_memo_hits\":" << Accel.SessionConvMemoHits << "}";
  // The cost-ledger rollup, same field names as the RunReport's "cost"
  // object so the reconciliation tooling compares them directly.
  OS << ",\"cost\":{\"cpu_ns\":" << Cost.CpuNs
     << ",\"wall_ns\":" << Cost.WallNs
     << ",\"oracle_calls\":" << Cost.OracleCalls
     << ",\"inference_runs\":" << Cost.InferenceRuns
     << ",\"arena_nodes\":" << Cost.ArenaNodes
     << ",\"arena_bytes\":" << Cost.ArenaBytes
     << ",\"verdict_cache_hits\":" << Cost.VerdictCacheHits << "}";
  OS << ",\"shards\":[";
  for (size_t I = 0; I < Shards.size(); ++I) {
    if (I)
      OS << ",";
    OS << "{\"shard\":" << I << ",\"requests\":" << Shards[I].Requests
       << ",\"queue_depth\":" << Shards[I].QueueDepth
       << ",\"busy_seconds\":" << Shards[I].BusySeconds << "}";
  }
  OS << "]";
  return OS.str();
}

std::string server::renderCheckResponse(const std::string &Id,
                                        const CheckOutcome &O) {
  std::ostringstream M;
  if (!O.SyntaxError.empty()) {
    M << ",\"syntax_error\":\"" << jsonEscape(O.SyntaxError) << "\"";
    return okResponse(Id, M.str());
  }
  M << ",\"input_typechecks\":" << (O.InputTypechecks ? "true" : "false")
    << ",\"failing_decl\":" << O.FailingDecl << ",\"budget_exhausted\":"
    << (O.BudgetExhausted ? "true" : "false") << ",\"conventional\":\""
    << jsonEscape(O.Conventional) << "\",\"suggestions\":[";
  for (size_t I = 0; I < O.Suggestions.size(); ++I) {
    const CheckOutcome::RenderedSuggestion &S = O.Suggestions[I];
    if (I)
      M << ",";
    M << "{\"rank\":" << S.Rank << ",\"kind\":\"" << jsonEscape(S.Kind)
      << "\",\"layer\":\"" << jsonEscape(S.Layer) << "\",\"description\":\""
      << jsonEscape(S.Description) << "\",\"path\":\"" << jsonEscape(S.Path)
      << "\",\"message\":\"" << jsonEscape(S.Message) << "\"}";
  }
  M << "],\"oracle_calls\":" << O.OracleCalls
    << ",\"inference_runs\":" << O.InferenceRuns
    << ",\"warm\":{\"prefix_hits\":" << O.Accel.SessionPrefixHits
    << ",\"verdict_reuses\":" << O.Accel.SessionVerdictReuses
    << ",\"seed_adoptions\":" << O.Accel.SessionSeedAdoptions
    << ",\"conv_memo_hits\":" << O.Accel.SessionConvMemoHits
    << "},\"wall_seconds\":" << O.WallSeconds
    << ",\"cost\":{\"cpu_ns\":" << O.Cost.CpuNs
    << ",\"wall_ns\":" << O.Cost.WallNs
    << ",\"oracle_calls\":" << O.Cost.OracleCalls
    << ",\"inference_runs\":" << O.Cost.InferenceRuns
    << ",\"arena_nodes\":" << O.Cost.ArenaNodes
    << ",\"arena_bytes\":" << O.Cost.ArenaBytes
    << ",\"verdict_cache_hits\":" << O.Cost.VerdictCacheHits
    << "},\"evicted\":" << (O.Evicted ? "true" : "false");
  if (!O.SlowTracePath.empty())
    M << ",\"slow_trace\":\"" << jsonEscape(O.SlowTracePath) << "\"";
  if (!O.ReportJson.empty())
    M << ",\"report\":" << O.ReportJson;
  return okResponse(Id, M.str());
}

namespace {

uint64_t warmTotal(const AccelCounters &A) {
  return A.SessionPrefixHits + A.SessionVerdictReuses +
         A.SessionSeedAdoptions + A.SessionConvMemoHits;
}

uint64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - Start)
                      .count());
}

/// Per-connection write side, shared (via shared_ptr) between the
/// reader thread and any pool worker still holding a reply callback
/// after the reader is gone. Alive-under-WriteLock is the teardown
/// contract: Alive is read and flipped only with WriteLock held, and
/// the reader closes the fd only *after* marking the writer dead under
/// the lock -- so a late reply is dropped instead of racing onto a
/// closed, or worse, recycled descriptor.
struct ConnWriter {
  explicit ConnWriter(int Fd) : Fd(Fd) {}

  /// Ranked ServerWrite: reply callbacks run with an empty held-set
  /// (inline methods) or after the pool mutex was dropped (workers), so
  /// any rank would do; ServerWrite documents "write-side, innermost of
  /// the server layer".
  sync::Mutex WriteLock{sync::LockRank::ServerWrite, "server.conn.write"};
  bool Alive SEMINAL_GUARDED_BY(WriteLock) = true;
  const int Fd;

  /// Flips the connection dead. The REQUIRES contract is the point:
  /// callers must already hold WriteLock, which orders the flip before
  /// any close() that follows the release.
  void markDead() SEMINAL_REQUIRES(WriteLock) { Alive = false; }

  /// Writes one reply line (newline appended). Dropped silently when
  /// the connection is already dead; a short or failed send marks it
  /// dead for every later reply.
  void sendLine(const std::string &Line) SEMINAL_EXCLUDES(WriteLock) {
    sync::MutexLock Lock(WriteLock);
    if (!Alive)
      return;
    std::string Out = Line;
    Out.push_back('\n');
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N =
          ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
      if (N <= 0) {
        markDead(); // Client went away; drop the rest.
        return;
      }
      Off += size_t(N);
    }
  }
};

} // namespace

ServerEngine::ServerEngine(const ServerOptions &Opts)
    : Opts(Opts), Slo(Opts.Slo) {
  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  // Sessions do the actual slow-request capture; hand them the ring.
  this->Opts.Session.TraceSlowMs = Opts.TraceSlowMs;
  this->Opts.Session.SlowTraces = Opts.SlowTraces;

  // Resolve every instrument once (naming conventions: DESIGN.md
  // section 14). Hot paths touch only these cached pointers.
  Ops.Requests = &Registry.counter("seminal_requests_total",
                                   "Request lines received, all methods");
  Ops.Checks =
      &Registry.counter("seminal_checks_total", "Check requests served");
  Ops.Resets =
      &Registry.counter("seminal_resets_total", "Reset requests served");
  Ops.Pings = &Registry.counter("seminal_pings_total", "Ping requests served");
  Ops.Malformed = &Registry.counter("seminal_malformed_total",
                                    "Request lines that failed to parse");
  Ops.SessionsCreated = &Registry.counter("seminal_sessions_created_total",
                                          "Sessions created since start");
  Ops.Evictions = &Registry.counter("seminal_evictions_total",
                                    "Arena watermark evictions");
  Ops.OracleCalls = &Registry.counter("seminal_oracle_calls_total",
                                      "Logical oracle calls across checks");
  Ops.InferenceRuns = &Registry.counter("seminal_inference_runs_total",
                                        "Full inference runs across checks");
  Ops.WarmHits = &Registry.counter(
      "seminal_warm_hits_total",
      "Session warm-state reuses (prefix + verdict + seed + memo)");
  Ops.SlowTraces = &Registry.counter("seminal_slow_traces_total",
                                     "Requests that exported a slow trace");
  Ops.Sessions = &Registry.gauge("seminal_sessions", "Live sessions");
  Ops.ArenaBytes = &Registry.gauge(
      "seminal_arena_bytes", "Retained arena bytes across all sessions");
  Ops.CostCpuUs = &Registry.counter(
      "seminal_cost_cpu_us_total",
      "Ledger: request thread-CPU microseconds across checks");
  Ops.CostWallUs = &Registry.counter(
      "seminal_cost_wall_us_total",
      "Ledger: request wall microseconds across checks");
  Ops.CostOracleCalls = &Registry.counter(
      "seminal_cost_oracle_calls_total",
      "Ledger: logical oracle calls across checks");
  Ops.CostInferenceRuns = &Registry.counter(
      "seminal_cost_inference_runs_total",
      "Ledger: inference runs across checks");
  Ops.CostVerdictHits = &Registry.counter(
      "seminal_cost_verdict_cache_hits_total",
      "Ledger: verdict-cache hits across checks");
  Ops.CostArenaNodes = &Registry.gauge(
      "seminal_cost_arena_nodes",
      "Ledger: arena nodes after the most recent check");
  Ops.CostArenaBytes = &Registry.gauge(
      "seminal_cost_arena_bytes",
      "Ledger: arena bytes after the most recent check");
  Ops.SloBurnFast = &Registry.gauge(
      "seminal_slo_burn_rate_milli",
      "Warm-latency SLO burn rate x1000 (1000 = on budget), by window",
      {{"window", "fast"}});
  Ops.SloBurnSlow = &Registry.gauge("seminal_slo_burn_rate_milli", "",
                                    {{"window", "slow"}});
  Ops.SlowestLatencyUs = &Registry.gauge(
      "seminal_slowest_request_latency_us",
      "Latency of the slowest check since start (exemplar gauge)");
  Ops.SlowestInfo = &Registry.info(
      "seminal_slowest_request_info",
      "Identity of the slowest check since start (exemplar labels)");
  Ops.LatencyCold = &Registry.histogram(
      "seminal_request_latency_us",
      "Check latency submit-to-reply in microseconds, by warmth",
      {{"state", "cold"}});
  Ops.LatencyWarm = &Registry.histogram("seminal_request_latency_us", "",
                                        {{"state", "warm"}});
  Ops.RequestCpuUs = &Registry.histogram(
      "seminal_request_cpu_us",
      "Thread-CPU microseconds one check consumed (ledger CpuNs/1000)");
  Ops.OracleCallsPerRequest =
      &Registry.histogram("seminal_oracle_calls_per_request",
                          "Logical oracle calls made by one check");
  Ops.Shards.resize(Pool->numThreads());
  for (size_t S = 0; S < Ops.Shards.size(); ++S) {
    obs::OpsLabels L{{"shard", std::to_string(S)}};
    Ops.Shards[S].Requests = &Registry.counter(
        "seminal_shard_requests_total", "Check/reset requests run per shard",
        L);
    Ops.Shards[S].BusyUs = &Registry.counter(
        "seminal_shard_busy_us_total", "Microseconds spent running requests",
        L);
    Ops.Shards[S].CpuUs = &Registry.counter(
        "seminal_shard_cpu_us_total",
        "Ledger: thread-CPU microseconds of checks run per shard", L);
    Ops.Shards[S].QueueDepth = &Registry.gauge(
        "seminal_shard_queue_depth", "Requests posted but not yet started",
        L);
    Ops.Shards[S].QueueWaitUs = &Registry.histogram(
        "seminal_shard_queue_wait_us", "Microseconds from post to start", L);
  }
}

ServerEngine::~ServerEngine() {
  // Posted handlers reference the engine (stats rollup) and sessions;
  // run them all down before any member dies.
  Pool->drainPosted();
  Pool.reset();
}

unsigned ServerEngine::shards() const { return Pool->numThreads(); }

size_t ServerEngine::shardOf(const std::string &SessionName) const {
  return std::hash<std::string>()(SessionName) % Pool->numThreads();
}

std::shared_ptr<Session> ServerEngine::sessionFor(const std::string &Name) {
  sync::MutexLock Lock(Mutex);
  auto It = Sessions.find(Name);
  if (It != Sessions.end())
    return It->second;
  auto S = std::make_shared<Session>(Name, Opts.Session);
  Sessions.emplace(Name, S);
  ++Stats.SessionsCreated;
  Ops.SessionsCreated->inc();
  Ops.Sessions->set(int64_t(Sessions.size()));
  return S;
}

void ServerEngine::finishCheck(const std::string &Id,
                               const std::string &SessionName, size_t Shard,
                               uint64_t LatencyUs, const CheckOutcome &Out) {
  bool NewSlowest = false;
  {
    sync::MutexLock Lock(Mutex);
    ++Stats.Checks;
    Stats.OracleCalls += Out.OracleCalls;
    Stats.InferenceRuns += Out.InferenceRuns;
    Stats.Accel += Out.Accel;
    Stats.Cost += Out.Cost;
    if (Out.Evicted)
      ++Stats.Evictions;
    // Process-wide retained-bytes gauge, tracked as a sum of per-session
    // deltas so one request updates it in O(1).
    uint64_t &Prev = ArenaBySession[SessionName];
    TotalArenaBytes += Out.ArenaBytes - Prev;
    Prev = Out.ArenaBytes;
    Ops.ArenaBytes->set(int64_t(TotalArenaBytes));
    if (LatencyUs > SlowestLatencyUs) {
      SlowestLatencyUs = LatencyUs;
      NewSlowest = true;
    }
  }
  if (NewSlowest) {
    // Rank order holds: the OpsInfo label mutex is Leaf (> ServerEngine),
    // but we set it outside the engine lock anyway; a racing pair of
    // new-maxima may publish in either order, which only ever leaves the
    // *other* near-maximum exemplar -- acceptable for a debugging aid.
    Ops.SlowestLatencyUs->set(int64_t(LatencyUs));
    Ops.SlowestInfo->set({{"id", obs::sanitizeRequestId(Id)},
                          {"session", obs::sanitizeRequestId(SessionName)},
                          {"shard", std::to_string(Shard)}});
  }
  Ops.Checks->inc();
  Ops.OracleCalls->inc(Out.OracleCalls);
  Ops.InferenceRuns->inc(Out.InferenceRuns);
  // Ledger rollups: same numbers as Stats.Cost above, so the scrape and
  // the stats verb reconcile by construction. Counters are in
  // microseconds (ns counters overflow dashboards' rate() windows).
  Ops.CostCpuUs->inc(Out.Cost.CpuNs / 1000);
  Ops.CostWallUs->inc(Out.Cost.WallNs / 1000);
  Ops.CostOracleCalls->inc(Out.Cost.OracleCalls);
  Ops.CostInferenceRuns->inc(Out.Cost.InferenceRuns);
  Ops.CostVerdictHits->inc(Out.Cost.VerdictCacheHits);
  Ops.CostArenaNodes->set(int64_t(Out.Cost.ArenaNodes));
  Ops.CostArenaBytes->set(int64_t(Out.Cost.ArenaBytes));
  Ops.Shards[Shard].CpuUs->inc(Out.Cost.CpuNs / 1000);
  uint64_t Warm = warmTotal(Out.Accel);
  if (Warm)
    Ops.WarmHits->inc(Warm);
  if (Out.Evicted)
    Ops.Evictions->inc();
  if (!Out.SlowTracePath.empty())
    Ops.SlowTraces->inc();
  (Warm ? Ops.LatencyWarm : Ops.LatencyCold)->record(LatencyUs);
  Ops.RequestCpuUs->record(Out.Cost.CpuNs / 1000);
  Ops.OracleCallsPerRequest->record(Out.OracleCalls);
}

void ServerEngine::logCheck(const std::string &Id,
                            const std::string &SessionName, size_t Shard,
                            uint64_t LatencyUs, const CheckOutcome &Out) {
  if (!Opts.Log || !Opts.Log->enabled(obs::LogLevel::Info))
    return;
  obs::LogEvent E("check");
  E.str("id", Id)
      .str("session", SessionName)
      .num("shard", uint64_t(Shard))
      .real("latency_ms", double(LatencyUs) / 1000.0)
      .real("cpu_ms", double(Out.Cost.CpuNs) / 1e6)
      .num("oracle_calls", Out.OracleCalls)
      .num("inference_runs", Out.InferenceRuns)
      .num("warm_hits", warmTotal(Out.Accel))
      .num("suggestions", uint64_t(Out.Suggestions.size()))
      .boolean("evicted", Out.Evicted);
  if (!Out.SyntaxError.empty())
    E.boolean("syntax_error", true);
  if (!Out.SlowTracePath.empty())
    E.str("slow_trace", Out.SlowTracePath);
  Opts.Log->info(E);
}

void ServerEngine::submit(const std::string &Line, ReplyFn Reply) {
  auto Submitted = std::chrono::steady_clock::now();
  {
    sync::MutexLock Lock(Mutex);
    ++Stats.Requests;
  }
  Ops.Requests->inc();
  Request R = parseRequest(Line);
  switch (R.TheMethod) {
  case Request::Method::Invalid: {
    {
      sync::MutexLock Lock(Mutex);
      ++Stats.Malformed;
    }
    Ops.Malformed->inc();
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Warn))
      Opts.Log->warn(
          obs::LogEvent("malformed").str("id", R.Id).str("error", R.Error));
    Reply(errorResponse(R.Id, R.Error));
    return;
  }
  case Request::Method::Ping: {
    {
      sync::MutexLock Lock(Mutex);
      ++Stats.Pings;
    }
    Ops.Pings->inc();
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Debug))
      Opts.Log->debug(obs::LogEvent("ping").str("id", R.Id));
    Reply(okResponse(R.Id, ",\"pong\":true"));
    return;
  }
  case Request::Method::Stats: {
    ServerStats Snapshot = stats();
    std::ostringstream Extra;
    Extra << Snapshot.renderJsonMembers();
    {
      sync::MutexLock Lock(Mutex);
      Extra << ",\"sessions\":" << Sessions.size();
    }
    Extra << ",\"shard_count\":" << shards();
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Debug))
      Opts.Log->debug(obs::LogEvent("stats").str("id", R.Id));
    Reply(okResponse(R.Id, Extra.str()));
    return;
  }
  case Request::Method::Metrics: {
    std::string Extra;
    if (R.Format == "prometheus") {
      Extra = ",\"format\":\"prometheus\",\"exposition\":\"" +
              jsonEscape(metricsPrometheus()) + "\"";
    } else {
      Extra = ",\"metrics\":" + metricsJson();
    }
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Debug))
      Opts.Log->debug(obs::LogEvent("metrics").str("id", R.Id));
    Reply(okResponse(R.Id, Extra));
    return;
  }
  case Request::Method::Profile: {
    // Synchronous by design: the capture *is* the request, and blocking
    // this connection's reader for the window keeps the engine free of
    // timer plumbing. Other connections (and all pool work) proceed.
    std::ostringstream Extra;
    Extra << ",\"seconds\":" << R.ProfileSeconds << ",\"profiler_running\":"
          << (prof::profiler().running() ? "true" : "false");
    if (R.Format == "json")
      Extra << ",\"profile\":" << profileJson(R.ProfileSeconds);
    else
      Extra << ",\"collapsed\":\""
            << jsonEscape(profileCollapsed(R.ProfileSeconds)) << "\"";
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Info))
      Opts.Log->info(obs::LogEvent("profile")
                         .str("id", R.Id)
                         .num("seconds", uint64_t(R.ProfileSeconds)));
    Reply(okResponse(R.Id, Extra.str()));
    return;
  }
  case Request::Method::Shutdown: {
    Shutdown.store(true);
    if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Info))
      Opts.Log->info(obs::LogEvent("shutdown").str("id", R.Id));
    Reply(okResponse(R.Id, ",\"shutting_down\":true"));
    return;
  }
  case Request::Method::Reset: {
    std::shared_ptr<Session> S = sessionFor(R.Session);
    std::string Id = R.Id;
    size_t Shard = shardOf(R.Session);
    ShardInstruments &SI = Ops.Shards[Shard];
    SI.QueueDepth->add(1);
    Pool->post(Shard, [this, S, Id, Shard, Submitted, &SI,
                       Reply = std::move(Reply)] {
      SI.QueueDepth->add(-1);
      SI.QueueWaitUs->record(microsSince(Submitted));
      SI.Requests->inc();
      auto RunStart = std::chrono::steady_clock::now();
      S->reset();
      SI.BusyUs->inc(microsSince(RunStart));
      {
        sync::MutexLock Lock(Mutex);
        ++Stats.Resets;
      }
      Ops.Resets->inc();
      if (Opts.Log && Opts.Log->enabled(obs::LogLevel::Info))
        Opts.Log->info(obs::LogEvent("reset")
                           .str("id", Id)
                           .str("session", S->name())
                           .num("shard", uint64_t(Shard)));
      Reply(okResponse(Id, ",\"reset\":true"));
    });
    return;
  }
  case Request::Method::Check: {
    std::shared_ptr<Session> S = sessionFor(R.Session);
    CheckOptions CO;
    CO.MaxSuggestions = R.MaxSuggestions;
    CO.MaxOracleCalls = R.MaxOracleCalls;
    CO.WantReport = R.WantReport;
    CO.RequestId = R.Id;
    std::string Id = R.Id;
    std::string Source = std::move(R.Source);
    size_t Shard = shardOf(R.Session);
    ShardInstruments &SI = Ops.Shards[Shard];
    SI.QueueDepth->add(1);
    Pool->post(Shard, [this, S, Id, Shard, Submitted, &SI,
                       Source = std::move(Source), CO,
                       Reply = std::move(Reply)] {
      SI.QueueDepth->add(-1);
      SI.QueueWaitUs->record(microsSince(Submitted));
      SI.Requests->inc();
      auto RunStart = std::chrono::steady_clock::now();
      CheckOutcome Out = S->check(Source, CO);
      SI.BusyUs->inc(microsSince(RunStart));
      // Latency is submit-to-reply: queue wait included, so a backed-up
      // shard shows up in the histogram, not just in queue_wait.
      uint64_t LatencyUs = microsSince(Submitted);
      finishCheck(Id, S->name(), Shard, LatencyUs, Out);
      logCheck(Id, S->name(), Shard, LatencyUs, Out);
      Reply(renderCheckResponse(Id, Out));
    });
    return;
  }
  }
}

std::string ServerEngine::handle(const std::string &Line) {
  // Leaf-ranked: the reply callback runs either inline (no locks held)
  // or on a pool worker after the pool mutex was dropped, so this is
  // always the innermost acquisition.
  sync::Mutex M(sync::LockRank::Leaf, "server.handle");
  sync::CondVar CV;
  bool Done = false;
  std::string Result;
  submit(Line, [&](const std::string &Response) {
    {
      sync::MutexLock Lock(M);
      Result = Response;
      Done = true;
    }
    CV.notify_one();
  });
  sync::MutexLock Lock(M);
  while (!Done)
    CV.wait(M);
  return Result;
}

void ServerEngine::drain() { Pool->drainPosted(); }

ServerStats ServerEngine::stats() const {
  ServerStats Out;
  {
    sync::MutexLock Lock(Mutex);
    Out = Stats;
  }
  // The shard breakdown reads the registry instruments directly -- the
  // same atomics /metrics scrapes -- so both views always agree.
  Out.Shards.resize(Ops.Shards.size());
  for (size_t S = 0; S < Ops.Shards.size(); ++S) {
    Out.Shards[S].Requests = Ops.Shards[S].Requests->value();
    Out.Shards[S].QueueDepth = Ops.Shards[S].QueueDepth->value();
    Out.Shards[S].BusySeconds =
        double(Ops.Shards[S].BusyUs->value()) / 1e6;
  }
  return Out;
}

obs::SloTracker::Burn ServerEngine::tickSlo() {
  uint64_t NowNs = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch())
                                .count());
  obs::SloTracker::Burn B = Slo.tick(NowNs, *Ops.LatencyWarm);
  // Gauges are integer; publish in milli-burn (1000 = on budget). A
  // window with no traffic reads 0, matching "no budget being spent".
  Ops.SloBurnFast->set(int64_t(B.Fast.Burn * 1000.0));
  Ops.SloBurnSlow->set(int64_t(B.Slow.Burn * 1000.0));
  return B;
}

std::string ServerEngine::metricsPrometheus() {
  tickSlo();
  return Registry.renderPrometheus();
}

std::string ServerEngine::metricsJson() {
  tickSlo();
  std::ostringstream OS;
  Registry.writeJson(OS);
  return OS.str();
}

std::string ServerEngine::profileCollapsed(unsigned Seconds) {
  prof::ProfileSnapshot Snap =
      prof::profiler().captureDelta(Seconds * 1000u, &Shutdown);
  std::ostringstream OS;
  Snap.writeCollapsed(OS);
  return OS.str();
}

std::string ServerEngine::profileJson(unsigned Seconds) {
  prof::ProfileSnapshot Snap =
      prof::profiler().captureDelta(Seconds * 1000u, &Shutdown);
  std::ostringstream OS;
  Snap.writeJson(OS);
  return OS.str();
}

void server::serveStdio(ServerEngine &Engine, std::istream &In,
                        std::ostream &Out) {
  // One mutex serializes reply lines; responses from different sessions
  // may interleave in any order (clients correlate by id), but each
  // line is written atomically and flushed so a pipe reader never
  // blocks on a partial response.
  sync::Mutex WriteMutex(sync::LockRank::ServerWrite, "server.stdio.write");
  auto Reply = [&WriteMutex, &Out](const std::string &Line) {
    sync::MutexLock Lock(WriteMutex);
    Out << Line << "\n";
    Out.flush();
  };
  std::string Line;
  while (!Engine.shutdownRequested() && std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    Engine.submit(Line, Reply);
  }
  Engine.drain();
}

// UnixSocketServer -----------------------------------------------------------

UnixSocketServer::UnixSocketServer(ServerEngine &Engine, std::string Path)
    : Engine(Engine), Path(std::move(Path)) {}

UnixSocketServer::~UnixSocketServer() { stop(); }

bool UnixSocketServer::start(std::string &Error) {
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  // Distinguish a *stale* socket file (previous daemon died without
  // cleanup -- safe to unlink) from a *live* one (another daemon is
  // serving it -- unlinking would silently steal its address and strand
  // its clients): a probe connect succeeds only on a live socket.
  int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Probe >= 0) {
    bool Live = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
    ::close(Probe);
    if (Live) {
      Error = "bind " + Path + ": address already in use "
              "(another daemon is serving this socket)";
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }
  ::unlink(Path.c_str()); // A stale socket from a previous run.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind " + Path + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 16) < 0) {
    Error = "listen " + Path + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void UnixSocketServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true);
  // Unblock accept(); connection readers unblock through their fds.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  std::vector<std::thread> Threads;
  {
    sync::MutexLock Lock(ConnMutex);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
    Threads.swap(ConnThreads);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  ::unlink(Path.c_str());
  ListenFd = -1;
}

void UnixSocketServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR && !Stopping.load())
        continue;
      return;
    }
    sync::MutexLock Lock(ConnMutex);
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    LiveFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { connectionLoop(Fd); });
  }
}

void UnixSocketServer::connectionLoop(int Fd) {
  // Replies may arrive from pool workers after this reader exits (the
  // client disconnected mid-request); ConnWriter's Alive-under-WriteLock
  // contract keeps those late replies off the closed fd. The session's
  // warm state is unaffected either way.
  auto Writer = std::make_shared<ConnWriter>(Fd);
  auto Reply = [Writer](const std::string &Line) { Writer->sendLine(Line); };

  std::string Buf;
  char Chunk[4096];
  bool SawShutdown = false;
  while (!SawShutdown) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Buf.append(Chunk, size_t(N));
    size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Pos);
      Buf.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        Engine.submit(Line, Reply);
      if (Engine.shutdownRequested()) {
        SawShutdown = true;
        break;
      }
    }
  }
  // Let in-flight requests of this connection deliver their replies
  // before the fd goes away; other connections' work is drained too,
  // which is acceptable at editor request rates.
  Engine.drain();
  {
    // Teardown ordering: dead under the lock first, close after release.
    sync::MutexLock Lock(Writer->WriteLock);
    Writer->markDead();
  }
  {
    sync::MutexLock Lock(ConnMutex);
    LiveFds.erase(std::remove(LiveFds.begin(), LiveFds.end(), Fd),
                  LiveFds.end());
  }
  ::close(Fd);
}
