//===- Server.cpp - Search-as-a-service engine and transports ---------------==//

#include "server/Server.h"

#include "server/Protocol.h"
#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <condition_variable>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace seminal;
using namespace seminal::server;

std::string ServerStats::renderJsonMembers() const {
  std::ostringstream OS;
  OS << ",\"requests\":" << Requests << ",\"checks\":" << Checks
     << ",\"resets\":" << Resets << ",\"pings\":" << Pings
     << ",\"malformed\":" << Malformed
     << ",\"sessions_created\":" << SessionsCreated
     << ",\"evictions\":" << Evictions << ",\"oracle_calls\":" << OracleCalls
     << ",\"inference_runs\":" << InferenceRuns
     << ",\"cache_hits\":" << Accel.CacheHits
     << ",\"cache_misses\":" << Accel.CacheMisses
     << ",\"warm\":{\"prefix_hits\":" << Accel.SessionPrefixHits
     << ",\"verdict_reuses\":" << Accel.SessionVerdictReuses
     << ",\"seed_adoptions\":" << Accel.SessionSeedAdoptions
     << ",\"conv_memo_hits\":" << Accel.SessionConvMemoHits << "}";
  return OS.str();
}

std::string server::renderCheckResponse(const std::string &Id,
                                        const CheckOutcome &O) {
  std::ostringstream M;
  if (!O.SyntaxError.empty()) {
    M << ",\"syntax_error\":\"" << jsonEscape(O.SyntaxError) << "\"";
    return okResponse(Id, M.str());
  }
  M << ",\"input_typechecks\":" << (O.InputTypechecks ? "true" : "false")
    << ",\"failing_decl\":" << O.FailingDecl << ",\"budget_exhausted\":"
    << (O.BudgetExhausted ? "true" : "false") << ",\"conventional\":\""
    << jsonEscape(O.Conventional) << "\",\"suggestions\":[";
  for (size_t I = 0; I < O.Suggestions.size(); ++I) {
    const CheckOutcome::RenderedSuggestion &S = O.Suggestions[I];
    if (I)
      M << ",";
    M << "{\"rank\":" << S.Rank << ",\"kind\":\"" << jsonEscape(S.Kind)
      << "\",\"layer\":\"" << jsonEscape(S.Layer) << "\",\"description\":\""
      << jsonEscape(S.Description) << "\",\"path\":\"" << jsonEscape(S.Path)
      << "\",\"message\":\"" << jsonEscape(S.Message) << "\"}";
  }
  M << "],\"oracle_calls\":" << O.OracleCalls
    << ",\"inference_runs\":" << O.InferenceRuns
    << ",\"warm\":{\"prefix_hits\":" << O.Accel.SessionPrefixHits
    << ",\"verdict_reuses\":" << O.Accel.SessionVerdictReuses
    << ",\"seed_adoptions\":" << O.Accel.SessionSeedAdoptions
    << ",\"conv_memo_hits\":" << O.Accel.SessionConvMemoHits
    << "},\"wall_seconds\":" << O.WallSeconds
    << ",\"evicted\":" << (O.Evicted ? "true" : "false");
  if (!O.ReportJson.empty())
    M << ",\"report\":" << O.ReportJson;
  return okResponse(Id, M.str());
}

ServerEngine::ServerEngine(const ServerOptions &Opts) : Opts(Opts) {
  Pool = std::make_unique<ThreadPool>(Opts.Threads);
}

ServerEngine::~ServerEngine() {
  // Posted handlers reference the engine (stats rollup) and sessions;
  // run them all down before any member dies.
  Pool->drainPosted();
  Pool.reset();
}

unsigned ServerEngine::shards() const { return Pool->numThreads(); }

size_t ServerEngine::shardOf(const std::string &SessionName) const {
  return std::hash<std::string>()(SessionName) % Pool->numThreads();
}

std::shared_ptr<Session> ServerEngine::sessionFor(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Name);
  if (It != Sessions.end())
    return It->second;
  auto S = std::make_shared<Session>(Name, Opts.Session);
  Sessions.emplace(Name, S);
  ++Stats.SessionsCreated;
  return S;
}

void ServerEngine::finishCheck(const CheckOutcome &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Checks;
  Stats.OracleCalls += Out.OracleCalls;
  Stats.InferenceRuns += Out.InferenceRuns;
  Stats.Accel += Out.Accel;
  if (Out.Evicted)
    ++Stats.Evictions;
}

void ServerEngine::submit(const std::string &Line, ReplyFn Reply) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Requests;
  }
  Request R = parseRequest(Line);
  switch (R.TheMethod) {
  case Request::Method::Invalid: {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.Malformed;
    }
    Reply(errorResponse(R.Id, R.Error));
    return;
  }
  case Request::Method::Ping: {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.Pings;
    }
    Reply(okResponse(R.Id, ",\"pong\":true"));
    return;
  }
  case Request::Method::Stats: {
    std::ostringstream Extra;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Extra << Stats.renderJsonMembers()
            << ",\"sessions\":" << Sessions.size();
    }
    Extra << ",\"shards\":" << shards();
    Reply(okResponse(R.Id, Extra.str()));
    return;
  }
  case Request::Method::Shutdown: {
    Shutdown.store(true);
    Reply(okResponse(R.Id, ",\"shutting_down\":true"));
    return;
  }
  case Request::Method::Reset: {
    std::shared_ptr<Session> S = sessionFor(R.Session);
    std::string Id = R.Id;
    Pool->post(shardOf(R.Session),
               [this, S, Id, Reply = std::move(Reply)] {
                 S->reset();
                 {
                   std::lock_guard<std::mutex> Lock(Mutex);
                   ++Stats.Resets;
                 }
                 Reply(okResponse(Id, ",\"reset\":true"));
               });
    return;
  }
  case Request::Method::Check: {
    std::shared_ptr<Session> S = sessionFor(R.Session);
    CheckOptions CO;
    CO.MaxSuggestions = R.MaxSuggestions;
    CO.MaxOracleCalls = R.MaxOracleCalls;
    CO.WantReport = R.WantReport;
    std::string Id = R.Id;
    std::string Source = std::move(R.Source);
    Pool->post(shardOf(R.Session), [this, S, Id, Source = std::move(Source),
                                    CO, Reply = std::move(Reply)] {
      CheckOutcome Out = S->check(Source, CO);
      finishCheck(Out);
      Reply(renderCheckResponse(Id, Out));
    });
    return;
  }
  }
}

std::string ServerEngine::handle(const std::string &Line) {
  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
  std::string Result;
  submit(Line, [&](const std::string &Response) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Result = Response;
      Done = true;
    }
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(M);
  CV.wait(Lock, [&] { return Done; });
  return Result;
}

void ServerEngine::drain() { Pool->drainPosted(); }

ServerStats ServerEngine::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void server::serveStdio(ServerEngine &Engine, std::istream &In,
                        std::ostream &Out) {
  // One mutex serializes reply lines; responses from different sessions
  // may interleave in any order (clients correlate by id), but each
  // line is written atomically and flushed so a pipe reader never
  // blocks on a partial response.
  std::mutex WriteMutex;
  auto Reply = [&WriteMutex, &Out](const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    Out << Line << "\n";
    Out.flush();
  };
  std::string Line;
  while (!Engine.shutdownRequested() && std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    Engine.submit(Line, Reply);
  }
  Engine.drain();
}

// UnixSocketServer -----------------------------------------------------------

UnixSocketServer::UnixSocketServer(ServerEngine &Engine, std::string Path)
    : Engine(Engine), Path(std::move(Path)) {}

UnixSocketServer::~UnixSocketServer() { stop(); }

bool UnixSocketServer::start(std::string &Error) {
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // A stale socket from a previous run.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind " + Path + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 16) < 0) {
    Error = "listen " + Path + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void UnixSocketServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true);
  // Unblock accept(); connection readers unblock through their fds.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
    Threads.swap(ConnThreads);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  ::unlink(Path.c_str());
  ListenFd = -1;
}

void UnixSocketServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR && !Stopping.load())
        continue;
      return;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    LiveFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { connectionLoop(Fd); });
  }
}

void UnixSocketServer::connectionLoop(int Fd) {
  // Replies may arrive from pool workers after this reader exits (the
  // client disconnected mid-request). Alive is flipped under the write
  // lock before the fd closes, so a late reply is dropped instead of
  // racing onto a closed -- or worse, recycled -- descriptor. The
  // session's warm state is unaffected either way.
  auto WriteLock = std::make_shared<std::mutex>();
  auto Alive = std::make_shared<bool>(true);
  auto Reply = [Fd, WriteLock, Alive](const std::string &Line) {
    std::lock_guard<std::mutex> Lock(*WriteLock);
    if (!*Alive)
      return;
    std::string Out = Line;
    Out.push_back('\n');
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N =
          ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
      if (N <= 0) {
        *Alive = false; // Client went away; drop the rest.
        return;
      }
      Off += size_t(N);
    }
  };

  std::string Buf;
  char Chunk[4096];
  bool SawShutdown = false;
  while (!SawShutdown) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Buf.append(Chunk, size_t(N));
    size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Pos);
      Buf.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        Engine.submit(Line, Reply);
      if (Engine.shutdownRequested()) {
        SawShutdown = true;
        break;
      }
    }
  }
  // Let in-flight requests of this connection deliver their replies
  // before the fd goes away; other connections' work is drained too,
  // which is acceptable at editor request rates.
  Engine.drain();
  {
    std::lock_guard<std::mutex> Lock(*WriteLock);
    *Alive = false;
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    LiveFds.erase(std::remove(LiveFds.begin(), LiveFds.end(), Fd),
                  LiveFds.end());
  }
  ::close(Fd);
}
