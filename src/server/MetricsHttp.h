//===- MetricsHttp.h - Minimal HTTP listener for /metrics -------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's scrape endpoint (`--metrics-port`, DESIGN.md section
/// 14). A deliberately tiny HTTP/1.0-style server on 127.0.0.1 serving
/// exactly three GET routes:
///
///   /metrics       Prometheus text exposition of the engine registry
///   /metrics.json  the same snapshot as compact JSON (Explorer panel)
///   /healthz       {"ok":true} liveness probe
///
/// One accept thread, one request per connection, connection closed
/// after the response -- the shape every scraper handles and small
/// enough to audit. This is an operator port, not a client transport;
/// the JSONL protocol stays on the Unix socket.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SERVER_METRICSHTTP_H
#define SEMINAL_SERVER_METRICSHTTP_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace seminal {
namespace server {

class ServerEngine;

class MetricsHttpServer {
public:
  /// \p Port 0 asks the kernel for an ephemeral port (tests); read the
  /// actual port back with port().
  MetricsHttpServer(ServerEngine &Engine, uint16_t Port);
  ~MetricsHttpServer();

  /// Binds 127.0.0.1:<port>, listens and spawns the accept thread.
  /// \returns false with \p Error set on failure.
  bool start(std::string &Error);
  void stop();

  /// The bound port (valid after a successful start()).
  uint16_t port() const { return BoundPort; }

private:
  void acceptLoop();
  void serveConnection(int Fd);

  ServerEngine &Engine;
  uint16_t RequestedPort;
  uint16_t BoundPort = 0;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
};

} // namespace server
} // namespace seminal

#endif // SEMINAL_SERVER_METRICSHTTP_H
