//===- Server.h - Search-as-a-service engine and transports -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon behind `seminal_serverd` (DESIGN.md section 13). A
/// ServerEngine owns the session table and a ThreadPool; every request
/// line is parsed on the submitting thread, then routed:
///
///   * check/reset are posted to the owning session's *shard* -- shard =
///     hash(session name) mod workers, served FIFO by exactly one worker
///     (support/ThreadPool.h's post()). Requests of one session never
///     run concurrently, so Session needs no locks and warm-state reuse
///     is deterministic; requests of different sessions proceed in
///     parallel without contention.
///   * ping/stats/shutdown are answered inline (they only read the
///     rollup or flip the shutdown flag).
///
/// Replies are delivered through a callback, possibly on a pool worker;
/// transports serialize writes themselves. The engine never drops a
/// request silently: malformed lines get an error reply and are counted
/// in ServerStats::Malformed.
///
/// Transports: serveStdio() pumps one istream/ostream pair (the
/// daemon's --stdio mode and the socketpair-driven tests);
/// UnixSocketServer accepts editor connections on a Unix domain socket,
/// one reader thread per connection, replies serialized per connection.
/// A client disconnecting mid-request only loses its reply; the session
/// and its warm state survive for the reconnect.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SERVER_SERVER_H
#define SEMINAL_SERVER_SERVER_H

#include "obs/Log.h"
#include "obs/OpsRegistry.h"
#include "obs/Slo.h"
#include "server/Session.h"
#include "support/Sync.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace seminal {
namespace server {

struct ServerOptions {
  /// Worker (= shard) count; 0 picks hardware concurrency.
  unsigned Threads = 0;
  /// Configuration applied to every session.
  SessionConfig Session;

  // Observability (DESIGN.md section 14); everything defaults to off
  // and costs one branch when off. ---------------------------------
  /// Structured per-request log lines (not owned; must outlive the
  /// engine). Null = no logging.
  obs::Logger *Log = nullptr;
  /// Tail-sampled slow-request tracing: requests slower than
  /// TraceSlowMs milliseconds export their trace into this ring (not
  /// owned). Negative threshold or null ring = off. Copied into the
  /// SessionConfig handed to every session.
  obs::SlowTraceRing *SlowTraces = nullptr;
  double TraceSlowMs = -1.0;
  /// Latency SLO for the burn-rate gauges (DESIGN.md section 16): the
  /// objective is evaluated against the *warm* request-latency
  /// histogram (cold first-contact requests pay oracle warmup by
  /// design and would drown the signal). Always on; the tracker only
  /// runs on scrape/stats paths, so idle cost is zero.
  obs::SloConfig Slo;
};

/// Server-wide rollup, updated after every request and served by the
/// "stats" method. All counters are totals since the engine started.
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Checks = 0;
  uint64_t Resets = 0;
  uint64_t Pings = 0;
  uint64_t Malformed = 0;
  uint64_t SessionsCreated = 0;
  uint64_t Evictions = 0;
  uint64_t OracleCalls = 0;
  uint64_t InferenceRuns = 0;
  /// Acceleration counters accumulated across every check of every
  /// session (per-request counters are scoped by runSeminalWithOracle;
  /// this is their sum, the satellite's "ServerStats rollup").
  AccelCounters Accel;
  /// Cost-ledger rollup: the sum of every check's RequestCost, i.e. the
  /// same numbers the seminal_cost_* instrument families carry (the
  /// reconciliation CI gate pins scrape == stats == per-request sums).
  RequestCost Cost;

  /// Per-shard breakdown, read from the same OpsRegistry instruments
  /// the /metrics exposition serves, so the two views reconcile by
  /// construction.
  struct ShardStats {
    uint64_t Requests = 0;   ///< check+reset requests served here.
    int64_t QueueDepth = 0;  ///< Posted but not yet started.
    double BusySeconds = 0.0;
  };
  std::vector<ShardStats> Shards;

  /// Members of the stats response, pre-rendered as ',"k":v' JSON text
  /// (includes the "shards" array).
  std::string renderJsonMembers() const;
};

class ServerEngine {
public:
  explicit ServerEngine(const ServerOptions &Opts = {});
  ~ServerEngine();

  /// A reply sink; invoked exactly once per submitted line with one
  /// response line (no trailing newline), possibly on a pool worker.
  using ReplyFn = std::function<void(const std::string &)>;

  /// Routes one request line (see file comment).
  void submit(const std::string &Line, ReplyFn Reply);

  /// Synchronous convenience for tests and simple clients: submits,
  /// waits for every in-flight request to finish, returns the reply.
  std::string handle(const std::string &Line);

  /// Blocks until every posted request has been served.
  void drain();

  /// Snapshot of the rollup.
  ServerStats stats() const;

  /// A shutdown request was received; transports should stop accepting
  /// input, drain and exit.
  bool shutdownRequested() const { return Shutdown.load(); }

  unsigned shards() const;
  /// The shard a session name pins to (exposed for tests).
  size_t shardOf(const std::string &SessionName) const;

  /// The live instrument registry (the "metrics" verb, the HTTP
  /// endpoint and tests read it; the engine updates it per request).
  obs::OpsRegistry &registry() { return Registry; }
  /// Prometheus text exposition of the registry. Ticks the SLO tracker
  /// first, so scraped burn-rate gauges are current as of the scrape.
  std::string metricsPrometheus();
  /// Compact JSON snapshot of the registry (also ticks the tracker).
  std::string metricsJson();

  /// Advances the SLO snapshot ring against the warm-latency histogram
  /// and publishes the burn-rate gauges. Called by the render paths;
  /// exposed for tests and for transports that scrape on a timer.
  obs::SloTracker::Burn tickSlo();

  /// Captures a profiler window of \p Seconds (blocking; aborts early
  /// on shutdown) and renders it. Collapsed = flamegraph.pl folded
  /// stacks; JSON = the full snapshot object. Works whether or not the
  /// profiler is running (a stopped profiler yields an empty window).
  std::string profileCollapsed(unsigned Seconds);
  std::string profileJson(unsigned Seconds);

private:
  /// Cached instrument pointers: resolved once at construction, so hot
  /// paths never touch the registry map.
  struct ShardInstruments {
    obs::OpsCounter *Requests = nullptr;
    obs::OpsCounter *BusyUs = nullptr;
    obs::OpsCounter *CpuUs = nullptr;
    obs::OpsGauge *QueueDepth = nullptr;
    LogHistogram *QueueWaitUs = nullptr;
  };
  struct Instruments {
    obs::OpsCounter *Requests = nullptr;
    obs::OpsCounter *Checks = nullptr;
    obs::OpsCounter *Resets = nullptr;
    obs::OpsCounter *Pings = nullptr;
    obs::OpsCounter *Malformed = nullptr;
    obs::OpsCounter *SessionsCreated = nullptr;
    obs::OpsCounter *Evictions = nullptr;
    obs::OpsCounter *OracleCalls = nullptr;
    obs::OpsCounter *InferenceRuns = nullptr;
    obs::OpsCounter *WarmHits = nullptr;
    obs::OpsCounter *SlowTraces = nullptr;
    obs::OpsGauge *Sessions = nullptr;
    obs::OpsGauge *ArenaBytes = nullptr;
    // Cost-ledger families (DESIGN.md section 16). Counters are flows
    // summed across checks; the arena pair are levels (gauges).
    obs::OpsCounter *CostCpuUs = nullptr;
    obs::OpsCounter *CostWallUs = nullptr;
    obs::OpsCounter *CostOracleCalls = nullptr;
    obs::OpsCounter *CostInferenceRuns = nullptr;
    obs::OpsCounter *CostVerdictHits = nullptr;
    obs::OpsGauge *CostArenaNodes = nullptr;
    obs::OpsGauge *CostArenaBytes = nullptr;
    /// Burn rates in milli-units (gauges are int64; 1000 = burning the
    /// error budget exactly at the sustainable rate).
    obs::OpsGauge *SloBurnFast = nullptr;
    obs::OpsGauge *SloBurnSlow = nullptr;
    /// Slowest-request exemplar: the latency gauge pairs with an info
    /// series whose labels name the request (sanitized id, session,
    /// shard), so dashboards can link a spike to a concrete request.
    obs::OpsGauge *SlowestLatencyUs = nullptr;
    obs::OpsInfo *SlowestInfo = nullptr;
    LogHistogram *LatencyCold = nullptr;
    LogHistogram *LatencyWarm = nullptr;
    LogHistogram *RequestCpuUs = nullptr;
    LogHistogram *OracleCallsPerRequest = nullptr;
    std::vector<ShardInstruments> Shards;
  };

  std::shared_ptr<Session> sessionFor(const std::string &Name);
  void finishCheck(const std::string &Id, const std::string &SessionName,
                   size_t Shard, uint64_t LatencyUs, const CheckOutcome &Out);
  void logCheck(const std::string &Id, const std::string &SessionName,
                size_t Shard, uint64_t LatencyUs, const CheckOutcome &Out);

  /// Immutable after construction (Opts, Pool, Registry, the cached
  /// instrument pointers in Ops); the instruments themselves are
  /// lock-free atomics.
  ServerOptions Opts;
  std::unique_ptr<ThreadPool> Pool;
  obs::OpsRegistry Registry;
  obs::SloTracker Slo;
  Instruments Ops;
  mutable sync::Mutex Mutex{sync::LockRank::ServerEngine, "server.engine"};
  std::unordered_map<std::string, std::shared_ptr<Session>> Sessions
      SEMINAL_GUARDED_BY(Mutex);
  /// Last reported retained arena bytes per session, so the process-wide
  /// seminal_arena_bytes gauge can track the sum incrementally.
  std::unordered_map<std::string, uint64_t> ArenaBySession
      SEMINAL_GUARDED_BY(Mutex);
  uint64_t TotalArenaBytes SEMINAL_GUARDED_BY(Mutex) = 0;
  /// High-water latency for the slowest-request exemplar; the gauge and
  /// info labels are republished only when a check beats this.
  uint64_t SlowestLatencyUs SEMINAL_GUARDED_BY(Mutex) = 0;
  ServerStats Stats SEMINAL_GUARDED_BY(Mutex);
  std::atomic<bool> Shutdown{false};
};

/// Builds the full JSON response line for one check outcome (shared by
/// the engine and the tests that assert response shape).
std::string renderCheckResponse(const std::string &Id, const CheckOutcome &O);

/// Pumps a JSONL request stream until EOF or shutdown: reads lines from
/// \p In, writes reply lines to \p Out (serialized, flushed per line).
/// Returns when the stream ends or a shutdown request was served, after
/// draining in-flight requests.
void serveStdio(ServerEngine &Engine, std::istream &In, std::ostream &Out);

/// Unix-domain-socket transport. start() binds, listens and spawns the
/// accept thread; stop() (and the destructor) closes every connection
/// and joins. Connections are independent JSONL streams into the shared
/// engine, so two editors can address the same session by name.
class UnixSocketServer {
public:
  UnixSocketServer(ServerEngine &Engine, std::string Path);
  ~UnixSocketServer();

  /// \returns false with \p Error set when the socket cannot be bound.
  bool start(std::string &Error);
  void stop();

private:
  void acceptLoop();
  void connectionLoop(int Fd);

  ServerEngine &Engine;
  std::string Path;
  /// Written by start()/stop() only (callers serialize those); read by
  /// the accept thread, which both calls unblock through shutdown(2).
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  sync::Mutex ConnMutex{sync::LockRank::ServerConn, "server.conn"};
  std::vector<std::thread> ConnThreads SEMINAL_GUARDED_BY(ConnMutex);
  std::vector<int> LiveFds SEMINAL_GUARDED_BY(ConnMutex);
};

} // namespace server
} // namespace seminal

#endif // SEMINAL_SERVER_SERVER_H
