//===- Server.h - Search-as-a-service engine and transports -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon behind `seminal_serverd` (DESIGN.md section 13). A
/// ServerEngine owns the session table and a ThreadPool; every request
/// line is parsed on the submitting thread, then routed:
///
///   * check/reset are posted to the owning session's *shard* -- shard =
///     hash(session name) mod workers, served FIFO by exactly one worker
///     (support/ThreadPool.h's post()). Requests of one session never
///     run concurrently, so Session needs no locks and warm-state reuse
///     is deterministic; requests of different sessions proceed in
///     parallel without contention.
///   * ping/stats/shutdown are answered inline (they only read the
///     rollup or flip the shutdown flag).
///
/// Replies are delivered through a callback, possibly on a pool worker;
/// transports serialize writes themselves. The engine never drops a
/// request silently: malformed lines get an error reply and are counted
/// in ServerStats::Malformed.
///
/// Transports: serveStdio() pumps one istream/ostream pair (the
/// daemon's --stdio mode and the socketpair-driven tests);
/// UnixSocketServer accepts editor connections on a Unix domain socket,
/// one reader thread per connection, replies serialized per connection.
/// A client disconnecting mid-request only loses its reply; the session
/// and its warm state survive for the reconnect.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SERVER_SERVER_H
#define SEMINAL_SERVER_SERVER_H

#include "server/Session.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace seminal {
namespace server {

struct ServerOptions {
  /// Worker (= shard) count; 0 picks hardware concurrency.
  unsigned Threads = 0;
  /// Configuration applied to every session.
  SessionConfig Session;
};

/// Server-wide rollup, updated after every request and served by the
/// "stats" method. All counters are totals since the engine started.
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Checks = 0;
  uint64_t Resets = 0;
  uint64_t Pings = 0;
  uint64_t Malformed = 0;
  uint64_t SessionsCreated = 0;
  uint64_t Evictions = 0;
  uint64_t OracleCalls = 0;
  uint64_t InferenceRuns = 0;
  /// Acceleration counters accumulated across every check of every
  /// session (per-request counters are scoped by runSeminalWithOracle;
  /// this is their sum, the satellite's "ServerStats rollup").
  AccelCounters Accel;

  /// Members of the stats response, pre-rendered as ',"k":v' JSON text.
  std::string renderJsonMembers() const;
};

class ServerEngine {
public:
  explicit ServerEngine(const ServerOptions &Opts = {});
  ~ServerEngine();

  /// A reply sink; invoked exactly once per submitted line with one
  /// response line (no trailing newline), possibly on a pool worker.
  using ReplyFn = std::function<void(const std::string &)>;

  /// Routes one request line (see file comment).
  void submit(const std::string &Line, ReplyFn Reply);

  /// Synchronous convenience for tests and simple clients: submits,
  /// waits for every in-flight request to finish, returns the reply.
  std::string handle(const std::string &Line);

  /// Blocks until every posted request has been served.
  void drain();

  /// Snapshot of the rollup.
  ServerStats stats() const;

  /// A shutdown request was received; transports should stop accepting
  /// input, drain and exit.
  bool shutdownRequested() const { return Shutdown.load(); }

  unsigned shards() const;
  /// The shard a session name pins to (exposed for tests).
  size_t shardOf(const std::string &SessionName) const;

private:
  std::shared_ptr<Session> sessionFor(const std::string &Name);
  void finishCheck(const CheckOutcome &Out);

  ServerOptions Opts;
  std::unique_ptr<ThreadPool> Pool;
  mutable std::mutex Mutex; ///< Guards Sessions and Stats.
  std::unordered_map<std::string, std::shared_ptr<Session>> Sessions;
  ServerStats Stats;
  std::atomic<bool> Shutdown{false};
};

/// Builds the full JSON response line for one check outcome (shared by
/// the engine and the tests that assert response shape).
std::string renderCheckResponse(const std::string &Id, const CheckOutcome &O);

/// Pumps a JSONL request stream until EOF or shutdown: reads lines from
/// \p In, writes reply lines to \p Out (serialized, flushed per line).
/// Returns when the stream ends or a shutdown request was served, after
/// draining in-flight requests.
void serveStdio(ServerEngine &Engine, std::istream &In, std::ostream &Out);

/// Unix-domain-socket transport. start() binds, listens and spawns the
/// accept thread; stop() (and the destructor) closes every connection
/// and joins. Connections are independent JSONL streams into the shared
/// engine, so two editors can address the same session by name.
class UnixSocketServer {
public:
  UnixSocketServer(ServerEngine &Engine, std::string Path);
  ~UnixSocketServer();

  /// \returns false with \p Error set when the socket cannot be bound.
  bool start(std::string &Error);
  void stop();

private:
  void acceptLoop();
  void connectionLoop(int Fd);

  ServerEngine &Engine;
  std::string Path;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnMutex; ///< Guards ConnThreads and LiveFds.
  std::vector<std::thread> ConnThreads;
  std::vector<int> LiveFds;
};

} // namespace server
} // namespace seminal

#endif // SEMINAL_SERVER_SERVER_H
