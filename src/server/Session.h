//===- Session.h - One client's warm search state ---------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is the unit of warm-state reuse in the search daemon: one
/// long-lived CheckpointedOracle in session-retention mode, its shared
/// hash-consing arena, and a per-session Metrics sink. Requests from the
/// same editor hit the same Session, so an edit-resubmit re-adopts the
/// previous request's prefix checkpoint and verdict cache instead of
/// re-inferring from scratch (CheckpointedOracle.h's server-mode notes).
///
/// Scoping rules (DESIGN.md section 13): AccelCounters are per-request
/// -- runSeminalWithOracle resets them at entry and the Session folds
/// each request's counters into its own rollup; Metrics are per-session
/// (one sink per Session, never shared across sessions); the arena is
/// per-session and persists across requests until the eviction
/// watermark. A Session is single-threaded by construction: the server
/// pins it to one ThreadPool shard and its requests run FIFO there, so
/// no member needs a lock.
///
/// Eviction: interned arena nodes are immortal, so a session that keeps
/// submitting different programs grows its arena without bound. When
/// retained bytes cross SessionConfig::ArenaEvictBytes after a request,
/// the Session drops all id-keyed warm state and clears the arena in
/// place (or swaps in a fresh one if anything still holds a reference).
/// The next request on the session runs cold; correctness is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SERVER_SESSION_H
#define SEMINAL_SERVER_SESSION_H

#include "core/Seminal.h"
#include "obs/SlowTraceRing.h"
#include "support/Metrics.h"
#include "support/Stats.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace seminal {
namespace server {

/// Configuration shared by every session of one server.
struct SessionConfig {
  /// Oracle acceleration for the long-lived oracle. ParallelBatch stays
  /// off by default: server concurrency comes from sharding sessions
  /// across workers, and nested pools would oversubscribe.
  OracleAccelOptions Accel;

  /// Baseline run options; per-request limits override copies of this.
  SeminalOptions Base;

  /// Arena eviction watermark in retained bytes (see file comment).
  uint64_t ArenaEvictBytes = 64ull << 20;

  /// Tail-sampled slow-request tracing (DESIGN.md section 14): when
  /// TraceSlowMs is non-negative and SlowTraces is set, every check
  /// records a trace and requests slower than the threshold export it
  /// into the ring. Negative = tracing off (the default; checks run
  /// with a null sink exactly as before).
  double TraceSlowMs = -1.0;
  obs::SlowTraceRing *SlowTraces = nullptr;
};

/// Per-request options (zero/false = inherit the session default).
struct CheckOptions {
  size_t MaxSuggestions = 0;
  size_t MaxOracleCalls = 0;
  bool WantReport = false;
  /// Rendered request-id JSON text; names the slow-trace file.
  std::string RequestId;
};

/// Everything one check produced, pre-rendered so the response can be
/// written without keeping arena-referencing Suggestion objects alive.
struct CheckOutcome {
  std::string SyntaxError; ///< Nonempty = the source failed to parse.
  bool InputTypechecks = false;
  int FailingDecl = -1;
  bool BudgetExhausted = false;
  std::string Conventional; ///< Rendered baseline checker message.

  struct RenderedSuggestion {
    int Rank = 0;
    std::string Kind;
    std::string Layer;
    std::string Description;
    std::string Path;
    std::string Message; ///< renderSuggestion() output.
  };
  std::vector<RenderedSuggestion> Suggestions;

  uint64_t OracleCalls = 0;
  uint64_t InferenceRuns = 0;
  /// Per-request acceleration counters (includes the Session* warm-reuse
  /// fields that the protocol surfaces as "warm").
  AccelCounters Accel;
  double WallSeconds = 0.0;
  /// The request's cost ledger (DESIGN.md section 16). CpuNs is exact:
  /// the session runs confined to one shard worker, so a thread-CPU
  /// clock delta around the check is the request's CPU. The logical
  /// fields mirror Accel / OracleCalls by construction.
  RequestCost Cost;
  /// Compact RunReport JSON (empty unless CheckOptions::WantReport).
  std::string ReportJson;
  /// The arena watermark was crossed and the session went cold.
  bool Evicted = false;
  /// Retained arena bytes after this request (post-eviction).
  uint64_t ArenaBytes = 0;
  /// File the slow-trace ring captured for this request ("" = not slow
  /// or tracing disabled).
  std::string SlowTracePath;
};

class Session {
public:
  Session(std::string Name, const SessionConfig &Config);
  ~Session();

  const std::string &name() const { return Name; }

  /// Runs one request. Never throws; a syntax error is an outcome, not a
  /// failure, and leaves the warm state untouched.
  CheckOutcome check(const std::string &Source, const CheckOptions &Opts);

  /// Drops all warm state (retained checkpoints, verdict caches, memos,
  /// arena contents). The session identity and rollup counters survive.
  void reset();

  // Rollup (read by the server's stats method) -------------------------
  const AccelCounters &accumulated() const { return Accumulated; }
  /// Sum of every check's ledger (operator+= keeps arena levels latest).
  const RequestCost &accumulatedCost() const { return AccumulatedCost; }
  uint64_t requests() const { return Requests; }
  uint64_t checks() const { return Checks; }
  uint64_t evictions() const { return Evictions; }
  uint64_t totalOracleCalls() const { return TotalOracleCalls; }
  uint64_t totalInferenceRuns() const { return TotalInferenceRuns; }
  const Metrics &metrics() const { return SessionMetrics; }

private:
  /// (Re)creates the oracle, reusing the arena storage when this session
  /// holds the only reference and swapping in a fresh arena otherwise.
  void rebuildOracle();

  std::string Name;
  SessionConfig Config;
  std::unique_ptr<CheckpointedOracle> Oracle;
  /// Per-session metric sink (satellite scoping rule: metrics never
  /// bleed across sessions).
  Metrics SessionMetrics;

  AccelCounters Accumulated;
  RequestCost AccumulatedCost;
  uint64_t Requests = 0;
  uint64_t Checks = 0;
  uint64_t Evictions = 0;
  uint64_t TotalOracleCalls = 0;
  uint64_t TotalInferenceRuns = 0;
};

} // namespace server
} // namespace seminal

#endif // SEMINAL_SERVER_SESSION_H
