//===- MetricsHttp.cpp - Minimal HTTP listener for /metrics ----------------==//

#include "server/MetricsHttp.h"

#include "server/Server.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace seminal;
using namespace seminal::server;

MetricsHttpServer::MetricsHttpServer(ServerEngine &Engine, uint16_t Port)
    : Engine(Engine), RequestedPort(Port) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(std::string &Error) {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Operator port: local only.
  Addr.sin_port = htons(RequestedPort);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind 127.0.0.1:" + std::to_string(RequestedPort) + ": " +
            std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
      0)
    BoundPort = ntohs(Addr.sin_port);
  if (::listen(ListenFd, 16) < 0) {
    Error = "listen: " + std::string(std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true);
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (Acceptor.joinable())
    Acceptor.join();
  ListenFd = -1;
}

void MetricsHttpServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR && !Stopping.load())
        continue;
      return;
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    // Rendering a snapshot is milliseconds; scrapers poll in seconds.
    // Serving inline keeps the server to one thread and zero queues.
    serveConnection(Fd);
  }
}

namespace {

void sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return;
    Off += size_t(N);
  }
}

/// Value of \p Key in an (unescaped) "k=v&k2=v2" query string; "" when
/// absent. The operator endpoints only take small integers and enum
/// words, so percent-decoding is deliberately not implemented.
std::string queryParam(const std::string &Query, const std::string &Key) {
  size_t Pos = 0;
  while (Pos < Query.size()) {
    size_t End = Query.find('&', Pos);
    if (End == std::string::npos)
      End = Query.size();
    size_t Eq = Query.find('=', Pos);
    if (Eq != std::string::npos && Eq < End &&
        Query.compare(Pos, Eq - Pos, Key) == 0)
      return Query.substr(Eq + 1, End - Eq - 1);
    Pos = End + 1;
  }
  return "";
}

int64_t queryParamInt(const std::string &Query, const std::string &Key,
                      int64_t Default) {
  std::string V = queryParam(Query, Key);
  if (V.empty())
    return Default;
  errno = 0;
  char *End = nullptr;
  long long N = std::strtoll(V.c_str(), &End, 10);
  if (errno || End == V.c_str() || *End)
    return Default;
  return N;
}

std::string httpResponse(const char *Status, const char *ContentType,
                         const std::string &Body) {
  std::ostringstream OS;
  OS << "HTTP/1.0 " << Status << "\r\n"
     << "Content-Type: " << ContentType << "\r\n"
     << "Content-Length: " << Body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << Body;
  return OS.str();
}

} // namespace

void MetricsHttpServer::serveConnection(int Fd) {
  // Read until the end of the request head; we only need the first line.
  std::string Head;
  char Chunk[1024];
  while (Head.find("\r\n\r\n") == std::string::npos && Head.size() < 8192) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Head.append(Chunk, size_t(N));
  }
  size_t LineEnd = Head.find("\r\n");
  std::string RequestLine =
      LineEnd == std::string::npos ? Head : Head.substr(0, LineEnd);
  std::istringstream RL(RequestLine);
  std::string Method, Path;
  RL >> Method >> Path;
  // Split off the query string before routing (scrapers append cache
  // busters); /debug/profile reads its parameters from it.
  std::string QueryString;
  size_t Query = Path.find('?');
  if (Query != std::string::npos) {
    QueryString = Path.substr(Query + 1);
    Path.resize(Query);
  }

  std::string Response;
  if (Method != "GET") {
    Response = httpResponse("405 Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else if (Path == "/metrics") {
    Response = httpResponse("200 OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            Engine.metricsPrometheus());
  } else if (Path == "/metrics.json") {
    Response =
        httpResponse("200 OK", "application/json", Engine.metricsJson());
  } else if (Path == "/debug/profile") {
    // ?seconds=N (1-30, default 1) picks the window; &format=json swaps
    // the collapsed-stack text for the snapshot object. The capture
    // blocks this (single-threaded) listener for the window -- the
    // operator asked for it, and scrapers retry.
    unsigned Seconds =
        unsigned(std::min(std::max(queryParamInt(QueryString, "seconds", 1),
                                   int64_t(1)),
                          int64_t(30)));
    if (queryParam(QueryString, "format") == "json")
      Response = httpResponse("200 OK", "application/json",
                              Engine.profileJson(Seconds));
    else
      Response = httpResponse("200 OK", "text/plain; charset=utf-8",
                              Engine.profileCollapsed(Seconds));
  } else if (Path == "/healthz") {
    Response = httpResponse("200 OK", "application/json", "{\"ok\":true}\n");
  } else {
    Response = httpResponse(
        "404 Not Found", "text/plain",
        "routes: /metrics /metrics.json /debug/profile /healthz\n");
  }
  sendAll(Fd, Response);
  ::close(Fd);
}
