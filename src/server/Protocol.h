//===- Protocol.h - JSONL search-service protocol ---------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the search daemon (DESIGN.md section 13): one
/// JSON object per line in both directions, over stdin/stdout or a Unix
/// domain socket. Requests name a method and a session; responses echo
/// the request id and carry either a result or an error. A malformed
/// line yields an error *reply*, never a dropped connection -- editors
/// reconnect rarely and resubmit often, so the protocol treats every
/// line as independent and self-describing.
///
/// Methods:
///   check    {"method":"check","id":1,"session":"s","source":"...",
///             "max_suggestions":8,"max_oracle_calls":200000,
///             "report":true}
///   reset    drop a session's warm state (checkpoints, caches, arena)
///   stats    server-wide rollup (requests, sessions, warm-reuse totals,
///            per-shard breakdown)
///   metrics  live ops snapshot from the OpsRegistry; default JSON,
///            {"format":"prometheus"} returns the text exposition as an
///            "exposition" string member
///   profile  capture a sampling-profiler window: {"seconds":N} (1-30,
///            default 1) blocks the submitting connection for the
///            window and returns the delta; default format "collapsed"
///            (flamegraph.pl text in a "collapsed" member),
///            {"format":"json"} embeds the snapshot object instead
///   ping     liveness probe
///   shutdown ask the daemon to exit after draining in-flight requests
///
/// Responses always contain "id" (echoed; null when unparseable) and
/// "ok". Adding response fields is allowed without a version bump, like
/// RunReport's schema rule; consumers must ignore unknown members.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_SERVER_PROTOCOL_H
#define SEMINAL_SERVER_PROTOCOL_H

#include "support/Json.h"

#include <cstddef>
#include <string>

namespace seminal {
namespace server {

/// One parsed request line.
struct Request {
  enum class Method {
    Check,
    Reset,
    Stats,
    Metrics,
    Profile,
    Ping,
    Shutdown,
    Invalid
  };

  Method TheMethod = Method::Invalid;
  /// The request id re-rendered as JSON text ("1", "\"abc\"", "null"),
  /// echoed verbatim into the response so clients can correlate.
  std::string Id = "null";
  std::string Session = "default";
  std::string Source;
  /// 0 = use the server default.
  size_t MaxSuggestions = 0;
  size_t MaxOracleCalls = 0;
  /// Embed the full RunReport JSON in the check response.
  bool WantReport = false;
  /// "metrics": "" (JSON snapshot) or "prometheus".
  /// "profile": "" / "collapsed" (folded stacks) or "json".
  std::string Format;
  /// "profile" only: capture window, clamped to [1, 30] at parse time.
  unsigned ProfileSeconds = 1;
  /// Why the line failed to parse (set iff TheMethod == Invalid).
  std::string Error;
};

/// Parses one request line. Never throws; malformed input comes back as
/// Method::Invalid with Error set (and Id echoing whatever id could be
/// salvaged, so the client can still correlate the failure).
Request parseRequest(const std::string &Line);

/// Renders \p V back to compact JSON text (for echoing request ids).
std::string renderValue(const json::Value &V);

/// {"id":<id>,"ok":false,"error":<message>}
std::string errorResponse(const std::string &Id, const std::string &Message);

/// {"id":<id>,"ok":true} plus any extra members passed pre-rendered as
/// ',"k":v' text in \p ExtraMembers.
std::string okResponse(const std::string &Id,
                       const std::string &ExtraMembers = "");

} // namespace server
} // namespace seminal

#endif // SEMINAL_SERVER_PROTOCOL_H
