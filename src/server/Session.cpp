//===- Session.cpp - One client's warm search state --------------------------==//

#include "server/Session.h"

#include "core/CheckpointedOracle.h"
#include "core/Message.h"
#include "minicaml/Hash.h"
#include "minicaml/Parser.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <chrono>
#include <sstream>

using namespace seminal;
using namespace seminal::server;

Session::Session(std::string Name, const SessionConfig &Config)
    : Name(std::move(Name)), Config(Config) {
  // Session retention needs the arena-keyed caches; force the layers on
  // regardless of what the caller left in Accel so a session is never
  // silently cold. (Ablation experiments drive the oracle directly.)
  this->Config.Accel.Arena = true;
  this->Config.Accel.Checkpoint = true;
  this->Config.Accel.VerdictCache = true;
  rebuildOracle();
}

Session::~Session() = default;

void Session::rebuildOracle() {
  std::shared_ptr<caml::AstArena> Arena;
  if (Oracle) {
    Arena = Oracle->arena();
    Oracle.reset();
    // Reuse the node storage when nothing else holds an id into it;
    // otherwise start a fresh arena and let the old one die with its
    // last holder (ids must stay valid for whoever kept them).
    if (Arena && Arena.use_count() == 1)
      Arena->clear();
    else
      Arena = std::make_shared<caml::AstArena>();
  } else {
    Arena = std::make_shared<caml::AstArena>();
  }
  Oracle = std::make_unique<CheckpointedOracle>(Config.Accel, Arena);
  Oracle->setSessionRetention(true);
}

void Session::reset() {
  ++Requests;
  rebuildOracle();
}

CheckOutcome Session::check(const std::string &Source,
                            const CheckOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  // The ledger's CPU figure is a thread-CPU clock delta: the session is
  // pinned to one shard worker, so everything the check burns lands on
  // this thread and nothing else does (DESIGN.md section 16).
  uint64_t CpuStart = prof::threadCpuNs();
  CheckOutcome Out;
  ++Requests;
  ++Checks;

  caml::ParseResult PR = caml::parseProgram(Source);
  if (!PR.ok()) {
    // A syntax error is a normal outcome; warm state stays valid for the
    // next (hopefully parseable) resubmit.
    Out.SyntaxError = PR.Error->str();
    return Out;
  }

  SeminalOptions RunOpts = Config.Base;
  if (Opts.MaxSuggestions)
    RunOpts.MaxSuggestions = Opts.MaxSuggestions;
  if (Opts.MaxOracleCalls)
    RunOpts.Search.MaxOracleCalls = Opts.MaxOracleCalls;
  RunOpts.Search.Metric = &SessionMetrics;

  // Tail sampling: record every request when enabled, export only the
  // slow ones (the decision needs the wall time, which exists only
  // after the fact). Tracing is observational, so attaching the sink
  // cannot change the outcome.
  bool WantSlowTrace = Config.TraceSlowMs >= 0.0 && Config.SlowTraces;
  std::unique_ptr<TraceSink> Sink;
  if (WantSlowTrace) {
    Sink = std::make_unique<TraceSink>();
    RunOpts.Search.Trace = Sink.get();
  }

  // Announce the raw text so the oracle's cross-request conventional
  // memo can prove byte-prefix validity, then run against the warm
  // oracle. runSeminalWithOracle resets the call count and counters, so
  // everything the report carries is this request's.
  Oracle->primeConventional(Source);
  SeminalReport R = runSeminalWithOracle(*Oracle, *PR.Prog, RunOpts);

  Out.InputTypechecks = R.InputTypechecks;
  Out.FailingDecl = R.FailingDeclIndex ? int(*R.FailingDeclIndex) : -1;
  Out.BudgetExhausted = R.BudgetExhausted;
  if (!R.InputTypechecks)
    Out.Conventional = R.conventionalMessage();
  Out.Suggestions.reserve(R.Suggestions.size());
  for (size_t I = 0; I < R.Suggestions.size(); ++I) {
    const Suggestion &S = R.Suggestions[I];
    CheckOutcome::RenderedSuggestion RS;
    RS.Rank = int(I) + 1;
    RS.Kind = changeKindName(S.Kind);
    RS.Layer = suggestionLayer(S);
    RS.Description = S.Description;
    RS.Path = S.Path.str();
    RS.Message = renderSuggestion(S, RunOpts.Message);
    Out.Suggestions.push_back(std::move(RS));
  }
  Out.OracleCalls = R.OracleCalls;
  Out.InferenceRuns = R.InferenceRuns;
  Out.Accel = R.Accel;
  Out.WallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();

  // Ledger: measured here, where both clocks were stamped, so the
  // RunReport, the outcome (-> protocol response, engine rollups) and
  // the session total all carry the same numbers.
  Out.Cost.CpuNs = prof::threadCpuNs() - CpuStart;
  Out.Cost.WallNs = uint64_t(Out.WallSeconds * 1e9);
  Out.Cost.OracleCalls = R.OracleCalls;
  Out.Cost.InferenceRuns = R.InferenceRuns;
  Out.Cost.ArenaNodes = R.Accel.ArenaNodes;
  Out.Cost.ArenaBytes = R.Accel.ArenaBytes;
  Out.Cost.VerdictCacheHits = R.Accel.CacheHits;

  if (Opts.WantReport) {
    obs::RunReport Run;
    Run.ProgramId = Name + "#" + std::to_string(Checks);
    Run.SourceHash = caml::hashProgram(*PR.Prog);
    fillRunReport(Run, R, /*Telemetry=*/nullptr, Out.WallSeconds);
    Run.Cost = Out.Cost; // same ledger everywhere, by construction
    std::ostringstream OS;
    Run.writeJson(OS);
    Out.ReportJson = OS.str();
  }

  Accumulated += R.Accel;
  AccumulatedCost += Out.Cost;
  TotalOracleCalls += R.OracleCalls;
  TotalInferenceRuns += R.InferenceRuns;

  // Eviction check. Suggestions hold lazily-materialized programs that
  // reference the arena; drop the report (everything the response needs
  // is already rendered into Out) before deciding, so an in-place clear
  // is possible.
  R = SeminalReport();
  if (Oracle->arena() &&
      Oracle->arena()->stats().Bytes > Config.ArenaEvictBytes) {
    rebuildOracle();
    ++Evictions;
    Out.Evicted = true;
  }
  if (Oracle->arena())
    Out.ArenaBytes = Oracle->arena()->stats().Bytes;

  if (WantSlowTrace && Out.WallSeconds * 1000.0 >= Config.TraceSlowMs)
    Out.SlowTracePath = Config.SlowTraces->capture(Opts.RequestId, *Sink);
  return Out;
}
