//===- Protocol.cpp - JSONL search-service protocol -------------------------==//

#include "server/Protocol.h"

#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace seminal;
using namespace seminal::server;

std::string server::renderValue(const json::Value &V) {
  switch (V.kind()) {
  case json::Value::Kind::Null:
    return "null";
  case json::Value::Kind::Bool:
    return V.boolValue() ? "true" : "false";
  case json::Value::Kind::Number: {
    double N = V.numberValue();
    // Ids are almost always small integers; render them without a
    // decimal point so the echo matches what the client sent.
    if (std::floor(N) == N && std::abs(N) < 1e15) {
      std::ostringstream OS;
      OS << static_cast<long long>(N);
      return OS.str();
    }
    std::ostringstream OS;
    OS << N;
    return OS.str();
  }
  case json::Value::Kind::String: {
    std::string Out = "\"";
    Out += jsonEscape(V.stringValue());
    Out += "\"";
    return Out;
  }
  case json::Value::Kind::Array: {
    std::string Out = "[";
    bool First = true;
    for (const json::Value &E : V.arrayValue()) {
      if (!First)
        Out += ",";
      First = false;
      Out += renderValue(E);
    }
    return Out + "]";
  }
  case json::Value::Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &KV : V.objectValue()) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"";
      Out += jsonEscape(KV.first);
      Out += "\":";
      Out += renderValue(KV.second);
    }
    return Out + "}";
  }
  }
  return "null";
}

Request server::parseRequest(const std::string &Line) {
  Request R;
  json::ParseResult P = json::parse(Line);
  if (!P.ok()) {
    std::ostringstream OS;
    OS << "malformed request: " << P.Error << " (byte " << P.ErrorOffset
       << ")";
    R.Error = OS.str();
    return R;
  }
  const json::Value &Doc = *P.Doc;
  if (!Doc.isObject()) {
    R.Error = "malformed request: expected a JSON object";
    return R;
  }
  if (const json::Value *Id = Doc.member("id"))
    R.Id = renderValue(*Id);

  std::string Method = Doc.getString("method");
  if (Method.empty()) {
    R.Error = "malformed request: missing \"method\"";
    return R;
  }

  R.Session = Doc.getString("session", "default");
  if (Method == "check") {
    const json::Value *Source = Doc.member("source");
    if (!Source || !Source->isString()) {
      R.Error = "malformed request: \"check\" needs a string \"source\"";
      return R;
    }
    R.TheMethod = Request::Method::Check;
    R.Source = Source->stringValue();
    int64_t MaxSuggestions = Doc.getInt("max_suggestions", 0);
    int64_t MaxCalls = Doc.getInt("max_oracle_calls", 0);
    R.MaxSuggestions = MaxSuggestions > 0 ? size_t(MaxSuggestions) : 0;
    R.MaxOracleCalls = MaxCalls > 0 ? size_t(MaxCalls) : 0;
    R.WantReport = Doc.getBool("report", false);
  } else if (Method == "reset") {
    R.TheMethod = Request::Method::Reset;
  } else if (Method == "stats") {
    R.TheMethod = Request::Method::Stats;
  } else if (Method == "metrics") {
    R.TheMethod = Request::Method::Metrics;
    R.Format = Doc.getString("format");
    if (!R.Format.empty() && R.Format != "json" && R.Format != "prometheus") {
      R.TheMethod = Request::Method::Invalid;
      R.Error = "malformed request: unknown metrics format \"" + R.Format +
                "\" (expected \"json\" or \"prometheus\")";
    }
  } else if (Method == "profile") {
    R.TheMethod = Request::Method::Profile;
    R.Format = Doc.getString("format");
    if (!R.Format.empty() && R.Format != "collapsed" && R.Format != "json") {
      R.TheMethod = Request::Method::Invalid;
      R.Error = "malformed request: unknown profile format \"" + R.Format +
                "\" (expected \"collapsed\" or \"json\")";
      return R;
    }
    // Clamp rather than reject: the window blocks one connection reader,
    // so an over-eager client gets a bounded capture, not an error loop.
    int64_t Seconds = Doc.getInt("seconds", 1);
    R.ProfileSeconds = unsigned(std::min<int64_t>(std::max<int64_t>(Seconds, 1), 30));
  } else if (Method == "ping") {
    R.TheMethod = Request::Method::Ping;
  } else if (Method == "shutdown") {
    R.TheMethod = Request::Method::Shutdown;
  } else {
    R.Error = "malformed request: unknown method \"" + Method + "\"";
  }
  return R;
}

std::string server::errorResponse(const std::string &Id,
                                  const std::string &Message) {
  return "{\"id\":" + Id + ",\"ok\":false,\"error\":\"" +
         jsonEscape(Message) + "\"}";
}

std::string server::okResponse(const std::string &Id,
                               const std::string &ExtraMembers) {
  return "{\"id\":" + Id + ",\"ok\":true" + ExtraMembers + "}";
}
