//===- Oracle.cpp - Type-check oracle implementations ----------------------==//

#include "core/Oracle.h"

#include <chrono>

using namespace seminal;
using namespace seminal::caml;

Oracle::~Oracle() = default;

//===----------------------------------------------------------------------===//
// Traced wrappers
//===----------------------------------------------------------------------===//
//
// Only reached when a trace sink or metrics collector is attached; the
// inline fast paths in Oracle.h bypass all of this with one branch.
// Each logical call gets exactly one OracleCall span carrying the search
// layer that issued it (TraceLayerScope), the verdict, the cache-hit
// flag, and which acceleration layer served it.

bool Oracle::typecheckOneTraced(const Program &Prog, uint64_t ParentSpan) {
  TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.typecheck");
  if (ParentSpan)
    Span.setParent(ParentSpan);
  LastServedBy = "full-inference";
  LastCacheHit = false;
  auto Start = std::chrono::steady_clock::now();
  bool Verdict = typecheckImpl(Prog);
  double Us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  if (Span.enabled()) {
    Span.attr("layer", traceCurrentLayer());
    Span.attr("verdict", Verdict);
    Span.attr("cache_hit", LastCacheHit);
    Span.attr("served_by", LastServedBy);
    Span.attr("decls", int64_t(Prog.Decls.size()));
  }
  if (MetricsOut)
    MetricsOut->observe(metric::OracleLatencyUs, Us);
  return Verdict;
}

bool Oracle::typechecksTraced(const Program &Prog) {
  return typecheckOneTraced(Prog, /*ParentSpan=*/0);
}

std::optional<std::string> Oracle::typeOfNodeTraced(const Program &Prog,
                                                    const Expr *Node) {
  TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.type_of_node");
  LastServedBy = "full-inference";
  LastCacheHit = false;
  auto Start = std::chrono::steady_clock::now();
  std::optional<std::string> Result = typeOfNodeImpl(Prog, Node);
  double Us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  if (Span.enabled()) {
    Span.attr("layer", traceCurrentLayer());
    Span.attr("verdict", Result.has_value());
    Span.attr("cache_hit", LastCacheHit);
    Span.attr("served_by", LastServedBy);
    if (Result)
      Span.attr("type", *Result);
  }
  if (MetricsOut)
    MetricsOut->observe(metric::OracleLatencyUs, Us);
  return Result;
}

std::vector<bool>
Oracle::typecheckBatchTraced(const Program &Base, const NodePath &Path,
                             const std::vector<const Expr *> &Replacements) {
  TraceSpan Span(TraceOut, SpanKind::OracleBatch, "oracle.batch");
  if (Span.enabled()) {
    Span.attr("layer", traceCurrentLayer());
    Span.attr("items", int64_t(Replacements.size()));
    Span.attr("path", Path.str());
  }
  if (MetricsOut)
    MetricsOut->observe(metric::BatchItems, double(Replacements.size()));
  BatchSpanId = Span.id();
  LastWaveCollapsed = 0;
  std::vector<bool> Verdicts = typecheckBatchImpl(Base, Path, Replacements);
  BatchSpanId = 0;
  if (Span.enabled() && LastArenaNodes) {
    Span.attr("dedup.wave_collapsed", int64_t(LastWaveCollapsed));
    Span.attr("arena.nodes", int64_t(LastArenaNodes));
    Span.attr("arena.hits", int64_t(LastArenaHits));
    Span.attr("arena.bytes", int64_t(LastArenaBytes));
  }
  if (MetricsOut && LastArenaNodes) {
    MetricsOut->observe(metric::WaveCollapsed, double(LastWaveCollapsed));
    MetricsOut->observe(metric::ArenaNodes, double(LastArenaNodes));
    MetricsOut->observe(metric::ArenaHits, double(LastArenaHits));
    MetricsOut->observe(metric::ArenaBytes, double(LastArenaBytes));
  }
  return Verdicts;
}

std::vector<bool>
Oracle::typecheckBatchImpl(const Program &Base, const NodePath &Path,
                           const std::vector<const Expr *> &Replacements) {
  bool Traced = TraceOut || MetricsOut;
  std::vector<bool> Verdicts;
  Verdicts.reserve(Replacements.size());
  for (const Expr *Replacement : Replacements) {
    Program Variant = Base.clone();
    replaceAtPath(Variant, Path, Replacement->clone());
    Verdicts.push_back(Traced ? typecheckOneTraced(Variant, BatchSpanId)
                              : typecheckImpl(Variant));
  }
  return Verdicts;
}

bool CamlOracle::typecheckImpl(const Program &Prog) {
  return typecheckProgram(Prog).ok();
}

std::optional<std::string> CamlOracle::typeOfNodeImpl(const Program &Prog,
                                                      const Expr *Node) {
  TypecheckOptions Opts;
  Opts.QueryNode = Node;
  TypecheckResult R = typecheckProgram(Prog, Opts);
  if (!R.ok())
    return std::nullopt;
  return R.QueriedType;
}

std::optional<TypeError> CamlOracle::conventionalError(const Program &Prog) {
  return typecheckProgram(Prog).Error;
}
