//===- Oracle.cpp - Type-check oracle implementations ----------------------==//

#include "core/Oracle.h"

using namespace seminal;
using namespace seminal::caml;

Oracle::~Oracle() = default;

std::vector<bool>
Oracle::typecheckBatchImpl(const Program &Base, const NodePath &Path,
                           const std::vector<const Expr *> &Replacements) {
  std::vector<bool> Verdicts;
  Verdicts.reserve(Replacements.size());
  for (const Expr *Replacement : Replacements) {
    Program Variant = Base.clone();
    replaceAtPath(Variant, Path, Replacement->clone());
    Verdicts.push_back(typecheckImpl(Variant));
  }
  return Verdicts;
}

bool CamlOracle::typecheckImpl(const Program &Prog) {
  return typecheckProgram(Prog).ok();
}

std::optional<std::string> CamlOracle::typeOfNodeImpl(const Program &Prog,
                                                      const Expr *Node) {
  TypecheckOptions Opts;
  Opts.QueryNode = Node;
  TypecheckResult R = typecheckProgram(Prog, Opts);
  if (!R.ok())
    return std::nullopt;
  return R.QueriedType;
}

std::optional<TypeError> CamlOracle::conventionalError(const Program &Prog) {
  return typecheckProgram(Prog).Error;
}
