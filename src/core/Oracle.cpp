//===- Oracle.cpp - Type-check oracle implementations ----------------------==//

#include "core/Oracle.h"

using namespace seminal;
using namespace seminal::caml;

Oracle::~Oracle() = default;

bool CamlOracle::typecheckImpl(const Program &Prog) {
  return typecheckProgram(Prog).ok();
}

std::optional<std::string> CamlOracle::typeOfNodeImpl(const Program &Prog,
                                                      const Expr *Node) {
  TypecheckOptions Opts;
  Opts.QueryNode = Node;
  TypecheckResult R = typecheckProgram(Prog, Opts);
  if (!R.ok())
    return std::nullopt;
  return R.QueriedType;
}

std::optional<TypeError> CamlOracle::conventionalError(const Program &Prog) {
  return typecheckProgram(Prog).Error;
}
