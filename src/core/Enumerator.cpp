//===- Enumerator.cpp - Constructive-change catalog implementation --------==//

#include "core/Enumerator.h"

#include "analysis/SliceGuide.h"
#include "minicaml/Printer.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// Clones the argument vector of an application node (children 1..n).
std::vector<ExprPtr> cloneArgs(const Expr &App) {
  std::vector<ExprPtr> Args;
  for (unsigned I = 1; I < App.numChildren(); ++I)
    Args.push_back(App.child(I)->clone());
  return Args;
}

CandidateChange change(ExprPtr Replacement, std::string Description) {
  CandidateChange C;
  C.Replacement = std::move(Replacement);
  C.Description = std::move(Description);
  return C;
}

/// Generates every permutation of [0, N) except the identity.
std::vector<std::vector<unsigned>> nonIdentityPermutations(unsigned N) {
  std::vector<unsigned> Perm(N);
  for (unsigned I = 0; I < N; ++I)
    Perm[I] = I;
  std::vector<std::vector<unsigned>> Result;
  while (std::next_permutation(Perm.begin(), Perm.end()))
    Result.push_back(Perm);
  return Result;
}

/// The argument-permutation family for application \p Node (arity
/// \p NumArgs), minus the permutations cheaper passes already tried.
std::vector<CandidateChange> emitArgPermutations(const Expr &Node,
                                                 unsigned NumArgs) {
  std::vector<CandidateChange> Perms;
  for (const auto &Perm : nonIdentityPermutations(NumArgs)) {
    // Skip adjacent swaps and the full reversal: already tried.
    bool IsAdjacentSwap = false;
    unsigned Diffs = 0;
    for (unsigned I = 0; I < NumArgs; ++I)
      if (Perm[I] != I)
        ++Diffs;
    if (Diffs == 2)
      IsAdjacentSwap = true; // any transposition of two positions
    bool IsReversal = true;
    for (unsigned I = 0; I < NumArgs; ++I)
      if (Perm[I] != NumArgs - 1 - I)
        IsReversal = false;
    if (IsAdjacentSwap || IsReversal)
      continue;
    std::vector<ExprPtr> Args;
    for (unsigned I = 0; I < NumArgs; ++I)
      Args.push_back(Node.child(Perm[I] + 1)->clone());
    Perms.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                           "permute the call's arguments"));
  }
  return Perms;
}

/// The component-permutation family for tuple \p Node (arity \p N).
std::vector<CandidateChange> emitTuplePermutations(const Expr &Node,
                                                   unsigned N) {
  std::vector<CandidateChange> Perms;
  for (const auto &Perm : nonIdentityPermutations(N)) {
    std::vector<ExprPtr> Elems;
    for (unsigned I = 0; I < N; ++I)
      Elems.push_back(Node.child(Perm[I])->clone());
    Perms.push_back(change(makeTuple(std::move(Elems)),
                           "permute the tuple's components"));
  }
  return Perms;
}

/// A thunk that rebuilds \p Node on demand for a deferred follow-up
/// family. With an arena the closure captures the overlay spine (shared
/// arena + interned id) and materializes only if the family actually
/// fires; without one it falls back to owning a clone for its lifetime.
std::function<std::vector<CandidateChange>()>
deferredFamily(const Expr &Node, const EnumeratorOptions &Opts,
               std::vector<CandidateChange> (*Emit)(const Expr &, unsigned),
               unsigned Arity) {
  if (Opts.Arena) {
    std::shared_ptr<AstArena> A = Opts.Arena;
    AstArena::ExprId Id = A->internExpr(Node);
    return [A, Id, Emit, Arity]() { return Emit(*A->materializeExpr(Id), Arity); };
  }
  auto NodeCopy = std::shared_ptr<Expr>(Node.clone().release());
  return [NodeCopy, Emit, Arity]() { return Emit(*NodeCopy, Arity); };
}

//===----------------------------------------------------------------------===//
// Function applications (most of Figure 3)
//===----------------------------------------------------------------------===//

void appChanges(const Expr &Node, const EnumeratorOptions &Opts,
                std::vector<CandidateChange> &Out) {
  unsigned NumArgs = Node.numChildren() - 1;

  // Remove an argument from a function call.
  for (unsigned I = 0; I < NumArgs; ++I) {
    if (NumArgs == 1) {
      Out.push_back(change(Node.child(0)->clone(),
                           "remove the argument of the call"));
      continue;
    }
    std::vector<ExprPtr> Args;
    for (unsigned J = 0; J < NumArgs; ++J)
      if (J != I)
        Args.push_back(Node.child(J + 1)->clone());
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                         "remove argument " + std::to_string(I + 1) +
                             " of the call"));
  }

  // Add an argument to a function call (each insertion point).
  for (unsigned P = 0; P <= NumArgs; ++P) {
    std::vector<ExprPtr> Args;
    for (unsigned J = 0; J < NumArgs; ++J) {
      if (J == P)
        Args.push_back(makeWildcard());
      Args.push_back(Node.child(J + 1)->clone());
    }
    if (P == NumArgs)
      Args.push_back(makeWildcard());
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                         "add an argument to the call at position " +
                             std::to_string(P + 1)));
  }

  // Swap adjacent arguments (cheap; always tried).
  for (unsigned I = 0; I + 1 < NumArgs; ++I) {
    std::vector<ExprPtr> Args = cloneArgs(Node);
    std::swap(Args[I], Args[I + 1]);
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                         "swap arguments " + std::to_string(I + 1) + " and " +
                             std::to_string(I + 2)));
  }

  // Reverse all arguments (Figure 3's "reorder"; distinct from a swap
  // only at arity >= 3).
  if (NumArgs >= 3) {
    std::vector<ExprPtr> Args = cloneArgs(Node);
    std::reverse(Args.begin(), Args.end());
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                         "reverse the call's arguments"));
  }

  // Full permutations, gated behind an all-wildcards probe: if
  // `f [[...]] ... [[...]]` fails, no permutation can succeed.
  if (NumArgs >= 3 && NumArgs <= Opts.MaxPermutationArity) {
    auto EmitPerms = deferredFamily(Node, Opts, emitArgPermutations, NumArgs);

    if (Opts.GateExpensiveChanges) {
      // Slice feasibility pre-probe: when the guide proves no argument
      // subtree touches the error's influence set, the all-wildcard probe
      // is guaranteed to fail, so the probe (and the family it gates)
      // can be skipped without an oracle call. A failing probe emits
      // nothing either, so the candidate stream is unchanged.
      if (Opts.Guide && Opts.Guide->argumentsDoomed(Node)) {
        ++Opts.Guide->PrunedPermutationProbes;
      } else {
        CandidateChange Probe;
        std::vector<ExprPtr> Holes;
        for (unsigned I = 0; I < NumArgs; ++I)
          Holes.push_back(makeWildcard());
        Probe.Replacement = makeApp(Node.child(0)->clone(), std::move(Holes));
        Probe.Description = "probe: any arguments at all?";
        Probe.IsProbe = true;
        Probe.FollowUps = [EmitPerms](bool Succeeded) {
          return Succeeded ? EmitPerms() : std::vector<CandidateChange>();
        };
        Out.push_back(std::move(Probe));
      }
    } else {
      for (auto &Perm : EmitPerms())
        Out.push_back(std::move(Perm));
    }
  }

  // Put call-arguments in a tuple: f a1 a2 a3 -> f (a1, a2, a3).
  if (NumArgs >= 2) {
    std::vector<ExprPtr> Elems = cloneArgs(Node);
    std::vector<ExprPtr> One;
    One.push_back(makeTuple(std::move(Elems)));
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(One)),
                         "pass the arguments as one tuple"));
  }

  // Curry arguments instead of tupling: f (a1, a2, a3) -> f a1 a2 a3.
  if (NumArgs == 1 && Node.child(1)->kind() == Expr::Kind::Tuple) {
    const Expr &Tup = *Node.child(1);
    std::vector<ExprPtr> Args;
    for (unsigned I = 0; I < Tup.numChildren(); ++I)
      Args.push_back(Tup.child(I)->clone());
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(Args)),
                         "pass the tuple's components as curried arguments"));
  }

  // Reassociate to make a nested call: f a1 a2 a3 -> f (a1 a2 a3).
  if (NumArgs >= 2) {
    std::vector<ExprPtr> Args = cloneArgs(Node);
    ExprPtr Head = std::move(Args.front());
    Args.erase(Args.begin());
    std::vector<ExprPtr> One;
    One.push_back(makeApp(std::move(Head), std::move(Args)));
    Out.push_back(change(makeApp(Node.child(0)->clone(), std::move(One)),
                         "reassociate the arguments into a nested call"));
  }
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

void funChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  const std::vector<PatternPtr> &Params = Node.Params;

  // Curry a tupled parameter: fun (x, y) -> e  =>  fun x y -> e.
  if (Params.size() == 1 && Params[0]->kind() == Pattern::Kind::Tuple) {
    std::vector<PatternPtr> Curried;
    for (const auto &Elem : Params[0]->Elems)
      Curried.push_back(Elem->clone());
    Out.push_back(change(makeFun(std::move(Curried), Node.child(0)->clone()),
                         "take curried arguments instead of a tuple"));
  }

  // Tuple the curried parameters: fun x y -> e  =>  fun (x, y) -> e.
  if (Params.size() >= 2) {
    std::vector<PatternPtr> Elems;
    for (const auto &Param : Params)
      Elems.push_back(Param->clone());
    std::vector<PatternPtr> One;
    One.push_back(makeTuplePattern(std::move(Elems)));
    Out.push_back(change(makeFun(std::move(One), Node.child(0)->clone()),
                         "take one tuple instead of curried arguments"));
  }

  // Add a parameter (leading and trailing wildcard).
  {
    std::vector<PatternPtr> WithTrailing;
    for (const auto &Param : Params)
      WithTrailing.push_back(Param->clone());
    WithTrailing.push_back(makeWildPattern());
    Out.push_back(change(
        makeFun(std::move(WithTrailing), Node.child(0)->clone()),
        "add a trailing parameter"));

    std::vector<PatternPtr> WithLeading;
    WithLeading.push_back(makeWildPattern());
    for (const auto &Param : Params)
      WithLeading.push_back(Param->clone());
    Out.push_back(change(
        makeFun(std::move(WithLeading), Node.child(0)->clone()),
        "add a leading parameter"));
  }

  // Remove a parameter (arity >= 2 keeps the node a function).
  if (Params.size() >= 2) {
    for (size_t I = 0; I < Params.size(); ++I) {
      std::vector<PatternPtr> Fewer;
      for (size_t J = 0; J < Params.size(); ++J)
        if (J != I)
          Fewer.push_back(Params[J]->clone());
      Out.push_back(change(makeFun(std::move(Fewer), Node.child(0)->clone()),
                           "remove parameter " + std::to_string(I + 1)));
    }
  }
}

//===----------------------------------------------------------------------===//
// let-in
//===----------------------------------------------------------------------===//

void letChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  // Toggle rec: let f x = ... -> let rec f x = ... (and back).
  {
    ExprPtr Toggled = Node.clone();
    Toggled->IsRec = !Node.IsRec;
    Out.push_back(change(std::move(Toggled),
                         Node.IsRec ? "remove 'rec' from the binding"
                                    : "make the binding recursive"));
  }

  // Curry/tuple the declared parameters, mirroring funChanges.
  if (Node.Params.size() == 1 &&
      Node.Params[0]->kind() == Pattern::Kind::Tuple) {
    ExprPtr Curried = Node.clone();
    std::vector<PatternPtr> Params;
    for (const auto &Elem : Node.Params[0]->Elems)
      Params.push_back(Elem->clone());
    Curried->Params = std::move(Params);
    Out.push_back(change(std::move(Curried),
                         "take curried arguments instead of a tuple"));
  }
  if (Node.Params.size() >= 2) {
    ExprPtr Tupled = Node.clone();
    std::vector<PatternPtr> Elems;
    for (const auto &Param : Node.Params)
      Elems.push_back(Param->clone());
    std::vector<PatternPtr> One;
    One.push_back(makeTuplePattern(std::move(Elems)));
    Tupled->Params = std::move(One);
    Out.push_back(change(std::move(Tupled),
                         "take one tuple instead of curried arguments"));
  }
}

//===----------------------------------------------------------------------===//
// Lists, tuples, cons
//===----------------------------------------------------------------------===//

void listChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  // [(e1, e2, e3)] -> [e1; e2; e3]: the comma-vs-semicolon pitfall.
  if (Node.numChildren() == 1 &&
      Node.child(0)->kind() == Expr::Kind::Tuple) {
    const Expr &Tup = *Node.child(0);
    std::vector<ExprPtr> Elems;
    for (unsigned I = 0; I < Tup.numChildren(); ++I)
      Elems.push_back(Tup.child(I)->clone());
    Out.push_back(change(makeList(std::move(Elems)),
                         "make an n-element list, not a 1-element list "
                         "of an n-tuple"));
  }
  // [e1; e2; e3] -> [(e1, e2, e3)]: the reverse confusion.
  if (Node.numChildren() >= 2) {
    std::vector<ExprPtr> Elems;
    for (unsigned I = 0; I < Node.numChildren(); ++I)
      Elems.push_back(Node.child(I)->clone());
    std::vector<ExprPtr> One;
    One.push_back(makeTuple(std::move(Elems)));
    Out.push_back(change(makeList(std::move(One)),
                         "make a 1-element list of a tuple"));
  }
}

void tupleChanges(const Expr &Node, const EnumeratorOptions &Opts,
                  std::vector<CandidateChange> &Out) {
  unsigned N = Node.numChildren();

  // Drop a component (arity >= 3 keeps it a tuple).
  if (N >= 3) {
    for (unsigned I = 0; I < N; ++I) {
      std::vector<ExprPtr> Elems;
      for (unsigned J = 0; J < N; ++J)
        if (J != I)
          Elems.push_back(Node.child(J)->clone());
      Out.push_back(change(makeTuple(std::move(Elems)),
                           "drop tuple component " + std::to_string(I + 1)));
    }
  }

  // Permute components, gated behind the paper's example probe:
  // (e1, e2, e3) -> ([[...]], [[...]], [[...]]).
  if (N >= 2 && N <= Opts.MaxPermutationArity) {
    auto EmitPerms = deferredFamily(Node, Opts, emitTuplePermutations, N);
    if (Opts.GateExpensiveChanges) {
      CandidateChange Probe;
      std::vector<ExprPtr> Holes;
      for (unsigned I = 0; I < N; ++I)
        Holes.push_back(makeWildcard());
      Probe.Replacement = makeTuple(std::move(Holes));
      Probe.Description = "probe: any tuple of this arity?";
      Probe.IsProbe = true;
      Probe.FollowUps = [EmitPerms](bool Succeeded) {
        return Succeeded ? EmitPerms() : std::vector<CandidateChange>();
      };
      Out.push_back(std::move(Probe));
    } else {
      for (auto &Perm : EmitPerms())
        Out.push_back(std::move(Perm));
    }
  }
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

void binOpChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  const std::string &Op = Node.Name;
  auto Lhs = [&] { return Node.child(0)->clone(); };
  auto Rhs = [&] { return Node.child(1)->clone(); };

  if (Op == "+")
    Out.push_back(change(makeBinOp("^", Lhs(), Rhs()),
                         "use string concatenation (^) instead of +"));
  if (Op == "^")
    Out.push_back(change(makeBinOp("+", Lhs(), Rhs()),
                         "use integer addition (+) instead of ^"));
  if (Op == "=")
    Out.push_back(change(makeBinOp(":=", Lhs(), Rhs()),
                         "use assignment (:=) instead of comparison (=)"));
  if (Op == ":=") {
    // e1.fld := e2  ->  e1.fld <- e2 (reference- vs field-update); tried
    // before the comparison rewrite because a mutable field nearly always
    // means an update was intended.
    if (Node.child(0)->kind() == Expr::Kind::Field) {
      const Expr &FieldExpr = *Node.child(0);
      CandidateChange FieldUpdate =
          change(makeSetField(FieldExpr.child(0)->clone(), FieldExpr.Name,
                              Rhs()),
                 "replace reference-update with field-update");
      FieldUpdate.Priority = -1;
      Out.push_back(std::move(FieldUpdate));
    }
    Out.push_back(change(makeBinOp("=", Lhs(), Rhs()),
                         "use comparison (=) instead of assignment (:=)"));
    // x := e  ->  x := !e (forgot to dereference the source).
    Out.push_back(change(
        makeBinOp(":=", Lhs(), makeUnaryOp("!", Rhs())),
        "dereference the assigned value"));
  }
  if (Op == "@")
    Out.push_back(change(makeCons(Lhs(), Rhs()),
                         "use cons (::) instead of append (@)"));
  // Arithmetic over forgotten dereferences: r + 1 -> !r + 1.
  if (Op == "+" || Op == "-" || Op == "*" || Op == "/" || Op == "=" ||
      Op == "<" || Op == ">") {
    if (Node.child(0)->kind() == Expr::Kind::Var)
      Out.push_back(change(makeBinOp(Op, makeUnaryOp("!", Lhs()), Rhs()),
                           "dereference the left operand"));
    if (Node.child(1)->kind() == Expr::Kind::Var)
      Out.push_back(change(makeBinOp(Op, Lhs(), makeUnaryOp("!", Rhs())),
                           "dereference the right operand"));
  }
}

void consChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  // e1 :: e2 -> e1 @ e2 (consing a list onto a list of the same type).
  Out.push_back(change(
      makeBinOp("@", Node.child(0)->clone(), Node.child(1)->clone()),
      "use append (@) instead of cons (::)"));
  // e1 :: e2 -> e1 :: [e2] (the tail was an element, not a list).
  {
    std::vector<ExprPtr> One;
    One.push_back(Node.child(1)->clone());
    Out.push_back(change(
        makeCons(Node.child(0)->clone(), makeList(std::move(One))),
        "wrap the tail in a list"));
  }
}

//===----------------------------------------------------------------------===//
// Conditionals, constructors, match
//===----------------------------------------------------------------------===//

void ifChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  if (Node.numChildren() == 2) {
    // if c then e  ->  if c then e else [[...]]: lifts the unit constraint.
    Out.push_back(change(makeIf(Node.child(0)->clone(),
                                Node.child(1)->clone(), makeWildcard()),
                         "add an else branch"));
  }
}

void constrChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  if (Node.Children.empty()) {
    // C -> C [[...]]: the constructor wanted an argument.
    Out.push_back(change(makeConstr(Node.Name, makeWildcard()),
                         "apply the constructor to an argument"));
    return;
  }
  const Expr &Arg = *Node.child(0);
  // C e -> C: the constructor is nullary.
  Out.push_back(change(makeConstr(Node.Name, nullptr),
                       "drop the constructor's argument"));
  if (Arg.kind() == Expr::Kind::Tuple) {
    // C (a, b, c) -> C (a, b): arity confusion inside the payload.
    for (unsigned I = 0; I < Arg.numChildren() && Arg.numChildren() > 2;
         ++I) {
      std::vector<ExprPtr> Elems;
      for (unsigned J = 0; J < Arg.numChildren(); ++J)
        if (J != I)
          Elems.push_back(Arg.child(J)->clone());
      Out.push_back(change(
          makeConstr(Node.Name, makeTuple(std::move(Elems))),
          "drop payload component " + std::to_string(I + 1)));
    }
  } else {
    // C e -> C (e, [[...]]): the payload wanted more components.
    std::vector<ExprPtr> Elems;
    Elems.push_back(Arg.clone());
    Elems.push_back(makeWildcard());
    Out.push_back(change(makeConstr(Node.Name, makeTuple(std::move(Elems))),
                         "add a payload component"));
  }
}

void setFieldChanges(const Expr &Node, std::vector<CandidateChange> &Out) {
  // e.f <- v  ->  e.f := v (the field holds a ref).
  Out.push_back(change(
      makeBinOp(":=",
                makeFieldAccess(Node.child(0)->clone(), Node.Name),
                Node.child(1)->clone()),
      "replace field-update with reference-update"));
}

/// Reparenthesizing nested matches: when an arm's body is itself a match,
/// the inner match may have swallowed the outer match's remaining arms
/// (the parser binds trailing arms to the innermost match). For every
/// split point, move the inner match's trailing arms back out. This is
/// deliberately the catalog's most expensive family -- the paper reports
/// it as the single performance bug dominating slow runs (Section 3.2) --
/// and EnumeratorOptions::EnableMatchReparen turns it off to reproduce
/// Figure 7's middle curve.
void matchReparenChanges(const Expr &Node,
                         std::vector<CandidateChange> &Out) {
  unsigned NumArms = Node.numChildren() - 1;
  for (unsigned ArmIdx = 0; ArmIdx < NumArms; ++ArmIdx) {
    const Expr *Body = Node.child(ArmIdx + 1);
    if (Body->kind() != Expr::Kind::Match)
      continue;
    unsigned InnerArms = Body->numChildren() - 1;
    // Move the trailing K arms of the inner match to the outer one.
    for (unsigned K = 1; K < InnerArms; ++K) {
      std::vector<MatchArm> NewInner;
      for (unsigned I = 0; I < InnerArms - K; ++I)
        NewInner.push_back(MatchArm{Body->ArmPats[I]->clone(),
                                    Body->child(I + 1)->clone()});
      std::vector<MatchArm> Outer;
      for (unsigned I = 0; I < NumArms; ++I) {
        if (I == ArmIdx) {
          Outer.push_back(MatchArm{
              Node.ArmPats[I]->clone(),
              makeMatch(Body->child(0)->clone(), std::move(NewInner))});
          // The displaced arms follow the splice point.
          for (unsigned J = InnerArms - K; J < InnerArms; ++J)
            Outer.push_back(MatchArm{Body->ArmPats[J]->clone(),
                                     Body->child(J + 1)->clone()});
          continue;
        }
        Outer.push_back(
            MatchArm{Node.ArmPats[I]->clone(), Node.child(I + 1)->clone()});
      }
      Out.push_back(change(
          makeMatch(Node.child(0)->clone(), std::move(Outer)),
          "reparenthesize the nested match (move " + std::to_string(K) +
              " arm(s) to the outer match)"));
    }
    // The reverse direction: the outer match's trailing arms may belong
    // to the inner one. Together with the splits above this is what
    // makes the family quadratic in the number of arms -- faithfully
    // reproducing the "single performance bug in a single constructive
    // change" of Section 3.2.
    for (unsigned K = 1; ArmIdx + K < NumArms; ++K) {
      std::vector<MatchArm> NewInner;
      for (unsigned I = 0; I < InnerArms; ++I)
        NewInner.push_back(MatchArm{Body->ArmPats[I]->clone(),
                                    Body->child(I + 1)->clone()});
      for (unsigned I = ArmIdx + 1; I <= ArmIdx + K; ++I)
        NewInner.push_back(
            MatchArm{Node.ArmPats[I]->clone(), Node.child(I + 1)->clone()});
      std::vector<MatchArm> Outer;
      for (unsigned I = 0; I < NumArms; ++I) {
        if (I > ArmIdx && I <= ArmIdx + K)
          continue; // absorbed
        if (I == ArmIdx) {
          Outer.push_back(MatchArm{
              Node.ArmPats[I]->clone(),
              makeMatch(Body->child(0)->clone(), std::move(NewInner))});
          continue;
        }
        Outer.push_back(
            MatchArm{Node.ArmPats[I]->clone(), Node.child(I + 1)->clone()});
      }
      Out.push_back(change(
          makeMatch(Node.child(0)->clone(), std::move(Outer)),
          "reparenthesize the nested match (absorb " + std::to_string(K) +
              " outer arm(s) into the inner match)"));
    }
  }
}

} // namespace

std::vector<CandidateChange>
seminal::enumerateChanges(const Expr &Node, const EnumeratorOptions &Opts) {
  std::vector<CandidateChange> Out;
  switch (Node.kind()) {
  case Expr::Kind::App:
    appChanges(Node, Opts, Out);
    break;
  case Expr::Kind::Fun:
    funChanges(Node, Out);
    break;
  case Expr::Kind::Let:
    letChanges(Node, Out);
    break;
  case Expr::Kind::List:
    listChanges(Node, Out);
    break;
  case Expr::Kind::Tuple:
    tupleChanges(Node, Opts, Out);
    break;
  case Expr::Kind::BinOp:
    binOpChanges(Node, Out);
    break;
  case Expr::Kind::Cons:
    consChanges(Node, Out);
    break;
  case Expr::Kind::If:
    ifChanges(Node, Out);
    break;
  case Expr::Kind::Constr:
    constrChanges(Node, Out);
    break;
  case Expr::Kind::SetField:
    setFieldChanges(Node, Out);
    break;
  case Expr::Kind::Match:
    if (Opts.EnableMatchReparen)
      matchReparenChanges(Node, Out);
    break;
  default:
    break;
  }
  if (Opts.Extra)
    Opts.Extra->generate(Node, Out);
  return Out;
}

std::vector<DeclChange> seminal::enumerateDeclChanges(const Decl &D) {
  std::vector<DeclChange> Out;
  if (D.kind() != Decl::Kind::Let)
    return Out;

  {
    DeclPtr Toggled = D.clone();
    Toggled->IsRec = !D.IsRec;
    Out.push_back(DeclChange{std::move(Toggled),
                             D.IsRec ? "remove 'rec' from the binding"
                                     : "make the function recursive"});
  }
  if (D.Params.size() == 1 && D.Params[0]->kind() == Pattern::Kind::Tuple) {
    DeclPtr Curried = D.clone();
    std::vector<PatternPtr> Params;
    for (const auto &Elem : D.Params[0]->Elems)
      Params.push_back(Elem->clone());
    Curried->Params = std::move(Params);
    Out.push_back(DeclChange{std::move(Curried),
                             "take curried arguments instead of a tuple"});
  }
  if (D.Params.size() >= 2) {
    DeclPtr Tupled = D.clone();
    std::vector<PatternPtr> Elems;
    for (const auto &Param : D.Params)
      Elems.push_back(Param->clone());
    std::vector<PatternPtr> One;
    One.push_back(makeTuplePattern(std::move(Elems)));
    Tupled->Params = std::move(One);
    Out.push_back(DeclChange{std::move(Tupled),
                             "take one tuple instead of curried arguments"});
  }
  return Out;
}
