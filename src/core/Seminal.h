//===- Seminal.h - Public facade for the SEMINAL system ---------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API: feed it an ill-typed program (as source text
/// or a parsed AST) and get back a ranked list of suggestions plus the
/// conventional checker message for comparison. This wires together the
/// components of Figure 1: type-checker (oracle), changer (searcher +
/// enumerator), and ranker.
///
/// \code
///   seminal::SeminalReport R = seminal::runSeminalOnSource(Source);
///   if (!R.InputTypechecks)
///     std::cout << R.bestMessage() << "\n";
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_SEMINAL_H
#define SEMINAL_CORE_SEMINAL_H

#include "core/Change.h"
#include "core/Message.h"
#include "core/Searcher.h"
#include "minicaml/Infer.h"
#include "minicaml/Parser.h"
#include "obs/RunReport.h"
#include "support/Stats.h"

#include <optional>
#include <string>
#include <vector>

namespace seminal {

/// Configuration for one run of the full system.
struct SeminalOptions {
  SearchOptions Search;
  MessageOptions Message;
  /// Keep at most this many ranked suggestions in the report.
  size_t MaxSuggestions = 8;
};

/// Everything a run produces.
struct SeminalReport {
  /// The input parses? (Search requires a syntactically valid file.)
  std::optional<caml::ParseError> SyntaxError;

  /// The input already type-checks (the system is bypassed, Figure 1).
  bool InputTypechecks = false;

  /// The conventional checker diagnostic for the input (the baseline).
  std::optional<caml::TypeError> CheckerError;

  /// Index of the first failing top-level declaration.
  std::optional<unsigned> FailingDeclIndex;

  /// Ranked suggestions, best first.
  std::vector<Suggestion> Suggestions;

  /// Number of oracle invocations the search performed (logical calls --
  /// the paper-comparable search-effort metric, independent of the
  /// acceleration configuration).
  size_t OracleCalls = 0;

  /// Number of inference executions the oracle actually ran; acceleration
  /// drives this below OracleCalls (equal when acceleration is off).
  size_t InferenceRuns = 0;

  /// Per-layer acceleration instrumentation for this run.
  AccelCounters Accel;

  /// True if the search stopped on its call budget.
  bool BudgetExhausted = false;

  /// The provenance error slice, when SearchOptions::ComputeSlice or
  /// SliceGuided was set and the failure was sliceable.
  std::optional<analysis::ErrorSlice> Slice;

  /// Oracle calls statically skipped by slice guidance (0 unless
  /// SearchOptions::SliceGuided). These calls are part of the logical
  /// search effort a plain run would have spent; OracleCalls excludes
  /// them.
  size_t SlicePrunedCalls = 0;

  /// Aggregated view of the run's trace, present when a TraceSink was
  /// attached via SearchOptions::Trace (span counts by kind, oracle calls
  /// by search layer, cache hits, root wall-time).
  std::optional<TraceSummary> Trace;

  /// The top-ranked suggestion rendered as a message, or a fallback.
  std::string bestMessage(const MessageOptions &Opts = {}) const;

  /// The conventional checker message (baseline presentation).
  std::string conventionalMessage() const;
};

/// Search layer credited with finding \p S ("constructive",
/// "adaptation", "removal", "pattern-fix", "decl-change").
const char *suggestionLayer(const Suggestion &S);

/// Copies one run's outcome, effort and slice sections from \p Report
/// into \p R (obs/RunReport.h). Identity and quality fields are the
/// caller's job (the corpus sweep knows the mutation ground truth; the
/// CLI knows the file name). \p Telemetry, when non-null, supplies the
/// per-layer candidate tallies; \p WallSeconds stamps the run's measured
/// wall-clock.
void fillRunReport(obs::RunReport &R, const SeminalReport &Report,
                   const obs::TelemetrySink *Telemetry = nullptr,
                   double WallSeconds = 0.0);

/// Runs search-based error-message generation on a parsed program.
SeminalReport runSeminal(const caml::Program &Prog,
                         const SeminalOptions &Opts = {});

class CheckpointedOracle;

/// Runs one request against a caller-owned (typically long-lived) oracle.
/// This is the server entry point: the oracle keeps its arena, retained
/// session checkpoints and verdict caches across calls, while everything
/// per-request is reset at entry -- the logical-call count (so
/// SearchOptions::MaxOracleCalls budgets each request, not the session)
/// and the AccelCounters (so SeminalReport::Accel describes this request
/// only; accumulate across requests caller-side). Suggestions and
/// verdicts are bit-identical to a one-shot runSeminal with the same
/// options; Opts.Search.Accel is ignored here (the oracle was built with
/// its own acceleration configuration).
SeminalReport runSeminalWithOracle(CheckpointedOracle &TheOracle,
                                   const caml::Program &Prog,
                                   const SeminalOptions &Opts = {});

/// Convenience: parse then run.
SeminalReport runSeminalOnSource(const std::string &Source,
                                 const SeminalOptions &Opts = {});

} // namespace seminal

#endif // SEMINAL_CORE_SEMINAL_H
