//===- Oracle.h - The type-checker as a black-box oracle --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central architectural idea of the paper (Figure 1): the searcher
/// never looks inside the type-checker; it only asks "does this modified
/// program type-check?". This interface is that boundary. The production
/// implementation wraps mini-Caml inference; tests substitute mocks to
/// exercise the searcher against adversarial oracles.
///
/// Accounting distinguishes two quantities the paper's Section 3.2 metrics
/// conflate once caching enters the picture:
///
///   * logicalCalls() -- how many questions the search asked. This is the
///     paper-comparable search-effort metric and the budget currency; it
///     grows on every typechecks()/typeOfNode()/batch item regardless of
///     how the answer was produced.
///   * inferenceRuns() -- how many times inference actually executed.
///     Acceleration layers (core/CheckpointedOracle.h) drive this far
///     below logicalCalls(); for plain oracles the two coincide.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_ORACLE_H
#define SEMINAL_CORE_ORACLE_H

#include "minicaml/Ast.h"
#include "minicaml/Infer.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace seminal {

/// Toggles for the oracle acceleration layer. Lives here (not in the
/// accelerated oracle's header) so SearchOptions can embed it and the
/// ablation benches can switch each layer independently.
struct OracleAccelOptions {
  /// Reuse a typing-environment snapshot of the unedited declaration
  /// prefix instead of re-inferring it on every call.
  bool Checkpoint = true;

  /// Memoize type-check verdicts keyed by the edited declaration's
  /// structural hash.
  bool VerdictCache = true;

  /// Evaluate candidate batches concurrently on a thread pool. Off by
  /// default: results are bit-identical either way, but a library should
  /// not spawn threads unless asked.
  bool ParallelBatch = false;

  /// Worker count for ParallelBatch; 0 picks hardware concurrency.
  unsigned Threads = 0;

  /// Batches with fewer uncached candidates than this run serially even
  /// under ParallelBatch: dispatch overhead swamps sub-millisecond
  /// inference. Verdicts are identical either way.
  unsigned MinParallelItems = 8;

  /// Hash-cons candidate declarations into a shared AST arena
  /// (minicaml/Arena.h) and key the verdict cache on interned node ids
  /// instead of structural hashes: probes become integer lookups and
  /// candidates that collapse to the same tree are detected by id. Only
  /// effective together with VerdictCache; verdicts, logical-call counts
  /// and cache hit/miss accounting are bit-identical either way (the
  /// toggle exists for ablation and for the arena/legacy identity tests).
  bool Arena = true;
};

/// Black-box type-check oracle over mini-Caml programs.
class Oracle {
public:
  virtual ~Oracle();

  /// Attaches observability sinks (either may be null, neither is
  /// owned). With both null -- the default -- every query takes the
  /// untraced fast path: one pointer test of overhead.
  void setInstrumentation(TraceSink *Trace, Metrics *M) {
    TraceOut = Trace;
    MetricsOut = M;
  }
  TraceSink *traceSink() const { return TraceOut; }
  Metrics *metrics() const { return MetricsOut; }

  /// \returns true if \p Prog type-checks. Counts one logical call.
  bool typechecks(const caml::Program &Prog) {
    ++LogicalCalls;
    if (!TraceOut && !MetricsOut)
      return typecheckImpl(Prog);
    return typechecksTraced(Prog);
  }

  /// Type-checks \p Prog and, on success, reports the rendered type of
  /// \p Node (which must be a node inside \p Prog). Used only to decorate
  /// messages ("of type int -> int -> int"); the search itself never
  /// consumes type information. Counts one logical call.
  std::optional<std::string> typeOfNode(const caml::Program &Prog,
                                        const caml::Expr *Node) {
    ++LogicalCalls;
    if (!TraceOut && !MetricsOut)
      return typeOfNodeImpl(Prog, Node);
    return typeOfNodeTraced(Prog, Node);
  }

  /// Evaluates \p Base with each replacement installed at \p Path (one
  /// independent program per entry; \p Base itself is not modified) and
  /// returns the verdicts in input order. Counts one logical call per
  /// entry -- exactly what the same queries would cost sequentially.
  std::vector<bool>
  typecheckBatch(const caml::Program &Base, const caml::NodePath &Path,
                 const std::vector<const caml::Expr *> &Replacements) {
    LogicalCalls += Replacements.size();
    if (!TraceOut && !MetricsOut)
      return typecheckBatchImpl(Base, Path, Replacements);
    return typecheckBatchTraced(Base, Path, Replacements);
  }

  /// True if typecheckBatch is faster than the equivalent sequential
  /// loop (the searcher only batches when it is).
  virtual bool supportsBatch() const { return false; }

  /// Hints that until clearPrefix(), every queried program will consist of
  /// the first \p EditedDecl declarations of \p Prog unchanged plus one
  /// edited declaration at index \p EditedDecl. Accelerated oracles
  /// snapshot the prefix environment here; the default ignores the hint.
  /// The caller must not mutate the prefix declarations while seeded.
  virtual void seedPrefix(const caml::Program &Prog, unsigned EditedDecl) {}

  /// Drops the seedPrefix() hint (and any state keyed on it).
  virtual void clearPrefix() {}

  /// The conventional checker diagnostic for \p Prog (does not count as a
  /// search call; used to render the baseline message).
  virtual std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) = 0;

  /// Search effort: every question asked (Section 3.2's metric).
  size_t logicalCalls() const { return LogicalCalls; }

  /// Work performed: inference executions. Plain oracles run inference
  /// once per question; accelerated oracles override this.
  virtual size_t inferenceRuns() const { return LogicalCalls; }

  /// Legacy alias for logicalCalls().
  size_t callCount() const { return LogicalCalls; }
  void resetCallCount() { LogicalCalls = 0; }

protected:
  virtual bool typecheckImpl(const caml::Program &Prog) = 0;
  virtual std::optional<std::string>
  typeOfNodeImpl(const caml::Program &Prog, const caml::Expr *Node) = 0;

  /// Default batch: sequential evaluation over clones of \p Base.
  virtual std::vector<bool>
  typecheckBatchImpl(const caml::Program &Base, const caml::NodePath &Path,
                     const std::vector<const caml::Expr *> &Replacements);

  // Tracing support ---------------------------------------------------------
  // Implementations describe how they served the *current* call by
  // setting these before returning; the traced wrappers stamp them onto
  // the call's span. Plain oracles leave the defaults.
  /// Which acceleration layer answered ("full-inference", "verdict-cache",
  /// "checkpoint-incremental", "growth-extend", "conv-memo").
  const char *LastServedBy = "full-inference";
  /// True when the verdict came from a memo rather than inference.
  bool LastCacheHit = false;
  /// Parent span id for per-item spans emitted inside a traced batch
  /// (0 outside a batch or when tracing is off).
  uint64_t BatchSpanId = 0;
  /// Batch-level accounting stamped onto the oracle.batch span by the
  /// traced wrapper: overlays that collapsed to another candidate's
  /// interned tree in the batch just served, and arena occupancy after
  /// it. All stay zero when the arena path is off.
  uint64_t LastWaveCollapsed = 0;
  uint64_t LastArenaNodes = 0;
  uint64_t LastArenaHits = 0;
  uint64_t LastArenaBytes = 0;

  TraceSink *TraceOut = nullptr;
  Metrics *MetricsOut = nullptr;

  /// Wraps typecheckImpl in an oracle-call span + latency metric; used
  /// by the default batch implementation for per-item spans too.
  bool typecheckOneTraced(const caml::Program &Prog, uint64_t ParentSpan);

private:
  bool typechecksTraced(const caml::Program &Prog);
  std::optional<std::string> typeOfNodeTraced(const caml::Program &Prog,
                                              const caml::Expr *Node);
  std::vector<bool>
  typecheckBatchTraced(const caml::Program &Base, const caml::NodePath &Path,
                       const std::vector<const caml::Expr *> &Replacements);

  size_t LogicalCalls = 0;
};

/// The production oracle: mini-Caml Hindley-Milner inference, one full
/// program inference per question.
class CamlOracle : public Oracle {
public:
  std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) override;

protected:
  bool typecheckImpl(const caml::Program &Prog) override;
  std::optional<std::string> typeOfNodeImpl(const caml::Program &Prog,
                                            const caml::Expr *Node) override;
};

} // namespace seminal

#endif // SEMINAL_CORE_ORACLE_H
