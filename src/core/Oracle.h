//===- Oracle.h - The type-checker as a black-box oracle --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central architectural idea of the paper (Figure 1): the searcher
/// never looks inside the type-checker; it only asks "does this modified
/// program type-check?". This interface is that boundary. The production
/// implementation wraps mini-Caml inference; tests substitute mocks to
/// exercise the searcher against adversarial oracles, and every
/// implementation counts its calls so the efficiency experiments
/// (Section 3.2, bench_oracle_calls) can measure search effort.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_ORACLE_H
#define SEMINAL_CORE_ORACLE_H

#include "minicaml/Ast.h"
#include "minicaml/Infer.h"

#include <cstddef>
#include <optional>
#include <string>

namespace seminal {

/// Black-box type-check oracle over mini-Caml programs.
class Oracle {
public:
  virtual ~Oracle();

  /// \returns true if \p Prog type-checks. Increments the call counter.
  bool typechecks(const caml::Program &Prog) {
    ++Calls;
    return typecheckImpl(Prog);
  }

  /// Type-checks \p Prog and, on success, reports the rendered type of
  /// \p Node (which must be a node inside \p Prog). Used only to decorate
  /// messages ("of type int -> int -> int"); the search itself never
  /// consumes type information. Increments the call counter.
  std::optional<std::string> typeOfNode(const caml::Program &Prog,
                                        const caml::Expr *Node) {
    ++Calls;
    return typeOfNodeImpl(Prog, Node);
  }

  /// The conventional checker diagnostic for \p Prog (does not count as a
  /// search call; used to render the baseline message).
  virtual std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) = 0;

  size_t callCount() const { return Calls; }
  void resetCallCount() { Calls = 0; }

protected:
  virtual bool typecheckImpl(const caml::Program &Prog) = 0;
  virtual std::optional<std::string>
  typeOfNodeImpl(const caml::Program &Prog, const caml::Expr *Node) = 0;

private:
  size_t Calls = 0;
};

/// The production oracle: mini-Caml Hindley-Milner inference.
class CamlOracle : public Oracle {
public:
  std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) override;

protected:
  bool typecheckImpl(const caml::Program &Prog) override;
  std::optional<std::string> typeOfNodeImpl(const caml::Program &Prog,
                                            const caml::Expr *Node) override;
};

} // namespace seminal

#endif // SEMINAL_CORE_ORACLE_H
