//===- Searcher.cpp - Top-down search implementation -----------------------==//

#include "core/Searcher.h"

#include "minicaml/Printer.h"

#include <algorithm>
#include <cassert>

using namespace seminal;
using namespace seminal::caml;

bool Searcher::oracleSays() {
  if (OutOfBudget)
    return false;
  if (TheOracle.callCount() >= Opts.MaxOracleCalls) {
    OutOfBudget = true;
    return false;
  }
  return TheOracle.typechecks(Work);
}

void Searcher::note(const char *Layer, const char *Kind,
                    const std::string &Description, const std::string &Path,
                    bool Verdict, bool Probe, bool Batched, bool Pruned) {
  if (!Opts.Telemetry)
    return;
  obs::CandidateOutcome O;
  O.Layer = Layer;
  O.Kind = Kind;
  O.Description = Description;
  O.Path = Path;
  O.Verdict = Verdict;
  O.Probe = Probe;
  O.Batched = Batched;
  O.Pruned = Pruned;
  Opts.Telemetry->record(std::move(O));
}

LazyProgram Searcher::captureModified() {
  if (!Arena)
    return LazyProgram(Work.clone());
  std::vector<AstArena::DeclId> Ids;
  Ids.reserve(Work.Decls.size());
  for (const DeclPtr &D : Work.Decls)
    Ids.push_back(Arena->internDecl(*D));
  return LazyProgram(Arena, std::move(Ids));
}

bool Searcher::testWith(const NodePath &Path, ExprPtr &Replacement) {
  ExprPtr Old = replaceAtPath(Work, Path, std::move(Replacement));
  bool Ok = oracleSays();
  Replacement = replaceAtPath(Work, Path, std::move(Old));
  return Ok;
}

void Searcher::addSuggestion(ChangeKind Kind, const NodePath &Path,
                             ExprPtr Replacement,
                             const std::string &Description,
                             bool LikelyUnbound, int Priority) {
  Suggestion S;
  S.Kind = Kind;
  S.Priority = Priority;
  S.ViaTriage = TriageDepth > 0;
  S.TriageRemovals = TriageDepth > 0 ? TriageRemovalCount : 0;
  S.Path = Path;
  Expr *Node = resolvePath(Work, Path);
  assert(Node && "suggestion path must resolve");
  S.Original = Node->clone();
  S.OriginalSize = Node->size();
  S.ReplacementSize = Replacement->size();
  S.Description = Description;
  S.LikelyUnboundVariable = LikelyUnbound;
  // Stamped in both slice modes (ranked and guided) so the ranker's boost
  // -- and with it the final order -- is identical across the two.
  S.InSlice = Guide && Guide->inCore(*Node);

  // Install the replacement to render context, capture the modified
  // program, and query the replacement's type.
  const Expr *Installed = Replacement.get();
  ExprPtr Old = replaceAtPath(Work, Path, std::move(Replacement));
  S.ContextAfter = printDecl(*Work.Decls[Path.DeclIndex]);
  S.Modified = captureModified();
  {
    TraceLayerScope Layer("type-query");
    S.ReplacementType = TheOracle.typeOfNode(Work, Installed);
  }
  Replacement = replaceAtPath(Work, Path, std::move(Old));
  S.Replacement = std::move(Replacement);

  Suggestions.push_back(std::move(S));
}

bool Searcher::tryCandidates(const NodePath &Path,
                             std::vector<CandidateChange> Cands) {
  if (Opts.Accel.ParallelBatch && TheOracle.supportsBatch())
    return tryCandidatesBatched(Path, std::move(Cands));
  TraceLayerScope Layer("constructive");
  const Expr *Node = guideActive() ? resolvePath(Work, Path) : nullptr;
  // With an arena the per-candidate diff walks interned ids (shared
  // subtrees compare as integers); interned once per node, reused for
  // every candidate and by the oracle's overlay construction.
  AstArena::ExprId NodeId =
      Node && Arena ? Arena->internExpr(*Node) : AstArena::InvalidId;
  const std::string PathStr = Opts.Telemetry ? Path.str() : std::string();
  bool Any = false;
  size_t Tried = 0;
  // The worklist grows as probes expand into follow-ups.
  for (size_t I = 0; I < Cands.size() && !OutOfBudget; ++I) {
    CandidateChange &C = Cands[I];
    bool Ok;
    if (Node &&
        (Arena ? Guide->candidateDoomed(*Node, NodeId, *C.Replacement,
                                        Arena->internExpr(*C.Replacement),
                                        *Arena)
               : Guide->candidateDoomed(*Node, *C.Replacement))) {
      // The replacement only rewrites core-disjoint subtrees; its verdict
      // is a proven "no". Proceed exactly as a failed probe would.
      ++Guide->PrunedCandidates;
      Ok = false;
      note("constructive", C.IsProbe ? "probe" : "constructive",
           C.Description, PathStr, false, C.IsProbe, /*Batched=*/false,
           /*Pruned=*/true);
    } else {
      TraceSpan Span(Opts.Trace, SpanKind::Candidate, "searcher.candidate");
      Ok = testWith(Path, C.Replacement);
      ++Tried;
      if (Span.enabled()) {
        Span.attr("description", C.Description);
        Span.attr("probe", C.IsProbe);
        Span.attr("priority", C.Priority);
        Span.attr("verdict", Ok);
      }
      note("constructive", C.IsProbe ? "probe" : "constructive",
           C.Description, PathStr, Ok, C.IsProbe);
    }
    if (Ok && !C.IsProbe) {
      addSuggestion(ChangeKind::Constructive, Path, std::move(C.Replacement),
                    C.Description, /*LikelyUnbound=*/false, C.Priority);
      Any = true;
    }
    if (C.FollowUps) {
      std::vector<CandidateChange> More = C.FollowUps(Ok);
      for (auto &Next : More)
        Cands.push_back(std::move(Next));
    }
  }
  if (Opts.Metric && Tried)
    Opts.Metric->observe(metric::CandidatesPerNode, double(Tried));
  return Any;
}

bool Searcher::tryCandidatesBatched(const NodePath &Path,
                                    std::vector<CandidateChange> Cands) {
  TraceLayerScope Layer("constructive");
  const Expr *Node = guideActive() ? resolvePath(Work, Path) : nullptr;
  AstArena::ExprId NodeId =
      Node && Arena ? Arena->internExpr(*Node) : AstArena::InvalidId;
  const std::string PathStr = Opts.Telemetry ? Path.str() : std::string();
  bool Any = false;
  size_t Tried = 0;
  size_t I = 0;
  while (I < Cands.size() && !OutOfBudget) {
    // One wave = everything currently on the worklist (follow-ups landed
    // by earlier waves included), truncated to the remaining budget. The
    // candidates in a wave are mutually independent: each is a different
    // replacement at the same path, so verdicts cannot interact.
    size_t Used = TheOracle.callCount();
    size_t Remaining =
        Used < Opts.MaxOracleCalls ? Opts.MaxOracleCalls - Used : 0;
    if (Remaining == 0) {
      OutOfBudget = true;
      break;
    }
    size_t WaveEnd = I + std::min(Cands.size() - I, Remaining);

    // Slice-doomed candidates are excluded from the batch; their verdict
    // is a proven "no" and they cost no oracle call.
    std::vector<char> Doomed(WaveEnd - I, 0);
    std::vector<const Expr *> Replacements;
    Replacements.reserve(WaveEnd - I);
    for (size_t J = I; J < WaveEnd; ++J) {
      if (Node &&
          (Arena
               ? Guide->candidateDoomed(
                     *Node, NodeId, *Cands[J].Replacement,
                     Arena->internExpr(*Cands[J].Replacement), *Arena)
               : Guide->candidateDoomed(*Node, *Cands[J].Replacement))) {
        Doomed[J - I] = 1;
        ++Guide->PrunedCandidates;
      } else {
        Replacements.push_back(Cands[J].Replacement.get());
      }
    }
    std::vector<bool> Verdicts;
    if (!Replacements.empty())
      Verdicts = TheOracle.typecheckBatch(Work, Path, Replacements);

    // Consume verdicts in worklist order: suggestions are appended and
    // follow-ups enqueued exactly as the sequential loop would.
    size_t VI = 0;
    for (size_t J = I; J < WaveEnd; ++J) {
      CandidateChange &C = Cands[J];
      bool Ok = Doomed[J - I] ? false : Verdicts[VI++];
      if (!Doomed[J - I])
        ++Tried;
      // Zero-duration attribution spans: the oracle work itself is
      // recorded under the batch span, but rankers of the trace still
      // see which candidate each verdict belonged to.
      TraceSpan Span(Opts.Trace, SpanKind::Candidate, "searcher.candidate");
      if (Span.enabled()) {
        Span.attr("description", C.Description);
        Span.attr("probe", C.IsProbe);
        Span.attr("priority", C.Priority);
        Span.attr("verdict", Ok);
        Span.attr("batched", true);
      }
      Span.finish();
      note("constructive", C.IsProbe ? "probe" : "constructive",
           C.Description, PathStr, Ok, C.IsProbe, /*Batched=*/true,
           /*Pruned=*/Doomed[J - I] != 0);
      if (Ok && !C.IsProbe) {
        addSuggestion(ChangeKind::Constructive, Path,
                      std::move(C.Replacement), C.Description,
                      /*LikelyUnbound=*/false, C.Priority);
        Any = true;
      }
      if (C.FollowUps) {
        std::vector<CandidateChange> More = C.FollowUps(Ok);
        for (auto &Next : More)
          Cands.push_back(std::move(Next));
      }
    }
    I = WaveEnd;
  }
  if (Opts.Metric && Tried)
    Opts.Metric->observe(metric::CandidatesPerNode, double(Tried));
  return Any;
}

bool Searcher::tryDeclChanges(unsigned DeclIndex) {
  TraceSpan Span(Opts.Trace, SpanKind::DeclChanges, "searcher.decl_changes");
  if (Span.enabled())
    Span.attr("decl", int64_t(DeclIndex));
  TraceLayerScope Layer("decl-change");
  bool Any = false;
  for (DeclChange &DC : enumerateDeclChanges(*Work.Decls[DeclIndex])) {
    if (OutOfBudget)
      break;
    std::swap(Work.Decls[DeclIndex], DC.Replacement);
    bool Ok = oracleSays();
    note("decl-change", "constructive", DC.Description,
         NodePath(DeclIndex).str(), Ok, /*Probe=*/false);
    if (Ok) {
      Suggestion S;
      S.Kind = ChangeKind::Constructive;
      S.Path = NodePath(DeclIndex);
      S.Description = DC.Description;
      S.ContextAfter = printDecl(*Work.Decls[DeclIndex]);
      S.Modified = captureModified();
      S.OriginalSize = 1; // a declaration-header tweak is a tiny change
      S.ReplacementSize = 1;
      Suggestions.push_back(std::move(S));
      Any = true;
    }
    std::swap(Work.Decls[DeclIndex], DC.Replacement);
  }
  return Any;
}

bool Searcher::searchExpr(const NodePath &Path) {
  if (OutOfBudget)
    return false;
  Expr *Node = resolvePath(Work, Path);
  assert(Node && "search path must resolve");
  if (Node->isWildcard())
    return false;

  // Slice pruning: a subtree disjoint from the error's influence set
  // cannot contain the fix -- its removal probe is guaranteed to fail,
  // which is exactly the condition under which this function returns
  // false below. Skipping the oracle call is behavior-identical.
  if (guideActive() && Guide->subtreeDoomed(*Node)) {
    ++Guide->PrunedSubtrees;
    note("removal", "probe", "", Opts.Telemetry ? Path.str() : std::string(),
         false, /*Probe=*/true, /*Batched=*/false, /*Pruned=*/true);
    return false;
  }

  TraceSpan Span(Opts.Trace, SpanKind::NodeVisit, "searcher.node");
  if (Span.enabled()) {
    Span.attr("path", Path.str());
    Span.attr("size", int64_t(Node->size()));
    Span.attr("line", int64_t(Node->Span.Begin.Line));
  }

  const std::string PathStr = Opts.Telemetry ? Path.str() : std::string();

  // 1. Removal: can [[...]] here fix the program? If not, the error is
  // not confined to this subtree; stop (Section 2.1).
  ExprPtr Wild = makeWildcard();
  {
    TraceLayerScope Layer("removal");
    bool Ok = testWith(Path, Wild);
    note("removal", "probe", "", PathStr, Ok, /*Probe=*/true);
    if (!Ok)
      return false;
  }

  // 2. Adaptation: does the node type-check when its own result type is
  // unconstrained by the parent (Section 2.3)? When the whole clash
  // component lives inside this subtree, `adapt` replays the clash
  // internally and the probe is guaranteed to fail; skip it.
  bool AdaptOk = false;
  if (guideActive() && Guide->adaptationDoomed(*Node)) {
    ++Guide->PrunedAdaptations;
    note("adaptation", "adaptation", "", PathStr, false, /*Probe=*/false,
         /*Batched=*/false, /*Pruned=*/true);
  } else {
    ExprPtr Adapted = makeAdapt(Node->clone());
    {
      TraceLayerScope Layer("adaptation");
      AdaptOk = testWith(Path, Adapted);
    }
    note("adaptation", "adaptation", "", PathStr, AdaptOk, /*Probe=*/false);
    if (AdaptOk)
      addSuggestion(ChangeKind::Adaptation, Path, std::move(Adapted),
                    "the expression type-checks on its own but not in this "
                    "context");
  }

  // 3. Constructive changes from the enumerator (Section 2.2). The guide
  // rides along (guided mode, outside triage) so the enumerator can skip
  // permutation probes whose failure is already proven.
  EnumeratorOptions EnumOpts = Opts.Enum;
  EnumOpts.Arena = Arena;
  if (guideActive())
    EnumOpts.Guide = Guide.get();
  bool AnyConstructive = tryCandidates(Path, enumerateChanges(*Node, EnumOpts));

  // 4. Recurse into children looking for smaller fixes.
  bool AnyChild = false;
  for (unsigned I = 0; I < Node->numChildren(); ++I)
    if (searchExpr(Path.descend(I)))
      AnyChild = true;

  // 5. No child can be fixed alone: this node is a minimal removal site.
  if (!AnyChild) {
    // Triage trigger: a nontrivial subtree whose *only* fix is removal
    // smells like multiple independent errors (Section 2.4).
    if (!AnyConstructive && !AdaptOk && Opts.EnableTriage &&
        Node->size() >= Opts.TriageMinSize && triage(Path))
      return true;

    // A bound variable always type-checks on its own, so a removable but
    // non-adaptable variable is almost surely unbound (Section 3.3).
    bool LikelyUnbound = Node->kind() == Expr::Kind::Var && !AdaptOk;
    addSuggestion(ChangeKind::Removal, Path, makeWildcard(),
                  "remove this expression", LikelyUnbound);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Triage (Section 2.4)
//===----------------------------------------------------------------------===//

bool Searcher::triage(const NodePath &Path) {
  Expr *Node = resolvePath(Work, Path);
  TraceSpan Span(Opts.Trace, SpanKind::Triage, "searcher.triage");
  if (Span.enabled()) {
    Span.attr("path", Path.str());
    Span.attr("size", int64_t(Node->size()));
  }
  TraceLayerScope Layer("triage");
  if (Node->kind() == Expr::Kind::Match)
    return triageMatch(Path);
  return triageGeneric(Path);
}

bool Searcher::triageGeneric(const NodePath &Path) {
  Expr *Node = resolvePath(Work, Path);
  unsigned N = Node->numChildren();
  if (N < 2)
    return false;

  // Sibling-removal order (the paper removes rightmost-first).
  std::vector<unsigned> Order;
  if (Opts.Order == TriageOrder::RightToLeft) {
    for (unsigned J = N; J-- > 0;)
      Order.push_back(J);
  } else {
    for (unsigned J = 0; J < N; ++J)
      Order.push_back(J);
  }

  bool Found = false;
  for (unsigned Focus = 0; Focus < N && !OutOfBudget; ++Focus) {
    TraceSpan PhaseSpan(Opts.Trace, SpanKind::TriagePhase, "triage.focus");
    // Greedily wildcard the other children, in Order, until the context
    // admits *some* fix for the focus (tested with the focus itself
    // wildcarded; the zero-removal configuration is known to fail
    // because no single-child removal succeeded -- the paper's footnote).
    ExprPtr FocusOld = Node->swapChild(Focus, makeWildcard());
    std::vector<std::pair<unsigned, ExprPtr>> Removed;
    bool ContextWorks = false;
    for (unsigned J : Order) {
      if (J == Focus)
        continue;
      Removed.emplace_back(J, Node->swapChild(J, makeWildcard()));
      if (oracleSays()) {
        ContextWorks = true;
        break;
      }
    }
    if (PhaseSpan.enabled()) {
      PhaseSpan.attr("focus", Focus);
      PhaseSpan.attr("context_works", ContextWorks);
      PhaseSpan.attr("siblings_removed", int64_t(Removed.size()));
    }
    note("triage", "probe", "focus child " + std::to_string(Focus),
         Opts.Telemetry ? Path.str() : std::string(), ContextWorks,
         /*Probe=*/true);
    if (Opts.Metric && ContextWorks)
      Opts.Metric->observe(metric::TriageRemovals, double(Removed.size()));

    if (ContextWorks) {
      // Put the focus back and search it, in regular mode, inside the
      // reduced context.
      ExprPtr Hole = Node->swapChild(Focus, std::move(FocusOld));
      ++TriageDepth;
      TriageRemovalCount += int(Removed.size());
      size_t Before = Suggestions.size();
      searchExpr(Path.descend(Focus));
      Found |= Suggestions.size() > Before;
      TriageRemovalCount -= int(Removed.size());
      --TriageDepth;
      FocusOld = Node->swapChild(Focus, std::move(Hole));
    }

    // Undo everything.
    for (auto It = Removed.rbegin(); It != Removed.rend(); ++It)
      Node->swapChild(It->first, std::move(It->second));
    if (FocusOld)
      Node->swapChild(Focus, std::move(FocusOld));
  }
  return Found;
}

bool Searcher::triageMatch(const NodePath &Path) {
  Expr *Node = resolvePath(Work, Path);
  unsigned NumArms = Node->numChildren() - 1;

  // Phase 1: the scrutinee, with patterns and bodies out of the picture:
  //   match scr with _ -> [[...]]
  {
    TraceSpan PhaseSpan(Opts.Trace, SpanKind::TriagePhase,
                        "triage.match_scrutinee");
    std::vector<MatchArm> OneArm;
    OneArm.push_back(MatchArm{makeWildPattern(), makeWildcard()});
    ExprPtr Reduced = makeMatch(Node->child(0)->clone(), std::move(OneArm));
    ExprPtr Old = replaceAtPath(Work, Path, std::move(Reduced));
    bool ScrutineeOk = oracleSays();
    if (!ScrutineeOk) {
      // The problem is (at least) in the scrutinee: search it here and
      // do not proceed to later phases (Section 2.4).
      ++TriageDepth;
      TriageRemovalCount += int(NumArms);
      size_t Before = Suggestions.size();
      searchExpr(Path.descend(0));
      bool Found = Suggestions.size() > Before;
      TriageRemovalCount -= int(NumArms);
      --TriageDepth;
      replaceAtPath(Work, Path, std::move(Old));
      return Found;
    }
    replaceAtPath(Work, Path, std::move(Old));
  }

  // Phase 2: the patterns, with bodies wildcarded.
  {
    TraceSpan PhaseSpan(Opts.Trace, SpanKind::TriagePhase,
                        "triage.match_patterns");
    std::vector<ExprPtr> OldBodies;
    for (unsigned I = 1; I <= NumArms; ++I)
      OldBodies.push_back(Node->swapChild(I, makeWildcard()));
    bool PatternsOk = oracleSays();
    bool Found = false;
    if (!PatternsOk)
      Found = triageMatchPatterns(Path);
    for (unsigned I = 1; I <= NumArms; ++I)
      Node->swapChild(I, std::move(OldBodies[I - 1]));
    if (!PatternsOk)
      return Found;
  }

  // Phase 3: the bodies, keeping patterns intact so their bindings stay
  // in scope; focus each body while greedily wildcarding the others.
  bool Found = false;
  for (unsigned Focus = 1; Focus <= NumArms && !OutOfBudget; ++Focus) {
    TraceSpan PhaseSpan(Opts.Trace, SpanKind::TriagePhase,
                        "triage.match_body");
    if (PhaseSpan.enabled())
      PhaseSpan.attr("focus", Focus);
    ExprPtr FocusOld = Node->swapChild(Focus, makeWildcard());
    std::vector<std::pair<unsigned, ExprPtr>> Removed;
    bool ContextWorks = oracleSays();
    if (!ContextWorks) {
      for (unsigned J = NumArms; J >= 1; --J) {
        if (J == Focus)
          continue;
        Removed.emplace_back(J, Node->swapChild(J, makeWildcard()));
        if (oracleSays()) {
          ContextWorks = true;
          break;
        }
      }
    }
    if (PhaseSpan.enabled()) {
      PhaseSpan.attr("context_works", ContextWorks);
      PhaseSpan.attr("siblings_removed", int64_t(Removed.size()));
    }
    note("triage", "probe", "focus match body " + std::to_string(Focus),
         Opts.Telemetry ? Path.str() : std::string(), ContextWorks,
         /*Probe=*/true);
    if (Opts.Metric && ContextWorks)
      Opts.Metric->observe(metric::TriageRemovals, double(Removed.size()));
    if (ContextWorks) {
      ExprPtr Hole = Node->swapChild(Focus, std::move(FocusOld));
      ++TriageDepth;
      TriageRemovalCount += int(Removed.size());
      size_t Before = Suggestions.size();
      searchExpr(Path.descend(Focus));
      Found |= Suggestions.size() > Before;
      TriageRemovalCount -= int(Removed.size());
      --TriageDepth;
      FocusOld = Node->swapChild(Focus, std::move(Hole));
    }
    for (auto It = Removed.rbegin(); It != Removed.rend(); ++It)
      Node->swapChild(It->first, std::move(It->second));
    if (FocusOld)
      Node->swapChild(Focus, std::move(FocusOld));
  }
  return Found;
}

bool Searcher::triageMatchPatterns(const NodePath &Path) {
  Expr *Node = resolvePath(Work, Path);
  unsigned NumArms = Node->numChildren() - 1;
  bool Found = false;

  // First attempt: with every other pattern *kept*, can a subpattern of
  // arm i be wildcarded to reconcile the arms? This catches inter-pattern
  // conflicts (e.g. `[]` in one arm versus `5` in another).
  for (unsigned Focus = 0; Focus < NumArms && !OutOfBudget; ++Focus) {
    ++TriageDepth;
    Found |= searchPatternFix(Path, Focus);
    --TriageDepth;
  }
  if (Found)
    return true;

  // Fallback: isolate each pattern by wildcarding the others, then look
  // for a subpattern fix of the isolated pattern (scrutinee conflicts).
  for (unsigned Focus = 0; Focus < NumArms && !OutOfBudget; ++Focus) {
    std::vector<std::pair<unsigned, PatternPtr>> Saved;
    for (unsigned J = 0; J < NumArms; ++J) {
      if (J == Focus)
        continue;
      Saved.emplace_back(J, std::move(Node->ArmPats[J]));
      Node->ArmPats[J] = makeWildPattern();
    }
    if (!oracleSays()) {
      // The focused pattern is broken on its own: find the minimal
      // subpattern whose replacement by _ repairs it.
      ++TriageDepth;
      TriageRemovalCount += int(NumArms - 1);
      Found |= searchPatternFix(Path, Focus);
      TriageRemovalCount -= int(NumArms - 1);
      --TriageDepth;
    }
    for (auto &KV : Saved)
      Node->ArmPats[KV.first] = std::move(KV.second);
  }
  return Found;
}

namespace {

/// Collects mutable slots for every subpattern of \p P in preorder.
void collectPatternSlots(PatternPtr &P, std::vector<PatternPtr *> &Out) {
  Out.push_back(&P);
  for (auto &Elem : P->Elems)
    collectPatternSlots(Elem, Out);
  if (P->Head)
    collectPatternSlots(P->Head, Out);
  if (P->Tail)
    collectPatternSlots(P->Tail, Out);
  if (P->Arg)
    collectPatternSlots(P->Arg, Out);
}

} // namespace

bool Searcher::searchPatternFix(const NodePath &MatchPath,
                                unsigned ArmIndex) {
  Expr *Node = resolvePath(Work, MatchPath);
  TraceSpan Span(Opts.Trace, SpanKind::PatternFix, "searcher.pattern_fix");
  if (Span.enabled()) {
    Span.attr("path", MatchPath.str());
    Span.attr("arm", ArmIndex);
  }
  TraceLayerScope Layer("pattern-fix");
  std::vector<PatternPtr *> Slots;
  collectPatternSlots(Node->ArmPats[ArmIndex], Slots);

  // Preorder means parents precede children: remember the smallest
  // (deepest) fixing slot by scanning all slots and keeping the one with
  // the smallest subtree.
  PatternPtr *Best = nullptr;
  unsigned BestSize = ~0u;
  for (PatternPtr *Slot : Slots) {
    if (OutOfBudget)
      break;
    if ((*Slot)->kind() == Pattern::Kind::Wild)
      continue;
    PatternPtr Old = std::move(*Slot);
    *Slot = makeWildPattern();
    bool Ok = oracleSays();
    *Slot = std::move(Old);
    note("pattern-fix", "probe", "wildcard subpattern of arm",
         Opts.Telemetry ? MatchPath.str() : std::string(), Ok,
         /*Probe=*/true);
    if (Ok && (*Slot)->size() < BestSize) {
      Best = Slot;
      BestSize = (*Slot)->size();
    }
  }
  if (!Best)
    return false;

  Suggestion S;
  S.Kind = ChangeKind::PatternFix;
  S.ViaTriage = true;
  S.TriageRemovals = TriageRemovalCount;
  S.Path = MatchPath;
  S.Description = "replace the pattern with _";
  S.PatternBefore = (*Best)->str();
  S.PatternAfter = "_";
  S.OriginalSize = (*Best)->size();
  S.ReplacementSize = 1;

  PatternPtr Old = std::move(*Best);
  *Best = makeWildPattern();
  S.ContextAfter = printDecl(*Work.Decls[MatchPath.DeclIndex]);
  S.Modified = captureModified();
  *Best = std::move(Old);

  Suggestions.push_back(std::move(S));
  return true;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

void Searcher::prepareSlice() {
  SliceResult.reset();
  Guide.reset();
  if (!Opts.ComputeSlice && !Opts.SliceGuided)
    return;

  TraceSpan Span(Opts.Trace, SpanKind::Slice, "searcher.slice");
  TraceLayerScope Layer("slice");
  analysis::ErrorSlice S =
      analysis::computeErrorSlice(Work, FocusDecl, Opts.Slice);
  if (Span.enabled()) {
    Span.attr("valid", S.Valid);
    if (S.Valid) {
      Span.attr("influence", int64_t(S.Influence.size()));
      Span.attr("core", int64_t(S.Core.size()));
      Span.attr("decl_nodes", int64_t(S.DeclNodes));
      Span.attr("minimize_checks", int64_t(S.MinimizeChecks));
      Span.attr("reaches_prefix", S.PrefixInfluence);
      Span.attr("reaches_header", S.DeclHeaderInfluence);
    }
  }
  if (!S.Valid)
    return; // Unsliceable failure: search runs unguided.

  if (Opts.Metric) {
    Opts.Metric->observe(metric::SliceSize, double(S.Influence.size()));
    if (S.DeclNodes)
      Opts.Metric->observe(metric::SlicePruneRatio,
                           1.0 - double(S.Influence.size()) /
                                     double(S.DeclNodes));
  }
  SliceResult = std::move(S);
  Guide = std::make_unique<analysis::SliceGuide>(Work, *SliceResult);
}

SearchOutput Searcher::run(const Program &Input) {
  SearchOutput Out;
  Suggestions.clear();
  OutOfBudget = false;
  SliceResult.reset();
  Guide.reset();

  TraceSpan RunSpan(Opts.Trace, SpanKind::Search, "searcher.run");
  if (RunSpan.enabled())
    RunSpan.attr("decls", int64_t(Input.Decls.size()));

  // Files that type-check bypass the system entirely (Figure 1).
  Work.Decls.clear();
  {
    TraceLayerScope Layer("initial-check");
    if (TheOracle.typechecks(Input)) {
      Out.InputTypechecks = true;
      return Out;
    }
  }

  // Prefix localization: grow the working program one declaration at a
  // time; the first prefix that fails pins the failing declaration.
  std::optional<unsigned> Failing;
  size_t LocalizationsSkipped = 0;
  if (Opts.SliceGuided) {
    // Guided mode pins the failing declaration with one internal
    // inference instead: declarations are checked in order and the
    // checker aborts at the first error, so a whole-program run failing
    // at declaration K proves prefix K passes and prefix K+1 fails --
    // exactly what the probe loop concludes, K+1 oracle calls later.
    TypecheckResult R = typecheckProgram(Input);
    if (!R.ok() && R.ErrorDeclIndex) {
      Failing = *R.ErrorDeclIndex;
      for (unsigned I = 0; I <= *Failing; ++I)
        Work.Decls.push_back(Input.Decls[I]->clone());
      LocalizationsSkipped = size_t(*Failing) + 1;
      for (size_t P = 0; P < LocalizationsSkipped && Opts.Telemetry; ++P)
        note("localize", "probe", "prefix pinned by internal inference", "",
             /*Verdict=*/P + 1 < LocalizationsSkipped, /*Probe=*/true,
             /*Batched=*/false, /*Pruned=*/true);
    }
  }
  if (!Failing) {
    TraceSpan LocalizeSpan(Opts.Trace, SpanKind::Localize,
                           "searcher.localize");
    TraceLayerScope Layer("localize");
    for (unsigned I = 0; I < Input.Decls.size(); ++I) {
      Work.Decls.push_back(Input.Decls[I]->clone());
      bool Ok = oracleSays();
      note("localize", "probe", "prefix through declaration", "", Ok,
           /*Probe=*/true);
      if (!Ok) {
        Failing = I;
        break;
      }
    }
    if (LocalizeSpan.enabled() && Failing)
      LocalizeSpan.attr("failing_decl", *Failing);
  }
  if (!Failing) {
    // Every prefix passes yet the whole fails -- impossible for a whole
    // program, defensive for budget exhaustion.
    Out.BudgetExhausted = OutOfBudget;
    return Out;
  }
  Out.FailingDecl = *Failing;
  FocusDecl = *Failing;

  const Decl &D = *Work.Decls[FocusDecl];
  if (D.kind() == Decl::Kind::Let && D.Rhs) {
    // Every oracle call from here on asks about Work = unchanged prefix +
    // edited FocusDecl; let accelerated oracles snapshot the prefix. The
    // prefix declarations are never mutated during the search (edits swap
    // nodes inside the focus declaration only), which is the seed's
    // validity requirement.
    TheOracle.seedPrefix(Work, FocusDecl);
    prepareSlice();
    tryDeclChanges(FocusDecl);
    searchExpr(NodePath(FocusDecl));
    TheOracle.clearPrefix();
  }
  // Type/exception declarations produce no searchable expressions; the
  // conventional message stands alone for those.

  if (Guide) {
    Out.SlicePrunedSubtrees = Guide->PrunedSubtrees;
    Out.SlicePrunedAdaptations = Guide->PrunedAdaptations;
    Out.SlicePrunedPermutationProbes = Guide->PrunedPermutationProbes;
    Out.SlicePrunedCandidates = Guide->PrunedCandidates;
  }
  Out.SlicePrunedLocalizations = LocalizationsSkipped;
  Out.Slice = std::move(SliceResult);

  if (RunSpan.enabled()) {
    RunSpan.attr("suggestions", int64_t(Suggestions.size()));
    RunSpan.attr("budget_exhausted", OutOfBudget);
    if (Out.Slice) {
      RunSpan.attr("slice.influence", int64_t(Out.Slice->Influence.size()));
      RunSpan.attr("slice.pruned_calls", int64_t(Out.slicePrunedCalls()));
    }
  }
  Out.Suggestions = std::move(Suggestions);
  Out.BudgetExhausted = OutOfBudget;
  return Out;
}
