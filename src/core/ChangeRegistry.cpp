//===- ChangeRegistry.cpp - User-extensible constructive changes ----------==//

#include "core/ChangeRegistry.h"

using namespace seminal;

void ChangeRegistry::add(std::string Name, ChangeGenerator Gen) {
  Entries.push_back(Entry{std::move(Name), std::move(Gen)});
}

void ChangeRegistry::generate(const caml::Expr &Node,
                              std::vector<CandidateChange> &Out) const {
  for (const Entry &E : Entries)
    E.Gen(Node, Out);
}

std::vector<std::string> ChangeRegistry::names() const {
  std::vector<std::string> Names;
  for (const Entry &E : Entries)
    Names.push_back(E.Name);
  return Names;
}
