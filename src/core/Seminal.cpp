//===- Seminal.cpp - Public facade implementation --------------------------==//

#include "core/Seminal.h"

#include "core/CheckpointedOracle.h"
#include "core/Ranker.h"

using namespace seminal;
using namespace seminal::caml;

std::string SeminalReport::bestMessage(const MessageOptions &Opts) const {
  if (SyntaxError)
    return "Syntax error: " + SyntaxError->str();
  if (InputTypechecks)
    return "No type errors.";
  if (Suggestions.empty())
    return "No suggestion found; the conventional message is:\n" +
           conventionalMessage();
  return renderSuggestion(Suggestions.front(), Opts);
}

std::string SeminalReport::conventionalMessage() const {
  return renderConventional(CheckerError);
}

const char *seminal::suggestionLayer(const Suggestion &S) {
  if (S.Kind == ChangeKind::Constructive && !S.Original)
    return "decl-change"; // declaration-header tweaks carry no subtree
  return changeKindName(S.Kind);
}

void seminal::fillRunReport(obs::RunReport &R, const SeminalReport &Report,
                            const obs::TelemetrySink *Telemetry,
                            double WallSeconds) {
  R.Parsed = !Report.SyntaxError.has_value();
  R.InputTypechecks = Report.InputTypechecks;
  R.BudgetExhausted = Report.BudgetExhausted;
  R.FailingDecl =
      Report.FailingDeclIndex ? int(*Report.FailingDeclIndex) : -1;

  R.Suggestions.clear();
  for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
    const Suggestion &S = Report.Suggestions[I];
    obs::SuggestionOutcome O;
    O.Rank = int(I) + 1;
    O.Kind = changeKindName(S.Kind);
    O.Layer = suggestionLayer(S);
    O.Description = S.Description;
    O.Path = S.Path.str();
    O.ViaTriage = S.ViaTriage;
    O.InSlice = S.InSlice;
    O.LikelyUnbound = S.LikelyUnboundVariable;
    O.Priority = S.Priority;
    O.OriginalSize = S.OriginalSize;
    O.ReplacementSize = S.ReplacementSize;
    R.Suggestions.push_back(std::move(O));
  }
  if (!R.Suggestions.empty()) {
    R.WinningLayer = R.Suggestions.front().Layer;
    R.WinningKind = R.Suggestions.front().Kind;
  }

  R.OracleCalls = Report.OracleCalls;
  R.InferenceRuns = Report.InferenceRuns;
  R.SlicePrunedCalls = Report.SlicePrunedCalls;
  R.WallSeconds = WallSeconds;
  R.Accel = Report.Accel;
  // Ledger: logical fields mirror the report by construction; the
  // timing fields (CpuNs, WallNs) are stamped by whoever measured the
  // run (Session::check, seminal_cli) after this returns.
  R.Cost.OracleCalls = Report.OracleCalls;
  R.Cost.InferenceRuns = Report.InferenceRuns;
  R.Cost.ArenaNodes = Report.Accel.ArenaNodes;
  R.Cost.ArenaBytes = Report.Accel.ArenaBytes;
  R.Cost.VerdictCacheHits = Report.Accel.CacheHits;
  R.Cost.WallNs = uint64_t(WallSeconds * 1e9);
  if (Telemetry)
    R.Layers = Telemetry->layerStats();
  if (Report.Trace)
    R.CallsByLayer = Report.Trace->CallsByLayer;

  if (Report.Slice && Report.Slice->Valid) {
    R.SliceValid = true;
    R.SliceInfluence = Report.Slice->Influence.size();
    R.SliceCore = Report.Slice->Core.size();
    R.SliceCorePaths.clear();
    R.SliceInfluencePaths.clear();
    for (const caml::NodePath &P : Report.Slice->Core)
      R.SliceCorePaths.push_back(P.str());
    for (const caml::NodePath &P : Report.Slice->Influence)
      R.SliceInfluencePaths.push_back(P.str());
  }
}

SeminalReport seminal::runSeminal(const Program &Prog,
                                  const SeminalOptions &Opts) {
  CheckpointedOracle TheOracle(Opts.Search.Accel);
  return runSeminalWithOracle(TheOracle, Prog, Opts);
}

SeminalReport seminal::runSeminalWithOracle(CheckpointedOracle &TheOracle,
                                            const Program &Prog,
                                            const SeminalOptions &Opts) {
  SeminalReport Report;

  // Per-request reset boundary: a long-lived oracle carries logical-call
  // and counter totals from earlier requests, but the budget and the
  // report are per-request quantities.
  TheOracle.resetCallCount();
  TheOracle.resetCounters();
  TheOracle.setInstrumentation(Opts.Search.Trace, Opts.Search.Metric);
  // One arena per run, shared by oracle and searcher: the searcher's
  // candidate overlays hit the oracle's interned base nodes, and
  // suggestion captures reuse both. Null when the arena is toggled off.
  std::shared_ptr<caml::AstArena> Arena = TheOracle.arena();
  Report.CheckerError = TheOracle.conventionalError(Prog);

  {
    // Root span: everything a run does nests under it, so the exporter's
    // timeline has a single top-level bar per runSeminal invocation.
    TraceSpan RootSpan(Opts.Search.Trace, SpanKind::Search, "seminal.run");
    if (RootSpan.enabled())
      RootSpan.attr("decls", int64_t(Prog.Decls.size()));

    Searcher S(TheOracle, Opts.Search, Arena);
    SearchOutput Out = S.run(Prog);

    Report.InputTypechecks = Out.InputTypechecks;
    Report.FailingDeclIndex = Out.FailingDecl;
    Report.BudgetExhausted = Out.BudgetExhausted;
    Report.SlicePrunedCalls = Out.slicePrunedCalls();
    Report.Slice = std::move(Out.Slice);
    Report.Suggestions = std::move(Out.Suggestions);
    {
      TraceSpan RankSpan(Opts.Search.Trace, SpanKind::Rank, "seminal.rank");
      if (RankSpan.enabled())
        RankSpan.attr("suggestions", int64_t(Report.Suggestions.size()));
      rankSuggestions(Report.Suggestions);
    }
    if (Report.Suggestions.size() > Opts.MaxSuggestions)
      Report.Suggestions.resize(Opts.MaxSuggestions);
    // Post-ranking outcome records: one per ranked suggestion, carrying
    // its final 1-based rank. layerStats() excludes these (the same
    // outcomes were already recorded under their issuing layer).
    if (Opts.Search.Telemetry) {
      for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
        const Suggestion &S = Report.Suggestions[I];
        obs::CandidateOutcome O;
        O.Layer = "suggestion";
        O.Kind = changeKindName(S.Kind);
        O.Description = S.Description;
        O.Path = S.Path.str();
        O.Verdict = true;
        O.Rank = int(I) + 1;
        Opts.Search.Telemetry->record(std::move(O));
      }
    }
  }
  Report.OracleCalls = TheOracle.logicalCalls();
  Report.InferenceRuns = TheOracle.inferenceRuns();
  Report.Accel = TheOracle.counters();
  if (Opts.Search.Trace)
    Report.Trace = Opts.Search.Trace->summarize();
  return Report;
}

SeminalReport seminal::runSeminalOnSource(const std::string &Source,
                                          const SeminalOptions &Opts) {
  ParseResult R = parseProgram(Source);
  if (!R.ok()) {
    SeminalReport Report;
    Report.SyntaxError = R.Error;
    return Report;
  }
  return runSeminal(*R.Prog, Opts);
}
