//===- Seminal.cpp - Public facade implementation --------------------------==//

#include "core/Seminal.h"

#include "core/CheckpointedOracle.h"
#include "core/Ranker.h"

using namespace seminal;
using namespace seminal::caml;

std::string SeminalReport::bestMessage(const MessageOptions &Opts) const {
  if (SyntaxError)
    return "Syntax error: " + SyntaxError->str();
  if (InputTypechecks)
    return "No type errors.";
  if (Suggestions.empty())
    return "No suggestion found; the conventional message is:\n" +
           conventionalMessage();
  return renderSuggestion(Suggestions.front(), Opts);
}

std::string SeminalReport::conventionalMessage() const {
  return renderConventional(CheckerError);
}

SeminalReport seminal::runSeminal(const Program &Prog,
                                  const SeminalOptions &Opts) {
  SeminalReport Report;

  CheckpointedOracle TheOracle(Opts.Search.Accel);
  Report.CheckerError = TheOracle.conventionalError(Prog);

  Searcher S(TheOracle, Opts.Search);
  SearchOutput Out = S.run(Prog);

  Report.InputTypechecks = Out.InputTypechecks;
  Report.FailingDeclIndex = Out.FailingDecl;
  Report.BudgetExhausted = Out.BudgetExhausted;
  Report.Suggestions = std::move(Out.Suggestions);
  rankSuggestions(Report.Suggestions);
  if (Report.Suggestions.size() > Opts.MaxSuggestions)
    Report.Suggestions.resize(Opts.MaxSuggestions);
  Report.OracleCalls = TheOracle.logicalCalls();
  Report.InferenceRuns = TheOracle.inferenceRuns();
  Report.Accel = TheOracle.counters();
  return Report;
}

SeminalReport seminal::runSeminalOnSource(const std::string &Source,
                                          const SeminalOptions &Opts) {
  ParseResult R = parseProgram(Source);
  if (!R.ok()) {
    SeminalReport Report;
    Report.SyntaxError = R.Error;
    return Report;
  }
  return runSeminal(*R.Prog, Opts);
}
