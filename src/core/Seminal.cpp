//===- Seminal.cpp - Public facade implementation --------------------------==//

#include "core/Seminal.h"

#include "core/CheckpointedOracle.h"
#include "core/Ranker.h"

using namespace seminal;
using namespace seminal::caml;

std::string SeminalReport::bestMessage(const MessageOptions &Opts) const {
  if (SyntaxError)
    return "Syntax error: " + SyntaxError->str();
  if (InputTypechecks)
    return "No type errors.";
  if (Suggestions.empty())
    return "No suggestion found; the conventional message is:\n" +
           conventionalMessage();
  return renderSuggestion(Suggestions.front(), Opts);
}

std::string SeminalReport::conventionalMessage() const {
  return renderConventional(CheckerError);
}

SeminalReport seminal::runSeminal(const Program &Prog,
                                  const SeminalOptions &Opts) {
  SeminalReport Report;

  CheckpointedOracle TheOracle(Opts.Search.Accel);
  TheOracle.setInstrumentation(Opts.Search.Trace, Opts.Search.Metric);
  Report.CheckerError = TheOracle.conventionalError(Prog);

  {
    // Root span: everything a run does nests under it, so the exporter's
    // timeline has a single top-level bar per runSeminal invocation.
    TraceSpan RootSpan(Opts.Search.Trace, SpanKind::Search, "seminal.run");
    if (RootSpan.enabled())
      RootSpan.attr("decls", int64_t(Prog.Decls.size()));

    Searcher S(TheOracle, Opts.Search);
    SearchOutput Out = S.run(Prog);

    Report.InputTypechecks = Out.InputTypechecks;
    Report.FailingDeclIndex = Out.FailingDecl;
    Report.BudgetExhausted = Out.BudgetExhausted;
    Report.SlicePrunedCalls = Out.slicePrunedCalls();
    Report.Slice = std::move(Out.Slice);
    Report.Suggestions = std::move(Out.Suggestions);
    {
      TraceSpan RankSpan(Opts.Search.Trace, SpanKind::Rank, "seminal.rank");
      if (RankSpan.enabled())
        RankSpan.attr("suggestions", int64_t(Report.Suggestions.size()));
      rankSuggestions(Report.Suggestions);
    }
    if (Report.Suggestions.size() > Opts.MaxSuggestions)
      Report.Suggestions.resize(Opts.MaxSuggestions);
  }
  Report.OracleCalls = TheOracle.logicalCalls();
  Report.InferenceRuns = TheOracle.inferenceRuns();
  Report.Accel = TheOracle.counters();
  if (Opts.Search.Trace)
    Report.Trace = Opts.Search.Trace->summarize();
  return Report;
}

SeminalReport seminal::runSeminalOnSource(const std::string &Source,
                                          const SeminalOptions &Opts) {
  ParseResult R = parseProgram(Source);
  if (!R.ok()) {
    SeminalReport Report;
    Report.SyntaxError = R.Error;
    return Report;
  }
  return runSeminal(*R.Prog, Opts);
}
