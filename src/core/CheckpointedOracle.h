//===- CheckpointedOracle.h - Accelerated type-check oracle -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle acceleration layer. The searcher only ever edits the single
/// failing declaration found by prefix localization (Section 2.1), so of
/// the up-to-200,000 oracle calls a search may issue, almost all ask about
/// programs that differ from each other in exactly one declaration. This
/// oracle exploits that three ways, preserving black-box semantics
/// bit-for-bit (same verdicts, same logical-call counts):
///
///   1. Prefix-environment checkpointing -- after seedPrefix(), the typing
///      environment of the unedited declarations is inferred once and
///      reused; each call re-infers only the edited declaration, rolling
///      back unification side effects through a TypeTrail.
///   2. Structural verdict cache -- verdicts are memoized by the edited
///      declaration's structural hash (triage and the enumerator's lazy
///      change collections regenerate identical candidates, e.g. wildcard
///      placements revisited across phases); hash hits are confirmed with
///      a deep equality check, so a collision can never flip a verdict.
///      With the hash-consing arena enabled (OracleAccelOptions::Arena,
///      minicaml/Arena.h) the cache is keyed on interned node ids
///      instead: a probe is one integer lookup with no stored clones, and
///      batch candidates are built as path-copied overlays over the
///      interned base declaration rather than cloned programs, so two
///      candidates collapsing to the same tree are found by comparing two
///      integers (counted as WaveCollapsed). Verdicts and hit/miss
///      accounting are bit-identical to the hash-keyed path.
///   3. Batched parallel evaluation -- typecheckBatch() fans independent
///      candidates out over a thread pool, one inference checkpoint per
///      worker, collecting verdicts rank-stably in input order.
///
/// Two further fast paths cover the calls issued *before* seedPrefix():
/// the searcher's prefix-localization loop ("do the first k declarations
/// type-check?", k growing by one per call) is served by extending a
/// persistent environment one committed declaration at a time instead of
/// re-inferring the prefix from scratch each round -- and the grown
/// environment is then adopted as the seed checkpoint, making seeding
/// free. The initial whole-program check reuses the conventionalError()
/// verdict (confirmed by deep equality) instead of running inference
/// twice on the same program.
///
/// Every layer toggles independently via OracleAccelOptions so the
/// ablation benches can attribute savings.
///
/// Server mode (setSessionRetention) keeps the oracle alive across
/// requests: instead of discarding the seed checkpoint, the id-keyed
/// verdict cache and the conventional-error memo at clearPrefix(), they
/// are stashed keyed on the prefix's interned declaration ids and
/// re-adopted when a later request seeds an id-identical prefix. An
/// edit-resubmit from an editor then costs near-zero inference: the
/// localization walk is answered from the retained known-good prefix
/// (SessionPrefixHits), seeding re-installs the retained environment
/// (SessionSeedAdoptions), candidate verdicts replay from the retained
/// cache (SessionVerdictReuses), and the conventional message replays
/// from a source-prefix memo (SessionConvMemoHits). Verdicts and ranked
/// suggestions stay bit-identical to a cold run; only the work changes.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_CHECKPOINTEDORACLE_H
#define SEMINAL_CORE_CHECKPOINTEDORACLE_H

#include "core/Oracle.h"
#include "minicaml/Arena.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace seminal {

/// Drop-in replacement for CamlOracle with the acceleration layer.
class CheckpointedOracle : public Oracle {
public:
  /// \p Arena may be shared with the searcher (so suggestion overlays and
  /// verdict-cache keys live in one store); when null and Accel.Arena is
  /// set the oracle creates a private arena. The arena outlives every
  /// seedPrefix/clearPrefix cycle -- interned nodes are immortal, which
  /// is what lets a future daemon share them across requests.
  explicit CheckpointedOracle(const OracleAccelOptions &Accel = {},
                              std::shared_ptr<caml::AstArena> Arena = nullptr);
  ~CheckpointedOracle() override;

  /// The hash-consing arena (null when the layer is disabled).
  const std::shared_ptr<caml::AstArena> &arena() const { return TheArena; }

  // Oracle interface --------------------------------------------------------
  std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) override;
  void seedPrefix(const caml::Program &Prog, unsigned EditedDecl) override;
  void clearPrefix() override;
  bool supportsBatch() const override { return Accel.ParallelBatch; }
  size_t inferenceRuns() const override { return Counters.inferenceRuns(); }

  /// Layer-by-layer instrumentation (hits, misses, saved work).
  const AccelCounters &counters() const { return Counters; }
  void resetCounters() { Counters.reset(); }

  // Session retention (server mode) -----------------------------------------
  /// Keep warm state across seedPrefix/clearPrefix cycles: the seed
  /// checkpoint, worker checkpoints, the id-keyed verdict cache and the
  /// conventional-error memo survive into the next request and are
  /// re-adopted when its prefix interns to the same declaration ids.
  /// Requires the arena, checkpoint and verdict-cache layers; toggle
  /// between requests, never mid-request. Turning it off drops all
  /// retained state.
  void setSessionRetention(bool Enabled);
  bool sessionRetention() const { return SessionRetention; }

  /// Announces the source text the next conventionalError() call's
  /// program was parsed from. With session retention on, a request whose
  /// source is byte-identical up to the start of the declaration after
  /// the previous failure (and whose error-region parse is span- and
  /// structure-identical) replays the memoized diagnostic without
  /// inference. The caller must pass the exact text \p Prog came from.
  void primeConventional(std::string Source);

  /// Drops every piece of retained session state (the eviction path:
  /// the server calls this before clearing or swapping the arena, since
  /// retained verdicts are keyed on arena ids).
  void resetSession();

protected:
  bool typecheckImpl(const caml::Program &Prog) override;
  std::optional<std::string> typeOfNodeImpl(const caml::Program &Prog,
                                            const caml::Expr *Node) override;
  std::vector<bool>
  typecheckBatchImpl(const caml::Program &Base, const caml::NodePath &Path,
                     const std::vector<const caml::Expr *> &Replacements)
      override;

private:
  /// The copy-free batch: candidates become arena overlays of the interned
  /// base declaration; only distinct verdict-cache misses are materialized
  /// (serially, before fan-out) for inference.
  std::vector<bool>
  typecheckBatchArena(const caml::Program &Base, const caml::NodePath &Path,
                      const std::vector<const caml::Expr *> &Replacements);

  /// Mirrors arena occupancy into Counters and the batch-span fields.
  void syncArenaStats();
  /// One memoized verdict; the clone confirms hash hits structurally.
  struct CacheEntry {
    caml::DeclPtr EditedDecl;
    bool Typechecks = false;
  };

  /// True when \p Prog is "seed prefix + one edited let declaration".
  bool matchesSeed(const caml::Program &Prog) const;

  /// Looks up the verdict for \p D (the edited declaration); returns
  /// nullptr on miss. \p H must be hashDecl(D).
  const CacheEntry *cacheLookup(uint64_t H, const caml::Decl &D) const;
  void cacheInsert(uint64_t H, const caml::Decl &D, bool Verdict);

  /// Runs inference for "prefix + \p D", via the checkpoint when
  /// available, else over \p Fallback (the full program). Bumps the
  /// inference counters.
  bool inferEditedDecl(const caml::Decl &D, const caml::Program &Fallback);

  /// The checkpoint for \p Worker, built on demand (worker 0 reuses the
  /// seed checkpoint; others infer the stored prefix clone once each).
  caml::InferenceCheckpoint *workerCheckpoint(unsigned Worker);

  /// Recognizes the prefix-localization pattern (the grown prefix plus
  /// exactly one new declaration, or a fresh single-declaration start) and
  /// serves the verdict by extending the growth environment. \returns true
  /// with \p Verdict filled when the call was handled.
  bool tryGrowthPath(const caml::Program &Prog, bool &Verdict);
  bool growthExtend(const caml::Decl &D, bool &Verdict);
  void resetGrowth();

  /// Serves a localization probe from the previous request's retained
  /// prefix knowledge: probes wholly inside the retained known-good
  /// prefix are answered true without inference, the retained failing
  /// declaration is answered false, and a novel last declaration turns
  /// the retained checkpoint into a growth environment so the rest of
  /// the walk runs incrementally. \returns true when handled.
  bool trySessionProbe(const caml::Program &Prog, bool &Verdict);
  /// Moves the live seed state (checkpoint, prefix clone, worker
  /// checkpoints, verdict cache) into Retained, keyed on the seed's
  /// interned prefix ids; called from clearPrefix in session mode.
  void stashSessionState();
  /// Moves the retained verdict cache and worker checkpoints back into
  /// the live seed state (the adopting seed's prefix ids matched).
  void adoptRetainedCaches();
  /// True when the retained conventional-error memo provably applies to
  /// the program the current source text parsed to.
  bool convMemoApplies(const caml::Program &Prog) const;

  OracleAccelOptions Accel;
  AccelCounters Counters;

  // Pre-seed state ----------------------------------------------------------
  /// Environment grown one committed declaration at a time while the
  /// searcher localizes the failing declaration; matched structurally
  /// (owned clones, so stale state can never alias freed declarations)
  /// and adopted by seedPrefix when it covers exactly the seed prefix.
  std::unique_ptr<caml::InferenceCheckpoint> Growth;
  std::vector<caml::DeclPtr> GrowthClones;
  /// Memo of the last conventionalError() verdict; serves the searcher's
  /// initial whole-program check without a second inference run.
  caml::Program ConvClone;
  bool HasConvMemo = false;
  bool ConvOk = false;

  // Seed state (valid between seedPrefix and clearPrefix) -------------------
  bool Seeded = false;
  unsigned EditedIndex = 0;
  std::vector<const caml::Decl *> PrefixIdentity; ///< Fast-path pointers.
  caml::Program PrefixClone; ///< For building worker checkpoints.
  std::unique_ptr<caml::InferenceCheckpoint> Checkpoint;
  std::vector<std::unique_ptr<caml::InferenceCheckpoint>> WorkerCheckpoints;
  std::unordered_map<uint64_t, std::vector<CacheEntry>> VerdictCache;

  /// Arena-keyed verdict cache: canonical declaration id -> flags. Id
  /// equality is structural equality, so no confirming deep compare and
  /// no stored clones. Cleared with the prefix (verdicts depend on the
  /// prefix environment); the arena itself persists. In session mode the
  /// map is stashed at clearPrefix and re-adopted by a later request
  /// whose prefix interns to the same ids; RetainedBit marks entries
  /// that crossed a request boundary so reuse is countable.
  static constexpr uint8_t VerdictBit = 1;  ///< The candidate type-checks.
  static constexpr uint8_t RetainedBit = 2; ///< From an earlier request.
  std::shared_ptr<caml::AstArena> TheArena;
  std::unordered_map<caml::AstArena::DeclId, uint8_t> VerdictById;

  // Session retention state (server mode) ------------------------------
  bool SessionRetention = false;
  /// Seed state stashed at clearPrefix, keyed on the prefix's interned
  /// ids. Everything here is conditioned on exactly that prefix: the
  /// checkpoint and worker checkpoints snapshot its environment, the
  /// verdict flags answer "does this edited declaration type-check after
  /// it", and FailingId is the declaration known to fail on top of it.
  struct RetainedSeed {
    bool Valid = false;
    std::vector<caml::AstArena::DeclId> PrefixIds;
    caml::AstArena::DeclId FailingId = caml::AstArena::InvalidId;
    std::unique_ptr<caml::InferenceCheckpoint> Checkpoint;
    caml::Program PrefixClone;
    std::vector<std::unique_ptr<caml::InferenceCheckpoint>> WorkerCheckpoints;
    std::unordered_map<caml::AstArena::DeclId, uint8_t> Verdicts;
  };
  RetainedSeed Retained;

  /// Cross-request conventional-error memo. Valid when the next source
  /// is byte-identical on [0, PrefixEnd) -- PrefixEnd is the start of
  /// the declaration after the failure (or the whole file when the
  /// failure was in the last declaration) -- and the re-parse of decls
  /// 0..ErrIdx is span- and structure-identical to Clones. The checker
  /// aborts at the first error, so nothing past PrefixEnd can change the
  /// diagnostic (Infer.h's ErrorDeclIndex contract).
  struct RetainedConv {
    bool Valid = false;
    std::string Source;
    size_t PrefixEnd = 0;
    unsigned ErrIdx = 0;
    std::vector<caml::DeclPtr> Clones;
    std::optional<caml::TypeError> Error;
  };
  RetainedConv SessionConv;
  std::string CurrentSource; ///< From primeConventional, one request.
  bool HaveCurrentSource = false;

  /// The live seed's interned identity (prefix ids + failing decl id),
  /// computed once at seedPrefix in session mode for the later stash.
  std::vector<caml::AstArena::DeclId> SeedPrefixIds;
  caml::AstArena::DeclId SeedFailingId = caml::AstArena::InvalidId;

  /// Per-localization-walk intern memo: the searcher's Work program
  /// appends one declaration per probe and never mutates earlier ones,
  /// so (pointer, id) pairs make each probe intern exactly one new tree
  /// instead of the whole prefix. Cleared at every request boundary
  /// (primeConventional/conventionalError/clearPrefix) so pointers never
  /// dangle across programs.
  std::vector<std::pair<const caml::Decl *, caml::AstArena::DeclId>> WalkIds;

  std::unique_ptr<ThreadPool> Pool; ///< Created on first batch.
};

} // namespace seminal

#endif // SEMINAL_CORE_CHECKPOINTEDORACLE_H
