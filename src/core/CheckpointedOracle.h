//===- CheckpointedOracle.h - Accelerated type-check oracle -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle acceleration layer. The searcher only ever edits the single
/// failing declaration found by prefix localization (Section 2.1), so of
/// the up-to-200,000 oracle calls a search may issue, almost all ask about
/// programs that differ from each other in exactly one declaration. This
/// oracle exploits that three ways, preserving black-box semantics
/// bit-for-bit (same verdicts, same logical-call counts):
///
///   1. Prefix-environment checkpointing -- after seedPrefix(), the typing
///      environment of the unedited declarations is inferred once and
///      reused; each call re-infers only the edited declaration, rolling
///      back unification side effects through a TypeTrail.
///   2. Structural verdict cache -- verdicts are memoized by the edited
///      declaration's structural hash (triage and the enumerator's lazy
///      change collections regenerate identical candidates, e.g. wildcard
///      placements revisited across phases); hash hits are confirmed with
///      a deep equality check, so a collision can never flip a verdict.
///      With the hash-consing arena enabled (OracleAccelOptions::Arena,
///      minicaml/Arena.h) the cache is keyed on interned node ids
///      instead: a probe is one integer lookup with no stored clones, and
///      batch candidates are built as path-copied overlays over the
///      interned base declaration rather than cloned programs, so two
///      candidates collapsing to the same tree are found by comparing two
///      integers (counted as WaveCollapsed). Verdicts and hit/miss
///      accounting are bit-identical to the hash-keyed path.
///   3. Batched parallel evaluation -- typecheckBatch() fans independent
///      candidates out over a thread pool, one inference checkpoint per
///      worker, collecting verdicts rank-stably in input order.
///
/// Two further fast paths cover the calls issued *before* seedPrefix():
/// the searcher's prefix-localization loop ("do the first k declarations
/// type-check?", k growing by one per call) is served by extending a
/// persistent environment one committed declaration at a time instead of
/// re-inferring the prefix from scratch each round -- and the grown
/// environment is then adopted as the seed checkpoint, making seeding
/// free. The initial whole-program check reuses the conventionalError()
/// verdict (confirmed by deep equality) instead of running inference
/// twice on the same program.
///
/// Every layer toggles independently via OracleAccelOptions so the
/// ablation benches can attribute savings.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_CHECKPOINTEDORACLE_H
#define SEMINAL_CORE_CHECKPOINTEDORACLE_H

#include "core/Oracle.h"
#include "minicaml/Arena.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace seminal {

/// Drop-in replacement for CamlOracle with the acceleration layer.
class CheckpointedOracle : public Oracle {
public:
  /// \p Arena may be shared with the searcher (so suggestion overlays and
  /// verdict-cache keys live in one store); when null and Accel.Arena is
  /// set the oracle creates a private arena. The arena outlives every
  /// seedPrefix/clearPrefix cycle -- interned nodes are immortal, which
  /// is what lets a future daemon share them across requests.
  explicit CheckpointedOracle(const OracleAccelOptions &Accel = {},
                              std::shared_ptr<caml::AstArena> Arena = nullptr);
  ~CheckpointedOracle() override;

  /// The hash-consing arena (null when the layer is disabled).
  const std::shared_ptr<caml::AstArena> &arena() const { return TheArena; }

  // Oracle interface --------------------------------------------------------
  std::optional<caml::TypeError>
  conventionalError(const caml::Program &Prog) override;
  void seedPrefix(const caml::Program &Prog, unsigned EditedDecl) override;
  void clearPrefix() override;
  bool supportsBatch() const override { return Accel.ParallelBatch; }
  size_t inferenceRuns() const override { return Counters.inferenceRuns(); }

  /// Layer-by-layer instrumentation (hits, misses, saved work).
  const AccelCounters &counters() const { return Counters; }
  void resetCounters() { Counters.reset(); }

protected:
  bool typecheckImpl(const caml::Program &Prog) override;
  std::optional<std::string> typeOfNodeImpl(const caml::Program &Prog,
                                            const caml::Expr *Node) override;
  std::vector<bool>
  typecheckBatchImpl(const caml::Program &Base, const caml::NodePath &Path,
                     const std::vector<const caml::Expr *> &Replacements)
      override;

private:
  /// The copy-free batch: candidates become arena overlays of the interned
  /// base declaration; only distinct verdict-cache misses are materialized
  /// (serially, before fan-out) for inference.
  std::vector<bool>
  typecheckBatchArena(const caml::Program &Base, const caml::NodePath &Path,
                      const std::vector<const caml::Expr *> &Replacements);

  /// Mirrors arena occupancy into Counters and the batch-span fields.
  void syncArenaStats();
  /// One memoized verdict; the clone confirms hash hits structurally.
  struct CacheEntry {
    caml::DeclPtr EditedDecl;
    bool Typechecks = false;
  };

  /// True when \p Prog is "seed prefix + one edited let declaration".
  bool matchesSeed(const caml::Program &Prog) const;

  /// Looks up the verdict for \p D (the edited declaration); returns
  /// nullptr on miss. \p H must be hashDecl(D).
  const CacheEntry *cacheLookup(uint64_t H, const caml::Decl &D) const;
  void cacheInsert(uint64_t H, const caml::Decl &D, bool Verdict);

  /// Runs inference for "prefix + \p D", via the checkpoint when
  /// available, else over \p Fallback (the full program). Bumps the
  /// inference counters.
  bool inferEditedDecl(const caml::Decl &D, const caml::Program &Fallback);

  /// The checkpoint for \p Worker, built on demand (worker 0 reuses the
  /// seed checkpoint; others infer the stored prefix clone once each).
  caml::InferenceCheckpoint *workerCheckpoint(unsigned Worker);

  /// Recognizes the prefix-localization pattern (the grown prefix plus
  /// exactly one new declaration, or a fresh single-declaration start) and
  /// serves the verdict by extending the growth environment. \returns true
  /// with \p Verdict filled when the call was handled.
  bool tryGrowthPath(const caml::Program &Prog, bool &Verdict);
  bool growthExtend(const caml::Decl &D, bool &Verdict);
  void resetGrowth();

  OracleAccelOptions Accel;
  AccelCounters Counters;

  // Pre-seed state ----------------------------------------------------------
  /// Environment grown one committed declaration at a time while the
  /// searcher localizes the failing declaration; matched structurally
  /// (owned clones, so stale state can never alias freed declarations)
  /// and adopted by seedPrefix when it covers exactly the seed prefix.
  std::unique_ptr<caml::InferenceCheckpoint> Growth;
  std::vector<caml::DeclPtr> GrowthClones;
  /// Memo of the last conventionalError() verdict; serves the searcher's
  /// initial whole-program check without a second inference run.
  caml::Program ConvClone;
  bool HasConvMemo = false;
  bool ConvOk = false;

  // Seed state (valid between seedPrefix and clearPrefix) -------------------
  bool Seeded = false;
  unsigned EditedIndex = 0;
  std::vector<const caml::Decl *> PrefixIdentity; ///< Fast-path pointers.
  caml::Program PrefixClone; ///< For building worker checkpoints.
  std::unique_ptr<caml::InferenceCheckpoint> Checkpoint;
  std::vector<std::unique_ptr<caml::InferenceCheckpoint>> WorkerCheckpoints;
  std::unordered_map<uint64_t, std::vector<CacheEntry>> VerdictCache;

  /// Arena-keyed verdict cache: canonical declaration id -> verdict. Id
  /// equality is structural equality, so no confirming deep compare and
  /// no stored clones. Cleared with the prefix (verdicts depend on the
  /// prefix environment); the arena itself persists.
  std::shared_ptr<caml::AstArena> TheArena;
  std::unordered_map<caml::AstArena::DeclId, bool> VerdictById;

  std::unique_ptr<ThreadPool> Pool; ///< Created on first batch.
};

} // namespace seminal

#endif // SEMINAL_CORE_CHECKPOINTEDORACLE_H
