//===- Message.cpp - Rendering suggestions ---------------------------------==//

#include "core/Message.h"

#include "minicaml/Printer.h"
#include "support/StrUtil.h"

#include <sstream>

using namespace seminal;
using namespace seminal::caml;

std::string seminal::renderSuggestion(const Suggestion &S,
                                      const MessageOptions &Opts) {
  std::ostringstream OS;

  if (S.ViaTriage) {
    OS << "Your code has several type errors. If you ignore the "
          "surrounding code";
    if (S.TriageRemovals > 0)
      OS << " (" << S.TriageRemovals << " subexpression(s) set aside)";
    OS << ", ";
  }

  if (S.Kind == ChangeKind::PatternFix) {
    OS << (S.ViaTriage ? "try" : "Try") << " replacing the pattern "
       << S.PatternBefore << " with " << S.PatternAfter;
  } else if (!S.Original || !S.Replacement) {
    // Declaration-header change (toggle rec, curry/tuple parameters).
    OS << (S.ViaTriage ? "try" : "Try") << " this change: " << S.Description;
  } else {
    // Adaptations and removals both present as the paper's "[[...]]
    // of type T" form (Section 2.3); an adaptation additionally notes
    // that the expression is fine on its own.
    bool AsHole = S.Kind == ChangeKind::Adaptation ||
                  S.Kind == ChangeKind::Removal;
    OS << (S.ViaTriage ? "try" : "Try") << " replacing\n    "
       << ellipsize(printExpr(*S.Original), Opts.MaxContextLength)
       << "\nwith\n    "
       << (AsHole ? "[[...]]"
                  : ellipsize(printExpr(*S.Replacement),
                              Opts.MaxContextLength));
    if (S.ReplacementType)
      OS << "\nof type " << *S.ReplacementType;
    if (S.Kind == ChangeKind::Adaptation)
      OS << "\n(the expression type-checks on its own; only its context "
            "rejects it)";
  }

  if (!S.ContextAfter.empty())
    OS << "\nwithin context\n    "
       << ellipsize(S.ContextAfter, Opts.MaxContextLength);

  if (S.LikelyUnboundVariable && S.Original)
    OS << "\n(note: the variable " << printExpr(*S.Original)
       << " appears to be unbound; removing it helps but keeping its value "
          "does not)";

  if (S.ViaTriage)
    OS << "\n(other type errors remain; this change alone will not make "
          "the program type-check)";

  return OS.str();
}

std::string
seminal::renderConventional(const std::optional<TypeError> &Error) {
  if (!Error)
    return "No type errors.";
  std::ostringstream OS;
  OS << Error->Span.Begin.str() << ": " << Error->Message;
  return OS.str();
}
