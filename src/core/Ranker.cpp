//===- Ranker.cpp - Ordering successful changes ----------------------------==//

#include "core/Ranker.h"

#include "minicaml/Printer.h"

#include <algorithm>
#include <cstdlib>
#include <set>

using namespace seminal;
using namespace seminal::caml;

SuggestionScore seminal::scoreSuggestion(const Suggestion &S) {
  long KindRank = 0;
  switch (S.Kind) {
  case ChangeKind::Constructive:
  case ChangeKind::PatternFix:
    KindRank = 0;
    break;
  case ChangeKind::Adaptation:
    KindRank = 1;
    break;
  case ChangeKind::Removal:
    KindRank = 2;
    break;
  }

  // Triaged suggestions rank below all untriaged ones.
  long Primary = S.ViaTriage ? 3 + KindRank : KindRank;

  // Among triaged suggestions, prefer fewer removed siblings.
  long Secondary = S.ViaTriage ? S.TriageRemovals : 0;

  // Size preference: small for constructive/removal, large for adaptation.
  long Size = S.Kind == ChangeKind::Adaptation ? -long(S.OriginalSize)
                                               : long(S.OriginalSize);

  // Idiom-specific priority nudge (CandidateChange::Priority).
  long Priority = S.Priority;

  // Preservation: a change that keeps the original subtree's material
  // (swapping arguments) reads better than one that deletes part of it
  // (dropping an argument); wildcard-introducing edits sit in between.
  long Preservation =
      S.Kind == ChangeKind::Constructive
          ? std::labs(long(S.OriginalSize) - long(S.ReplacementSize))
          : 0;

  // In-slice boost: when a slice was computed, a change at a node of the
  // minimized error core beats an otherwise-tied change elsewhere. With
  // no slice every suggestion has InSlice == false and this component is
  // constant, leaving the order untouched.
  long SliceBoost = S.InSlice ? 0 : 1;

  // Right-bias tiebreak: prefer deeper-right positions (the paper's
  // function-application heuristic). Encoded as the negated final step.
  long RightBias = S.Path.Steps.empty() ? 0 : -long(S.Path.Steps.back());

  return SuggestionScore{Primary,      Secondary,  Size,     Priority,
                         Preservation, SliceBoost, RightBias};
}

void seminal::rankSuggestions(std::vector<Suggestion> &Suggestions) {
  std::stable_sort(Suggestions.begin(), Suggestions.end(),
                   [](const Suggestion &A, const Suggestion &B) {
                     return scoreSuggestion(A) < scoreSuggestion(B);
                   });

  // Deduplicate: identical location + identical replacement rendering.
  std::set<std::string> Seen;
  std::vector<Suggestion> Unique;
  for (auto &S : Suggestions) {
    std::string Key = S.Path.str() + "|" +
                      (S.Replacement ? printExpr(*S.Replacement) : "") + "|" +
                      S.PatternAfter + "|" + S.Description;
    if (!Seen.insert(Key).second)
      continue;
    Unique.push_back(std::move(S));
  }
  Suggestions = std::move(Unique);
}
