//===- CheckpointedOracle.cpp - Accelerated type-check oracle --------------==//

#include "core/CheckpointedOracle.h"

#include "minicaml/Hash.h"

#include <cassert>
#include <chrono>

using namespace seminal;
using namespace seminal::caml;

CheckpointedOracle::CheckpointedOracle(const OracleAccelOptions &Accel,
                                       std::shared_ptr<AstArena> Arena)
    : Accel(Accel), TheArena(std::move(Arena)) {
  if (this->Accel.Arena && !TheArena)
    TheArena = std::make_shared<AstArena>();
  if (!this->Accel.Arena)
    TheArena.reset(); // The toggle wins over an injected arena.
}

void CheckpointedOracle::syncArenaStats() {
  const AstArena::Stats &S = TheArena->stats();
  Counters.ArenaNodes = S.Nodes;
  Counters.ArenaHits = S.Hits;
  Counters.ArenaBytes = S.Bytes;
  LastArenaNodes = S.Nodes;
  LastArenaHits = S.Hits;
  LastArenaBytes = S.Bytes;
}

CheckpointedOracle::~CheckpointedOracle() = default;

void CheckpointedOracle::setSessionRetention(bool Enabled) {
  // Retention needs the arena (ids key the stash), the checkpoint layer
  // (the stash *is* a checkpoint) and the verdict cache (what the stash
  // carries). Without them the toggle is inert rather than an error so a
  // server built with ablated acceleration still runs, just cold.
  SessionRetention =
      Enabled && TheArena && Accel.Checkpoint && Accel.VerdictCache;
  if (!SessionRetention)
    resetSession();
}

void CheckpointedOracle::primeConventional(std::string Source) {
  CurrentSource = std::move(Source);
  HaveCurrentSource = true;
  WalkIds.clear();
}

void CheckpointedOracle::resetSession() {
  Retained = RetainedSeed();
  SessionConv = RetainedConv();
  CurrentSource.clear();
  HaveCurrentSource = false;
  SeedPrefixIds.clear();
  SeedFailingId = AstArena::InvalidId;
  WalkIds.clear();
  resetGrowth();
  ConvClone = Program();
  HasConvMemo = false;
  ConvOk = false;
}

bool CheckpointedOracle::convMemoApplies(const Program &Prog) const {
  const RetainedConv &M = SessionConv;
  // PrefixEnd == 0 means the memoized program carried no usable spans;
  // never match on it (an empty byte prefix would match everything).
  if (M.PrefixEnd == 0 || CurrentSource.size() < M.PrefixEnd ||
      Prog.Decls.size() <= M.ErrIdx)
    return false;
  if (CurrentSource.compare(0, M.PrefixEnd, M.Source, 0, M.PrefixEnd) != 0)
    return false;
  // Identical bytes up to the start of the declaration after the failure
  // mean the error region re-lexed identically; the parse of its last
  // declaration could still differ through lookahead into the changed
  // suffix, so confirm span + structure. Equal spans over equal bytes
  // pin the inner spans too, making the replayed diagnostic
  // bit-identical to a fresh inference run.
  for (unsigned I = 0; I <= M.ErrIdx; ++I) {
    const Decl &A = *Prog.Decls[I];
    const Decl &B = *M.Clones[I];
    if (A.Span.Begin.Offset != B.Span.Begin.Offset ||
        A.Span.EndOffset != B.Span.EndOffset || !A.equals(B))
      return false;
  }
  return true;
}

std::optional<TypeError>
CheckpointedOracle::conventionalError(const Program &Prog) {
  WalkIds.clear(); // Request boundary: Work pointers from the previous
                   // run's localization walk are gone.
  // Session fast path: an edit past the failing declaration cannot change
  // the diagnostic (the checker aborts at the first error), so replay it.
  if (SessionRetention && SessionConv.Valid && HaveCurrentSource &&
      convMemoApplies(Prog)) {
    ++Counters.SessionConvMemoHits;
    if (Accel.VerdictCache) {
      // The searcher's opening whole-program probe still gets its memo.
      ConvClone = Prog.clone();
      ConvOk = false;
      HasConvMemo = true;
    }
    HaveCurrentSource = false;
    return SessionConv.Error;
  }

  // Rendered once per run to show the baseline message; not search work,
  // so it stays out of the counters.
  TypecheckResult R = typecheckProgram(Prog);
  if (Accel.VerdictCache) {
    // The searcher's first oracle call asks the boolean version of this
    // exact question; remember the verdict so it need not re-infer.
    ConvClone = Prog.clone();
    ConvOk = R.ok();
    HasConvMemo = true;
  }
  // (Re)build the cross-request memo for the next edit-resubmit. Only a
  // parsed program qualifies: the byte-prefix validity check needs real
  // spans, and a synthesized next-declaration offset of 0 is rejected.
  SessionConv = RetainedConv();
  if (SessionRetention && HaveCurrentSource && R.Error && R.ErrorDeclIndex &&
      *R.ErrorDeclIndex < Prog.Decls.size()) {
    unsigned ErrIdx = *R.ErrorDeclIndex;
    size_t PrefixEnd = ErrIdx + 1 < Prog.Decls.size()
                           ? size_t(Prog.Decls[ErrIdx + 1]->Span.Begin.Offset)
                           : CurrentSource.size();
    if (PrefixEnd > 0 && PrefixEnd <= CurrentSource.size()) {
      SessionConv.Valid = true;
      SessionConv.Source = CurrentSource;
      SessionConv.PrefixEnd = PrefixEnd;
      SessionConv.ErrIdx = ErrIdx;
      SessionConv.Clones.reserve(ErrIdx + 1);
      for (unsigned I = 0; I <= ErrIdx; ++I)
        SessionConv.Clones.push_back(Prog.Decls[I]->clone());
      SessionConv.Error = R.Error;
    }
  }
  HaveCurrentSource = false;
  return R.Error;
}

void CheckpointedOracle::seedPrefix(const Program &Prog, unsigned EditedDecl) {
  clearPrefix();
  if (EditedDecl >= Prog.Decls.size())
    return;
  Seeded = true;
  EditedIndex = EditedDecl;
  PrefixIdentity.reserve(EditedDecl);
  for (unsigned I = 0; I < EditedDecl; ++I)
    PrefixIdentity.push_back(Prog.Decls[I].get());

  // Session mode: intern the seed's identity once. The ids key this
  // request's eventual stash, and matching them against the retained ids
  // decides whether last request's caches still apply (id equality is
  // tree equality, so the comparison is EditedDecl integer compares).
  bool SessionMatch = false;
  if (SessionRetention && TheArena) {
    SeedPrefixIds.clear();
    SeedPrefixIds.reserve(EditedDecl);
    for (unsigned I = 0; I < EditedDecl; ++I)
      SeedPrefixIds.push_back(TheArena->internDecl(*Prog.Decls[I]));
    SeedFailingId = TheArena->internDecl(*Prog.Decls[EditedDecl]);
    SessionMatch = Retained.Valid && Retained.PrefixIds == SeedPrefixIds;
  }

  // If localization just grew an environment that covers exactly this
  // prefix, adopt it -- seeding costs nothing. Structural equality is the
  // validity condition; on any mismatch fall through to a fresh snapshot.
  if (Accel.Checkpoint && Growth && Growth->prefixLength() == EditedDecl &&
      GrowthClones.size() == EditedDecl) {
    bool Match = true;
    for (unsigned I = 0; I < EditedDecl; ++I)
      if (!Prog.Decls[I]->equals(*GrowthClones[I])) {
        Match = false;
        break;
      }
    if (Match) {
      Checkpoint = std::move(Growth);
      PrefixClone.Decls = std::move(GrowthClones);
      resetGrowth();
      ++Counters.CheckpointSeeds;
      // The environment came from this request's walk, but last
      // request's verdicts and worker checkpoints are conditioned on
      // this same prefix -- take them too.
      if (SessionMatch)
        adoptRetainedCaches();
      return;
    }
  }

  // Session adoption: the previous request seeded this exact prefix and
  // its whole warm state -- environment, worker environments, verdict
  // cache -- transfers wholesale. This is the edit-resubmit hot path.
  if (SessionMatch && Retained.Checkpoint &&
      Retained.Checkpoint->prefixLength() == EditedDecl) {
    Checkpoint = std::move(Retained.Checkpoint);
    PrefixClone = std::move(Retained.PrefixClone);
    ++Counters.CheckpointSeeds;
    adoptRetainedCaches();
    return;
  }

  PrefixClone.Decls.reserve(EditedDecl);
  for (unsigned I = 0; I < EditedDecl; ++I)
    PrefixClone.Decls.push_back(Prog.Decls[I]->clone());
  if (Accel.Checkpoint) {
    Checkpoint = InferenceCheckpoint::create(Prog, EditedDecl);
    if (Checkpoint)
      ++Counters.CheckpointSeeds;
  }
}

void CheckpointedOracle::adoptRetainedCaches() {
  VerdictById = std::move(Retained.Verdicts);
  WorkerCheckpoints = std::move(Retained.WorkerCheckpoints);
  Retained = RetainedSeed();
  ++Counters.SessionSeedAdoptions;
}

void CheckpointedOracle::stashSessionState() {
  Retained = RetainedSeed();
  // Only a seed with a live environment snapshot is worth keeping, and
  // only one whose identity was interned at seedPrefix (retention was on
  // when this request seeded).
  if (!Checkpoint || SeedPrefixIds.size() != EditedIndex)
    return;
  Retained.Valid = true;
  Retained.PrefixIds = std::move(SeedPrefixIds);
  Retained.FailingId = SeedFailingId;
  Retained.Checkpoint = std::move(Checkpoint);
  Retained.PrefixClone = std::move(PrefixClone);
  Retained.WorkerCheckpoints = std::move(WorkerCheckpoints);
  for (auto &KV : VerdictById)
    KV.second |= RetainedBit;
  Retained.Verdicts = std::move(VerdictById);
}

void CheckpointedOracle::clearPrefix() {
  if (SessionRetention && Seeded && TheArena)
    stashSessionState();
  Seeded = false;
  EditedIndex = 0;
  PrefixIdentity.clear();
  PrefixClone = Program();
  Checkpoint.reset();
  WorkerCheckpoints.clear();
  VerdictCache.clear();
  // Verdicts are relative to the prefix environment, so they go; the
  // arena's interned nodes stay valid across prefixes (and requests).
  VerdictById.clear();
  SeedPrefixIds.clear();
  SeedFailingId = AstArena::InvalidId;
  WalkIds.clear();
}

void CheckpointedOracle::resetGrowth() {
  Growth.reset();
  GrowthClones.clear();
}

bool CheckpointedOracle::growthExtend(const Decl &D, bool &Verdict) {
  // Committing the declaration performs exactly the inference a full run
  // would perform on it -- but skips re-inferring everything before it.
  ++Counters.IncrementalInferences;
  Counters.DeclInferencesSaved += Growth->prefixLength();
  LastServedBy = "growth-extend";
  if (MetricsOut)
    MetricsOut->observe(metric::CheckpointReuseDepth,
                        double(Growth->prefixLength()));
  size_t Allocated = 0;
  Verdict = Growth->extendWith(D, &Allocated);
  Counters.TypesAllocated += Allocated;
  if (Verdict)
    GrowthClones.push_back(D.clone());
  else if (D.kind() != Decl::Kind::Let)
    // A failed type/exception declaration may leave partial constructor
    // table entries behind; the environment can no longer be trusted.
    resetGrowth();
  return true;
}

bool CheckpointedOracle::trySessionProbe(const Program &Prog, bool &Verdict) {
  if (!SessionRetention || !Retained.Valid || Seeded || !TheArena ||
      !Accel.Checkpoint)
    return false;
  const size_t N = Prog.Decls.size();
  const size_t P = Retained.PrefixIds.size();
  if (N == 0 || N > P + 1)
    return false;
  // Intern the probe's declarations through the walk memo: the searcher
  // appends one declaration per localization round and never mutates the
  // earlier ones, so every round interns exactly one new tree.
  for (size_t I = 0; I < N; ++I) {
    const Decl *D = Prog.Decls[I].get();
    if (I < WalkIds.size() && WalkIds[I].first == D)
      continue;
    WalkIds.resize(I);
    WalkIds.emplace_back(D, TheArena->internDecl(*D));
  }
  syncArenaStats();
  // Everything but (possibly) the last declaration must match the
  // retained known-good prefix; an interior divergence means this is not
  // a walk over the program the session knows.
  size_t Match = 0;
  while (Match < N && Match < P &&
         WalkIds[Match].second == Retained.PrefixIds[Match])
    ++Match;
  if (Match + 1 < N)
    return false;
  if (Match == N) {
    // Wholly inside the prefix the previous request proved good.
    ++Counters.SessionPrefixHits;
    LastServedBy = "session-prefix";
    LastCacheHit = true;
    Verdict = true;
    return true;
  }
  const AstArena::DeclId LastId = WalkIds[N - 1].second;
  if (N == P + 1 && LastId == Retained.FailingId) {
    // The previous request proved exactly this declaration fails on top
    // of exactly this prefix.
    ++Counters.SessionPrefixHits;
    LastServedBy = "session-prefix";
    LastCacheHit = true;
    Verdict = false;
    return true;
  }
  // A novel last declaration over a known-good prefix: the user edited
  // the failing declaration (N == P + 1) or a prefix declaration
  // (N <= P). Build a growth environment so this probe and the rest of
  // the walk run incrementally instead of falling to full inference.
  if (Growth)
    return false; // A walk is already growing; let it serve.
  if (N == P + 1 && Retained.Checkpoint &&
      Retained.Checkpoint->prefixLength() == P) {
    // The retained environment covers the whole prefix -- it becomes the
    // growth environment directly (its verdict cache stays retained: if
    // the edited declaration still fails, seedPrefix re-adopts it).
    Growth = std::move(Retained.Checkpoint);
    GrowthClones = std::move(Retained.PrefixClone.Decls);
    Retained.PrefixClone = Program();
    return growthExtend(*Prog.Decls[N - 1], Verdict);
  }
  // Prefix edit: the declarations before the divergence are known good,
  // so snapshot them in one pass and grow from there. (Cold behavior
  // here would re-infer the full prefix on every remaining probe.)
  auto Rebuilt = InferenceCheckpoint::create(Prog, unsigned(N - 1));
  if (!Rebuilt)
    return false;
  Growth = std::move(Rebuilt);
  GrowthClones.clear();
  GrowthClones.reserve(N - 1);
  for (size_t I = 0; I + 1 < N; ++I)
    GrowthClones.push_back(Prog.Decls[I]->clone());
  return growthExtend(*Prog.Decls[N - 1], Verdict);
}

bool CheckpointedOracle::tryGrowthPath(const Program &Prog, bool &Verdict) {
  if (!Accel.Checkpoint || Seeded)
    return false;
  const size_t N = Prog.Decls.size();
  // The grown prefix plus exactly one new declaration? (The localization
  // loop asks precisely this, one declaration longer per call.)
  if (Growth && N == GrowthClones.size() + 1) {
    bool Match = true;
    for (size_t I = 0; I + 1 < N; ++I)
      if (!Prog.Decls[I]->equals(*GrowthClones[I])) {
        Match = false;
        break;
      }
    if (Match)
      return growthExtend(*Prog.Decls[N - 1], Verdict);
  }
  if (N == 1) {
    // A fresh localization walk starts here: snapshot the bare standard
    // library (prefix length zero never fails) and grow from it.
    resetGrowth();
    Growth = InferenceCheckpoint::create(Prog, 0);
    if (!Growth)
      return false;
    return growthExtend(*Prog.Decls[0], Verdict);
  }
  return false;
}

bool CheckpointedOracle::matchesSeed(const Program &Prog) const {
  if (!Seeded || Prog.Decls.size() != size_t(EditedIndex) + 1)
    return false;
  // The searcher edits Work in place, so the unedited prefix keeps its
  // Decl identities; pointer comparison makes the match O(prefix) with no
  // tree walk. A caller holding different (even structurally equal) prefix
  // objects simply falls back to full inference -- never wrong, only slow.
  for (unsigned I = 0; I < EditedIndex; ++I)
    if (Prog.Decls[I].get() != PrefixIdentity[I])
      return false;
  // Only Let declarations may be replayed against a checkpoint (type and
  // exception declarations mutate untrailed global tables).
  return Prog.Decls[EditedIndex]->kind() == Decl::Kind::Let;
}

const CheckpointedOracle::CacheEntry *
CheckpointedOracle::cacheLookup(uint64_t H, const Decl &D) const {
  auto It = VerdictCache.find(H);
  if (It == VerdictCache.end())
    return nullptr;
  for (const CacheEntry &E : It->second)
    if (E.EditedDecl->equals(D))
      return &E;
  return nullptr;
}

void CheckpointedOracle::cacheInsert(uint64_t H, const Decl &D, bool Verdict) {
  CacheEntry E;
  E.EditedDecl = D.clone();
  E.Typechecks = Verdict;
  VerdictCache[H].push_back(std::move(E));
}

bool CheckpointedOracle::inferEditedDecl(const Decl &D,
                                         const Program &Fallback) {
  if (Checkpoint) {
    ++Counters.IncrementalInferences;
    Counters.DeclInferencesSaved += Checkpoint->prefixLength();
    LastServedBy = "checkpoint-incremental";
    if (MetricsOut)
      MetricsOut->observe(metric::CheckpointReuseDepth,
                          double(Checkpoint->prefixLength()));
    TypecheckResult R = Checkpoint->checkDecl(D);
    Counters.TypesAllocated += R.TypesAllocated;
    return R.ok();
  }
  if (Accel.Checkpoint)
    ++Counters.CheckpointFallbacks; // Prefix failed to snapshot.
  ++Counters.FullInferences;
  TypecheckResult R = typecheckProgram(Fallback);
  Counters.TypesAllocated += R.TypesAllocated;
  return R.ok();
}

bool CheckpointedOracle::typecheckImpl(const Program &Prog) {
  if (!matchesSeed(Prog)) {
    // Asked about the same program conventionalError() just inferred?
    // (The searcher's opening "does the input type-check at all" probe,
    // and the final localization round when the last declaration fails.)
    if (HasConvMemo && Prog.Decls.size() == ConvClone.Decls.size() &&
        Prog.equals(ConvClone)) {
      ++Counters.CacheHits;
      LastServedBy = "conv-memo";
      LastCacheHit = true;
      return ConvOk;
    }
    bool Verdict;
    if (trySessionProbe(Prog, Verdict))
      return Verdict;
    if (tryGrowthPath(Prog, Verdict))
      return Verdict;
    if (Seeded)
      ++Counters.CheckpointFallbacks;
    ++Counters.FullInferences;
    TypecheckResult R = typecheckProgram(Prog);
    Counters.TypesAllocated += R.TypesAllocated;
    return R.ok();
  }

  const Decl &D = *Prog.Decls[EditedIndex];
  if (!Accel.VerdictCache)
    return inferEditedDecl(D, Prog);

  if (TheArena) {
    // Interning replaces hash-plus-deep-compare: the walk reuses existing
    // nodes (near-zero allocation on repeats) and the resulting id *is*
    // the structural identity, so the probe is one integer lookup.
    AstArena::DeclId Id = TheArena->internDecl(D);
    syncArenaStats();
    auto Known = VerdictById.find(Id);
    if (Known != VerdictById.end()) {
      ++Counters.CacheHits;
      if (Known->second & RetainedBit)
        ++Counters.SessionVerdictReuses;
      LastServedBy = "verdict-cache";
      LastCacheHit = true;
      return (Known->second & VerdictBit) != 0;
    }
    ++Counters.CacheMisses;
    bool Verdict = inferEditedDecl(D, Prog);
    VerdictById.emplace(Id, Verdict ? VerdictBit : uint8_t(0));
    syncArenaStats();
    return Verdict;
  }

  uint64_t H = hashDecl(D);
  if (const CacheEntry *E = cacheLookup(H, D)) {
    ++Counters.CacheHits;
    LastServedBy = "verdict-cache";
    LastCacheHit = true;
    return E->Typechecks;
  }
  ++Counters.CacheMisses;
  bool Verdict = inferEditedDecl(D, Prog);
  cacheInsert(H, D, Verdict);
  return Verdict;
}

std::optional<std::string>
CheckpointedOracle::typeOfNodeImpl(const Program &Prog, const Expr *Node) {
  // Type queries bypass the verdict cache (it stores booleans, not types)
  // but still ride the checkpoint.
  if (Checkpoint && matchesSeed(Prog)) {
    ++Counters.IncrementalInferences;
    Counters.DeclInferencesSaved += Checkpoint->prefixLength();
    LastServedBy = "checkpoint-incremental";
    if (MetricsOut)
      MetricsOut->observe(metric::CheckpointReuseDepth,
                          double(Checkpoint->prefixLength()));
    TypecheckOptions Opts;
    Opts.QueryNode = Node;
    TypecheckResult R = Checkpoint->checkDecl(*Prog.Decls[EditedIndex], Opts);
    Counters.TypesAllocated += R.TypesAllocated;
    if (!R.ok())
      return std::nullopt;
    return R.QueriedType;
  }
  if (Seeded)
    ++Counters.CheckpointFallbacks;
  ++Counters.FullInferences;
  TypecheckOptions Opts;
  Opts.QueryNode = Node;
  TypecheckResult R = typecheckProgram(Prog, Opts);
  Counters.TypesAllocated += R.TypesAllocated;
  if (!R.ok())
    return std::nullopt;
  return R.QueriedType;
}

InferenceCheckpoint *CheckpointedOracle::workerCheckpoint(unsigned Worker) {
  // No seed checkpoint (layer off, or the prefix would not snapshot) --
  // don't retry per worker, the prefix is the same.
  if (!Checkpoint)
    return nullptr;
  // Worker 0 reuses the seed checkpoint: the dispatching thread blocks in
  // parallelFor, so nothing else touches it during the batch. Other
  // workers lazily build their own from the stored prefix clone; each
  // touches only its own pre-sized slot, so no locking is needed.
  if (Worker == 0)
    return Checkpoint.get();
  assert(Worker <= WorkerCheckpoints.size() && "pool grew mid-batch?");
  auto &Slot = WorkerCheckpoints[Worker - 1];
  if (!Slot)
    Slot = InferenceCheckpoint::create(PrefixClone, EditedIndex);
  return Slot.get();
}

std::vector<bool> CheckpointedOracle::typecheckBatchImpl(
    const Program &Base, const NodePath &Path,
    const std::vector<const Expr *> &Replacements) {
  // Without the parallel layer (or against an unrecognized program shape)
  // the sequential default still reaps the cache and checkpoint: it calls
  // typecheckImpl per item.
  if (!Accel.ParallelBatch || !matchesSeed(Base) ||
      Path.DeclIndex != EditedIndex)
    return Oracle::typecheckBatchImpl(Base, Path, Replacements);

  if (TheArena && Accel.VerdictCache)
    return typecheckBatchArena(Base, Path, Replacements);

  size_t N = Replacements.size();
  ++Counters.BatchesDispatched;
  Counters.BatchItems += N;

  // Materialize each candidate as an edited-declaration clone. Both the
  // single-call path and this one hash/compare these materialized decls,
  // so a verdict cached by either is visible to the other.
  NodePath Local;
  Local.Steps = Path.Steps;
  std::vector<DeclPtr> Variants;
  Variants.reserve(N);
  for (const Expr *Replacement : Replacements) {
    Program Tmp;
    Tmp.Decls.push_back(Base.Decls[EditedIndex]->clone());
    replaceAtPath(Tmp, Local, Replacement->clone());
    Variants.push_back(std::move(Tmp.Decls[0]));
  }

  // Tracing: the batch still owes one OracleCall span per logical call.
  // Cache hits and intra-batch duplicates get theirs on the dispatching
  // thread; inferred items emit from whichever worker ran them, parented
  // to the batch span. The search layer is captured here because pool
  // workers do not inherit the dispatcher's thread-local label.
  const char *Layer = traceCurrentLayer();
  auto EmitItemSpan = [&](bool Verdict, const char *ServedBy, bool CacheHit,
                          double LatencyUs) {
    TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.typecheck");
    if (!Span.enabled())
      return;
    Span.setParent(BatchSpanId);
    Span.attr("layer", Layer);
    Span.attr("verdict", Verdict);
    Span.attr("cache_hit", CacheHit);
    Span.attr("served_by", ServedBy);
    Span.attr("latency_us", LatencyUs);
  };

  // Serial pass: resolve what the cache already knows and dedupe repeats
  // within the batch, so inference runs once per distinct candidate.
  std::vector<int> Verdicts(N, -1);
  std::vector<uint64_t> Hashes(N, 0);
  std::vector<size_t> Pending;        // Indices needing inference.
  std::vector<size_t> DupOf(N, ~size_t(0)); // Intra-batch representative.
  if (Accel.VerdictCache) {
    std::unordered_map<uint64_t, std::vector<size_t>> Fresh;
    for (size_t I = 0; I < N; ++I) {
      Hashes[I] = hashDecl(*Variants[I]);
      if (const CacheEntry *E = cacheLookup(Hashes[I], *Variants[I])) {
        ++Counters.CacheHits;
        Verdicts[I] = E->Typechecks;
        EmitItemSpan(E->Typechecks, "verdict-cache", true, 0.0);
        continue;
      }
      bool Dup = false;
      for (size_t J : Fresh[Hashes[I]])
        if (Variants[J]->equals(*Variants[I])) {
          ++Counters.CacheHits;
          DupOf[I] = J;
          Dup = true;
          break;
        }
      if (!Dup) {
        ++Counters.CacheMisses;
        Fresh[Hashes[I]].push_back(I);
        Pending.push_back(I);
      }
    }
  } else {
    for (size_t I = 0; I < N; ++I)
      Pending.push_back(I);
  }

  // Parallel pass over the distinct misses. Counters are tallied after
  // the join (workers write only to per-item slots); verdicts land in
  // per-index slots so scheduling order never reaches the caller.
  if (!Pending.empty()) {
    std::vector<char> Ok(Pending.size(), 0);
    std::vector<size_t> Allocated(Pending.size(), 0);
    std::vector<char> Incremental(Pending.size(), 0);
    bool Traced = TraceOut || MetricsOut;
    auto CheckItem = [&](unsigned Worker, size_t Item) {
      TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.typecheck");
      Span.setParent(BatchSpanId);
      auto Start = Traced ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point();
      const Decl &D = *Variants[Pending[Item]];
      if (InferenceCheckpoint *CP = workerCheckpoint(Worker)) {
        TypecheckResult R = CP->checkDecl(D);
        Ok[Item] = R.ok();
        Allocated[Item] = R.TypesAllocated;
        Incremental[Item] = 1;
      } else {
        // No checkpoint (layer off or prefix unsnapshottable): infer the
        // full variant program. Inference is thread-safe -- the trail is
        // thread-local and the stdlib environment is immutable after its
        // thread-safe first initialization.
        Program Variant = PrefixClone.clone();
        Variant.Decls.push_back(D.clone());
        TypecheckResult R = typecheckProgram(Variant);
        Ok[Item] = R.ok();
        Allocated[Item] = R.TypesAllocated;
      }
      if (!Traced)
        return;
      double Us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      if (Span.enabled()) {
        Span.attr("layer", Layer);
        Span.attr("verdict", bool(Ok[Item]));
        Span.attr("cache_hit", false);
        Span.attr("served_by", Incremental[Item] ? "checkpoint-incremental"
                                                 : "full-inference");
        Span.attr("worker", int64_t(Worker));
        Span.attr("latency_us", Us);
      }
      if (MetricsOut) {
        MetricsOut->observe(metric::OracleLatencyUs, Us);
        if (Incremental[Item])
          MetricsOut->observe(metric::CheckpointReuseDepth,
                              double(EditedIndex));
      }
    };
    if (Pending.size() < Accel.MinParallelItems) {
      // Too small to amortize a pool dispatch; same work, same results,
      // on the calling thread.
      for (size_t Item = 0; Item < Pending.size(); ++Item)
        CheckItem(0, Item);
    } else {
      if (!Pool)
        Pool = std::make_unique<ThreadPool>(Accel.Threads);
      if (WorkerCheckpoints.size() + 1 < Pool->numThreads())
        WorkerCheckpoints.resize(Pool->numThreads() - 1);
      Pool->parallelFor(Pending.size(), CheckItem);
    }
    for (size_t Item = 0; Item < Pending.size(); ++Item) {
      size_t I = Pending[Item];
      Verdicts[I] = Ok[Item];
      Counters.TypesAllocated += Allocated[Item];
      if (Incremental[Item]) {
        ++Counters.IncrementalInferences;
        Counters.DeclInferencesSaved += EditedIndex;
      } else {
        ++Counters.FullInferences;
        if (Accel.Checkpoint)
          ++Counters.CheckpointFallbacks;
      }
      if (Accel.VerdictCache)
        cacheInsert(Hashes[I], *Variants[I], Verdicts[I] != 0);
    }
  }

  // Settle intra-batch duplicates off their representatives.
  std::vector<bool> Result(N);
  for (size_t I = 0; I < N; ++I) {
    if (DupOf[I] != ~size_t(0)) {
      Verdicts[I] = Verdicts[DupOf[I]];
      EmitItemSpan(Verdicts[I] != 0, "batch-dedup", true, 0.0);
    }
    assert(Verdicts[I] >= 0 && "batch item left unresolved");
    Result[I] = Verdicts[I] != 0;
  }
  return Result;
}

std::vector<bool> CheckpointedOracle::typecheckBatchArena(
    const Program &Base, const NodePath &Path,
    const std::vector<const Expr *> &Replacements) {
  size_t N = Replacements.size();
  ++Counters.BatchesDispatched;
  Counters.BatchItems += N;

  // Copy-free candidate construction: intern the edited declaration once
  // (pure table hits after the first batch of a wave), then build each
  // candidate as a path-copied overlay. No candidate program exists as a
  // tree at this point -- only O(spine) interned nodes per novel edit.
  AstArena &A = *TheArena;
  AstArena::DeclId BaseId = A.internDecl(*Base.Decls[EditedIndex]);
  std::vector<AstArena::DeclId> Ids(N, AstArena::InvalidId);
  for (size_t I = 0; I < N; ++I)
    Ids[I] =
        A.overlayDecl(BaseId, Path.Steps, A.internExpr(*Replacements[I]));

  // Tracing mirrors the hash-keyed batch: one OracleCall span per logical
  // call, hits and duplicates emitted on the dispatching thread.
  const char *Layer = traceCurrentLayer();
  auto EmitItemSpan = [&](bool Verdict, const char *ServedBy, bool CacheHit,
                          double LatencyUs) {
    TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.typecheck");
    if (!Span.enabled())
      return;
    Span.setParent(BatchSpanId);
    Span.attr("layer", Layer);
    Span.attr("verdict", Verdict);
    Span.attr("cache_hit", CacheHit);
    Span.attr("served_by", ServedBy);
    Span.attr("latency_us", LatencyUs);
  };

  // Serial pass: id lookups against the cache, then wave-level overlay
  // dedup -- two candidates collapsing to the same interned tree are
  // detected by comparing two integers (the legacy path needed a hash
  // bucket scan plus deep equality). Only distinct misses materialize,
  // here on the dispatching thread: pool workers never touch the arena.
  std::vector<int> Verdicts(N, -1);
  std::vector<size_t> Pending;            // Indices needing inference.
  std::vector<DeclPtr> PendingDecls;      // Their materialized trees.
  std::vector<size_t> DupOf(N, ~size_t(0)); // Intra-batch representative.
  std::unordered_map<AstArena::DeclId, size_t> FreshById;
  uint64_t Collapsed = 0;
  for (size_t I = 0; I < N; ++I) {
    auto Known = VerdictById.find(Ids[I]);
    if (Known != VerdictById.end()) {
      ++Counters.CacheHits;
      if (Known->second & RetainedBit)
        ++Counters.SessionVerdictReuses;
      bool KnownVerdict = (Known->second & VerdictBit) != 0;
      Verdicts[I] = KnownVerdict;
      EmitItemSpan(KnownVerdict, "verdict-cache", true, 0.0);
      continue;
    }
    auto Fresh = FreshById.find(Ids[I]);
    if (Fresh != FreshById.end()) {
      // Same interned tree as an earlier candidate in this wave: billed
      // as a cache hit exactly like the legacy dedup, plus the collapse
      // counter the telemetry explorer reports per layer.
      ++Counters.CacheHits;
      ++Collapsed;
      DupOf[I] = Fresh->second;
      continue;
    }
    ++Counters.CacheMisses;
    FreshById.emplace(Ids[I], I);
    Pending.push_back(I);
    PendingDecls.push_back(A.materializeDecl(Ids[I]));
  }
  Counters.WaveCollapsed += Collapsed;
  LastWaveCollapsed = Collapsed;

  // Parallel pass over the distinct misses; identical to the hash-keyed
  // batch except items come from PendingDecls.
  if (!Pending.empty()) {
    std::vector<char> Ok(Pending.size(), 0);
    std::vector<size_t> Allocated(Pending.size(), 0);
    std::vector<char> Incremental(Pending.size(), 0);
    bool Traced = TraceOut || MetricsOut;
    auto CheckItem = [&](unsigned Worker, size_t Item) {
      TraceSpan Span(TraceOut, SpanKind::OracleCall, "oracle.typecheck");
      Span.setParent(BatchSpanId);
      auto Start = Traced ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point();
      const Decl &D = *PendingDecls[Item];
      if (InferenceCheckpoint *CP = workerCheckpoint(Worker)) {
        TypecheckResult R = CP->checkDecl(D);
        Ok[Item] = R.ok();
        Allocated[Item] = R.TypesAllocated;
        Incremental[Item] = 1;
      } else {
        Program Variant = PrefixClone.clone();
        Variant.Decls.push_back(D.clone());
        TypecheckResult R = typecheckProgram(Variant);
        Ok[Item] = R.ok();
        Allocated[Item] = R.TypesAllocated;
      }
      if (!Traced)
        return;
      double Us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      if (Span.enabled()) {
        Span.attr("layer", Layer);
        Span.attr("verdict", bool(Ok[Item]));
        Span.attr("cache_hit", false);
        Span.attr("served_by", Incremental[Item] ? "checkpoint-incremental"
                                                 : "full-inference");
        Span.attr("worker", int64_t(Worker));
        Span.attr("latency_us", Us);
      }
      if (MetricsOut) {
        MetricsOut->observe(metric::OracleLatencyUs, Us);
        if (Incremental[Item])
          MetricsOut->observe(metric::CheckpointReuseDepth,
                              double(EditedIndex));
      }
    };
    if (Pending.size() < Accel.MinParallelItems) {
      for (size_t Item = 0; Item < Pending.size(); ++Item)
        CheckItem(0, Item);
    } else {
      if (!Pool)
        Pool = std::make_unique<ThreadPool>(Accel.Threads);
      if (WorkerCheckpoints.size() + 1 < Pool->numThreads())
        WorkerCheckpoints.resize(Pool->numThreads() - 1);
      Pool->parallelFor(Pending.size(), CheckItem);
    }
    for (size_t Item = 0; Item < Pending.size(); ++Item) {
      size_t I = Pending[Item];
      Verdicts[I] = Ok[Item];
      Counters.TypesAllocated += Allocated[Item];
      if (Incremental[Item]) {
        ++Counters.IncrementalInferences;
        Counters.DeclInferencesSaved += EditedIndex;
      } else {
        ++Counters.FullInferences;
        if (Accel.Checkpoint)
          ++Counters.CheckpointFallbacks;
      }
      VerdictById.emplace(Ids[I], Ok[Item] ? VerdictBit : uint8_t(0));
    }
  }

  // Settle intra-batch duplicates off their representatives.
  std::vector<bool> Result(N);
  for (size_t I = 0; I < N; ++I) {
    if (DupOf[I] != ~size_t(0)) {
      Verdicts[I] = Verdicts[DupOf[I]];
      EmitItemSpan(Verdicts[I] != 0, "batch-dedup", true, 0.0);
    }
    assert(Verdicts[I] >= 0 && "batch item left unresolved");
    Result[I] = Verdicts[I] != 0;
  }
  syncArenaStats();
  return Result;
}
