//===- Message.h - Rendering suggestions for programmers --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ranked suggestions in the paper's message style:
///
///   Try replacing
///       fun (x, y) -> x + y
///   with
///       fun x y -> x + y
///   of type int -> int -> int
///   within context
///       let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]
///
/// Triaged suggestions lead with "Your code has several type errors...";
/// removable-but-not-adaptable variables are reported as likely unbound.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_MESSAGE_H
#define SEMINAL_CORE_MESSAGE_H

#include "core/Change.h"
#include "minicaml/Infer.h"

#include <optional>
#include <string>

namespace seminal {

/// Limits on message size.
struct MessageOptions {
  size_t MaxContextLength = 240;
};

/// Renders one suggestion as a complete message.
std::string renderSuggestion(const Suggestion &S,
                             const MessageOptions &Opts = {});

/// Renders the conventional type-checker diagnostic (the baseline the
/// evaluation compares against), OCaml style with a location.
std::string renderConventional(const std::optional<caml::TypeError> &Error);

} // namespace seminal

#endif // SEMINAL_CORE_MESSAGE_H
