//===- Ranker.h - Ordering successful changes -------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ranker of Figure 1, implementing the paper's preferences:
///
///   * constructive changes > adaptation > removal (Sections 2.2-2.3);
///   * triaged suggestions rank below everything untriaged, and among
///     themselves prefer fewer sibling removals (Section 2.4);
///   * constructive and removal changes prefer *smaller* expressions
///     (closer to the leaves); adaptation prefers *larger* ones;
///   * ties in a function application prefer the expression on the right
///     (Section 2.1's heuristic).
///
/// Scores are lexicographic tuples so tests can assert on the components.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_RANKER_H
#define SEMINAL_CORE_RANKER_H

#include "core/Change.h"

#include <array>
#include <vector>

namespace seminal {

/// Lexicographic score; lower is better. Components: kind (triage-
/// penalized), triage removals, original size (negated for adaptation),
/// idiom priority, size-preservation (|orig - replacement|; swaps beat
/// deletions), the in-slice boost (suggestions at a node in the error
/// slice's core win otherwise-tied scores; constantly 0 when no slice
/// was computed), and the right-bias tiebreak.
using SuggestionScore = std::array<long, 7>;

/// Computes the rank score of \p S.
SuggestionScore scoreSuggestion(const Suggestion &S);

/// Stable-sorts \p Suggestions best-first and drops exact duplicates
/// (same path, same rendered replacement).
void rankSuggestions(std::vector<Suggestion> &Suggestions);

} // namespace seminal

#endif // SEMINAL_CORE_RANKER_H
