//===- Searcher.h - Top-down search for type-error messages -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search procedure of Section 2. Given an ill-typed program it:
///
///   1. Localizes the error to the first failing top-level declaration by
///      type-checking increasingly long prefixes (Section 2.1).
///   2. Descends top-down through that declaration's initializer. At each
///      node whose replacement by the wildcard `[[...]]` makes the prefix
///      type-check, it tries adaptation (Section 2.3) and the enumerator's
///      constructive changes (Section 2.2), then recurses into children.
///      Nodes none of whose children can be fixed are minimal removal
///      sites.
///   3. When a large node's only fix is its own removal -- the signature of
///      multiple independent errors -- it enters triage mode (Section 2.4):
///      focus on one child while greedily wildcarding siblings, with
///      dedicated phases for binding constructs (match: scrutinee, then
///      patterns, then bodies).
///
/// All edits are applied destructively to a working copy and undone after
/// each oracle call; suggestions capture clones.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_SEARCHER_H
#define SEMINAL_CORE_SEARCHER_H

#include "core/Change.h"
#include "core/Enumerator.h"
#include "core/Oracle.h"
#include "minicaml/Ast.h"

#include <optional>
#include <vector>

namespace seminal {

/// Order in which triage greedily wildcards the focused node's siblings
/// (Section 2.4 -- the paper's example removes rightmost-first and notes
/// "the details of the algorithm ... are less important"; the ablation
/// bench exercises both).
enum class TriageOrder {
  RightToLeft, ///< The paper's order.
  LeftToRight,
};

/// Tuning for one search run.
struct SearchOptions {
  /// Enable triage for multiple independent errors (Section 2.4).
  bool EnableTriage = true;

  /// Sibling-removal order used inside triage.
  TriageOrder Order = TriageOrder::RightToLeft;

  /// A node must have at least this many AST nodes before a removal-only
  /// result triggers triage ("a nontrivial number of descendents").
  unsigned TriageMinSize = 6;

  /// Hard budget on oracle calls; the search stops gracefully when
  /// exhausted (never triggered by realistic student files, but keeps the
  /// tool total). The budget currency is logical calls, so acceleration
  /// changes how fast the budget is burned in wall-clock terms, never how
  /// much search it buys.
  size_t MaxOracleCalls = 200000;

  /// Oracle acceleration toggles (forwarded to the oracle by runSeminal;
  /// a Searcher driven with a hand-built oracle ignores all but
  /// ParallelBatch, which additionally gates batched candidate waves).
  OracleAccelOptions Accel;

  EnumeratorOptions Enum;

  /// Observability sinks (not owned; either may be null). runSeminal
  /// forwards them to the oracle too; a hand-driven Searcher instruments
  /// only its own phases.
  TraceSink *Trace = nullptr;
  Metrics *Metric = nullptr;
};

/// Everything a search run produces.
struct SearchOutput {
  /// True when the input already type-checks (search is bypassed).
  bool InputTypechecks = false;

  /// Index of the first top-level declaration whose prefix fails.
  std::optional<unsigned> FailingDecl;

  /// Unranked suggestions (the ranker orders them).
  std::vector<Suggestion> Suggestions;

  /// True if the oracle-call budget was exhausted mid-search.
  bool BudgetExhausted = false;
};

/// Runs the search procedure against \p TheOracle.
class Searcher {
public:
  Searcher(Oracle &TheOracle, const SearchOptions &Opts)
      : TheOracle(TheOracle), Opts(Opts) {}

  SearchOutput run(const caml::Program &Input);

private:
  // One oracle query against the working program, honoring the budget.
  bool oracleSays();

  /// Installs \p Replacement at \p Path, asks the oracle, and restores.
  /// \p Replacement is handed back (moved out and in).
  bool testWith(const caml::NodePath &Path, caml::ExprPtr &Replacement);

  /// Regular-mode search rooted at \p Path. \returns true if any
  /// suggestion was found within this subtree.
  bool searchExpr(const caml::NodePath &Path);

  /// Runs the enumerator's candidates (with probes and lazy follow-ups)
  /// at \p Path. \returns true if any non-probe candidate succeeded.
  bool tryCandidates(const caml::NodePath &Path,
                     std::vector<CandidateChange> Cands);

  /// Batched variant of tryCandidates: evaluates the worklist in waves
  /// through Oracle::typecheckBatch. Wave order replays the sequential
  /// worklist order exactly, so suggestions and logical-call totals are
  /// identical; only the budget-exhaustion cutoff can differ in
  /// granularity.
  bool tryCandidatesBatched(const caml::NodePath &Path,
                            std::vector<CandidateChange> Cands);

  /// Declaration-level changes (toggle rec, curry/tuple params).
  bool tryDeclChanges(unsigned DeclIndex);

  // Triage (Section 2.4) --------------------------------------------------
  bool triage(const caml::NodePath &Path);
  bool triageGeneric(const caml::NodePath &Path);
  bool triageMatch(const caml::NodePath &Path);
  bool triageMatchPatterns(const caml::NodePath &Path);

  /// Minimal subpattern whose replacement by `_` fixes arm \p ArmIndex of
  /// the (bodies-wildcarded) match at \p MatchPath.
  bool searchPatternFix(const caml::NodePath &MatchPath, unsigned ArmIndex);

  // Suggestion construction -------------------------------------------------
  void addSuggestion(ChangeKind Kind, const caml::NodePath &Path,
                     caml::ExprPtr Replacement,
                     const std::string &Description,
                     bool LikelyUnbound = false, int Priority = 0);

  Oracle &TheOracle;
  SearchOptions Opts;

  caml::Program Work;      ///< Prefix clone being edited in place.
  unsigned FocusDecl = 0;  ///< Declaration under scrutiny.
  bool OutOfBudget = false;

  // Triage bookkeeping: >0 while searching inside a triage context.
  int TriageDepth = 0;
  int TriageRemovalCount = 0;

  std::vector<Suggestion> Suggestions;
};

} // namespace seminal

#endif // SEMINAL_CORE_SEARCHER_H
