//===- Searcher.h - Top-down search for type-error messages -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search procedure of Section 2. Given an ill-typed program it:
///
///   1. Localizes the error to the first failing top-level declaration by
///      type-checking increasingly long prefixes (Section 2.1).
///   2. Descends top-down through that declaration's initializer. At each
///      node whose replacement by the wildcard `[[...]]` makes the prefix
///      type-check, it tries adaptation (Section 2.3) and the enumerator's
///      constructive changes (Section 2.2), then recurses into children.
///      Nodes none of whose children can be fixed are minimal removal
///      sites.
///   3. When a large node's only fix is its own removal -- the signature of
///      multiple independent errors -- it enters triage mode (Section 2.4):
///      focus on one child while greedily wildcarding siblings, with
///      dedicated phases for binding constructs (match: scrutinee, then
///      patterns, then bodies).
///
/// All edits are applied destructively to a working copy and undone after
/// each oracle call; suggestions capture clones.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_SEARCHER_H
#define SEMINAL_CORE_SEARCHER_H

#include "analysis/Slice.h"
#include "analysis/SliceGuide.h"
#include "core/Change.h"
#include "core/Enumerator.h"
#include "core/Oracle.h"
#include "minicaml/Ast.h"
#include "obs/Telemetry.h"

#include <memory>
#include <optional>
#include <vector>

namespace seminal {

/// Order in which triage greedily wildcards the focused node's siblings
/// (Section 2.4 -- the paper's example removes rightmost-first and notes
/// "the details of the algorithm ... are less important"; the ablation
/// bench exercises both).
enum class TriageOrder {
  RightToLeft, ///< The paper's order.
  LeftToRight,
};

/// Tuning for one search run.
struct SearchOptions {
  /// Enable triage for multiple independent errors (Section 2.4).
  bool EnableTriage = true;

  /// Sibling-removal order used inside triage.
  TriageOrder Order = TriageOrder::RightToLeft;

  /// A node must have at least this many AST nodes before a removal-only
  /// result triggers triage ("a nontrivial number of descendents").
  unsigned TriageMinSize = 6;

  /// Hard budget on oracle calls; the search stops gracefully when
  /// exhausted (never triggered by realistic student files, but keeps the
  /// tool total). The budget currency is logical calls, so acceleration
  /// changes how fast the budget is burned in wall-clock terms, never how
  /// much search it buys.
  size_t MaxOracleCalls = 200000;

  /// Oracle acceleration toggles (forwarded to the oracle by runSeminal;
  /// a Searcher driven with a hand-built oracle ignores all but
  /// ParallelBatch, which additionally gates batched candidate waves).
  OracleAccelOptions Accel;

  EnumeratorOptions Enum;

  /// Compute the provenance error slice before searching: suggestions in
  /// the slice's minimized core are stamped (Suggestion::InSlice) and the
  /// ranker boosts them; the SearchOutput carries the slice for display.
  /// No pruning: the exact same oracle calls are made.
  bool ComputeSlice = false;

  /// Additionally use the slice to statically skip oracle calls whose
  /// verdict the slice already proves negative (subtree removals,
  /// adaptations, and permutation probes disjoint from the influence
  /// set). Implies ComputeSlice. The suggestion list is bit-identical to
  /// a ComputeSlice-only run -- only fewer logical calls are spent
  /// (asserted corpus-wide by bench_slice_ablation and FuzzTest).
  bool SliceGuided = false;

  /// Tuning forwarded to analysis::computeErrorSlice.
  analysis::SliceOptions Slice;

  /// Observability sinks (not owned; any may be null). runSeminal
  /// forwards Trace/Metric to the oracle too; a hand-driven Searcher
  /// instruments only its own phases. Telemetry receives one
  /// CandidateOutcome per edit put to the oracle (obs/Telemetry.h) and
  /// is observational only, like the other two.
  TraceSink *Trace = nullptr;
  Metrics *Metric = nullptr;
  obs::TelemetrySink *Telemetry = nullptr;
};

/// Everything a search run produces.
struct SearchOutput {
  /// True when the input already type-checks (search is bypassed).
  bool InputTypechecks = false;

  /// Index of the first top-level declaration whose prefix fails.
  std::optional<unsigned> FailingDecl;

  /// Unranked suggestions (the ranker orders them).
  std::vector<Suggestion> Suggestions;

  /// True if the oracle-call budget was exhausted mid-search.
  bool BudgetExhausted = false;

  /// The error slice, when SearchOptions::ComputeSlice/SliceGuided asked
  /// for one and the failure was sliceable (a unification clash in a
  /// let declaration with a body).
  std::optional<analysis::ErrorSlice> Slice;

  /// Oracle calls statically skipped by slice guidance, by probe kind
  /// (all zero unless SliceGuided).
  size_t SlicePrunedSubtrees = 0;
  size_t SlicePrunedAdaptations = 0;
  size_t SlicePrunedPermutationProbes = 0;
  /// Constructive candidates whose replacement only rewrote core-disjoint
  /// subtrees (verdict proven negative by the carved witness).
  size_t SlicePrunedCandidates = 0;
  /// Prefix-growth localization probes skipped because one internal
  /// inference pinned the failing declaration (SliceGuided only).
  size_t SlicePrunedLocalizations = 0;

  size_t slicePrunedCalls() const {
    return SlicePrunedSubtrees + SlicePrunedAdaptations +
           SlicePrunedPermutationProbes + SlicePrunedCandidates +
           SlicePrunedLocalizations;
  }
};

/// Runs the search procedure against \p TheOracle.
class Searcher {
public:
  /// \p Arena, when non-null, is the hash-consing arena shared with the
  /// accelerated oracle: suggestions capture their modified program as
  /// interned declaration ids (materialized only if read), enumerator
  /// follow-ups capture overlay spines instead of cloned subtrees, and
  /// slice-guide candidate diffs walk interned ids. With a null arena
  /// every capture falls back to deep clones; search behavior and
  /// suggestion lists are bit-identical either way.
  Searcher(Oracle &TheOracle, const SearchOptions &Opts,
           std::shared_ptr<caml::AstArena> Arena = nullptr)
      : TheOracle(TheOracle), Opts(Opts), Arena(std::move(Arena)) {}

  SearchOutput run(const caml::Program &Input);

private:
  // One oracle query against the working program, honoring the budget.
  bool oracleSays();

  /// Installs \p Replacement at \p Path, asks the oracle, and restores.
  /// \p Replacement is handed back (moved out and in).
  bool testWith(const caml::NodePath &Path, caml::ExprPtr &Replacement);

  /// Regular-mode search rooted at \p Path. \returns true if any
  /// suggestion was found within this subtree.
  bool searchExpr(const caml::NodePath &Path);

  /// Runs the enumerator's candidates (with probes and lazy follow-ups)
  /// at \p Path. \returns true if any non-probe candidate succeeded.
  bool tryCandidates(const caml::NodePath &Path,
                     std::vector<CandidateChange> Cands);

  /// Batched variant of tryCandidates: evaluates the worklist in waves
  /// through Oracle::typecheckBatch. Wave order replays the sequential
  /// worklist order exactly, so suggestions and logical-call totals are
  /// identical; only the budget-exhaustion cutoff can differ in
  /// granularity.
  bool tryCandidatesBatched(const caml::NodePath &Path,
                            std::vector<CandidateChange> Cands);

  /// Declaration-level changes (toggle rec, curry/tuple params).
  bool tryDeclChanges(unsigned DeclIndex);

  // Triage (Section 2.4) --------------------------------------------------
  bool triage(const caml::NodePath &Path);
  bool triageGeneric(const caml::NodePath &Path);
  bool triageMatch(const caml::NodePath &Path);
  bool triageMatchPatterns(const caml::NodePath &Path);

  /// Minimal subpattern whose replacement by `_` fixes arm \p ArmIndex of
  /// the (bodies-wildcarded) match at \p MatchPath.
  bool searchPatternFix(const caml::NodePath &MatchPath, unsigned ArmIndex);

  /// Emits one outcome record to Opts.Telemetry (no-op when null).
  void note(const char *Layer, const char *Kind,
            const std::string &Description, const std::string &Path,
            bool Verdict, bool Probe, bool Batched = false,
            bool Pruned = false);

  // Suggestion construction -------------------------------------------------
  void addSuggestion(ChangeKind Kind, const caml::NodePath &Path,
                     caml::ExprPtr Replacement,
                     const std::string &Description,
                     bool LikelyUnbound = false, int Priority = 0);

  /// Captures Work for a Suggestion: interned ids over the arena when one
  /// is attached (allocation only for previously unseen spine nodes), a
  /// deep clone otherwise.
  LazyProgram captureModified();

  Oracle &TheOracle;
  SearchOptions Opts;
  std::shared_ptr<caml::AstArena> Arena;

  caml::Program Work;      ///< Prefix clone being edited in place.
  unsigned FocusDecl = 0;  ///< Declaration under scrutiny.
  bool OutOfBudget = false;

  /// Computes the slice of Work's focus declaration and (in guided mode)
  /// builds the pruning guide. Resets both on every run.
  void prepareSlice();

  /// True when slice guidance applies at the current search position:
  /// guided mode, outside triage (triage rewrites sibling context, which
  /// invalidates the slice's premises), and a guide is installed.
  bool guideActive() const {
    return Guide && Opts.SliceGuided && TriageDepth == 0;
  }

  std::optional<analysis::ErrorSlice> SliceResult;
  std::unique_ptr<analysis::SliceGuide> Guide;

  // Triage bookkeeping: >0 while searching inside a triage context.
  int TriageDepth = 0;
  int TriageRemovalCount = 0;

  std::vector<Suggestion> Suggestions;
};

} // namespace seminal

#endif // SEMINAL_CORE_SEARCHER_H
