//===- Enumerator.h - Constructive-change catalog ---------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enumerator of Section 2.2: "essentially a giant case expression
/// that matches on the sort of node it is given and produces a list of
/// modifications". Adding a new constructive change means adding a few
/// lines here; the searcher never changes. The catalog implements every
/// row of the paper's Figure 3 plus the idiosyncratic Caml special cases
/// the paper describes (`:=` vs `<-`, `[e1, e2, e3]`, missing `rec`, ...).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_ENUMERATOR_H
#define SEMINAL_CORE_ENUMERATOR_H

#include "core/Change.h"
#include "core/ChangeRegistry.h"
#include "minicaml/Ast.h"

#include <vector>

namespace seminal {

namespace analysis {
class SliceGuide;
} // namespace analysis

/// Tuning knobs for the catalog.
struct EnumeratorOptions {
  /// Optional user-supplied change generators (the Section 6 "open
  /// framework"); run after the built-in catalog at every node. Not
  /// owned; must outlive the search.
  const ChangeRegistry *Extra = nullptr;

  /// Gate expensive change families (argument permutations) behind cheap
  /// all-wildcard probes (Section 2.2 "More Efficient Search"). Disabling
  /// this reproduces the exhaustive baseline for bench_oracle_calls.
  bool GateExpensiveChanges = true;

  /// Enable the nested-match reparenthesizing change -- the change the
  /// paper identifies as its one performance bug (Section 3.2, Figure 7's
  /// middle curve disables it).
  bool EnableMatchReparen = true;

  /// Maximum call arity for which full argument permutations are tried.
  unsigned MaxPermutationArity = 4;

  /// Error-slice guide for the node being enumerated (not owned; may be
  /// null). When the guide proves the all-wildcard-arguments probe must
  /// fail, the probe -- and with it the gated permutation family -- is
  /// statically skipped, saving the probe's oracle call without changing
  /// any emitted candidate. The searcher installs this only in
  /// slice-guided mode, outside triage.
  const analysis::SliceGuide *Guide = nullptr;

  /// Hash-consing arena (may be null). When set, lazily-gated follow-up
  /// families capture the examined node as an interned id -- the overlay
  /// spine -- instead of a deep clone held alive by the closure, so
  /// families that never fire (their probe failed) pin no dead trees.
  /// Emitted candidates are identical either way.
  std::shared_ptr<caml::AstArena> Arena;
};

/// Produces the constructive changes to try at \p Node.
/// The node is examined read-only; every returned replacement is a fresh
/// tree. Probes and lazy follow-ups encode the gating structure.
std::vector<CandidateChange> enumerateChanges(const caml::Expr &Node,
                                              const EnumeratorOptions &Opts);

/// Constructive changes for a whole top-level declaration (toggling
/// `rec`, currying/tupling the declared parameters). Returns modified
/// declaration clones with descriptions.
struct DeclChange {
  caml::DeclPtr Replacement;
  std::string Description;
};
std::vector<DeclChange> enumerateDeclChanges(const caml::Decl &D);

} // namespace seminal

#endif // SEMINAL_CORE_ENUMERATOR_H
