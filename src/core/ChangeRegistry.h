//===- ChangeRegistry.h - User-extensible constructive changes --*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "open framework" the paper sketches twice -- Section 2.2 ("One
/// could even imagine an open framework where programmers could add
/// possible changes (especially since it does not threaten compiler
/// correctness)") and Section 6 (useful for embedded domain-specific
/// languages that want error messages in their own vocabulary).
///
/// A ChangeGenerator inspects a node and may contribute candidate
/// changes; registered generators run alongside the built-in Figure 3
/// catalog at every node the searcher examines. Because every candidate
/// still has to pass the oracle, a bad generator can waste time but can
/// never produce an unsound suggestion -- the property that makes the
/// framework safe to open up.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_CHANGEREGISTRY_H
#define SEMINAL_CORE_CHANGEREGISTRY_H

#include "core/Change.h"
#include "minicaml/Ast.h"

#include <functional>
#include <string>
#include <vector>

namespace seminal {

/// A pluggable change source: examine \p Node, append candidates.
using ChangeGenerator =
    std::function<void(const caml::Expr &Node,
                       std::vector<CandidateChange> &Out)>;

/// A named collection of user-supplied change generators.
class ChangeRegistry {
public:
  /// Registers \p Gen under \p Name (names are informational; duplicates
  /// are allowed and all run).
  void add(std::string Name, ChangeGenerator Gen);

  /// Runs every generator on \p Node, appending to \p Out.
  void generate(const caml::Expr &Node,
                std::vector<CandidateChange> &Out) const;

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

private:
  struct Entry {
    std::string Name;
    ChangeGenerator Gen;
  };
  std::vector<Entry> Entries;
};

} // namespace seminal

#endif // SEMINAL_CORE_CHANGEREGISTRY_H
