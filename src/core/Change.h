//===- Change.h - Candidate changes and suggestions -------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The currency of the search procedure. A CandidateChange is one edit the
/// enumerator proposes for a node, optionally with lazily-computed
/// follow-ups ("More Efficient Search", Section 2.2): a cheap probe whose
/// outcome gates a family of expensive variants, so argument permutations
/// are only attempted when any permutation could possibly succeed. A
/// Suggestion is a change that the oracle confirmed, packaged with
/// everything the ranker and the message renderer need.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORE_CHANGE_H
#define SEMINAL_CORE_CHANGE_H

#include "minicaml/Arena.h"
#include "minicaml/Ast.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace seminal {

/// A whole program held either eagerly (an owned clone) or as interned
/// declaration ids over a shared hash-consing arena, materialized on
/// first access. Suggestions carry their modified program this way so
/// that confirming a candidate costs O(edit spine) interned nodes, not a
/// deep copy; the tree is only built if something (the evaluation judge,
/// a test) actually reads it. Converts implicitly to const Program&, so
/// consumers are oblivious to which representation they got.
class LazyProgram {
public:
  LazyProgram() = default;
  LazyProgram(caml::Program P) : Cache(std::move(P)), Materialized(true) {}
  LazyProgram(std::shared_ptr<caml::AstArena> Arena,
              std::vector<caml::AstArena::DeclId> Decls)
      : Arena(std::move(Arena)), DeclIds(std::move(Decls)) {}
  LazyProgram(LazyProgram &&) = default;
  LazyProgram &operator=(LazyProgram &&) = default;

  operator const caml::Program &() const { return get(); }

  const caml::Program &get() const {
    if (!Materialized) {
      Cache.Decls.reserve(DeclIds.size());
      for (caml::AstArena::DeclId Id : DeclIds)
        Cache.Decls.push_back(Arena->materializeDecl(Id));
      Materialized = true;
    }
    return Cache;
  }

private:
  std::shared_ptr<caml::AstArena> Arena;
  std::vector<caml::AstArena::DeclId> DeclIds;
  mutable caml::Program Cache;
  mutable bool Materialized = false;
};

/// Classification of a successful change, in the ranker's preference
/// order: Constructive > Adaptation > Removal (Sections 2.1-2.3);
/// pattern fixes arise only inside triage phases (Section 2.4).
enum class ChangeKind {
  Constructive,
  Adaptation,
  Removal,
  PatternFix,
};

/// Stable lowercase name for a change kind ("constructive", ...), used
/// by telemetry records and the run report.
inline const char *changeKindName(ChangeKind K) {
  switch (K) {
  case ChangeKind::Constructive:
    return "constructive";
  case ChangeKind::Adaptation:
    return "adaptation";
  case ChangeKind::Removal:
    return "removal";
  case ChangeKind::PatternFix:
    return "pattern-fix";
  }
  return "unknown";
}

/// One candidate edit produced by the enumerator.
struct CandidateChange {
  /// The replacement subtree (already built; the searcher installs it at
  /// the node being examined).
  caml::ExprPtr Replacement;

  /// Human-readable description of the edit, used in messages and tests
  /// (e.g. "curry the tupled parameter").
  std::string Description;

  /// When true this change is only a feasibility probe: its success or
  /// failure steers follow-ups but it is never reported as a suggestion.
  bool IsProbe = false;

  /// Rank nudge among same-site constructive changes: negative values
  /// mark idiom-specific fixes (e.g. `:=` to `<-` on a record field)
  /// that should beat generic rewrites when both type-check. "Special
  /// cases are encouraged rather than discouraged" (Section 2.2).
  int Priority = 0;

  /// Lazily-computed follow-up changes; invoked with whether this change
  /// type-checked. Laziness avoids building syntax for variants that are
  /// gated off (Section 2.2).
  std::function<std::vector<CandidateChange>(bool Succeeded)> FollowUps;
};

/// A change the oracle accepted, ready for ranking and rendering.
struct Suggestion {
  ChangeKind Kind = ChangeKind::Removal;
  bool ViaTriage = false;
  /// Number of sibling subtrees that had to be wildcarded (triage only);
  /// the ranker prefers fewer (Section 2.4).
  int TriageRemovals = 0;

  /// Where the change applies.
  caml::NodePath Path;
  /// What was there (clone of the original subtree).
  caml::ExprPtr Original;
  /// What to put there (clone of the replacement).
  caml::ExprPtr Replacement;

  std::string Description;
  unsigned OriginalSize = 0;
  unsigned ReplacementSize = 0;
  int Priority = 0; ///< CandidateChange::Priority of the applied change.

  /// Rendered type of the replacement in context, when available.
  std::optional<std::string> ReplacementType;

  /// Rendered enclosing declaration with the replacement installed (the
  /// "within context ..." part of the message). For triaged suggestions
  /// the context shows the sibling wildcards.
  std::string ContextAfter;

  /// For pattern fixes: the rendered original/replacement pattern.
  std::string PatternBefore;
  std::string PatternAfter;

  /// Set when the node is a variable whose removal succeeds but whose
  /// adaptation fails: the tell-tale of an unbound/misspelled identifier
  /// (Section 3.3's `print` vs `print_string` example).
  bool LikelyUnboundVariable = false;

  /// Set when the changed node is in the error slice's minimized core
  /// (only when a slice was computed); the ranker prefers such
  /// suggestions on otherwise-equal scores.
  bool InSlice = false;

  /// The whole modified program (for triage: includes sibling wildcards,
  /// so it need not type-check by itself). Used by the evaluation judge;
  /// stored as arena overlays and materialized only when read.
  LazyProgram Modified;

  Suggestion() = default;
  Suggestion(Suggestion &&) = default;
  Suggestion &operator=(Suggestion &&) = default;
};

} // namespace seminal

#endif // SEMINAL_CORE_CHANGE_H
