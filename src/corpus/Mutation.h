//===- Mutation.h - Error seeds for the synthetic corpus --------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluated on 1075 real ill-typed student files we do not
/// have. This module substitutes for them: it injects realistic mistakes
/// into well-typed "assignment" programs. The mutation catalog is drawn
/// from the error kinds the paper itself documents (Figures 2, 3, 8, 9
/// and the Section 3.3 anecdotes): curried-vs-tupled confusion, swapped
/// arguments, missing/extra arguments, misspelled identifiers, `+` on
/// strings, comma lists, missing `rec`, forgotten dereferences, and so
/// on. Each mutation records ground truth (location + inverse edit) so
/// the automated judge can score messages the way the authors scored
/// them by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORPUS_MUTATION_H
#define SEMINAL_CORPUS_MUTATION_H

#include "minicaml/Ast.h"
#include "support/Rng.h"

#include <optional>
#include <string>
#include <vector>

namespace seminal {

/// The kinds of mistakes the corpus injects.
enum class MutationKind {
  SwapCallArgs,     ///< f a b -> f b a (the Figure 8 mistake)
  TupleCurriedFun,  ///< fun x y -> e  ->  fun (x, y) -> e (Figure 2)
  CurryTupledFun,   ///< fun (x, y) -> e  ->  fun x y -> e
  CallWithTuple,    ///< f a b -> f (a, b)
  DropCallArg,      ///< f a b -> f a (the Figure 9 mistake)
  ExtraCallArg,     ///< f a -> f a a
  MisspellVar,      ///< strlen -> strlenn (Section 3.3's print)
  PlusOnStrings,    ///< a ^ b -> a + b
  CommaList,        ///< [a; b; c] -> [a, b, c] (Section 5.3)
  MissingRec,       ///< let rec f = ... -> let f = ...
  IntForString,     ///< "s" -> 0
  CondNotBool,      ///< if c then -> if 1 then
  ConsForAppend,    ///< a @ b -> a :: b
  MissingDeref,     ///< !r -> r
};

/// Renders the kind for reports.
std::string mutationKindName(MutationKind Kind);

/// Number of distinct mutation kinds (for sweeps).
constexpr int NumMutationKinds = 14;

/// Ground truth for one injected mistake, expressed against the
/// *reparsed* mutated program (print + parse normalizes spans).
struct GroundTruth {
  MutationKind Kind;
  /// Path of the mutated node. For declaration-level mutations
  /// (MissingRec) the path has no steps.
  caml::NodePath Path;
  /// Rendered before/after of the mutated node.
  std::string Before;
  std::string After;
};

/// Result of mutating a program.
struct MutationResult {
  caml::Program Mutated;
  std::vector<GroundTruth> Truths;
};

/// Applies \p Count mutations (best effort -- fewer if the program lacks
/// applicable sites) to a clone of \p Template, ensuring the result does
/// NOT type-check. \returns nullopt if no failing mutant could be built
/// (rare; caller resamples).
std::optional<MutationResult> mutateProgram(const caml::Program &Template,
                                            unsigned Count, Rng &R);

/// Applies one specific mutation kind at a random applicable site.
/// Exposed for tests; does not verify ill-typedness.
std::optional<MutationResult> applyOneMutation(const caml::Program &Template,
                                               MutationKind Kind, Rng &R);

} // namespace seminal

#endif // SEMINAL_CORPUS_MUTATION_H
