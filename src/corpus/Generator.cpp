//===- Generator.cpp - Synthetic student-corpus generator ------------------==//

#include "corpus/Generator.h"

#include "corpus/Programs.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <cassert>

using namespace seminal;
using namespace seminal::caml;

const std::vector<ProgrammerProfile> &seminal::programmerProfiles() {
  // Ten volunteers with visibly different habits: error-proneness and
  // recompile eagerness both vary, like the per-programmer variation in
  // the paper's Figure 5(a).
  static const std::vector<ProgrammerProfile> Profiles = {
      {1, 0.30, 0.30, 4}, {2, 0.50, 0.55, 5}, {3, 0.40, 0.40, 3},
      {4, 0.60, 0.60, 5}, {5, 0.35, 0.35, 4}, {6, 0.45, 0.50, 4},
      {7, 0.25, 0.25, 3}, {8, 0.55, 0.65, 5}, {9, 0.40, 0.45, 4},
      {10, 0.50, 0.40, 4},
  };
  return Profiles;
}

Corpus seminal::generateCorpus(const CorpusOptions &Opts) {
  Corpus Result;
  Rng Root(Opts.Seed);

  // Parse every assignment template once.
  std::vector<Program> Templates;
  for (const AssignmentTemplate &A : assignmentTemplates()) {
    ParseResult R = parseProgram(A.Source);
    assert(R.ok() && "assignment template must parse");
    Templates.push_back(std::move(*R.Prog));
  }

  int NextClassId = 1;
  for (const ProgrammerProfile &P : programmerProfiles()) {
    Rng PersonRng = Root.fork();
    for (size_t A = 0; A < Templates.size(); ++A) {
      // Programmers improve: later assignments yield fewer episodes.
      double Experience = 1.0 - 0.12 * double(A);
      int Episodes = int(double(P.EpisodesPerAssignment) * Opts.Scale *
                             Experience +
                         0.5);
      if (Episodes < 1)
        Episodes = 1;
      for (int E = 0; E < Episodes; ++E) {
        unsigned ErrorCount = 1;
        if (PersonRng.chance(P.MultiErrorRate))
          ErrorCount = unsigned(PersonRng.range(2, 3));
        auto Mutant = mutateProgram(Templates[A], ErrorCount, PersonRng);
        if (!Mutant)
          continue; // no failing mutant found; skip this episode

        CorpusFile File;
        File.Programmer = P.Id;
        File.Assignment = int(A) + 1;
        File.ClassId = NextClassId++;
        File.ClassSize = unsigned(PersonRng.geometric(P.RetryContinueProb));
        File.Source = printProgram(Mutant->Mutated);
        File.Truths = std::move(Mutant->Truths);

        Result.ClassSizes.add(int64_t(File.ClassSize));
        Result.TotalCollected += File.ClassSize;
        Result.Analyzed.push_back(std::move(File));
      }
    }
  }
  return Result;
}
