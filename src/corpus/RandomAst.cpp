//===- RandomAst.cpp - Random mini-Caml programs for fuzzing --------------==//

#include "corpus/RandomAst.h"

using namespace seminal;
using namespace seminal::caml;

namespace {

const char *VarPool[] = {"x",  "y",   "z",    "f",        "g",
                         "xs", "acc", "n",    "List.map", "List.length",
                         "s",  "fst", "snd",  "ref",      "print_string"};

const char *BinOps[] = {"+",  "-", "*",  "/",  "=",  "<",  ">",
                        "<=", "^", "@",  "&&", "||", ":="};

std::string randomVar(Rng &R) {
  return VarPool[size_t(R.range(0, int64_t(std::size(VarPool)) - 1))];
}

std::string randomLocalVar(Rng &R) {
  // Names safe to bind (no module paths).
  static const char *Pool[] = {"a", "b", "c", "p", "q", "r", "w"};
  return Pool[size_t(R.range(0, int64_t(std::size(Pool)) - 1))];
}

/// Binding positions (let p = ...) accept simple patterns only: a
/// top-level cons pattern needs parentheses there, which the printer
/// does not add, so exclude it from binding sites.
caml::PatternPtr randomBindingPattern(Rng &R) {
  caml::PatternPtr P = seminal::randomPattern(R, 1);
  if (P->kind() == Pattern::Kind::Cons)
    return makeVarPattern(randomLocalVar(R));
  return P;
}

} // namespace

PatternPtr seminal::randomPattern(Rng &R, unsigned MaxDepth) {
  int Kind = int(R.range(0, MaxDepth == 0 ? 5 : 8));
  switch (Kind) {
  case 0:
    return makeWildPattern();
  case 1:
    return makeVarPattern(randomLocalVar(R));
  case 2:
    return makeIntPattern(long(R.range(-5, 20)));
  case 3:
    return makeBoolPattern(R.chance(0.5));
  case 4:
    return makeStringPattern(R.chance(0.5) ? "s" : "t");
  case 5:
    return makeUnitPattern();
  case 6: {
    std::vector<PatternPtr> Elems;
    int N = int(R.range(2, 3));
    for (int I = 0; I < N; ++I)
      Elems.push_back(randomPattern(R, MaxDepth - 1));
    return makeTuplePattern(std::move(Elems));
  }
  case 7: {
    std::vector<PatternPtr> Elems;
    int N = int(R.range(0, 2));
    for (int I = 0; I < N; ++I)
      Elems.push_back(randomPattern(R, MaxDepth - 1));
    return makeListPattern(std::move(Elems));
  }
  default:
    return makeConsPattern(randomPattern(R, MaxDepth - 1),
                           randomPattern(R, MaxDepth - 1));
  }
}

ExprPtr seminal::randomExpr(Rng &R, unsigned MaxDepth) {
  int Kind = int(R.range(0, MaxDepth == 0 ? 4 : 16));
  switch (Kind) {
  case 0:
    // Non-negative only: a negative literal prints as "-n", which
    // reparses as unary minus applied to n (as in OCaml's surface
    // syntax), so it cannot round-trip as a literal.
    return makeIntLit(long(R.range(0, 99)));
  case 1:
    return makeBoolLit(R.chance(0.5));
  case 2:
    return makeStringLit(R.chance(0.5) ? "hello" : "w orld\n");
  case 3:
    return makeUnitLit();
  case 4:
    return makeVar(R.chance(0.7) ? randomLocalVar(R) : randomVar(R));
  case 5: {
    std::vector<PatternPtr> Params;
    int N = int(R.range(1, 3));
    for (int I = 0; I < N; ++I)
      Params.push_back(randomPattern(R, 1));
    return makeFun(std::move(Params), randomExpr(R, MaxDepth - 1));
  }
  case 6: {
    std::vector<ExprPtr> Args;
    int N = int(R.range(1, 3));
    for (int I = 0; I < N; ++I)
      Args.push_back(randomExpr(R, MaxDepth - 1));
    // A nullary-constructor callee would reparse as constructor
    // application, a different node; substitute a variable.
    ExprPtr Callee = randomExpr(R, MaxDepth - 1);
    if (Callee->kind() == Expr::Kind::Constr)
      Callee = makeVar(randomLocalVar(R));
    return makeApp(std::move(Callee), std::move(Args));
  }
  case 7: {
    bool Sugar = R.chance(0.5);
    std::vector<PatternPtr> Params;
    PatternPtr Binding;
    if (Sugar) {
      Binding = makeVarPattern(randomLocalVar(R));
      int N = int(R.range(1, 2));
      for (int I = 0; I < N; ++I)
        Params.push_back(randomPattern(R, 1));
    } else {
      Binding = randomBindingPattern(R);
    }
    return makeLet(R.chance(0.3) && Sugar, std::move(Binding),
                   std::move(Params), randomExpr(R, MaxDepth - 1),
                   randomExpr(R, MaxDepth - 1));
  }
  case 8:
    return makeIf(randomExpr(R, MaxDepth - 1), randomExpr(R, MaxDepth - 1),
                  R.chance(0.8) ? randomExpr(R, MaxDepth - 1) : nullptr);
  case 9: {
    std::vector<ExprPtr> Elems;
    int N = int(R.range(2, 3));
    for (int I = 0; I < N; ++I)
      Elems.push_back(randomExpr(R, MaxDepth - 1));
    return makeTuple(std::move(Elems));
  }
  case 10: {
    std::vector<ExprPtr> Elems;
    int N = int(R.range(0, 3));
    for (int I = 0; I < N; ++I)
      Elems.push_back(randomExpr(R, MaxDepth - 1));
    return makeList(std::move(Elems));
  }
  case 11:
    return makeCons(randomExpr(R, MaxDepth - 1),
                    randomExpr(R, MaxDepth - 1));
  case 12: {
    const char *Op = BinOps[size_t(R.range(0, int64_t(std::size(BinOps)) - 1))];
    return makeBinOp(Op, randomExpr(R, MaxDepth - 1),
                     randomExpr(R, MaxDepth - 1));
  }
  case 13: {
    static const char *Ops[] = {"not", "-", "!"};
    return makeUnaryOp(Ops[size_t(R.range(0, 2))],
                       randomExpr(R, MaxDepth - 1));
  }
  case 14: {
    std::vector<MatchArm> Arms;
    int N = int(R.range(1, 3));
    for (int I = 0; I < N; ++I)
      Arms.push_back(
          MatchArm{randomPattern(R, 1), randomExpr(R, MaxDepth - 1)});
    return makeMatch(randomExpr(R, MaxDepth - 1), std::move(Arms));
  }
  case 15:
    return makeSeq(randomExpr(R, MaxDepth - 1),
                   randomExpr(R, MaxDepth - 1));
  default: {
    if (R.chance(0.5))
      return makeConstr(R.chance(0.5) ? "Some" : "None",
                        R.chance(0.5) ? randomExpr(R, MaxDepth - 1)
                                      : nullptr);
    return makeRaise(makeConstr(R.chance(0.5) ? "Not_found" : "Foo",
                                nullptr));
  }
  }
}

Program seminal::randomProgram(Rng &R, unsigned MaxDecls,
                               unsigned MaxDepth) {
  Program Prog;
  unsigned N = unsigned(R.range(1, MaxDecls));
  for (unsigned I = 0; I < N; ++I) {
    bool Sugar = R.chance(0.6);
    std::vector<PatternPtr> Params;
    PatternPtr Binding;
    if (Sugar) {
      Binding = makeVarPattern(randomLocalVar(R));
      unsigned NumParams = unsigned(R.range(1, 2));
      for (unsigned J = 0; J < NumParams; ++J)
        Params.push_back(randomPattern(R, 1));
    } else {
      Binding = randomBindingPattern(R);
    }
    Prog.Decls.push_back(makeLetDecl(R.chance(0.2) && Sugar,
                                     std::move(Binding), std::move(Params),
                                     randomExpr(R, MaxDepth)));
  }
  return Prog;
}
