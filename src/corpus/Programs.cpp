//===- Programs.cpp - Assignment templates ---------------------------------==//

#include "corpus/Programs.h"

using namespace seminal;

namespace {

const char *Assignment1 = R"caml(
let rec mymap f xs = match xs with [] -> [] | x :: t -> f x :: mymap f t
let rec myfilter p xs =
  match xs with
    [] -> []
  | x :: t -> if p x then x :: myfilter p t else myfilter p t
let rec myfold f acc xs =
  match xs with [] -> acc | x :: t -> myfold f (f acc x) t
let rec myappend a b = match a with [] -> b | x :: t -> x :: myappend t b
let rec myrev xs = match xs with [] -> [] | x :: t -> myappend (myrev t) [x]
let doubled = mymap (fun x -> x * 2) [1; 2; 3; 4]
let evens = myfilter (fun x -> x / 2 * 2 = x) [1; 2; 3; 4; 5; 6]
let total = myfold (fun a b -> a + b) 0 doubled
let names = ["alice"; "bob"; "carol"]
let greet name = "hello, " ^ name
let greetings = mymap greet names
let banner = myfold (fun a b -> a ^ " " ^ b) "" greetings
let zipped = List.combine doubled [10; 20; 30; 40]
let pairsums = mymap (fun (a, b) -> a + b) zipped
let howmany = List.length pairsums
let biggest = myfold (fun a b -> if a > b then a else b) 0 pairsums
)caml";

const char *Assignment2 = R"caml(
type expr =
    Num of int
  | Add of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Ref of string
type env = { mutable bindings : (string * int) list }
let env0 = { bindings = [("x", 3); ("y", 4)] }
let bindvar env name value = env.bindings <- (name, value) :: env.bindings
let rec lookup name pairs =
  match pairs with
    [] -> raise Not_found
  | (k, v) :: t -> if k = name then v else lookup name t
let rec eval e =
  match e with
    Num n -> n
  | Add (a, b) -> eval a + eval b
  | Mul (a, b) -> eval a * eval b
  | Neg a -> 0 - eval a
  | Ref name -> lookup name env0.bindings
let sample = Add (Num 1, Mul (Num 2, Num 3))
let answer = eval sample
let rec show e =
  match e with
    Num n -> string_of_int n
  | Add (a, b) -> "(" ^ show a ^ " + " ^ show b ^ ")"
  | Mul (a, b) -> "(" ^ show a ^ " * " ^ show b ^ ")"
  | Neg a -> "-" ^ show a
  | Ref name -> name
let rendered = show sample
let both = (show sample, eval sample)
let rec size e =
  match e with
    Num n -> 1
  | Add (a, b) -> size a + size b
  | Mul (a, b) -> size a + size b
  | Neg a -> 1 + size a
  | Ref name -> 1
let complexity = size sample + String.length rendered
let rec same_shape a b =
  match a with
    Num x -> (match b with Num y -> true | Neg q -> false | _ -> false)
  | Add (p, q) ->
      (match b with Add (r, s) -> same_shape p r && same_shape q s
                  | Mul (r, s) -> false
                  | Neg r -> false
                  | _ -> false)
  | Mul (p, q) ->
      (match b with Mul (r, s) -> same_shape p r && same_shape q s
                  | Add (r, s) -> false
                  | _ -> false)
  | Neg p -> (match b with Neg q -> same_shape p q | Num y -> false
                         | _ -> false)
  | Ref n -> (match b with Ref m -> n = m | Num y -> false | _ -> false)
let shapes_agree = same_shape sample (Add (Num 1, Num 2))
)caml";

const char *Assignment3 = R"caml(
type student = { sname : string; mutable score : int; year : int }
let mk name year = { sname = name; score = 0; year = year }
let roster = [mk "ada" 1; mk "grace" 2; mk "alan" 1]
let rec find name students =
  match students with
    [] -> None
  | s :: t -> if s.sname = name then Some s else find name t
let award points s = s.score <- s.score + points
let rec award_all points students =
  match students with
    [] -> ()
  | s :: t -> award points s; award_all points t
let rec total students =
  match students with [] -> 0 | s :: t -> s.score + total t
let first_years = List.filter (fun s -> s.year = 1) roster
let student_names = List.map (fun s -> s.sname) roster
let labels =
  List.map (fun s -> s.sname ^ ": " ^ string_of_int s.score) roster
let summary = String.concat ", " labels
let counter = ref 0
let visit s = counter := !counter + 1; s.sname
let visited = List.map visit roster
let popularity = !counter + List.length visited
)caml";

const char *Assignment4 = R"caml(
type move = Forward of int | Turn of int | Repeat of int * move list
type state = { mutable px : int; mutable py : int; mutable dir : int }
let start () = { px = 0; py = 0; dir = 0 }
let rec run st moves =
  match moves with
    [] -> st
  | Forward n :: rest ->
      (if st.dir = 0 then st.px <- st.px + n else st.py <- st.py + n);
      run st rest
  | Turn d :: rest -> st.dir <- st.dir + d; run st rest
  | Repeat (n, body) :: rest ->
      if n = 0 then run st rest
      else run (run st body) (Repeat (n - 1, body) :: rest)
let square = Repeat (4, [Forward 10; Turn 90])
let final = run (start ()) [square; Forward 5]
let rec count_moves moves =
  match moves with
    [] -> 0
  | Repeat (n, body) :: rest -> n * count_moves body + count_moves rest
  | _ :: rest -> 1 + count_moves rest
let depth = count_moves [square]
let show_state st = "(" ^ string_of_int st.px ^ ", " ^ string_of_int st.py ^ ")"
let report = show_state final
let trail = List.map (fun n -> Forward n) [1; 2; 3]
let longer = trail @ [Turn 90; Forward 7]
let steps = count_moves longer
let rec equal_moves a b =
  match a with
    Forward n -> (match b with Forward m -> n = m | Turn e -> false
                             | _ -> false)
  | Turn d -> (match b with Turn e -> d = e | Forward m -> false
                          | _ -> false)
  | Repeat (n, body) ->
      (match b with
         Repeat (m, rest) -> n = m && count_moves body = count_moves rest
       | Forward m -> false
       | Turn e -> false
       | _ -> false)
let same_path = equal_moves square (Repeat (4, trail))
)caml";

const char *Assignment5 = R"caml(
let compose f g x = f (g x)
let twice f = compose f f
let add1 x = x + 1
let add2 = twice add1
let rec ntimes n f x = if n = 0 then x else ntimes (n - 1) f (f x)
let ten = ntimes 8 add1 2
let rec tabulate f n =
  if n = 0 then [] else tabulate f (n - 1) @ [f (n - 1)]
let squares = tabulate (fun i -> i * i) 6
let safe_div a b = if b = 0 then None else Some (a / b)
let rec sum_opts opts =
  match opts with
    [] -> 0
  | Some v :: t -> v + sum_opts t
  | None :: t -> sum_opts t
let parts = sum_opts [safe_div 10 2; safe_div 3 0; Some 4]
let apply_pair (f, x) = f x
let nine = apply_pair (add1, 8)
let pipeline = [add1; twice add1; fun x -> x * 3]
let rec thread x fs = match fs with [] -> x | f :: t -> thread (f x) t
let threaded = thread 1 pipeline
let describe n = "value: " ^ string_of_int n
let captions = List.map describe [ten; nine; threaded]
)caml";

} // namespace

const std::vector<AssignmentTemplate> &seminal::assignmentTemplates() {
  static const std::vector<AssignmentTemplate> Templates = {
      {1, "list utilities", Assignment1},
      {2, "expression interpreter", Assignment2},
      {3, "student database", Assignment3},
      {4, "logo mover", Assignment4},
      {5, "higher-order functions", Assignment5},
  };
  return Templates;
}
