//===- Programs.h - Assignment templates for the corpus ---------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Five well-typed mini-Caml "homework assignments" standing in for the
/// paper's five 100-200 line course assignments (Section 3.1): list
/// utilities, an arithmetic-expression interpreter, a record-based
/// student database, a Logo-like mover (the domain of the paper's
/// Figure 9), and higher-order-function drills. Every template
/// type-checks (asserted by tests); the corpus generator injects
/// mutations into them.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORPUS_PROGRAMS_H
#define SEMINAL_CORPUS_PROGRAMS_H

#include <string>
#include <vector>

namespace seminal {

/// One homework assignment.
struct AssignmentTemplate {
  int Id;            ///< 1-based assignment number.
  std::string Title; ///< Human-readable name.
  std::string Source;
};

/// The five assignments, in course order (difficulty increases; the
/// evaluation's Figure 5(b) groups results by this id).
const std::vector<AssignmentTemplate> &assignmentTemplates();

} // namespace seminal

#endif // SEMINAL_CORPUS_PROGRAMS_H
