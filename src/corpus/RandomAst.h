//===- RandomAst.h - Random mini-Caml programs for fuzzing ------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random mini-Caml ASTs -- deliberately *not* necessarily
/// well-typed -- for property testing: the printer must round-trip any
/// tree, the checker must be total (accept or produce a located error,
/// never crash), and the searcher must stay sound on arbitrary inputs
/// within its budget.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORPUS_RANDOMAST_H
#define SEMINAL_CORPUS_RANDOMAST_H

#include "minicaml/Ast.h"
#include "support/Rng.h"

namespace seminal {

/// A random expression with at most \p MaxDepth nesting levels.
caml::ExprPtr randomExpr(Rng &R, unsigned MaxDepth);

/// A random pattern with at most \p MaxDepth nesting levels.
caml::PatternPtr randomPattern(Rng &R, unsigned MaxDepth);

/// A random program of up to \p MaxDecls let declarations.
caml::Program randomProgram(Rng &R, unsigned MaxDecls, unsigned MaxDepth);

} // namespace seminal

#endif // SEMINAL_CORPUS_RANDOMAST_H
