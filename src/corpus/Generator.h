//===- Generator.h - Synthetic student-corpus generator ---------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the paper's data collection (Section 3.1): 10 volunteer
/// programmers x 5 assignments, each compile of an ill-typed file saved
/// with a timestamp. A "problem episode" is one underlying mistake (or a
/// few independent ones); the programmer recompiles the same broken file
/// several times before fixing it, producing a time-sequence equivalence
/// class. The evaluation analyzes one representative per class (the
/// paper's quotienting), and Figure 6 plots the class-size distribution.
///
/// Everything is deterministic given the seed.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_CORPUS_GENERATOR_H
#define SEMINAL_CORPUS_GENERATOR_H

#include "corpus/Mutation.h"
#include "support/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seminal {

/// Behavioral parameters for one simulated programmer.
struct ProgrammerProfile {
  int Id = 0;
  /// Probability that a problem episode contains 2-3 independent errors
  /// rather than 1 (drives the triage categories).
  double MultiErrorRate = 0.3;
  /// Geometric continuation probability for recompiles of the same
  /// problem; higher = longer equivalence classes (Figure 6's tail).
  double RetryContinueProb = 0.45;
  /// Problem episodes per assignment (before scaling).
  int EpisodesPerAssignment = 4;
};

/// The ten simulated volunteers. Rates vary per programmer the way the
/// paper's per-programmer results vary (Figure 5(a)).
const std::vector<ProgrammerProfile> &programmerProfiles();

/// One analyzed file: a representative of its equivalence class.
struct CorpusFile {
  int Programmer = 0;
  int Assignment = 0;
  int ClassId = 0;
  unsigned ClassSize = 1; ///< How many collected files it represents.
  std::string Source;     ///< Printed mutated program.
  std::vector<GroundTruth> Truths;
};

/// Corpus-generation knobs.
struct CorpusOptions {
  uint64_t Seed = 20070611; ///< PLDI 2007's first day.
  /// Multiplies EpisodesPerAssignment; 1.0 yields a few hundred analyzed
  /// files, ~5x yields the paper's ~1075.
  double Scale = 1.0;
};

/// The generated corpus.
struct Corpus {
  std::vector<CorpusFile> Analyzed;
  Histogram ClassSizes;        ///< Figure 6's distribution.
  unsigned TotalCollected = 0; ///< Sum of class sizes (the paper's 2122).
};

/// Generates the corpus. Deterministic in Opts.Seed.
Corpus generateCorpus(const CorpusOptions &Opts = {});

} // namespace seminal

#endif // SEMINAL_CORPUS_GENERATOR_H
