//===- Mutation.cpp - Error-seed implementation ----------------------------==//

#include "corpus/Mutation.h"

#include "minicaml/Infer.h"
#include "minicaml/Printer.h"

#include <cassert>
#include <functional>

using namespace seminal;
using namespace seminal::caml;

std::string seminal::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::SwapCallArgs:
    return "swap-call-args";
  case MutationKind::TupleCurriedFun:
    return "tuple-curried-fun";
  case MutationKind::CurryTupledFun:
    return "curry-tupled-fun";
  case MutationKind::CallWithTuple:
    return "call-with-tuple";
  case MutationKind::DropCallArg:
    return "drop-call-arg";
  case MutationKind::ExtraCallArg:
    return "extra-call-arg";
  case MutationKind::MisspellVar:
    return "misspell-var";
  case MutationKind::PlusOnStrings:
    return "plus-on-strings";
  case MutationKind::CommaList:
    return "comma-list";
  case MutationKind::MissingRec:
    return "missing-rec";
  case MutationKind::IntForString:
    return "int-for-string";
  case MutationKind::CondNotBool:
    return "cond-not-bool";
  case MutationKind::ConsForAppend:
    return "cons-for-append";
  case MutationKind::MissingDeref:
    return "missing-deref";
  }
  return "unknown";
}

namespace {

/// Preorder walk over every expression with its path.
void walkExprs(Program &Prog,
               const std::function<void(const NodePath &, Expr *)> &Fn) {
  for (unsigned D = 0; D < Prog.Decls.size(); ++D) {
    Decl *TheDecl = Prog.Decls[D].get();
    if (TheDecl->kind() != Decl::Kind::Let || !TheDecl->Rhs)
      continue;
    std::function<void(const NodePath &, Expr *)> Rec =
        [&](const NodePath &Path, Expr *Node) {
          Fn(Path, Node);
          for (unsigned I = 0; I < Node->numChildren(); ++I)
            Rec(Path.descend(I), Node->child(I));
        };
    Rec(NodePath(D), TheDecl->Rhs.get());
  }
}

/// Collects paths of every expression satisfying \p Pred.
std::vector<NodePath> findSites(Program &Prog,
                                const std::function<bool(Expr *)> &Pred) {
  std::vector<NodePath> Sites;
  walkExprs(Prog, [&](const NodePath &Path, Expr *Node) {
    if (Pred(Node))
      Sites.push_back(Path);
  });
  return Sites;
}

bool pathsDisjoint(const NodePath &A, const NodePath &B) {
  if (A.DeclIndex != B.DeclIndex)
    return true;
  size_t N = std::min(A.Steps.size(), B.Steps.size());
  for (size_t I = 0; I < N; ++I)
    if (A.Steps[I] != B.Steps[I])
      return true;
  return false; // one is a prefix of the other (or equal)
}

bool disjointFromAll(const NodePath &Path,
                     const std::vector<GroundTruth> &Truths) {
  for (const auto &T : Truths)
    if (!pathsDisjoint(Path, T.Path))
      return false;
  return true;
}

/// Applies \p Kind at a random admissible site of \p Prog (in place).
/// \returns the ground truth, or nullopt when no site exists.
std::optional<GroundTruth>
applyAt(Program &Prog, MutationKind Kind, Rng &R,
        const std::vector<GroundTruth> &Existing,
        std::optional<unsigned> DeclFilter) {
  auto PickSite =
      [&](const std::function<bool(Expr *)> &Pred) -> std::optional<NodePath> {
    std::vector<NodePath> Sites = findSites(Prog, Pred);
    std::vector<NodePath> Ok;
    for (auto &S : Sites) {
      if (DeclFilter && S.DeclIndex != *DeclFilter)
        continue;
      if (disjointFromAll(S, Existing))
        Ok.push_back(S);
    }
    if (Ok.empty())
      return std::nullopt;
    return Ok[size_t(R.range(0, int64_t(Ok.size()) - 1))];
  };

  GroundTruth Truth;
  Truth.Kind = Kind;

  switch (Kind) {
  case MutationKind::SwapCallArgs: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::App && E->numChildren() >= 3;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    unsigned NumArgs = Node->numChildren() - 1;
    unsigned I = unsigned(R.range(1, NumArgs - 1));
    std::swap(Node->Children[I], Node->Children[I + 1]);
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::TupleCurriedFun: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::Fun && E->Params.size() >= 2;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    std::vector<PatternPtr> Elems;
    for (auto &Param : Node->Params)
      Elems.push_back(std::move(Param));
    Node->Params.clear();
    Node->Params.push_back(makeTuplePattern(std::move(Elems)));
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::CurryTupledFun: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::Fun && E->Params.size() == 1 &&
             E->Params[0]->kind() == Pattern::Kind::Tuple;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    std::vector<PatternPtr> Params;
    for (auto &Elem : Node->Params[0]->Elems)
      Params.push_back(std::move(Elem));
    Node->Params = std::move(Params);
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::CallWithTuple: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::App && E->numChildren() >= 3;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    std::vector<ExprPtr> Args;
    for (unsigned I = 1; I < Node->numChildren(); ++I)
      Args.push_back(std::move(Node->Children[I]));
    Node->Children.resize(1);
    Node->Children.push_back(makeTuple(std::move(Args)));
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::DropCallArg: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::App && E->numChildren() >= 3;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    // Drop the last argument: the partial-application mistake.
    Node->Children.pop_back();
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::ExtraCallArg: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::App && E->numChildren() >= 2;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    Node->Children.push_back(Node->Children.back()->clone());
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::MisspellVar: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::Var && E->Name.size() >= 3 &&
             E->Name.find('.') == std::string::npos;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    Node->Name.pop_back(); // drop the final character
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::PlusOnStrings: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::BinOp && E->Name == "^";
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    Node->Name = "+";
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::CommaList: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::List && E->numChildren() >= 2;
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    std::vector<ExprPtr> Elems;
    for (auto &Child : Node->Children)
      Elems.push_back(std::move(Child));
    Node->Children.clear();
    Node->Children.push_back(makeTuple(std::move(Elems)));
    Truth.After = printExpr(*Node);
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::MissingRec: {
    // Declaration-level first, then let-in expressions.
    std::vector<NodePath> Sites;
    for (unsigned D = 0; D < Prog.Decls.size(); ++D)
      if (Prog.Decls[D]->kind() == Decl::Kind::Let && Prog.Decls[D]->IsRec)
        Sites.push_back(NodePath(D));
    walkExprs(Prog, [&](const NodePath &Path, Expr *Node) {
      if (Node->kind() == Expr::Kind::Let && Node->IsRec)
        Sites.push_back(Path);
    });
    std::vector<NodePath> Ok;
    for (auto &S : Sites) {
      if (DeclFilter && S.DeclIndex != *DeclFilter)
        continue;
      if (disjointFromAll(S, Existing))
        Ok.push_back(S);
    }
    if (Ok.empty())
      return std::nullopt;
    NodePath Site = Ok[size_t(R.range(0, int64_t(Ok.size()) - 1))];
    if (Site.Steps.empty() && Prog.Decls[Site.DeclIndex]->IsRec) {
      Decl *D = Prog.Decls[Site.DeclIndex].get();
      Truth.Before = printDecl(*D);
      D->IsRec = false;
      Truth.After = printDecl(*D);
      Truth.Path = Site;
      return Truth;
    }
    Expr *Node = resolvePath(Prog, Site);
    if (!Node || Node->kind() != Expr::Kind::Let)
      return std::nullopt;
    Truth.Before = printExpr(*Node);
    Node->IsRec = false;
    Truth.After = printExpr(*Node);
    Truth.Path = Site;
    return Truth;
  }
  case MutationKind::IntForString: {
    auto Site = PickSite(
        [](Expr *E) { return E->kind() == Expr::Kind::StringLit; });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    replaceAtPath(Prog, *Site, makeIntLit(0));
    Truth.After = "0";
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::CondNotBool: {
    auto Site =
        PickSite([](Expr *E) { return E->kind() == Expr::Kind::If; });
    if (!Site)
      return std::nullopt;
    NodePath CondPath = Site->descend(0);
    Expr *Cond = resolvePath(Prog, CondPath);
    Truth.Before = printExpr(*Cond);
    replaceAtPath(Prog, CondPath, makeIntLit(1));
    Truth.After = "1";
    Truth.Path = CondPath;
    return Truth;
  }
  case MutationKind::ConsForAppend: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::BinOp && E->Name == "@";
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    ExprPtr New = makeCons(Node->Children[0]->clone(),
                           Node->Children[1]->clone());
    replaceAtPath(Prog, *Site, std::move(New));
    Truth.After = printExpr(*resolvePath(Prog, *Site));
    Truth.Path = *Site;
    return Truth;
  }
  case MutationKind::MissingDeref: {
    auto Site = PickSite([](Expr *E) {
      return E->kind() == Expr::Kind::UnaryOp && E->Name == "!";
    });
    if (!Site)
      return std::nullopt;
    Expr *Node = resolvePath(Prog, *Site);
    Truth.Before = printExpr(*Node);
    ExprPtr Inner = Node->Children[0]->clone();
    replaceAtPath(Prog, *Site, std::move(Inner));
    Truth.After = printExpr(*resolvePath(Prog, *Site));
    Truth.Path = *Site;
    return Truth;
  }
  }
  return std::nullopt;
}

} // namespace

std::optional<MutationResult>
seminal::applyOneMutation(const Program &Template, MutationKind Kind,
                          Rng &R) {
  MutationResult Result;
  Result.Mutated = Template.clone();
  auto Truth = applyAt(Result.Mutated, Kind, R, {}, std::nullopt);
  if (!Truth)
    return std::nullopt;
  Result.Truths.push_back(std::move(*Truth));
  return Result;
}

namespace {

/// Relative frequency of each mistake kind. Simple, local slips
/// (misspellings, wrong literal, wrong operator) dominate real novice
/// corpora; the nonlocal kinds that motivated the paper (curried/tupled
/// confusion, missing arguments in higher-order code) are a significant
/// minority. Indexed by MutationKind.
const double MutationWeights[NumMutationKinds] = {
    1.5, // SwapCallArgs
    1.8, // TupleCurriedFun
    1.2, // CurryTupledFun
    1.2, // CallWithTuple
    1.5, // DropCallArg
    1.5, // ExtraCallArg
    1.2, // MisspellVar
    2.5, // PlusOnStrings
    1.2, // CommaList
    1.5, // MissingRec
    2.0, // IntForString
    1.0, // CondNotBool
    0.8, // ConsForAppend
    1.0, // MissingDeref
};

MutationKind pickWeightedKind(Rng &R) {
  double Total = 0;
  for (double W : MutationWeights)
    Total += W;
  double X = R.unit() * Total;
  for (int I = 0; I < NumMutationKinds; ++I) {
    X -= MutationWeights[I];
    if (X <= 0)
      return MutationKind(I);
  }
  return MutationKind(NumMutationKinds - 1);
}

} // namespace

std::optional<MutationResult>
seminal::mutateProgram(const Program &Template, unsigned Count, Rng &R) {
  // Try a few times to build a mutant that actually fails to type-check.
  for (int Attempt = 0; Attempt < 16; ++Attempt) {
    MutationResult Result;
    Result.Mutated = Template.clone();
    unsigned Applied = 0;
    // Independent errors cluster in the declaration the programmer is
    // actively writing: once the first mutation lands, later ones go to
    // the same declaration (this is also what makes triage matter --
    // errors in different top-level bindings are separated by prefix
    // localization already).
    std::optional<unsigned> DeclFilter;
    for (unsigned I = 0; I < Count * 6 && Applied < Count; ++I) {
      MutationKind Kind = pickWeightedKind(R);
      auto Truth =
          applyAt(Result.Mutated, Kind, R, Result.Truths, DeclFilter);
      if (!Truth)
        continue;
      DeclFilter = Truth->Path.DeclIndex;
      Result.Truths.push_back(std::move(*Truth));
      ++Applied;
    }
    if (Applied == 0)
      continue;
    if (!caml::typecheckProgram(Result.Mutated).ok())
      return Result;
  }
  return std::nullopt;
}
