//===- Log.h - Structured per-request logging -------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured logging for the server path (DESIGN.md section 14). Each
/// line is one event with typed fields, rendered either as logfmt
/// (`ts=... level=info event=check session=alice latency_ms=12`) or as
/// one JSON object per line behind `--log-json`. Events below the
/// configured level are dropped before any field is formatted, so a
/// daemon at the default `warn` level pays one relaxed load per
/// suppressed event.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_LOG_H
#define SEMINAL_OBS_LOG_H

#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace seminal {
namespace obs {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Off = 4,
};

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false and leaves
/// \p Out untouched on anything else.
bool parseLogLevel(const std::string &S, LogLevel &Out);

const char *logLevelName(LogLevel L);

/// One log line under construction. Fields render in insertion order.
class LogEvent {
public:
  explicit LogEvent(std::string Event) : Event(std::move(Event)) {}

  LogEvent &str(const std::string &Key, const std::string &Value);
  LogEvent &num(const std::string &Key, int64_t Value);
  LogEvent &num(const std::string &Key, uint64_t Value);
  LogEvent &real(const std::string &Key, double Value);
  LogEvent &boolean(const std::string &Key, bool Value);

private:
  friend class Logger;
  enum class FieldKind { Str, Num, Real, Bool };
  struct Field {
    FieldKind K;
    std::string Key;
    std::string Str;
    int64_t Int = 0;
    uint64_t UInt = 0;
    bool IsUnsigned = false;
    double Real = 0.0;
    bool Bool = false;
  };
  std::string Event;
  std::vector<Field> Fields;
};

/// Thread-safe line-oriented logger. Writes to the stream handed in at
/// construction (the daemon passes std::cerr; tests pass a
/// stringstream). One mutex-guarded write per emitted line keeps lines
/// from interleaving across shard workers.
class Logger {
public:
  explicit Logger(std::ostream &OS, LogLevel Level = LogLevel::Warn,
                  bool Json = false)
      : OS(&OS), Level(int(Level)), Json(Json) {}

  /// Reads the level with a relaxed atomic load: enabled() is the
  /// suppressed-event fast path and runs on every shard worker while
  /// setLevel() may flip the level from another thread. (Before the
  /// concurrency-contract migration this was a benign-in-practice data
  /// race on a plain enum; -Wthread-safety has no capability to tie it
  /// to, so the fix is the atomic, documented in DESIGN.md section 15.)
  bool enabled(LogLevel L) const {
    int Lv = Level.load(std::memory_order_relaxed);
    return int(L) >= Lv && Lv != int(LogLevel::Off);
  }
  LogLevel level() const {
    return LogLevel(Level.load(std::memory_order_relaxed));
  }
  void setLevel(LogLevel L) {
    Level.store(int(L), std::memory_order_relaxed);
  }
  bool json() const { return Json; }

  void log(LogLevel L, const LogEvent &E);

  void debug(const LogEvent &E) { log(LogLevel::Debug, E); }
  void info(const LogEvent &E) { log(LogLevel::Info, E); }
  void warn(const LogEvent &E) { log(LogLevel::Warn, E); }
  void error(const LogEvent &E) { log(LogLevel::Error, E); }

private:
  /// One formatted line per write, emitted under Mutex so lines never
  /// interleave across shard workers; the stream pointee is what the
  /// lock actually protects.
  std::ostream *OS SEMINAL_PT_GUARDED_BY(Mutex);
  std::atomic<int> Level;
  const bool Json;
  sync::Mutex Mutex{sync::LockRank::Log, "log"};
};

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_LOG_H
