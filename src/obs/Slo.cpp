//===- Slo.cpp - Windowed SLO burn-rate over histogram deltas --------------==//

#include "obs/Slo.h"

#include <algorithm>

using namespace seminal;
using namespace seminal::obs;

SloTracker::SloTracker(const SloConfig &Cfg)
    : Cfg(Cfg),
      SpacingNs(std::max<uint64_t>(1000000000ull, Cfg.FastWindowNs / 32)) {}

SloTracker::Window SloTracker::windowAt(uint64_t NowNs, uint64_t WindowNs,
                                        const HistogramSnapshot &Cur) const {
  Window W;
  if (Ring.empty())
    return W;
  // Newest snapshot at-or-before the window start; clamp to the oldest
  // when uptime is shorter than the window.
  uint64_t StartNs = NowNs > WindowNs ? NowNs - WindowNs : 0;
  const Entry *Base = &Ring.front();
  for (const Entry &E : Ring) {
    if (E.TimeNs > StartNs)
      break;
    Base = &E;
  }
  HistogramSnapshot D = Cur.deltaFrom(Base->Snap);
  W.Total = D.Count;
  W.Bad = D.countAbove(Cfg.TargetUs);
  W.SpanNs = NowNs > Base->TimeNs ? NowNs - Base->TimeNs : 0;
  double Budget = 1.0 - Cfg.ObjectivePct / 100.0;
  if (W.Total > 0 && Budget > 0.0)
    W.Burn = (double(W.Bad) / double(W.Total)) / Budget;
  return W;
}

SloTracker::Burn SloTracker::tick(uint64_t NowNs, const LogHistogram &Hist) {
  sync::MutexLock Lock(Mutex);
  HistogramSnapshot Cur = Hist.snapshot();
  if (Ring.empty() || NowNs >= Ring.back().TimeNs + SpacingNs)
    Ring.push_back(Entry{NowNs, Cur});
  // Prune entries no window can reach: strictly older than the slow
  // window start *and* shadowed by a successor that is also at-or-
  // before it (the boundary entry itself must survive).
  uint64_t SlowStart =
      NowNs > Cfg.SlowWindowNs ? NowNs - Cfg.SlowWindowNs : 0;
  while (Ring.size() >= 2 && Ring[1].TimeNs <= SlowStart)
    Ring.pop_front();

  Burn B;
  B.Fast = windowAt(NowNs, Cfg.FastWindowNs, Cur);
  B.Slow = windowAt(NowNs, Cfg.SlowWindowNs, Cur);
  return B;
}
