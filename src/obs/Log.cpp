//===- Log.cpp - Structured per-request logging ----------------------------==//

#include "obs/Log.h"

#include "support/Trace.h" // jsonEscape

#include <cstdio>
#include <ctime>
#include <sstream>

using namespace seminal;
using namespace seminal::obs;

bool obs::parseLogLevel(const std::string &S, LogLevel &Out) {
  if (S == "debug")
    Out = LogLevel::Debug;
  else if (S == "info")
    Out = LogLevel::Info;
  else if (S == "warn" || S == "warning")
    Out = LogLevel::Warn;
  else if (S == "error")
    Out = LogLevel::Error;
  else if (S == "off" || S == "none")
    Out = LogLevel::Off;
  else
    return false;
  return true;
}

const char *obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

LogEvent &LogEvent::str(const std::string &Key, const std::string &Value) {
  Field F;
  F.K = FieldKind::Str;
  F.Key = Key;
  F.Str = Value;
  Fields.push_back(std::move(F));
  return *this;
}

LogEvent &LogEvent::num(const std::string &Key, int64_t Value) {
  Field F;
  F.K = FieldKind::Num;
  F.Key = Key;
  F.Int = Value;
  Fields.push_back(std::move(F));
  return *this;
}

LogEvent &LogEvent::num(const std::string &Key, uint64_t Value) {
  Field F;
  F.K = FieldKind::Num;
  F.Key = Key;
  F.UInt = Value;
  F.IsUnsigned = true;
  Fields.push_back(std::move(F));
  return *this;
}

LogEvent &LogEvent::real(const std::string &Key, double Value) {
  Field F;
  F.K = FieldKind::Real;
  F.Key = Key;
  F.Real = Value;
  Fields.push_back(std::move(F));
  return *this;
}

LogEvent &LogEvent::boolean(const std::string &Key, bool Value) {
  Field F;
  F.K = FieldKind::Bool;
  F.Key = Key;
  F.Bool = Value;
  Fields.push_back(std::move(F));
  return *this;
}

namespace {

/// ISO-8601 UTC with millisecond precision, e.g. 2026-08-09T14:03:21.045Z.
std::string timestampUtc() {
  std::timespec TS{};
  std::timespec_get(&TS, TIME_UTC);
  std::tm TM{};
  gmtime_r(&TS.tv_sec, &TM);
  char Buf[40];
  size_t N = std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%S", &TM);
  std::snprintf(Buf + N, sizeof(Buf) - N, ".%03ldZ", TS.tv_nsec / 1000000);
  return Buf;
}

bool needsLogfmtQuoting(const std::string &S) {
  if (S.empty())
    return true;
  for (char C : S)
    if (C == ' ' || C == '"' || C == '=' || C == '\n' || C == '\t')
      return true;
  return false;
}

std::string logfmtValue(const std::string &S) {
  if (!needsLogfmtQuoting(S))
    return S;
  std::string Out = "\"";
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out + "\"";
}

std::string realText(double V) {
  std::ostringstream OS;
  OS << V;
  return OS.str();
}

} // namespace

void Logger::log(LogLevel L, const LogEvent &E) {
  if (!enabled(L))
    return;
  std::ostringstream Line;
  if (Json) {
    Line << "{\"ts\":\"" << timestampUtc() << "\",\"level\":\""
         << logLevelName(L) << "\",\"event\":\"" << jsonEscape(E.Event)
         << "\"";
    for (const auto &F : E.Fields) {
      Line << ",\"" << jsonEscape(F.Key) << "\":";
      switch (F.K) {
      case LogEvent::FieldKind::Str:
        Line << "\"" << jsonEscape(F.Str) << "\"";
        break;
      case LogEvent::FieldKind::Num:
        if (F.IsUnsigned)
          Line << F.UInt;
        else
          Line << F.Int;
        break;
      case LogEvent::FieldKind::Real:
        Line << realText(F.Real);
        break;
      case LogEvent::FieldKind::Bool:
        Line << (F.Bool ? "true" : "false");
        break;
      }
    }
    Line << "}";
  } else {
    Line << "ts=" << timestampUtc() << " level=" << logLevelName(L)
         << " event=" << logfmtValue(E.Event);
    for (const auto &F : E.Fields) {
      Line << " " << F.Key << "=";
      switch (F.K) {
      case LogEvent::FieldKind::Str:
        Line << logfmtValue(F.Str);
        break;
      case LogEvent::FieldKind::Num:
        if (F.IsUnsigned)
          Line << F.UInt;
        else
          Line << F.Int;
        break;
      case LogEvent::FieldKind::Real:
        Line << realText(F.Real);
        break;
      case LogEvent::FieldKind::Bool:
        Line << (F.Bool ? "true" : "false");
        break;
      }
    }
  }
  Line << "\n";
  sync::MutexLock Lock(Mutex);
  *OS << Line.str();
  OS->flush();
}
