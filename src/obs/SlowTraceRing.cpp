//===- SlowTraceRing.cpp - Bounded ring of slow-request traces -------------==//

#include "obs/SlowTraceRing.h"

#include "support/Trace.h"

#include <cstdio>
#include <fstream>
#include <sys/stat.h>
#include <sys/types.h>

using namespace seminal;
using namespace seminal::obs;

std::string obs::sanitizeRequestId(const std::string &RequestId) {
  std::string Out;
  for (char C : RequestId) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (Ok)
      Out += C;
    else if (C != '"') // JSON string ids arrive quoted; drop the quotes.
      Out += '_';
    if (Out.size() >= 48)
      break;
  }
  // Collapse to a stable placeholder when the id carried nothing usable.
  bool AllUnderscore = true;
  for (char C : Out)
    if (C != '_')
      AllUnderscore = false;
  if (Out.empty() || AllUnderscore)
    return "req";
  return Out;
}

std::string SlowTraceRing::capture(const std::string &RequestId,
                                   const TraceSink &Sink) {
  sync::MutexLock Lock(Mutex);
  ::mkdir(Dir.c_str(), 0755); // Best-effort; open() reports real failures.
  char Name[96];
  std::snprintf(Name, sizeof(Name), "slow-%06llu-%s.trace.json",
                (unsigned long long)Seq,
                sanitizeRequestId(RequestId).c_str());
  std::string Path = Dir + "/" + Name;
  {
    std::ofstream OS(Path, std::ios::trunc);
    if (!OS)
      return "";
    Sink.writeChromeTrace(OS);
    if (!OS)
      return "";
  }
  ++Seq;
  Files.push_back(Path);
  while (Files.size() > Capacity) {
    std::remove(Files.front().c_str());
    Files.pop_front();
  }
  return Path;
}

size_t SlowTraceRing::size() const {
  sync::MutexLock Lock(Mutex);
  return Files.size();
}

uint64_t SlowTraceRing::captured() const {
  sync::MutexLock Lock(Mutex);
  return Seq;
}
