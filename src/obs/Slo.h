//===- Slo.h - Windowed SLO burn-rate over histogram deltas -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Burn-rate tracking for a latency SLO (DESIGN.md section 16). The SLO
/// is "ObjectivePct % of requests complete within TargetUs"; the burn
/// rate over a window is
///
///     burn = (bad / total) / (1 - ObjectivePct/100)
///
/// i.e. how many times faster than sustainable the error budget is
/// being spent (1.0 = exactly on budget, 14.4 = the classic page-now
/// threshold for a 5-minute window on a 30-day budget).
///
/// Windows are carved out of the live request-latency LogHistogram with
/// HistogramSnapshot deltas: the tracker keeps a time-stamped ring of
/// snapshots and subtracts the newest one at-or-before `now - window`
/// from the current state. The live histogram is never reset, so any
/// number of windows (and the cumulative scrape series) coexist on one
/// instrument. When uptime is shorter than the window the delta clamps
/// to the oldest snapshot and reports the covered span, so a young
/// daemon shows its real (short-window) burn instead of zeros.
///
/// Time is caller-supplied monotonic nanoseconds: the engine passes
/// steady-clock now, tests pass a hand-rolled clock and step it --
/// deterministic burn-rate tests with no sleeping.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_SLO_H
#define SEMINAL_OBS_SLO_H

#include "support/Histogram.h"
#include "support/Sync.h"

#include <cstdint>
#include <deque>

namespace seminal {
namespace obs {

/// One latency SLO over one histogram (microsecond samples).
struct SloConfig {
  uint64_t TargetUs = 50000;  ///< Samples above this are "bad".
  double ObjectivePct = 99.0; ///< % of samples that must be good.
  /// Multiwindow burn (fast page / slow ticket), SRE-workbook style.
  uint64_t FastWindowNs = 300ull * 1000000000ull;  ///< 5 min.
  uint64_t SlowWindowNs = 3600ull * 1000000000ull; ///< 1 h.
};

class SloTracker {
public:
  /// Current burn state, one entry per window.
  struct Window {
    double Burn = 0.0;     ///< Error rate over budget; 0 when no traffic.
    uint64_t Total = 0;    ///< Samples in the window delta.
    uint64_t Bad = 0;      ///< Samples above target in the window delta.
    uint64_t SpanNs = 0;   ///< Actual covered span (may be < window).
  };
  struct Burn {
    Window Fast;
    Window Slow;
  };

  explicit SloTracker(const SloConfig &Cfg);

  /// Advances the snapshot ring to \p NowNs over \p Hist and computes
  /// the burn for both windows. Thread-safe; O(buckets) per call --
  /// meant for scrape/stats paths, not per-request.
  Burn tick(uint64_t NowNs, const LogHistogram &Hist);

  const SloConfig &config() const { return Cfg; }

private:
  struct Entry {
    uint64_t TimeNs = 0;
    HistogramSnapshot Snap;
  };

  Window windowAt(uint64_t NowNs, uint64_t WindowNs,
                  const HistogramSnapshot &Cur) const
      SEMINAL_REQUIRES(Mutex);

  /// Immutable after construction.
  const SloConfig Cfg;
  /// Snapshot spacing: fast-window/32 (floor 1s) bounds both the ring
  /// size and the window-boundary error at ~3% of the fast window.
  const uint64_t SpacingNs;

  mutable sync::Mutex Mutex{sync::LockRank::Leaf, "slo.tracker"};
  std::deque<Entry> Ring SEMINAL_GUARDED_BY(Mutex); ///< Oldest first.
};

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_SLO_H
